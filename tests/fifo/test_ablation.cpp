// Ablation tests for the design decisions of Section 3.2: these prove the
// paper's arguments by breaking each mechanism and watching the predicted
// failure appear.
#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "fifo/mixed_clock_fifo.hpp"
#include "sync/clock.hpp"

namespace mts::fifo {
namespace {

using sim::Time;

FifoConfig cfg_with(EmptyDetectorKind empty_kind, FullDetectorKind full_kind) {
  FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  cfg.empty_kind = empty_kind;
  cfg.full_kind = full_kind;
  return cfg;
}

struct Harness {
  sim::Simulation sim{1};
  FifoConfig cfg;
  Time put_p;
  Time get_p;
  sync::Clock clk_put;
  sync::Clock clk_get;
  MixedClockFifo dut;
  bfm::Scoreboard sb{sim, "sb"};
  bfm::PutMonitor put_mon;
  bfm::GetMonitor get_mon;

  explicit Harness(const FifoConfig& c)
      : cfg(c),
        put_p(2 * SyncPutSide::min_period(c)),
        get_p(2 * SyncGetSide::min_period(c)),
        clk_put(sim, "clk_put", {put_p, 4 * put_p, 0.5, 0}),
        clk_get(sim, "clk_get", {get_p, 4 * put_p + get_p / 3, 0.5, 0}),
        dut(sim, "dut", c, clk_put.out(), clk_get.out()),
        put_mon(sim, clk_put.out(), dut.en_put(), dut.req_put(), dut.data_put(),
                sb),
        get_mon(sim, clk_get.out(), dut.valid_get(), dut.data_get(), sb) {}

  Time start() const { return 4 * put_p; }

  /// One item placed into the FIFO, then the receiver starts requesting
  /// only after the item has settled -- the deadlock scenario of Section
  /// 3.2.
  void run_single_item_then_get() {
    const Time react = cfg.dm.flop.clk_to_q + 1;
    const Time edge = start() + 8 * put_p;
    sim.sched().at(edge + react, [this] {
      dut.data_put().set(0x33);
      dut.req_put().set(true);
      sb.push(0x33);
    });
    sim.sched().at(edge + put_p + react, [this] { dut.req_put().set(false); });
    sim.sched().at(edge + 10 * get_p, [this] { dut.req_get().set(true); });
    sim.run_until(edge + 60 * get_p);
  }
};

TEST(DetectorAblation, NeOnlyDeadlocksOnLastItem) {
  // With only the anticipating ("new") empty definition, a FIFO holding one
  // item reads as empty forever: the receiver stalls and the item is stuck.
  Harness h(cfg_with(EmptyDetectorKind::kNeOnly, FullDetectorKind::kAnticipating));
  h.run_single_item_then_get();
  EXPECT_EQ(h.get_mon.dequeued(), 0u) << "ne-only detector should deadlock";
  EXPECT_EQ(h.dut.occupancy(), 1u);
  EXPECT_TRUE(h.dut.empty().read());
}

TEST(DetectorAblation, BimodalDeliversLastItem) {
  // Same scenario with the paper's bi-modal detector: delivered.
  Harness h(cfg_with(EmptyDetectorKind::kBimodal, FullDetectorKind::kAnticipating));
  h.run_single_item_then_get();
  EXPECT_EQ(h.get_mon.dequeued(), 1u);
  EXPECT_EQ(h.sb.errors(), 0u);
}

TEST(DetectorAblation, OeOnlyUnderflowsUnderSaturatedGets) {
  // With only the true-empty definition, the synchronizer latency lets the
  // receiver fire gets into an already-drained FIFO (Section 3.2's
  // motivation for the "new empty" definition).
  Harness h(cfg_with(EmptyDetectorKind::kOeOnly, FullDetectorKind::kAnticipating));
  bfm::SyncPutDriver put(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm,
                         bfm::RateConfig{0.35, 1}, 0xFF);
  bfm::SyncGetDriver get(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                         h.cfg.dm, bfm::RateConfig{1.0, 1});
  h.sim.run_until(h.start() + 600 * h.put_p);
  EXPECT_GT(h.dut.underflow_count(), 0u)
      << "oe-only detector should underflow near empty";
}

TEST(DetectorAblation, BimodalSurvivesTheSameWorkload) {
  Harness h(cfg_with(EmptyDetectorKind::kBimodal, FullDetectorKind::kAnticipating));
  bfm::SyncPutDriver put(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm,
                         bfm::RateConfig{0.35, 1}, 0xFF);
  bfm::SyncGetDriver get(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                         h.cfg.dm, bfm::RateConfig{1.0, 1});
  h.sim.run_until(h.start() + 600 * h.put_p);
  EXPECT_EQ(h.dut.underflow_count(), 0u);
  EXPECT_EQ(h.sb.errors(), 0u);
}

TEST(DetectorAblation, ExactFullOverflowsUnderSaturatedPuts) {
  // With the exact full definition (no empty cells), the two-cycle
  // synchronizer latency lets the sender overwrite an occupied cell.
  Harness h(cfg_with(EmptyDetectorKind::kBimodal, FullDetectorKind::kExact));
  bfm::SyncPutDriver put(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm,
                         bfm::RateConfig{1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                         h.cfg.dm, bfm::RateConfig{0.3, 1});
  h.sim.run_until(h.start() + 600 * h.put_p);
  EXPECT_GT(h.dut.overflow_count() + h.sb.errors(), 0u)
      << "exact-full detector should overflow near full";
}

TEST(DetectorAblation, AnticipatingFullSurvivesTheSameWorkload) {
  Harness h(cfg_with(EmptyDetectorKind::kBimodal, FullDetectorKind::kAnticipating));
  bfm::SyncPutDriver put(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm,
                         bfm::RateConfig{1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                         h.cfg.dm, bfm::RateConfig{0.3, 1});
  h.sim.run_until(h.start() + 600 * h.put_p);
  EXPECT_EQ(h.dut.overflow_count(), 0u);
  EXPECT_EQ(h.sb.errors(), 0u);
}

// --- Full-boundary hazard characterization (see DvKind documentation) ---
//
// With the paper's SR-latch DV, a cell is declared empty the moment its get
// STARTS; when the reader's clock is much slower than the writer's and the
// FIFO rides the full boundary, the margin cell can be granted back to the
// writer while the read is still in flight. The serialized (conservative)
// DV declares the cell empty only when the get COMPLETES, closing the
// window. These runs are deterministic (fixed seed, no jitter).

namespace {
struct BoundaryOutcome {
  std::uint64_t corruptions;
  std::uint64_t delivered;
};

BoundaryOutcome run_full_boundary(DvKind dv) {
  FifoConfig cfg = cfg_with(EmptyDetectorKind::kBimodal,
                            FullDetectorKind::kAnticipating);
  cfg.dv_kind = dv;
  sim::Simulation sim(5);
  const Time pp = 2 * SyncPutSide::min_period(cfg);
  const Time gp = static_cast<Time>(
      2 * 2.7 * static_cast<double>(SyncGetSide::min_period(cfg)));
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor pm(sim, cp.out(), dut.en_put(), dut.req_put(), dut.data_put(),
                     sb);
  bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm, {1.0, 1});
  sim.run_until(4 * pp + 500 * pp);
  return {sb.errors() + dut.overflow_count() + dut.underflow_count(),
          gm.dequeued()};
}
}  // namespace

TEST(DvAblation, SrLatchDvCorruptsAtFullBoundaryWithSlowReader) {
  const BoundaryOutcome out = run_full_boundary(DvKind::kSrLatch);
  EXPECT_GT(out.corruptions, 0u)
      << "expected the documented slow-reader hazard to reproduce";
}

TEST(DvAblation, ConservativeDvIsCleanAtTheSameBoundary) {
  const BoundaryOutcome out = run_full_boundary(DvKind::kConservative);
  EXPECT_EQ(out.corruptions, 0u);
  EXPECT_GT(out.delivered, 50u);
}

TEST(DvAblation, ConservativeDvPassesTheStandardBattery) {
  FifoConfig cfg = cfg_with(EmptyDetectorKind::kBimodal,
                            FullDetectorKind::kAnticipating);
  cfg.dv_kind = DvKind::kConservative;
  Harness h(cfg);
  bfm::SyncPutDriver put(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm,
                         bfm::RateConfig{1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                         h.cfg.dm, bfm::RateConfig{1.0, 1});
  h.sim.run_until(h.start() + 500 * h.put_p);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.dut.overflow_count(), 0u);
  EXPECT_EQ(h.dut.underflow_count(), 0u);
  EXPECT_GT(h.get_mon.dequeued(), 100u);
}

// --- Depth/anticipation coupling (found by the fuzz campaign) ---
//
// "Arbitrarily robust" synchronizer depth cannot be raised alone: a flag
// takes depth cycles to cross, so the opposite interface can complete
// depth-1 further operations before a stall lands. The anticipating
// detectors must therefore announce boundaries depth-1 items early
// (anticipation_window), and the Fig. 7b veto must join before the LAST
// synchronizer latch. These tests pin the generalized behaviour.

TEST(DepthCoupling, DepthThreeIsCleanWithWidenedAnticipation) {
  FifoConfig cfg = cfg_with(EmptyDetectorKind::kBimodal,
                            FullDetectorKind::kAnticipating);
  cfg.capacity = 6;
  cfg.sync.depth = 3;
  Harness h(cfg);
  bfm::SyncPutDriver put(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm,
                         bfm::RateConfig{1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                         h.cfg.dm, bfm::RateConfig{0.4, 1});  // rides empty+full
  h.sim.run_until(h.start() + 800 * h.put_p);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.dut.overflow_count(), 0u);
  EXPECT_EQ(h.dut.underflow_count(), 0u);
  EXPECT_GT(h.get_mon.dequeued(), 100u);
}

TEST(DepthCoupling, DepthFourLastItemStillDelivered) {
  FifoConfig cfg = cfg_with(EmptyDetectorKind::kBimodal,
                            FullDetectorKind::kAnticipating);
  cfg.capacity = 8;
  cfg.sync.depth = 4;
  Harness h(cfg);
  h.run_single_item_then_get();
  EXPECT_EQ(h.get_mon.dequeued(), 1u);
  EXPECT_EQ(h.sb.errors(), 0u);
}

TEST(DepthCoupling, CapacityBelowWindowRejected) {
  FifoConfig cfg = cfg_with(EmptyDetectorKind::kBimodal,
                            FullDetectorKind::kAnticipating);
  cfg.capacity = 2;
  cfg.sync.depth = 3;  // window 3 > capacity 2
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(DetectorAblation, BimodalWithDepthZeroRejected) {
  FifoConfig cfg = cfg_with(EmptyDetectorKind::kBimodal,
                            FullDetectorKind::kAnticipating);
  cfg.sync.depth = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

}  // namespace
}  // namespace mts::fifo
