// Soak test for the observability stack's cost model (sim/observe.hpp):
//
//   1. With nothing armed the kernel reports no hot sites and the workload
//      behaves exactly as the seed (same items through the FIFO).
//   2. Arming must not perturb the simulation: the armed run moves the same
//      number of items as the dormant run.
//   3. With a profiler armed, the vast majority of executed events are
//      attributed to a named site (clock cascades dominate a synchronous
//      workload), not to "(unattributed)".
//   4. The dormant path stays within noise of the armed path's wall time --
//      a catastrophic regression of the disabled path (the thing the
//      zero-cost-when-disabled design guards) trips this.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "metrics/registry.hpp"
#include "sim/observe.hpp"
#include "sync/clock.hpp"

namespace mts {
namespace {

struct SoakResult {
  std::uint64_t dequeued = 0;
  std::uint64_t sb_errors = 0;
  double wall_ms = 0.0;
  sim::KernelStats kernel;
};

/// Saturated mixed-clock FIFO traffic for `cycles` get-clock cycles, with
/// the observability bundle armed or fully dormant.
SoakResult run_soak(unsigned cycles, sim::Observability* obs) {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;

  sim::Simulation s(5);
  if (obs != nullptr) obs->arm(s);

  const sim::Time pp = fifo::SyncPutSide::min_period(cfg) * 5 / 4;
  const sim::Time gp = fifo::SyncGetSide::min_period(cfg) * 5 / 4;
  sync::Clock cp(s, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(s, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::MixedClockFifo dut(s, "dut", cfg, cp.out(), cg.out());

  bfm::Scoreboard sb(s, "sb");
  bfm::PutMonitor put_mon(s, cp.out(), dut.en_put(), dut.req_put(),
                          dut.data_put(), sb);
  bfm::GetMonitor get_mon(s, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(s, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(s, "get", cg.out(), dut.req_get(), cfg.dm, {1.0, 1});

  const auto t0 = std::chrono::steady_clock::now();
  s.run_until(4 * pp + cycles * gp);
  const auto t1 = std::chrono::steady_clock::now();

  SoakResult r;
  r.dequeued = get_mon.dequeued();
  r.sb_errors = sb.errors();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.kernel = s.report().kernel();
  return r;
}

TEST(ObservabilitySoak, DormantRunHasNoProfileAndNoObserverSideEffects) {
  const SoakResult dormant = run_soak(800, nullptr);
  EXPECT_GT(dormant.dequeued, 500u);
  EXPECT_EQ(dormant.sb_errors, 0u);
  EXPECT_TRUE(dormant.kernel.hot_sites.empty());
}

TEST(ObservabilitySoak, ArmingDoesNotPerturbTheSimulation) {
  const SoakResult dormant = run_soak(800, nullptr);

  sim::TraceSession trace;
  metrics::Registry registry;
  sim::KernelProfiler profiler;
  sim::Observability obs;
  obs.trace = &trace;
  obs.metrics = &registry;
  obs.profiler = &profiler;
  const SoakResult armed = run_soak(800, &obs);

  // Same workload, same items through the FIFO: observers only read.
  EXPECT_EQ(armed.dequeued, dormant.dequeued);
  EXPECT_EQ(armed.sb_errors, 0u);

  // Every pillar saw the traffic.
  EXPECT_GT(trace.transactions(), 500u);
  const metrics::Histogram* lat = registry.find_histogram("dut", "latency_ps");
  ASSERT_NE(lat, nullptr);
  // The observer samples at the re-rise, the whitebox monitor at the
  // valid_get edge later in the same cycle: the run horizon can split one
  // departure between them.
  EXPECT_NEAR(static_cast<double>(lat->count()),
              static_cast<double>(armed.dequeued), 2.0);
  EXPECT_GT(lat->percentile(0.99), 0.0);
}

TEST(ObservabilitySoak, ProfiledEventsAreOverwhelminglyAttributed) {
  sim::KernelProfiler profiler;
  sim::Observability obs;
  obs.profiler = &profiler;
  const SoakResult armed = run_soak(800, &obs);

  ASSERT_FALSE(armed.kernel.hot_sites.empty());
  std::uint64_t attributed = 0;
  std::uint64_t unattributed = 0;
  for (const auto& site : profiler.sites()) {
    if (site.label == "(unattributed)") {
      unattributed += site.events;
    } else {
      attributed += site.events;
    }
  }
  // Clock cascades dominate a synchronous workload; only the testbench's
  // seed events (driver kick-offs before the first edge) may be orphaned.
  EXPECT_GT(attributed, 0u);
  EXPECT_GE(attributed * 100, (attributed + unattributed) * 80)
      << "attributed=" << attributed << " unattributed=" << unattributed;
  // The clock sites registered by sync::Clock carry the attribution.
  bool saw_clock = false;
  for (const auto& row : armed.kernel.hot_sites) {
    if (row.label.rfind("clock ", 0) == 0) saw_clock = true;
  }
  EXPECT_TRUE(saw_clock);
}

TEST(ObservabilitySoak, DormantPathIsNotSlowerThanArmedPath) {
  // Warm-up (first-touch allocations, code paging), then measure. The
  // armed run carries tracing + metrics + profiling on every event, so the
  // dormant run finishing much slower means the disabled path regressed.
  run_soak(200, nullptr);
  const SoakResult dormant = run_soak(1500, nullptr);

  sim::TraceSession trace;
  metrics::Registry registry;
  sim::KernelProfiler profiler;
  sim::Observability obs;
  obs.trace = &trace;
  obs.metrics = &registry;
  obs.profiler = &profiler;
  const SoakResult armed = run_soak(1500, &obs);

  // Generous noise margin (2x + 20 ms) so CI jitter cannot trip it while a
  // real dormant-path regression (branches -> virtual calls, allocation on
  // the hot path) still would.
  EXPECT_LE(dormant.wall_ms, armed.wall_ms * 2.0 + 20.0)
      << "dormant " << dormant.wall_ms << " ms vs armed " << armed.wall_ms
      << " ms";
}

}  // namespace
}  // namespace mts
