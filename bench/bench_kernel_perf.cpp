// Harness self-measurement (google-benchmark): how fast the discrete-event
// kernel and the full FIFO models simulate on the host. Not a paper
// experiment -- it documents the cost of using this library.
//
// Besides the google-benchmark table, this binary re-measures the kernel hot
// paths with an instrumented global allocator and writes BENCH_kernel.json
// (current directory) recording events/sec and allocations per event next to
// the frozen seed-kernel baseline, so the perf trajectory is tracked in-repo
// from PR 1 onward. `--smoke` runs only a small JSON measurement (used by CI
// to exercise the pool/free-list code under sanitizers).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "gates/gates.hpp"
#include "metrics/registry.hpp"
#include "sim/observe.hpp"
#include "sim/profiler.hpp"
#include "sync/clock.hpp"
#include "verify/hub.hpp"

#include "campaign_workload.hpp"

// ---------------------------------------------------------------------------
// Instrumented allocator hook: counts every global operator new. The kernel's
// zero-allocation claim is verified by diffing this counter around measured
// regions (steady state only -- pools may still grow during warmup).
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace mts;
using sim::Time;

/// Self-rescheduling event chain: the idiomatic new-API callable (two
/// pointers, stored inline in the scheduler's small-buffer callback).
struct ChainTick {
  sim::Scheduler* sched;
  std::uint64_t* count;
  std::uint64_t limit;
  void operator()() const {
    if (++*count < limit) sched->after(1, ChainTick{sched, count, limit});
  }
};

/// Zero-delay cascade: every event reschedules itself at the same timestamp,
/// exercising the delta ring rather than the heap.
struct DeltaTick {
  sim::Scheduler* sched;
  std::uint64_t* remaining;
  void operator()() const {
    if (*remaining > 0) {
      --*remaining;
      sched->after(0, DeltaTick{sched, remaining});
    }
  }
};

/// Raw event throughput through the future-event heap.
void BM_SchedulerEventChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t count = 0;
    sched.at(0, ChainTick{&sched, &count, 10'000});
    sched.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SchedulerEventChain);

/// The same chain with the kernel profiler armed: documents the cost of
/// per-event wall-clock attribution (two steady_clock reads + a site table
/// update per event). The dormant path above is the one CI guards.
void BM_SchedulerEventChainProfiled(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    sim::KernelProfiler prof;
    sched.set_profiler(&prof);
    std::uint64_t count = 0;
    sched.at_site(0, prof.site("bench chain"),
                  ChainTick{&sched, &count, 10'000});
    sched.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SchedulerEventChainProfiled);

/// Raw event throughput through the delta ring (same-timestamp events).
void BM_SchedulerDeltaCascade(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t remaining = 10'000;
    sched.at(0, DeltaTick{&sched, &remaining});
    sched.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SchedulerDeltaCascade);

/// Signal fan-out: one wire driving many (old, new) change listeners.
void BM_SignalFanout(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  sim::Simulation sim;
  sim::Wire w(sim, "w");
  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < fanout; ++i) {
    w.on_change([&sink](bool, bool) { ++sink; });
  }
  bool v = false;
  for (auto _ : state) {
    v = !v;
    w.set(v);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(fanout));
}
BENCHMARK(BM_SignalFanout)->Arg(4)->Arg(64);

/// Edge-typed fan-out: rising-edge listeners through the typed dispatch path
/// (half the set() calls are falling edges and skip every listener).
void BM_SignalEdgeFanout(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  sim::Simulation sim;
  sim::Wire w(sim, "w");
  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < fanout; ++i) {
    w.on_rise([&sink] { ++sink; });
  }
  bool v = false;
  for (auto _ : state) {
    v = !v;
    w.set(v);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(fanout));
}
BENCHMARK(BM_SignalEdgeFanout)->Arg(4)->Arg(64);

/// Pooled-transaction write path: schedule + commit of an inertial write.
void BM_SignalInertialWrite(benchmark::State& state) {
  sim::Simulation sim;
  sim::Wire w(sim, "w");
  bool v = false;
  for (auto _ : state) {
    v = !v;
    w.write(v, 1, sim::DelayKind::kInertial);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SignalInertialWrite);

/// Whole-FIFO simulation speed: simulated put cycles per host second.
void BM_MixedClockFifoSim(benchmark::State& state) {
  const auto capacity = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    fifo::FifoConfig cfg;
    cfg.capacity = capacity;
    cfg.width = 8;
    sim::Simulation sim(1);
    const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
    const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
    sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
    sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
    fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
    bfm::Scoreboard sb(sim, "sb");
    bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                           dut.full(), cfg.dm, {1.0, 1}, 0xFF);
    bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                           {1.0, 1});
    sim.run_until(4 * pp + 200 * pp);
    benchmark::DoNotOptimize(dut.occupancy());
  }
  state.SetItemsProcessed(state.iterations() * 200);  // simulated put cycles
}
BENCHMARK(BM_MixedClockFifoSim)->Arg(4)->Arg(16);

/// Async-sync FIFO simulation speed.
void BM_AsyncSyncFifoSim(benchmark::State& state) {
  for (auto _ : state) {
    fifo::FifoConfig cfg;
    cfg.capacity = 8;
    cfg.width = 8;
    sim::Simulation sim(1);
    const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
    sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
    fifo::AsyncSyncFifo dut(sim, "dut", cfg, cg.out());
    bfm::Scoreboard sb(sim, "sb");
    bfm::AsyncPutDriver put(sim, "put", dut.put_req(), dut.put_ack(),
                            dut.put_data(), cfg.dm, 0, 0xFF, &sb);
    bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                           {1.0, 1});
    sim.run_until(4 * gp + 200 * gp);
    benchmark::DoNotOptimize(dut.occupancy());
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_AsyncSyncFifoSim);

// ---------------------------------------------------------------------------
// BENCH_kernel.json: allocator-instrumented measurement of the two kernel
// hot paths, with the frozen seed baseline for before/after comparison.
// ---------------------------------------------------------------------------

struct HotPathMeasurement {
  double events_per_sec = 0.0;
  double allocs_per_million_events = 0.0;
  sim::KernelStats stats;  ///< scheduler counters after the measured run
};

/// Runs a heap-path event chain of `events` events twice on one scheduler:
/// the first pass grows the pools, the second (measured) pass must be
/// allocation-free.
HotPathMeasurement measure_chain(std::uint64_t events) {
  sim::Scheduler sched;
  std::uint64_t count = 0;
  sched.at(0, ChainTick{&sched, &count, events});
  sched.run();  // warmup: pools grow to steady state here

  count = 0;
  sched.after(1, ChainTick{&sched, &count, events});
  const std::uint64_t allocs_before = g_alloc_count.load();
  const auto t0 = std::chrono::steady_clock::now();
  sched.run();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs = g_alloc_count.load() - allocs_before;

  HotPathMeasurement m;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  m.events_per_sec = static_cast<double>(events) / secs;
  m.allocs_per_million_events =
      static_cast<double>(allocs) * 1e6 / static_cast<double>(events);
  m.stats = sched.stats();
  return m;
}

/// The heap-path chain with a KernelProfiler armed and every event
/// attributed to a registered site -- the worst-case per-event observability
/// overhead (timing + attribution on 100% of events).
HotPathMeasurement measure_chain_profiled(std::uint64_t events) {
  sim::Scheduler sched;
  sim::KernelProfiler prof;
  sched.set_profiler(&prof);
  const sim::KernelProfiler::SiteId site = prof.site("bench chain");
  std::uint64_t count = 0;
  sched.at_site(0, site, ChainTick{&sched, &count, events});
  sched.run();  // warmup

  count = 0;
  sched.at_site(sched.now() + 1, site, ChainTick{&sched, &count, events});
  const std::uint64_t allocs_before = g_alloc_count.load();
  const auto t0 = std::chrono::steady_clock::now();
  sched.run();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs = g_alloc_count.load() - allocs_before;

  HotPathMeasurement m;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  m.events_per_sec = static_cast<double>(events) / secs;
  m.allocs_per_million_events =
      static_cast<double>(allocs) * 1e6 / static_cast<double>(events);
  return m;
}

/// Steady-state inertial write+commit cycles on one wire.
HotPathMeasurement measure_signal_writes(std::uint64_t writes) {
  sim::Simulation sim;
  sim::Wire w(sim, "w");
  bool v = false;
  for (int i = 0; i < 1000; ++i) {  // warmup: transaction pool + ring growth
    v = !v;
    w.write(v, 1, sim::DelayKind::kInertial);
    sim.run();
  }
  const std::uint64_t allocs_before = g_alloc_count.load();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < writes; ++i) {
    v = !v;
    w.write(v, 1, sim::DelayKind::kInertial);
    sim.run();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs = g_alloc_count.load() - allocs_before;

  HotPathMeasurement m;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  m.events_per_sec = static_cast<double>(writes) / secs;
  m.allocs_per_million_events =
      static_cast<double>(allocs) * 1e6 / static_cast<double>(writes);
  return m;
}

/// The mixed-clock FIFO soak with protocol monitors disarmed or armed. The
/// disarmed number is the one CI gates (scripts/check_kernel_perf.py, 5%
/// tolerance): components probe sim.monitors() once at construction, so a
/// run without an armed verify::Hub must cost the same as before the
/// monitor subsystem existed. The armed number is informational -- it
/// documents what the always-on checkers cost when you opt in.
HotPathMeasurement measure_fifo_monitored(std::uint64_t cycles, bool armed) {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  sim::Simulation sim(1);
  verify::Hub hub;
  hub.set_policy(verify::Policy::kCount);
  if (armed) hub.arm(sim);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                         {1.0, 1});
  sim.run_until(4 * pp + 64 * pp);  // warmup: arenas + listener tables

  const std::uint64_t allocs_before = g_alloc_count.load();
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(4 * pp + (64 + cycles) * pp);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs = g_alloc_count.load() - allocs_before;

  HotPathMeasurement m;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  m.events_per_sec = static_cast<double>(cycles) / secs;  // put cycles/sec
  m.allocs_per_million_events =
      static_cast<double>(allocs) * 1e6 / static_cast<double>(cycles);
  return m;
}

/// The mixed-clock FIFO soak with the telemetry sampler disarmed or armed.
/// Mirrors measure_fifo_monitored: components probe obs.telemetry once at
/// construction, so the disarmed run must cost the same as before the
/// sampler existed (CI gates it at the shared 5% tolerance). The armed run
/// samples every FIFO/relay source plus the registry each interval -- that
/// cost is informational and bounded by a looser ceiling.
HotPathMeasurement measure_fifo_telemetry(std::uint64_t cycles, bool armed) {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  sim::Simulation sim(1);
  metrics::Registry registry;
  sim::TelemetryConfig tcfg;
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  tcfg.interval = 4 * pp;  // a sample every four put cycles: aggressive
  sim::Telemetry telemetry(tcfg);
  sim::Observability obs;  // armed pointer lives in sim: must span the run
  if (armed) {
    obs.metrics = &registry;
    obs.telemetry = &telemetry;
    obs.arm(sim);
  }
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                         {1.0, 1});
  sim.run_until(4 * pp + 64 * pp);  // warmup: arenas + series buffers

  const std::uint64_t allocs_before = g_alloc_count.load();
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until(4 * pp + (64 + cycles) * pp);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs = g_alloc_count.load() - allocs_before;

  HotPathMeasurement m;
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  m.events_per_sec = static_cast<double>(cycles) / secs;  // put cycles/sec
  m.allocs_per_million_events =
      static_cast<double>(allocs) * 1e6 / static_cast<double>(cycles);
  return m;
}

/// Raw sampler throughput: how many telemetry samples per host second a
/// store with `sources` probes plus a registry of histograms can absorb.
/// Isolates the sampler from the FIFO model so BENCH_telemetry.json records
/// the cost of one take_sample() independent of workload.
double measure_sampler_rate(std::size_t sources, std::uint64_t samples) {
  sim::Simulation sim;
  metrics::Registry registry;
  sim::TelemetryConfig tcfg;
  tcfg.interval = 1;
  tcfg.max_points = 512;
  sim::Telemetry telemetry(tcfg);
  double x = 0.0;
  for (std::size_t i = 0; i < sources; ++i) {
    telemetry.add_source("src" + std::to_string(i), "bench", "value",
                         [&x] { return x; });
  }
  registry.set_default_window(1024);
  metrics::Histogram& h =
      registry.histogram("bench", "latency_ps", {10.0, 100.0, 1000.0});
  for (int i = 0; i < 256; ++i) h.observe(static_cast<double>(i));
  telemetry.set_registry(&registry);
  sim::Observability obs;
  obs.telemetry = &telemetry;
  obs.arm(sim);
  for (std::uint64_t i = 0; i < 64; ++i) telemetry.sample_now();  // warmup

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < samples; ++i) {
    x += 1.0;
    telemetry.sample_now();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(samples) / secs;
}

template <typename MeasureFn>
HotPathMeasurement best_of(int reps, MeasureFn measure);

/// BENCH_telemetry.json: the sampler's own cost trajectory. The disarmed
/// FIFO number is gated by scripts/check_kernel_perf.py against the armed
/// monitors-era disarmed baseline -- telemetry must be free when off.
void write_telemetry_json(bool smoke) {
  const std::uint64_t fifo_cycles = smoke ? 400 : 4'000;
  const HotPathMeasurement off =
      best_of(3, [&] { return measure_fifo_telemetry(fifo_cycles, false); });
  const HotPathMeasurement on =
      best_of(3, [&] { return measure_fifo_telemetry(fifo_cycles, true); });

  const std::uint64_t sampler_samples = smoke ? 20'000 : 200'000;
  double rate_small = measure_sampler_rate(8, sampler_samples);
  double rate_large = measure_sampler_rate(64, sampler_samples);
  for (int i = 1; i < 3; ++i) {
    rate_small = std::max(rate_small, measure_sampler_rate(8, sampler_samples));
    rate_large =
        std::max(rate_large, measure_sampler_rate(64, sampler_samples));
  }

  FILE* f = std::fopen("BENCH_telemetry.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr,
                 "bench_kernel_perf: cannot write BENCH_telemetry.json\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"note\": \"time-series sampler cost; disarmed must "
                  "match the plain FIFO soak (gated), armed samples every "
                  "source each 4 put cycles (ceiling only)\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"fifo_soak\": {\n");
  std::fprintf(f, "    \"cycles\": %llu,\n",
               static_cast<unsigned long long>(fifo_cycles));
  std::fprintf(f, "    \"cycles_per_sec_disarmed\": %.4g,\n",
               off.events_per_sec);
  std::fprintf(f, "    \"cycles_per_sec_armed\": %.4g,\n", on.events_per_sec);
  std::fprintf(f, "    \"armed_overhead_pct\": %.1f,\n",
               (off.events_per_sec / on.events_per_sec - 1.0) * 100.0);
  std::fprintf(f, "    \"allocs_per_million_cycles_disarmed\": %.4g\n",
               off.allocs_per_million_events);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"sampler\": {\n");
  std::fprintf(f, "    \"samples\": %llu,\n",
               static_cast<unsigned long long>(sampler_samples));
  std::fprintf(f, "    \"samples_per_sec_8_sources\": %.4g,\n", rate_small);
  std::fprintf(f, "    \"samples_per_sec_64_sources\": %.4g,\n", rate_large);
  std::fprintf(f, "    \"registry_histograms\": 1,\n");
  std::fprintf(f, "    \"histogram_window\": 1024\n");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("BENCH_telemetry.json: FIFO soak disarmed %.3g cycles/s, armed "
              "%.3g (+%.1f%%); sampler %.3g samples/s @8 sources, %.3g @64\n",
              off.events_per_sec, on.events_per_sec,
              (off.events_per_sec / on.events_per_sec - 1.0) * 100.0,
              rate_small, rate_large);
}

// Seed-kernel numbers, measured on the reference host at the growth seed
// (std::function callbacks, single priority_queue, shared_ptr transactions):
// google-benchmark BM_SchedulerEventChain and a direct allocation probe.
constexpr double kSeedChainEventsPerSec = 23.67e6;
constexpr double kSeedChainAllocsPerMillionEvents = 1e6;    // 1.0 per event
constexpr double kSeedSignalAllocsPerMillionWrites = 2e6;   // 2.0 per write

/// Best of `reps` runs: throughput is max (transient system load only ever
/// slows a run down) and the allocation count is min for the same reason.
template <typename MeasureFn>
HotPathMeasurement best_of(int reps, MeasureFn measure) {
  HotPathMeasurement best = measure();
  for (int i = 1; i < reps; ++i) {
    const HotPathMeasurement m = measure();
    if (m.events_per_sec > best.events_per_sec) {
      best.events_per_sec = m.events_per_sec;
    }
    if (m.allocs_per_million_events < best.allocs_per_million_events) {
      best.allocs_per_million_events = m.allocs_per_million_events;
    }
  }
  return best;
}

void write_kernel_json(bool smoke) {
  const std::uint64_t chain_events = smoke ? 200'000 : 4'000'000;
  const std::uint64_t signal_writes = smoke ? 100'000 : 1'000'000;

  const HotPathMeasurement chain =
      best_of(3, [&] { return measure_chain(chain_events); });
  const HotPathMeasurement profiled =
      best_of(3, [&] { return measure_chain_profiled(chain_events); });
  const HotPathMeasurement sig =
      best_of(3, [&] { return measure_signal_writes(signal_writes); });

  const std::uint64_t fifo_cycles = smoke ? 400 : 4'000;
  const HotPathMeasurement mon_off =
      best_of(3, [&] { return measure_fifo_monitored(fifo_cycles, false); });
  const HotPathMeasurement mon_on =
      best_of(3, [&] { return measure_fifo_monitored(fifo_cycles, true); });

  // Campaign scaling on the shared FIFO-soak workload (see
  // campaign_workload.hpp). Speedup is bounded by host cores; host_cores
  // is recorded so a 1-core box reporting ~1.0x reads as what it is.
  const std::size_t campaign_reps = smoke ? 3 : 8;
  const unsigned campaign_cycles = smoke ? 100 : 300;
  const unsigned campaign_workers[] = {1, 2, 4, 8};
  double campaign_rps[std::size(campaign_workers)] = {};
  for (std::size_t i = 0; i < std::size(campaign_workers); ++i) {
    campaign_rps[i] = benchwork::measure_campaign_runs_per_sec(
        campaign_workers[i], 3, campaign_reps, campaign_cycles);
  }

  // Kernel health counters, snapshotted from the scheduler that actually
  // executed the measured heap-path chain (warmup pass + measured pass).
  const sim::KernelStats ks = chain.stats;

  FILE* f = std::fopen("BENCH_kernel.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_kernel_perf: cannot write BENCH_kernel.json\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"note\": \"kernel hot-path trajectory; 'seed' numbers "
                  "were measured on the reference host before the two-level "
                  "queue / pooled-event refactor (PR 1)\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"seed\": {\n");
  std::fprintf(f, "    \"scheduler_chain_events_per_sec\": %.4g,\n",
               kSeedChainEventsPerSec);
  std::fprintf(f, "    \"scheduler_chain_allocs_per_million_events\": %.4g,\n",
               kSeedChainAllocsPerMillionEvents);
  std::fprintf(f, "    \"signal_write_allocs_per_million_writes\": %.4g\n",
               kSeedSignalAllocsPerMillionWrites);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"current\": {\n");
  std::fprintf(f, "    \"scheduler_chain_events_per_sec\": %.4g,\n",
               chain.events_per_sec);
  std::fprintf(f, "    \"scheduler_chain_allocs_per_million_events\": %.4g,\n",
               chain.allocs_per_million_events);
  std::fprintf(f, "    \"scheduler_chain_speedup_vs_seed\": %.2f,\n",
               chain.events_per_sec / kSeedChainEventsPerSec);
  std::fprintf(f, "    \"signal_write_commit_pairs_per_sec\": %.4g,\n",
               sig.events_per_sec);
  std::fprintf(f, "    \"signal_write_allocs_per_million_writes\": %.4g\n",
               sig.allocs_per_million_events);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"observability\": {\n");
  std::fprintf(f, "    \"chain_events_per_sec_dormant\": %.4g,\n",
               chain.events_per_sec);
  std::fprintf(f, "    \"chain_events_per_sec_profiled\": %.4g,\n",
               profiled.events_per_sec);
  std::fprintf(f, "    \"profiler_overhead_pct\": %.1f\n",
               (chain.events_per_sec / profiled.events_per_sec - 1.0) * 100.0);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"monitors\": {\n");
  std::fprintf(f, "    \"fifo_cycles\": %llu,\n",
               static_cast<unsigned long long>(fifo_cycles));
  std::fprintf(f, "    \"fifo_cycles_per_sec_disarmed\": %.4g,\n",
               mon_off.events_per_sec);
  std::fprintf(f, "    \"fifo_cycles_per_sec_armed\": %.4g,\n",
               mon_on.events_per_sec);
  std::fprintf(f, "    \"armed_overhead_pct\": %.1f\n",
               (mon_off.events_per_sec / mon_on.events_per_sec - 1.0) * 100.0);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"campaign\": {\n");
  std::fprintf(f, "    \"runs\": %zu,\n",
               static_cast<std::size_t>(3) * campaign_reps);
  std::fprintf(f, "    \"cycles_per_run\": %u,\n", campaign_cycles);
  std::fprintf(f, "    \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "    \"runs_per_sec\": {");
  for (std::size_t i = 0; i < std::size(campaign_workers); ++i) {
    std::fprintf(f, "%s\"%u\": %.1f", i == 0 ? "" : ", ", campaign_workers[i],
                 campaign_rps[i]);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f, "    \"speedup_4w_vs_1w\": %.2f\n",
               campaign_rps[2] / campaign_rps[0]);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"kernel_stats_probe\": {\n");
  std::fprintf(f, "    \"workload\": \"measured heap-path chain "
                  "(warmup pass + measured pass)\",\n");
  std::fprintf(f, "    \"events_executed\": %llu,\n",
               static_cast<unsigned long long>(ks.events_executed));
  std::fprintf(f, "    \"peak_queue_depth\": %llu,\n",
               static_cast<unsigned long long>(ks.peak_queue_depth));
  std::fprintf(f, "    \"pool_high_water\": %llu\n",
               static_cast<unsigned long long>(ks.pool_high_water));
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("\nBENCH_kernel.json: chain %.3g events/s (%.2fx seed), "
              "%.3g allocs/Mevent (seed %.3g); signal writes %.3g allocs/Mwrite "
              "(seed %.3g); profiler armed %.3g events/s (+%.1f%% overhead); "
              "monitors disarmed %.3g cycles/s, armed %.3g (+%.1f%%); "
              "campaign %.1f runs/s @1w, %.2fx @4w (%u host cores)\n",
              chain.events_per_sec,
              chain.events_per_sec / kSeedChainEventsPerSec,
              chain.allocs_per_million_events, kSeedChainAllocsPerMillionEvents,
              sig.allocs_per_million_events, kSeedSignalAllocsPerMillionWrites,
              profiled.events_per_sec,
              (chain.events_per_sec / profiled.events_per_sec - 1.0) * 100.0,
              mon_off.events_per_sec, mon_on.events_per_sec,
              (mon_off.events_per_sec / mon_on.events_per_sec - 1.0) * 100.0,
              campaign_rps[0], campaign_rps[2] / campaign_rps[0],
              std::thread::hardware_concurrency());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  write_kernel_json(smoke);
  write_telemetry_json(smoke);
  return 0;
}
