#include "gates/flops.hpp"

#include <utility>

#include "sim/fault.hpp"
#include "sim/simulation.hpp"

namespace mts::gates {

Etdff::Etdff(sim::Simulation& sim, std::string name, sim::Wire& clk, sim::Wire& d,
             sim::Wire* en, sim::Wire& q, const FlopTiming& timing,
             TimingDomain* domain, bool initial)
    : sim_(sim),
      name_(std::move(name)),
      d_(d),
      en_(en),
      q_(q),
      timing_(timing),
      domain_(domain) {
  q_.set(initial);
  d_old_ = d_.read();
  clk.on_rise([this] { on_clock_edge(); });
  d_.on_change([this](bool old, bool) { on_data_change(old); });
}

void Etdff::on_data_change(bool old_value) {
  const Time t = sim_.now();
  // Hold check: data must stay stable for `hold` after an edge that
  // actually sampled it (checks on disabled flops would false-fire: shared
  // buses legitimately change near edges of cells that are not enabled).
  if (edge_seen_ && last_edge_enabled_ && t - last_edge_ < timing_.hold &&
      !policy_) {
    if (domain_ != nullptr) {
      domain_->violation(t, "hold", name_ + ": d changed " +
                                        std::to_string(t - last_edge_) +
                                        "ps after edge");
    }
  }
  d_last_change_ = t;
  d_changed_ = true;
  d_old_ = old_value;
}

void Etdff::on_clock_edge() {
  const Time t = sim_.now();
  last_edge_ = t;
  edge_seen_ = true;

  const bool enabled = en_ == nullptr || en_->read();
  last_edge_enabled_ = enabled;
  if (!enabled) return;

  bool value = d_.read();
  Time extra = 0;
  bool in_window = d_changed_ && (t - d_last_change_) < timing_.setup;
  // Fault injection: an armed plan can stretch the susceptibility window of
  // asynchronously sampled flops (synchronizer stages), forcing samples
  // that were nominally safe to go metastable. One branch when unarmed.
  if (policy_ && !in_window && d_changed_) {
    if (sim::FaultPlan* fp = sim_.faults()) {
      if (const sim::MetaFault* mf = fp->meta(name_)) {
        in_window = (t - d_last_change_) < mf->widened_window(timing_.setup);
      }
    }
  }
  if (in_window) {
    if (policy_) {
      const AsyncSample s = policy_(d_old_, value, t);
      value = s.value;
      extra = s.extra_delay;
    } else if (domain_ != nullptr) {
      domain_->violation(t, "setup", name_ + ": d changed " +
                                         std::to_string(t - d_last_change_) +
                                         "ps before edge");
    }
  }
  q_.write(value, timing_.clk_to_q + extra, sim::DelayKind::kInertial);
}

WordRegister::WordRegister(sim::Simulation& sim, std::string name, sim::Wire& clk,
                           sim::Word& d, sim::Wire* en, sim::Word& q,
                           const FlopTiming& timing, TimingDomain* domain,
                           std::uint64_t initial)
    : sim_(sim),
      name_(std::move(name)),
      d_(d),
      en_(en),
      q_(q),
      timing_(timing),
      domain_(domain) {
  q_.set(initial);
  clk.on_rise([this] { on_clock_edge(); });
  d_.on_change([this](std::uint64_t, std::uint64_t) {
    const Time t = sim_.now();
    if (edge_seen_ && last_edge_enabled_ && t - last_edge_ < timing_.hold &&
        domain_ != nullptr) {
      domain_->violation(t, "hold", name_ + ": data bus changed " +
                                        std::to_string(t - last_edge_) +
                                        "ps after edge");
    }
    d_last_change_ = t;
    d_changed_ = true;
  });
}

void WordRegister::on_clock_edge() {
  const Time t = sim_.now();
  last_edge_ = t;
  edge_seen_ = true;
  const bool enabled = en_ == nullptr || en_->read();
  last_edge_enabled_ = enabled;
  if (!enabled) return;
  if (d_changed_ && (t - d_last_change_) < timing_.setup && domain_ != nullptr) {
    domain_->violation(t, "setup", name_ + ": data bus changed " +
                                       std::to_string(t - d_last_change_) +
                                       "ps before edge");
  }
  q_.write(d_.read(), timing_.clk_to_q, sim::DelayKind::kInertial);
}

}  // namespace mts::gates
