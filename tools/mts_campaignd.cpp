// mts_campaignd -- the fault-tolerant campaign service CLI.
//
//   mts_campaignd run [job flags]        execute a campaign across a fleet
//                                        of crash-isolated worker processes
//                                        (--local: the sequential in-process
//                                        oracle instead -- byte-identical)
//   mts_campaignd worker --port N        internal: one worker process
//   mts_campaignd replay BUNDLE          re-execute a repro bundle's run in
//                                        a fresh worker process; exit 0 when
//                                        the same failure reproduces, 1 when
//                                        it does not, 2 on a malformed bundle
//   mts_campaignd serve [--port N]       job service (submit/status/fetch)
//   mts_campaignd submit/status/fetch    its clients
//
// `run --checkpoint FILE` checkpoints completed runs; re-running with
// --resume replays nothing and renders byte-identical artifacts. SIGTERM /
// SIGINT write a final checkpoint before exiting (exit code 3).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaignd/coordinator.hpp"
#include "campaignd/json.hpp"
#include "campaignd/net.hpp"
#include "campaignd/service.hpp"
#include "campaignd/wire.hpp"
#include "campaignd/worker.hpp"
#include "sim/campaign.hpp"

namespace {

using mts::campaignd::Coordinator;
using mts::campaignd::CoordinatorOptions;
using mts::campaignd::JobSpec;
namespace json = mts::campaignd::json;

[[noreturn]] void usage(const std::string& err = "") {
  if (!err.empty()) std::cerr << "mts_campaignd: " << err << "\n";
  std::cerr <<
      "usage: mts_campaignd run [--workload W] [--params JSON] [--configs N]"
      " [--reps N]\n"
      "                        [--seed N] [--workers N] [--unit-size N]\n"
      "                        [--max-attempts N] [--quarantine-after N]"
      " [--repro-dir D]\n"
      "                        [--checkpoint FILE] [--checkpoint-every N]"
      " [--resume]\n"
      "                        [--retries N] [--heartbeat-ms N]"
      " [--heartbeat-timeout-ms N]\n"
      "                        [--progress-timeout-ms N] [--respawn-limit N]\n"
      "                        [--chaos JSON] [--worker-bin PATH] [--local]\n"
      "                        [--out FILE] [--health FILE] [--host-stats]"
      " [--events]\n"
      "       mts_campaignd worker --port N\n"
      "       mts_campaignd replay BUNDLE [--workload W] [--params JSON]"
      " [--worker-bin PATH]\n"
      "       mts_campaignd serve [--port N]\n"
      "       mts_campaignd submit --port N [job flags]\n"
      "       mts_campaignd status --port N\n"
      "       mts_campaignd fetch --port N --id N\n";
  std::exit(2);
}

std::uint64_t arg_u64(const std::string& flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const std::uint64_t out = std::stoull(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    usage("bad value for " + flag + ": '" + v + "'");
  }
}

/// Flags shared by run / submit / replay.
struct Cli {
  JobSpec job;
  CoordinatorOptions copt;
  bool local = false;
  bool host_stats = false;
  bool events = false;
  std::string out_path;
  std::string health_path;
  std::uint16_t port = 0;
  std::int64_t id = -1;
  std::vector<std::string> positional;
};

Cli parse_cli(int argc, char** argv, int first) {
  Cli c;
  std::string worker_bin;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) usage(std::string(what) + " requires a value");
      return argv[++i];
    };
    if (a == "--workload") {
      c.job.workload = next("--workload");
    } else if (a == "--params") {
      c.job.params = json::parse(next("--params"));
    } else if (a == "--configs") {
      c.job.configs = static_cast<std::size_t>(arg_u64(a, next(a.c_str())));
    } else if (a == "--reps") {
      c.job.reps = static_cast<std::size_t>(arg_u64(a, next(a.c_str())));
    } else if (a == "--seed") {
      c.job.opt.seed = arg_u64(a, next(a.c_str()));
    } else if (a == "--max-attempts") {
      c.job.opt.max_attempts =
          static_cast<unsigned>(arg_u64(a, next(a.c_str())));
    } else if (a == "--quarantine-after") {
      c.job.opt.quarantine_after =
          static_cast<unsigned>(arg_u64(a, next(a.c_str())));
    } else if (a == "--repro-dir") {
      c.job.opt.repro_dir = next(a.c_str());
    } else if (a == "--collect-violations") {
      c.job.opt.collect_violations = true;
    } else if (a == "--telemetry-interval") {
      c.job.opt.telemetry_interval = arg_u64(a, next(a.c_str()));
    } else if (a == "--run-deadline-sec") {
      c.job.opt.run_deadline_sec = std::stod(next(a.c_str()));
    } else if (a == "--workers") {
      c.copt.workers = static_cast<unsigned>(arg_u64(a, next(a.c_str())));
    } else if (a == "--unit-size") {
      c.copt.unit_size = static_cast<std::size_t>(arg_u64(a, next(a.c_str())));
    } else if (a == "--checkpoint") {
      c.copt.checkpoint_path = next(a.c_str());
    } else if (a == "--checkpoint-every") {
      c.copt.checkpoint_every =
          static_cast<std::size_t>(arg_u64(a, next(a.c_str())));
    } else if (a == "--resume") {
      c.copt.resume = true;
    } else if (a == "--retries") {
      c.copt.unit_retries = static_cast<unsigned>(arg_u64(a, next(a.c_str())));
    } else if (a == "--heartbeat-ms") {
      c.copt.heartbeat_interval_ms =
          static_cast<int>(arg_u64(a, next(a.c_str())));
    } else if (a == "--heartbeat-timeout-ms") {
      c.copt.heartbeat_timeout_ms =
          static_cast<int>(arg_u64(a, next(a.c_str())));
    } else if (a == "--progress-timeout-ms") {
      c.copt.progress_timeout_ms =
          static_cast<int>(arg_u64(a, next(a.c_str())));
    } else if (a == "--backoff-ms") {
      c.copt.backoff_initial_ms = static_cast<int>(arg_u64(a, next(a.c_str())));
    } else if (a == "--backoff-max-ms") {
      c.copt.backoff_max_ms = static_cast<int>(arg_u64(a, next(a.c_str())));
    } else if (a == "--respawn-limit") {
      c.copt.respawn_limit = static_cast<unsigned>(arg_u64(a, next(a.c_str())));
    } else if (a == "--chaos") {
      c.copt.chaos = json::parse(next(a.c_str()));
    } else if (a == "--worker-bin") {
      worker_bin = next(a.c_str());
    } else if (a == "--local") {
      c.local = true;
    } else if (a == "--host-stats") {
      c.host_stats = true;
    } else if (a == "--events") {
      c.events = true;
    } else if (a == "--out") {
      c.out_path = next(a.c_str());
    } else if (a == "--health") {
      c.health_path = next(a.c_str());
    } else if (a == "--port") {
      c.port = static_cast<std::uint16_t>(arg_u64(a, next(a.c_str())));
    } else if (a == "--id") {
      c.id = static_cast<std::int64_t>(arg_u64(a, next(a.c_str())));
    } else if (!a.empty() && a[0] == '-') {
      usage("unknown flag " + a);
    } else {
      c.positional.push_back(a);
    }
  }
  if (!worker_bin.empty()) {
    c.copt.worker_cmd = {worker_bin, "worker", "--port", "{port}"};
  }
  return c;
}

void print_event(const mts::campaignd::Event& e) {
  std::cerr << "[campaignd] " << e.kind;
  if (e.worker >= 0) std::cerr << " worker=" << e.worker;
  if (e.pid >= 0) std::cerr << " pid=" << e.pid;
  if (e.unit >= 0) std::cerr << " unit=" << e.unit;
  if (!e.detail.empty()) std::cerr << " " << e.detail;
  std::cerr << "\n";
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

void emit_artifacts(const Cli& cli, const Coordinator::Outcome& out) {
  const std::string doc = out.to_json(cli.host_stats);
  if (cli.out_path.empty()) {
    std::cout << doc;
  } else if (!write_file(cli.out_path, doc)) {
    std::cerr << "mts_campaignd: cannot write " << cli.out_path << "\n";
  }
  if (!cli.health_path.empty() &&
      !write_file(cli.health_path, out.health_json(cli.host_stats))) {
    std::cerr << "mts_campaignd: cannot write " << cli.health_path << "\n";
  }
}

int cmd_run(int argc, char** argv) {
  Cli cli = parse_cli(argc, argv, 2);
  if (cli.events) cli.copt.on_event = print_event;
  Coordinator::Outcome out;
  if (cli.local) {
    mts::campaignd::run_local(cli.job, out);
  } else {
    Coordinator::install_signal_handlers();
    Coordinator coord(cli.job, cli.copt);
    coord.run(out);
  }
  emit_artifacts(cli, out);
  return out.interrupted ? 3 : 0;
}

int cmd_worker(int argc, char** argv) {
  Cli cli = parse_cli(argc, argv, 2);
  if (cli.port == 0) usage("worker requires --port");
  mts::campaignd::WorkerOptions opt;
  opt.port = cli.port;
  return mts::campaignd::run_worker(opt);
}

int cmd_replay(int argc, char** argv) {
  Cli cli = parse_cli(argc, argv, 2);
  if (cli.positional.size() != 1) usage("replay requires one BUNDLE path");
  const std::string& path = cli.positional.front();

  std::size_t index = 0, configs = 0, reps = 0;
  std::uint64_t campaign_seed = 0;
  std::string fail_type, fail_what;
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw json::ProtocolError("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const json::Value doc = json::parse(buf.str());
    const json::Value& run = doc.at("run");
    index = run.at("index").as_size();
    const std::size_t config = run.at("config").as_size();
    const std::size_t rep = run.at("rep").as_size();
    campaign_seed = run.at("campaign_seed").as_u64();
    configs = static_cast<std::size_t>(run.get_u64("configs", 0));
    reps = static_cast<std::size_t>(run.get_u64("reps", 0));
    if (reps == 0) {
      // Pre-campaignd bundles lack the matrix shape; recover it from the
      // row-major coordinates (index = config * reps + rep).
      if (config > 0) {
        if (index < rep || (index - rep) % config != 0) {
          throw json::ProtocolError("inconsistent run coordinates");
        }
        reps = (index - rep) / config;
        if (rep >= reps) {
          throw json::ProtocolError("inconsistent run coordinates");
        }
      } else {
        reps = rep + 1;
      }
    }
    if (configs == 0) configs = config + 1;
    if (index != config * reps + rep || index >= configs * reps) {
      throw json::ProtocolError("inconsistent run coordinates");
    }
    if (const json::Value* seed = run.find("seed")) {
      if (seed->as_u64() !=
          mts::sim::campaign_run_seed(campaign_seed, index)) {
        throw json::ProtocolError("seed does not match campaign_seed/index");
      }
    }
    const json::Value& failure = doc.at("failure");
    fail_type = failure.at("type").as_string();
    fail_what = failure.at("what").as_string();
  } catch (const std::exception& e) {
    std::cerr << "mts_campaignd: malformed bundle " << path << ": "
              << e.what() << "\n";
    return 2;
  }

  cli.job.configs = configs;
  cli.job.reps = reps;
  cli.job.opt.seed = campaign_seed;
  cli.job.run_filter = {index};
  cli.copt.workers = 1;
  if (cli.events) cli.copt.on_event = print_event;

  Coordinator::Outcome out;
  Coordinator coord(cli.job, cli.copt);
  coord.run(out);
  if (out.results.size() != 1) {
    std::cerr << "replay: run " << index << " produced no result\n";
    return 1;
  }
  const mts::sim::RunResult& r = out.results.front();
  const bool reproduced =
      !r.ok && r.error_type == fail_type && r.error == fail_what;
  std::cout << "replay run " << index << ": "
            << (reproduced
                    ? "reproduced " + fail_type + ": " + fail_what
                    : r.ok ? "did NOT reproduce (run passed)"
                           : "different failure " + r.error_type + ": " +
                                 r.error)
            << "\n";
  return reproduced ? 0 : 1;
}

volatile std::sig_atomic_t g_serve_stop = 0;
void on_serve_signal(int) { g_serve_stop = 1; }

int cmd_serve(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv, 2);
  mts::campaignd::ServiceOptions opt;
  opt.port = cli.port;
  mts::campaignd::Service svc(opt);
  std::cout << "mts_campaignd: serving on 127.0.0.1:" << svc.port()
            << std::endl;
  struct sigaction sa {};
  sa.sa_handler = on_serve_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  std::atomic<bool> done{false};
  std::thread watcher([&] {
    while (!done.load()) {
      if (g_serve_stop != 0) {
        svc.stop();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  svc.serve();
  done.store(true);
  watcher.join();
  return 0;
}

json::Value request(std::uint16_t port, const json::Value& req) {
  const mts::campaignd::Fd conn = mts::campaignd::connect_local(port);
  mts::campaignd::send_all(conn, mts::campaignd::encode_frame(req.dump()));
  mts::campaignd::FrameDecoder dec;
  std::vector<std::string> payloads;
  char buf[65536];
  while (payloads.empty()) {
    const std::size_t n = mts::campaignd::recv_some(conn, buf, sizeof buf);
    if (n == 0) {
      throw mts::campaignd::NetError("service closed without a response");
    }
    dec.feed(buf, n, payloads);
  }
  return json::parse(payloads.front());
}

int cmd_submit(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv, 2);
  if (cli.port == 0) usage("submit requires --port");
  json::Value req = json::Value::object();
  req.set("type", json::Value("submit"));
  req.set("job", mts::campaignd::job_to_json(cli.job));
  req.set("coordinator",
          mts::campaignd::coordinator_options_to_json(cli.copt));
  const json::Value resp = request(cli.port, req);
  std::cout << resp.dump() << "\n";
  return resp.get_bool("ok", false) ? 0 : 1;
}

int cmd_status(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv, 2);
  if (cli.port == 0) usage("status requires --port");
  json::Value req = json::Value::object();
  req.set("type", json::Value("status"));
  const json::Value resp = request(cli.port, req);
  std::cout << resp.dump() << "\n";
  return resp.get_bool("ok", false) ? 0 : 1;
}

int cmd_fetch(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv, 2);
  if (cli.port == 0 || cli.id < 0) usage("fetch requires --port and --id");
  json::Value req = json::Value::object();
  req.set("type", json::Value("fetch"));
  req.set("id", json::Value::number_i64(cli.id));
  const json::Value resp = request(cli.port, req);
  if (!resp.get_bool("ok", false)) {
    std::cerr << resp.dump() << "\n";
    return 1;
  }
  if (const json::Value* campaign = resp.find("campaign")) {
    if (!cli.out_path.empty()) {
      write_file(cli.out_path, campaign->dump());
    } else {
      std::cout << campaign->dump() << "\n";
    }
    if (!cli.health_path.empty()) {
      if (const json::Value* health = resp.find("health")) {
        write_file(cli.health_path, health->dump());
      }
    }
  } else {
    std::cout << resp.dump() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "worker") return cmd_worker(argc, argv);
    if (cmd == "replay") return cmd_replay(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "submit") return cmd_submit(argc, argv);
    if (cmd == "status") return cmd_status(argc, argv);
    if (cmd == "fetch") return cmd_fetch(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "mts_campaignd: " << e.what() << "\n";
    return 2;
  }
  usage("unknown command '" + cmd + "'");
}
