// ASCII waveform capture: samples a set of wires on a fixed grid and
// renders them as text timing diagrams (the harness's quick-look
// complement to full VCD traces).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::metrics {

class AsciiWave {
 public:
  /// Samples every watched wire at t0, t0+step, ..., (samples times).
  /// watch() then arm() must be called before the simulation reaches t0.
  AsciiWave(sim::Simulation& sim, sim::Time t0, sim::Time step,
            unsigned samples);

  AsciiWave(const AsciiWave&) = delete;
  AsciiWave& operator=(const AsciiWave&) = delete;

  void watch(const std::string& label, sim::Wire& w);

  /// Schedules the sampling events; call once after all watch() calls.
  void arm();

  /// Renders one line per wire: '#' for high, '_' for low.
  std::string render() const;

  /// Sampled history for one label (empty if unknown).
  const std::vector<bool>& history(const std::string& label) const;

 private:
  sim::Simulation& sim_;
  sim::Time t0_;
  sim::Time step_;
  unsigned samples_;
  bool armed_ = false;
  std::vector<std::pair<std::string, sim::Wire*>> wires_;
  std::map<std::string, std::vector<bool>> history_;
  std::vector<bool> empty_;
};

}  // namespace mts::metrics
