#include "campaignd/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace mts::campaignd {

std::size_t record_run_index(const json::Value& record) {
  try {
    return record.at("result").at("index").as_size();
  } catch (const json::ProtocolError& e) {
    throw CheckpointError(std::string("malformed run record: ") + e.what());
  }
}

void write_checkpoint(const std::string& path, const Checkpoint& cp) {
  json::Value doc = json::Value::object();
  doc.set("magic", json::Value(kCheckpointMagic));
  doc.set("version", json::Value::number_i64(kCheckpointVersion));
  json::Value job = json::Value::object();
  job.set("configs", json::Value::number_size(cp.configs));
  job.set("reps", json::Value::number_size(cp.reps));
  job.set("digest", json::Value(cp.digest));
  doc.set("job", std::move(job));
  doc.set("complete", json::Value(cp.complete));
  json::Value runs = json::Value::array();
  for (const json::Value& r : cp.runs) runs.push(r);
  doc.set("runs", std::move(runs));
  const std::string text = doc.dump();

  const std::string tmp = path + ".tmp";
  // O_TRUNC: a previous crashed writer may have left a stale tmp behind.
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw CheckpointError("open " + tmp + ": " + std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw CheckpointError("write " + tmp + ": " + std::strerror(err));
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must never become durable before the
  // bytes it points at.
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw CheckpointError("fsync " + tmp + ": " + std::strerror(err));
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw CheckpointError("rename " + tmp + " -> " + path + ": " +
                          std::strerror(errno));
  }
}

Checkpoint load_checkpoint(const std::string& path,
                           const std::string& expect_digest) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  json::Value doc;
  try {
    doc = json::parse(buf.str());
  } catch (const json::ProtocolError& e) {
    throw CheckpointError(path + ": " + e.what());
  }
  try {
    if (doc.at("magic").as_string() != kCheckpointMagic) {
      throw CheckpointError(path + ": not a campaignd checkpoint");
    }
    if (doc.at("version").as_i64() != kCheckpointVersion) {
      throw CheckpointError(path + ": unsupported checkpoint version " +
                            doc.at("version").number_text());
    }
    Checkpoint cp;
    const json::Value& job = doc.at("job");
    cp.configs = job.at("configs").as_size();
    cp.reps = job.at("reps").as_size();
    cp.digest = job.at("digest").as_string();
    cp.complete = doc.get_bool("complete", false);
    if (!expect_digest.empty() && cp.digest != expect_digest) {
      throw CheckpointError(
          path + ": job digest mismatch (checkpoint " + cp.digest +
          ", job " + expect_digest +
          ") -- refusing to resume a different campaign");
    }
    const std::size_t total = cp.configs * cp.reps;
    for (const json::Value& r : doc.at("runs").as_array()) {
      const std::size_t idx = record_run_index(r);
      if (idx >= total) {
        throw CheckpointError(path + ": run index " + std::to_string(idx) +
                              " outside the " + std::to_string(total) +
                              "-run matrix");
      }
      cp.runs.push_back(r);
    }
    return cp;
  } catch (const json::ProtocolError& e) {
    throw CheckpointError(path + ": " + e.what());
  }
}

}  // namespace mts::campaignd
