// Mixed-timing relay stations (Sections 5.2 / 5.3).
//
// Thin wrappers: the paper derives each relay station from its FIFO
// counterpart "by changing only the put and get controllers", which in this
// library is FifoConfig::controller = kRelayStation. The wrappers force
// that setting and expose packet-flavoured accessor names matching
// Fig. 12 / Fig. 15.
#pragma once

#include <string>

#include "fifo/async_sync_fifo.hpp"
#include "fifo/mixed_clock_fifo.hpp"

namespace mts::lip {

/// Mixed-clock relay station (MCRS, Fig. 12): interfaces two synchronous
/// relay chains running on different clocks.
class McRelayStation {
 public:
  McRelayStation(sim::Simulation& sim, const std::string& name,
                 fifo::FifoConfig cfg, sim::Wire& clk_put, sim::Wire& clk_get)
      : fifo_(sim, name, relay(cfg), clk_put, clk_get) {}

  // Left (put-clock) link: packetIn = {data, valid}; full is stopOut.
  sim::Word& packet_in_data() noexcept { return fifo_.data_put(); }
  sim::Wire& packet_in_valid() noexcept { return fifo_.req_put(); }
  sim::Wire& stop_out() noexcept { return fifo_.stop_out(); }

  // Right (get-clock) link: packetOut = {data, valid}; stopIn back-pressure.
  sim::Word& packet_out_data() noexcept { return fifo_.data_get(); }
  sim::Wire& packet_out_valid() noexcept { return fifo_.valid_get(); }
  sim::Wire& stop_in() noexcept { return fifo_.stop_in(); }

  fifo::MixedClockFifo& fifo() noexcept { return fifo_; }

 private:
  static fifo::FifoConfig relay(fifo::FifoConfig cfg) {
    cfg.controller = fifo::ControllerKind::kRelayStation;
    return cfg;
  }
  fifo::MixedClockFifo fifo_;
};

/// Async-sync relay station (ASRS, Fig. 15): accepts 4-phase bundled-data
/// packets from an asynchronous domain (optionally through a micropipeline
/// ARS chain) and emits synchronous packets toward an SRS chain.
class AsRelayStation {
 public:
  AsRelayStation(sim::Simulation& sim, const std::string& name,
                 fifo::FifoConfig cfg, sim::Wire& clk_get)
      : fifo_(sim, name, relay(cfg), clk_get) {}

  // Left link: unchanged asynchronous FIFO put interface (no validity bit:
  // "data is enqueued only when requested").
  sim::Wire& put_req() noexcept { return fifo_.put_req(); }
  sim::Word& put_data() noexcept { return fifo_.put_data(); }
  sim::Wire& put_ack() noexcept { return fifo_.put_ack(); }

  // Right (get-clock) link.
  sim::Word& packet_out_data() noexcept { return fifo_.data_get(); }
  sim::Wire& packet_out_valid() noexcept { return fifo_.valid_get(); }
  sim::Wire& stop_in() noexcept { return fifo_.stop_in(); }

  fifo::AsyncSyncFifo& fifo() noexcept { return fifo_; }

 private:
  static fifo::FifoConfig relay(fifo::FifoConfig cfg) {
    cfg.controller = fifo::ControllerKind::kRelayStation;
    return cfg;
  }
  fifo::AsyncSyncFifo fifo_;
};

}  // namespace mts::lip
