#include "sim/scheduler.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "sim/watchdog.hpp"

namespace mts::sim {

void Scheduler::run_one_from_ring() {
  if (++events_at_now_ > timestamp_budget_) {
    throw SimulationError("combinational oscillation: more than " +
                          std::to_string(timestamp_budget_) +
                          " events at t=" + format_time(now_));
  }
  // Move the event out before invoking: it may schedule new events and
  // grow the ring while running.
  RingEvent ev = ring_.pop_front();
  ++stats_.events_executed;
  dispatch(ev);
}

void Scheduler::run_one_from_heap() {
  if (heap_.size() > 1) std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event e = std::move(heap_.back());
  heap_.pop_back();
  now_ = e.t;
  events_at_now_ = 1;
  // Scheduling order: siblings at this timestamp (larger seq than e) enter
  // the delta ring before e runs, so e's zero-delay children -- appended to
  // the ring during execution -- land after them. The common case (no
  // sibling) skips the ring entirely.
  while (!heap_.empty() && heap_.front().t == e.t) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event& sib = heap_.back();
    ring_.push_back(RingEvent{std::move(sib.cb), sib.site});
    heap_.pop_back();
  }
  ++stats_.events_executed;
  if (profiler_ == nullptr) {
    e.cb();
  } else {
    run_profiled(e.cb, e.site);
  }
}

void Scheduler::run_profiled(Callback& cb, KernelProfiler::SiteId site) {
  // Sample first: the block's wall clock then covers this callback and the
  // dispatch work leading to the next one. While cb runs, `site` is the
  // current site, so events it schedules inherit its attribution (see
  // sim/profiler.hpp).
  profiler_->sample(site);
  ProfileScope scope(profiler_, site);
  cb();
}

bool Scheduler::step() {
  if (!ring_.empty()) {
    run_one_from_ring();
  } else if (!heap_.empty()) {
    run_one_from_heap();
  } else {
    return false;
  }
  if (watchdog_ != nullptr) watchdog_->tick(now_);
  return true;
}

void Scheduler::run_until(Time t) {
  for (;;) {
    if (!ring_.empty()) {
      if (now_ > t) break;  // time already advanced past the horizon
      run_one_from_ring();
    } else if (!heap_.empty() && heap_.front().t <= t) {
      run_one_from_heap();
    } else {
      break;
    }
    if (watchdog_ != nullptr) watchdog_->tick(now_);
  }
  if (now_ < t) {
    now_ = t;
    events_at_now_ = 0;
  }
  // Close the profiler's open sample block so host time spent outside the
  // kernel (between runs) is never charged to a site.
  if (profiler_ != nullptr) profiler_->flush();
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events) {
    if (!ring_.empty()) {
      run_one_from_ring();
    } else if (!heap_.empty()) {
      run_one_from_heap();
    } else {
      break;
    }
    ++executed;
    if (watchdog_ != nullptr) watchdog_->tick(now_);
  }
  if (profiler_ != nullptr) profiler_->flush();
  return executed;
}

void Scheduler::reset() {
  // Drain (not reallocate) both levels: RingBuffer::clear and
  // vector::clear keep their grown storage, so a campaign worker's second
  // run schedules into warm arenas.
  ring_.clear();
  heap_.clear();
  now_ = 0;
  next_seq_ = 0;
  events_at_now_ = 0;
  stats_ = KernelStats{};
}

}  // namespace mts::sim
