// Clock-domain bookkeeping for timing checks.
//
// Every checked flop belongs to a TimingDomain. The max-frequency search
// clocks one interface at a candidate period and asks its domain whether any
// setup/hold violation occurred; synchronizer front stages opt out (their
// violations are *expected* and handled by the metastability model).
#pragma once

#include <cstddef>
#include <string>
#include <utility>

#include "sim/report.hpp"
#include "sim/simulation.hpp"

namespace mts::gates {

class TimingDomain {
 public:
  TimingDomain(sim::Simulation& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}

  TimingDomain(const TimingDomain&) = delete;
  TimingDomain& operator=(const TimingDomain&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Records a setup/hold violation ("kind") on element "what".
  void violation(sim::Time t, const std::string& kind, const std::string& what) {
    if (!enabled_) return;
    ++violations_;
    sim_.report().add(t, sim::Severity::kViolation, kind, name_ + ": " + what);
  }

  std::size_t violations() const noexcept { return violations_; }
  void reset() noexcept { violations_ = 0; }

  /// Disables recording, e.g. during reset or warm-up cycles.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

 private:
  sim::Simulation& sim_;
  std::string name_;
  std::size_t violations_ = 0;
  bool enabled_ = true;
};

}  // namespace mts::gates
