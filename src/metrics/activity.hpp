// Switching-activity metering: counts signal transitions, optionally
// weighted, as a first-order dynamic-energy proxy (activity x capacitance).
// Used to quantify the paper's low-power claim: "the FIFOs offer the
// potential for low power: data items are immobile while in the FIFO"
// (Section 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/signal.hpp"

namespace mts::metrics {

class ActivityMeter {
 public:
  ActivityMeter() = default;
  ActivityMeter(const ActivityMeter&) = delete;
  ActivityMeter& operator=(const ActivityMeter&) = delete;

  /// Counts every transition of `w`, weighted by `weight` (e.g. relative
  /// node capacitance).
  void watch(sim::Wire& w, double weight = 1.0);

  /// Counts toggled BITS on every change of `d` (Hamming distance between
  /// old and new), weighted per bit.
  void watch(sim::Word& d, double weight_per_bit = 1.0);

  std::uint64_t transitions() const noexcept { return transitions_; }
  double weighted_activity() const noexcept { return weighted_; }

  void reset() noexcept {
    transitions_ = 0;
    weighted_ = 0;
  }

 private:
  std::uint64_t transitions_ = 0;
  double weighted_ = 0;
};

}  // namespace mts::metrics
