#include "campaignd/service.hpp"

#include <poll.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "campaignd/net.hpp"
#include "campaignd/snapshots.hpp"
#include "campaignd/wire.hpp"

namespace mts::campaignd {

// ---------------------------------------------------------------------------
// Job / options wire forms
// ---------------------------------------------------------------------------

json::Value job_to_json(const JobSpec& job) {
  json::Value v = json::Value::object();
  v.set("workload", json::Value(job.workload));
  v.set("params", job.params);
  v.set("configs", json::Value::number_size(job.configs));
  v.set("reps", json::Value::number_size(job.reps));
  v.set("options", options_to_json(job.opt));
  if (!job.run_filter.empty()) {
    json::Value f = json::Value::array();
    for (std::size_t i : job.run_filter) f.push(json::Value::number_size(i));
    v.set("run_filter", std::move(f));
  }
  return v;
}

JobSpec job_from_json(const json::Value& v) {
  JobSpec job;
  job.workload = v.get_string("workload", "fifo_soak");
  if (const json::Value* p = v.find("params")) job.params = *p;
  job.configs = static_cast<std::size_t>(v.get_u64("configs", 1));
  job.reps = static_cast<std::size_t>(v.get_u64("reps", 1));
  if (const json::Value* o = v.find("options")) {
    job.opt = options_from_json(*o);
  }
  if (const json::Value* f = v.find("run_filter")) {
    for (const json::Value& i : f->as_array()) {
      job.run_filter.push_back(i.as_size());
    }
  }
  return job;
}

json::Value coordinator_options_to_json(const CoordinatorOptions& opt) {
  json::Value v = json::Value::object();
  v.set("workers", json::Value::number_u64(opt.workers));
  if (!opt.worker_cmd.empty()) {
    json::Value c = json::Value::array();
    for (const std::string& a : opt.worker_cmd) c.push(json::Value(a));
    v.set("worker_cmd", std::move(c));
  }
  v.set("unit_size", json::Value::number_size(opt.unit_size));
  v.set("heartbeat_interval_ms",
        json::Value::number_i64(opt.heartbeat_interval_ms));
  v.set("heartbeat_timeout_ms",
        json::Value::number_i64(opt.heartbeat_timeout_ms));
  v.set("progress_timeout_ms",
        json::Value::number_i64(opt.progress_timeout_ms));
  v.set("unit_retries", json::Value::number_u64(opt.unit_retries));
  v.set("backoff_initial_ms", json::Value::number_i64(opt.backoff_initial_ms));
  v.set("backoff_max_ms", json::Value::number_i64(opt.backoff_max_ms));
  v.set("respawn_limit", json::Value::number_u64(opt.respawn_limit));
  if (!opt.checkpoint_path.empty()) {
    v.set("checkpoint_path", json::Value(opt.checkpoint_path));
  }
  v.set("checkpoint_every", json::Value::number_size(opt.checkpoint_every));
  v.set("resume", json::Value(opt.resume));
  if (opt.chaos.is_array() && opt.chaos.size() > 0) v.set("chaos", opt.chaos);
  return v;
}

CoordinatorOptions coordinator_options_from_json(const json::Value& v) {
  CoordinatorOptions opt;
  opt.workers = static_cast<unsigned>(v.get_u64("workers", opt.workers));
  if (const json::Value* c = v.find("worker_cmd")) {
    for (const json::Value& a : c->as_array()) {
      opt.worker_cmd.push_back(a.as_string());
    }
  }
  opt.unit_size = static_cast<std::size_t>(v.get_u64("unit_size", 0));
  opt.heartbeat_interval_ms = static_cast<int>(v.get_u64(
      "heartbeat_interval_ms",
      static_cast<std::uint64_t>(opt.heartbeat_interval_ms)));
  opt.heartbeat_timeout_ms = static_cast<int>(v.get_u64(
      "heartbeat_timeout_ms",
      static_cast<std::uint64_t>(opt.heartbeat_timeout_ms)));
  opt.progress_timeout_ms = static_cast<int>(v.get_u64(
      "progress_timeout_ms",
      static_cast<std::uint64_t>(opt.progress_timeout_ms)));
  opt.unit_retries =
      static_cast<unsigned>(v.get_u64("unit_retries", opt.unit_retries));
  opt.backoff_initial_ms = static_cast<int>(v.get_u64(
      "backoff_initial_ms", static_cast<std::uint64_t>(opt.backoff_initial_ms)));
  opt.backoff_max_ms = static_cast<int>(v.get_u64(
      "backoff_max_ms", static_cast<std::uint64_t>(opt.backoff_max_ms)));
  opt.respawn_limit =
      static_cast<unsigned>(v.get_u64("respawn_limit", opt.respawn_limit));
  opt.checkpoint_path = v.get_string("checkpoint_path", "");
  opt.checkpoint_every =
      static_cast<std::size_t>(v.get_u64("checkpoint_every",
                                         opt.checkpoint_every));
  opt.resume = v.get_bool("resume", false);
  if (const json::Value* c = v.find("chaos")) opt.chaos = *c;
  return opt;
}

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

namespace {

struct JobEntry {
  std::int64_t id = 0;
  std::string state = "queued";  ///< queued|running|done|failed|interrupted
  std::size_t done = 0;
  std::size_t total = 0;
  std::string error;
  std::string campaign_json;  ///< done/interrupted only
  std::string health_json;
  JobSpec job;
  CoordinatorOptions copt;
};

}  // namespace

struct Service::Impl {
  Listener listener;
  std::atomic<bool> stopping{false};

  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::int64_t> queue;
  std::vector<std::unique_ptr<JobEntry>> jobs;
  std::int64_t next_id = 1;
  Coordinator* active = nullptr;  ///< guarded by mu; runner-owned lifetime
  std::thread runner;

  explicit Impl(const ServiceOptions& opt)
      : listener(listen_local(opt.port)) {
    runner = std::thread([this] { run_jobs(); });
  }

  ~Impl() {
    stop();
    if (runner.joinable()) runner.join();
  }

  void stop() {
    stopping.store(true);
    std::lock_guard<std::mutex> lk(mu);
    if (active != nullptr) active->request_shutdown();
    cv.notify_all();
  }

  JobEntry* find(std::int64_t id) {
    for (auto& j : jobs) {
      if (j->id == id) return j.get();
    }
    return nullptr;
  }

  // -- runner thread --------------------------------------------------------

  void run_jobs() {
    for (;;) {
      JobEntry* entry = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [this] { return stopping.load() || !queue.empty(); });
        if (queue.empty()) {
          if (stopping.load()) return;
          continue;
        }
        entry = find(queue.front());
        queue.pop_front();
        if (entry == nullptr) continue;
        entry->state = "running";
      }
      execute(*entry);
      if (stopping.load()) {
        std::lock_guard<std::mutex> lk(mu);
        if (queue.empty()) return;
      }
    }
  }

  void execute(JobEntry& entry) {
    CoordinatorOptions copt = entry.copt;
    copt.on_event = [this, &entry](const Event& e) {
      if (e.kind != "run_done" && e.kind != "unit_quarantined") return;
      std::lock_guard<std::mutex> lk(mu);
      if (e.kind == "run_done") ++entry.done;
    };
    Coordinator coord(entry.job, std::move(copt));
    {
      std::lock_guard<std::mutex> lk(mu);
      active = &coord;
      if (stopping.load()) coord.request_shutdown();
    }
    Coordinator::Outcome out;
    std::string error;
    bool failed = false;
    try {
      coord.run(out);
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    }
    std::lock_guard<std::mutex> lk(mu);
    active = nullptr;
    if (failed) {
      entry.state = "failed";
      entry.error = error;
      return;
    }
    entry.state = out.interrupted ? "interrupted" : "done";
    entry.done = out.results.size();
    entry.campaign_json = out.to_json(false);
    entry.health_json = out.health_json(false);
  }

  // -- request handling -----------------------------------------------------

  json::Value handle(const json::Value& req) {
    json::Value resp = json::Value::object();
    const std::string type = req.at("type").as_string();
    if (type == "submit") {
      JobSpec job = job_from_json(req.at("job"));
      CoordinatorOptions copt;
      if (const json::Value* c = req.find("coordinator")) {
        copt = coordinator_options_from_json(*c);
      }
      auto entry = std::make_unique<JobEntry>();
      entry->job = std::move(job);
      entry->copt = std::move(copt);
      entry->total = entry->job.run_filter.empty()
                         ? entry->job.configs * entry->job.reps
                         : entry->job.run_filter.size();
      std::lock_guard<std::mutex> lk(mu);
      entry->id = next_id++;
      const std::int64_t id = entry->id;
      queue.push_back(id);
      jobs.push_back(std::move(entry));
      cv.notify_all();
      resp.set("ok", json::Value(true));
      resp.set("job_id", json::Value::number_i64(id));
      return resp;
    }
    if (type == "status") {
      std::lock_guard<std::mutex> lk(mu);
      json::Value arr = json::Value::array();
      for (const auto& j : jobs) {
        json::Value e = json::Value::object();
        e.set("id", json::Value::number_i64(j->id));
        e.set("state", json::Value(j->state));
        e.set("done", json::Value::number_size(j->done));
        e.set("total", json::Value::number_size(j->total));
        if (!j->error.empty()) e.set("error", json::Value(j->error));
        arr.push(std::move(e));
      }
      resp.set("ok", json::Value(true));
      resp.set("jobs", std::move(arr));
      return resp;
    }
    if (type == "fetch") {
      const std::int64_t id = req.at("id").as_i64();
      std::lock_guard<std::mutex> lk(mu);
      JobEntry* j = find(id);
      if (j == nullptr) {
        resp.set("ok", json::Value(false));
        resp.set("error", json::Value("no job " + std::to_string(id)));
        return resp;
      }
      resp.set("ok", json::Value(true));
      resp.set("state", json::Value(j->state));
      if (!j->campaign_json.empty()) {
        resp.set("campaign", json::parse(j->campaign_json));
        resp.set("health", json::parse(j->health_json));
      }
      if (!j->error.empty()) resp.set("error", json::Value(j->error));
      return resp;
    }
    throw json::ProtocolError("service: unknown request type '" + type + "'");
  }

  void serve_one(Fd conn) {
    FrameDecoder dec;
    std::vector<std::string> payloads;
    char buf[65536];
    json::Value resp = json::Value::object();
    try {
      while (payloads.empty()) {
        const std::size_t n = recv_some(conn, buf, sizeof buf);
        if (n == 0) return;  // client gave up
        dec.feed(buf, n, payloads);
      }
      resp = handle(json::parse(payloads.front()));
    } catch (const std::exception& e) {
      resp = json::Value::object();
      resp.set("ok", json::Value(false));
      resp.set("error", json::Value(e.what()));
    }
    try {
      send_all(conn, encode_frame(resp.dump()));
    } catch (const NetError&) {
    }
  }

  void serve(std::size_t max_connections) {
    std::size_t served = 0;
    while (!stopping.load()) {
      pollfd pfd{listener.fd.get(), POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 100);
      if (rc <= 0) continue;
      try {
        serve_one(accept_conn(listener.fd));
      } catch (const NetError&) {
        continue;
      }
      ++served;
      if (max_connections > 0 && served >= max_connections) return;
    }
  }
};

Service::Service(ServiceOptions opt) : impl_(new Impl(opt)) {}

Service::~Service() { delete impl_; }

std::uint16_t Service::port() const noexcept { return impl_->listener.port; }

void Service::serve(std::size_t max_connections) {
  impl_->serve(max_connections);
}

void Service::stop() { impl_->stop(); }

}  // namespace mts::campaignd
