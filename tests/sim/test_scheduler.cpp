#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

namespace mts::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, SameTimestampRunsInSchedulingOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    s.at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, EventsScheduledDuringExecutionRun) {
  Scheduler s;
  int hits = 0;
  s.at(10, [&] {
    ++hits;
    s.after(5, [&] { ++hits; });
  });
  s.run();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(s.now(), 15u);
}

TEST(Scheduler, ZeroDelayEventRunsAtSameTimeAfterCurrent) {
  Scheduler s;
  std::vector<int> order;
  s.at(10, [&] {
    s.after(0, [&] { order.push_back(2); });
    order.push_back(1);
  });
  s.at(10, [&] { order.push_back(3); });
  s.run();
  // The zero-delay event was scheduled after both time-10 events existed,
  // so it runs last within t=10.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Scheduler, RejectsPastEvents) {
  Scheduler s;
  s.at(10, [] {});
  s.run();
  EXPECT_THROW(s.at(5, [] {}), AssertionError);
}

TEST(Scheduler, RunUntilAdvancesTimeEvenWhenIdle) {
  Scheduler s;
  s.run_until(1000);
  EXPECT_EQ(s.now(), 1000u);
}

TEST(Scheduler, RunUntilDoesNotExecuteLaterEvents) {
  Scheduler s;
  int hits = 0;
  s.at(50, [&] { ++hits; });
  s.at(150, [&] { ++hits; });
  s.run_until(100);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(s.now(), 100u);
  s.run_until(200);
  EXPECT_EQ(hits, 2);
}

TEST(Scheduler, RunUntilInclusiveOfBoundary) {
  Scheduler s;
  int hits = 0;
  s.at(100, [&] { ++hits; });
  s.run_until(100);
  EXPECT_EQ(hits, 1);
}

TEST(Scheduler, OscillationGuardThrows) {
  Scheduler s;
  s.set_timestamp_budget(100);
  std::function<void()> loop = [&] { s.after(0, loop); };
  s.at(10, loop);
  EXPECT_THROW(s.run(), SimulationError);
}

TEST(Scheduler, RunBudgetStopsExecution) {
  Scheduler s;
  int hits = 0;
  std::function<void()> loop = [&] {
    ++hits;
    s.after(1, loop);
  };
  s.at(0, loop);
  EXPECT_EQ(s.run(100), 100u);
  EXPECT_EQ(hits, 100);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.at(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, PendingCountsQueuedEvents) {
  Scheduler s;
  s.at(1, [] {});
  s.at(2, [] {});
  EXPECT_EQ(s.pending(), 2u);
}

// Events at one timestamp enter through both queue levels: those scheduled
// before time advances sit in the future heap, those scheduled while the
// timestamp is executing go straight to the delta ring. Scheduling order
// must hold across that boundary.
TEST(Scheduler, FifoOrderAcrossRingHeapBoundary) {
  Scheduler s;
  std::vector<int> order;
  s.at(5, [&] {
    order.push_back(1);
    s.at(5, [&] { order.push_back(4); });  // ring entry
    s.at(5, [&] { order.push_back(5); });  // ring entry
  });
  s.at(5, [&] { order.push_back(2); });  // heap sibling of the first event
  s.at(5, [&] { order.push_back(3); });  // heap sibling of the first event
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

// The per-timestamp budget must count ring events belonging to a timestamp
// that was entered via the heap, and must reset when time advances.
TEST(Scheduler, OscillationBudgetSpansBothQueueLevels) {
  Scheduler s;
  s.set_timestamp_budget(50);
  std::function<void()> loop = [&] { s.after(0, loop); };
  s.at(7, loop);  // enters at t=7 through the heap, then loops in the ring
  EXPECT_THROW(s.run(), SimulationError);

  Scheduler ok;
  ok.set_timestamp_budget(50);
  int hits = 0;
  std::function<void()> advance = [&] {
    if (++hits < 200) ok.after(1, advance);
  };
  ok.at(0, advance);
  ok.run();  // 200 events, but only one per timestamp: budget never trips
  EXPECT_EQ(hits, 200);
}

TEST(Scheduler, StatsCountExecutedEventsAndPeakDepth) {
  Scheduler s;
  EXPECT_EQ(s.stats().events_executed, 0u);
  for (int i = 0; i < 8; ++i) {
    s.at(static_cast<Time>(i + 1), [] {});
  }
  EXPECT_EQ(s.stats().peak_queue_depth, 8u);
  s.run();
  EXPECT_EQ(s.stats().events_executed, 8u);
  EXPECT_GE(s.stats().pool_high_water, 8u);
}

// Steady-state chains must recycle queue storage rather than grow it: the
// pool high-water mark after a million-event chain stays at the small
// initial footprint.
TEST(Scheduler, SteadyStateChainDoesNotGrowPools) {
  Scheduler s;
  std::uint64_t count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100'000) s.after(1, tick);
  };
  s.at(1, tick);
  s.run();
  EXPECT_EQ(count, 100'000u);
  // One outstanding event at a time: a handful of slots at most.
  EXPECT_LE(s.stats().pool_high_water, 64u);
}

// reset() is the campaign engine's arena-reuse hook: it must return the
// scheduler to t=0 with empty queues and zeroed counters while KEEPING the
// grown event-pool storage, so a worker's next run allocates nothing.
TEST(Scheduler, ResetDropsPendingWorkButKeepsArenas) {
  Scheduler s;
  int late_fires = 0;
  for (int i = 0; i < 32; ++i) {
    s.at(static_cast<Time>(100 + i), [&] { ++late_fires; });
  }
  s.run_until(50);  // nothing executed yet; queue is primed
  const std::size_t grown_pool = s.stats().pool_high_water;
  EXPECT_GE(grown_pool, 32u);

  s.reset();
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.stats().events_executed, 0u);
  EXPECT_EQ(s.stats().peak_queue_depth, 0u);
  // Pending callbacks were destroyed, not deferred.
  s.run();
  EXPECT_EQ(late_fires, 0);
  EXPECT_EQ(s.now(), 0u);

  // The arena survived: refilling to the same depth allocates no new slots.
  int refill_fires = 0;
  for (int i = 0; i < 32; ++i) {
    s.at(static_cast<Time>(10 + i), [&] { ++refill_fires; });
  }
  s.run();
  EXPECT_EQ(refill_fires, 32);
  EXPECT_EQ(s.stats().events_executed, 32u);
  EXPECT_LE(s.stats().pool_high_water, grown_pool);
}

}  // namespace
}  // namespace mts::sim
