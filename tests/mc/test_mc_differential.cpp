// Differential oracle: mc::check_net's independent marking-graph search
// must agree with ctrl::analyze() on one-safety, deadlock-freedom and the
// reachable-marking count -- on the shipped controller nets, on hand-built
// corner cases, and on a fixed-seed population of random small 1-safe nets.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "ctrl/petri.hpp"
#include "ctrl/reachability.hpp"
#include "ctrl/specs.hpp"
#include "mc/net_model.hpp"

namespace mts::mc {
namespace {

using ctrl::PetriNet;
using ctrl::PnTransition;

void expect_agreement(const PetriNet& net) {
  const ctrl::ReachabilityResult ref = ctrl::analyze(net);
  const NetCheckResult got = check_net(net);
  EXPECT_EQ(got.one_safe, ref.one_safe) << net.name;
  EXPECT_EQ(got.deadlock_free, ref.deadlock_free) << net.name;
  EXPECT_EQ(got.reachable_markings, ref.reachable_markings) << net.name;
}

TEST(NetDifferential, ShippedControllerNetsAgree) {
  expect_agreement(ctrl::dv_linear_net());
  expect_agreement(ctrl::dv_as_net());
}

TEST(NetDifferential, ShippedNetCountsArePinned) {
  const NetCheckResult linear = check_net(ctrl::dv_linear_net());
  EXPECT_TRUE(linear.one_safe);
  EXPECT_TRUE(linear.deadlock_free);
  EXPECT_EQ(linear.reachable_markings, 8u);
  const NetCheckResult as = check_net(ctrl::dv_as_net());
  EXPECT_TRUE(as.one_safe);
  EXPECT_TRUE(as.deadlock_free);
  EXPECT_EQ(as.reachable_markings, 14u);
}

TEST(NetDifferential, KnownDeadlockAgrees) {
  // One transition drains place 0 into a sink place with no outgoing arc.
  PetriNet net;
  net.name = "sink";
  net.num_places = 2;
  net.initial_marking = {0};
  PnTransition t;
  t.label = "t0";
  t.pre = {0};
  t.post = {1};
  net.transitions.push_back(t);
  const NetCheckResult got = check_net(net);
  EXPECT_FALSE(got.deadlock_free);
  EXPECT_TRUE(got.one_safe);
  EXPECT_EQ(got.reachable_markings, 2u);
  expect_agreement(net);
}

TEST(NetDifferential, KnownUnsafeNetAgrees) {
  // Both t1 and t2 produce into place 2; firing the second while place 2 is
  // still marked violates 1-safety.
  PetriNet net;
  net.name = "unsafe";
  net.num_places = 3;
  net.initial_marking = {0, 1};
  PnTransition t1;
  t1.label = "t1";
  t1.pre = {0};
  t1.post = {2};
  PnTransition t2;
  t2.label = "t2";
  t2.pre = {1};
  t2.post = {2};
  net.transitions = {t1, t2};
  const NetCheckResult got = check_net(net);
  EXPECT_FALSE(got.one_safe);
  EXPECT_FALSE(got.violation.empty());
  expect_agreement(net);
}

/// Random net: 3..8 places, 2..6 transitions with 1-2 pre/post places each,
/// random nonempty initial marking. Deliberately unconstrained -- many draws
/// are unsafe or deadlocking, which is the point: the two implementations
/// must agree on the verdicts, not just on well-behaved inputs.
PetriNet random_net(std::mt19937& rng, unsigned index) {
  std::uniform_int_distribution<unsigned> places_d(3, 8);
  const unsigned places = places_d(rng);
  std::uniform_int_distribution<unsigned> trans_d(2, 6);
  const unsigned ntrans = trans_d(rng);
  std::uniform_int_distribution<unsigned> place_d(0, places - 1);
  std::uniform_int_distribution<unsigned> coin(0, 1);

  PetriNet net;
  net.name = "rand" + std::to_string(index);
  net.num_places = places;
  for (unsigned p = 0; p < places; ++p) {
    if (coin(rng) != 0) net.initial_marking.push_back(p);
  }
  if (net.initial_marking.empty()) net.initial_marking.push_back(place_d(rng));
  for (unsigned t = 0; t < ntrans; ++t) {
    PnTransition tr;
    tr.label = "t" + std::to_string(t);
    tr.pre.push_back(place_d(rng));
    if (coin(rng) != 0) {
      const unsigned extra = place_d(rng);
      if (extra != tr.pre[0]) tr.pre.push_back(extra);
    }
    tr.post.push_back(place_d(rng));
    if (coin(rng) != 0) {
      const unsigned extra = place_d(rng);
      if (extra != tr.post[0]) tr.post.push_back(extra);
    }
    net.transitions.push_back(tr);
  }
  return net;
}

TEST(NetDifferential, RandomNetPopulationAgrees) {
  std::mt19937 rng(0xD5C0'2001u);  // fixed seed: the population is pinned
  unsigned unsafe = 0;
  unsigned deadlocking = 0;
  for (unsigned i = 0; i < 120; ++i) {
    const PetriNet net = random_net(rng, i);
    const ctrl::ReachabilityResult ref = ctrl::analyze(net);
    const NetCheckResult got = check_net(net);
    ASSERT_EQ(got.one_safe, ref.one_safe) << net.name;
    ASSERT_EQ(got.deadlock_free, ref.deadlock_free) << net.name;
    ASSERT_EQ(got.reachable_markings, ref.reachable_markings) << net.name;
    unsafe += got.one_safe ? 0u : 1u;
    deadlocking += got.deadlock_free ? 0u : 1u;
  }
  // The population must actually exercise both verdicts.
  EXPECT_GT(unsafe, 0u);
  EXPECT_GT(deadlocking, 0u);
  EXPECT_LT(unsafe, 120u);
}

}  // namespace
}  // namespace mts::mc
