file(REMOVE_RECURSE
  "CMakeFiles/example_async_dsp_bridge.dir/async_dsp_bridge.cpp.o"
  "CMakeFiles/example_async_dsp_bridge.dir/async_dsp_bridge.cpp.o.d"
  "example_async_dsp_bridge"
  "example_async_dsp_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_async_dsp_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
