#include "sim/profiler.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "sim/scheduler.hpp"

namespace mts::sim {
namespace {

TEST(KernelProfiler, SiteZeroIsUnattributed) {
  KernelProfiler p;
  ASSERT_FALSE(p.sites().empty());
  EXPECT_EQ(p.sites()[0].label, "(unattributed)");
  EXPECT_EQ(p.current(), 0u);
}

TEST(KernelProfiler, SiteRegistrationIsIdempotent) {
  KernelProfiler p;
  const auto a = p.site("clock clk_a");
  const auto b = p.site("driver put0");
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(p.site("clock clk_a"), a);
  EXPECT_EQ(p.sites().size(), 3u);  // unattributed + two labels
}

TEST(KernelProfiler, RecordAccumulatesAndTopSortsByWallTime) {
  KernelProfiler p;
  const auto hot = p.site("hot");
  const auto warm = p.site("warm");
  p.site("never-ran");
  p.record(warm, 5);
  p.record(hot, 100);
  p.record(hot, 200);

  const auto top = p.top();
  ASSERT_EQ(top.size(), 2u);  // sites with no events are omitted
  EXPECT_EQ(top[0].label, "hot");
  EXPECT_EQ(top[0].events, 2u);
  EXPECT_EQ(top[0].wall_ns, 300u);
  EXPECT_EQ(top[1].label, "warm");

  // n caps the row count.
  EXPECT_EQ(p.top(1).size(), 1u);
}

TEST(KernelProfiler, ResetZeroesCountersButKeepsSites) {
  KernelProfiler p;
  const auto a = p.site("a");
  p.record(a, 42);
  p.reset();
  EXPECT_TRUE(p.top().empty());
  EXPECT_EQ(p.site("a"), a);  // ids survive the reset
}

TEST(KernelProfiler, ProfileScopeRestoresPreviousSite) {
  KernelProfiler p;
  const auto outer = p.site("outer");
  const auto inner = p.site("inner");
  p.set_current(outer);
  {
    ProfileScope scope(&p, inner);
    EXPECT_EQ(p.current(), inner);
  }
  EXPECT_EQ(p.current(), outer);
}

TEST(KernelProfiler, NullProfileScopeIsANoop) {
  ProfileScope scope(nullptr, 7);  // must not crash
}

TEST(KernelProfiler, MacroYieldsZeroForNullProfiler) {
  KernelProfiler* none = nullptr;
  EXPECT_EQ(MTS_PROFILE_SITE(none, "x"), 0u);
  KernelProfiler p;
  const auto id = MTS_PROFILE_SITE(&p, "x");
  EXPECT_NE(id, 0u);
  // Label carries the registration file:line.
  EXPECT_NE(p.sites()[id].label.find("test_profiler.cpp"), std::string::npos);
}

TEST(SchedulerProfiling, DormantSchedulerReportsNoHotSites) {
  Scheduler s;
  s.at(10, [] {});
  s.run();
  EXPECT_TRUE(s.stats().hot_sites.empty());
}

TEST(SchedulerProfiling, AttributesEventsToTheirSites) {
  Scheduler s;
  KernelProfiler p;
  s.set_profiler(&p);
  const auto tick = p.site("tick");
  int ran = 0;
  s.at_site(10, tick, [&] { ++ran; });
  s.at_site(20, tick, [&] { ++ran; });
  s.run();
  EXPECT_EQ(ran, 2);

  const auto& hot = s.stats().hot_sites;
  ASSERT_FALSE(hot.empty());
  EXPECT_EQ(hot[0].label, "tick");
  EXPECT_EQ(hot[0].events, 2u);
}

TEST(SchedulerProfiling, CascadesInheritTheSchedulingEventsSite) {
  Scheduler s;
  KernelProfiler p;
  s.set_profiler(&p);
  const auto root = p.site("root");
  // The root event schedules a chain of followers with plain at(); each
  // follower must inherit `root` because it was scheduled while a
  // root-attributed event was executing.
  int depth = 0;
  std::function<void()> step = [&] {
    if (++depth < 5) s.at(s.now() + 1, [&] { step(); });
  };
  s.at_site(1, root, [&] { step(); });
  s.run();
  EXPECT_EQ(depth, 5);

  std::uint64_t root_events = 0;
  for (const auto& site : p.sites()) {
    if (site.label == "root") root_events = site.events;
  }
  EXPECT_EQ(root_events, 5u);
}

TEST(SchedulerProfiling, ProfileScopeReattributesNestedScheduling) {
  Scheduler s;
  KernelProfiler p;
  s.set_profiler(&p);
  const auto outer = p.site("outer");
  const auto claimed = p.site("claimed");
  s.at_site(1, outer, [&] {
    ProfileScope scope(&p, claimed);
    s.at(2, [] {});
  });
  s.run();

  std::uint64_t claimed_events = 0;
  for (const auto& site : p.sites()) {
    if (site.label == "claimed") claimed_events = site.events;
  }
  EXPECT_EQ(claimed_events, 1u);
}

TEST(SchedulerProfiling, FormatHotSitesRendersAndEmptyIsEmpty) {
  KernelStats none;
  EXPECT_TRUE(format_hot_sites(none).empty());

  Scheduler s;
  KernelProfiler p;
  s.set_profiler(&p);
  s.at_site(1, p.site("clock main"), [] {});
  s.run();
  const std::string text = format_hot_sites(s.stats());
  EXPECT_NE(text.find("clock main"), std::string::npos);
}

}  // namespace
}  // namespace mts::sim
