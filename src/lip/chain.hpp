// Latency-insensitive system topologies (Fig. 11a and Fig. 14).
//
// A SyncRelayChain strings relay stations along a long wire inside one
// clock domain. MixedClockLink and AsyncSyncLink assemble the paper's two
// full mixed-timing topologies:
//
//   Fig. 11a:  sender --SRS*(clk1)--> MCRS --SRS*(clk2)--> receiver
//   Fig. 14:   async sender --ARS*--> ASRS --SRS*(clk)--> receiver
#pragma once

#include <string>
#include <vector>

#include "fifo/config.hpp"
#include "gates/netlist.hpp"
#include "lip/micropipeline.hpp"
#include "lip/relay_station.hpp"
#include "lip/stations.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::lip {

/// Relay-station implementation used inside a chain: the behavioural model
/// (fast) or the gate-level netlist (full timing fidelity, checkable).
enum class RsImpl { kBehavioural, kStructural };

/// A chain of `length` synchronous relay stations on one clock. Boundary
/// wires are caller-owned; with length 0 the chain degenerates to buffered
/// wires (no pipelining).
class SyncRelayChain {
 public:
  SyncRelayChain(sim::Simulation& sim, const std::string& name, sim::Wire& clk,
                 unsigned length, const gates::DelayModel& dm,
                 sim::Word& in_data, sim::Wire& in_valid, sim::Wire& stop_out,
                 sim::Word& out_data, sim::Wire& out_valid, sim::Wire& stop_in,
                 RsImpl impl = RsImpl::kBehavioural);

  SyncRelayChain(const SyncRelayChain&) = delete;
  SyncRelayChain& operator=(const SyncRelayChain&) = delete;

  unsigned length() const noexcept { return length_; }
  /// Valid packets currently in flight inside the chain, for tests
  /// (behavioural stations only; 0 for structural chains).
  unsigned buffered_valid() const;

  /// Instance names of the boundary stations, for trace-stream linking by
  /// parent links ("" when the chain is empty or structural -- structural
  /// stations carry no observers).
  const std::string& first_station_instance() const { return first_station_; }
  const std::string& last_station_instance() const { return last_station_; }

 private:
  gates::Netlist nl_;
  unsigned length_;
  std::vector<RelayStation*> stations_;
  std::string first_station_;
  std::string last_station_;
};

/// Fig. 11a: two synchronous domains joined by a mixed-clock relay station,
/// each side reached through a chain of synchronous relay stations.
class MixedClockLink {
 public:
  MixedClockLink(sim::Simulation& sim, const std::string& name,
                 const fifo::FifoConfig& cfg, sim::Wire& clk_left,
                 sim::Wire& clk_right, unsigned left_length,
                 unsigned right_length);

  MixedClockLink(const MixedClockLink&) = delete;
  MixedClockLink& operator=(const MixedClockLink&) = delete;

  // Left interface (clk_left domain, producer side).
  sim::Word& data_in() noexcept { return *data_in_; }
  sim::Wire& valid_in() noexcept { return *valid_in_; }
  sim::Wire& stop_out() noexcept { return *stop_out_; }

  // Right interface (clk_right domain, consumer side).
  sim::Word& data_out() noexcept { return *data_out_; }
  sim::Wire& valid_out() noexcept { return *valid_out_; }
  sim::Wire& stop_in() noexcept { return *stop_in_; }

  McRelayStation& mcrs() noexcept { return *mcrs_; }

  /// Boundary instance names for trace-stream linking with neighbours
  /// (sim/trace_session.hpp): the first/last traced component of the link.
  const std::string& first_traced_instance() const { return first_traced_; }
  const std::string& last_traced_instance() const { return last_traced_; }

 private:
  gates::Netlist nl_;
  std::string first_traced_;
  std::string last_traced_;
  sim::Word* data_in_ = nullptr;
  sim::Wire* valid_in_ = nullptr;
  sim::Wire* stop_out_ = nullptr;
  sim::Word* data_out_ = nullptr;
  sim::Wire* valid_out_ = nullptr;
  sim::Wire* stop_in_ = nullptr;
  McRelayStation* mcrs_ = nullptr;
};

/// Fig. 14: an asynchronous sender reaches a synchronous domain through a
/// micropipeline ARS chain, the ASRS, and a synchronous SRS chain.
class AsyncSyncLink {
 public:
  AsyncSyncLink(sim::Simulation& sim, const std::string& name,
                const fifo::FifoConfig& cfg, sim::Wire& clk_right,
                unsigned ars_length, unsigned srs_length);

  AsyncSyncLink(const AsyncSyncLink&) = delete;
  AsyncSyncLink& operator=(const AsyncSyncLink&) = delete;

  // Left interface: asynchronous 4-phase bundled data (producer side).
  sim::Wire& put_req() noexcept { return *put_req_; }
  sim::Wire& put_ack() noexcept { return *put_ack_; }
  sim::Word& put_data() noexcept { return *put_data_; }

  // Right interface (clk_right domain, consumer side).
  sim::Word& data_out() noexcept { return *data_out_; }
  sim::Wire& valid_out() noexcept { return *valid_out_; }
  sim::Wire& stop_in() noexcept { return *stop_in_; }

  AsRelayStation& asrs() noexcept { return *asrs_; }

  /// Boundary instance names for trace-stream linking with neighbours.
  const std::string& first_traced_instance() const { return first_traced_; }
  const std::string& last_traced_instance() const { return last_traced_; }

 private:
  gates::Netlist nl_;
  std::string first_traced_;
  std::string last_traced_;
  sim::Wire* put_req_ = nullptr;
  sim::Wire* put_ack_ = nullptr;
  sim::Word* put_data_ = nullptr;
  sim::Word* data_out_ = nullptr;
  sim::Wire* valid_out_ = nullptr;
  sim::Wire* stop_in_ = nullptr;
  AsRelayStation* asrs_ = nullptr;
};

}  // namespace mts::lip
