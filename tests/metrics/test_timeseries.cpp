#include "metrics/timeseries.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

namespace mts::metrics {
namespace {

TEST(TimeSeries, AppendRetainsInOrderBelowCap) {
  TimeSeries s(8);
  for (sim::Time t = 0; t < 5; ++t) {
    s.append(t * 10, static_cast<double>(t));
  }
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s.stride(), 1u);
  EXPECT_EQ(s.appended(), 5u);
  EXPECT_EQ(s.points().front().t, 0u);
  EXPECT_EQ(s.points().back().t, 40u);
  EXPECT_DOUBLE_EQ(s.last(), 4.0);
}

TEST(TimeSeries, DecimationHalvesRetainedAndDoublesStride) {
  TimeSeries s(4);
  for (sim::Time t = 0; t < 5; ++t) s.append(t, static_cast<double>(t));
  // 5th append exceeded the cap of 4: indices 0,2,4 survive, stride -> 2.
  EXPECT_EQ(s.stride(), 2u);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.points()[0].t, 0u);
  EXPECT_EQ(s.points()[1].t, 2u);
  EXPECT_EQ(s.points()[2].t, 4u);
  // Post-decimation appends keep only every 2nd point (phase parity).
  s.append(5, 5.0);  // phase 5, odd: dropped
  s.append(6, 6.0);  // phase 6, even: kept
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.points().back().t, 6u);
}

TEST(TimeSeries, RetainedSetIsPureFunctionOfAppendSequence) {
  // Two series fed the same sequence retain identical points regardless of
  // how many decimations fired in between -- the campaign determinism
  // contract.
  TimeSeries a(16);
  TimeSeries b(16);
  for (sim::Time t = 0; t < 1000; ++t) {
    a.append(t, static_cast<double>(t) * 0.5);
    b.append(t, static_cast<double>(t) * 0.5);
  }
  ASSERT_EQ(a.size(), b.size());
  EXPECT_LE(a.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.points()[i].t, b.points()[i].t);
    EXPECT_DOUBLE_EQ(a.points()[i].v, b.points()[i].v);
  }
  EXPECT_EQ(a.appended(), 1000u);
}

TEST(TimeSeries, ZeroAndOneCapsNeverDecimate) {
  // max_points < 2 disables the cap (decimation of a 1-point series would
  // never converge); the series just grows.
  TimeSeries s(1);
  for (sim::Time t = 0; t < 10; ++t) s.append(t, 1.0);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s.stride(), 1u);
}

TEST(TimeSeriesStore, SeriesResolveOrCreateAndNamesSorted) {
  TimeSeriesStore st(64);
  st.append("zeta", 1, 1.0);
  st.append("alpha", 2, 2.0);
  st.append("alpha", 3, 3.0);
  EXPECT_EQ(st.series_count(), 2u);
  EXPECT_EQ(st.total_points(), 3u);
  const std::vector<std::string> n = st.names();
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0], "alpha");  // map order: sorted
  EXPECT_EQ(n[1], "zeta");
  ASSERT_NE(st.find("alpha"), nullptr);
  EXPECT_EQ(st.find("alpha")->size(), 2u);
  EXPECT_EQ(st.find("missing"), nullptr);
  st.clear();
  EXPECT_TRUE(st.empty());
}

TEST(TimeSeriesStore, JsonlOrderedByTimeThenName) {
  TimeSeriesStore st(64);
  st.append("b", 20, 2.0);
  st.append("a", 20, 1.0);
  st.append("a", 10, 0.5);
  const std::string jl = st.to_jsonl();
  const std::size_t p_a10 = jl.find("\"t\": 10, \"s\": \"a\"");
  const std::size_t p_a20 = jl.find("\"t\": 20, \"s\": \"a\"");
  const std::size_t p_b20 = jl.find("\"t\": 20, \"s\": \"b\"");
  ASSERT_NE(p_a10, std::string::npos);
  ASSERT_NE(p_a20, std::string::npos);
  ASSERT_NE(p_b20, std::string::npos);
  EXPECT_LT(p_a10, p_a20);
  EXPECT_LT(p_a20, p_b20);  // same t: name order breaks the tie
}

TEST(TimeSeriesStore, CsvLongFormatWithHeader) {
  TimeSeriesStore st(64);
  st.append("occ", 100, 3.0);
  const std::string csv = st.to_csv();
  EXPECT_NE(csv.find("t_ps,series,value"), std::string::npos);
  EXPECT_NE(csv.find("100,occ,3"), std::string::npos);
}

TEST(TimeSeriesStore, PerfettoEventsAreCounterPhaseUnderTelemetryProcess) {
  TimeSeriesStore st(64);
  st.append("dut.occupancy", 1000, 4.0);
  const std::string ev = st.perfetto_events();
  EXPECT_NE(ev.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(ev.find("process_name"), std::string::npos);
  EXPECT_NE(ev.find("telemetry"), std::string::npos);
  EXPECT_NE(ev.find("dut.occupancy"), std::string::npos);
  // Fragment contract: starts with ",\n" so it splices into an existing
  // traceEvents array.
  ASSERT_GE(ev.size(), 2u);
  EXPECT_EQ(ev.substr(0, 2), ",\n");
}

TEST(TimeSeriesStore, EmptyStoreExportsAreEmpty) {
  TimeSeriesStore st(64);
  EXPECT_TRUE(st.to_jsonl().empty());
  EXPECT_TRUE(st.perfetto_events().empty());
}

TEST(TimeSeriesStore, MergeCreatesAbsentSeriesAndAppends) {
  TimeSeriesStore a(64);
  a.append("x", 1, 1.0);
  TimeSeriesStore b(64);
  b.append("x", 2, 2.0);
  b.append("y", 3, 3.0);
  a.merge(b);
  EXPECT_EQ(a.series_count(), 2u);
  ASSERT_NE(a.find("x"), nullptr);
  EXPECT_EQ(a.find("x")->size(), 2u);
  EXPECT_EQ(a.find("x")->points()[1].t, 2u);
  ASSERT_NE(a.find("y"), nullptr);
}

TEST(TimeSeriesStore, IndexOrderedFoldIsIndependentOfProducer) {
  // The campaign engine's contract: per-run stores folded in RUN INDEX
  // order yield a byte-identical export no matter which worker produced
  // which store. Model two placements of 4 runs onto workers; the fold
  // reads the same run-indexed array either way.
  auto make_run = [](std::size_t idx) {
    TimeSeriesStore st(64);
    for (sim::Time t = 0; t < 3; ++t) {
      st.append("occ", idx * 100 + t, static_cast<double>(idx));
    }
    return st;
  };
  // Placement A: runs completed in order 0,1,2,3. Placement B: 3,1,0,2.
  std::vector<TimeSeriesStore> runs_a;
  std::vector<TimeSeriesStore> runs_b(4, TimeSeriesStore(64));
  for (std::size_t i = 0; i < 4; ++i) runs_a.push_back(make_run(i));
  for (std::size_t i : {3u, 1u, 0u, 2u}) runs_b[i] = make_run(i);

  TimeSeriesStore fold_a(64);
  TimeSeriesStore fold_b(64);
  for (std::size_t i = 0; i < 4; ++i) fold_a.merge(runs_a[i]);
  for (std::size_t i = 0; i < 4; ++i) fold_b.merge(runs_b[i]);
  EXPECT_EQ(fold_a.to_jsonl(), fold_b.to_jsonl());
  EXPECT_EQ(fold_a.to_csv(), fold_b.to_csv());
}

}  // namespace
}  // namespace mts::metrics
