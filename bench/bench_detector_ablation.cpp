// Detector ablation bench (Section 3.2's design arguments, quantified):
//
//   1. empty side: oe-only underflows near empty; ne-only deadlocks on the
//      last item; the paper's bi-modal detector does neither;
//   2. full side: exact-full overflows near full; the anticipating
//      definition does not;
//   3. DV controller: the SR latch's slow-reader full-boundary hazard vs
//      the conservative serialized DV (library extension).
//
// Usage: bench_detector_ablation [--csv]
#include <cstdio>
#include <cstring>
#include <string>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "metrics/table.hpp"
#include "sync/clock.hpp"

namespace {

using namespace mts;
using sim::Time;

struct Outcome {
  std::uint64_t delivered = 0;
  std::uint64_t underflows = 0;
  std::uint64_t overflows = 0;
  std::uint64_t mismatches = 0;
  bool deadlocked = false;
};

/// Random traffic hovering near the empty or full boundary.
Outcome run_traffic(const fifo::FifoConfig& cfg, double put_rate,
                    double get_rate, double get_ratio, unsigned cycles) {
  sim::Simulation sim(7);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = static_cast<Time>(
      2 * get_ratio * static_cast<double>(fifo::SyncGetSide::min_period(cfg)));
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor pm(sim, cp.out(), dut.en_put(), dut.req_put(), dut.data_put(),
                     sb);
  bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {put_rate, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                         {get_rate, 1});
  sim.run_until(4 * pp + static_cast<Time>(cycles) * pp);
  return Outcome{gm.dequeued(), dut.underflow_count(), dut.overflow_count(),
                 sb.errors(), false};
}

/// One resident item, then the receiver starts requesting: a correct
/// detector delivers it; ne-only deadlocks.
Outcome run_last_item(const fifo::FifoConfig& cfg) {
  sim::Simulation sim(1);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);

  const Time react = cfg.dm.flop.clk_to_q + 1;
  const Time edge = 4 * pp + 8 * pp;
  sim.sched().at(edge + react, [&] {
    dut.data_put().set(0x3C);
    dut.req_put().set(true);
    sb.push(0x3C);
  });
  sim.sched().at(edge + pp + react, [&] { dut.req_put().set(false); });
  sim.sched().at(edge + 10 * gp, [&] { dut.req_get().set(true); });
  sim.run_until(edge + 80 * gp);

  Outcome o;
  o.delivered = gm.dequeued();
  o.deadlocked = gm.dequeued() == 0;
  o.mismatches = sb.errors();
  return o;
}

std::string yn(bool b) { return b ? "yes" : "no"; }

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
  }
  const unsigned cycles = 1500;

  fifo::FifoConfig base;
  base.capacity = 4;
  base.width = 8;

  std::printf("Empty-detector ablation (4-place FIFO): near-empty workload "
              "(sparse puts, saturated gets) + last-item scenario\n\n");
  metrics::Table t1({"empty detector", "delivered", "underflows", "mismatches",
                     "last-item deadlock"});
  for (auto kind : {fifo::EmptyDetectorKind::kOeOnly,
                    fifo::EmptyDetectorKind::kNeOnly,
                    fifo::EmptyDetectorKind::kBimodal}) {
    fifo::FifoConfig cfg = base;
    cfg.empty_kind = kind;
    const Outcome traffic = run_traffic(cfg, 0.35, 1.0, 1.0, cycles);
    const Outcome last = run_last_item(cfg);
    const char* name = kind == fifo::EmptyDetectorKind::kOeOnly ? "oe only"
                       : kind == fifo::EmptyDetectorKind::kNeOnly
                           ? "ne only"
                           : "bi-modal (paper)";
    t1.add_row({name, std::to_string(traffic.delivered),
                std::to_string(traffic.underflows),
                std::to_string(traffic.mismatches), yn(last.deadlocked)});
  }
  std::fputs(csv ? t1.to_csv().c_str() : t1.to_string().c_str(), stdout);

  std::printf("\nFull-detector ablation: near-full workload (saturated puts, "
              "sparse gets)\n\n");
  metrics::Table t2({"full detector", "delivered", "overflows", "mismatches"});
  for (auto kind : {fifo::FullDetectorKind::kExact,
                    fifo::FullDetectorKind::kAnticipating}) {
    fifo::FifoConfig cfg = base;
    cfg.full_kind = kind;
    const Outcome traffic = run_traffic(cfg, 1.0, 0.3, 1.0, cycles);
    t2.add_row({kind == fifo::FullDetectorKind::kExact ? "exact"
                                                       : "anticipating (paper)",
                std::to_string(traffic.delivered),
                std::to_string(traffic.overflows),
                std::to_string(traffic.mismatches)});
  }
  std::fputs(csv ? t2.to_csv().c_str() : t2.to_string().c_str(), stdout);

  std::printf("\nDV-controller ablation: saturated writer, reader clock 2.7x "
              "slower (full-boundary hazard; see EXPERIMENTS.md)\n\n");
  metrics::Table t3({"DV controller", "delivered", "corruptions"});
  for (auto kind : {fifo::DvKind::kSrLatch, fifo::DvKind::kConservative}) {
    fifo::FifoConfig cfg = base;
    cfg.dv_kind = kind;
    const Outcome traffic = run_traffic(cfg, 1.0, 1.0, 2.7, cycles);
    t3.add_row({kind == fifo::DvKind::kSrLatch ? "SR latch (paper)"
                                               : "conservative (extension)",
                std::to_string(traffic.delivered),
                std::to_string(traffic.overflows + traffic.underflows +
                               traffic.mismatches)});
  }
  std::fputs(csv ? t3.to_csv().c_str() : t3.to_string().c_str(), stdout);
  return 0;
}
