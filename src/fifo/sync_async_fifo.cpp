#include "fifo/sync_async_fifo.hpp"

#include "ctrl/specs.hpp"
#include "fifo/detectors.hpp"
#include "fifo/interface_sides.hpp"
#include "gates/combinational.hpp"
#include "gates/tristate.hpp"
#include "sim/error.hpp"

namespace mts::fifo {

SyncAsyncFifo::SyncAsyncFifo(sim::Simulation& sim, const std::string& name,
                             const FifoConfig& cfg, sim::Wire& clk_put)
    : sim_(sim), cfg_(cfg), nl_(sim, name), put_dom_(sim, name + ".put") {
  cfg_.validate();
  if (cfg_.controller != ControllerKind::kFifo) {
    throw ConfigError("SyncAsyncFifo: no relay-station variant is defined "
                      "(the paper's relay chains terminate in a synchronous "
                      "domain)");
  }
  const unsigned n = cfg_.capacity;
  const gates::DelayModel& dm = cfg_.dm;

  if (sim::Observability* o = sim.observability()) {
    obs_ = std::make_unique<sim::TransitObserver>(*o, sim, name,
                                                  clk_put.name(), "async", n);
  }

  req_put_ = &nl_.wire("req_put");
  data_put_ = &nl_.word("data_put");
  get_req_ = &nl_.wire("get_req");
  get_data_ = &nl_.word("get_data");
  en_put_b_ = &nl_.wire("en_put_b");

  sim::Wire& req_b =
      gates::make_delay(nl_, "get_req_b", *get_req_, dm.broadcast(n, 1));

  // --- token rings ---
  std::vector<sim::Wire*> ptok(n);
  std::vector<sim::Wire*> re(n);
  for (unsigned i = 0; i < n; ++i) {
    ptok[i] = &nl_.wire("c" + std::to_string(i) + ".ptok", i == 0);
    re[i] = &nl_.wire("c" + std::to_string(i) + ".re");
  }

  auto& data_bus = nl_.add<gates::TristateBus<std::uint64_t>>(
      sim, nl_.qualified("get_data_bus"), *get_data_,
      dm.tristate_bus(n, cfg_.width));

  // --- cells: sync put part + async get part + serialized DV ---
  e_.resize(n);
  f_.resize(n);
  std::vector<sim::Wire*> ack_terms;
  ack_terms.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    const std::string ci = "c" + std::to_string(i);
    e_[i] = &nl_.wire(ci + ".e", true);
    f_[i] = &nl_.wire(ci + ".f", false);

    auto& put_part = nl_.add<SyncPutPart>(nl_, i, clk_put, *en_put_b_,
                                          *ptok[(i + n - 1) % n], *ptok[i],
                                          *data_put_, *req_put_, cfg_, &put_dom_,
                                          i == 0);
    nl_.add<AsyncGetPart>(nl_, i, req_b, *re[(i + n - 1) % n], *f_[i], *re[i],
                          cfg_, i == 0);

    nl_.add<ctrl::PetriEngine>(nl_.sim(), nl_.qualified(ci + ".dv"),
                               ctrl::dv_linear_net(),
                               std::vector<sim::Wire*>{&put_part.we(), re[i]},
                               std::vector<sim::Wire*>{e_[i], f_[i]},
                               dm.sr_latch);

    data_bus.attach_driver(*re[i], put_part.reg_q());
    ack_terms.push_back(re[i]);

    sim::Wire* fw = f_[i];
    put_part.we().on_rise([this, fw] {
      if (fw->read()) {
        ++overflows_;
        sim_.report().add(sim_.now(), sim::Severity::kError, "overflow",
                          nl_.prefix() + ": put into a full cell");
        if (mon_ != nullptr) {
          verify::Violation v;
          v.time = sim_.now();
          v.invariant = verify::Invariant::kOverflow;
          v.site = nl_.prefix();
          v.observed = "put into a full cell";
          v.expected = "puts only while a cell is empty";
          mon_->hub->report(std::move(v));
        }
      }
      if (req_put_->read()) {
        std::uint64_t txn = 0;
        if (obs_ != nullptr) {
          txn = obs_->put_committed(data_put_->read(), occupancy() + 1);
        }
        if (mon_ != nullptr) mon_->stream->put(data_put_->read(), txn);
      }
    });
    sim::Word* rq = &put_part.reg_q();
    re[i]->on_rise([this, fw, rq] {
      if (!fw->read()) {
        ++underflows_;
        sim_.report().add(sim_.now(), sim::Severity::kError, "underflow",
                          nl_.prefix() + ": get from an empty cell");
        if (mon_ != nullptr) {
          verify::Violation v;
          v.time = sim_.now();
          v.invariant = verify::Invariant::kUnderflow;
          v.site = nl_.prefix();
          v.observed = "get from an empty cell";
          v.expected = "gets only while an item is resident";
          mon_->hub->report(std::move(v));
        }
      }
      std::uint64_t txn = 0;
      if (obs_ != nullptr) {
        const unsigned occ = occupancy();
        txn = obs_->get_observed(rq->read(), occ > 0 ? occ - 1 : 0);
      }
      if (mon_ != nullptr) mon_->stream->get(rq->read(), txn);
    });
  }

  // get_ack: OR tree over the per-cell re signals, padded by a matched
  // delay covering the tri-state bus (single-rail bundling constraint: data
  // must be valid when ack rises).
  sim::Wire& ack_tree = gates::make_or_tree(nl_, "ackTree", ack_terms, dm);
  get_ack_ = &gates::make_delay(nl_, "get_ack", ack_tree,
                                dm.tristate_bus(n, cfg_.width));

  // --- put side: identical block to the mixed-clock design ---
  auto& put_side = nl_.add<SyncPutSide>(nl_, clk_put, cfg_, put_dom_, e_,
                                        *req_put_, *en_put_b_);
  full_ext_ = &put_side.full_ext();

  // --- protocol-invariant monitors (armed runs only) ---
  if (verify::Hub* hub = sim.monitors()) {
    mon_ = std::make_unique<verify::MonitorSet>();
    mon_->hub = hub;
    const unsigned full_win = cfg_.full_kind == FullDetectorKind::kAnticipating
                                  ? anticipation_window(cfg_.sync.depth)
                                  : 1;
    const sim::Time settle = dm.sr_latch +
                             detector_delay(n, full_win, dm) + dm.gate(2);
    mon_->rings.push_back(std::make_unique<verify::TokenRingMonitor>(
        *hub, sim, nl_.prefix() + ".ptok", ptok, clk_put));
    mon_->detectors.push_back(std::make_unique<verify::DetectorMonitor>(
        *hub, sim, nl_.prefix() + ".full", verify::Invariant::kFullDetector,
        e_, put_side.full_raw(), full_win, clk_put, settle));
    mon_->stream = std::make_unique<verify::StreamMonitor>(*hub, sim,
                                                           nl_.prefix());
  }
}

unsigned SyncAsyncFifo::occupancy() const {
  unsigned count = 0;
  for (const sim::Wire* f : f_) count += f->read() ? 1u : 0u;
  return count;
}

sim::Time SyncAsyncFifo::put_min_period() const {
  return SyncPutSide::min_period(cfg_);
}

}  // namespace mts::fifo
