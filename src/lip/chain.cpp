#include "lip/chain.hpp"

#include "gates/combinational.hpp"
#include "lip/relay_station_structural.hpp"

namespace mts::lip {

SyncRelayChain::SyncRelayChain(sim::Simulation& sim, const std::string& name,
                               sim::Wire& clk, unsigned length,
                               const gates::DelayModel& dm, sim::Word& in_data,
                               sim::Wire& in_valid, sim::Wire& stop_out,
                               sim::Word& out_data, sim::Wire& out_valid,
                               sim::Wire& stop_in, RsImpl impl)
    : nl_(sim, name), length_(length) {
  if (length == 0) {
    // Degenerate chain: a short wire. Forward data/valid, return stop.
    nl_.add<gates::WordBuf>(sim, nl_.qualified("dwire"), in_data, out_data,
                            dm.gate(1));
    gates::gate_into(nl_, "vwire", gates::GateOp::kBuf, {&in_valid}, out_valid,
                     dm.gate(1));
    gates::gate_into(nl_, "swire", gates::GateOp::kBuf, {&stop_in}, stop_out,
                     dm.gate(1));
    return;
  }

  sim::Word* d = &in_data;
  sim::Wire* v = &in_valid;
  sim::Wire* s = &stop_out;
  for (unsigned i = 0; i < length; ++i) {
    const bool last = i + 1 == length;
    const std::string li = "l" + std::to_string(i);
    sim::Word& next_d = last ? out_data : nl_.word(li + ".data");
    sim::Wire& next_v = last ? out_valid : nl_.wire(li + ".valid");
    sim::Wire& next_s = last ? stop_in : nl_.wire(li + ".stop");
    if (impl == RsImpl::kBehavioural) {
      stations_.push_back(&nl_.add<RelayStation>(
          sim, nl_.qualified("rs" + std::to_string(i)), clk, *d, *v, *s,
          next_d, next_v, next_s, dm));
    } else {
      nl_.add<StructuralRelayStation>(sim,
                                      nl_.qualified("rs" + std::to_string(i)),
                                      clk, *d, *v, *s, next_d, next_v, next_s,
                                      dm);
    }
    d = &next_d;
    v = &next_v;
    s = &next_s;
  }

  // Behavioural stations registered trace streams in their constructors;
  // chain them so one transaction id rides the packet hop to hop.
  if (impl == RsImpl::kBehavioural) {
    first_station_ = nl_.qualified("rs0");
    last_station_ = nl_.qualified("rs" + std::to_string(length - 1));
    sim::Observability* o = sim.observability();
    if (o != nullptr && o->trace != nullptr) {
      for (unsigned i = 1; i < length; ++i) {
        o->trace->link(nl_.qualified("rs" + std::to_string(i - 1)),
                       nl_.qualified("rs" + std::to_string(i)));
      }
    }
  }
}

unsigned SyncRelayChain::buffered_valid() const {
  unsigned count = 0;
  for (const RelayStation* rs : stations_) count += rs->buffered_valid();
  return count;
}

MixedClockLink::MixedClockLink(sim::Simulation& sim, const std::string& name,
                               const fifo::FifoConfig& cfg, sim::Wire& clk_left,
                               sim::Wire& clk_right, unsigned left_length,
                               unsigned right_length)
    : nl_(sim, name) {
  data_in_ = &nl_.word("data_in");
  valid_in_ = &nl_.wire("valid_in");
  stop_out_ = &nl_.wire("stop_out");
  data_out_ = &nl_.word("data_out");
  valid_out_ = &nl_.wire("valid_out");
  stop_in_ = &nl_.wire("stop_in");

  mcrs_ = &nl_.add<McRelayStation>(sim, nl_.qualified("mcrs"), cfg, clk_left,
                                   clk_right);

  auto& left = nl_.add<SyncRelayChain>(
      sim, nl_.qualified("left"), clk_left, left_length, cfg.dm, *data_in_,
      *valid_in_, *stop_out_, mcrs_->packet_in_data(), mcrs_->packet_in_valid(),
      mcrs_->stop_out());

  auto& right = nl_.add<SyncRelayChain>(
      sim, nl_.qualified("right"), clk_right, right_length, cfg.dm,
      mcrs_->packet_out_data(), mcrs_->packet_out_valid(), mcrs_->stop_in(),
      *data_out_, *valid_out_, *stop_in_);

  // Trace-stream topology: left chain -> MCRS -> right chain, so one
  // transaction id survives the clock-domain crossing.
  first_traced_ = left.first_station_instance().empty()
                      ? nl_.qualified("mcrs")
                      : left.first_station_instance();
  last_traced_ = right.last_station_instance().empty()
                     ? nl_.qualified("mcrs")
                     : right.last_station_instance();
  sim::Observability* o = sim.observability();
  if (o != nullptr && o->trace != nullptr) {
    if (!left.last_station_instance().empty()) {
      o->trace->link(left.last_station_instance(), nl_.qualified("mcrs"));
    }
    if (!right.first_station_instance().empty()) {
      o->trace->link(nl_.qualified("mcrs"), right.first_station_instance());
    }
  }
}

AsyncSyncLink::AsyncSyncLink(sim::Simulation& sim, const std::string& name,
                             const fifo::FifoConfig& cfg, sim::Wire& clk_right,
                             unsigned ars_length, unsigned srs_length)
    : nl_(sim, name) {
  put_req_ = &nl_.wire("put_req");
  put_ack_ = &nl_.wire("put_ack");
  put_data_ = &nl_.word("put_data");
  data_out_ = &nl_.word("data_out");
  valid_out_ = &nl_.wire("valid_out");
  stop_in_ = &nl_.wire("stop_in");

  asrs_ = &nl_.add<AsRelayStation>(sim, nl_.qualified("asrs"), cfg, clk_right);

  if (ars_length == 0) {
    // Direct asynchronous connection: "in principle, no relay stations need
    // to be inserted in the asynchronous communication channels".
    gates::gate_into(nl_, "reqwire", gates::GateOp::kBuf, {put_req_},
                     asrs_->put_req(), cfg.dm.gate(1));
    gates::gate_into(nl_, "ackwire", gates::GateOp::kBuf, {&asrs_->put_ack()},
                     *put_ack_, cfg.dm.gate(1));
    nl_.add<gates::WordBuf>(sim, nl_.qualified("dwire"), *put_data_,
                            asrs_->put_data(), cfg.dm.gate(1));
  } else {
    nl_.add<Micropipeline>(sim, nl_.qualified("ars"), ars_length, *put_req_,
                           *put_ack_, *put_data_, asrs_->put_req(),
                           asrs_->put_ack(), asrs_->put_data(), cfg.dm);
  }

  auto& srs = nl_.add<SyncRelayChain>(
      sim, nl_.qualified("srs"), clk_right, srs_length, cfg.dm,
      asrs_->packet_out_data(), asrs_->packet_out_valid(), asrs_->stop_in(),
      *data_out_, *valid_out_, *stop_in_);

  // Trace-stream topology: ASRS -> SRS chain (the micropipeline ARS hop is
  // untraced; ids are minted at the ASRS put).
  first_traced_ = nl_.qualified("asrs");
  last_traced_ = srs.last_station_instance().empty()
                     ? nl_.qualified("asrs")
                     : srs.last_station_instance();
  sim::Observability* o = sim.observability();
  if (o != nullptr && o->trace != nullptr &&
      !srs.first_station_instance().empty()) {
    o->trace->link(nl_.qualified("asrs"), srs.first_station_instance());
  }
}

}  // namespace mts::lip
