// Fig. 3c's three get outcomes, observed exactly as the paper specifies:
// following a get request, (valid_get, empty) encodes
//   (a) item dequeued, more available     -> valid=1, empty=0
//   (b) item dequeued, FIFO became empty  -> valid=1, empty=1
//   (c) FIFO empty, nothing dequeued      -> valid=0, empty=1
#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "fifo/mixed_clock_fifo.hpp"
#include "sync/clock.hpp"

namespace mts::fifo {
namespace {

using sim::Time;

struct Outcomes {
  unsigned a = 0;  // valid & !empty
  unsigned b = 0;  // valid & empty
  unsigned c = 0;  // !valid & empty
  unsigned other = 0;  // !valid & !empty (no request or request in flight)
};

TEST(ProtocolOutcomes, AllThreeGetOutcomesObservable) {
  FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 8;

  sim::Simulation sim(1);
  const Time pp = 2 * SyncPutSide::min_period(cfg);
  const Time gp = 2 * SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());

  Outcomes seen;
  bool requesting = false;
  // Paper sampling discipline (Fig. 3c): the data/validity of a get are
  // committed at the clock edge; "if the FIFO becomes empty that clock
  // cycle, empty is also asserted" -- i.e. the empty flag is read later in
  // the same cycle, after the synchronizers have updated.
  const Time flag_settle = cfg.dm.flop.clk_to_q + cfg.dm.gate(2, 2) +
                           cfg.dm.gate(2) + 50;
  sim::on_rise(cg.out(), [&] {
    if (!requesting) return;
    const bool valid = dut.valid_get().read();
    sim.sched().after(flag_settle, [&, valid] {
      const bool empty = dut.empty().read();
      if (valid && !empty) ++seen.a;
      else if (valid && empty) ++seen.b;
      else if (!valid && empty) ++seen.c;
      else ++seen.other;
    });
  });

  // Enqueue 5 items back to back, then request continuously: the drain
  // passes through "more available" (a), hits "dequeued, became empty per
  // the anticipating definition" (b), then idles at "empty" (c).
  const Time react = cfg.dm.flop.clk_to_q + 1;
  const Time edge = 4 * pp + 8 * pp;
  for (int k = 0; k < 5; ++k) {
    sim.sched().at(edge + static_cast<Time>(k) * pp + react, [&dut, k] {
      dut.data_put().set(0x10 + static_cast<std::uint64_t>(k));
      dut.req_put().set(true);
    });
  }
  sim.sched().at(edge + 5 * pp + react, [&] { dut.req_put().set(false); });
  sim.sched().at(edge + 8 * pp, [&] {
    dut.req_get().set(true);
    requesting = true;
  });

  sim.run_until(edge + 60 * gp);

  EXPECT_GT(seen.a, 0u) << "never saw: dequeued with more available";
  EXPECT_GT(seen.b, 0u) << "never saw: dequeued and FIFO became empty";
  EXPECT_GT(seen.c, 0u) << "never saw: empty, request unanswered";
  // Every item was eventually delivered.
  EXPECT_EQ(seen.a + seen.b, 5u);
  EXPECT_EQ(dut.occupancy(), 0u);
}

TEST(ProtocolOutcomes, ValidNeverAssertedWithoutRequest) {
  FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;

  sim::Simulation sim(2);
  const Time pp = 2 * SyncPutSide::min_period(cfg);
  const Time gp = 2 * SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  // No get requests at all: valid_get must stay low at every get edge.
  unsigned spurious = 0;
  sim::on_rise(cg.out(), [&] {
    if (dut.valid_get().read()) ++spurious;
  });
  sim.run_until(4 * pp + 200 * pp);
  EXPECT_EQ(spurious, 0u);
  EXPECT_FALSE(dut.empty().read());  // it does hold data
}

}  // namespace
}  // namespace mts::fifo
