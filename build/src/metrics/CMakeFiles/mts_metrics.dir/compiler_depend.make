# Empty compiler generated dependencies file for mts_metrics.
# This may be replaced when dependencies are built.
