// Combinational gate primitives.
//
// A Gate owns no wires; it watches its input wires and drives one output
// wire with an inertial delay (pulses shorter than the gate delay are
// filtered, as in a real gate). Factories cover the common shapes used by
// the FIFO netlists, including balanced trees for the wide detector
// functions whose depth grows with FIFO capacity.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gates/delay_model.hpp"
#include "gates/netlist.hpp"
#include "sim/signal.hpp"

namespace mts::gates {

enum class GateOp { kNot, kBuf, kAnd, kOr, kNand, kNor, kXor, kAndNotLast, kOrNotLast };

/// Generic single-output combinational gate.
class Gate {
 public:
  using Func = std::function<bool(const std::vector<bool>&)>;

  /// `inputs` must stay alive as long as the gate; `delay` is inertial.
  /// The gate schedules an initial evaluation so outputs settle from the
  /// initial input values once the simulation starts.
  Gate(sim::Simulation& sim, std::string name, std::vector<sim::Wire*> inputs,
       sim::Wire& out, Func fn, Time delay);

  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  const std::string& name() const noexcept { return name_; }
  Time delay() const noexcept { return delay_; }

 private:
  void evaluate();

  std::string name_;
  std::vector<sim::Wire*> inputs_;
  sim::Wire& out_;
  Func fn_;
  Time delay_;
};

/// Truth function for `op` (kAndNotLast computes and(ins[0..n-2]) & !ins[n-1];
/// kOrNotLast likewise with or/!).
Gate::Func gate_func(GateOp op);

/// Number of logic inputs `op` presents for delay purposes.
Time gate_delay(GateOp op, std::size_t fanin, const DelayModel& dm, unsigned fanout);

/// Builds a gate driving a fresh wire owned by `nl`; returns that wire.
sim::Wire& make_gate(Netlist& nl, const std::string& name, GateOp op,
                     std::vector<sim::Wire*> inputs, const DelayModel& dm,
                     unsigned fanout = 1);

/// Builds a gate driving caller-supplied wire `out` with explicit delay.
Gate& gate_into(Netlist& nl, const std::string& name, GateOp op,
                std::vector<sim::Wire*> inputs, sim::Wire& out, Time delay);

/// Pure delay element (buffer/wire segment) driving a fresh wire.
sim::Wire& make_delay(Netlist& nl, const std::string& name, sim::Wire& in, Time delay);

/// Balanced tree of `arity`-input OR gates; returns the root wire.
/// With a single input this is a buffer.
sim::Wire& make_or_tree(Netlist& nl, const std::string& name,
                        std::vector<sim::Wire*> inputs, const DelayModel& dm,
                        unsigned arity = 2);

/// Balanced tree of `arity`-input AND gates; returns the root wire.
sim::Wire& make_and_tree(Netlist& nl, const std::string& name,
                         std::vector<sim::Wire*> inputs, const DelayModel& dm,
                         unsigned arity = 2);

/// Number of levels a balanced `arity`-ary tree over `leaves` inputs has.
unsigned tree_depth(unsigned leaves, unsigned arity);

/// Word-level 2:1 multiplexer: out follows `a` when sel is high, `b`
/// otherwise, with an inertial delay.
class WordMux {
 public:
  WordMux(sim::Simulation& sim, std::string name, sim::Wire& sel, sim::Word& a,
          sim::Word& b, sim::Word& out, Time delay);

  WordMux(const WordMux&) = delete;
  WordMux& operator=(const WordMux&) = delete;

 private:
  void evaluate();

  sim::Wire& sel_;
  sim::Word& a_;
  sim::Word& b_;
  sim::Word& out_;
  Time delay_;
};

/// Word-level buffer: forwards a word bus with an inertial delay (models a
/// wire segment / repeater on a datapath bus).
class WordBuf {
 public:
  WordBuf(sim::Simulation& sim, std::string name, sim::Word& in, sim::Word& out,
          Time delay);

  WordBuf(const WordBuf&) = delete;
  WordBuf& operator=(const WordBuf&) = delete;

 private:
  sim::Word& in_;
  sim::Word& out_;
  Time delay_;
};

}  // namespace mts::gates
