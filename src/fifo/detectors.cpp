#include "fifo/detectors.hpp"

#include <string>

#include "sim/error.hpp"

namespace mts::fifo {

namespace {

/// Rank of AND gates over `window` adjacent (ring-wrapped) cells.
std::vector<sim::Wire*> window_rank(gates::Netlist& nl, const std::string& name,
                                    const std::vector<sim::Wire*>& bits,
                                    const gates::DelayModel& dm,
                                    unsigned window) {
  MTS_ASSERT(bits.size() >= 2, "detector needs at least two cells");
  MTS_ASSERT(window >= 2 && window <= bits.size(),
             "detector window must be 2..capacity");
  std::vector<sim::Wire*> runs;
  runs.reserve(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    std::vector<sim::Wire*> group;
    for (unsigned k = 0; k < window; ++k) {
      group.push_back(bits[(i + k) % bits.size()]);
    }
    runs.push_back(&gates::make_gate(nl, name + ".run" + std::to_string(i),
                                     gates::GateOp::kAnd, std::move(group),
                                     dm));
  }
  return runs;
}

}  // namespace

unsigned anticipation_window(unsigned sync_depth) {
  // The flag crosses the synchronizer in `depth` receiver edges; the
  // opposite interface can complete depth - 1 further operations before the
  // stall lands, so the detector must announce the boundary depth - 1 items
  // early: window = depth, with the paper's two-latch case as the floor.
  return sync_depth < 2 ? 2 : sync_depth;
}

bool detector_asserted(const std::vector<bool>& bits, unsigned window) {
  MTS_ASSERT(window >= 1, "detector window must be >= 1");
  if (bits.empty()) return true;
  // Walk the ring twice so wrap-around runs are seen; a run can never need
  // more than one extra lap.
  unsigned run = 0;
  for (std::size_t i = 0; i < 2 * bits.size(); ++i) {
    if (bits[i % bits.size()]) {
      ++run;
      if (run >= window) return false;
    } else {
      run = 0;
    }
  }
  return true;
}

// Detector OR trees use 4-input gates (the paper's custom detectors are
// wide-NOR structures; 4-ary trees keep the depth growth gentle, matching
// the mild capacity degradation of Table 1).
constexpr unsigned kDetectorArity = 4;

sim::Wire& build_anticipating_full(gates::Netlist& nl, std::vector<sim::Wire*> e,
                                   const gates::DelayModel& dm,
                                   unsigned window) {
  auto runs = window_rank(nl, "fullDet", e, dm, window);
  sim::Wire& any2 = gates::make_or_tree(nl, "fullDet.or", runs, dm,
                                        kDetectorArity);
  return gates::make_gate(nl, "fullDet.full", gates::GateOp::kNot, {&any2}, dm);
}

sim::Wire& build_anticipating_empty(gates::Netlist& nl, std::vector<sim::Wire*> f,
                                    const gates::DelayModel& dm,
                                    unsigned window) {
  auto runs = window_rank(nl, "neDet", f, dm, window);
  sim::Wire& any2 = gates::make_or_tree(nl, "neDet.or", runs, dm,
                                        kDetectorArity);
  return gates::make_gate(nl, "neDet.ne", gates::GateOp::kNot, {&any2}, dm);
}

sim::Wire& build_true_empty(gates::Netlist& nl, std::vector<sim::Wire*> f,
                            const gates::DelayModel& dm) {
  sim::Wire& any = gates::make_or_tree(nl, "oeDet.or", std::move(f), dm,
                                       kDetectorArity);
  return gates::make_gate(nl, "oeDet.oe", gates::GateOp::kNot, {&any}, dm);
}

sim::Wire& build_exact_full(gates::Netlist& nl, std::vector<sim::Wire*> e,
                            const gates::DelayModel& dm) {
  sim::Wire& any_empty = gates::make_or_tree(nl, "exactFull.or", std::move(e),
                                             dm, kDetectorArity);
  return gates::make_gate(nl, "exactFull.full", gates::GateOp::kNot, {&any_empty},
                          dm);
}

sim::Time detector_delay(unsigned capacity, unsigned window,
                         const gates::DelayModel& dm) {
  sim::Time total = 0;
  if (window >= 2) total += dm.gate(window);
  total += gates::tree_depth(capacity, kDetectorArity) *
           dm.gate(kDetectorArity);
  total += dm.gate(1);  // output inverter
  return total;
}

}  // namespace mts::fifo
