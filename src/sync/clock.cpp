#include "sync/clock.hpp"

#include <random>
#include <utility>

#include "sim/error.hpp"
#include "sim/fault.hpp"
#include "sim/observe.hpp"
#include "verify/hub.hpp"

namespace mts::sync {

Clock::Clock(sim::Simulation& sim, std::string name, const ClockConfig& config)
    : sim_(sim), config_(config), out_(sim, std::move(name), false) {
  if (config_.period == 0) throw ConfigError("Clock: period must be > 0");
  if (config_.duty <= 0.0 || config_.duty >= 1.0) {
    throw ConfigError("Clock: duty must be in (0, 1)");
  }
  if (config_.jitter >= config_.period / 2) {
    throw ConfigError("Clock: jitter must be < period/2");
  }
  if (sim::Observability* o = sim.observability();
      o != nullptr && o->profiler != nullptr) {
    site_ = o->profiler->site("clock " + out_.name());
  }
  mon_ = sim.monitors();
  schedule_rise(config_.phase);
}

void Clock::schedule_rise(sim::Time t) {
  sim_.sched().at_site(t, site_, [this] {
    if (!running_) return;
    ++edges_;
    out_.set(true);

    sim::Time period = config_.period;
    if (config_.jitter > 0) {
      std::uniform_int_distribution<std::int64_t> dist(
          -static_cast<std::int64_t>(config_.jitter),
          static_cast<std::int64_t>(config_.jitter));
      period = static_cast<sim::Time>(static_cast<std::int64_t>(period) +
                                      dist(sim_.rng()));
    }
    // Fault injection: an armed plan can add PVT drift and extra
    // cycle-to-cycle jitter to this clock. One branch when unarmed.
    if (sim::FaultPlan* fp = sim_.faults()) {
      if (const sim::ClockFault* cf = fp->clock(out_.name())) {
        auto p = static_cast<std::int64_t>(static_cast<double>(period) *
                                           cf->drift);
        if (cf->extra_jitter > 0) {
          std::uniform_int_distribution<std::int64_t> extra(
              -static_cast<std::int64_t>(cf->extra_jitter),
              static_cast<std::int64_t>(cf->extra_jitter));
          p += extra(fp->rng());
        }
        // Keep the clock alive under extreme parameters: never shrink a
        // cycle below a quarter of the nominal period.
        const auto floor = static_cast<std::int64_t>(config_.period / 4 + 1);
        period = static_cast<sim::Time>(p < floor ? floor : p);
        fp->note("clock.perturb");
      }
    }
    if (mon_ != nullptr) {
      // Period-envelope check: the nominal jitter never leaves the
      // configured band, so only injected drift / extra jitter (or a
      // generator bug) can trip this.
      const auto nominal = static_cast<std::int64_t>(config_.period);
      std::int64_t dev = static_cast<std::int64_t>(period) - nominal;
      if (dev < 0) dev = -dev;
      auto tol = static_cast<std::int64_t>(
          mon_->clock_tolerance() * static_cast<double>(nominal));
      if (tol < static_cast<std::int64_t>(config_.jitter)) {
        tol = static_cast<std::int64_t>(config_.jitter);
      }
      if (dev > tol) {
        verify::Violation v;
        v.time = sim_.now();
        v.invariant = verify::Invariant::kClockPeriod;
        v.site = out_.name();
        v.observed = "period " + std::to_string(period) + "ps";
        v.expected = std::to_string(config_.period) + "ps +/- " +
                     std::to_string(tol) + "ps";
        mon_->report(std::move(v));
      }
    }
    const auto high = static_cast<sim::Time>(static_cast<double>(period) *
                                             config_.duty);
    sim_.sched().after(high, [this] { out_.set(false); });
    schedule_rise(sim_.now() + period);
  });
}

}  // namespace mts::sync
