#include "sim/time.hpp"

#include <gtest/gtest.h>

#include "sim/error.hpp"

namespace mts::sim {
namespace {

using namespace time_literals;

TEST(Time, LiteralsScaleCorrectly) {
  EXPECT_EQ(5_ps, 5u);
  EXPECT_EQ(3_ns, 3000u);
  EXPECT_EQ(2_us, 2'000'000u);
}

TEST(Time, PeriodFrequencyRoundTrip) {
  EXPECT_DOUBLE_EQ(period_to_mhz(1000), 1000.0);  // 1 ns -> 1 GHz
  EXPECT_DOUBLE_EQ(period_to_mhz(2000), 500.0);
  EXPECT_EQ(mhz_to_period(500.0), 2000u);
  EXPECT_EQ(mhz_to_period(0.0), 0u);
  EXPECT_DOUBLE_EQ(period_to_mhz(0), 0.0);
}

TEST(Time, ToNs) {
  EXPECT_DOUBLE_EQ(to_ns(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_ns(0), 0.0);
}

TEST(Time, FormatTimeChoosesUnits) {
  EXPECT_EQ(format_time(250), "250 ps");
  EXPECT_EQ(format_time(1500), "1.500 ns");
  EXPECT_EQ(format_time(2'500'000), "2.500 us");
}

TEST(AssertionMacro, ThrowsWithContext) {
  try {
    MTS_ASSERT(false, "context message");
    FAIL() << "should have thrown";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("context message"), std::string::npos);
    EXPECT_NE(what.find("test_time.cpp"), std::string::npos);
  }
}

TEST(AssertionMacro, PassesSilently) {
  EXPECT_NO_THROW(MTS_ASSERT(1 + 1 == 2, "never"));
}

}  // namespace
}  // namespace mts::sim
