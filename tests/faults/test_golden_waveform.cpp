// Golden-waveform regression for the Fig. 3 protocol traces.
//
// Reproduces the exact circuits bench_fig3_protocols builds, dumps their
// VCDs and compares an FNV-1a hash of the bytes against committed golden
// values. This pins two things at once:
//   1. the Fig. 3 protocol timing itself (any kernel or netlist change
//      that shifts an edge shows up here first), and
//   2. the fault subsystem's zero-cost-when-unarmed contract: a run with
//      an armed but *empty* FaultPlan must be bit-identical too, and
//   3. the monitor read-only contract: a run with an armed verify::Hub
//      (monitors attached, nothing violated) must be bit-identical as well.
//
// Regenerating the goldens after an INTENDED timing change:
//   ./tests/mts_test_faults --gtest_filter='GoldenWaveform.*' 2>&1 | \
//       grep 'fnv1a='
// then paste the printed hashes into kGoldenSyncHash / kGoldenAsyncHash
// below (the failure message also prints both values).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "bfm/bfm.hpp"
#include "fifo/async_sync_fifo.hpp"
#include "fifo/interface_sides.hpp"
#include "fifo/mixed_clock_fifo.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"
#include "sync/clock.hpp"
#include "verify/hub.hpp"

namespace mts {
namespace {

using sim::Time;

// Committed golden hashes of the two Fig. 3 VCD files (FNV-1a 64-bit).
constexpr std::uint64_t kGoldenSyncHash = 0xaf15d04f0b975cfeull;
constexpr std::uint64_t kGoldenAsyncHash = 0xae0703a3183d1ca9ull;

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// The bench's sync_protocols() circuit: two puts, then gets (Fig. 3a/3c).
std::uint64_t sync_vcd_hash(const std::string& path, sim::FaultPlan* plan,
                            verify::Hub* hub = nullptr) {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  sim::Simulation sim(1);
  if (plan != nullptr) sim.arm_faults(plan);
  if (hub != nullptr) hub->arm(sim);  // before the DUT: monitors attach now
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "clk_put", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "clk_get", {gp, 4 * pp + gp / 2, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "fifo", cfg, cp.out(), cg.out());

  sim::VcdWriter vcd(path);
  vcd.watch(cp.out(), "clk_put");
  vcd.watch(dut.req_put(), "req_put");
  vcd.watch(dut.data_put(), 8, "data_put");
  vcd.watch(dut.full(), "full");
  vcd.watch(cg.out(), "clk_get");
  vcd.watch(dut.req_get(), "req_get");
  vcd.watch(dut.data_get(), 8, "data_get");
  vcd.watch(dut.valid_get(), "valid_get");
  vcd.watch(dut.empty(), "empty");
  vcd.start();

  const Time react = cfg.dm.flop.clk_to_q + 1;
  const Time t0 = 4 * pp + 4 * pp;
  for (int k = 0; k < 2; ++k) {
    sim.sched().at(t0 + static_cast<Time>(k) * pp + react, [&dut, k] {
      dut.data_put().set(0x41 + static_cast<std::uint64_t>(k));
      dut.req_put().set(true);
    });
  }
  sim.sched().at(t0 + 2 * pp + react, [&dut] { dut.req_put().set(false); });
  sim.sched().at(t0 + 4 * pp, [&dut] { dut.req_get().set(true); });
  sim.run_until(t0 + 16 * pp);
  vcd.finish();
  return fnv1a(slurp(path));
}

/// The bench's async_protocol() circuit: 4-phase put handshakes (Fig. 3b).
std::uint64_t async_vcd_hash(const std::string& path, sim::FaultPlan* plan,
                             verify::Hub* hub = nullptr) {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  sim::Simulation sim(1);
  if (plan != nullptr) sim.arm_faults(plan);
  if (hub != nullptr) hub->arm(sim);  // before the DUT: monitors attach now
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cg(sim, "clk_get", {gp, 4 * gp, 0.5, 0});
  fifo::AsyncSyncFifo dut(sim, "fifo", cfg, cg.out());
  bfm::AsyncPutDriver put(sim, "put", dut.put_req(), dut.put_ack(),
                          dut.put_data(), cfg.dm, 2 * gp, 0xFF, nullptr);

  sim::VcdWriter vcd(path);
  vcd.watch(dut.put_req(), "put_req");
  vcd.watch(dut.put_ack(), "put_ack");
  vcd.watch(dut.put_data(), 8, "put_data");
  vcd.start();
  sim.run_until(10 * gp);
  vcd.finish();
  return fnv1a(slurp(path));
}

TEST(GoldenWaveform, Fig3SyncVcdMatchesGolden) {
  const std::uint64_t h = sync_vcd_hash("golden_fig3_sync.vcd", nullptr);
  std::cout << "fnv1a= sync 0x" << std::hex << h << std::dec << "\n";
  EXPECT_EQ(h, kGoldenSyncHash)
      << "fig3_sync.vcd changed: got 0x" << std::hex << h << ", golden 0x"
      << kGoldenSyncHash
      << ". If the timing change is intended, update kGoldenSyncHash (see "
         "the regeneration recipe in this file's header).";
}

TEST(GoldenWaveform, Fig3AsyncVcdMatchesGolden) {
  const std::uint64_t h = async_vcd_hash("golden_fig3_async.vcd", nullptr);
  std::cout << "fnv1a= async 0x" << std::hex << h << std::dec << "\n";
  EXPECT_EQ(h, kGoldenAsyncHash)
      << "fig3_async.vcd changed: got 0x" << std::hex << h << ", golden 0x"
      << kGoldenAsyncHash
      << ". If the timing change is intended, update kGoldenAsyncHash (see "
         "the regeneration recipe in this file's header).";
}

TEST(GoldenWaveform, ArmedButEmptyPlanIsBitIdentical) {
  // The zero-cost contract: arming a plan with no registered faults must
  // not move a single edge in either trace.
  sim::FaultPlan empty_sync(999);
  sim::FaultPlan empty_async(999);
  EXPECT_EQ(sync_vcd_hash("golden_fig3_sync_armed.vcd", &empty_sync),
            kGoldenSyncHash);
  EXPECT_EQ(async_vcd_hash("golden_fig3_async_armed.vcd", &empty_async),
            kGoldenAsyncHash);
}

TEST(GoldenWaveform, ArmedUnmatchedSitesAreBitIdentical) {
  // Faults registered against sites that do not exist in the circuit must
  // also leave the trace untouched (site matching, not arming, gates every
  // effect). The plan's own RNG absorbs all fault draws, so even a matched
  // ClockFault with neutral parameters would not consume simulation
  // entropy -- but neutral-parameter identity is pinned by the unit tests;
  // here the sites simply never match.
  sim::FaultPlan plan(1234);
  plan.inject_meta("noSuchSync", sim::MetaFault{8.0, 8.0, 0.9, 10});
  plan.inject_clock("noSuchClock", sim::ClockFault{500, 1.5});
  plan.inject_bundling("noSuchDriver", sim::BundlingFault{99999});
  sim::FaultPlan plan2(1234);
  plan2.inject_bundling("noSuchDriver", sim::BundlingFault{99999});
  EXPECT_EQ(sync_vcd_hash("golden_fig3_sync_unmatched.vcd", &plan),
            kGoldenSyncHash);
  EXPECT_EQ(async_vcd_hash("golden_fig3_async_unmatched.vcd", &plan2),
            kGoldenAsyncHash);
}

TEST(GoldenWaveform, ArmedMonitorHubIsBitIdentical) {
  // The monitor read-only contract: a full set of attached protocol
  // monitors observing a clean run must not move a single edge. These are
  // the real Fig. 3 circuits with every FIFO-side checker live (token
  // rings, detectors, handshake and stream monitors, clock monitors).
  verify::Hub sync_hub;
  EXPECT_EQ(sync_vcd_hash("golden_fig3_sync_monitored.vcd", nullptr,
                          &sync_hub),
            kGoldenSyncHash);
  EXPECT_EQ(sync_hub.total(), 0u) << sync_hub.to_json();

  verify::Hub async_hub;
  EXPECT_EQ(async_vcd_hash("golden_fig3_async_monitored.vcd", nullptr,
                           &async_hub),
            kGoldenAsyncHash);
  EXPECT_EQ(async_hub.total(), 0u) << async_hub.to_json();
}

}  // namespace
}  // namespace mts
