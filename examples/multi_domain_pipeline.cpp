// Multi-domain SoC pipeline -- the library's components composed end to
// end across THREE timing domains:
//
//   CPU domain (fast clock)
//     -> MixedClockLink (SRS chain + MCRS + SRS chain)      [Fig. 11a]
//   memory domain (medium clock)
//     -> sync-async FIFO -> self-timed accelerator           [matrix ext.]
//     -> async-sync FIFO                                     [Section 4]
//   back into the memory domain, where results are checked.
//
// The accelerator is clockless: it pulls operands with a 4-phase
// handshake, "computes" (data-dependent delay), and pushes results with
// another handshake. End-to-end order and data integrity are verified
// against the transform the accelerator applies.
//
//   $ ./example_multi_domain_pipeline
#include <cstdio>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "lip/lip.hpp"
#include "sync/clock.hpp"

namespace {

using namespace mts;
using sim::Time;

constexpr std::uint64_t transform(std::uint64_t x) {
  return (3 * x + 1) & 0xFFFF;
}

/// Clockless accelerator: 4-phase pull on one side, 4-phase push on the
/// other, with a data-dependent compute delay in between.
class Accelerator {
 public:
  Accelerator(sim::Simulation& sim, fifo::SyncAsyncFifo& in,
              fifo::AsyncSyncFifo& out)
      : sim_(sim), in_(in), out_(out) {
    in_.get_ack().on_change([this](bool, bool now) {
      if (now) {
        operand_ = in_.get_data().read();
        in_.get_req().write(false, 150, sim::DelayKind::kTransport);
      } else {
        // Compute: longer for larger operands (data-dependent timing --
        // the reason this block is self-timed).
        const Time compute = 800 + 40 * (operand_ % 32);
        sim_.sched().after(compute, [this] { push_result(); });
      }
    });
    out_.put_ack().on_change([this](bool, bool now) {
      if (now) {
        out_.put_req().write(false, 150, sim::DelayKind::kTransport);
      } else {
        ++completed_;
        pull_next();
      }
    });
    sim_.sched().after(1000, [this] { pull_next(); });
  }

  std::uint64_t completed() const { return completed_; }

 private:
  void pull_next() {
    in_.get_req().write(true, 150, sim::DelayKind::kTransport);
  }
  void push_result() {
    out_.put_data().set(transform(operand_));
    out_.put_req().write(true, 150, sim::DelayKind::kTransport);
  }

  sim::Simulation& sim_;
  fifo::SyncAsyncFifo& in_;
  fifo::AsyncSyncFifo& out_;
  std::uint64_t operand_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace

int main() {
  sim::Simulation sim(21);

  fifo::FifoConfig link_cfg;
  link_cfg.capacity = 8;
  link_cfg.width = 16;
  link_cfg.controller = fifo::ControllerKind::kRelayStation;

  fifo::FifoConfig fifo_cfg;
  fifo_cfg.capacity = 8;
  fifo_cfg.width = 16;

  // Clocks: CPU fast, memory domain ~1.6x slower.
  const Time mem_p =
      std::max(fifo::SyncPutSide::min_period(fifo_cfg) * 5 / 4,
               fifo::SyncGetSide::min_period(link_cfg) * 5 / 4);
  const Time cpu_p = std::max(fifo::SyncPutSide::min_period(link_cfg) * 9 / 8,
                              mem_p * 5 / 8);
  sync::Clock clk_cpu(sim, "clk_cpu", {cpu_p, 4 * mem_p, 0.5, 0});
  sync::Clock clk_mem(sim, "clk_mem", {mem_p, 4 * mem_p + 431, 0.5, 0});

  // Stage 1: CPU -> memory domain over a latency-insensitive link.
  lip::MixedClockLink link(sim, "link", link_cfg, clk_cpu.out(), clk_mem.out(),
                           /*left=*/2, /*right=*/2);

  // Stage 2: memory domain -> accelerator (sync put, async get).
  fifo::SyncAsyncFifo to_acc(sim, "to_acc", fifo_cfg, clk_mem.out());
  // Stage 3: accelerator -> memory domain (async put, sync get).
  fifo::AsyncSyncFifo from_acc(sim, "from_acc", fifo_cfg, clk_mem.out());
  Accelerator acc(sim, to_acc, from_acc);

  // Glue in the memory domain: the link's packet output feeds to_acc's put
  // interface; back-pressure returns as the link's stopIn.
  gates::Netlist glue(sim, "glue");
  gates::gate_into(glue, "reqWire", gates::GateOp::kBuf, {&link.valid_out()},
                   to_acc.req_put(), link_cfg.dm.gate(1));
  glue.add<gates::WordBuf>(sim, "dataWire", link.data_out(), to_acc.data_put(),
                           link_cfg.dm.gate(1));
  gates::gate_into(glue, "stopWire", gates::GateOp::kBuf, {&to_acc.full()},
                   link.stop_in(), link_cfg.dm.gate(1));

  // Traffic: the CPU emits counting operands (1, 2, 3, ... masked).
  bfm::Scoreboard raw_sb(sim, "raw_sb");  // RsSource's own bookkeeping
  bfm::RsSource cpu(sim, "cpu", clk_cpu.out(), link.data_in(), link.valid_in(),
                    link.stop_out(), link_cfg.dm, 0.7, 0xFFFF, raw_sb);

  // End-to-end checking: expectations carry the accelerator's transform,
  // mirrored in lockstep with the CPU's confirmed sends.
  bfm::Scoreboard end_sb(sim, "end_sb");
  std::uint64_t mirrored = 0;
  sim::on_rise(clk_cpu.out(), [&] {
    while (mirrored < cpu.sent_valid()) {
      ++mirrored;
      end_sb.push(transform(mirrored & 0xFFFF));
    }
  });

  bfm::SyncGetDriver sink_req(sim, "sink", clk_mem.out(), from_acc.req_get(),
                              fifo_cfg.dm, {1.0, 0});
  std::uint64_t results = 0;
  sim::on_rise(clk_mem.out(), [&] {
    if (from_acc.valid_get().read()) {
      end_sb.pop_check(from_acc.data_get().read());
      ++results;
    }
  });

  const Time horizon = 4 * mem_p + 4000 * mem_p;
  sim.run_until(horizon);

  std::printf("multi-domain pipeline: CPU @%.0f MHz -> LI link -> mem "
              "@%.0f MHz -> async accelerator -> mem domain\n",
              sim::period_to_mhz(cpu_p), sim::period_to_mhz(mem_p));
  std::printf("  operands sent       : %llu\n",
              static_cast<unsigned long long>(cpu.sent_valid()));
  std::printf("  results computed    : %llu\n",
              static_cast<unsigned long long>(acc.completed()));
  std::printf("  results delivered   : %llu\n",
              static_cast<unsigned long long>(results));
  std::printf("  end-to-end mismatches: %llu\n",
              static_cast<unsigned long long>(end_sb.errors()));
  const bool ok = end_sb.errors() == 0 && results > 500;
  std::printf("  %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
