file(REMOVE_RECURSE
  "CMakeFiles/bench_async_fifo_comparison.dir/bench_async_fifo_comparison.cpp.o"
  "CMakeFiles/bench_async_fifo_comparison.dir/bench_async_fifo_comparison.cpp.o.d"
  "bench_async_fifo_comparison"
  "bench_async_fifo_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_fifo_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
