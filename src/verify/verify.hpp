// Umbrella header for the runtime protocol-monitor framework.
//
// Typical armed-run setup (see docs/ARCHITECTURE.md section 9):
//
//   mts::verify::Hub hub;
//   hub.set_policy(mts::verify::Policy::kRecord);   // or kCount / kThrow
//   hub.arm(sim);                                   // BEFORE building the DUT
//   mts::fifo::MixedClockFifo dut(sim, "fig3", cfg, clkp, clkg);
//   ... run ...
//   for (const auto& v : hub.violations()) ...      // structured findings
#pragma once

#include "verify/checkers.hpp"  // IWYU pragma: export
#include "verify/hub.hpp"       // IWYU pragma: export
#include "verify/violation.hpp" // IWYU pragma: export
