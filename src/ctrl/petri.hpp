// 1-safe Petri-net controller engine.
//
// The paper's DV_as data-validity controller is specified as a Petri net
// (Fig. 10b) and synthesized with Petrify. We execute the net directly:
//
//   - *input* transitions are labelled with an edge of an input wire; when
//     that edge arrives, the transition fires if enabled (all pre-places
//     marked); an arriving edge with no enabled transition is reported as
//     "pn-illegal-input";
//   - *output* transitions drive an edge on an output wire; they fire
//     eagerly (with the controller's output delay) whenever enabled.
//
// The engine enforces 1-safety: a firing that would place a second token in
// a place indicates a malformed net and throws.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::ctrl {

struct PnTransition {
  std::string label;            ///< diagnostics, e.g. "we+" or "e_i-"
  bool is_input = true;         ///< input (wire-edge triggered) vs output
  unsigned signal = 0;          ///< index into inputs or outputs
  bool rising = true;           ///< edge direction
  std::vector<unsigned> pre;    ///< consumed places
  std::vector<unsigned> post;   ///< produced places
};

struct PetriNet {
  std::string name;
  unsigned num_places = 0;
  std::vector<unsigned> initial_marking;  ///< place indices holding a token
  std::vector<PnTransition> transitions;

  void validate(std::size_t num_inputs, std::size_t num_outputs) const;
};

class PetriEngine {
 public:
  PetriEngine(sim::Simulation& sim, std::string instance, const PetriNet& net,
              std::vector<sim::Wire*> inputs, std::vector<sim::Wire*> outputs,
              sim::Time output_delay);

  PetriEngine(const PetriEngine&) = delete;
  PetriEngine& operator=(const PetriEngine&) = delete;

  bool marked(unsigned place) const { return marking_.at(place); }
  std::uint64_t firings() const noexcept { return firings_; }

 private:
  void on_input_edge(unsigned signal, bool rising);
  bool enabled(const PnTransition& t) const;
  void fire(const PnTransition& t);
  void run_output_transitions();

  sim::Simulation& sim_;
  std::string instance_;
  const PetriNet& net_;
  std::vector<sim::Wire*> inputs_;
  std::vector<sim::Wire*> outputs_;
  sim::Time output_delay_;
  std::vector<bool> marking_;
  std::uint64_t firings_ = 0;
};

}  // namespace mts::ctrl
