#include "bfm/rs_drivers.hpp"

namespace mts::bfm {

RsSource::RsSource(sim::Simulation& sim, std::string name, sim::Wire& clk,
                   sim::Word& out_data, sim::Wire& out_valid, sim::Wire& stop,
                   const gates::DelayModel& dm, double valid_rate,
                   std::uint64_t value_mask, Scoreboard& sb)
    : sim_(sim),
      out_data_(out_data),
      out_valid_(out_valid),
      stop_(stop),
      clk_to_q_(dm.flop.clk_to_q),
      valid_rate_(valid_rate),
      value_mask_(value_mask),
      sb_(sb) {
  (void)name;
  clk.on_rise([this] { on_edge(); });
}

void RsSource::on_edge() {
  if (stop_.read()) return;  // link frozen: hold the pending packet

  // The packet that was on the wire is consumed at this edge.
  if (pending_valid_) {
    sb_.push(pending_data_);
    ++sent_valid_;
  }

  std::uniform_real_distribution<double> dist(0.0, 1.0);
  pending_valid_ =
      enabled_ && (valid_rate_ >= 1.0 || dist(sim_.rng()) < valid_rate_);
  if (pending_valid_) {
    pending_data_ = next_value_ & value_mask_;
    ++next_value_;
  }
  out_data_.write(pending_data_, clk_to_q_, sim::DelayKind::kInertial);
  out_valid_.write(pending_valid_, clk_to_q_, sim::DelayKind::kInertial);
}

RsSink::RsSink(sim::Simulation& sim, std::string name, sim::Wire& clk,
               sim::Word& in_data, sim::Wire& in_valid, sim::Wire& stop,
               const gates::DelayModel& dm, double stall_rate, Scoreboard& sb)
    : sim_(sim),
      in_data_(in_data),
      in_valid_(in_valid),
      stop_(stop),
      clk_to_q_(dm.flop.clk_to_q),
      stall_rate_(stall_rate),
      sb_(sb) {
  (void)name;
  clk.on_rise([this] { on_edge(); });
}

void RsSink::on_edge() {
  // Consume iff our registered stop was low during the ending cycle.
  if (!prev_stop_ && in_valid_.read()) {
    sb_.pop_check(in_data_.read());
    ++received_valid_;
    last_time_ = sim_.now();
  }
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  const bool stall = stall_rate_ > 0.0 && dist(sim_.rng()) < stall_rate_;
  prev_stop_ = stall;
  stop_.write(stall, clk_to_q_, sim::DelayKind::kInertial);
}

}  // namespace mts::bfm
