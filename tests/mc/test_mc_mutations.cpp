// Mutation coverage: every seeded known-bad configuration must be caught by
// the checker with its expected property, and the counterexample must replay
// on the concrete engines to the matching runtime verify:: invariant at the
// same environment step.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "mc/checker.hpp"
#include "mc/mutations.hpp"
#include "mc/property.hpp"
#include "mc/replay.hpp"

namespace mts::mc {
namespace {

TEST(Mutations, SetCoversEightDistinctSeededBugs) {
  const std::vector<Mutant> mutants = make_mutants();
  ASSERT_EQ(mutants.size(), 8u);
  std::set<std::string> names;
  std::set<Property> expected;
  for (const Mutant& m : mutants) {
    names.insert(m.name);
    expected.insert(m.expected);
    EXPECT_FALSE(m.description.empty()) << m.name;
  }
  EXPECT_EQ(names.size(), 8u);
  // Seven distinct invariants: the two OPT arc mutants (dropped arc, moved
  // burst) both manifest as token-ring violations, at different env steps.
  EXPECT_EQ(expected.size(), 7u);
}

TEST(Mutations, EveryMutantIsCaughtWithItsExpectedProperty) {
  for (const Mutant& m : make_mutants()) {
    SCOPED_TRACE(m.name);
    const CheckResult res = check_ring(m.config, {});
    ASSERT_FALSE(res.ok) << "checker missed the seeded bug";
    ASSERT_TRUE(res.cex.has_value());
    EXPECT_EQ(res.cex->property, m.expected)
        << "found " << property_name(res.cex->property) << ", expected "
        << property_name(m.expected);
    EXPECT_TRUE(res.cex->replayable);
    EXPECT_GT(res.cex->env_step, 0u);
    EXPECT_FALSE(res.cex->env_actions.empty());
  }
}

TEST(Mutations, EveryCounterexampleReplaysToTheMatchingRuntimeInvariant) {
  for (const Mutant& m : make_mutants()) {
    SCOPED_TRACE(m.name);
    const CheckResult res = check_ring(m.config, {});
    ASSERT_FALSE(res.ok);
    ASSERT_TRUE(res.cex.has_value());
    const CrossCheckResult cc = cross_check(m.config, *res.cex);
    EXPECT_TRUE(cc.ok) << cc.message;
    ASSERT_TRUE(cc.outcome.invariant.has_value());
    EXPECT_EQ(*cc.outcome.invariant, *to_invariant(res.cex->property));
    EXPECT_EQ(cc.outcome.env_step, res.cex->env_step);
  }
}

TEST(Mutations, CleanConfigurationSurvivesTheReplayHarness) {
  // Guard against harness false positives: the unmutated ring driven through
  // a full fill/drain cycle must not trip any monitor.
  const RingConfig cfg = default_ring(4);
  std::vector<ActionKind> script;
  for (int i = 0; i < 4; ++i) {
    script.push_back(ActionKind::kPutReqUp);
    script.push_back(ActionKind::kPutReqDown);
  }
  for (int i = 0; i < 4; ++i) {
    script.push_back(ActionKind::kGetReqUp);
    script.push_back(ActionKind::kGetReqDown);
  }
  const ReplayOutcome out = replay_ring(cfg, script);
  EXPECT_FALSE(out.violated) << out.site << ": " << out.detail;
  EXPECT_EQ(out.put_handshakes, 4u);
  EXPECT_EQ(out.get_handshakes, 4u);
}

}  // namespace
}  // namespace mts::mc
