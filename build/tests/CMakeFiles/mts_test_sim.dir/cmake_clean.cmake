file(REMOVE_RECURSE
  "CMakeFiles/mts_test_sim.dir/sim/test_fuzz_netlist.cpp.o"
  "CMakeFiles/mts_test_sim.dir/sim/test_fuzz_netlist.cpp.o.d"
  "CMakeFiles/mts_test_sim.dir/sim/test_report.cpp.o"
  "CMakeFiles/mts_test_sim.dir/sim/test_report.cpp.o.d"
  "CMakeFiles/mts_test_sim.dir/sim/test_scheduler.cpp.o"
  "CMakeFiles/mts_test_sim.dir/sim/test_scheduler.cpp.o.d"
  "CMakeFiles/mts_test_sim.dir/sim/test_signal.cpp.o"
  "CMakeFiles/mts_test_sim.dir/sim/test_signal.cpp.o.d"
  "CMakeFiles/mts_test_sim.dir/sim/test_time.cpp.o"
  "CMakeFiles/mts_test_sim.dir/sim/test_time.cpp.o.d"
  "CMakeFiles/mts_test_sim.dir/sim/test_trace.cpp.o"
  "CMakeFiles/mts_test_sim.dir/sim/test_trace.cpp.o.d"
  "mts_test_sim"
  "mts_test_sim.pdb"
  "mts_test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
