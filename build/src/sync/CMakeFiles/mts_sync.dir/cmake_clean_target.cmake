file(REMOVE_RECURSE
  "libmts_sync.a"
)
