# Empty compiler generated dependencies file for example_multi_domain_pipeline.
# This may be replaced when dependencies are built.
