// Discrete-event scheduler.
//
// Two-level queue: a FIFO "delta ring" holds events at the current
// timestamp (the dominant case -- zero-delay gate writes and delta cycles),
// and a binary min-heap of (time, sequence) holds future events. When the
// ring drains, the earliest heap timestamp is promoted: every heap event at
// that time moves into the ring in scheduling order before any of them runs,
// so same-timestamp events always execute in scheduling order regardless of
// which level they entered through. This gives the kernel deterministic
// delta-cycle semantics: a zero-delay write scheduled while processing time
// T runs later within T, never "before" already-pending work.
//
// Callbacks are small-buffer-optimized (sim/callback.hpp) and both levels
// recycle their storage, so the steady-state hot loop performs zero heap
// allocations per event.
//
// A per-timestamp event budget guards against combinational oscillation
// (e.g. an inverter loop with zero delay): exceeding it raises
// SimulationError instead of hanging the process.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/error.hpp"
#include "sim/kernel_stats.hpp"
#include "sim/profiler.hpp"
#include "sim/ring.hpp"
#include "sim/time.hpp"

namespace mts::sim {

class Watchdog;

class Scheduler {
 public:
  using Callback = InplaceFunction<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time. Starts at 0.
  Time now() const noexcept { return now_; }

  /// Schedules `f` at absolute time `t`; `t` must not be in the past.
  /// Takes any void() callable and type-erases it directly into queue
  /// storage -- no intermediate Callback move on the scheduling fast path.
  template <typename F, typename = std::enable_if_t<
                            std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void at(Time t, F&& f) {
    // Profiler site inheritance: events adopt the site of the event that
    // schedules them (see sim/profiler.hpp). One branch when dormant.
    at_site(t, profiler_ == nullptr ? 0u : profiler_->current(),
            std::forward<F>(f));
  }

  /// at() with an explicit profiler site -- used by root event sources
  /// (clocks, asynchronous drivers) that are not themselves scheduled from
  /// inside a profiled event. The site is ignored while no profiler is
  /// armed.
  template <typename F, typename = std::enable_if_t<
                            std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void at_site(Time t, KernelProfiler::SiteId site, F&& f) {
    MTS_ASSERT(t >= now_, "event scheduled in the past at t=" +
                              std::to_string(t) +
                              " now=" + std::to_string(now_));
    if (t == now_) {
      // Same-timestamp events always have a later sequence number than
      // anything still in the heap at this time (those were promoted into
      // the ring before execution started), so FIFO order is scheduling
      // order.
      ring_.push_back(RingEvent{Callback(std::forward<F>(f)), site});
    } else {
      heap_.emplace_back(t, next_seq_++, site, std::forward<F>(f));
      // A singleton heap is already a heap; skip the sift (the dominant
      // case for self-rescheduling chains).
      if (heap_.size() > 1) std::push_heap(heap_.begin(), heap_.end(), Later{});
    }
    note_push();
  }

  /// Schedules `f` at now() + delay.
  template <typename F, typename = std::enable_if_t<
                            std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void after(Time delay, F&& f) {
    at(now_ + delay, std::forward<F>(f));
  }

  bool empty() const noexcept { return ring_.empty() && heap_.empty(); }
  std::size_t pending() const noexcept { return ring_.size() + heap_.size(); }

  /// Runs the single earliest event. Returns false if the queue is empty.
  bool step();

  /// Runs every event with timestamp <= t; now() == t afterwards even if
  /// the queue drained early.
  void run_until(Time t);

  /// Runs until the queue drains or `max_events` have executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = kDefaultRunBudget);

  /// Upper bound on events executed at a single timestamp before the kernel
  /// declares a combinational oscillation.
  void set_timestamp_budget(std::size_t budget) { timestamp_budget_ = budget; }

  /// Returns the scheduler to its just-constructed state -- time 0, empty
  /// queues, zeroed health counters -- while KEEPING the delta ring's and
  /// heap's grown storage, so the next run is allocation-free from its
  /// first event. Pending callbacks are destroyed. The armed profiler (if
  /// any) is kept; the timestamp budget is kept. This is the campaign
  /// engine's per-run arena-reuse hook (sim/campaign.hpp).
  void reset();

  /// Arms (nullptr: disarms) wall-time profiling of event dispatch. The
  /// profiler must outlive the scheduler or be disarmed first.
  void set_profiler(KernelProfiler* p) noexcept { profiler_ = p; }
  KernelProfiler* profiler() const noexcept { return profiler_; }

  /// Arms (nullptr: disarms) a run watchdog (sim/watchdog.hpp): the run
  /// loops call Watchdog::tick once per executed event. One pointer branch
  /// per event when disarmed, same cost shape as the profiler.
  void set_watchdog(Watchdog* w) noexcept { watchdog_ = w; }
  Watchdog* watchdog() const noexcept { return watchdog_; }

  /// Events executed since construction/reset() -- the cheap single-counter
  /// read the telemetry sampler uses (stats() flushes the profiler).
  std::uint64_t events_executed() const noexcept {
    return stats_.events_executed;
  }

  /// Snapshot of the kernel health counters (plus the hottest-site table
  /// when a profiler is armed; pending profiler samples are flushed first).
  KernelStats stats() const {
    KernelStats s = stats_;
    s.pool_high_water = ring_.capacity() + heap_.capacity();
    if (profiler_ != nullptr) {
      profiler_->flush();
      s.hot_sites = profiler_->top();
    }
    return s;
  }

  static constexpr std::size_t kDefaultRunBudget = 500'000'000;

 private:
  struct RingEvent {
    Callback cb;
    KernelProfiler::SiteId site = 0;
  };
  struct Event {
    template <typename F>
    Event(Time time, std::uint64_t sequence, KernelProfiler::SiteId s, F&& f)
        : t(time), seq(sequence), site(s), cb(std::forward<F>(f)) {}
    Time t = 0;
    std::uint64_t seq = 0;
    KernelProfiler::SiteId site = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  /// Pops and runs the front delta-ring event (which is at now()).
  void run_one_from_ring();

  /// Advances now() to the earliest heap timestamp and runs its first event
  /// directly; any sibling events at the same timestamp are first moved into
  /// the delta ring (in scheduling order) so they run before the executed
  /// event's zero-delay children. Precondition: ring empty, heap non-empty.
  void run_one_from_heap();

  /// Runs cb() under `site`'s ProfileScope and records a site sample
  /// (profiler armed only). Wall time is attributed by the profiler's
  /// block-sampled clock, not per-callback reads (see sim/profiler.hpp).
  void run_profiled(Callback& cb, KernelProfiler::SiteId site);

  void dispatch(RingEvent& ev) {
    if (profiler_ == nullptr) {
      ev.cb();
    } else {
      run_profiled(ev.cb, ev.site);
    }
  }

  void note_push() noexcept {
    const std::size_t depth = ring_.size() + heap_.size();
    if (depth > stats_.peak_queue_depth) stats_.peak_queue_depth = depth;
  }

  RingBuffer<RingEvent> ring_;  ///< events at now(), FIFO order
  std::vector<Event> heap_;     ///< future events, min-heap via Later
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t events_at_now_ = 0;
  std::size_t timestamp_budget_ = 4'000'000;
  KernelStats stats_;
  KernelProfiler* profiler_ = nullptr;
  Watchdog* watchdog_ = nullptr;
};

}  // namespace mts::sim
