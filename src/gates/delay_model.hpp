// Technology delay model.
//
// The paper evaluates in 0.6u HP CMOS (3.3V, 300K) with HSpice; we replace
// analog simulation with a parametric delay model. Per DESIGN.md section 7,
// the model is calibrated once (hp06 preset) against the paper's headline
// number (mixed-clock 4-place/8-bit put interface near 565 MHz); every other
// Table 1 entry then follows from netlist structure:
//   - detector trees deepen logarithmically with FIFO capacity,
//   - broadcast/bus delays grow with capacity (wire load) and width
//     (enable buffering),
//   - controller complexity differences (AND vs inverter vs 3-input gates)
//     shift each interface's critical path.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mts::gates {

using sim::Time;

/// Per-flop timing parameters.
struct FlopTiming {
  Time clk_to_q = 0;
  Time setup = 0;
  Time hold = 0;
};

struct DelayModel {
  // Combinational gates: delay = gate_base + gate_per_input * fanin
  //                              + load_per_fanout * (fanout - 1).
  Time gate_base = 80;
  Time gate_per_input = 35;
  Time load_per_fanout = 10;

  // Storage elements.
  FlopTiming flop{160, 100, 50};
  Time latch_d_to_q = 130;   ///< transparent latch, data to output
  Time latch_en_to_q = 150;  ///< transparent latch, enable to output
  Time sr_latch = 120;       ///< SR latch set/reset to output

  // C-elements (symmetric and asymmetric): base + slope * fanin.
  Time celement_base = 100;
  Time celement_per_input = 50;

  // Buffer trees for broadcast nets (en_put/en_get distribution): stages of
  // fanout-4 buffers, each stage costing buf_stage.
  Time buf_stage = 60;

  // Bus loading: wire capacitance per attached cell and per data bit.
  Time bus_per_cell = 6;
  Time bus_per_bit = 26;

  // Tri-state output buses (get_data): driver enable to bus-valid.
  Time tristate_base = 120;

  // Synchronizer metastability parameters: susceptibility window around the
  // sampling edge and resolution time constant (tau).
  Time meta_window = 80;
  Time meta_tau = 80;
  Time meta_settle_det = 350;  ///< fixed settle penalty in deterministic mode

  /// Delay of an n-input gate driving `fanout` loads.
  Time gate(unsigned fanin, unsigned fanout = 1) const;

  /// Delay of a symmetric/asymmetric C-element with `fanin` total inputs.
  Time celement(unsigned fanin) const;

  /// Delay of a buffer tree driving `fanout` leaf loads (fanout-4 stages).
  Time buffer_tree(unsigned fanout) const;

  /// Delay for a control broadcast to `cells` cells whose per-cell load
  /// scales with datapath `bits` (e.g. en_put driving every REG enable).
  Time broadcast(unsigned cells, unsigned bits) const;

  /// Delay for a cell to drive the shared tri-state get_data bus loaded by
  /// `cells` attached drivers and `bits` wires of environment capacitance.
  Time tristate_bus(unsigned cells, unsigned bits) const;

  /// The 0.6u HP CMOS calibration used by all Table 1 benches.
  static DelayModel hp06();

  /// A uniformly scaled copy of this model (e.g. 0.6 approximates one
  /// process shrink). Every Table 1 *relationship* is scale-invariant;
  /// only absolute rates change -- tests verify this.
  DelayModel scaled(double factor) const;
};

}  // namespace mts::gates
