#include "fifo/area.hpp"

#include "gates/combinational.hpp"

namespace mts::fifo {

namespace {

/// Shared cell-array datapath: per cell, a W-bit register write port plus
/// the validity flop and the tri-state read drivers.
double datapath_ge(const FifoConfig& cfg, const gates::AreaModel& am) {
  const double per_cell = am.flop_ge * cfg.width     // REG write port
                          + am.flop_ge               // validity bit
                          + am.tristate_driver_ge * (cfg.width + 1);
  return per_cell * cfg.capacity;
}

/// Shared cell-array control: token flops, matched buffers, we/re ANDs,
/// DV latch, plus the detectors and controllers.
double control_ge(const FifoConfig& cfg, const gates::AreaModel& am) {
  const unsigned n = cfg.capacity;
  double cells = 0;
  cells += 2 * am.flop_ge;     // put/get token flops
  cells += 2 * am.buffer_ge;   // matched token buffers
  cells += 2 * am.gate(2);     // we_i / re_i ANDs
  cells += am.sr_latch_ge;     // DV
  double total = cells * n;

  // Detectors: pair ranks (full + ne) and three OR trees + inverters.
  total += 2 * n * am.gate(2);                       // pair ANDs
  const unsigned tree_nodes = n;                     // ~n nodes per tree
  total += 3 * tree_nodes * am.gate(4) / 2;          // full / ne / oe trees
  total += 3 * am.gate(1);                           // output inverters

  // Controllers + broadcast buffer trees.
  total += 2 * am.gate(3) + am.gate(2);              // put/get ctrl + empty AND
  total += 2 * (n / 2) * am.buffer_ge;               // enable buffer trees
  return total;
}

}  // namespace

AreaEstimate area_mixed_clock(const FifoConfig& cfg, const gates::AreaModel& am) {
  AreaEstimate a;
  a.datapath_ge = datapath_ge(cfg, am);
  a.control_ge = control_ge(cfg, am);
  // One synchronizer chain on full, two on the bi-modal empty (ne and oe),
  // each cfg.sync.depth latches deep, plus the Fig. 7b OR gate.
  a.synchronizer_ge = 3.0 * cfg.sync.depth * am.sync_latch_ge + am.gate(2);
  return a;
}

AreaEstimate area_per_cell_sync(const FifoConfig& cfg,
                                const gates::AreaModel& am) {
  AreaEstimate a;
  a.datapath_ge = datapath_ge(cfg, am);
  a.control_ge = control_ge(cfg, am);
  // Intel-style [9]: each cell's state flag is synchronized into *both*
  // clock domains -- two chains per cell -- and the global state is then
  // computed from already-synchronous bits (no detector synchronizers).
  a.synchronizer_ge =
      2.0 * cfg.capacity * cfg.sync.depth * am.sync_latch_ge;
  return a;
}

}  // namespace mts::fifo
