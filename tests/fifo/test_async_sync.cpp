#include "fifo/async_sync_fifo.hpp"

#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "sync/clock.hpp"

namespace mts::fifo {
namespace {

using sim::Time;

FifoConfig small_cfg(unsigned capacity = 4, unsigned width = 8) {
  FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = width;
  return cfg;
}

struct Harness {
  sim::Simulation sim{1};
  FifoConfig cfg;
  Time get_p;
  sync::Clock clk_get;
  AsyncSyncFifo dut;
  bfm::Scoreboard sb{sim, "sb"};
  bfm::GetMonitor get_mon;

  explicit Harness(const FifoConfig& c, double get_scale = 2.0)
      : cfg(c),
        get_p(static_cast<Time>(get_scale *
                                static_cast<double>(SyncGetSide::min_period(c)))),
        clk_get(sim, "clk_get", {get_p, 4 * get_p, 0.5, 0}),
        dut(sim, "dut", c, clk_get.out()),
        get_mon(sim, clk_get.out(), dut.valid_get(), dut.data_get(), sb) {}

  Time start() const { return 4 * get_p; }
};

TEST(AsyncSyncFifo, StartsEmptyAndAckIdle) {
  Harness h(small_cfg());
  h.sim.run_until(h.start() + 4 * h.get_p);
  EXPECT_EQ(h.dut.occupancy(), 0u);
  EXPECT_TRUE(h.dut.empty().read());
  EXPECT_FALSE(h.dut.put_ack().read());
}

TEST(AsyncSyncFifo, SingleHandshakeEnqueues) {
  Harness h(small_cfg());
  bfm::AsyncPutDriver put(h.sim, "put", h.dut.put_req(), h.dut.put_ack(),
                          h.dut.put_data(), h.cfg.dm,
                          bfm::AsyncPutDriver::kManual, 0xFF, &h.sb);
  h.sim.sched().at(h.start() + 2 * h.get_p, [&] { put.issue_one(); });
  h.sim.run_until(h.start() + 8 * h.get_p);
  EXPECT_EQ(put.completed(), 1u);
  EXPECT_EQ(h.dut.occupancy(), 1u);
  EXPECT_FALSE(h.dut.put_req().read());  // 4-phase fully reset
  EXPECT_FALSE(h.dut.put_ack().read());
}

TEST(AsyncSyncFifo, PutThenSyncGetDeliversData) {
  Harness h(small_cfg());
  bfm::AsyncPutDriver put(h.sim, "put", h.dut.put_req(), h.dut.put_ack(),
                          h.dut.put_data(), h.cfg.dm,
                          bfm::AsyncPutDriver::kManual, 0xFF, &h.sb);
  bfm::SyncGetDriver get(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                         h.cfg.dm, bfm::RateConfig{1.0, 1});
  h.sim.sched().at(h.start() + 2 * h.get_p, [&] { put.issue_one(); });
  h.sim.run_until(h.start() + 20 * h.get_p);
  EXPECT_EQ(h.get_mon.dequeued(), 1u);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.dut.occupancy(), 0u);
}

TEST(AsyncSyncFifo, AckWithheldWhenFull) {
  Harness h(small_cfg(4));
  // Saturating sender, no receiver: the FIFO fills and then withholds ack.
  bfm::AsyncPutDriver put(h.sim, "put", h.dut.put_req(), h.dut.put_ack(),
                          h.dut.put_data(), h.cfg.dm, 0, 0xFF, &h.sb);
  h.sim.run_until(h.start() + 40 * h.get_p);
  EXPECT_EQ(h.dut.occupancy(), 4u);
  EXPECT_EQ(put.completed(), 4u);
  EXPECT_TRUE(h.dut.put_req().read());  // request pending, unacknowledged
  EXPECT_FALSE(h.dut.put_ack().read());
  EXPECT_EQ(h.dut.overflow_count(), 0u);

  // A receiver appears: space frees, the pending put completes.
  bfm::SyncGetDriver get(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                         h.cfg.dm, bfm::RateConfig{1.0, 1});
  h.sim.run_until(h.start() + 80 * h.get_p);
  EXPECT_GT(put.completed(), 4u);
  EXPECT_EQ(h.sb.errors(), 0u);
}

TEST(AsyncSyncFifo, SaturatedTrafficPreservesOrder) {
  Harness h(small_cfg(8));
  bfm::AsyncPutDriver put(h.sim, "put", h.dut.put_req(), h.dut.put_ack(),
                          h.dut.put_data(), h.cfg.dm, 0, 0xFF, &h.sb);
  bfm::SyncGetDriver get(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                         h.cfg.dm, bfm::RateConfig{1.0, 1});
  h.sim.run_until(h.start() + 500 * h.get_p);
  EXPECT_GT(h.get_mon.dequeued(), 100u);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.dut.overflow_count(), 0u);
  EXPECT_EQ(h.dut.underflow_count(), 0u);
}

TEST(AsyncSyncFifo, BurstySenderRandomReceiver) {
  Harness h(small_cfg(4));
  bfm::AsyncPutDriver put(h.sim, "put", h.dut.put_req(), h.dut.put_ack(),
                          h.dut.put_data(), h.cfg.dm, 3 * h.get_p, 0xFF, &h.sb);
  bfm::SyncGetDriver get(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                         h.cfg.dm, bfm::RateConfig{0.3, 1});
  h.sim.run_until(h.start() + 600 * h.get_p);
  EXPECT_GT(h.get_mon.dequeued(), 30u);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.dut.underflow_count(), 0u);
}

TEST(AsyncSyncFifo, TokenRingWrapsAround) {
  // More handshakes than cells: the put token must circulate the ring.
  Harness h(small_cfg(4));
  bfm::AsyncPutDriver put(h.sim, "put", h.dut.put_req(), h.dut.put_ack(),
                          h.dut.put_data(), h.cfg.dm, h.get_p / 2, 0xFF, &h.sb);
  bfm::SyncGetDriver get(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                         h.cfg.dm, bfm::RateConfig{1.0, 1});
  h.sim.run_until(h.start() + 200 * h.get_p);
  EXPECT_GT(put.completed(), 12u);  // at least three laps of a 4-cell ring
  EXPECT_EQ(h.sb.errors(), 0u);
}

TEST(AsyncSyncFifo, NoDeadlockWithSingleResidentItem) {
  Harness h(small_cfg(4));
  bfm::AsyncPutDriver put(h.sim, "put", h.dut.put_req(), h.dut.put_ack(),
                          h.dut.put_data(), h.cfg.dm,
                          bfm::AsyncPutDriver::kManual, 0xFF, &h.sb);
  h.sim.sched().at(h.start() + 2 * h.get_p, [&] { put.issue_one(); });
  // The receiver only starts requesting after the item has settled.
  h.sim.sched().at(h.start() + 12 * h.get_p,
                   [&] { h.dut.req_get().set(true); });
  h.sim.run_until(h.start() + 40 * h.get_p);
  EXPECT_EQ(h.get_mon.dequeued(), 1u);
  EXPECT_EQ(h.sb.errors(), 0u);
}

TEST(AsyncSyncFifo, RejectsBadConfig) {
  sim::Simulation sim;
  sync::Clock clk(sim, "clk", {1000, 0, 0.5, 0});
  FifoConfig bad = small_cfg();
  bad.capacity = 0;
  EXPECT_THROW(AsyncSyncFifo(sim, "f", bad, clk.out()), ConfigError);
}

TEST(AsyncSyncFifo, GetMinPeriodMatchesMixedClock) {
  // Table 1: identical get columns for the mixed-clock and async-sync
  // designs -- the get half is literally the same block.
  const FifoConfig cfg = small_cfg(8, 16);
  sim::Simulation sim;
  sync::Clock clk(sim, "clk", {1000, 0, 0.5, 0});
  AsyncSyncFifo f(sim, "f", cfg, clk.out());
  EXPECT_EQ(f.get_min_period(), SyncGetSide::min_period(cfg));
}

}  // namespace
}  // namespace mts::fifo
