// Property sweeps over the latency-insensitive substrate: chains of every
// length under randomized stall/valid patterns must deliver every valid
// packet exactly once, in order, for all seeds.
#include <gtest/gtest.h>

#include <sstream>

#include "bfm/bfm.hpp"
#include "gates/netlist.hpp"
#include "lip/chain.hpp"
#include "sync/clock.hpp"

namespace mts::lip {
namespace {

using sim::Time;

struct ChainParam {
  unsigned length;
  double valid_rate;
  double stall_rate;
  std::uint64_t seed;
};

class ChainProperty : public ::testing::TestWithParam<ChainParam> {};

TEST_P(ChainProperty, NoLossNoDuplicationNoReorder) {
  const ChainParam p = GetParam();
  sim::Simulation sim(p.seed);
  const gates::DelayModel dm = gates::DelayModel::hp06();
  const Time period = 2000;
  sync::Clock clk(sim, "clk", {period, period, 0.5, 0});
  gates::Netlist nl(sim, "t");
  sim::Word& in_d = nl.word("ind");
  sim::Wire& in_v = nl.wire("inv");
  sim::Wire& s_out = nl.wire("sout");
  sim::Word& out_d = nl.word("outd");
  sim::Wire& out_v = nl.wire("outv");
  sim::Wire& s_in = nl.wire("sin");
  SyncRelayChain chain(sim, "chain", clk.out(), p.length, dm, in_d, in_v,
                       s_out, out_d, out_v, s_in);
  bfm::Scoreboard sb(sim, "sb");
  bfm::RsSource src(sim, "src", clk.out(), in_d, in_v, s_out, dm, p.valid_rate,
                    0xFFFF, sb);
  bfm::RsSink sink(sim, "sink", clk.out(), out_d, out_v, s_in, dm,
                   p.stall_rate, sb);
  sim.run_until(2000 * period);

  EXPECT_EQ(sb.errors(), 0u);
  if (p.valid_rate > 0.2 && p.stall_rate < 0.8) {
    EXPECT_GT(sink.received_valid(), 100u);
  }
  // Conservation: in flight <= source pending + 3 per relay station
  // (MR + AUX + registered output) + the sink-side link.
  EXPECT_LE(sb.in_flight(), 1 + 3 * static_cast<std::size_t>(p.length) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChainProperty,
    ::testing::Values(ChainParam{1, 1.0, 0.0, 1}, ChainParam{1, 0.5, 0.5, 2},
                      ChainParam{2, 0.9, 0.2, 3}, ChainParam{3, 0.3, 0.7, 4},
                      ChainParam{5, 1.0, 0.5, 5}, ChainParam{8, 0.8, 0.3, 6},
                      ChainParam{13, 0.6, 0.6, 7},
                      ChainParam{16, 1.0, 0.1, 8},
                      ChainParam{4, 0.1, 0.0, 9},
                      ChainParam{4, 1.0, 0.75, 10}),
    [](const ::testing::TestParamInfo<ChainParam>& info) {
      std::ostringstream os;
      os << "L" << info.param.length << "_v"
         << static_cast<int>(info.param.valid_rate * 100) << "_s"
         << static_cast<int>(info.param.stall_rate * 100) << "_seed"
         << info.param.seed;
      return os.str();
    });

class MicropipelineProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(MicropipelineProperty, EveryLengthStreamsInOrder) {
  const unsigned stages = GetParam();
  sim::Simulation sim(stages);
  const gates::DelayModel dm = gates::DelayModel::hp06();
  gates::Netlist nl(sim, "t");
  sim::Wire& in_req = nl.wire("in_req");
  sim::Wire& in_ack = nl.wire("in_ack");
  sim::Word& in_data = nl.word("in_data");
  sim::Wire& out_req = nl.wire("out_req");
  sim::Wire& out_ack = nl.wire("out_ack");
  sim::Word& out_data = nl.word("out_data");
  Micropipeline mp(sim, "mp", stages, in_req, in_ack, in_data, out_req,
                   out_ack, out_data, dm);
  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncPutDriver put(sim, "put", in_req, in_ack, in_data, dm, 0, 0xFF,
                          &sb);
  std::uint64_t received = 0;
  out_req.on_change([&](bool, bool now) {
    if (now) {
      sb.pop_check(out_data.read());
      ++received;
      out_ack.write(true, 120, sim::DelayKind::kTransport);
    } else {
      out_ack.write(false, 120, sim::DelayKind::kTransport);
    }
  });
  sim.run_until(1'500'000);
  EXPECT_GT(received, 100u);
  EXPECT_EQ(sb.errors(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Lengths, MicropipelineProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u),
                         [](const ::testing::TestParamInfo<unsigned>& i) {
                           return "stages" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace mts::lip
