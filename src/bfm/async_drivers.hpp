// Bus-functional models for the asynchronous 4-phase bundled-data
// interfaces (Fig. 3b protocol): req+/ack+ ... req-/ack-.
#pragma once

#include <cstdint>
#include <string>

#include "bfm/scoreboard.hpp"
#include "gates/delay_model.hpp"
#include "sim/profiler.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::bfm {

/// Asynchronous sender: places a data item, raises put_req, records the
/// enqueue on put_ack+, resets, and repeats after `gap`.
class AsyncPutDriver {
 public:
  /// Passed as `gap` to suppress automatic issuing; the testbench then
  /// calls issue_one() at precise instants (latency experiments).
  static constexpr sim::Time kManual = ~sim::Time{0};

  /// `gap` is the sender's idle time between handshakes (0 saturates).
  /// When `sb` is non-null every acknowledged item is pushed to it.
  AsyncPutDriver(sim::Simulation& sim, std::string name, sim::Wire& put_req,
                 sim::Wire& put_ack, sim::Word& put_data,
                 const gates::DelayModel& dm, sim::Time gap,
                 std::uint64_t value_mask, Scoreboard* sb);

  AsyncPutDriver(const AsyncPutDriver&) = delete;
  AsyncPutDriver& operator=(const AsyncPutDriver&) = delete;

  /// Stops issuing after the current handshake completes.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  std::uint64_t completed() const noexcept { return completed_; }
  sim::Time last_ack_time() const noexcept { return last_ack_; }
  std::uint64_t next_value() const noexcept { return next_value_; }

  /// Issues one handshake immediately (used by latency experiments that
  /// place a single item at a precise instant).
  void issue_one();

 private:
  void issue();

  sim::Simulation& sim_;
  std::string name_;  ///< fault-plan site key for bundling violations
  sim::Wire& put_req_;
  sim::Word& put_data_;
  gates::DelayModel dm_;
  sim::Time gap_;
  std::uint64_t value_mask_;
  std::uint64_t next_value_ = 1;
  std::uint64_t completed_ = 0;
  sim::Time last_ack_ = 0;
  bool enabled_ = true;
  Scoreboard* sb_;
  // Profiler attribution (armed observability only): handshake cascades
  // initiated by this driver are charged to its site.
  sim::KernelProfiler* prof_ = nullptr;
  sim::KernelProfiler::SiteId site_ = 0;
};

/// Asynchronous receiver: raises get_req, checks get_data on get_ack+,
/// resets, and repeats after `gap`.
class AsyncGetDriver {
 public:
  AsyncGetDriver(sim::Simulation& sim, std::string name, sim::Wire& get_req,
                 sim::Wire& get_ack, sim::Word& get_data,
                 const gates::DelayModel& dm, sim::Time gap, Scoreboard* sb);

  AsyncGetDriver(const AsyncGetDriver&) = delete;
  AsyncGetDriver& operator=(const AsyncGetDriver&) = delete;

  void set_enabled(bool on) noexcept { enabled_ = on; }
  std::uint64_t completed() const noexcept { return completed_; }
  sim::Time last_ack_time() const noexcept { return last_ack_; }

 private:
  void issue();

  sim::Simulation& sim_;
  sim::Wire& get_req_;
  sim::Word& get_data_;
  gates::DelayModel dm_;
  sim::Time gap_;
  std::uint64_t completed_ = 0;
  sim::Time last_ack_ = 0;
  bool enabled_ = true;
  Scoreboard* sb_;
};

/// Asynchronous push-side receiver: answers a PRODUCER-driven req/ack
/// channel (a micropipeline output, a bare bundled-data link) rather than
/// pulling like AsyncGetDriver. Checks data against the scoreboard on
/// req+, acknowledges after `gap`, and completes the 4-phase reset.
class AsyncAckSink {
 public:
  AsyncAckSink(sim::Simulation& sim, std::string name, sim::Wire& req,
               sim::Wire& ack, sim::Word& data, const gates::DelayModel& dm,
               sim::Time gap, Scoreboard* sb);

  AsyncAckSink(const AsyncAckSink&) = delete;
  AsyncAckSink& operator=(const AsyncAckSink&) = delete;

  /// Stops acknowledging (back-pressure: the producer stalls on req+).
  /// Re-enabling answers a pending request immediately.
  void set_enabled(bool on);
  std::uint64_t completed() const noexcept { return completed_; }
  sim::Time last_req_time() const noexcept { return last_req_; }

 private:
  void accept();

  sim::Simulation& sim_;
  sim::Wire& req_;
  sim::Wire& ack_;
  sim::Word& data_;
  gates::DelayModel dm_;
  sim::Time gap_;
  std::uint64_t completed_ = 0;
  sim::Time last_req_ = 0;
  bool enabled_ = true;
  bool pending_ = false;
  Scoreboard* sb_;
};

}  // namespace mts::bfm
