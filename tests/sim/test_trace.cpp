#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/signal.hpp"

namespace mts::sim {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class TraceTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "mts_trace_test.vcd";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TraceTest, HeaderContainsDefinitionsAndInitialValues) {
  Simulation sim;
  Wire w(sim, "clk", true);
  Word d(sim, "bus", 5);
  {
    VcdWriter vcd(path_);
    vcd.watch(w);
    vcd.watch(d, 8, "data");
    vcd.start();
  }
  const std::string text = read_file(path_);
  EXPECT_NE(text.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 8 \" data $end"), std::string::npos);
  EXPECT_NE(text.find("1!"), std::string::npos);
  EXPECT_NE(text.find("b00000101 \""), std::string::npos);
}

TEST_F(TraceTest, RecordsChangesWithTimestamps) {
  Simulation sim;
  Wire w(sim, "w");
  VcdWriter vcd(path_);
  vcd.watch(w);
  vcd.start();
  sim.sched().at(100, [&] { w.set(true); });
  sim.sched().at(250, [&] { w.set(false); });
  sim.run();
  vcd.finish();
  const std::string text = read_file(path_);
  EXPECT_NE(text.find("#100\n1!"), std::string::npos);
  EXPECT_NE(text.find("#250\n0!"), std::string::npos);
}

TEST_F(TraceTest, WatchAfterStartThrows) {
  Simulation sim;
  Wire w(sim, "w");
  VcdWriter vcd(path_);
  vcd.start();
  EXPECT_THROW(vcd.watch(w), ConfigError);
}

TEST_F(TraceTest, BadWidthThrows) {
  Simulation sim;
  Word d(sim, "d");
  VcdWriter vcd(path_);
  EXPECT_THROW(vcd.watch(d, 0), ConfigError);
  EXPECT_THROW(vcd.watch(d, 65), ConfigError);
}

TEST(Trace, UnwritablePathThrows) {
  EXPECT_THROW(VcdWriter("/nonexistent_dir_xyz/out.vcd"), ConfigError);
}

TEST_F(TraceTest, DoubleFinishIsANoop) {
  Simulation sim;
  Wire w(sim, "w");
  VcdWriter vcd(path_);
  vcd.watch(w);
  vcd.start();
  sim.sched().at(100, [&] { w.set(true); });
  sim.run();
  vcd.finish();
  vcd.finish();  // second call must not throw or corrupt the file
  const std::string text = read_file(path_);
  EXPECT_NE(text.find("#100\n1!"), std::string::npos);
}

TEST_F(TraceTest, DestructAfterExplicitFinishIsSafe) {
  Simulation sim;
  Wire w(sim, "w");
  {
    VcdWriter vcd(path_);
    vcd.watch(w);
    vcd.start();
    vcd.finish();
    // ~VcdWriter calls finish() again on an already-closed stream.
  }
  EXPECT_NE(read_file(path_).find("$enddefinitions"), std::string::npos);
}

TEST_F(TraceTest, DestructAfterExceptionMidSetupIsSafe) {
  Simulation sim;
  Word d(sim, "d");
  Wire w(sim, "w");
  {
    VcdWriter vcd(path_);
    vcd.watch(w);
    EXPECT_THROW(vcd.watch(d, 0), ConfigError);
    // Writer destructs with the header never written; finish() in the
    // destructor must cope with the half-configured state.
  }
  SUCCEED();
}

TEST_F(TraceTest, StartAfterFinishIsANoop) {
  Simulation sim;
  Wire w(sim, "w");
  VcdWriter vcd(path_);
  vcd.watch(w);
  vcd.finish();
  vcd.start();  // stream already closed: must not write to a dead file
  EXPECT_TRUE(read_file(path_).empty());
}

TEST_F(TraceTest, TimeZeroChangesEmitSingleTimestamp) {
  Simulation sim;
  Wire a(sim, "a");
  Wire b(sim, "b");
  VcdWriter vcd(path_);
  vcd.watch(a);
  vcd.watch(b);
  vcd.start();
  sim.sched().at(0, [&] {
    a.set(true);
    b.set(true);
  });
  sim.run();
  vcd.finish();
  const std::string text = read_file(path_);
  std::size_t zero_marks = 0;
  for (std::size_t pos = 0; (pos = text.find("#0\n", pos)) != std::string::npos;
       pos += 3) {
    ++zero_marks;
  }
  EXPECT_EQ(zero_marks, 1u);  // one `#0`, not one per change
}

}  // namespace
}  // namespace mts::sim
