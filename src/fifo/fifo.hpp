// Umbrella header for the mixed-timing FIFO library (the paper's core
// contribution).
#pragma once

#include "fifo/async_async_fifo.hpp"  // IWYU pragma: export
#include "fifo/async_sync_fifo.hpp"   // IWYU pragma: export
#include "fifo/async_timing.hpp"      // IWYU pragma: export
#include "fifo/cell_parts.hpp"        // IWYU pragma: export
#include "fifo/config.hpp"            // IWYU pragma: export
#include "fifo/detectors.hpp"         // IWYU pragma: export
#include "fifo/interface_sides.hpp"   // IWYU pragma: export
#include "fifo/mixed_clock_fifo.hpp"  // IWYU pragma: export
#include "fifo/sync_async_fifo.hpp"   // IWYU pragma: export
