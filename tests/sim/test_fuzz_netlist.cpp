// Kernel fuzz test: random combinational DAGs of gates are built, driven
// with random input vectors, and the settled simulation outputs are checked
// against a direct software evaluation of the same DAG. This exercises the
// event kernel, inertial-delay semantics and listener plumbing far beyond
// the hand-written cases.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "gates/combinational.hpp"
#include "gates/netlist.hpp"
#include "sim/simulation.hpp"

namespace mts {
namespace {

struct Node {
  gates::GateOp op;
  std::vector<std::size_t> inputs;  // indices into the value array
  sim::Wire* wire = nullptr;
};

class NetlistFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistFuzz, RandomDagSettlesToReferenceValues) {
  std::mt19937_64 rng(GetParam());
  sim::Simulation sim(GetParam());
  gates::Netlist nl(sim, "fuzz");
  const gates::DelayModel dm = gates::DelayModel::hp06();

  constexpr std::size_t kPrimary = 6;
  constexpr std::size_t kGates = 40;
  const gates::GateOp ops[] = {gates::GateOp::kNot,  gates::GateOp::kAnd,
                               gates::GateOp::kOr,   gates::GateOp::kNand,
                               gates::GateOp::kNor,  gates::GateOp::kXor,
                               gates::GateOp::kAndNotLast,
                               gates::GateOp::kOrNotLast};

  // Primary inputs.
  std::vector<sim::Wire*> primaries;
  std::vector<Node> nodes;
  for (std::size_t i = 0; i < kPrimary; ++i) {
    primaries.push_back(&nl.wire("in" + std::to_string(i)));
  }

  // Random gates, each reading earlier signals only (a DAG by construction).
  for (std::size_t g = 0; g < kGates; ++g) {
    Node node;
    node.op = ops[rng() % std::size(ops)];
    const std::size_t fanin =
        (node.op == gates::GateOp::kNot) ? 1 : 2 + rng() % 2;
    const std::size_t available = kPrimary + g;
    std::vector<sim::Wire*> in_wires;
    for (std::size_t i = 0; i < fanin; ++i) {
      const std::size_t pick = rng() % available;
      node.inputs.push_back(pick);
      in_wires.push_back(pick < kPrimary ? primaries[pick]
                                         : nodes[pick - kPrimary].wire);
    }
    node.wire =
        &gates::make_gate(nl, "g" + std::to_string(g), node.op, in_wires, dm);
    nodes.push_back(node);
  }

  // Drive random vectors; after settling, every node must equal the
  // reference evaluation.
  for (int trial = 0; trial < 24; ++trial) {
    std::vector<bool> values(kPrimary + kGates);
    for (std::size_t i = 0; i < kPrimary; ++i) {
      values[i] = (rng() & 1u) != 0;
      primaries[i]->set(values[i]);
    }
    sim.run_until(sim.now() + 200'000);  // deep DAG: generous settle

    for (std::size_t g = 0; g < kGates; ++g) {
      std::vector<bool> ins;
      for (std::size_t idx : nodes[g].inputs) ins.push_back(values[idx]);
      values[kPrimary + g] = gates::gate_func(nodes[g].op)(ins);
      EXPECT_EQ(nodes[g].wire->read(), values[kPrimary + g])
          << "seed " << GetParam() << " trial " << trial << " gate " << g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace mts
