#include "metrics/waveform.hpp"

#include <gtest/gtest.h>

#include "sync/clock.hpp"

namespace mts::metrics {
namespace {

TEST(AsciiWave, CapturesClockPattern) {
  sim::Simulation sim;
  sync::Clock clk(sim, "clk", {1000, 0, 0.5, 0});
  AsciiWave wave(sim, 100, 250, 8);  // samples at 100,350,...,1850
  wave.watch("clk", clk.out());
  wave.arm();
  sim.run_until(2000);

  // Edges at 0(+), 500(-), 1000(+), 1500(-): samples land H H L L H H L L.
  const auto& h = wave.history("clk");
  ASSERT_EQ(h.size(), 8u);
  const std::vector<bool> want{true, true, false, false, true, true, false,
                               false};
  EXPECT_EQ(h, want);
  const std::string text = wave.render();
  EXPECT_NE(text.find("clk"), std::string::npos);
  EXPECT_NE(text.find("##__##__"), std::string::npos);
}

TEST(AsciiWave, MultipleWiresRenderOnePerLine) {
  sim::Simulation sim;
  sim::Wire a(sim, "a", true);
  sim::Wire b(sim, "b", false);
  AsciiWave wave(sim, 0, 10, 4);
  wave.watch("a", a);
  wave.watch("b", b);
  wave.arm();
  sim.run_until(100);
  const std::string text = wave.render();
  EXPECT_NE(text.find("####"), std::string::npos);
  EXPECT_NE(text.find("____"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(AsciiWave, ConfigErrors) {
  sim::Simulation sim;
  sim::Wire a(sim, "a");
  EXPECT_THROW(AsciiWave(sim, 0, 0, 4), ConfigError);
  EXPECT_THROW(AsciiWave(sim, 0, 10, 0), ConfigError);
  AsciiWave wave(sim, 0, 10, 4);
  wave.arm();
  EXPECT_THROW(wave.watch("a", a), ConfigError);
}

TEST(AsciiWave, UnknownLabelGivesEmptyHistory) {
  sim::Simulation sim;
  AsciiWave wave(sim, 0, 10, 1);
  EXPECT_TRUE(wave.history("nope").empty());
}

}  // namespace
}  // namespace mts::metrics
