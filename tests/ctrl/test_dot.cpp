#include "ctrl/dot.hpp"

#include <gtest/gtest.h>

#include "ctrl/specs.hpp"

namespace mts::ctrl {
namespace {

TEST(Dot, BurstModeExportContainsStatesAndLabels) {
  const std::string dot = to_dot(opt_spec());
  EXPECT_NE(dot.find("digraph \"OPT\""), std::string::npos);
  for (const char* state : {"S0", "S1", "S2", "S3"}) {
    EXPECT_NE(dot.find(state), std::string::npos) << state;
  }
  // The Fig. 10a transitions.
  EXPECT_NE(dot.find("we1- / ptok+"), std::string::npos);
  EXPECT_NE(dot.find("we+ / ptok-"), std::string::npos);
  // Empty bursts render as ".".
  EXPECT_NE(dot.find("we1+ / ."), std::string::npos);
}

TEST(Dot, PetriExportMarksInitialPlacesAndInputTransitions) {
  const std::string dot = to_dot(dv_as_net());
  EXPECT_NE(dot.find("digraph \"DV_as\""), std::string::npos);
  // Initially marked places use a double circle.
  EXPECT_NE(dot.find("p0 [shape=doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("p8 [shape=doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("p3 [shape=circle"), std::string::npos);
  // Input transitions are shaded, output transitions are not.
  EXPECT_NE(dot.find("label=\"we+\", style=filled"), std::string::npos);
  EXPECT_NE(dot.find("label=\"e_i-\"];"), std::string::npos);
}

TEST(Dot, PetriExportListsAllArcs) {
  const PetriNet& net = dv_linear_net();
  const std::string dot = to_dot(net);
  std::size_t arc_count = 0;
  for (std::size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1)) {
    ++arc_count;
  }
  std::size_t expected = 0;
  for (const PnTransition& t : net.transitions) {
    expected += t.pre.size() + t.post.size();
  }
  EXPECT_EQ(arc_count, expected);
}

TEST(Dot, OutputIsParsableShape) {
  // Structural sanity: balanced braces, one digraph, newline-terminated.
  for (const std::string dot : {to_dot(opt_spec()), to_dot(dv_as_net())}) {
    EXPECT_EQ(dot.front(), 'd');
    EXPECT_EQ(dot.back(), '\n');
    EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
              std::count(dot.begin(), dot.end(), '}'));
  }
}

}  // namespace
}  // namespace mts::ctrl
