// Named workload registry for campaignd.
//
// A distributed campaign cannot ship a std::function across processes, so
// jobs name their run body: the coordinator sends `{"workload": "...",
// "params": {...}}` and each worker instantiates the same registered
// factory. A Workload owns the per-worker state a Campaign::Body would
// capture -- most importantly the coverage sink, which campaignd resets
// before every run so each run's coverage DELTA can travel to the
// coordinator and fold additively (per-run deltas sum to exactly the
// worker-lifetime accumulation the in-process engine merges).
//
// Built-ins:
//   fifo_soak   the representative mixed-clock FIFO soak (the same shape
//               as bench/campaign_workload.hpp): capacity cycles {4,8,16}
//               with the config index, traffic rates from the per-run
//               seed, scoreboard + monitors, standard coverage bins.
//               params: {"cycles": N (default 40), "coverage": bool}
//   chaos_soak  fifo_soak plus deterministic failure injection for the
//               robustness suites. params add: {"fail_indices": [i, ...]
//               runs whose index is listed throw SimulationError;
//               "flaky": true makes them fail on attempt 1 only}
//
// register_workload() lets tests and tools add their own without touching
// this file. Unknown names or malformed params throw json::ProtocolError.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "campaignd/json.hpp"
#include "metrics/coverage.hpp"
#include "sim/campaign.hpp"

namespace mts::campaignd {

/// One worker's instantiation of a named workload: the run body plus the
/// per-run sinks it populates. Lives for the worker's lifetime; begin_run()
/// re-creates the sinks so each run leaves an isolated delta.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Called before every run (and before the body constructs components):
  /// re-creates per-run sinks so coverage() reflects only the coming run.
  virtual void begin_run() {}

  /// The run body. Same contract as sim::Campaign::Body.
  virtual void run(sim::CampaignContext& ctx) = 0;

  /// The finished run's coverage delta; nullptr when the workload records
  /// no coverage.
  virtual const metrics::Coverage* coverage() const { return nullptr; }

  /// Adapts this workload to the engine's body type (captures `this`).
  sim::Campaign::Body body() {
    return [this](sim::CampaignContext& ctx) { run(ctx); };
  }
};

using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(const json::Value& params)>;

/// Registers (or replaces) a named workload factory.
void register_workload(const std::string& name, WorkloadFactory factory);

/// Instantiates a registered workload; throws json::ProtocolError on an
/// unknown name (listing the known ones) or malformed params.
std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const json::Value& params);

/// Registered names, sorted.
std::vector<std::string> workload_names();

}  // namespace mts::campaignd
