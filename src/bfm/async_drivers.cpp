#include "bfm/async_drivers.hpp"

#include <utility>

#include "sim/fault.hpp"
#include "sim/observe.hpp"

namespace mts::bfm {

AsyncPutDriver::AsyncPutDriver(sim::Simulation& sim, std::string name,
                               sim::Wire& put_req, sim::Wire& put_ack,
                               sim::Word& put_data, const gates::DelayModel& dm,
                               sim::Time gap, std::uint64_t value_mask,
                               Scoreboard* sb)
    : sim_(sim),
      name_(std::move(name)),
      put_req_(put_req),
      put_data_(put_data),
      dm_(dm),
      gap_(gap),
      value_mask_(value_mask),
      sb_(sb) {
  if (sim::Observability* o = sim.observability();
      o != nullptr && o->profiler != nullptr) {
    prof_ = o->profiler;
    site_ = prof_->site("driver " + name_);
  }
  put_ack.on_change([this](bool, bool now) {
    if (now) {
      // Enqueue complete: the data item is latched in a cell.
      last_ack_ = sim_.now();
      ++completed_;
      // 4-phase reset: req- follows ack+.
      put_req_.write(false, dm_.gate(1), sim::DelayKind::kTransport);
    } else if (enabled_ && gap_ != kManual) {
      // ack-: the channel is idle again; issue the next item after gap.
      sim_.sched().after(gap_ + 1, [this] { issue(); });
    }
  });
  if (gap != kManual) {
    sim.sched().after(gap_ + 1, [this] { issue(); });
  }
}

void AsyncPutDriver::issue_one() { issue(); }

void AsyncPutDriver::issue() {
  if (!enabled_) return;
  // Events scheduled below (data/req writes and their cascades) are charged
  // to this driver's profiler site; no-op when dormant.
  sim::ProfileScope attribution(prof_, site_);
  const std::uint64_t value = next_value_ & value_mask_;
  // Fault injection: a bundling fault lags the data behind its request,
  // modelling a matched-delay line whose datapath slowed more under PVT
  // variation than the delay line compensating it. Past
  // fifo::async_put_data_margin() the receiving latch captures stale data.
  sim::Time lag = 0;
  if (sim::FaultPlan* fp = sim_.faults()) {
    if (const sim::BundlingFault* bf = fp->bundling(name_)) {
      lag = bf->data_lag;
      if (lag > 0) fp->note("bundling.lag");
    }
  }
  if (lag == 0) {
    put_data_.set(value);
  } else {
    put_data_.write(value, lag, sim::DelayKind::kTransport);
  }
  // Record the expectation at issue time: with a single sender, enqueue
  // order equals issue order, and a fast receiver may observe the item
  // before the acknowledgment propagates back to us.
  if (sb_ != nullptr) sb_->push(value);
  ++next_value_;
  // Bundling: req rises one gate after the data is stable.
  put_req_.write(true, dm_.gate(1), sim::DelayKind::kTransport);
}

AsyncGetDriver::AsyncGetDriver(sim::Simulation& sim, std::string name,
                               sim::Wire& get_req, sim::Wire& get_ack,
                               sim::Word& get_data, const gates::DelayModel& dm,
                               sim::Time gap, Scoreboard* sb)
    : sim_(sim), get_req_(get_req), get_data_(get_data), dm_(dm), gap_(gap),
      sb_(sb) {
  (void)name;
  get_ack.on_change([this](bool, bool now) {
    if (now) {
      last_ack_ = sim_.now();
      ++completed_;
      if (sb_ != nullptr) sb_->pop_check(get_data_.read());
      get_req_.write(false, dm_.gate(1), sim::DelayKind::kTransport);
    } else if (enabled_) {
      sim_.sched().after(gap_ + 1, [this] { issue(); });
    }
  });
  sim.sched().after(gap_ + 1, [this] { issue(); });
}

void AsyncGetDriver::issue() {
  if (!enabled_) return;
  get_req_.write(true, dm_.gate(1), sim::DelayKind::kTransport);
}

AsyncAckSink::AsyncAckSink(sim::Simulation& sim, std::string name,
                           sim::Wire& req, sim::Wire& ack, sim::Word& data,
                           const gates::DelayModel& dm, sim::Time gap,
                           Scoreboard* sb)
    : sim_(sim), req_(req), ack_(ack), data_(data), dm_(dm), gap_(gap),
      sb_(sb) {
  (void)name;
  req_.on_change([this](bool, bool now) {
    if (now) {
      last_req_ = sim_.now();
      if (enabled_) {
        accept();
      } else {
        pending_ = true;  // withhold ack until re-enabled (back-pressure)
      }
    } else {
      // req-: complete the 4-phase reset.
      ack_.write(false, dm_.gate(1), sim::DelayKind::kTransport);
    }
  });
}

void AsyncAckSink::set_enabled(bool on) {
  enabled_ = on;
  if (enabled_ && pending_) {
    pending_ = false;
    accept();
  }
}

void AsyncAckSink::accept() {
  // The bundling convention guarantees data is stable one matched delay
  // before req+; sample it now, then acknowledge after the consumer gap.
  if (sb_ != nullptr) sb_->pop_check(data_.read());
  ++completed_;
  ack_.write(true, gap_ + dm_.gate(1), sim::DelayKind::kTransport);
}

}  // namespace mts::bfm
