
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctrl/burst_mode.cpp" "src/ctrl/CMakeFiles/mts_ctrl.dir/burst_mode.cpp.o" "gcc" "src/ctrl/CMakeFiles/mts_ctrl.dir/burst_mode.cpp.o.d"
  "/root/repo/src/ctrl/dot.cpp" "src/ctrl/CMakeFiles/mts_ctrl.dir/dot.cpp.o" "gcc" "src/ctrl/CMakeFiles/mts_ctrl.dir/dot.cpp.o.d"
  "/root/repo/src/ctrl/petri.cpp" "src/ctrl/CMakeFiles/mts_ctrl.dir/petri.cpp.o" "gcc" "src/ctrl/CMakeFiles/mts_ctrl.dir/petri.cpp.o.d"
  "/root/repo/src/ctrl/reachability.cpp" "src/ctrl/CMakeFiles/mts_ctrl.dir/reachability.cpp.o" "gcc" "src/ctrl/CMakeFiles/mts_ctrl.dir/reachability.cpp.o.d"
  "/root/repo/src/ctrl/specs.cpp" "src/ctrl/CMakeFiles/mts_ctrl.dir/specs.cpp.o" "gcc" "src/ctrl/CMakeFiles/mts_ctrl.dir/specs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mts_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
