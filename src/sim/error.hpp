// Exception types and the assertion helper used across the library.
//
// Policy (per C++ Core Guidelines E.2/E.3): exceptions signal errors that the
// immediate caller cannot repair -- bad configuration, protocol violations
// detected by checkers, and broken internal invariants. Hot-path code uses
// MTS_ASSERT, which is active in all build types because simulation
// correctness is the product.
#pragma once

#include <stdexcept>
#include <string>

namespace mts {

/// Invalid user-supplied configuration (capacity 0, period 0, ...).
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A simulated circuit violated a protocol or structural rule
/// (multi-driver bus conflict, combinational oscillation, ...).
class SimulationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An internal invariant of the library failed. Always a library bug.
class AssertionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void assertion_failed(const char* expr, const char* file, int line,
                                   const std::string& msg);
}  // namespace detail

}  // namespace mts

/// Always-on invariant check; throws mts::AssertionError on failure.
#define MTS_ASSERT(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::mts::detail::assertion_failed(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                      \
  } while (false)
