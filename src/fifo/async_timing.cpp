#include "fifo/async_timing.hpp"

#include "gates/combinational.hpp"

namespace mts::fifo {

sim::Time async_put_cycle_estimate(const FifoConfig& cfg) {
  const gates::DelayModel& dm = cfg.dm;
  const unsigned n = cfg.capacity;

  // One direction of the handshake (req edge to ack edge at the sender):
  sim::Time half = 0;
  half += dm.broadcast(n, 1);                      // put_req to every cell
  half += dm.celement(3);                          // asymmetric C-element
  half += dm.broadcast(1, cfg.width);              // we load (latch enable)
  half += gates::tree_depth(n, 2) * dm.gate(2);    // acknowledge OR tree
  half += dm.gate(2, 4);                           // global ack wire/buffer
  half += dm.gate(1);                              // environment reaction

  return 2 * half;  // set phase + reset phase
}

double async_put_mops_estimate(const FifoConfig& cfg) {
  const sim::Time cycle = async_put_cycle_estimate(cfg);
  return cycle == 0 ? 0.0 : 1e6 / static_cast<double>(cycle);
}

}  // namespace mts::fifo
