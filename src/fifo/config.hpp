// Configuration shared by all four FIFO designs.
#pragma once

#include "gates/delay_model.hpp"
#include "sync/synchronizer.hpp"

namespace mts::fifo {

/// Which empty detector the synchronous get side uses (Section 3.2).
enum class EmptyDetectorKind {
  /// The paper's bi-modal detector: ne ("0 or 1 items") AND oe ("0 items",
  /// OR-gated with en_get). Correct: no underflow, no deadlock.
  kBimodal,
  /// Ablation: ne only. Underflow-safe but deadlocks with one item left.
  kNeOnly,
  /// Ablation: oe only (the naive "true empty"). Deadlock-free but the
  /// synchronizer delay lets the receiver read an empty cell (underflow).
  kOeOnly,
};

/// Which full detector the synchronous put side uses.
enum class FullDetectorKind {
  /// The paper's anticipating detector: full when no two consecutive cells
  /// are empty (i.e. at most one empty cell).
  kAnticipating,
  /// Ablation: exact full (no empty cells); the synchronizer delay lets the
  /// sender overwrite a full cell (overflow).
  kExact,
};

/// Per-cell data-validity controller for the mixed-clock design.
enum class DvKind {
  /// The paper's SR latch: a cell is declared empty the moment its get
  /// *starts* (e_i set asynchronously at re+, Section 3.1). Correct in the
  /// paper's operating envelope, but at the full boundary with a reader
  /// clocked much slower than the writer, the margin cell can be granted
  /// back to the put side while its read is still completing (see
  /// EXPERIMENTS.md, "full-boundary hazard").
  kSrLatch,
  /// Extension: the serialized DV net (same one the sync-async design
  /// needs): a cell is declared empty only when its get *completes* (e_i at
  /// re-) and full only when its put completes (f_i at we-). Closes the
  /// slow-reader hazard at the cost of one cycle of detector anticipation.
  kConservative,
};

/// FIFO controllers vs relay-station controllers (Section 5).
enum class ControllerKind {
  /// On-demand: put when req_put & !full, get when req_get & !empty.
  kFifo,
  /// Latency-insensitive flow: put every cycle unless full (req_put is the
  /// packet validity bit), get every cycle unless empty or stopIn.
  kRelayStation,
};

// Stable lowercase names for configuration axes, shared by reports,
// campaign JSON and the builder's design exports.
inline const char* to_string(EmptyDetectorKind k) noexcept {
  switch (k) {
    case EmptyDetectorKind::kBimodal: return "bimodal";
    case EmptyDetectorKind::kNeOnly: return "ne_only";
    case EmptyDetectorKind::kOeOnly: return "oe_only";
  }
  return "?";
}

inline const char* to_string(FullDetectorKind k) noexcept {
  switch (k) {
    case FullDetectorKind::kAnticipating: return "anticipating";
    case FullDetectorKind::kExact: return "exact";
  }
  return "?";
}

inline const char* to_string(DvKind k) noexcept {
  switch (k) {
    case DvKind::kSrLatch: return "sr_latch";
    case DvKind::kConservative: return "conservative";
  }
  return "?";
}

inline const char* to_string(ControllerKind k) noexcept {
  switch (k) {
    case ControllerKind::kFifo: return "fifo";
    case ControllerKind::kRelayStation: return "relay_station";
  }
  return "?";
}

struct FifoConfig {
  unsigned capacity = 8;  ///< number of cells (paper: 4 / 8 / 16)
  unsigned width = 8;     ///< data bits (paper: 8 / 16)
  gates::DelayModel dm = gates::DelayModel::hp06();
  sync::SyncConfig sync{};  ///< synchronizer depth & metastability mode
  EmptyDetectorKind empty_kind = EmptyDetectorKind::kBimodal;
  FullDetectorKind full_kind = FullDetectorKind::kAnticipating;
  ControllerKind controller = ControllerKind::kFifo;
  DvKind dv_kind = DvKind::kSrLatch;  ///< mixed-clock cells only

  /// Throws ConfigError on invalid values (capacity < 2, width 0 or > 64).
  void validate() const;
};

}  // namespace mts::fifo
