// Randomized configuration campaign: many FIFO configurations drawn from a
// seeded generator (capacity, width, clock ratio, traffic rates, sync
// depth), each run briefly and held to the core invariants. Complements
// the hand-picked parameter sweeps with breadth.
//
// Every trial's full parameter set (including its per-trial seed) is in the
// SCOPED_TRACE, so a failure message is its own repro recipe: rerun the
// printed gtest filter -- the campaign generators are seeded with the
// constants below and are fully deterministic.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <vector>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "lip/chain.hpp"
#include "metrics/coverage.hpp"
#include "sim/campaign.hpp"
#include "sync/clock.hpp"

namespace mts {
namespace {

using sim::Time;

/// Worker count for the parallelized campaigns: MTS_CAMPAIGN_JOBS if set
/// (the determinism suite pins it), otherwise 4 -- enough to exercise the
/// pool even on small CI hosts, cheap enough to oversubscribe one core.
unsigned campaign_jobs() {
  if (const char* e = std::getenv("MTS_CAMPAIGN_JOBS")) {
    const unsigned long v = std::strtoul(e, nullptr, 10);
    if (v > 0 && v < 256) return static_cast<unsigned>(v);
  }
  return 4;
}

struct FuzzCase {
  unsigned capacity;
  unsigned width;
  double ratio;
  double put_rate;
  double get_rate;
  unsigned depth;
  std::uint64_t seed;
};

FuzzCase draw(std::mt19937_64& rng) {
  const unsigned caps[] = {2, 3, 4, 5, 6, 8, 12, 16, 24};
  const unsigned widths[] = {1, 4, 8, 13, 16, 32, 64};
  std::uniform_real_distribution<double> ratio_dist(0.9, 2.6);
  std::uniform_real_distribution<double> rate_dist(0.2, 1.0);
  FuzzCase c;
  c.capacity = caps[rng() % std::size(caps)];
  c.width = widths[rng() % std::size(widths)];
  c.ratio = ratio_dist(rng);
  c.put_rate = rate_dist(rng);
  c.get_rate = rate_dist(rng);
  // Deeper synchronizers need wider anticipation windows, which need
  // capacity headroom (FifoConfig::validate enforces this).
  c.depth = 2 + static_cast<unsigned>(rng() % 2);  // 2 or 3
  if (c.capacity <= c.depth) c.depth = 2;
  c.seed = rng();
  return c;
}

std::uint64_t mask_of(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

TEST(FuzzCampaign, FortyRandomMixedClockConfigsHoldInvariants) {
  std::mt19937_64 rng(20260707);
  for (int trial = 0; trial < 40; ++trial) {
    const FuzzCase c = draw(rng);
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": cap=" << c.capacity
                 << " w=" << c.width << " ratio=" << c.ratio
                 << " p=" << c.put_rate << " g=" << c.get_rate
                 << " depth=" << c.depth << " seed=" << c.seed);

    fifo::FifoConfig cfg;
    cfg.capacity = c.capacity;
    cfg.width = c.width;
    cfg.sync.depth = c.depth;

    sim::Simulation sim(c.seed);
    const Time pp = fifo::SyncPutSide::min_period(cfg) * 5 / 4;
    const Time gp = static_cast<Time>(
        c.ratio * static_cast<double>(fifo::SyncGetSide::min_period(cfg)) *
        1.25);
    sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
    sync::Clock cg(sim, "cg", {gp, 4 * pp + (c.seed % gp), 0.5, 0});
    fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
    bfm::Scoreboard sb(sim, "sb");
    bfm::PutMonitor pm(sim, cp.out(), dut.en_put(), dut.req_put(),
                       dut.data_put(), sb);
    bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
    bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                           dut.full(), cfg.dm, {c.put_rate, 1},
                           mask_of(c.width));
    bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                           {c.get_rate, 1});

    sim.run_until(4 * pp + 250 * pp);
    EXPECT_EQ(sb.errors(), 0u);
    EXPECT_EQ(dut.overflow_count(), 0u);
    EXPECT_EQ(dut.underflow_count(), 0u);
    EXPECT_EQ(dut.put_domain().violations(), 0u);
    EXPECT_EQ(dut.get_domain().violations(), 0u);
    // Conservation with at most one get in flight at the snapshot instant
    // (its cell already reads empty but the pop lands at the next edge).
    EXPECT_GE(sb.pushed(), sb.popped() + dut.occupancy());
    EXPECT_LE(sb.pushed(), sb.popped() + dut.occupancy() + 1);
  }
}

struct RelayFuzzCase {
  unsigned capacity;
  unsigned left;   // SRS/ARS chain length on the producer side
  unsigned right;  // SRS chain length on the consumer side
  double ratio;
  double valid_rate;
  double stall_rate;  // the sink's random stop duty cycle
  bool pause;         // pause the source mid-run so the link drains
  std::uint64_t seed;
};

RelayFuzzCase draw_relay(std::mt19937_64& rng) {
  const unsigned caps[] = {4, 6, 8};
  std::uniform_real_distribution<double> ratio_dist(0.9, 1.6);
  std::uniform_real_distribution<double> valid_dist(0.4, 1.0);
  std::uniform_real_distribution<double> stall_dist(0.05, 0.7);
  RelayFuzzCase c;
  c.capacity = caps[rng() % std::size(caps)];
  c.left = static_cast<unsigned>(rng() % 5);
  c.right = static_cast<unsigned>(rng() % 5);
  c.ratio = ratio_dist(rng);
  c.valid_rate = valid_dist(rng);
  c.stall_rate = stall_dist(rng);
  c.pause = (rng() & 1) != 0;
  c.seed = rng();
  return c;
}

// One relay-chain fuzz trial: trials [0, kMcTrials) drive the mixed-clock
// link (Fig. 11a), the rest the async-sync link (Fig. 14). Coverage bins
// land in the caller's per-worker Coverage slot; invariants are recorded
// as RunResult scalars and asserted by the caller after the campaign
// joins (gtest EXPECTs are not thread-safe inside pool bodies).
constexpr std::size_t kMcTrials = 12;
constexpr std::size_t kAsTrials = 8;

void run_relay_trial(sim::CampaignContext& ctx, const RelayFuzzCase& c,
                     metrics::Coverage& cov) {
  fifo::FifoConfig cfg;
  cfg.capacity = c.capacity;
  cfg.width = 8;
  cfg.controller = fifo::ControllerKind::kRelayStation;

  // The trial's stochastic identity is its pre-drawn seed, not the
  // campaign-derived one: reseeding keeps every trial bit-identical to the
  // historical sequential loop while still reusing the worker's arenas.
  sim::Simulation& sim = ctx.sim();
  sim.reset(c.seed);

  if (ctx.spec().index < kMcTrials) {
    const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
    const Time gp = static_cast<Time>(
        c.ratio * 2.0 * static_cast<double>(fifo::SyncGetSide::min_period(cfg)));
    sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
    sync::Clock cg(sim, "cg", {gp, 4 * pp + (c.seed % gp), 0.5, 0});
    lip::MixedClockLink link(sim, "link", cfg, cp.out(), cg.out(), c.left,
                             c.right);
    bfm::Scoreboard sb(sim, "sb");
    bfm::RsSource src(sim, "src", cp.out(), link.data_in(), link.valid_in(),
                      link.stop_out(), cfg.dm, c.valid_rate, 0xFF, sb);
    bfm::RsSink sink(sim, "sink", cg.out(), link.data_out(), link.valid_out(),
                     link.stop_in(), cfg.dm, c.stall_rate, sb);
    metrics::cover_stall_valid(cov, "mc", cg.out(), link.valid_out(),
                               link.stop_in());
    metrics::cover_mixed_clock_fifo(cov, "mcrs", link.mcrs().fifo());
    if (c.pause) {
      sim.sched().at(4 * pp + 500 * pp, [&src] { src.set_enabled(false); });
      sim.sched().at(4 * pp + 700 * pp, [&src] { src.set_enabled(true); });
    }
    sim.run_until(4 * pp + 900 * pp);
    ctx.set("errors", static_cast<double>(sb.errors()));
    ctx.set("overflow", static_cast<double>(link.mcrs().fifo().overflow_count()));
    ctx.set("underflow",
            static_cast<double>(link.mcrs().fifo().underflow_count()));
    ctx.set("received", static_cast<double>(sink.received_valid()));
  } else {
    const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
    sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
    lip::AsyncSyncLink link(sim, "link", cfg, cg.out(), c.left % 4, c.right);
    bfm::Scoreboard sb(sim, "sb");
    // The put gap maps the valid rate onto the 4-phase handshake: rate 1.0
    // is back-to-back, lower rates open gaps so the link also drains (oe).
    const Time gap =
        static_cast<Time>((1.0 - c.valid_rate) * 4.0 * static_cast<double>(gp));
    bfm::AsyncPutDriver put(sim, "put", link.put_req(), link.put_ack(),
                            link.put_data(), cfg.dm, gap, 0xFF, &sb);
    bfm::RsSink sink(sim, "sink", cg.out(), link.data_out(), link.valid_out(),
                     link.stop_in(), cfg.dm, c.stall_rate, sb);
    metrics::cover_stall_valid(cov, "as", cg.out(), link.valid_out(),
                               link.stop_in());
    metrics::cover_async_sync_fifo(cov, "asrs", link.asrs().fifo());
    sim.run_until(4 * gp + 900 * gp);
    ctx.set("errors", static_cast<double>(sb.errors()));
    ctx.set("overflow", 0.0);
    ctx.set("underflow", 0.0);
    ctx.set("received", static_cast<double>(sink.received_valid()));
  }
}

TEST(FuzzCampaign, RelayChainTopologiesHoldInvariantsAndCoverEveryBin) {
  // Fig. 11a / Fig. 14 topology mixes: SRS chains of random length on both
  // sides of the MCRS, and ARS chains feeding the ASRS, under random valid
  // rates and random stop duty cycles, fanned across a sim::Campaign
  // worker pool. The trials are pre-drawn from the historical RNG stream
  // on this thread, so the case list is byte-for-byte the old sequential
  // one regardless of worker count. Coverage aggregates across trials into
  // per-worker shards merged here (shared bin prefixes); the campaign as a
  // whole must reach every detector transition, both token-ring wraps and
  // all four stall x valid combinations on both link flavours.
  std::mt19937_64 rng(20260806);
  std::vector<RelayFuzzCase> cases;
  for (std::size_t i = 0; i < kMcTrials + kAsTrials; ++i) {
    cases.push_back(draw_relay(rng));
  }

  sim::CampaignOptions opt;
  opt.workers = campaign_jobs();
  opt.seed = 20260806;
  sim::Campaign campaign(cases.size(), 1, opt);
  std::vector<metrics::Coverage> covs(campaign.workers());
  campaign.run([&](sim::CampaignContext& ctx) {
    run_relay_trial(ctx, cases[ctx.spec().index], covs[ctx.worker()]);
  });

  metrics::Coverage cov("relay-campaign");
  for (const metrics::Coverage& shard : covs) cov.merge(shard);

  ASSERT_EQ(campaign.failed(), 0u);
  for (const sim::RunResult& r : campaign.results()) {
    const RelayFuzzCase& c = cases[r.index];
    const bool mc = r.index < kMcTrials;
    SCOPED_TRACE(::testing::Message()
                 << (mc ? "mc" : "as") << " trial " << r.index
                 << ": cap=" << c.capacity << " left=" << c.left
                 << " right=" << c.right << " ratio=" << c.ratio
                 << " v=" << c.valid_rate << " st=" << c.stall_rate
                 << " pause=" << c.pause << " seed=" << c.seed);
    EXPECT_EQ(r.scalars.at("errors"), 0.0);
    EXPECT_EQ(r.scalars.at("overflow"), 0.0);
    EXPECT_EQ(r.scalars.at("underflow"), 0.0);
    EXPECT_GT(r.scalars.at("received"), mc ? 50.0 : 30.0);
  }

  EXPECT_TRUE(cov.all_hit()) << cov.summary();
  // The rings really cycled, on both link flavours.
  EXPECT_GT(cov.hits("mcrs.ptok.wrap"), 10u);
  EXPECT_GT(cov.hits("asrs.ptok.wrap"), 10u);
  EXPECT_GT(cov.hits("mc.sv.stall"), 10u);
  EXPECT_GT(cov.hits("as.sv.stall"), 10u);
}

TEST(FuzzCampaign, TwentyRandomAsyncSyncConfigsHoldInvariants) {
  std::mt19937_64 rng(19700101);
  for (int trial = 0; trial < 20; ++trial) {
    const FuzzCase c = draw(rng);
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": cap=" << c.capacity
                 << " w=" << c.width << " g=" << c.get_rate
                 << " seed=" << c.seed);

    fifo::FifoConfig cfg;
    cfg.capacity = c.capacity;
    cfg.width = c.width;
    cfg.sync.depth = c.depth;

    sim::Simulation sim(c.seed);
    const Time gp = fifo::SyncGetSide::min_period(cfg) * 5 / 4;
    sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
    fifo::AsyncSyncFifo dut(sim, "dut", cfg, cg.out());
    bfm::Scoreboard sb(sim, "sb");
    const Time gap =
        static_cast<Time>((1.0 - c.put_rate) * 2.0 * static_cast<double>(gp));
    bfm::AsyncPutDriver put(sim, "put", dut.put_req(), dut.put_ack(),
                            dut.put_data(), cfg.dm, gap, mask_of(c.width),
                            &sb);
    bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                           {c.get_rate, 1});
    bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);

    sim.run_until(4 * gp + 250 * gp);
    EXPECT_EQ(sb.errors(), 0u);
    EXPECT_EQ(dut.overflow_count(), 0u);
    EXPECT_EQ(dut.underflow_count(), 0u);
    EXPECT_EQ(dut.get_domain().violations(), 0u);
  }
}

}  // namespace
}  // namespace mts
