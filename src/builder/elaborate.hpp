// Elaboration: lowering a validated builder::Design onto a running
// sim::Simulation.
//
// elaborate() calls Design::check(), then constructs, in a deterministic
// order that campaigns and golden-waveform tests rely on:
//
//   1. one sync::Clock per declared domain, in declaration order;
//   2. every edge's mixed-timing machinery, in edge declaration order --
//      the CDC primitive first, then relay chains, then gearboxes;
//   3. every node's generated components (traffic drivers, repeater
//      buffers, routers, bus fabrics), in node declaration order.
//
// Elaboration itself never draws from the simulation RNG and schedules no
// events of its own, so an elaborated design is bit-identical to the same
// components hand-wired in the same order. Observability, monitor hubs and
// fault plans armed on the Simulation *before* elaborate() apply to every
// inserted primitive automatically, and trace streams are linked across
// repeaters so one transaction id rides a packet across multiple edges.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bfm/bfm.hpp"
#include "builder/bus.hpp"
#include "builder/design.hpp"
#include "builder/gearbox.hpp"
#include "builder/router.hpp"
#include "builder/traffic.hpp"
#include "fifo/async_async_fifo.hpp"
#include "fifo/async_sync_fifo.hpp"
#include "fifo/mixed_clock_fifo.hpp"
#include "fifo/sync_async_fifo.hpp"
#include "gates/netlist.hpp"
#include "lip/chain.hpp"
#include "sim/simulation.hpp"
#include "sim/watchdog.hpp"
#include "sync/clock.hpp"

namespace mts::builder {

/// Latency-insensitive endpoint: {data, valid} forward, stop backward.
struct LiPort {
  sim::Word* data = nullptr;
  sim::Wire* valid = nullptr;
  sim::Wire* stop = nullptr;
};

/// 4-phase bundled-data endpoint (put- or get-flavoured).
struct HandshakePort {
  sim::Wire* req = nullptr;
  sim::Wire* ack = nullptr;
  sim::Word* data = nullptr;
};

/// On-demand synchronous FIFO put interface.
struct SyncFifoPut {
  sim::Wire* req_put = nullptr;
  sim::Word* data_put = nullptr;
  sim::Wire* full = nullptr;
  sim::Wire* en_put = nullptr;
};

/// On-demand synchronous FIFO get interface.
struct SyncFifoGet {
  sim::Wire* req_get = nullptr;
  sim::Word* data_get = nullptr;
  sim::Wire* valid_get = nullptr;
  sim::Wire* empty = nullptr;
  sim::Wire* stop_in = nullptr;
};

enum class EndpointStyle { kLi, kHandshake, kFifoPut, kFifoGet };

/// One side of an elaborated edge: the signals a node attached there sees.
struct Endpoint {
  EndpointStyle style = EndpointStyle::kLi;
  LiPort li{};
  HandshakePort hs{};
  SyncFifoPut fput{};
  SyncFifoGet fget{};
  /// Boundary trace-stream instance for cross-edge linking ("" when the
  /// boundary component is untraced, e.g. behind a gearbox).
  std::string traced;
};

/// One primitive the elaborator inserted on an edge.
struct InsertedRecord {
  EdgeId edge = 0;
  Primitive kind = Primitive::kWire;
  std::string instance;
};

/// The elaborated edge machinery; exactly the pointers matching the
/// resolved primitive are non-null.
struct EdgeParts {
  Endpoint head;
  Endpoint tail;
  Primitive primitive = Primitive::kWire;
  lip::SyncRelayChain* chain = nullptr;
  lip::MixedClockLink* mc_link = nullptr;
  lip::AsyncSyncLink* as_link = nullptr;
  lip::Micropipeline* pipe = nullptr;
  fifo::MixedClockFifo* mc_fifo = nullptr;
  fifo::AsyncSyncFifo* as_fifo = nullptr;
  fifo::SyncAsyncFifo* sa_fifo = nullptr;
  fifo::AsyncAsyncFifo* aa_fifo = nullptr;
  Serializer* ser = nullptr;
  Deserializer* deser = nullptr;
};

/// The generated components of one node; null for kinds that do not apply.
struct NodeParts {
  bfm::Scoreboard* sb = nullptr;        ///< owned (sources; external-fed sinks)
  bfm::Scoreboard* check_sb = nullptr;  ///< what a generated sink checks
  bfm::RsSource* rs_source = nullptr;
  bfm::SyncPutDriver* sync_put = nullptr;
  bfm::PutMonitor* put_mon = nullptr;
  bfm::AsyncPutDriver* async_put = nullptr;
  TaggedSource* tagged_source = nullptr;
  bfm::RsSink* rs_sink = nullptr;
  bfm::SyncGetDriver* sync_get = nullptr;
  bfm::GetMonitor* get_mon = nullptr;
  bfm::AsyncGetDriver* async_get = nullptr;
  bfm::AsyncAckSink* async_ack = nullptr;  ///< push-style async endpoints
  TaggedSink* tagged_sink = nullptr;
  MeshRouter* router = nullptr;
  BusFabric* bus = nullptr;
};

class Elaborated {
 public:
  /// Validates `d` (Design::check()) and builds it onto `sim`. Arm
  /// observability / monitors / faults on `sim` first.
  Elaborated(sim::Simulation& sim, const Design& d);

  Elaborated(const Elaborated&) = delete;
  Elaborated& operator=(const Elaborated&) = delete;

  const Design& design() const noexcept { return design_; }
  sim::Simulation& sim() const noexcept { return sim_; }

  sync::Clock& clock(DomainId d);

  const EdgeParts& edge(EdgeId e) const;
  const NodeParts& node(NodeId n) const;

  // --- external port handles (throw ConfigError on a style mismatch) ---
  LiPort li_port(NodeId n, const std::string& port) const;
  HandshakePort handshake_port(NodeId n, const std::string& port) const;
  SyncFifoPut fifo_put(NodeId n, const std::string& port) const;
  SyncFifoGet fifo_get(NodeId n, const std::string& port) const;

  /// The scoreboard a generated sink checks (shared with the upstream
  /// generated source, or owned by the sink when fed by an external node --
  /// external producers push their sent values into it). Throws ConfigError
  /// when the node has no scoreboard (tagged traffic checks itself).
  bfm::Scoreboard& scoreboard(NodeId n) const;

  // --- unified traffic counters ---
  /// Confirmed transfers a source node has injected.
  std::uint64_t source_sent(NodeId n) const;
  /// Packets a sink node has consumed.
  std::uint64_t sink_received(NodeId n) const;
  std::uint64_t total_sent() const;
  std::uint64_t total_received() const;
  /// Scoreboard errors plus tagged per-flow order violations plus router /
  /// bus misroutes.
  std::uint64_t total_order_violations() const;

  /// Primitives inserted per edge, in insertion order.
  const std::vector<InsertedRecord>& inserted() const noexcept {
    return inserted_;
  }

  /// One end-to-end probe: in-flight = sent - received, progress = received.
  void arm_watchdog(sim::Watchdog& wd);

  /// Design netlist plus the inserted-primitive list -- the topology
  /// fingerprint campaigns attach to repro bundles.
  std::string to_json() const;
  std::string to_dot() const { return design_.to_dot(); }

 private:
  void lower_edge(const Edge& e);
  void lower_node(const Node& n);
  LiPort li_wires(const std::string& base);
  const Endpoint& endpoint_of(NodeId n, std::size_t port_idx) const;
  /// Generated source feeding `sink` through repeaters only, or kNoNode.
  static constexpr NodeId kNoNode = static_cast<NodeId>(-1);
  NodeId upstream_source(NodeId sink) const;
  void link_traces(const std::string& up, const std::string& down);

  sim::Simulation& sim_;
  const Design& design_;
  gates::Netlist nl_;
  std::vector<sync::Clock*> clocks_;
  std::vector<EdgeParts> edges_;
  std::vector<NodeParts> nodes_;
  std::vector<InsertedRecord> inserted_;
};

/// Convenience wrapper: check + build, returning the handle bundle.
std::unique_ptr<Elaborated> elaborate(sim::Simulation& sim, const Design& d);

}  // namespace mts::builder
