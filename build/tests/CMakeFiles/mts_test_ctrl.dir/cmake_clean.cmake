file(REMOVE_RECURSE
  "CMakeFiles/mts_test_ctrl.dir/ctrl/test_burst_mode.cpp.o"
  "CMakeFiles/mts_test_ctrl.dir/ctrl/test_burst_mode.cpp.o.d"
  "CMakeFiles/mts_test_ctrl.dir/ctrl/test_dot.cpp.o"
  "CMakeFiles/mts_test_ctrl.dir/ctrl/test_dot.cpp.o.d"
  "CMakeFiles/mts_test_ctrl.dir/ctrl/test_petri.cpp.o"
  "CMakeFiles/mts_test_ctrl.dir/ctrl/test_petri.cpp.o.d"
  "CMakeFiles/mts_test_ctrl.dir/ctrl/test_reachability.cpp.o"
  "CMakeFiles/mts_test_ctrl.dir/ctrl/test_reachability.cpp.o.d"
  "CMakeFiles/mts_test_ctrl.dir/ctrl/test_specs.cpp.o"
  "CMakeFiles/mts_test_ctrl.dir/ctrl/test_specs.cpp.o.d"
  "mts_test_ctrl"
  "mts_test_ctrl.pdb"
  "mts_test_ctrl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_test_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
