#include "sim/report.hpp"

#include <gtest/gtest.h>

#include "sim/signal.hpp"

namespace mts::sim {
namespace {

TEST(Report, CountsBySeverityAndCategory) {
  Report r;
  r.add(10, Severity::kInfo, "note", "hello");
  r.add(20, Severity::kViolation, "setup", "flop x");
  r.add(30, Severity::kError, "scoreboard", "mismatch");
  r.add(40, Severity::kWarning, "setup", "marginal");
  EXPECT_EQ(r.failure_count(), 2u);
  EXPECT_EQ(r.count("setup"), 2u);
  EXPECT_EQ(r.count("scoreboard"), 1u);
  EXPECT_EQ(r.count("absent"), 0u);
  EXPECT_EQ(r.entries().size(), 4u);
}

TEST(Report, ClearResetsEverything) {
  Report r;
  r.add(1, Severity::kError, "x", "y");
  r.clear();
  EXPECT_EQ(r.failure_count(), 0u);
  EXPECT_EQ(r.count("x"), 0u);
  EXPECT_TRUE(r.entries().empty());
}

TEST(Report, EntryCapBoundsStorageButNotCounters) {
  Report r;
  r.set_max_entries(3);
  for (int i = 0; i < 10; ++i) r.add(1, Severity::kError, "cat", "m");
  EXPECT_EQ(r.entries().size(), 3u);
  EXPECT_EQ(r.count("cat"), 10u);
  EXPECT_EQ(r.failure_count(), 10u);
}

TEST(Report, EntriesPreserveFields) {
  Report r;
  r.add(123, Severity::kViolation, "hold", "flop q");
  const ReportEntry& e = r.entries().front();
  EXPECT_EQ(e.time, 123u);
  EXPECT_EQ(e.severity, Severity::kViolation);
  EXPECT_EQ(e.category, "hold");
  EXPECT_EQ(e.message, "flop q");
}

TEST(Report, SurfacesKernelStatsAfterRun) {
  Simulation sim;
  Wire w(sim, "w");
  for (int i = 0; i < 5; ++i) {
    w.write((i % 2) == 0, static_cast<Time>(i + 1), DelayKind::kTransport);
  }
  sim.run();
  const KernelStats& ks = sim.report().kernel();
  EXPECT_EQ(ks.events_executed, 5u);
  EXPECT_GE(ks.peak_queue_depth, 5u);
  EXPECT_GT(ks.pool_high_water, 0u);
}

TEST(Report, CountersKeepCountingPastTheCap) {
  Report r;
  r.set_max_entries(2);
  for (int i = 0; i < 6; ++i) {
    r.add(static_cast<Time>(i), Severity::kViolation, "setup", "late edge");
  }
  for (int i = 0; i < 3; ++i) {
    r.add(static_cast<Time>(i), Severity::kInfo, "note", "fyi");
  }
  // Storage is bounded, accounting is not: harness pass/fail decisions
  // (failure_count, per-category counts) stay exact past the cap.
  EXPECT_EQ(r.entries().size(), 2u);
  EXPECT_EQ(r.count("setup"), 6u);
  EXPECT_EQ(r.count("note"), 3u);
  EXPECT_EQ(r.failure_count(), 6u);
  EXPECT_EQ(r.total_added(), 9u);
}

TEST(Report, CappedJsonRoundTripKeepsExactTotals) {
  Report r;
  r.set_max_entries(2);
  for (int i = 0; i < 5; ++i) {
    r.add(static_cast<Time>(100 + i), Severity::kError, "scoreboard",
          "mismatch \"x\"");
  }
  const std::string json = r.to_json();
  // The exact totals survive export even though only 2 entries do.
  EXPECT_NE(json.find("\"entries_total\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"entries_recorded\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"failures\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"scoreboard\": 5"), std::string::npos);
  // Stored entries appear, escaped.
  EXPECT_NE(json.find("mismatch \\\"x\\\""), std::string::npos);
  // Only the capped entries serialize: count the entry objects.
  std::size_t entry_count = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"severity\"", pos)) != std::string::npos; ++pos) {
    ++entry_count;
  }
  EXPECT_EQ(entry_count, 2u);
}

TEST(Report, ClearResetsKernelStats) {
  Report r;
  KernelStats ks;
  ks.events_executed = 7;
  r.set_kernel(ks);
  EXPECT_EQ(r.kernel().events_executed, 7u);
  r.clear();
  EXPECT_EQ(r.kernel().events_executed, 0u);
}

TEST(ReportMerge, CategoryTotalsAndFailuresAddEntriesAppend) {
  Report a;
  a.add(10, Severity::kViolation, "setup", "late edge");
  a.add(11, Severity::kInfo, "note", "fyi");
  Report b;
  b.add(20, Severity::kViolation, "setup", "another late edge");
  b.add(21, Severity::kError, "scoreboard", "mismatch");
  a.merge(b);
  EXPECT_EQ(a.count("setup"), 2u);
  EXPECT_EQ(a.count("note"), 1u);
  EXPECT_EQ(a.count("scoreboard"), 1u);
  EXPECT_EQ(a.failure_count(), 3u);
  EXPECT_EQ(a.total_added(), 4u);
  ASSERT_EQ(a.entries().size(), 4u);
  EXPECT_EQ(a.entries().back().message, "mismatch");
}

TEST(ReportMerge, AppendedEntriesRespectTheDestinationCap) {
  Report a;
  a.set_max_entries(3);
  a.add(1, Severity::kWarning, "w", "a0");
  a.add(2, Severity::kWarning, "w", "a1");
  Report b;
  for (int i = 0; i < 4; ++i) {
    b.add(static_cast<Time>(10 + i), Severity::kWarning, "w", "bx");
  }
  a.merge(b);
  // Storage bounded by a's cap; accounting stays exact.
  EXPECT_EQ(a.entries().size(), 3u);
  EXPECT_EQ(a.count("w"), 6u);
  EXPECT_EQ(a.total_added(), 6u);
}

TEST(ReportMerge, KernelCountersAddAndPeakTakesMax) {
  // Shards are independent schedulers: events/pool sum (aggregate work),
  // peak depth maxes (worst single-run pressure).
  Report a;
  KernelStats ka;
  ka.events_executed = 100;
  ka.peak_queue_depth = 4;
  ka.pool_high_water = 16;
  a.set_kernel(ka);
  Report b;
  KernelStats kb;
  kb.events_executed = 50;
  kb.peak_queue_depth = 9;
  kb.pool_high_water = 8;
  kb.hot_sites.push_back({"site", 50, 1234});
  b.set_kernel(kb);
  a.merge(b);
  EXPECT_EQ(a.kernel().events_executed, 150u);
  EXPECT_EQ(a.kernel().peak_queue_depth, 9u);
  EXPECT_EQ(a.kernel().pool_high_water, 24u);
  ASSERT_EQ(a.kernel().hot_sites.size(), 1u);
  EXPECT_EQ(a.kernel().hot_sites[0].label, "site");
  EXPECT_EQ(a.kernel().hot_sites[0].events, 50u);
}

TEST(ReportMerge, HotSiteRowsWithTheSameLabelCombine) {
  Report a;
  KernelStats ka;
  ka.hot_sites.push_back({"fifo.put", 10, 100});
  ka.hot_sites.push_back({"clk", 5, 10});
  a.set_kernel(ka);
  Report b;
  KernelStats kb;
  kb.hot_sites.push_back({"fifo.put", 20, 900});
  b.set_kernel(kb);
  a.merge(b);
  const auto& sites = a.kernel().hot_sites;
  ASSERT_EQ(sites.size(), 2u);
  // Sorted hottest (wall time) first after the label-merge.
  EXPECT_EQ(sites[0].label, "fifo.put");
  EXPECT_EQ(sites[0].events, 30u);
  EXPECT_EQ(sites[0].wall_ns, 1000u);
  EXPECT_EQ(sites[1].label, "clk");
}

}  // namespace
}  // namespace mts::sim
