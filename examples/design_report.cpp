// Design report ("datasheet") generator: for a chosen FIFO configuration,
// prints the critical-path breakdown behind each Table 1 throughput
// number, the synchronizer MTBF table, an occupancy profile under
// saturated traffic, and writes the asynchronous controller specifications
// (OPT, DV_as, DV_linear) as Graphviz .dot files.
//
//   $ ./example_design_report [capacity] [width]
//   $ dot -Tpng opt.dot -o opt.png        # render the controllers
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bfm/bfm.hpp"
#include "ctrl/dot.hpp"
#include "ctrl/specs.hpp"
#include "fifo/fifo.hpp"
#include "metrics/registry.hpp"
#include "metrics/stats.hpp"
#include "sim/observe.hpp"
#include "sync/clock.hpp"
#include "sync/mtbf.hpp"

namespace {

using namespace mts;

void print_path(const char* title, const fifo::PathBreakdown& path) {
  std::printf("%s\n", title);
  for (const auto& e : path) {
    std::printf("  %-45s %6llu ps\n", e.name.c_str(),
                static_cast<unsigned long long>(e.delay));
  }
  const auto total = fifo::path_total(path);
  std::printf("  %-45s %6llu ps  (%.0f MHz)\n", "TOTAL",
              static_cast<unsigned long long>(total),
              sim::period_to_mhz(total));
}

}  // namespace

int main(int argc, char** argv) {
  fifo::FifoConfig cfg;
  cfg.capacity = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
  cfg.width = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;
  cfg.validate();

  std::printf("=== MTS design report: %u-place, %u-bit ===\n\n", cfg.capacity,
              cfg.width);

  print_path("put interface critical path (FIFO controllers):",
             fifo::SyncPutSide::describe_min_period(cfg));
  std::printf("\n");
  print_path("get interface critical path (FIFO controllers):",
             fifo::SyncGetSide::describe_min_period(cfg));
  std::printf("\n");

  fifo::FifoConfig rs = cfg;
  rs.controller = fifo::ControllerKind::kRelayStation;
  print_path("put interface critical path (relay-station controllers):",
             fifo::SyncPutSide::describe_min_period(rs));
  std::printf("\n");

  std::printf("synchronizer MTBF (100 MHz async toggle rate):\n");
  for (unsigned depth : {1u, 2u, 3u}) {
    sync::MtbfParams p;
    p.depth = depth;
    p.clock_period = fifo::SyncGetSide::min_period(cfg);
    p.data_rate_hz = 100e6;
    p.dm = cfg.dm;
    std::printf("  depth %u: %.3g seconds\n", depth, sync::mtbf_seconds(p));
  }

  // Occupancy profile under saturated traffic at a 25% timing margin, with
  // the observability stack armed: per-instance metrics and the kernel's
  // hottest-callbacks table land in design_report.json.
  {
    sim::Simulation sim(1);
    metrics::Registry registry;
    sim::KernelProfiler profiler;
    sim::Observability obs;
    obs.metrics = &registry;
    obs.profiler = &profiler;
    obs.arm(sim);
    registry.bind(sim.report());
    const sim::Time pp = fifo::SyncPutSide::min_period(cfg) * 5 / 4;
    const sim::Time gp = fifo::SyncGetSide::min_period(cfg) * 5 / 4;
    sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
    sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
    fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
    metrics::OccupancySampler occ(sim, cg.out(), cfg.capacity,
                                  [&dut] { return dut.occupancy(); });
    bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                           dut.full(), cfg.dm, {1.0, 1}, 0xFF);
    bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                           {1.0, 1});
    sim.run_until(4 * pp + 1000 * pp);

    std::printf("\noccupancy profile (saturated traffic, %llu samples, mean "
                "%.2f):\n",
                static_cast<unsigned long long>(occ.samples()), occ.mean());
    for (unsigned lvl = 0; lvl <= cfg.capacity; ++lvl) {
      const int bar = static_cast<int>(occ.fraction_at(lvl) * 50.0);
      std::printf("  %2u |%-50.*s| %4.1f%%\n", lvl, bar,
                  "##################################################",
                  occ.fraction_at(lvl) * 100.0);
    }

    const sim::KernelStats& ks = sim.report().kernel();
    std::printf("\nkernel (occupancy run): %llu events executed, "
                "peak queue depth %llu, pool high-water %llu slots\n",
                static_cast<unsigned long long>(ks.events_executed),
                static_cast<unsigned long long>(ks.peak_queue_depth),
                static_cast<unsigned long long>(ks.pool_high_water));
    const std::string hot = sim::format_hot_sites(ks);
    if (!hot.empty()) std::printf("%s", hot.c_str());

    if (const metrics::Histogram* lat =
            registry.find_histogram("dut", "latency_ps");
        lat != nullptr && lat->count() > 0) {
      std::printf("forward latency: p50 %.0f ps, p99 %.0f ps over %llu "
                  "items\n",
                  lat->percentile(0.50), lat->percentile(0.99),
                  static_cast<unsigned long long>(lat->count()));
    }
    std::ofstream("design_report.json") << sim.report().to_json();
    std::printf("wrote design_report.json (report + metrics + kernel "
                "profile)\n");
  }

  // Controller specifications as Graphviz.
  for (const auto& [path, dot] :
       {std::pair<const char*, std::string>{"opt.dot",
                                            ctrl::to_dot(ctrl::opt_spec())},
        {"dv_as.dot", ctrl::to_dot(ctrl::dv_as_net())},
        {"dv_linear.dot", ctrl::to_dot(ctrl::dv_linear_net())}}) {
    std::ofstream out(path);
    out << dot;
    std::printf("\nwrote %s", path);
  }
  std::printf("\n");
  return 0;
}
