#include "lip/micropipeline.hpp"

#include <utility>

#include "sim/error.hpp"

namespace mts::lip {

MicropipelineStage::MicropipelineStage(sim::Simulation& sim, std::string name,
                                       sim::Wire& req_in, sim::Wire& ack_in,
                                       sim::Word& data_in, sim::Wire& req_out,
                                       sim::Wire& ack_out, sim::Word& data_out,
                                       const gates::DelayModel& dm)
    : name_(std::move(name)),
      req_in_(req_in),
      ack_in_(ack_in),
      data_in_(data_in),
      req_out_(req_out),
      ack_out_(ack_out),
      data_out_(data_out),
      d_latch_(dm.latch_en_to_q),
      d_ctl_(dm.celement(2)),
      d_data_(dm.latch_d_to_q),
      d_bundle_(dm.gate(1)) {
  (void)sim;
  req_in_.on_change([this](bool, bool now) {
    if (now) {
      input_waiting_ = true;
      try_capture();
    } else {
      // 4-phase reset: req- is answered by ack-.
      ack_in_.write(false, d_ctl_, sim::DelayKind::kInertial);
    }
  });
  ack_out_.on_change([this](bool, bool now) {
    if (now) {
      // Downstream accepted: reset req_out; the slot frees immediately
      // (full-buffer concurrency) so a waiting input can be captured while
      // the output handshake completes its reset phase.
      req_out_.write(false, d_ctl_, sim::DelayKind::kInertial);
      out_phase_ = OutPhase::kResetting;
      full_ = false;
      try_capture();
    } else {
      out_phase_ = OutPhase::kIdle;
      try_send();
    }
  });
}

void MicropipelineStage::try_capture() {
  if (!input_waiting_ || full_) return;
  input_waiting_ = false;
  full_ = true;
  // Bundled data: data_in is stable while req_in is high.
  latched_ = data_in_.read();
  ack_in_.write(true, d_latch_ + d_ctl_, sim::DelayKind::kInertial);
  try_send();
}

void MicropipelineStage::try_send() {
  if (!full_ || out_phase_ != OutPhase::kIdle) return;
  out_phase_ = OutPhase::kReqHigh;
  data_out_.write(latched_, d_data_, sim::DelayKind::kInertial);
  // Matched (bundling) delay: req_out follows the data.
  req_out_.write(true, d_data_ + d_bundle_, sim::DelayKind::kInertial);
}

Micropipeline::Micropipeline(sim::Simulation& sim, const std::string& name,
                             unsigned stages, sim::Wire& in_req,
                             sim::Wire& in_ack, sim::Word& in_data,
                             sim::Wire& out_req, sim::Wire& out_ack,
                             sim::Word& out_data, const gates::DelayModel& dm)
    : nl_(sim, name), n_(stages) {
  if (stages == 0) throw ConfigError("Micropipeline: needs at least one stage");

  sim::Wire* req = &in_req;
  sim::Wire* ack = &in_ack;
  sim::Word* data = &in_data;
  for (unsigned i = 0; i < stages; ++i) {
    const bool last = i + 1 == stages;
    sim::Wire& next_req = last ? out_req : nl_.wire("s" + std::to_string(i) + ".req");
    sim::Wire& next_ack = last ? out_ack : nl_.wire("s" + std::to_string(i) + ".ack");
    sim::Word& next_data =
        last ? out_data : nl_.word("s" + std::to_string(i) + ".data");
    stages_.push_back(&nl_.add<MicropipelineStage>(
        sim, nl_.qualified("stage" + std::to_string(i)), *req, *ack, *data,
        next_req, next_ack, next_data, dm));
    req = &next_req;
    ack = &next_ack;
    data = &next_data;
  }
}

unsigned Micropipeline::occupancy() const {
  unsigned count = 0;
  for (const MicropipelineStage* s : stages_) count += s->full() ? 1u : 0u;
  return count;
}

}  // namespace mts::lip
