#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite, and regenerates every
# table/figure in EXPERIMENTS.md. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/bench_*; do
    echo "===================================================================="
    echo "== $(basename "$b")"
    echo "===================================================================="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt and bench_output.txt"
