# Empty dependencies file for mts_test_fifo.
# This may be replaced when dependencies are built.
