// Global state detectors (Fig. 6).
//
// The detectors observe every cell's e_i / f_i state bit and compute the
// FIFO-global full/empty conditions. The paper's "anticipating" definitions
// declare the FIFO full/empty one data item early so that the two-cycle
// synchronizer latency cannot cause over/underflow:
//
//   full (Fig. 6a): no two *consecutive* cells empty  (<= 1 empty cell)
//   ne   (Fig. 6b): no two *consecutive* cells full   (<= 1 data item)
//   oe   (Fig. 6c): no cell full                      (0 data items)
//
// Structurally: a rank of 2-input AND gates over adjacent pairs (the ring
// wraps), an OR tree whose depth grows as log2(capacity) -- this is why get
// and put frequencies fall with capacity in Table 1 -- and an output
// inverter.
#pragma once

#include <vector>

#include "gates/combinational.hpp"
#include "gates/delay_model.hpp"
#include "gates/netlist.hpp"
#include "sim/signal.hpp"

namespace mts::fifo {

/// full: asserted when no `window` consecutive cells are empty (i.e. at
/// most window-1 empty cells). `e` holds every cell's e_i in ring order.
///
/// The paper's definition is window = 2, matched to its two-latch
/// synchronizers: the anticipation margin (window - 1 cells) must cover
/// the puts that can slip in while the full flag crosses the synchronizer
/// (depth - 1 cycles). "Arbitrarily robust" deeper synchronizers therefore
/// need proportionally wider anticipation windows -- a coupling the
/// library enforces (see SyncPutSide) and DESIGN.md section 7 documents.
sim::Wire& build_anticipating_full(gates::Netlist& nl, std::vector<sim::Wire*> e,
                                   const gates::DelayModel& dm,
                                   unsigned window = 2);

/// ne ("new empty"): asserted when no `window` consecutive cells are full
/// (at most window-1 data items). Paper: window = 2.
sim::Wire& build_anticipating_empty(gates::Netlist& nl, std::vector<sim::Wire*> f,
                                    const gates::DelayModel& dm,
                                    unsigned window = 2);

/// Anticipation window required for a given synchronizer depth.
unsigned anticipation_window(unsigned sync_depth);

/// The detector predicate as a pure function over a snapshot of the state
/// bits: asserted iff the ring `bits` contains no run of `window`
/// consecutive set entries. window = 1 degenerates to "no bit set" (the
/// oe / exact detectors). This is the defining condition the gate
/// structures above implement, the runtime verify::DetectorMonitor
/// re-derives, and the model checker (src/mc) evaluates directly on
/// explored product states.
bool detector_asserted(const std::vector<bool>& bits, unsigned window);

/// oe ("true empty"): asserted when no cell is full.
sim::Wire& build_true_empty(gates::Netlist& nl, std::vector<sim::Wire*> f,
                            const gates::DelayModel& dm);

/// Ablation: exact full (no cell empty).
sim::Wire& build_exact_full(gates::Netlist& nl, std::vector<sim::Wire*> e,
                            const gates::DelayModel& dm);

/// Static delay of the window-AND + OR-tree + inverter structure, used by
/// the FIFOs' critical-path analysis. `window` = 0 means no AND rank
/// (oe / exact detectors); the paper's anticipating detectors use 2.
sim::Time detector_delay(unsigned capacity, unsigned window,
                         const gates::DelayModel& dm);

}  // namespace mts::fifo
