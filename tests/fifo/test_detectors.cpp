#include "fifo/detectors.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace mts::fifo {
namespace {

struct Fixture {
  sim::Simulation sim;
  gates::Netlist nl{sim, "t"};
  gates::DelayModel dm = gates::DelayModel::hp06();
  std::vector<sim::Wire*> bits;

  explicit Fixture(unsigned n, bool init) {
    for (unsigned i = 0; i < n; ++i) {
      bits.push_back(&nl.wire("b" + std::to_string(i), init));
    }
  }
  void apply(const std::vector<bool>& pattern) {
    for (std::size_t i = 0; i < pattern.size(); ++i) bits[i]->set(pattern[i]);
    sim.run_until(sim.now() + 10000);
  }
};

TEST(FullDetector, FullExactlyWhenNoTwoConsecutiveEmpty) {
  Fixture f(4, true);  // e_i: all empty
  sim::Wire& full = build_anticipating_full(f.nl, f.bits, f.dm);
  f.apply({true, true, true, true});
  EXPECT_FALSE(full.read());  // plenty of consecutive empties

  // One empty cell left (cell 2): no two consecutive empties -> full.
  f.apply({false, false, true, false});
  EXPECT_TRUE(full.read());

  // Zero empty cells: full.
  f.apply({false, false, false, false});
  EXPECT_TRUE(full.read());

  // Two empty but not adjacent (ring): cells 0 and 2 empty -> still full
  // by the paper's definition (no two *consecutive* empties).
  f.apply({true, false, true, false});
  EXPECT_TRUE(full.read());

  // Two adjacent empties -> not full.
  f.apply({true, true, false, false});
  EXPECT_FALSE(full.read());

  // Ring wrap: cells 3 and 0 adjacent.
  f.apply({true, false, false, true});
  EXPECT_FALSE(full.read());
}

TEST(NeDetector, EmptyExactlyWhenNoTwoConsecutiveFull) {
  Fixture f(4, false);  // f_i: all empty
  sim::Wire& ne = build_anticipating_empty(f.nl, f.bits, f.dm);
  f.apply({false, false, false, false});
  EXPECT_TRUE(ne.read());  // zero items: empty

  f.apply({false, true, false, false});
  EXPECT_TRUE(ne.read());  // one item: still "new empty"

  f.apply({false, true, true, false});
  EXPECT_FALSE(ne.read());  // two adjacent items: not empty

  f.apply({true, false, false, true});
  EXPECT_FALSE(ne.read());  // ring wrap adjacency
}

TEST(OeDetector, TrueEmptyOnlyWithZeroItems) {
  Fixture f(4, false);
  sim::Wire& oe = build_true_empty(f.nl, f.bits, f.dm);
  f.apply({false, false, false, false});
  EXPECT_TRUE(oe.read());
  f.apply({false, false, true, false});
  EXPECT_FALSE(oe.read());
}

TEST(ExactFull, FullOnlyWithZeroEmptyCells) {
  Fixture f(4, true);
  sim::Wire& full = build_exact_full(f.nl, f.bits, f.dm);
  f.apply({false, false, false, true});
  EXPECT_FALSE(full.read());
  f.apply({false, false, false, false});
  EXPECT_TRUE(full.read());
}

TEST(DetectorDelay, GrowsLogarithmicallyWithCapacity) {
  const gates::DelayModel dm = gates::DelayModel::hp06();
  const sim::Time d4 = detector_delay(4, 2, dm);
  const sim::Time d8 = detector_delay(8, 2, dm);
  const sim::Time d16 = detector_delay(16, 2, dm);
  const sim::Time d64 = detector_delay(64, 2, dm);
  // 4-ary OR tree: one level up to 4 cells, two levels up to 16, three up
  // to 64.
  EXPECT_LT(d4, d8);
  EXPECT_EQ(d8, d16);
  EXPECT_EQ(d8 - d4, dm.gate(4));
  EXPECT_EQ(d64 - d16, dm.gate(4));
  // The pair rank costs one AND2.
  EXPECT_EQ(detector_delay(8, 2, dm) - detector_delay(8, 0, dm), dm.gate(2));
  // Wider anticipation windows (deeper synchronizers) cost wider ANDs.
  EXPECT_EQ(detector_delay(8, 3, dm) - detector_delay(8, 0, dm), dm.gate(3));
}

TEST(Detectors, EightAndSixteenCellPatterns) {
  Fixture f(8, true);
  sim::Wire& full = build_anticipating_full(f.nl, f.bits, f.dm);
  // Alternating empty/occupied: no two consecutive empties -> full.
  f.apply({true, false, true, false, true, false, true, false});
  EXPECT_TRUE(full.read());
  // Break the alternation: adjacent empties at 4,5.
  f.apply({true, false, true, false, true, true, true, false});
  EXPECT_FALSE(full.read());
}

}  // namespace
}  // namespace mts::fifo
