#include "sync/mtbf.hpp"

#include <cmath>
#include <limits>

#include "sim/error.hpp"

namespace mts::sync {

sim::Time stage_slack(const MtbfParams& p) {
  if (p.clock_period == 0) throw ConfigError("mtbf: clock_period must be > 0");
  const sim::Time consumed = p.dm.flop.setup + p.dm.flop.clk_to_q;
  return p.clock_period > consumed ? p.clock_period - consumed : 0;
}

double mtbf_seconds(const MtbfParams& p) {
  if (p.depth == 0) throw ConfigError("mtbf: depth must be >= 1");
  if (p.data_rate_hz <= 0.0) return std::numeric_limits<double>::infinity();

  const double f_clk = 1e12 / static_cast<double>(p.clock_period);
  const double t_r = static_cast<double>(p.depth) *
                     static_cast<double>(stage_slack(p));
  const double tau = static_cast<double>(p.dm.meta_tau);
  const double window_s = static_cast<double>(p.dm.meta_window) * 1e-12;
  return std::exp(t_r / tau) / (window_s * f_clk * p.data_rate_hz);
}

}  // namespace mts::sync
