#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh BENCH_kernel.json against the recorded
baseline at the repository root.

Usage: check_kernel_perf.py <recorded.json> <fresh.json> [tolerance]
       [<recorded_telemetry.json> <fresh_telemetry.json>]

Fails (exit 1) when any of these regress beyond `tolerance` (default 15%):

  * current.scheduler_chain_events_per_sec -- the dormant-path event-chain
    throughput (disabled observability, the hot path) falls below
    recorded * (1 - tolerance). A faster fresh run always passes.
  * campaign.runs_per_sec["1"] -- single-worker campaign throughput on the
    shared FIFO-soak workload, same floor rule. Gated only when both sides
    recorded a campaign section (older baselines predate sim::Campaign)
    with the SAME workload shape (runs and cycles_per_run): runs/sec
    scales with run length, so a smoke fresh run vs a full baseline is
    not comparable and is reported informationally instead. Multi-worker
    numbers are host-core-bound and always stay informational.
  * observability.profiler_overhead_pct -- the ARMED profiler's slowdown of
    the event chain must stay under max(100%, recorded * (1 + tolerance)).
    The 100% floor keeps the ceiling meaningful on noisy CI hosts while
    still catching a relapse toward the pre-ring-buffer ~456% cost.
  * monitors.fifo_cycles_per_sec_disarmed -- the mixed-clock FIFO soak with
    protocol monitors DISARMED must stay within a fixed 5% of the recorded
    throughput (the zero-cost-when-disarmed contract: components probe
    sim.monitors() once at construction, so the disarmed run may not pay
    for the verify subsystem). Gated only when both sides measured the
    same fifo_cycles workload (smoke vs full are not comparable). The
    armed number is always informational.

When the telemetry JSON pair (BENCH_telemetry.json) is given, two more
gates apply:

  * fifo_soak.cycles_per_sec_disarmed -- the FIFO soak with the telemetry
    sampler DISARMED, same fixed 5% budget and same-workload rule as the
    monitors gate: components probe obs.telemetry once at construction, so
    a run without a Telemetry armed may not pay for the sampler.
  * fifo_soak.armed_overhead_pct -- the ARMED sampler's slowdown (a sample
    every 4 put cycles, every source + the registry) must stay under
    max(200%, recorded * 2), gated only when both sides measured the same
    fifo_cycles workload (overhead grows with soak length). Sampler
    samples/sec rates are reported informationally.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 0.15
    with open(sys.argv[1]) as f:
        recorded = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    failed = False

    def gate_floor(name: str, ref: float, got: float) -> None:
        nonlocal failed
        floor = ref * (1.0 - tolerance)
        ok = got >= floor
        failed = failed or not ok
        print(
            f"{name}: recorded {ref:.3e}, fresh {got:.3e} "
            f"({got / ref * 100.0:.1f}% of recorded, floor {floor:.3e}) "
            f"-> {'OK' if ok else 'REGRESSION'}"
        )

    key = "scheduler_chain_events_per_sec"
    gate_floor(key, recorded["current"][key], fresh["current"][key])

    camp_rec = recorded.get("campaign", {})
    camp_new = fresh.get("campaign", {})
    rps_rec = camp_rec.get("runs_per_sec", {})
    rps_new = camp_new.get("runs_per_sec", {})
    if "1" in rps_rec and "1" in rps_new:
        same_shape = all(
            camp_rec.get(k) == camp_new.get(k)
            for k in ("runs", "cycles_per_run")
        )
        if same_shape:
            gate_floor("campaign_runs_per_sec[1w]", rps_rec["1"], rps_new["1"])
        else:
            print(
                f"campaign_runs_per_sec[1w]: recorded {rps_rec['1']:.3e}, "
                f"fresh {rps_new['1']:.3e} (informational: workload shapes "
                "differ, e.g. smoke vs full)"
            )
        for w in sorted(rps_new, key=int):
            if w != "1":
                print(
                    f"  campaign_runs_per_sec[{w}w]: {rps_new[w]:.3e} "
                    "(informational: bounded by host cores)"
                )

    mon_rec = recorded.get("monitors", {})
    mon_new = fresh.get("monitors", {})
    key = "fifo_cycles_per_sec_disarmed"
    if key in mon_rec and key in mon_new:
        if mon_rec.get("fifo_cycles") == mon_new.get("fifo_cycles"):
            # Fixed 5% budget, independent of the CLI tolerance: this gate
            # protects a zero-cost contract, not a best-effort trend.
            floor = mon_rec[key] * 0.95
            ok = mon_new[key] >= floor
            failed = failed or not ok
            print(
                f"monitors_disarmed_fifo_cycles_per_sec: recorded "
                f"{mon_rec[key]:.3e}, fresh {mon_new[key]:.3e} "
                f"({mon_new[key] / mon_rec[key] * 100.0:.1f}% of recorded, "
                f"floor {floor:.3e}, fixed 5% budget) "
                f"-> {'OK' if ok else 'REGRESSION'}"
            )
        else:
            print(
                f"monitors_disarmed_fifo_cycles_per_sec: recorded "
                f"{mon_rec[key]:.3e}, fresh {mon_new[key]:.3e} "
                "(informational: workload shapes differ, e.g. smoke vs full)"
            )
    if "armed_overhead_pct" in mon_new:
        print(
            f"  monitors_armed_overhead: {mon_new['armed_overhead_pct']:.1f}% "
            "(informational: armed checkers are an opt-in cost)"
        )

    obs_rec = recorded.get("observability", {})
    obs_new = fresh.get("observability", {})
    if "profiler_overhead_pct" in obs_new:
        got = obs_new["profiler_overhead_pct"]
        ref = obs_rec.get("profiler_overhead_pct")
        if ref is not None:
            ceiling = max(100.0, ref * (1.0 + tolerance))
            ok = got <= ceiling
            failed = failed or not ok
            print(
                f"profiler_overhead_pct: recorded {ref:.1f}%, fresh "
                f"{got:.1f}% (ceiling {ceiling:.1f}%) "
                f"-> {'OK' if ok else 'REGRESSION'}"
            )
        else:
            print(f"profiler overhead: fresh {got:.1f}% (no recorded value)")

    if len(sys.argv) > 5:
        with open(sys.argv[4]) as f:
            tel_rec = json.load(f).get("fifo_soak", {})
        with open(sys.argv[5]) as f:
            tel_all = json.load(f)
        tel_new = tel_all.get("fifo_soak", {})
        key = "cycles_per_sec_disarmed"
        if key in tel_rec and key in tel_new:
            if tel_rec.get("cycles") == tel_new.get("cycles"):
                # Same fixed 5% budget as the monitors gate: zero-cost
                # contract, not a best-effort trend.
                floor = tel_rec[key] * 0.95
                ok = tel_new[key] >= floor
                failed = failed or not ok
                print(
                    f"telemetry_disarmed_fifo_cycles_per_sec: recorded "
                    f"{tel_rec[key]:.3e}, fresh {tel_new[key]:.3e} "
                    f"({tel_new[key] / tel_rec[key] * 100.0:.1f}% of recorded,"
                    f" floor {floor:.3e}, fixed 5% budget) "
                    f"-> {'OK' if ok else 'REGRESSION'}"
                )
            else:
                print(
                    f"telemetry_disarmed_fifo_cycles_per_sec: recorded "
                    f"{tel_rec[key]:.3e}, fresh {tel_new[key]:.3e} "
                    "(informational: workload shapes differ, "
                    "e.g. smoke vs full)"
                )
        if "armed_overhead_pct" in tel_new:
            got = tel_new["armed_overhead_pct"]
            ref = tel_rec.get("armed_overhead_pct")
            if ref is None or tel_rec.get("cycles") != tel_new.get("cycles"):
                # Overhead grows with soak length (more samples, deeper
                # series): cross-shape comparisons are meaningless, same as
                # the disarmed gate above.
                print(
                    f"telemetry_armed_overhead: fresh {got:.1f}% "
                    "(informational: workload shapes differ or no recorded "
                    "value)"
                )
            else:
                # Overhead ratios wobble more than throughputs on loaded CI
                # hosts (the armed run is ~4x longer, so it absorbs more
                # transient noise): give the ceiling 2x headroom. The hard
                # guarantee is the DISARMED floor above.
                ceiling = max(200.0, ref * 2.0)
                ok = got <= ceiling
                failed = failed or not ok
                print(
                    f"telemetry_armed_overhead: recorded {ref:.1f}%, fresh "
                    f"{got:.1f}% (ceiling {ceiling:.1f}%) "
                    f"-> {'OK' if ok else 'REGRESSION'}"
                )
        sampler = tel_all.get("sampler", {})
        for k in ("samples_per_sec_8_sources", "samples_per_sec_64_sources"):
            if k in sampler:
                print(f"  telemetry_{k}: {sampler[k]:.3e} (informational)")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
