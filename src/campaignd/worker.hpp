// The campaignd worker process: one crash-isolated run executor.
//
// A worker is a child process (fork/exec of this binary's `worker`
// subcommand) that connects back to the coordinator, receives the job
// (workload name + params + matrix shape + options), then executes work
// units -- explicit run-index lists -- one run at a time through the SAME
// sim::execute_run the in-process engine uses, on a worker-lifetime
// RunShard with warm arenas. Each completed run ships a snapshot record
// (make_run_record) back over the wire; the coordinator folds records in
// run-index order, so nothing about the placement of runs onto workers is
// observable in the merged artifacts.
//
// Crash isolation is the point: a run that segfaults, aborts, wedges or
// loses its process takes down THIS worker only. The coordinator detects
// the death (EOF, waitpid, heartbeat/progress deadline), respawns and
// re-dispatches -- see coordinator.hpp.
//
// A heartbeat thread beats every heartbeat_interval_ms with a monotone
// runs-done counter. The counter is what distinguishes "alive but wedged"
// (beats flow, counter frozen -> progress timeout) from "dead" (no beats
// -> heartbeat timeout).
//
// Chaos directives (tests only) ride on work units and fire exactly once
// across re-dispatches, gated by O_CREAT|O_EXCL marker files: kill, abort,
// hang, mute_heartbeat, drop_connection. They let the chaos suite script
// every failure mode the coordinator must survive, deterministically.
#pragma once

#include <cstdint>

namespace mts::campaignd {

struct WorkerOptions {
  std::uint16_t port = 0;  ///< coordinator port on 127.0.0.1
};

/// Runs the worker loop until the coordinator says shutdown, the
/// connection drops, or a chaos directive terminates the process. Returns
/// a process exit code (0: clean shutdown or coordinator EOF; 2: protocol
/// or execution error, reported to the coordinator when possible).
int run_worker(const WorkerOptions& opt);

}  // namespace mts::campaignd
