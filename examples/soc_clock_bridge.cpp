// SoC clock-domain bridge: a DMA engine on a 450 MHz core clock streams
// descriptors to a peripheral controller on a 166-ish MHz bus clock through
// a mixed-clock FIFO -- the paper's motivating "systems-on-a-chip involving
// many clock domains" scenario.
//
// Demonstrates:
//   - sustained streaming across a ~2.7:1 frequency ratio,
//   - back-pressure: the peripheral periodically blocks (e.g. bus arbitration)
//     and the DMA engine stalls cleanly on `full`,
//   - the conservative DV option, which this writer-much-faster-than-reader
//     operating point calls for (see DESIGN.md section 6).
//
//   $ ./example_soc_clock_bridge
#include <cstdio>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "sync/clock.hpp"

namespace {

using namespace mts;
using sim::Time;

/// Peripheral-side consumer: requests words except during periodic "bus
/// busy" windows, modelling arbitration stalls.
class BusPeripheral {
 public:
  BusPeripheral(sim::Simulation& sim, sim::Wire& clk,
                fifo::MixedClockFifo& fifo, bfm::Scoreboard& sb)
      : sim_(sim), fifo_(fifo), sb_(sb) {
    sim::on_rise(clk, [this] {
      sim_.sched().after(fifo_.config().dm.flop.clk_to_q + 1, [this] {
        // Busy for 8 cycles out of every 40.
        const bool busy = (cycle_ % 40) >= 32;
        ++cycle_;
        fifo_.req_get().set(!busy);
      });
    });
    sim::on_rise(clk, [this] {
      if (fifo_.valid_get().read()) {
        sb_.pop_check(fifo_.data_get().read());
        ++received_;
      }
    });
  }

  std::uint64_t received() const { return received_; }

 private:
  sim::Simulation& sim_;
  fifo::MixedClockFifo& fifo_;
  bfm::Scoreboard& sb_;
  std::uint64_t cycle_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace

int main() {
  sim::Simulation sim(7);

  fifo::FifoConfig cfg;
  cfg.capacity = 16;  // deep enough to ride out 8-cycle bus stalls
  cfg.width = 32;
  // The DMA clock runs ~2.7x faster than the bus clock; at the full
  // boundary that is outside the SR-latch DV's safe envelope, so use the
  // conservative controller (DESIGN.md section 6, EXPERIMENTS.md
  // "full-boundary hazard").
  cfg.dv_kind = fifo::DvKind::kConservative;

  // The core clock runs at a 12.5% margin over the bridge's put-side
  // critical path; the bus clock is ~2.7x slower.
  const Time core_period = fifo::SyncPutSide::min_period(cfg) * 9 / 8;
  const Time bus_period = core_period * 27 / 10;
  sync::Clock clk_core(sim, "clk_core", {core_period, 4 * bus_period, 0.5, 0});
  sync::Clock clk_bus(sim, "clk_bus", {bus_period, 4 * bus_period + 1111, 0.5, 0});

  fifo::MixedClockFifo bridge(sim, "bridge", cfg, clk_core.out(), clk_bus.out());

  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor put_mon(sim, clk_core.out(), bridge.en_put(),
                          bridge.req_put(), bridge.data_put(), sb);
  // The DMA engine always has a descriptor ready; `full` throttles it.
  bfm::SyncPutDriver dma(sim, "dma", clk_core.out(), bridge.req_put(),
                         bridge.data_put(), bridge.full(), cfg.dm,
                         {1.0, 0x1000}, 0xFFFFFFFF);
  BusPeripheral peripheral(sim, clk_bus.out(), bridge, sb);

  const Time horizon = 4 * bus_period + 2000 * bus_period;
  sim.run_until(horizon);

  const double util =
      static_cast<double>(peripheral.received()) / 2000.0 * 100.0;
  std::printf("SoC clock bridge: %.0f MHz DMA -> %.0f MHz bus peripheral\n",
              sim::period_to_mhz(core_period), sim::period_to_mhz(bus_period));
  std::printf("  descriptors delivered : %llu (%.1f%% of bus cycles)\n",
              static_cast<unsigned long long>(peripheral.received()), util);
  std::printf("  order violations      : %llu\n",
              static_cast<unsigned long long>(sb.errors()));
  std::printf("  overflows/underflows  : %llu/%llu\n",
              static_cast<unsigned long long>(bridge.overflow_count()),
              static_cast<unsigned long long>(bridge.underflow_count()));
  std::printf("  FIFO resident at end  : %u of %u\n", bridge.occupancy(),
              cfg.capacity);
  const bool ok = sb.errors() == 0 && bridge.overflow_count() == 0 &&
                  bridge.underflow_count() == 0 && peripheral.received() > 1000;
  std::printf("  %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
