#include "campaignd/coordinator.hpp"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <set>
#include <thread>
#include <utility>

#include "campaignd/checkpoint.hpp"
#include "campaignd/net.hpp"
#include "campaignd/snapshots.hpp"
#include "campaignd/wire.hpp"
#include "campaignd/workload.hpp"

namespace mts::campaignd {

namespace {

using Clock = std::chrono::steady_clock;

/// SIGTERM/SIGINT land here; every Coordinator checks it each loop turn.
volatile std::sig_atomic_t g_signal_shutdown = 0;
void on_shutdown_signal(int) { g_signal_shutdown = 1; }

/// A work unit: the (remaining) run indices of one contiguous shard of the
/// matrix, plus its retry ledger. As run_done records arrive, completed
/// indices are struck off, so a re-dispatch after a crash ships only the
/// remainder -- completed work is never replayed.
struct Unit {
  std::int64_t id = 0;
  std::vector<std::size_t> indices;
  unsigned failures = 0;          ///< dispatches that ended in worker loss
  std::string last_signature;     ///< previous failure's signature
  Clock::time_point not_before{};  ///< backoff gate for the next dispatch
  json::Value chaos = json::Value::array();  ///< directives riding along
};

/// One worker slot: a process + its connection + its liveness clocks.
struct Slot {
  int index = 0;
  pid_t pid = -1;
  bool alive = false;
  Fd conn;
  FrameDecoder dec;
  bool connected = false;  ///< hello received, job sent
  std::int64_t unit = -1;  ///< dispatched unit id; -1 idle
  std::uint64_t runs_done = 0;      ///< monotone, from heartbeats
  Clock::time_point last_beat{};      ///< last heartbeat (or spawn)
  Clock::time_point last_progress{};  ///< last runs-done increase
  unsigned respawns = 0;
  bool retired = false;
};

/// An accepted connection that has not yet identified itself (hello).
struct PendingConn {
  Fd conn;
  FrameDecoder dec;
};

}  // namespace

// ---------------------------------------------------------------------------
// Outcome rendering + the shared fold
// ---------------------------------------------------------------------------

std::string Coordinator::Outcome::to_json(bool include_host_stats) const {
  sim::CampaignArtifacts a;
  a.configs = configs;
  a.reps = reps;
  a.seed = seed;
  a.results = &results;
  a.report = &report;
  a.metrics = &metrics;
  a.quarantined_configs = &quarantined_configs;
  a.slo = slo;
  a.workers = workers_used;
  a.wall_seconds = wall_seconds;
  return sim::campaign_json(a, include_host_stats);
}

std::string Coordinator::Outcome::health_json(bool include_host_stats) const {
  sim::CampaignArtifacts a;
  a.configs = configs;
  a.reps = reps;
  a.seed = seed;
  a.results = &results;
  a.report = &report;
  a.metrics = &metrics;
  a.quarantined_configs = &quarantined_configs;
  a.slo = slo;
  a.workers = workers_used;
  a.wall_seconds = wall_seconds;
  return sim::campaign_health_json(a, include_host_stats);
}

void fold_records(const JobSpec& job, std::vector<json::Value> records,
                  Coordinator::Outcome& out) {
  // Index the records, first-wins (a re-executed run after a lost record is
  // deterministic, so duplicates are identical anyway), then fold in
  // run-index order -- the engine's Report/timeline contract.
  std::map<std::size_t, const json::Value*> by_index;
  for (const json::Value& rec : records) {
    by_index.emplace(record_run_index(rec), &rec);
  }
  out.configs = job.configs;
  out.reps = job.reps;
  out.seed = job.opt.seed;
  out.slo = job.opt.slo;
  for (const auto& [index, rec] : by_index) {
    (void)index;
    out.results.push_back(run_result_from_json(rec->at("result")));
    // Restore each snapshot into a FRESH object and merge() it in: merge
    // is the engine's reduction (counters add, gauges max, entries append
    // under the cap); restoring straight into the accumulator would give
    // replace semantics instead.
    if (const json::Value* v = rec->find("report")) {
      sim::Report tmp;
      report_from_json(*v, tmp);
      out.report.merge(tmp);
    }
    if (const json::Value* v = rec->find("registry")) {
      metrics::Registry tmp;
      registry_from_json(*v, tmp);
      out.metrics.merge(tmp);
    }
    if (const json::Value* v = rec->find("coverage")) {
      metrics::Coverage tmp;
      coverage_from_json(*v, tmp);
      out.coverage.merge(tmp);
    }
    if (const json::Value* v = rec->find("timeline")) {
      metrics::TimeSeriesStore tmp;
      timeline_from_json(*v, tmp);
      out.timeline.merge(tmp);
    }
  }
  sim::append_campaign_manifests(out.results, job.reps, job.opt.slo,
                                 out.report);
}

// ---------------------------------------------------------------------------
// The sequential in-process oracle
// ---------------------------------------------------------------------------

void run_local(const JobSpec& job, Coordinator::Outcome& out) {
  const auto t0 = Clock::now();
  std::unique_ptr<Workload> wl = make_workload(job.workload, job.params);
  const sim::Campaign::Body body = wl->body();
  sim::RunShard shard(job.opt);

  std::vector<std::size_t> targets = job.run_filter;
  if (targets.empty()) {
    for (std::size_t i = 0; i < job.configs * job.reps; ++i) {
      targets.push_back(i);
    }
  } else {
    std::sort(targets.begin(), targets.end());
  }

  std::vector<std::uint32_t> config_failures(job.configs, 0);
  std::vector<json::Value> records;
  for (std::size_t index : targets) {
    sim::RunSpec spec;
    spec.index = index;
    spec.config = job.reps > 0 ? index / job.reps : 0;
    spec.rep = job.reps > 0 ? index % job.reps : 0;
    spec.seed = sim::campaign_run_seed(job.opt.seed, index);

    if (job.opt.quarantine_after > 0 && spec.config < config_failures.size() &&
        config_failures[spec.config] >= job.opt.quarantine_after) {
      sim::RunResult r;
      r.index = index;
      r.seed = spec.seed;
      r.ok = false;
      r.attempts = 0;
      r.classification = "quarantined";
      r.error = "config " + std::to_string(spec.config) +
                " quarantined after " +
                std::to_string(job.opt.quarantine_after) + " failed runs";
      json::Value rec = json::Value::object();
      rec.set("result", run_result_to_json(r));
      records.push_back(std::move(rec));
      continue;
    }

    shard.registry.clear();
    wl->begin_run();
    sim::RunResult r;
    sim::Report report;
    metrics::TimeSeriesStore timeline;
    sim::execute_run(shard, job.opt, spec, 0, body, r, &report, &timeline);
    if (!r.ok) {
      if (job.opt.quarantine_after > 0 &&
          spec.config < config_failures.size()) {
        ++config_failures[spec.config];
      }
      if (!job.opt.repro_dir.empty()) {
        sim::write_repro_bundle(job.opt.repro_dir, job.opt.seed, job.configs,
                                job.reps, spec, r);
      }
    }
    records.push_back(make_run_record(r, report, shard.registry,
                                      wl->coverage(), timeline));
  }
  fold_records(job, std::move(records), out);
  for (std::size_t c = 0; c < config_failures.size(); ++c) {
    if (job.opt.quarantine_after > 0 &&
        config_failures[c] >= job.opt.quarantine_after) {
      out.quarantined_configs.push_back(c);
    }
  }
  out.workers_used = 1;
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

struct Coordinator::Impl {
  Coordinator& self;
  const JobSpec& job;
  const CoordinatorOptions& opt;

  Listener listener;
  std::vector<Slot> slots;
  std::vector<PendingConn> pendings;
  std::map<std::int64_t, Unit> units;  ///< incomplete units
  std::deque<std::int64_t> queue;      ///< undispatched unit ids
  std::map<std::size_t, json::Value> records;  ///< run index -> record
  std::size_t total_targets = 0;
  std::vector<std::uint32_t> config_failures;
  std::set<std::size_t> quarantined_configs;
  std::vector<std::int64_t> quarantined_units;
  std::size_t since_checkpoint = 0;
  std::string digest;

  Impl(Coordinator& c, const JobSpec& j, const CoordinatorOptions& o)
      : self(c), job(j), opt(o) {}

  void emit(const std::string& kind, int worker = -1, long pid = -1,
            std::int64_t unit = -1, const std::string& detail = "") {
    if (!opt.on_event) return;
    Event e;
    e.kind = kind;
    e.worker = worker;
    e.pid = pid;
    e.unit = unit;
    e.detail = detail;
    opt.on_event(e);
  }

  bool want_shutdown() const {
    return self.shutdown_.load() || g_signal_shutdown != 0;
  }

  // -- setup ----------------------------------------------------------------

  void setup() {
    digest = job_digest(job.configs, job.reps, job.opt, job.workload,
                        job.params.dump());
    if (job.opt.quarantine_after > 0) {
      config_failures.assign(job.configs, 0);
    }

    std::vector<std::size_t> targets = job.run_filter;
    if (targets.empty()) {
      for (std::size_t i = 0; i < job.configs * job.reps; ++i) {
        targets.push_back(i);
      }
    } else {
      std::sort(targets.begin(), targets.end());
      targets.erase(std::unique(targets.begin(), targets.end()),
                    targets.end());
      for (std::size_t t : targets) {
        if (t >= job.configs * job.reps) {
          throw CoordinatorError("run_filter index " + std::to_string(t) +
                                 " outside the " +
                                 std::to_string(job.configs * job.reps) +
                                 "-run matrix");
        }
      }
    }
    total_targets = targets.size();

    if (opt.resume && !opt.checkpoint_path.empty() &&
        ::access(opt.checkpoint_path.c_str(), F_OK) == 0) {
      Checkpoint cp = load_checkpoint(opt.checkpoint_path, digest);
      for (json::Value& rec : cp.runs) {
        const std::size_t idx = record_run_index(rec);
        records.emplace(idx, std::move(rec));
        // Replayed failure accounting so config quarantine resumes where
        // it left off (signature: same gate decisions as the first life).
        note_result_for_quarantine(idx);
      }
    }

    std::vector<std::size_t> remaining;
    for (std::size_t t : targets) {
      if (records.find(t) == records.end()) remaining.push_back(t);
    }
    if (remaining.empty()) return;  // resume of a finished campaign

    const unsigned workers = opt.workers == 0 ? 1 : opt.workers;
    std::size_t unit_size = opt.unit_size;
    if (unit_size == 0) {
      unit_size = (remaining.size() + 4 * workers - 1) / (4 * workers);
      if (unit_size == 0) unit_size = 1;
    }
    std::int64_t next_id = 0;
    for (std::size_t at = 0; at < remaining.size(); at += unit_size) {
      Unit u;
      u.id = next_id++;
      const std::size_t end = std::min(at + unit_size, remaining.size());
      u.indices.assign(remaining.begin() + static_cast<std::ptrdiff_t>(at),
                       remaining.begin() + static_cast<std::ptrdiff_t>(end));
      attach_chaos(u);
      queue.push_back(u.id);
      units.emplace(u.id, std::move(u));
    }

    listener = listen_local();
    const unsigned fleet = static_cast<unsigned>(
        std::min<std::size_t>(workers, units.size()));
    slots.resize(fleet);
    for (unsigned i = 0; i < fleet; ++i) {
      slots[i].index = static_cast<int>(i);
      spawn(slots[i]);
    }
  }

  void attach_chaos(Unit& u) {
    if (!opt.chaos.is_array()) return;
    for (const json::Value& d : opt.chaos.as_array()) {
      const std::size_t at = d.at("at_run").as_size();
      if (std::find(u.indices.begin(), u.indices.end(), at) !=
          u.indices.end()) {
        u.chaos.push(d);
      }
    }
  }

  /// Updates the config-quarantine ledger from a stored record.
  void note_result_for_quarantine(std::size_t idx) {
    if (job.opt.quarantine_after == 0 || job.reps == 0) return;
    const json::Value& rec = records.at(idx);
    const bool ok = rec.at("result").get_bool("ok", false);
    if (ok) return;
    const std::size_t config = idx / job.reps;
    if (config >= config_failures.size()) return;
    // Quarantine-skipped cells (attempts == 0) never count as failures in
    // the engine either -- they were not executed.
    if (rec.at("result").get_u64("attempts", 1) == 0) return;
    if (++config_failures[config] >= job.opt.quarantine_after) {
      quarantined_configs.insert(config);
    }
  }

  // -- process management ---------------------------------------------------

  void spawn(Slot& s) {
    std::vector<std::string> argv_s = opt.worker_cmd;
    if (argv_s.empty()) {
      argv_s = {"/proc/self/exe", "worker", "--port", "{port}"};
    }
    const std::string port = std::to_string(listener.port);
    for (std::string& a : argv_s) {
      const std::size_t at = a.find("{port}");
      if (at != std::string::npos) a.replace(at, 6, port);
    }
    std::vector<char*> argv;
    argv.reserve(argv_s.size() + 1);
    for (std::string& a : argv_s) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      throw CoordinatorError(std::string("fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    s.pid = pid;
    s.alive = true;
    s.connected = false;
    s.unit = -1;
    s.runs_done = 0;
    s.last_beat = s.last_progress = Clock::now();
    s.conn.reset();
    s.dec = FrameDecoder();
    emit("worker_spawned", s.index, static_cast<long>(pid));
  }

  /// Reaps an exiting worker with a short grace period, translating its
  /// exit status into a failure signature. "disconnect" when the status is
  /// not available in time (fail_slot will SIGKILL and reap for real).
  std::string reap_signature(Slot& s) {
    int status = 0;
    for (int i = 0; i < 50; ++i) {
      const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
      if (r == s.pid) {
        s.alive = false;
        if (WIFEXITED(status)) {
          return "exit:" + std::to_string(WEXITSTATUS(status));
        }
        if (WIFSIGNALED(status)) {
          return "signal:" + std::to_string(WTERMSIG(status));
        }
        return "disconnect";
      }
      if (r < 0) {
        s.alive = false;
        return "disconnect";
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return "disconnect";
  }

  void kill_and_reap(Slot& s) {
    if (!s.alive || s.pid <= 0) return;
    ::kill(s.pid, SIGKILL);
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(s.pid, &status, 0);
    } while (r < 0 && errno == EINTR);
    s.alive = false;
  }

  /// The single worker-failure path: kill/reap, requeue its unit with the
  /// failure signature, respawn or retire the slot.
  void fail_slot(Slot& s, const std::string& base_signature) {
    const std::int64_t uid = s.unit;
    std::string sig = base_signature;
    if (uid >= 0) {
      const auto it = units.find(uid);
      if (it != units.end() && !it->second.indices.empty()) {
        // The first incomplete run pins WHERE the unit keeps dying: the
        // identical-signature-twice quarantine test keys on it.
        sig += "@run" + std::to_string(it->second.indices.front());
      }
    }
    kill_and_reap(s);
    s.conn.reset();
    s.dec = FrameDecoder();
    s.connected = false;
    s.unit = -1;
    emit("worker_lost", s.index, static_cast<long>(s.pid), uid, sig);
    if (uid >= 0) requeue(uid, sig);
    if (s.respawns >= opt.respawn_limit) {
      s.retired = true;
      emit("degraded", s.index, static_cast<long>(s.pid), -1,
           "worker slot retired after " + std::to_string(s.respawns) +
               " respawns");
    } else {
      ++s.respawns;
      spawn(s);
    }
  }

  bool all_retired() const {
    for (const Slot& s : slots) {
      if (!s.retired) return false;
    }
    return !slots.empty();
  }

  // -- unit lifecycle -------------------------------------------------------

  void requeue(std::int64_t uid, const std::string& signature) {
    const auto it = units.find(uid);
    if (it == units.end()) return;
    Unit& u = it->second;
    if (u.indices.empty()) {
      // Every run's record arrived before the worker died; the unit is
      // effectively complete.
      units.erase(it);
      return;
    }
    ++u.failures;
    const bool identical =
        u.failures > 1 && !u.last_signature.empty() &&
        signature == u.last_signature;
    if (identical || u.failures > opt.unit_retries) {
      quarantine_unit(u, signature,
                      identical ? "failed identically twice"
                                : "retry budget exhausted");
      units.erase(it);
      return;
    }
    u.last_signature = signature;
    unsigned shift = u.failures - 1;
    if (shift > 20) shift = 20;
    const std::int64_t backoff =
        std::min<std::int64_t>(static_cast<std::int64_t>(opt.backoff_initial_ms)
                                   << shift,
                               opt.backoff_max_ms);
    u.not_before = Clock::now() + std::chrono::milliseconds(backoff);
    queue.push_back(uid);
    emit("unit_requeued", -1, -1, uid,
         signature + " (attempt " + std::to_string(u.failures + 1) +
             ", backoff " + std::to_string(backoff) + "ms)");
  }

  /// Records the unit's remaining runs as failed ("quarantined") -- the
  /// same surrender the engine performs per config, applied per unit when
  /// workers keep dying on it.
  void quarantine_unit(Unit& u, const std::string& signature,
                       const std::string& why) {
    for (std::size_t index : u.indices) {
      if (records.find(index) != records.end()) continue;
      sim::RunSpec spec;
      spec.index = index;
      spec.config = job.reps > 0 ? index / job.reps : 0;
      spec.rep = job.reps > 0 ? index % job.reps : 0;
      spec.seed = sim::campaign_run_seed(job.opt.seed, index);
      sim::RunResult r;
      r.index = index;
      r.seed = spec.seed;
      r.ok = false;
      r.attempts = 0;
      r.classification = "quarantined";
      r.error = "unit " + std::to_string(u.id) + " quarantined (" + why +
                "): " + signature;
      r.error_type = "campaignd::WorkerFailure";
      if (!job.opt.repro_dir.empty()) {
        sim::write_repro_bundle(job.opt.repro_dir, job.opt.seed, job.configs,
                                job.reps, spec, r);
      }
      json::Value rec = json::Value::object();
      rec.set("result", run_result_to_json(r));
      records.emplace(index, std::move(rec));
      ++since_checkpoint;
    }
    quarantined_units.push_back(u.id);
    emit("unit_quarantined", -1, -1, u.id, why + ": " + signature);
    maybe_checkpoint();
  }

  /// Strikes quarantined-config runs from a unit before dispatch,
  /// synthesizing their skip records (engine gate parity).
  void strip_quarantined_configs(Unit& u) {
    if (job.opt.quarantine_after == 0 || quarantined_configs.empty() ||
        job.reps == 0) {
      return;
    }
    std::vector<std::size_t> keep;
    for (std::size_t index : u.indices) {
      const std::size_t config = index / job.reps;
      if (quarantined_configs.find(config) == quarantined_configs.end()) {
        keep.push_back(index);
        continue;
      }
      if (records.find(index) != records.end()) continue;
      sim::RunResult r;
      r.index = index;
      r.seed = sim::campaign_run_seed(job.opt.seed, index);
      r.ok = false;
      r.attempts = 0;
      r.classification = "quarantined";
      r.error = "config " + std::to_string(config) + " quarantined after " +
                std::to_string(job.opt.quarantine_after) + " failed runs";
      json::Value rec = json::Value::object();
      rec.set("result", run_result_to_json(r));
      records.emplace(index, std::move(rec));
      ++since_checkpoint;
    }
    u.indices.swap(keep);
  }

  void dispatch_ready() {
    const auto now = Clock::now();
    for (Slot& s : slots) {
      if (s.retired || !s.connected || s.unit >= 0) continue;
      // Earliest-created unit whose backoff has elapsed.
      std::int64_t chosen = -1;
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        const auto uit = units.find(*it);
        if (uit == units.end()) {
          it = queue.erase(it);
          if (it == queue.end()) break;
          --it;
          continue;
        }
        if (uit->second.not_before <= now) {
          chosen = *it;
          queue.erase(it);
          break;
        }
      }
      if (chosen < 0) return;
      Unit& u = units.at(chosen);
      strip_quarantined_configs(u);
      if (u.indices.empty()) {
        units.erase(chosen);
        continue;
      }
      json::Value m = json::Value::object();
      m.set("type", json::Value("unit"));
      m.set("unit", json::Value::number_i64(u.id));
      json::Value idx = json::Value::array();
      for (std::size_t i : u.indices) idx.push(json::Value::number_size(i));
      m.set("indices", std::move(idx));
      if (u.chaos.size() > 0) m.set("chaos", u.chaos);
      s.unit = u.id;
      s.last_progress = Clock::now();
      try {
        send_frame(s, m);
      } catch (const NetError&) {
        fail_slot(s, "disconnect");
        continue;
      }
      emit("unit_dispatched", s.index, static_cast<long>(s.pid), u.id,
           std::to_string(u.indices.size()) + " runs");
    }
  }

  // -- wire -----------------------------------------------------------------

  void send_frame(Slot& s, const json::Value& m) {
    send_all(s.conn, encode_frame(m.dump()));
  }

  json::Value job_message() const {
    json::Value m = json::Value::object();
    m.set("type", json::Value("job"));
    m.set("workload", json::Value(job.workload));
    m.set("params", job.params);
    m.set("configs", json::Value::number_size(job.configs));
    m.set("reps", json::Value::number_size(job.reps));
    m.set("options", options_to_json(job.opt));
    m.set("heartbeat_interval_ms",
          json::Value::number_i64(opt.heartbeat_interval_ms));
    return m;
  }

  /// Handles one decoded message from a connected slot. Returns false when
  /// the slot failed and must not be read further this turn.
  bool handle_message(Slot& s, const json::Value& m) {
    const std::string type = m.at("type").as_string();
    const auto now = Clock::now();
    if (type == "heartbeat") {
      s.last_beat = now;
      const std::uint64_t done = m.get_u64("runs_done", 0);
      if (done > s.runs_done) {
        s.runs_done = done;
        s.last_progress = now;
      }
      return true;
    }
    if (type == "run_done") {
      s.last_beat = s.last_progress = now;
      handle_record(s, m);
      return true;
    }
    if (type == "unit_done") {
      s.last_beat = s.last_progress = now;
      const std::int64_t uid = m.at("unit").as_i64();
      units.erase(uid);
      if (s.unit == uid) s.unit = -1;
      return true;
    }
    if (type == "error") {
      fail_slot(s, "error:" + m.get_string("message", "unknown"));
      return false;
    }
    fail_slot(s, "protocol:" + type);
    return false;
  }

  void handle_record(Slot& s, const json::Value& m) {
    const json::Value& rec = m.at("record");
    const std::size_t idx = record_run_index(rec);
    const std::int64_t uid = m.at("unit").as_i64();
    const auto uit = units.find(uid);
    if (uit != units.end()) {
      auto& ind = uit->second.indices;
      ind.erase(std::remove(ind.begin(), ind.end(), idx), ind.end());
    }
    if (records.find(idx) == records.end()) {
      records.emplace(idx, rec);
      note_result_for_quarantine(idx);
      ++since_checkpoint;
      emit("run_done", s.index, static_cast<long>(s.pid), uid,
           "run " + std::to_string(idx));
      maybe_checkpoint();
    }
  }

  /// Drains one readable slot connection. Returns false when the slot
  /// failed (EOF, framing, protocol) and was recycled.
  bool read_slot(Slot& s) {
    char buf[65536];
    std::size_t n = 0;
    try {
      n = recv_some(s.conn, buf, sizeof buf);
    } catch (const NetError&) {
      fail_slot(s, reap_signature(s));
      return false;
    }
    if (n == 0) {
      // EOF: reap first so the signature carries the real exit status
      // (signal:9 for a chaos kill, exit:3 for a dropped connection, ...).
      fail_slot(s, reap_signature(s));
      return false;
    }
    std::vector<std::string> payloads;
    try {
      s.dec.feed(buf, n, payloads);
    } catch (const FramingError&) {
      fail_slot(s, "framing-error");
      return false;
    }
    for (const std::string& p : payloads) {
      json::Value m;
      try {
        m = json::parse(p);
      } catch (const json::ProtocolError&) {
        fail_slot(s, "framing-error");
        return false;
      }
      try {
        if (!handle_message(s, m)) return false;
      } catch (const json::ProtocolError&) {
        fail_slot(s, "framing-error");
        return false;
      }
    }
    return true;
  }

  void read_pending(std::size_t pi) {
    PendingConn& p = pendings[pi];
    char buf[4096];
    std::size_t n = 0;
    try {
      n = recv_some(p.conn, buf, sizeof buf);
    } catch (const NetError&) {
      n = 0;
    }
    if (n == 0) {
      pendings.erase(pendings.begin() + static_cast<std::ptrdiff_t>(pi));
      return;
    }
    std::vector<std::string> payloads;
    try {
      p.dec.feed(buf, n, payloads);
    } catch (const FramingError&) {
      pendings.erase(pendings.begin() + static_cast<std::ptrdiff_t>(pi));
      return;
    }
    if (payloads.empty()) return;
    long pid = -1;
    try {
      const json::Value m = json::parse(payloads.front());
      if (m.at("type").as_string() == "hello") pid = m.at("pid").as_i64();
    } catch (const json::ProtocolError&) {
    }
    PendingConn conn = std::move(p);
    pendings.erase(pendings.begin() + static_cast<std::ptrdiff_t>(pi));
    if (pid < 0) return;  // not a worker; drop
    for (Slot& s : slots) {
      if (s.alive && !s.connected && static_cast<long>(s.pid) == pid) {
        s.conn = std::move(conn.conn);
        s.dec = std::move(conn.dec);
        s.connected = true;
        s.last_beat = s.last_progress = Clock::now();
        try {
          send_frame(s, job_message());
        } catch (const NetError&) {
          fail_slot(s, "disconnect");
          return;
        }
        emit("worker_connected", s.index, pid);
        return;
      }
    }
    // Unknown pid (e.g. a respawned predecessor's late connect): drop.
  }

  void check_deadlines() {
    const auto now = Clock::now();
    for (Slot& s : slots) {
      if (s.retired || !s.alive) continue;
      if (!s.connected) {
        // Spawn-to-hello grace: generous, covers exec + connect.
        const auto grace = std::chrono::milliseconds(
            std::max(opt.heartbeat_timeout_ms, 10000));
        if (now - s.last_beat > grace) fail_slot(s, "spawn-timeout");
        continue;
      }
      if (now - s.last_beat >
          std::chrono::milliseconds(opt.heartbeat_timeout_ms)) {
        fail_slot(s, "heartbeat-timeout");
        continue;
      }
      if (s.unit >= 0 &&
          now - s.last_progress >
              std::chrono::milliseconds(opt.progress_timeout_ms)) {
        fail_slot(s, "progress-timeout");
      }
    }
  }

  // -- checkpointing --------------------------------------------------------

  void maybe_checkpoint() {
    if (opt.checkpoint_path.empty() || opt.checkpoint_every == 0) return;
    if (since_checkpoint < opt.checkpoint_every) return;
    write_now(false);
  }

  void write_now(bool complete) {
    if (opt.checkpoint_path.empty()) return;
    Checkpoint cp;
    cp.configs = job.configs;
    cp.reps = job.reps;
    cp.digest = digest;
    cp.complete = complete;
    for (const auto& [idx, rec] : records) {
      (void)idx;
      cp.runs.push_back(rec);
    }
    write_checkpoint(opt.checkpoint_path, cp);
    since_checkpoint = 0;
    emit("checkpoint_written", -1, -1, -1,
         opt.checkpoint_path + " (" + std::to_string(cp.runs.size()) +
             " runs)");
  }

  // -- main loop ------------------------------------------------------------

  /// Returns true when interrupted (graceful shutdown), false on
  /// completion. Throws CoordinatorError when the fleet fully retired with
  /// work outstanding (after checkpointing).
  bool loop() {
    while (records.size() < total_targets) {
      if (want_shutdown()) return true;
      if (all_retired()) {
        write_now(false);
        throw CoordinatorError(
            "every worker slot retired with " +
            std::to_string(total_targets - records.size()) +
            " runs outstanding" +
            (opt.checkpoint_path.empty()
                 ? ""
                 : "; checkpoint written to " + opt.checkpoint_path));
      }
      dispatch_ready();
      if (records.size() >= total_targets) break;
      poll_once();
      check_deadlines();
    }
    return false;
  }

  void poll_once() {
    std::vector<pollfd> fds;
    std::vector<int> kinds;   // 0 = listener, 1 = pending, 2 = slot
    std::vector<std::size_t> owners;
    fds.push_back({listener.fd.get(), POLLIN, 0});
    kinds.push_back(0);
    owners.push_back(0);
    for (std::size_t i = 0; i < pendings.size(); ++i) {
      fds.push_back({pendings[i].conn.get(), POLLIN, 0});
      kinds.push_back(1);
      owners.push_back(i);
    }
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].connected) continue;
      fds.push_back({slots[i].conn.get(), POLLIN, 0});
      kinds.push_back(2);
      owners.push_back(i);
    }
    const int rc =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 20);
    if (rc <= 0) return;  // timeout or EINTR: deadline checks run next
    // Snapshot the readiness, then handle; handlers mutate pendings/slots,
    // so pending connections are matched by fd, slots by index.
    for (std::size_t f = 0; f < fds.size(); ++f) {
      if ((fds[f].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (kinds[f] == 0) {
        try {
          PendingConn p;
          p.conn = accept_conn(listener.fd);
          pendings.push_back(std::move(p));
        } catch (const NetError&) {
        }
        continue;
      }
      if (kinds[f] == 1) {
        for (std::size_t i = 0; i < pendings.size(); ++i) {
          if (pendings[i].conn.get() == fds[f].fd) {
            read_pending(i);
            break;
          }
        }
        continue;
      }
      Slot& s = slots[owners[f]];
      if (s.connected && s.conn.get() == fds[f].fd) read_slot(s);
    }
  }

  // -- teardown -------------------------------------------------------------

  void teardown(bool interrupted) {
    json::Value bye = json::Value::object();
    bye.set("type", json::Value("shutdown"));
    for (Slot& s : slots) {
      if (s.connected) {
        try {
          send_frame(s, bye);
        } catch (const NetError&) {
        }
      }
      s.conn.reset();
    }
    // Grace: a worker exits on the shutdown message or the EOF from the
    // close above. Stragglers get SIGKILL.
    for (Slot& s : slots) {
      if (!s.alive || s.pid <= 0) continue;
      bool reaped = false;
      for (int i = 0; i < 50 && !reaped; ++i) {
        int status = 0;
        const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
        if (r == s.pid || r < 0) {
          reaped = true;
          s.alive = false;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      if (!reaped) kill_and_reap(s);
    }
    write_now(!interrupted && records.size() >= total_targets);
    emit("shutdown", -1, -1, -1,
         interrupted ? "interrupted" : "complete");
  }
};

Coordinator::Coordinator(JobSpec job, CoordinatorOptions opt)
    : job_(std::move(job)), opt_(std::move(opt)) {}

Coordinator::~Coordinator() = default;

void Coordinator::install_signal_handlers() {
  struct sigaction sa {};
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: poll() must EINTR out
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

void Coordinator::run(Outcome& out) {
  const auto t0 = Clock::now();
  Impl impl(*this, job_, opt_);
  impl.setup();
  bool interrupted = false;
  try {
    interrupted = impl.loop();
  } catch (...) {
    impl.teardown(true);
    throw;
  }
  impl.teardown(interrupted);

  std::vector<json::Value> recs;
  recs.reserve(impl.records.size());
  for (auto& [idx, rec] : impl.records) {
    (void)idx;
    recs.push_back(std::move(rec));
  }
  fold_records(job_, std::move(recs), out);
  out.quarantined_configs.assign(impl.quarantined_configs.begin(),
                                 impl.quarantined_configs.end());
  out.quarantined_units = impl.quarantined_units;
  out.interrupted = interrupted;
  out.workers_used = opt_.workers == 0 ? 1 : opt_.workers;
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace mts::campaignd
