// Burst-mode asynchronous machine interpreter.
//
// The paper's ObtainPutToken (OPT) controller is "implemented as a
// Burst-Mode asynchronous machine" synthesized with Minimalist (Fig. 10a).
// We replace the synthesized gate implementation with an interpreter that
// executes a burst-mode specification directly:
//
//   - a machine sits in a state until EVERY edge of one outgoing
//     transition's input burst has occurred (in any order),
//   - it then emits the transition's output burst and moves on.
//
// Fundamental-mode operation is assumed (the environment waits for outputs
// before producing new inputs); an input edge that belongs to no outgoing
// transition of the current state is reported as "bm-illegal-input", which
// turns specification violations into test failures instead of silent
// misbehaviour.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::ctrl {

/// One signal edge inside a burst: signal index (into the machine's input
/// or output list) and direction.
struct BmEdge {
  unsigned signal = 0;
  bool rising = true;
};

struct BmTransition {
  unsigned from = 0;
  std::vector<BmEdge> in_burst;   ///< all must occur to trigger
  std::vector<BmEdge> out_burst;  ///< emitted on firing
  unsigned to = 0;
};

/// A validated burst-mode specification (shared by all machine instances).
struct BmSpec {
  std::string name;
  unsigned num_states = 0;
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<BmTransition> transitions;

  /// Throws ConfigError on malformed specs (bad indices, empty bursts,
  /// non-deterministic bursts from one state sharing a common edge).
  void validate() const;
};

/// The machine's complete dynamic state: current state plus per-transition
/// burst progress. BurstModeMachine holds one and the model checker
/// (src/mc) steps copies of it directly, so both execute the identical
/// firing rule via bm_step().
struct BmCore {
  unsigned state = 0;
  /// progress[t] = bitmask of satisfied edges of transitions leaving state.
  std::vector<std::uint32_t> progress;

  BmCore() = default;
  BmCore(const BmSpec& spec, unsigned initial_state)
      : state(initial_state), progress(spec.transitions.size(), 0) {}

  bool operator==(const BmCore& o) const {
    return state == o.state && progress == o.progress;
  }
};

/// Outcome of feeding one input edge into a core.
struct BmStep {
  bool matched = false;        ///< edge belongs to some outgoing burst
  bool fired = false;          ///< a transition's burst completed
  std::size_t transition = 0;  ///< index into spec.transitions when fired
};

/// Applies one input edge to `core`. On firing, the caller emits the
/// transition's out_burst itself: the machine writes wires, the checker
/// enqueues pending flips. !matched && !fired is the "bm-illegal-input"
/// condition.
BmStep bm_step(const BmSpec& spec, BmCore& core, unsigned signal, bool rising);

class BurstModeMachine {
 public:
  /// `inputs`/`outputs` map 1:1 to the spec's signal lists and must outlive
  /// the machine. `output_delay` is the input-edge-to-output latency of the
  /// (conceptually) synthesized controller.
  BurstModeMachine(sim::Simulation& sim, std::string instance, const BmSpec& spec,
                   std::vector<sim::Wire*> inputs, std::vector<sim::Wire*> outputs,
                   sim::Time output_delay, unsigned initial_state);

  BurstModeMachine(const BurstModeMachine&) = delete;
  BurstModeMachine& operator=(const BurstModeMachine&) = delete;

  unsigned state() const noexcept { return core_.state; }
  std::uint64_t firings() const noexcept { return firings_; }

 private:
  void on_input_edge(unsigned signal, bool rising);

  sim::Simulation& sim_;
  std::string instance_;
  const BmSpec& spec_;
  std::vector<sim::Wire*> inputs_;
  std::vector<sim::Wire*> outputs_;
  sim::Time output_delay_;
  BmCore core_;
  std::uint64_t firings_ = 0;
};

}  // namespace mts::ctrl
