file(REMOVE_RECURSE
  "CMakeFiles/example_multi_domain_pipeline.dir/multi_domain_pipeline.cpp.o"
  "CMakeFiles/example_multi_domain_pipeline.dir/multi_domain_pipeline.cpp.o.d"
  "example_multi_domain_pipeline"
  "example_multi_domain_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_domain_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
