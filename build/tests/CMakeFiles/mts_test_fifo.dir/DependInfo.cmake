
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fifo/test_ablation.cpp" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_ablation.cpp.o" "gcc" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_ablation.cpp.o.d"
  "/root/repo/tests/fifo/test_area.cpp" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_area.cpp.o" "gcc" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_area.cpp.o.d"
  "/root/repo/tests/fifo/test_async_async.cpp" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_async_async.cpp.o" "gcc" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_async_async.cpp.o.d"
  "/root/repo/tests/fifo/test_async_sync.cpp" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_async_sync.cpp.o" "gcc" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_async_sync.cpp.o.d"
  "/root/repo/tests/fifo/test_async_timing.cpp" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_async_timing.cpp.o" "gcc" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_async_timing.cpp.o.d"
  "/root/repo/tests/fifo/test_baseline.cpp" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_baseline.cpp.o.d"
  "/root/repo/tests/fifo/test_cell_parts.cpp" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_cell_parts.cpp.o" "gcc" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_cell_parts.cpp.o.d"
  "/root/repo/tests/fifo/test_detectors.cpp" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_detectors.cpp.o" "gcc" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_detectors.cpp.o.d"
  "/root/repo/tests/fifo/test_detectors_property.cpp" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_detectors_property.cpp.o" "gcc" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_detectors_property.cpp.o.d"
  "/root/repo/tests/fifo/test_mixed_clock.cpp" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_mixed_clock.cpp.o" "gcc" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_mixed_clock.cpp.o.d"
  "/root/repo/tests/fifo/test_protocol_outcomes.cpp" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_protocol_outcomes.cpp.o" "gcc" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_protocol_outcomes.cpp.o.d"
  "/root/repo/tests/fifo/test_sync_async.cpp" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_sync_async.cpp.o" "gcc" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_sync_async.cpp.o.d"
  "/root/repo/tests/fifo/test_timing.cpp" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_timing.cpp.o" "gcc" "tests/CMakeFiles/mts_test_fifo.dir/fifo/test_timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lip/CMakeFiles/mts_lip.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mts_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/fifo/CMakeFiles/mts_fifo.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/mts_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/mts_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/bfm/CMakeFiles/mts_bfm.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/mts_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mts_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
