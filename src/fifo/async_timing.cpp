#include "fifo/async_timing.hpp"

#include "gates/combinational.hpp"

namespace mts::fifo {

sim::Time async_put_cycle_estimate(const FifoConfig& cfg) {
  const gates::DelayModel& dm = cfg.dm;
  const unsigned n = cfg.capacity;

  // One direction of the handshake (req edge to ack edge at the sender):
  sim::Time half = 0;
  half += dm.broadcast(n, 1);                      // put_req to every cell
  half += dm.celement(3);                          // asymmetric C-element
  half += dm.broadcast(1, cfg.width);              // we load (latch enable)
  half += gates::tree_depth(n, 2) * dm.gate(2);    // acknowledge OR tree
  half += dm.gate(2, 4);                           // global ack wire/buffer
  half += dm.gate(1);                              // environment reaction

  return 2 * half;  // set phase + reset phase
}

double async_put_mops_estimate(const FifoConfig& cfg) {
  const sim::Time cycle = async_put_cycle_estimate(cfg);
  return cycle == 0 ? 0.0 : 1e6 / static_cast<double>(cycle);
}

sim::Time async_put_data_margin(const FifoConfig& cfg) {
  const gates::DelayModel& dm = cfg.dm;
  const unsigned n = cfg.capacity;

  // Request edge to the cell's we edge, traversed once in each handshake
  // direction: broadcast to all cells, asymmetric C-element, we buffering.
  const sim::Time req_to_we =
      dm.broadcast(n, 1) + dm.celement(3) + dm.broadcast(1, cfg.width);

  return dm.gate(1)                             // sender's req+ bundling gate
         + req_to_we                            // req+ -> we+ (latch opens)
         + gates::tree_depth(n, 2) * dm.gate(2) // we+ -> ack tree
         + dm.gate(2, 4)                        // global put_ack buffer
         + dm.gate(1)                           // sender's req- reaction
         + req_to_we;                           // req- -> we- (latch closes)
}

}  // namespace mts::fifo
