// Umbrella header for the latency-insensitive protocol substrate and the
// mixed-timing relay stations.
#pragma once

#include "lip/chain.hpp"          // IWYU pragma: export
#include "lip/micropipeline.hpp"  // IWYU pragma: export
#include "lip/relay_station.hpp"  // IWYU pragma: export
#include "lip/relay_station_structural.hpp"  // IWYU pragma: export
#include "lip/stations.hpp"       // IWYU pragma: export
