#include "ctrl/dot.hpp"

namespace mts::ctrl {

namespace {
std::string edge_label(const std::vector<BmEdge>& burst,
                       const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t i = 0; i < burst.size(); ++i) {
    if (i != 0) out += ", ";
    out += names[burst[i].signal];
    out += burst[i].rising ? '+' : '-';
  }
  return out.empty() ? "." : out;
}
}  // namespace

std::string to_dot(const BmSpec& spec) {
  std::string out = "digraph \"" + spec.name + "\" {\n  rankdir=LR;\n";
  for (unsigned s = 0; s < spec.num_states; ++s) {
    out += "  S" + std::to_string(s) + " [shape=circle];\n";
  }
  for (const BmTransition& t : spec.transitions) {
    out += "  S" + std::to_string(t.from) + " -> S" + std::to_string(t.to) +
           " [label=\"" + edge_label(t.in_burst, spec.input_names) + " / " +
           edge_label(t.out_burst, spec.output_names) + "\"];\n";
  }
  out += "}\n";
  return out;
}

std::string to_dot(const PetriNet& net) {
  std::string out = "digraph \"" + net.name + "\" {\n  rankdir=LR;\n";
  std::vector<bool> marked(net.num_places, false);
  for (unsigned p : net.initial_marking) marked[p] = true;
  for (unsigned p = 0; p < net.num_places; ++p) {
    out += "  p" + std::to_string(p) + " [shape=" +
           (marked[p] ? "doublecircle" : "circle") + ", label=\"p" +
           std::to_string(p) + "\"];\n";
  }
  for (std::size_t i = 0; i < net.transitions.size(); ++i) {
    const PnTransition& t = net.transitions[i];
    out += "  t" + std::to_string(i) + " [shape=box, label=\"" + t.label +
           "\"" + (t.is_input ? ", style=filled, fillcolor=lightgray" : "") +
           "];\n";
    for (unsigned p : t.pre) {
      out += "  p" + std::to_string(p) + " -> t" + std::to_string(i) + ";\n";
    }
    for (unsigned p : t.post) {
      out += "  t" + std::to_string(i) + " -> p" + std::to_string(p) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace mts::ctrl
