// Netlist: an arena that owns the wires and primitive instances of one
// structural component.
//
// FIFO components instantiate dozens of wires and gates; holding each as a
// named member would bloat every class. A Netlist owns them with stable
// addresses (primitives are neither movable nor copyable because they
// capture `this` in signal listeners) and prefixes wire names for
// diagnostics and VCD traces.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::gates {

class Netlist {
 public:
  Netlist(sim::Simulation& sim, std::string prefix)
      : sim_(sim), prefix_(std::move(prefix)) {}

  Netlist(const Netlist&) = delete;
  Netlist& operator=(const Netlist&) = delete;

  sim::Simulation& sim() const noexcept { return sim_; }
  const std::string& prefix() const noexcept { return prefix_; }

  /// Creates and owns a named 1-bit wire.
  sim::Wire& wire(const std::string& name, bool init = false) {
    return emplace<sim::Wire>(sim_, qualified(name), init);
  }

  /// Creates and owns a named word bus.
  sim::Word& word(const std::string& name, std::uint64_t init = 0) {
    return emplace<sim::Word>(sim_, qualified(name), init);
  }

  /// Constructs a primitive (gate, flop, latch, ...) in the arena and
  /// returns a stable reference.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    return emplace<T>(std::forward<Args>(args)...);
  }

  /// Qualifies a local name with this netlist's prefix.
  std::string qualified(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "." + name;
  }

 private:
  struct HolderBase {
    virtual ~HolderBase() = default;
  };
  template <typename T>
  struct Holder final : HolderBase {
    template <typename... Args>
    explicit Holder(Args&&... args) : value(std::forward<Args>(args)...) {}
    T value;
  };

  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto holder = std::make_unique<Holder<T>>(std::forward<Args>(args)...);
    T& ref = holder->value;
    items_.push_back(std::move(holder));
    return ref;
  }

  sim::Simulation& sim_;
  std::string prefix_;
  std::vector<std::unique_ptr<HolderBase>> items_;
};

}  // namespace mts::gates
