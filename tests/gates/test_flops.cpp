#include "gates/flops.hpp"

#include <gtest/gtest.h>

#include "gates/netlist.hpp"
#include "sim/simulation.hpp"

namespace mts::gates {
namespace {

struct Fixture {
  sim::Simulation sim;
  Netlist nl{sim, "t"};
  DelayModel dm = DelayModel::hp06();
  TimingDomain dom{sim, "dom"};

  void pulse_clock(sim::Wire& clk, sim::Time at) {
    sim.sched().at(at, [&clk] { clk.set(true); });
    sim.sched().at(at + 500, [&clk] { clk.set(false); });
  }
};

TEST(Etdff, CapturesOnRisingEdge) {
  Fixture f;
  sim::Wire& clk = f.nl.wire("clk");
  sim::Wire& d = f.nl.wire("d");
  sim::Wire& q = f.nl.wire("q");
  f.nl.add<Etdff>(f.sim, "ff", clk, d, nullptr, q, f.dm.flop, &f.dom);

  f.sim.sched().at(1000, [&] { d.set(true); });
  f.pulse_clock(clk, 2000);
  f.sim.run_until(2000 + f.dm.flop.clk_to_q);
  EXPECT_TRUE(q.read());
  EXPECT_EQ(f.dom.violations(), 0u);
}

TEST(Etdff, IgnoresFallingEdge) {
  Fixture f;
  sim::Wire& clk = f.nl.wire("clk", true);
  sim::Wire& d = f.nl.wire("d", true);
  sim::Wire& q = f.nl.wire("q");
  f.nl.add<Etdff>(f.sim, "ff", clk, d, nullptr, q, f.dm.flop, &f.dom);
  f.sim.sched().at(1000, [&] { clk.set(false); });
  f.sim.run_until(3000);
  EXPECT_FALSE(q.read());
}

TEST(Etdff, EnableGatesCapture) {
  Fixture f;
  sim::Wire& clk = f.nl.wire("clk");
  sim::Wire& d = f.nl.wire("d", true);
  sim::Wire& en = f.nl.wire("en", false);
  sim::Wire& q = f.nl.wire("q");
  f.nl.add<Etdff>(f.sim, "ff", clk, d, &en, q, f.dm.flop, &f.dom);

  f.pulse_clock(clk, 2000);
  f.sim.run_until(3000);
  EXPECT_FALSE(q.read());  // disabled: held

  en.set(true);
  f.pulse_clock(clk, 4000);
  f.sim.run_until(5000);
  EXPECT_TRUE(q.read());
}

TEST(Etdff, SetupViolationReported) {
  Fixture f;
  sim::Wire& clk = f.nl.wire("clk");
  sim::Wire& d = f.nl.wire("d");
  sim::Wire& q = f.nl.wire("q");
  f.nl.add<Etdff>(f.sim, "ff", clk, d, nullptr, q, f.dm.flop, &f.dom);

  // d changes 10ps before the edge: inside the setup window.
  f.sim.sched().at(2000 - 10, [&] { d.set(true); });
  f.pulse_clock(clk, 2000);
  f.sim.run_until(3000);
  EXPECT_EQ(f.dom.violations(), 1u);
  EXPECT_EQ(f.sim.report().count("setup"), 1u);
}

TEST(Etdff, HoldViolationReported) {
  Fixture f;
  sim::Wire& clk = f.nl.wire("clk");
  sim::Wire& d = f.nl.wire("d");
  sim::Wire& q = f.nl.wire("q");
  f.nl.add<Etdff>(f.sim, "ff", clk, d, nullptr, q, f.dm.flop, &f.dom);

  f.pulse_clock(clk, 2000);
  f.sim.sched().at(2000 + 10, [&] { d.set(true); });  // inside hold window
  f.sim.run_until(3000);
  EXPECT_GE(f.dom.violations(), 1u);
  EXPECT_GE(f.sim.report().count("hold"), 1u);
}

TEST(Etdff, HoldCheckSkippedWhenEdgeWasDisabled) {
  Fixture f;
  sim::Wire& clk = f.nl.wire("clk");
  sim::Wire& d = f.nl.wire("d");
  sim::Wire& en = f.nl.wire("en", false);
  sim::Wire& q = f.nl.wire("q");
  f.nl.add<Etdff>(f.sim, "ff", clk, d, &en, q, f.dm.flop, &f.dom);

  f.pulse_clock(clk, 2000);
  f.sim.sched().at(2000 + 10, [&] { d.set(true); });
  f.sim.run_until(3000);
  EXPECT_EQ(f.dom.violations(), 0u);
}

TEST(Etdff, AsyncPolicyReplacesViolation) {
  Fixture f;
  sim::Wire& clk = f.nl.wire("clk");
  sim::Wire& d = f.nl.wire("d");
  sim::Wire& q = f.nl.wire("q");
  auto& ff = f.nl.add<Etdff>(f.sim, "ff", clk, d, nullptr, q, f.dm.flop, &f.dom);
  int policy_calls = 0;
  ff.set_async_sampling([&](bool old_value, bool, sim::Time) {
    ++policy_calls;
    return AsyncSample{old_value, 100};  // resolve to old, settle 100ps
  });

  f.sim.sched().at(2000 - 10, [&] { d.set(true); });
  f.pulse_clock(clk, 2000);
  f.sim.run_until(4000);
  EXPECT_EQ(policy_calls, 1);
  EXPECT_EQ(f.dom.violations(), 0u);
  EXPECT_FALSE(q.read());  // old value captured

  // The next edge samples cleanly and takes the new value.
  f.pulse_clock(clk, 6000);
  f.sim.run_until(8000);
  EXPECT_TRUE(q.read());
}

TEST(Etdff, DisabledDomainRecordsNothing) {
  Fixture f;
  f.dom.set_enabled(false);
  sim::Wire& clk = f.nl.wire("clk");
  sim::Wire& d = f.nl.wire("d");
  sim::Wire& q = f.nl.wire("q");
  f.nl.add<Etdff>(f.sim, "ff", clk, d, nullptr, q, f.dm.flop, &f.dom);
  f.sim.sched().at(2000 - 10, [&] { d.set(true); });
  f.pulse_clock(clk, 2000);
  f.sim.run_until(3000);
  EXPECT_EQ(f.dom.violations(), 0u);
}

TEST(WordRegisterTest, CapturesWordOnEnabledEdge) {
  Fixture f;
  sim::Wire& clk = f.nl.wire("clk");
  sim::Word& d = f.nl.word("d");
  sim::Wire& en = f.nl.wire("en", true);
  sim::Word& q = f.nl.word("q");
  f.nl.add<WordRegister>(f.sim, "reg", clk, d, &en, q, f.dm.flop, &f.dom);

  f.sim.sched().at(1000, [&] { d.set(0x5A); });
  f.pulse_clock(clk, 2000);
  f.sim.run_until(3000);
  EXPECT_EQ(q.read(), 0x5Au);

  en.set(false);
  f.sim.sched().at(3500, [&] { d.set(0xFF); });
  f.pulse_clock(clk, 4000);
  f.sim.run_until(5000);
  EXPECT_EQ(q.read(), 0x5Au);  // disabled: held
}

TEST(WordRegisterTest, SetupViolationOnLateBusChange) {
  Fixture f;
  sim::Wire& clk = f.nl.wire("clk");
  sim::Word& d = f.nl.word("d");
  sim::Word& q = f.nl.word("q");
  f.nl.add<WordRegister>(f.sim, "reg", clk, d, nullptr, q, f.dm.flop, &f.dom);
  f.sim.sched().at(2000 - 5, [&] { d.set(1); });
  f.pulse_clock(clk, 2000);
  f.sim.run_until(3000);
  EXPECT_EQ(f.dom.violations(), 1u);
}

}  // namespace
}  // namespace mts::gates
