// Negative-path coverage for FifoConfig::validate(): every ConfigError
// branch fires with a diagnosable message, and the error type slots into
// the standard exception hierarchy harnesses catch by.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fifo/config.hpp"
#include "sim/error.hpp"

namespace mts::fifo {
namespace {

/// Runs validate() and returns the ConfigError message (empty = no throw).
std::string validate_message(const FifoConfig& cfg) {
  try {
    cfg.validate();
  } catch (const ConfigError& e) {
    return e.what();
  }
  return {};
}

TEST(FifoConfigValidate, DefaultConfigIsValid) {
  FifoConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(FifoConfigValidate, SmallestLegalConfigIsValid) {
  FifoConfig cfg;
  cfg.capacity = 2;
  cfg.width = 1;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(FifoConfigValidate, CapacityBelowTwoIsRejected) {
  FifoConfig cfg;
  cfg.capacity = 1;
  EXPECT_NE(validate_message(cfg).find("capacity must be >= 2"),
            std::string::npos);
  cfg.capacity = 0;
  EXPECT_NE(validate_message(cfg).find("capacity must be >= 2"),
            std::string::npos);
}

TEST(FifoConfigValidate, CapacityBelowTheAnticipationWindowIsRejected) {
  // Deeper synchronizers widen the detector's anticipation window; a FIFO
  // shorter than the window could never declare itself non-full safely.
  FifoConfig cfg;
  cfg.capacity = 3;
  cfg.sync.depth = 4;  // window = depth = 4 > capacity
  EXPECT_NE(validate_message(cfg).find("anticipation"), std::string::npos);
  cfg.capacity = 4;  // capacity == window: legal again
  EXPECT_NO_THROW(cfg.validate());
}

TEST(FifoConfigValidate, WidthOutsideOneTo64IsRejected) {
  FifoConfig cfg;
  cfg.width = 0;
  EXPECT_NE(validate_message(cfg).find("width must be 1..64"),
            std::string::npos);
  cfg.width = 65;
  EXPECT_NE(validate_message(cfg).find("width must be 1..64"),
            std::string::npos);
  cfg.width = 64;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(FifoConfigValidate, BimodalDetectorWithoutSynchronizerIsRejected) {
  // Depth 0 would close a combinational loop through the Fig. 7b OR gate.
  FifoConfig cfg;
  cfg.sync.depth = 0;
  cfg.empty_kind = EmptyDetectorKind::kBimodal;
  EXPECT_NE(validate_message(cfg).find("bi-modal empty detector"),
            std::string::npos);
  // The single-detector ablations tolerate a passthrough synchronizer.
  cfg.empty_kind = EmptyDetectorKind::kOeOnly;
  EXPECT_NO_THROW(cfg.validate());
  cfg.empty_kind = EmptyDetectorKind::kNeOnly;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(FifoConfigValidate, ConfigErrorIsAnInvalidArgument) {
  // Generic harnesses catch std::invalid_argument / std::exception.
  FifoConfig cfg;
  cfg.capacity = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_THROW(cfg.validate(), std::exception);
}

}  // namespace
}  // namespace mts::fifo
