#include "mc/net_model.hpp"

#include <deque>
#include <vector>

#include "mc/state_store.hpp"
#include "sim/error.hpp"

namespace mts::mc {

namespace {

void pack_marking(const ctrl::PnMarking& m, std::uint8_t* out,
                  std::size_t bytes) {
  for (std::size_t b = 0; b < bytes; ++b) out[b] = 0;
  for (std::size_t p = 0; p < m.size(); ++p) {
    if (m[p]) out[p / 8] |= static_cast<std::uint8_t>(1u << (p % 8));
  }
}

ctrl::PnMarking unpack_marking(const std::uint8_t* rec, std::size_t places) {
  ctrl::PnMarking m(places, false);
  for (std::size_t p = 0; p < places; ++p) {
    m[p] = (rec[p / 8] >> (p % 8)) & 1u;
  }
  return m;
}

}  // namespace

NetCheckResult check_net(const ctrl::PetriNet& net, std::size_t max_markings) {
  NetCheckResult r;
  const std::size_t bytes = (net.num_places + 7) / 8;
  StateStore store(bytes == 0 ? 1 : bytes);
  std::vector<std::uint8_t> rec(store.record_size());

  pack_marking(ctrl::pn_initial_marking(net), rec.data(), bytes);
  store.intern(rec.data());

  std::deque<std::uint32_t> frontier{0};
  while (!frontier.empty()) {
    const std::uint32_t id = frontier.front();
    frontier.pop_front();
    const ctrl::PnMarking m = unpack_marking(store.bytes(id), net.num_places);
    bool any_enabled = false;
    for (const ctrl::PnTransition& t : net.transitions) {
      if (!ctrl::pn_enabled(net, m, t)) continue;
      any_enabled = true;
      ctrl::PnMarking next = m;
      const ctrl::PnFire f = ctrl::pn_fire(net, next, t);
      if (!f.safe) {
        // Same rule as ctrl::analyze(): record, add no successor.
        r.one_safe = false;
        if (r.violation.empty()) {
          r.violation = "firing '" + t.label + "' violates 1-safety";
        }
        continue;
      }
      pack_marking(next, rec.data(), bytes);
      const auto [nid, inserted] = store.intern(rec.data());
      if (inserted) {
        if (store.size() > max_markings) {
          throw ConfigError(
              "mc::check_net: marking explosion, more than max_markings = " +
              std::to_string(max_markings) + " reachable markings");
        }
        frontier.push_back(nid);
      }
    }
    if (!any_enabled) {
      r.deadlock_free = false;
      if (r.violation.empty()) r.violation = "reachable deadlock marking";
    }
  }
  r.reachable_markings = store.size();
  return r;
}

}  // namespace mts::mc
