// Run watchdog: wall-clock deadlines, deadlock-on-drain, and livelock
// detection with stuck-site diagnostics -- synthetic probes first, then the
// two hang shapes reproduced on real FIFO circuits.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fifo/async_sync_fifo.hpp"
#include "fifo/interface_sides.hpp"
#include "bfm/bfm.hpp"
#include "sim/simulation.hpp"
#include "sim/watchdog.hpp"
#include "sync/clock.hpp"

namespace mts::sim {
namespace {

/// Pre-schedules a dense batch of no-op events, one every `step` ps up to
/// `until`: "events keep executing" without any token movement.
void busy_loop(Simulation& sim, Time step, Time until) {
  for (Time t = step; t <= until; t += step) sim.sched().after(t, [] {});
}

TEST(Watchdog, WallDeadlineKillsASlowRun) {
  Simulation sim(1);
  Watchdog wd(WatchdogConfig{1e-9, 0, 64});
  wd.watch("driver", [] { return 3u; });
  wd.arm(sim);
  busy_loop(sim, 10, 10'000);
  try {
    sim.run_until(20'000);
    FAIL() << "expected DeadlineError";
  } catch (const DeadlineError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadline"), std::string::npos) << msg;
    EXPECT_NE(msg.find("driver (3 in flight)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("kernel:"), std::string::npos) << msg;
  }
  Watchdog::disarm(sim);
}

TEST(Watchdog, GenerousDeadlinePollsWithoutFiring) {
  Simulation sim(1);
  Watchdog wd(WatchdogConfig{60.0, 0, 16});
  wd.arm(sim);
  busy_loop(sim, 10, 10'000);
  sim.run_until(10'000);  // ~1000 events, ~60 polls
  EXPECT_GT(wd.polls(), 10u);
  Watchdog::disarm(sim);
}

TEST(Watchdog, DrainWithWorkInFlightIsDeadlock) {
  Simulation sim(1);
  Watchdog wd;
  std::uint64_t stuck = 2;
  wd.watch("put-driver", [&stuck] { return stuck; });
  wd.arm(sim);
  sim.sched().after(100, [] {});  // one event, then the queue drains
  try {
    sim.run_until(1'000);
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("put-driver (2 in flight)"), std::string::npos) << msg;
  }
  // Work completes: the same drain is no longer a deadlock.
  stuck = 0;
  sim.sched().after(100, [] {});
  EXPECT_NO_THROW(sim.run_until(2'000));
  Watchdog::disarm(sim);
}

TEST(Watchdog, FrozenProgressWithEventsRunningIsLivelock) {
  Simulation sim(1);
  Watchdog wd(WatchdogConfig{0.0, 1'000, 4});
  wd.watch("station", [] { return 1u; }, [] { return 42u; });  // frozen
  wd.arm(sim);
  busy_loop(sim, 10, 100'000);  // events keep executing...
  try {
    sim.run_until(100'000);  // ...but nothing ever moves
    FAIL() << "expected LivelockError";
  } catch (const LivelockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("livelock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("station (1 in flight)"), std::string::npos) << msg;
  }
  Watchdog::disarm(sim);
}

TEST(Watchdog, AdvancingProgressDefeatsTheLivelockVerdict) {
  Simulation sim(1);
  Watchdog wd(WatchdogConfig{0.0, 1'000, 4});
  std::uint64_t completed = 0;
  // In flight until the last completion lands (a drained queue with work
  // still owed is a deadlock, and rightly so -- see the previous test).
  wd.watch(
      "station", [&completed] { return completed < 100 ? 1u : 0u; },
      [&completed] { return completed; });
  wd.arm(sim);
  busy_loop(sim, 10, 50'000);
  // The protocol moves (slowly): one completion per 500ps beats the
  // 1000ps window.
  for (Time t = 500; t <= 50'000; t += 500) {
    sim.sched().after(t, [&completed] { ++completed; });
  }
  EXPECT_NO_THROW(sim.run_until(50'000));
  EXPECT_EQ(completed, 100u);
  Watchdog::disarm(sim);
}

TEST(Watchdog, IdleInFlightFreeCircuitNeverTrips) {
  Simulation sim(1);
  Watchdog wd(WatchdogConfig{0.0, 1'000, 4});
  wd.watch("sink", [] { return 0u; }, [] { return 0u; });  // nothing owed
  wd.arm(sim);
  busy_loop(sim, 10, 50'000);
  EXPECT_NO_THROW(sim.run_until(50'000));
  Watchdog::disarm(sim);
}

TEST(Watchdog, SimulationResetDisarms) {
  Simulation sim(1);
  Watchdog wd(WatchdogConfig{1e-12, 0, 1});  // would fire instantly
  wd.arm(sim);
  sim.reset(2);
  busy_loop(sim, 10, 10'000);
  EXPECT_NO_THROW(sim.run_until(10'000));  // reset returned the fast path
}

TEST(Watchdog, ErrorTypesFormADiagnosableHierarchy) {
  // Campaign supervision catches WatchdogError (and classifies by the
  // demangled concrete type); harnesses may catch SimulationError.
  EXPECT_THROW(throw DeadlineError("x"), WatchdogError);
  EXPECT_THROW(throw DeadlockError("x"), WatchdogError);
  EXPECT_THROW(throw LivelockError("x"), WatchdogError);
  EXPECT_THROW(throw WatchdogError("x"), SimulationError);
}

TEST(Watchdog, ConfigAndPollAccessors) {
  Watchdog wd(WatchdogConfig{2.5, 300, 128});
  EXPECT_DOUBLE_EQ(wd.config().wall_deadline_sec, 2.5);
  EXPECT_EQ(wd.config().progress_window, 300u);
  EXPECT_EQ(wd.config().poll_interval_events, 128u);
  // Directly drivable from harness loops; the deadline clock only starts at
  // arm(), so use a deadline-free config for the unarmed poll.
  Watchdog free_running(WatchdogConfig{0.0, 0, 128});
  EXPECT_EQ(free_running.polls(), 0u);
  free_running.poll(0);
  EXPECT_EQ(free_running.polls(), 1u);
}

// ---------------------------------------------------- real-circuit hangs --

TEST(Watchdog, StoppedReceiverClockDeadlocksTheAsyncFifo) {
  // An async-sync FIFO whose get clock never ticks: the async sender fills
  // the capacity, the next handshake's ack is withheld, every event
  // eventually drains -- the classic mixed-timing deadlock, diagnosed at
  // the drain with the stuck occupancy named.
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  sim::Simulation sim(1);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sim::Wire dead_clk(sim, "dead_clk", false);  // never toggles
  fifo::AsyncSyncFifo dut(sim, "dut", cfg, dead_clk);
  bfm::AsyncPutDriver put(sim, "put", dut.put_req(), dut.put_ack(),
                          dut.put_data(), cfg.dm, gp / 2, 0xFF, nullptr);
  Watchdog wd;
  wd.watch("dut.occupancy", [&dut] { return dut.occupancy(); });
  wd.arm(sim);
  try {
    sim.run_until(1'000 * gp);
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("dut.occupancy"), std::string::npos) << msg;
  }
  EXPECT_GT(dut.occupancy(), 0u);
  Watchdog::disarm(sim);
}

TEST(Watchdog, HealthyFifoTrafficPassesUnderAnArmedWatchdog) {
  // The same watchdog riding a healthy run must stay quiet end to end.
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  sim::Simulation sim(1);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
  fifo::AsyncSyncFifo dut(sim, "dut", cfg, cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncPutDriver put(sim, "put", dut.put_req(), dut.put_ack(),
                          dut.put_data(), cfg.dm, gp / 2, 0xFF, &sb);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                         {1.0, 1});
  bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  Watchdog wd(WatchdogConfig{30.0, 100 * gp, 256});
  wd.watch(
      "dut.occupancy", [&dut] { return dut.occupancy(); },
      [&gm] { return gm.dequeued(); });
  wd.arm(sim);
  EXPECT_NO_THROW(sim.run_until(4 * gp + 300 * gp));
  EXPECT_GT(gm.dequeued(), 50u);
  EXPECT_EQ(sb.errors(), 0u);
  Watchdog::disarm(sim);
}

}  // namespace
}  // namespace mts::sim
