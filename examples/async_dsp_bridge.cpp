// Asynchronous DSP to synchronous bus: a self-timed filter core (no clock,
// 4-phase bundled-data output, data-dependent computation time) feeds a
// synchronous system bus through the async-sync FIFO -- the paper's
// Section 4 design doing the job it was built for.
//
// Demonstrates:
//   - the async put interface absorbing an irregular producer (the FIFO
//     simply withholds put_ack while full),
//   - the synchronous get side draining at a steady clock,
//   - zero synchronization overhead in steady state: every bus cycle with
//     data available delivers a word.
//
//   $ ./example_async_dsp_bridge
#include <cstdio>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "sync/clock.hpp"

namespace {

using namespace mts;
using sim::Time;

/// A self-timed "DSP": produces one 16-bit result per handshake, with a
/// data-dependent gap between results (short bursts, then a long tail, like
/// a block filter draining its pipeline).
class SelfTimedDsp {
 public:
  SelfTimedDsp(sim::Simulation& sim, fifo::AsyncSyncFifo& fifo,
               bfm::Scoreboard& sb)
      : sim_(sim), fifo_(fifo), sb_(sb) {
    fifo_.put_ack().on_change([this](bool, bool now) {
      if (now) {
        sb_.push(fifo_.put_data().read());
        ++produced_;
        fifo_.put_req().write(false, 150, sim::DelayKind::kTransport);
      } else {
        schedule_next();
      }
    });
    sim_.sched().after(1000, [this] { emit(); });
  }

  std::uint64_t produced() const { return produced_; }

 private:
  void schedule_next() {
    // Burst of 12 quick results, then a 30 ns refill gap.
    const Time gap = (produced_ % 16 < 12) ? 300 : 30'000;
    sim_.sched().after(gap, [this] { emit(); });
  }

  void emit() {
    // A toy FIR-ish value so the payload is recognizably "computed".
    state_ = (state_ * 5 + 7) & 0xFFFF;
    fifo_.put_data().set(state_);
    fifo_.put_req().write(true, 150, sim::DelayKind::kTransport);
  }

  sim::Simulation& sim_;
  fifo::AsyncSyncFifo& fifo_;
  bfm::Scoreboard& sb_;
  std::uint64_t state_ = 1;
  std::uint64_t produced_ = 0;
};

}  // namespace

int main() {
  sim::Simulation sim(3);

  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 16;

  const Time bus_period = fifo::SyncGetSide::min_period(cfg) * 5 / 4;
  sync::Clock clk_bus(sim, "clk_bus", {bus_period, 4 * bus_period, 0.5, 0});

  fifo::AsyncSyncFifo bridge(sim, "bridge", cfg, clk_bus.out());

  bfm::Scoreboard sb(sim, "sb");
  SelfTimedDsp dsp(sim, bridge, sb);
  bfm::SyncGetDriver bus(sim, "bus", clk_bus.out(), bridge.req_get(), cfg.dm,
                         {1.0, 0});
  bfm::GetMonitor bus_mon(sim, clk_bus.out(), bridge.valid_get(),
                          bridge.data_get(), sb);

  sim.run_until(4 * bus_period + 3000 * bus_period);

  std::printf("async DSP -> %0.f MHz synchronous bus via async-sync FIFO\n",
              sim::period_to_mhz(bus_period));
  std::printf("  results produced   : %llu\n",
              static_cast<unsigned long long>(dsp.produced()));
  std::printf("  results delivered  : %llu\n",
              static_cast<unsigned long long>(bus_mon.dequeued()));
  std::printf("  order violations   : %llu\n",
              static_cast<unsigned long long>(sb.errors()));
  std::printf("  FIFO resident      : %u\n", bridge.occupancy());
  const bool ok = sb.errors() == 0 && bus_mon.dequeued() > 500 &&
                  bridge.underflow_count() == 0;
  std::printf("  %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
