// Unit tests for the reusable cell parts in isolation -- the granularity
// the paper's design-reuse argument operates at.
#include "fifo/cell_parts.hpp"

#include <gtest/gtest.h>

#include "ctrl/specs.hpp"
#include "sync/clock.hpp"

namespace mts::fifo {
namespace {

using sim::Time;

FifoConfig cfg4() {
  FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  return cfg;
}

TEST(SyncPutPartTest, LatchesDataAndValidityOnEnabledEdge) {
  sim::Simulation sim;
  const FifoConfig cfg = cfg4();
  gates::Netlist nl(sim, "t");
  gates::TimingDomain dom(sim, "dom");
  const Time period = 4000;
  sync::Clock clk(sim, "clk", {period, 2 * period, 0.5, 0});

  sim::Wire& en = nl.wire("en");
  sim::Wire& tok_in = nl.wire("tok_in");
  sim::Wire& tok_out = nl.wire("tok_out", true);
  sim::Word& data = nl.word("data");
  sim::Wire& req = nl.wire("req");
  SyncPutPart part(nl, 0, clk.out(), en, tok_in, tok_out, data, req, cfg, &dom,
                   true);

  // Cycle with the token held and the enable high: we rises mid-cycle,
  // data latches at the ending edge.
  sim.sched().at(2 * period + 200, [&] {
    data.set(0x5C);
    req.set(true);
    en.set(true);
  });
  sim.run_until(3 * period - 100);
  EXPECT_TRUE(part.we().read());   // announced during the active cycle
  EXPECT_EQ(part.reg_q().read(), 0u);  // but not yet latched
  sim.run_until(3 * period + 1000);
  EXPECT_EQ(part.reg_q().read(), 0x5Cu);
  EXPECT_TRUE(part.v_q().read());
  // Token left (tok_in was 0).
  EXPECT_FALSE(tok_out.read());
}

TEST(SyncPutPartTest, DisabledCellDoesNothing) {
  sim::Simulation sim;
  const FifoConfig cfg = cfg4();
  gates::Netlist nl(sim, "t");
  const Time period = 4000;
  sync::Clock clk(sim, "clk", {period, 2 * period, 0.5, 0});

  sim::Wire& en = nl.wire("en");  // stays low
  sim::Wire& tok_in = nl.wire("tok_in");
  sim::Wire& tok_out = nl.wire("tok_out", true);
  sim::Word& data = nl.word("data", 0x77);
  sim::Wire& req = nl.wire("req", true);
  SyncPutPart part(nl, 0, clk.out(), en, tok_in, tok_out, data, req, cfg,
                   nullptr, true);

  sim.run_until(6 * period);
  EXPECT_FALSE(part.we().read());
  EXPECT_EQ(part.reg_q().read(), 0u);
  EXPECT_TRUE(tok_out.read());  // token held while disabled
}

TEST(AsyncPutPartTest, HandshakeLatchesDataAndPassesToken) {
  sim::Simulation sim;
  const FifoConfig cfg = cfg4();
  gates::Netlist nl(sim, "t");

  sim::Wire& req = nl.wire("req");
  sim::Word& data = nl.word("data");
  sim::Wire& we1 = nl.wire("we1");
  sim::Wire& e = nl.wire("e", true);
  sim::Wire& we_out = nl.wire("we_out");
  AsyncPutPart part(nl, 0, req, data, we1, e, we_out, cfg, true);

  sim.run_until(5'000);
  EXPECT_TRUE(part.ptok().read());  // initial token holder

  data.set(0xAB);
  req.set(true);
  sim.run_until(10'000);
  EXPECT_TRUE(part.we().read());
  EXPECT_EQ(part.reg_q().read(), 0xABu);
  EXPECT_FALSE(part.ptok().read());  // OPT reset: token released

  req.set(false);
  sim.run_until(15'000);
  EXPECT_FALSE(part.we().read());

  // The token comes back around (pulse on we1): ready for the next put.
  we1.set(true);
  sim.run_until(17'000);
  we1.set(false);
  sim.run_until(20'000);
  EXPECT_TRUE(part.ptok().read());
}

TEST(AsyncPutPartTest, FullCellBlocksHandshake) {
  sim::Simulation sim;
  const FifoConfig cfg = cfg4();
  gates::Netlist nl(sim, "t");

  sim::Wire& req = nl.wire("req");
  sim::Word& data = nl.word("data");
  sim::Wire& we1 = nl.wire("we1");
  sim::Wire& e = nl.wire("e", false);  // cell full: e_i low
  sim::Wire& we_out = nl.wire("we_out");
  AsyncPutPart part(nl, 0, req, data, we1, e, we_out, cfg, true);

  req.set(true);
  sim.run_until(10'000);
  EXPECT_FALSE(part.we().read());  // C-element guard holds

  e.set(true);  // cell drained
  sim.run_until(20'000);
  EXPECT_TRUE(part.we().read());  // pending put completes
}

TEST(AsyncGetPartTest, HandshakeReadsOnlyFullCells) {
  sim::Simulation sim;
  const FifoConfig cfg = cfg4();
  gates::Netlist nl(sim, "t");

  sim::Wire& req = nl.wire("req");
  sim::Wire& re1 = nl.wire("re1");
  sim::Wire& f = nl.wire("f", false);  // empty
  sim::Wire& re_out = nl.wire("re_out");
  AsyncGetPart part(nl, 0, req, re1, f, re_out, cfg, true);

  req.set(true);
  sim.run_until(10'000);
  EXPECT_FALSE(part.re().read());  // nothing to read

  f.set(true);
  sim.run_until(20'000);
  EXPECT_TRUE(part.re().read());
  req.set(false);
  sim.run_until(30'000);
  EXPECT_FALSE(part.re().read());
  EXPECT_FALSE(part.gtok().read());  // token released after the read
}

TEST(DvControllerTest, WrapsLinearNetWithInitialEmptyState) {
  sim::Simulation sim;
  gates::Netlist nl(sim, "t");
  sim::Wire& we = nl.wire("we");
  sim::Wire& re = nl.wire("re");
  DvController dv(nl, 0, ctrl::dv_linear_net(), we, re, 25);
  sim.run_until(1'000);
  EXPECT_TRUE(dv.e().read());
  EXPECT_FALSE(dv.f().read());

  we.set(true);
  sim.run_until(2'000);
  we.set(false);
  sim.run_until(3'000);
  EXPECT_FALSE(dv.e().read());
  EXPECT_TRUE(dv.f().read());
}

TEST(TokenMatchDelays, RelayControllersNeedLessMatching) {
  const FifoConfig fifo_cfg = cfg4();
  FifoConfig rs_cfg = cfg4();
  rs_cfg.controller = ControllerKind::kRelayStation;
  // The relay put controller (inverter) responds faster, so less token
  // buffering is needed -- which is why the MCRS put interface is faster.
  EXPECT_LT(put_token_match_delay(rs_cfg), put_token_match_delay(fifo_cfg));
  // Both grow with capacity and width (broadcast term).
  FifoConfig big = cfg4();
  big.capacity = 16;
  EXPECT_LT(put_token_match_delay(fifo_cfg), put_token_match_delay(big));
  FifoConfig wide = cfg4();
  wide.width = 32;
  EXPECT_LT(get_token_match_delay(fifo_cfg), get_token_match_delay(wide));
}

}  // namespace
}  // namespace mts::fifo
