file(REMOVE_RECURSE
  "CMakeFiles/mts_ctrl.dir/burst_mode.cpp.o"
  "CMakeFiles/mts_ctrl.dir/burst_mode.cpp.o.d"
  "CMakeFiles/mts_ctrl.dir/dot.cpp.o"
  "CMakeFiles/mts_ctrl.dir/dot.cpp.o.d"
  "CMakeFiles/mts_ctrl.dir/petri.cpp.o"
  "CMakeFiles/mts_ctrl.dir/petri.cpp.o.d"
  "CMakeFiles/mts_ctrl.dir/reachability.cpp.o"
  "CMakeFiles/mts_ctrl.dir/reachability.cpp.o.d"
  "CMakeFiles/mts_ctrl.dir/specs.cpp.o"
  "CMakeFiles/mts_ctrl.dir/specs.cpp.o.d"
  "libmts_ctrl.a"
  "libmts_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
