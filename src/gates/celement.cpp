#include "gates/celement.hpp"

#include <utility>

#include "sim/error.hpp"

namespace mts::gates {

CElement::CElement(sim::Simulation& sim, std::string name,
                   std::vector<sim::Wire*> common, std::vector<sim::Wire*> plus,
                   sim::Wire& out, Time delay, bool initial)
    : name_(std::move(name)),
      common_(std::move(common)),
      plus_(std::move(plus)),
      out_(out),
      delay_(delay),
      state_(initial) {
  MTS_ASSERT(!common_.empty(), "C-element '" + name_ + "' needs common inputs");
  auto watch = [this](sim::Wire* w) {
    MTS_ASSERT(w != nullptr, "C-element '" + name_ + "' has a null input");
    w->on_change([this](bool, bool) { evaluate(); });
  };
  for (sim::Wire* w : common_) watch(w);
  for (sim::Wire* w : plus_) watch(w);
  sim.sched().after(0, [this] { evaluate(); });
}

void CElement::evaluate() {
  bool all_one = true;
  for (const sim::Wire* w : common_) all_one = all_one && w->read();
  for (const sim::Wire* w : plus_) all_one = all_one && w->read();
  bool common_all_zero = true;
  for (const sim::Wire* w : common_) common_all_zero = common_all_zero && !w->read();

  if (all_one) {
    state_ = true;
  } else if (common_all_zero) {
    state_ = false;
  }  // otherwise hold
  out_.write(state_, delay_, sim::DelayKind::kInertial);
}

sim::Wire& make_celement(Netlist& nl, const std::string& name,
                         std::vector<sim::Wire*> inputs, const DelayModel& dm) {
  sim::Wire& out = nl.wire(name);
  const Time delay = dm.celement(static_cast<unsigned>(inputs.size()));
  nl.add<CElement>(nl.sim(), nl.qualified(name), std::move(inputs),
                   std::vector<sim::Wire*>{}, out, delay, false);
  return out;
}

sim::Wire& make_acelement(Netlist& nl, const std::string& name,
                          std::vector<sim::Wire*> common,
                          std::vector<sim::Wire*> plus, const DelayModel& dm) {
  sim::Wire& out = nl.wire(name);
  const Time delay = dm.celement(static_cast<unsigned>(common.size() + plus.size()));
  nl.add<CElement>(nl.sim(), nl.qualified(name), std::move(common), std::move(plus),
                   out, delay, false);
  return out;
}

}  // namespace mts::gates
