// Extension bench: the full 2x2 interface matrix of Fig. 1, measured with
// the Table 1 methodology. The paper evaluates the sync-sync and
// async-sync designs; the sync-async design was "designed, to be described
// in a forthcoming technical report" and async-async was published
// separately ([4]). This bench completes the matrix.
//
// The 12 cells (3 capacities x 4 designs) run through a sim::Campaign
// worker pool; each experiment function owns its Simulations, so the
// campaign contributes distribution only. --jobs N sets the worker count
// (default: one per hardware thread). Row order is fixed by cell index,
// independent of worker count.
//
// Usage: bench_matrix_extension [--csv] [--jobs N]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fifo/config.hpp"
#include "metrics/experiments.hpp"
#include "metrics/table.hpp"
#include "sim/campaign.hpp"

int main(int argc, char** argv) {
  using namespace mts;
  bool csv = false;
  unsigned jobs = 0;  // 0: one worker per hardware thread
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    }
  }

  std::printf("Full interface matrix (8-bit items; sync rates in MHz, async "
              "rates in MegaOps/s; latency in ns through an empty FIFO)\n\n");

  const unsigned caps[] = {4, 8, 16};
  const char* const designs[] = {"sync-sync", "async-sync", "sync-async",
                                 "async-async"};
  // Cell index = cap_index * 4 + design_index, matching the historical row
  // order (capacity-major, then design).
  std::vector<std::vector<std::string>> rows(std::size(caps) *
                                             std::size(designs));
  sim::CampaignOptions opt;
  opt.workers = jobs;
  opt.seed = 1;
  sim::Campaign campaign(rows.size(), 1, opt);
  campaign.run([&rows, &caps, &designs](sim::CampaignContext& ctx) {
    const std::size_t i = ctx.spec().index;
    const unsigned cap = caps[i / std::size(designs)];
    const std::size_t design = i % std::size(designs);
    fifo::FifoConfig cfg;
    cfg.capacity = cap;
    cfg.width = 8;

    std::string put, get, lat_min, lat_max, ok;
    switch (design) {
      case 0: {
        const auto tp = metrics::throughput_mixed_clock(cfg, 800);
        const auto lat = metrics::latency_mixed_clock(cfg, 12);
        put = metrics::fmt(tp.put, 0);
        get = metrics::fmt(tp.get, 0);
        lat_min = metrics::fmt(lat.min_ns, 2);
        lat_max = metrics::fmt(lat.max_ns, 2);
        ok = tp.validated ? "yes" : "NO";
        break;
      }
      case 1: {
        const auto tp = metrics::throughput_async_sync(cfg, 800);
        const auto lat = metrics::latency_async_sync(cfg, 12);
        put = metrics::fmt(tp.put, 0);
        get = metrics::fmt(tp.get, 0);
        lat_min = metrics::fmt(lat.min_ns, 2);
        lat_max = metrics::fmt(lat.max_ns, 2);
        ok = tp.validated ? "yes" : "NO";
        break;
      }
      case 2: {
        const auto tp = metrics::throughput_sync_async(cfg, 800);
        const auto lat = metrics::latency_sync_async(cfg);
        put = metrics::fmt(tp.put, 0);
        get = metrics::fmt(tp.get, 0);
        lat_min = metrics::fmt(lat.min_ns, 2);
        lat_max = metrics::fmt(lat.max_ns, 2);
        ok = tp.validated ? "yes" : "NO";
        break;
      }
      default: {
        const auto tp = metrics::throughput_async_async(cfg, 400);
        const auto lat = metrics::latency_async_async(cfg);
        put = metrics::fmt(tp.put_mops, 0);
        get = metrics::fmt(tp.get_mops, 0);
        lat_min = metrics::fmt(lat.min_ns, 2);
        lat_max = metrics::fmt(lat.max_ns, 2);
        ok = tp.validated ? "yes" : "NO";
        break;
      }
    }
    rows[i] = {designs[design], std::to_string(cap), put, get,
               lat_min,         lat_max,             ok};
  });

  metrics::Table t({"design", "places", "put", "get", "latency min",
                    "latency max", "ok"});
  for (const std::vector<std::string>& row : rows) t.add_row(row);
  std::fputs(csv ? t.to_csv().c_str() : t.to_string().c_str(), stdout);
  std::printf("\nExpected shape: fully synchronous interfaces fastest; each "
              "asynchronous interface trades throughput for clock-free "
              "operation; asynchronous receivers see lower latency (no "
              "synchronizer crossing on the read side).\n");
  std::printf("matrix campaign: %u workers, %.1f runs/sec\n",
              campaign.workers(), campaign.runs_per_sec());
  return 0;
}
