// sim::Campaign engine suite: run-matrix semantics, seed derivation,
// failure isolation, and the headline determinism proof -- a 4-worker
// campaign is bit-identical to the 1-worker (sequential) campaign in every
// observable artifact: campaign JSON (host stats excluded), per-run report
// JSON, merged coverage bins, fault escape counts, and golden VCD hashes.
//
// The determinism workload deliberately stacks every stochastic subsystem:
// a depth-varying mixed-clock FIFO in stochastic metastability mode with
// an armed MetaFault plan (per-run FaultPlan RNG), VCD tracing and
// per-worker coverage. If worker placement leaked into ANY of those, the
// byte comparison would catch it. TSan CI runs this binary (label
// "campaign") to also prove the absence of data races on the same paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "fifo/mixed_clock_fifo.hpp"
#include "metrics/coverage.hpp"
#include "sim/campaign.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"
#include "sync/clock.hpp"

namespace mts {
namespace {

using sim::Time;

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(CampaignSeed, DerivationIsPureNonZeroAndCollisionFreeOverTheMatrix) {
  // Pure function of (campaign seed, index): same inputs, same output.
  EXPECT_EQ(sim::campaign_run_seed(1, 0), sim::campaign_run_seed(1, 0));
  // Distinct over a realistic matrix, never zero (a zero seed would make
  // mt19937_64 fall back to a fixed default elsewhere).
  std::set<std::uint64_t> seen;
  for (std::uint64_t cs : {1ull, 2ull, 20260806ull}) {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      const std::uint64_t s = sim::campaign_run_seed(cs, i);
      EXPECT_NE(s, 0u);
      seen.insert(s);
    }
  }
  EXPECT_EQ(seen.size(), 3000u);
}

TEST(Campaign, EveryCellRunsOnceWithRowMajorSpecsAndDerivedSeeds) {
  sim::CampaignOptions opt;
  opt.workers = 4;
  opt.seed = 42;
  sim::Campaign campaign(4, 3, opt);
  EXPECT_EQ(campaign.runs(), 12u);

  campaign.run([](sim::CampaignContext& ctx) {
    ctx.set("config", static_cast<double>(ctx.spec().config));
    ctx.set("rep", static_cast<double>(ctx.spec().rep));
    ctx.set("worker", static_cast<double>(ctx.worker()));
    // The context's Simulation starts reset: time 0, empty report.
    ctx.set("now", static_cast<double>(ctx.sim().now()));
  });

  ASSERT_EQ(campaign.results().size(), 12u);
  EXPECT_EQ(campaign.failed(), 0u);
  for (std::size_t i = 0; i < 12; ++i) {
    const sim::RunResult& r = campaign.results()[i];
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.index, i);
    EXPECT_EQ(r.seed, sim::campaign_run_seed(42, i));
    EXPECT_EQ(r.scalars.at("config"), static_cast<double>(i / 3));
    EXPECT_EQ(r.scalars.at("rep"), static_cast<double>(i % 3));
    EXPECT_EQ(r.scalars.at("now"), 0.0);
    EXPECT_LT(r.scalars.at("worker"), 4.0);
  }
}

TEST(Campaign, WorkerCountClampsToRunCountAndZeroMeansHardware) {
  sim::CampaignOptions opt;
  opt.workers = 16;
  sim::Campaign small(3, 1, opt);
  EXPECT_EQ(small.workers(), 3u);

  opt.workers = 0;
  sim::Campaign hw(64, 1, opt);
  EXPECT_GE(hw.workers(), 1u);
}

TEST(Campaign, BodyExceptionFailsThatRunOnlyAndIsCaptured) {
  sim::CampaignOptions opt;
  opt.workers = 2;
  opt.seed = 7;
  sim::Campaign campaign(6, 1, opt);
  campaign.run([](sim::CampaignContext& ctx) {
    if (ctx.spec().index == 3) throw std::runtime_error("boom at 3");
    ctx.set("fine", 1.0);
  });
  EXPECT_EQ(campaign.failed(), 1u);
  EXPECT_FALSE(campaign.results()[3].ok);
  EXPECT_EQ(campaign.results()[3].error, "boom at 3");
  for (std::size_t i = 0; i < 6; ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(campaign.results()[i].ok) << i;
    EXPECT_EQ(campaign.results()[i].scalars.at("fine"), 1.0) << i;
  }
  // The failed run appears in the JSON with its error string.
  EXPECT_NE(campaign.to_json().find("boom at 3"), std::string::npos);
}

TEST(Campaign, WorkerMetricsAccumulateAndMergeAcrossRuns) {
  sim::CampaignOptions opt;
  opt.workers = 3;
  opt.seed = 5;
  sim::Campaign campaign(9, 1, opt);
  campaign.run([](sim::CampaignContext& ctx) {
    ctx.metrics().counter("engine", "runs").inc();
    ctx.metrics().gauge("engine", "config").set(
        static_cast<double>(ctx.spec().config));
  });
  // Counters add across the three worker shards; gauges take the max.
  const metrics::Counter* c =
      campaign.merged_metrics().find_counter("engine", "runs");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 9u);
  const metrics::Gauge* g =
      campaign.merged_metrics().find_gauge("engine", "config");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value(), 8.0);
}

// ---------------------------------------------------------------------------
// The determinism proof.
// ---------------------------------------------------------------------------

struct DetArtifacts {
  std::string campaign_json;            // to_json(include_host_stats=false)
  std::vector<std::string> run_reports; // per-run report JSON, index order
  std::vector<std::uint64_t> vcd_hashes;
  std::vector<double> escapes;          // fault escapes per run
  std::map<std::string, std::uint64_t> coverage_bins;
};

/// The stacked-stochastic workload: run index selects synchronizer depth
/// (1 or 2); the campaign-derived seed drives the Simulation RNG and a
/// per-run FaultPlan. Every artifact lands in a run-index slot or a
/// worker-index shard -- never shared across threads.
DetArtifacts run_det_campaign(unsigned workers, const std::string& tag) {
  const std::size_t kRuns = 6;
  sim::CampaignOptions opt;
  opt.workers = workers;
  opt.seed = 0xDE7;
  opt.capture_run_reports = true;
  sim::Campaign campaign(kRuns, 1, opt);

  std::vector<std::uint64_t> hashes(kRuns, 0);
  std::vector<metrics::Coverage> covs(campaign.workers());

  campaign.run([&hashes, &covs, &tag](sim::CampaignContext& ctx) {
    const std::size_t idx = ctx.spec().index;
    fifo::FifoConfig cfg;
    cfg.capacity = 4;
    cfg.width = 8;
    cfg.sync.depth = 1 + static_cast<unsigned>(idx % 2);
    cfg.sync.mode = sync::MetaMode::kStochastic;

    sim::Simulation& sim = ctx.sim();
    const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
    const Time gp = pp * 107 / 97 + 3;
    sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
    sync::Clock cg(sim, "cg",
                   {gp, 4 * pp + static_cast<Time>(ctx.spec().seed % gp),
                    0.5, 0});
    fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());

    // Per-run fault plan seeded from the campaign-derived seed: the fault
    // RNG stream is a function of the run index, not the worker.
    sim::FaultPlan plan(ctx.spec().seed);
    plan.inject_meta("Sync.ff0", sim::MetaFault{4.0, 15.0, 0.5, 60});
    sim.arm_faults(&plan);

    bfm::Scoreboard sb(sim, "sb");
    bfm::PutMonitor pm(sim, cp.out(), dut.en_put(), dut.req_put(),
                       dut.data_put(), sb);
    bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
    bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(),
                           dut.data_put(), dut.full(), cfg.dm, {1.0, 1},
                           0xFF);
    bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                           {0.85, 1});
    metrics::cover_mixed_clock_fifo(covs[ctx.worker()], "dut", dut);

    // Distinct VCD file per (worker-count, run): runs never share a path
    // within one campaign, and the two campaigns under comparison never
    // clobber each other's files.
    const std::string vcd_path =
        "campaign_det_" + tag + "_run" + std::to_string(idx) + ".vcd";
    sim::VcdWriter vcd(vcd_path);
    vcd.watch(cp.out(), "clk_put");
    vcd.watch(dut.req_put(), "req_put");
    vcd.watch(dut.full(), "full");
    vcd.watch(cg.out(), "clk_get");
    vcd.watch(dut.valid_get(), "valid_get");
    vcd.start();

    sim.run_until(4 * pp + 800 * pp);
    vcd.finish();
    hashes[idx] = fnv1a(slurp(vcd_path));

    ctx.set("escapes", static_cast<double>(plan.count("meta.escape")));
    ctx.set("samples", static_cast<double>(plan.count("meta.sample")));
    ctx.set("sb_errors", static_cast<double>(sb.errors()));
    sim.arm_faults(nullptr);
  });

  EXPECT_EQ(campaign.failed(), 0u);

  DetArtifacts a;
  a.campaign_json = campaign.to_json(/*include_host_stats=*/false);
  for (const sim::RunResult& r : campaign.results()) {
    a.run_reports.push_back(r.report_json);
    a.escapes.push_back(r.scalars.at("escapes"));
  }
  a.vcd_hashes = hashes;
  metrics::Coverage merged("det");
  for (const metrics::Coverage& c : covs) merged.merge(c);
  a.coverage_bins = merged.bins();
  return a;
}

TEST(CampaignDeterminism, FourWorkersBitIdenticalToOneWorker) {
  const DetArtifacts seq = run_det_campaign(1, "w1");
  const DetArtifacts par = run_det_campaign(4, "w4");

  // Headline: the whole campaign document, byte for byte.
  EXPECT_EQ(seq.campaign_json, par.campaign_json);

  // And each constituent artifact, for sharper failure localization:
  ASSERT_EQ(seq.run_reports.size(), par.run_reports.size());
  for (std::size_t i = 0; i < seq.run_reports.size(); ++i) {
    EXPECT_EQ(seq.run_reports[i], par.run_reports[i]) << "run " << i;
    EXPECT_EQ(seq.escapes[i], par.escapes[i]) << "run " << i;
    EXPECT_EQ(seq.vcd_hashes[i], par.vcd_hashes[i]) << "run " << i;
  }
  EXPECT_EQ(seq.coverage_bins, par.coverage_bins);

  // The workload really exercised its stochastic machinery (otherwise this
  // proof proves nothing): coverage bins were hit across the runs.
  std::uint64_t cov_hits = 0;
  for (const auto& [bin, n] : seq.coverage_bins) cov_hits += n;
  EXPECT_GT(cov_hits, 0u);
}

TEST(CampaignDeterminism, RerunWithSameSeedIsBitIdentical) {
  // Two fresh 2-worker campaigns, same seed: identical documents. Guards
  // against any hidden global state surviving engine construction.
  const DetArtifacts a = run_det_campaign(2, "r1");
  const DetArtifacts b = run_det_campaign(2, "r2");
  EXPECT_EQ(a.campaign_json, b.campaign_json);
  EXPECT_EQ(a.vcd_hashes, b.vcd_hashes);
}

}  // namespace
}  // namespace mts
