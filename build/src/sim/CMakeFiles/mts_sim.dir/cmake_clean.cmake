file(REMOVE_RECURSE
  "CMakeFiles/mts_sim.dir/error.cpp.o"
  "CMakeFiles/mts_sim.dir/error.cpp.o.d"
  "CMakeFiles/mts_sim.dir/report.cpp.o"
  "CMakeFiles/mts_sim.dir/report.cpp.o.d"
  "CMakeFiles/mts_sim.dir/scheduler.cpp.o"
  "CMakeFiles/mts_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/mts_sim.dir/time.cpp.o"
  "CMakeFiles/mts_sim.dir/time.cpp.o.d"
  "CMakeFiles/mts_sim.dir/trace.cpp.o"
  "CMakeFiles/mts_sim.dir/trace.cpp.o.d"
  "libmts_sim.a"
  "libmts_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
