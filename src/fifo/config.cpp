#include "fifo/config.hpp"

#include "fifo/detectors.hpp"
#include "sim/error.hpp"

namespace mts::fifo {

void FifoConfig::validate() const {
  if (capacity < 2) {
    throw ConfigError("FifoConfig: capacity must be >= 2 (the anticipating "
                      "detectors reserve one cell)");
  }
  if (capacity < anticipation_window(sync.depth)) {
    throw ConfigError("FifoConfig: capacity must be >= the anticipation "
                      "window (= synchronizer depth): deeper synchronizers "
                      "need proportionally more reserved cells");
  }
  if (width == 0 || width > 64) {
    throw ConfigError("FifoConfig: width must be 1..64");
  }
  if (empty_kind == EmptyDetectorKind::kBimodal && sync.depth == 0) {
    throw ConfigError("FifoConfig: the bi-modal empty detector needs at least "
                      "one synchronizer stage (the Fig. 7b OR gate would "
                      "otherwise form a combinational loop with the get "
                      "controller)");
  }
}

}  // namespace mts::fifo
