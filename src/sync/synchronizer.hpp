// Synchronizer chains with a metastability model.
//
// The paper adds a pair of synchronizing latches to each global detector
// output (full, ne, oe) and notes the designs "can be made arbitrarily
// robust" by using more than two (Sections 3.2, 7). This component is that
// chain, with the depth as a parameter:
//
//   depth 0  -- combinational passthrough (ablation only: demonstrates why
//               synchronization is needed at all),
//   depth 1  -- single flop,
//   depth 2  -- the paper's design,
//   depth n  -- arbitrarily robust.
//
// Metastability model: a flop sampling an input that changed inside its
// setup window resolves to the old or the new value. In kDeterministic mode
// the old value wins with zero settling (worst-case-late but reproducible:
// used by the Table 1 benches). In kStochastic mode the value is a coin
// flip and the settling time is drawn from Exp(tau); a settled-late output
// can fall into the *next* stage's window, and so on down the chain. An
// in-window sample at the final stage means unresolved metastability
// escaped into fan-out logic: it is counted and reported as "sync-failure".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gates/delay_model.hpp"
#include "gates/flops.hpp"
#include "gates/netlist.hpp"
#include "metrics/registry.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::sync {

enum class MetaMode { kDeterministic, kStochastic };

struct SyncConfig {
  unsigned depth = 2;
  MetaMode mode = MetaMode::kDeterministic;
};

class Synchronizer {
 public:
  /// Synchronizes `in` to `clk`. The output wire is owned by the chain.
  /// `initial` presets every stage (the FIFO resets with empty=1 visible to
  /// the get controller, so the ne/oe chains initialize high).
  ///
  /// `force_high`, when non-null, is a *synchronous* veto OR-ed into the
  /// chain immediately after the front stage -- the paper's Fig. 7b OR gate
  /// on the oe synchronizer: "controlled by en_get, it sets the oe to a
  /// neutral state one clock cycle after a get operation takes place". It
  /// must take effect one cycle early (after the front latch), otherwise a
  /// lone resident item followed by back-to-back gets underflows. With
  /// depth 1 the veto is OR-ed before the single stage (weaker, ablation
  /// only); with depth 0 it is OR-ed combinationally.
  Synchronizer(sim::Simulation& sim, const std::string& name, sim::Wire& clk,
               sim::Wire& in, const gates::DelayModel& dm, const SyncConfig& config,
               gates::TimingDomain* domain, bool initial = false,
               sim::Wire* force_high = nullptr);

  Synchronizer(const Synchronizer&) = delete;
  Synchronizer& operator=(const Synchronizer&) = delete;

  sim::Wire& out() noexcept { return *out_; }

  /// In-window samples observed at the front stage (normal operation).
  std::uint64_t front_events() const noexcept { return front_events_; }

  /// In-window samples at the final stage: metastability escaped the chain.
  std::uint64_t failures() const noexcept { return failures_; }

  unsigned depth() const noexcept { return config_.depth; }

 private:
  sim::Simulation& sim_;
  gates::Netlist nl_;
  SyncConfig config_;
  gates::DelayModel dm_;
  sim::Wire* out_ = nullptr;
  std::uint64_t front_events_ = 0;
  std::uint64_t failures_ = 0;
  // Set only when observability with a metrics registry was armed at
  // construction (sim/observe.hpp); dormant chains keep null pointers.
  metrics::Counter* in_window_ctr_ = nullptr;
  metrics::Counter* escape_ctr_ = nullptr;
  /// Set only when a verify::Hub was armed at construction: escapes past
  /// the final stage become kMetastabilityEscape violations.
  verify::Hub* mon_ = nullptr;
};

}  // namespace mts::sync
