
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/clock.cpp" "src/sync/CMakeFiles/mts_sync.dir/clock.cpp.o" "gcc" "src/sync/CMakeFiles/mts_sync.dir/clock.cpp.o.d"
  "/root/repo/src/sync/mtbf.cpp" "src/sync/CMakeFiles/mts_sync.dir/mtbf.cpp.o" "gcc" "src/sync/CMakeFiles/mts_sync.dir/mtbf.cpp.o.d"
  "/root/repo/src/sync/synchronizer.cpp" "src/sync/CMakeFiles/mts_sync.dir/synchronizer.cpp.o" "gcc" "src/sync/CMakeFiles/mts_sync.dir/synchronizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/mts_gates.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
