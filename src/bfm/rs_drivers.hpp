// Bus-functional models for latency-insensitive links (relay-station
// chains): a packet source and a stalling sink.
//
// Both follow the library-wide transfer convention: a transfer occurs on a
// link at a clock edge iff the link's stop wire was low during the cycle
// ending at that edge.
#pragma once

#include <cstdint>
#include <random>
#include <string>

#include "bfm/scoreboard.hpp"
#include "gates/delay_model.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::bfm {

/// Registered packet source: on every edge where the link's stop is low it
/// emits the next packet (valid with probability `valid_rate`, void
/// otherwise) and records the consumption of the previous one.
class RsSource {
 public:
  RsSource(sim::Simulation& sim, std::string name, sim::Wire& clk,
           sim::Word& out_data, sim::Wire& out_valid, sim::Wire& stop,
           const gates::DelayModel& dm, double valid_rate,
           std::uint64_t value_mask, Scoreboard& sb);

  RsSource(const RsSource&) = delete;
  RsSource& operator=(const RsSource&) = delete;

  void set_enabled(bool on) noexcept { enabled_ = on; }
  std::uint64_t sent_valid() const noexcept { return sent_valid_; }

 private:
  void on_edge();

  sim::Simulation& sim_;
  sim::Word& out_data_;
  sim::Wire& out_valid_;
  sim::Wire& stop_;
  sim::Time clk_to_q_;
  double valid_rate_;
  std::uint64_t value_mask_;
  Scoreboard& sb_;

  std::uint64_t next_value_ = 1;
  std::uint64_t pending_data_ = 0;
  bool pending_valid_ = false;
  std::uint64_t sent_valid_ = 0;
  bool enabled_ = true;
};

/// Stalling sink: consumes the packet on its link at every edge where its
/// own (registered) stop output was low, and raises stop with probability
/// `stall_rate` each cycle.
class RsSink {
 public:
  RsSink(sim::Simulation& sim, std::string name, sim::Wire& clk,
         sim::Word& in_data, sim::Wire& in_valid, sim::Wire& stop,
         const gates::DelayModel& dm, double stall_rate, Scoreboard& sb);

  RsSink(const RsSink&) = delete;
  RsSink& operator=(const RsSink&) = delete;

  std::uint64_t received_valid() const noexcept { return received_valid_; }
  sim::Time last_receive_time() const noexcept { return last_time_; }

 private:
  void on_edge();

  sim::Simulation& sim_;
  sim::Word& in_data_;
  sim::Wire& in_valid_;
  sim::Wire& stop_;
  sim::Time clk_to_q_;
  double stall_rate_;
  Scoreboard& sb_;

  bool prev_stop_ = false;
  std::uint64_t received_valid_ = 0;
  sim::Time last_time_ = 0;
};

}  // namespace mts::bfm
