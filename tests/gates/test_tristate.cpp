#include "gates/tristate.hpp"

#include <gtest/gtest.h>

#include "gates/netlist.hpp"
#include "sim/simulation.hpp"

namespace mts::gates {
namespace {

struct Fixture {
  sim::Simulation sim;
  Netlist nl{sim, "t"};
  void settle() { sim.run_until(sim.now() + 1000); }
};

TEST(Tristate, SingleEnabledDriverDrivesBus) {
  Fixture f;
  sim::Word& out = f.nl.word("bus");
  TristateBus<std::uint64_t> bus(f.sim, "bus", out, 100);
  sim::Wire& en = f.nl.wire("en");
  sim::Word& v = f.nl.word("v", 0x77);
  bus.attach_driver(en, v);

  en.set(true);
  f.settle();
  EXPECT_EQ(out.read(), 0x77u);
}

TEST(Tristate, BusKeeperHoldsValueWhenUndriven) {
  Fixture f;
  sim::Word& out = f.nl.word("bus");
  TristateBus<std::uint64_t> bus(f.sim, "bus", out, 100);
  sim::Wire& en = f.nl.wire("en");
  sim::Word& v = f.nl.word("v", 5);
  bus.attach_driver(en, v);

  en.set(true);
  f.settle();
  en.set(false);
  v.set(9);  // driver value changes while disabled: bus unaffected
  f.settle();
  EXPECT_EQ(out.read(), 5u);
}

TEST(Tristate, ValueChangeWhileEnabledPropagates) {
  Fixture f;
  sim::Word& out = f.nl.word("bus");
  TristateBus<std::uint64_t> bus(f.sim, "bus", out, 100);
  sim::Wire& en = f.nl.wire("en", true);
  sim::Word& v = f.nl.word("v", 1);
  bus.attach_driver(en, v);
  f.settle();
  v.set(2);
  f.settle();
  EXPECT_EQ(out.read(), 2u);
}

TEST(Tristate, MultipleDriversLastTokenWins) {
  Fixture f;
  sim::Word& out = f.nl.word("bus");
  TristateBus<std::uint64_t> bus(f.sim, "bus", out, 100);
  sim::Wire& en0 = f.nl.wire("en0");
  sim::Word& v0 = f.nl.word("v0", 10);
  sim::Wire& en1 = f.nl.wire("en1");
  sim::Word& v1 = f.nl.word("v1", 20);
  bus.attach_driver(en0, v0);
  bus.attach_driver(en1, v1);
  EXPECT_EQ(bus.driver_count(), 2u);

  en0.set(true);
  f.settle();
  EXPECT_EQ(out.read(), 10u);
  en0.set(false);
  en1.set(true);
  f.settle();
  EXPECT_EQ(out.read(), 20u);
  EXPECT_EQ(f.sim.report().count("bus-conflict"), 0u);
}

TEST(Tristate, ConflictReported) {
  Fixture f;
  sim::Word& out = f.nl.word("bus");
  TristateBus<std::uint64_t> bus(f.sim, "bus", out, 100);
  sim::Wire& en0 = f.nl.wire("en0", true);
  sim::Word& v0 = f.nl.word("v0", 10);
  sim::Wire& en1 = f.nl.wire("en1");
  sim::Word& v1 = f.nl.word("v1", 20);
  bus.attach_driver(en0, v0);
  bus.attach_driver(en1, v1);

  en1.set(true);
  f.settle();
  EXPECT_GE(f.sim.report().count("bus-conflict"), 1u);
}

TEST(Tristate, BoolBusWorks) {
  Fixture f;
  sim::Wire& out = f.nl.wire("bus");
  TristateBus<bool> bus(f.sim, "bus", out, 50);
  sim::Wire& en = f.nl.wire("en");
  sim::Wire& v = f.nl.wire("v", true);
  bus.attach_driver(en, v);
  en.set(true);
  f.settle();
  EXPECT_TRUE(out.read());
}

}  // namespace
}  // namespace mts::gates
