# Empty compiler generated dependencies file for bench_async_fifo_comparison.
# This may be replaced when dependencies are built.
