#include "mc/state_store.hpp"

#include <cstring>

#include "sim/error.hpp"

namespace mts::mc {

std::uint64_t fnv64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xCBF2'9CE4'8422'2325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x0000'0100'0000'01B3ull;
  }
  return h;
}

StateStore::StateStore(std::size_t record_size) : record_size_(record_size) {
  MTS_ASSERT(record_size_ > 0, "StateStore: empty records");
  table_.assign(1u << 16, kEmpty);
  mask_ = table_.size() - 1;
}

std::pair<std::uint32_t, bool> StateStore::intern(const std::uint8_t* rec) {
  const std::uint64_t h = fnv64(rec, record_size_);
  std::size_t slot = static_cast<std::size_t>(h) & mask_;
  while (table_[slot] != kEmpty) {
    const std::uint32_t id = table_[slot];
    if (std::memcmp(bytes(id), rec, record_size_) == 0) return {id, false};
    slot = (slot + 1) & mask_;
  }
  const std::uint32_t id = static_cast<std::uint32_t>(count_++);
  arena_.insert(arena_.end(), rec, rec + record_size_);
  table_[slot] = id;
  if (count_ * 4 >= table_.size() * 3) grow();  // keep load factor under 3/4
  return {id, true};
}

void StateStore::grow() {
  std::vector<std::uint32_t> bigger(table_.size() * 2, kEmpty);
  const std::size_t mask = bigger.size() - 1;
  for (std::uint32_t id = 0; id < count_; ++id) {
    const std::uint64_t h = fnv64(bytes(id), record_size_);
    std::size_t slot = static_cast<std::size_t>(h) & mask;
    while (bigger[slot] != kEmpty) slot = (slot + 1) & mask;
    bigger[slot] = id;
  }
  table_ = std::move(bigger);
  mask_ = mask;
}

}  // namespace mts::mc
