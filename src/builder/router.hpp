// 2D-mesh router with dimension-ordered (XY) routing for the generated
// latency-insensitive NoC topology.
//
// The router is a synchronous LI component: each input port has a small
// packet queue with registered stop back-pressure (raised while the queue
// is one short of full, so the in-flight packet of the LI convention always
// fits); each output port holds one packet in a register until the
// downstream link's stop is low. Per-output round-robin arbitration picks
// among the input queues whose head packet XY-routes to that output.
//
// XY routing on PacketFormat destinations (dest = (x << 4) | y): correct X
// first (E/W), then Y (N/S), then the local port -- deadlock-free on a
// mesh, and per-flow order-preserving (one path per source/dest pair),
// which is what TaggedSink checks.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "gates/delay_model.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::builder {

enum class RouterDir { kNorth, kSouth, kEast, kWest, kLocal };

const char* to_string(RouterDir d) noexcept;

class MeshRouter {
 public:
  struct InPort {
    RouterDir dir;
    sim::Word* data;
    sim::Wire* valid;
    sim::Wire* stop;  ///< driven by the router (back-pressure out)
  };
  struct OutPort {
    RouterDir dir;
    sim::Word* data;
    sim::Wire* valid;
    sim::Wire* stop;  ///< read by the router (downstream back-pressure)
  };

  MeshRouter(sim::Simulation& sim, std::string name, sim::Wire& clk,
             unsigned x, unsigned y, unsigned queue_depth,
             std::vector<InPort> inputs, std::vector<OutPort> outputs,
             const gates::DelayModel& dm);

  MeshRouter(const MeshRouter&) = delete;
  MeshRouter& operator=(const MeshRouter&) = delete;

  std::uint64_t forwarded() const noexcept { return forwarded_; }
  /// Packets whose XY direction has no declared output port here (dropped).
  std::uint64_t misroutes() const noexcept { return misroutes_; }
  /// Packets buffered in input queues and output registers right now.
  unsigned occupancy() const;

 private:
  void on_edge();
  /// The output direction a packet takes from this router, by XY rule.
  RouterDir route(std::uint64_t packet) const;

  sim::Simulation& sim_;
  std::string name_;
  sim::Time clk_to_q_;
  unsigned x_;
  unsigned y_;
  unsigned queue_depth_;
  std::vector<InPort> in_;
  std::vector<OutPort> out_;

  std::vector<std::deque<std::uint64_t>> queues_;  ///< per input
  std::vector<bool> prev_stop_;                    ///< per input, registered
  std::vector<std::uint64_t> held_;                ///< per output register
  std::vector<bool> held_full_;
  std::vector<std::size_t> rr_;                    ///< per output, round-robin
  std::uint64_t forwarded_ = 0;
  std::uint64_t misroutes_ = 0;
};

}  // namespace mts::builder
