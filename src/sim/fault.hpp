// Fault injection: a seeded plan of timing/metastability faults that the
// simulation's components consult at their hazard points.
//
// The paper's central claim is robustness -- synchronizer depth makes the
// mixed-clock FIFO "arbitrarily robust with regard to metastability", and
// the relay stations preserve latency-insensitive correctness under
// arbitrary stalling. A FaultPlan turns that claim into an executable,
// falsifiable experiment: it *causes* the rare events the analytic MTBF
// model only predicts, at an accelerated (but still model-derived) rate,
// and the fault test suite checks that the designs fail exactly where the
// theory says they must (depth-1 synchronizers, under-margined bundled
// data) and survive everywhere else.
//
// Supported fault kinds, each keyed by a substring match on the component
// or signal name ("" matches every site):
//
//   MetaFault      -- stretches a synchronizer flop's susceptibility window
//                     (more samples go metastable) and its resolution time
//                     constant tau (resolutions settle later), per the
//                     two-parameter MTBF model MTBF = exp(t_r/tau)/(Tw f f).
//                     Consulted by gates::Etdff (window) and
//                     sync::Synchronizer (resolution draw); the site key is
//                     the stage flop's qualified name, so "Sync.ff0" hits
//                     every chain's front stage and "neSync" a whole chain.
//   ClockFault     -- multiplicative drift plus extra uniform cycle-to-cycle
//                     jitter on a sync::Clock.
//   BundlingFault  -- delays the bundled data of a 4-phase async put
//                     relative to its request, modelling a matched-delay
//                     line whose datapath slowed more than the delay line
//                     under PVT variation. Consulted by bfm::AsyncPutDriver;
//                     fifo::async_put_data_margin() documents the margin
//                     past which this must corrupt data.
//
// Arming: Simulation::arm_faults(&plan). Components test a single nullable
// pointer on their hazard paths, so an unarmed simulation pays one
// predictable branch and produces bit-identical traces to a build without
// the subsystem (the golden-waveform test pins this).
//
// Fault randomness comes from the plan's own seeded RNG, not the
// simulation's, so arming a plan never perturbs the stimulus/metastability
// draws of other stochastic elements.
#pragma once

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace mts::sim {

/// Metastability acceleration for synchronizer stages.
struct MetaFault {
  double window_scale = 1.0;  ///< stretches the susceptibility window
  double tau_scale = 1.0;     ///< stretches the resolution time constant
  double p_new = 0.5;         ///< probability a metastable sample resolves new
  /// When > 0, a resolution draw at a chain's *final* stage settling later
  /// than this counts as "meta.escape": unresolved metastability reached
  /// fan-out logic. Tests set it to the receiving clock's resolution slack.
  Time escape_threshold = 0;

  /// The stretched susceptibility window for a nominal window `w`.
  Time widened_window(Time w) const {
    return static_cast<Time>(static_cast<double>(w) * window_scale);
  }
};

/// Period perturbation for one clock.
struct ClockFault {
  Time extra_jitter = 0;  ///< extra uniform +/- perturbation per cycle
  double drift = 1.0;     ///< multiplicative period stretch (PVT drift)
};

/// Bundled-data timing violation on an asynchronous put interface.
struct BundlingFault {
  /// Extra transport delay on the data wires relative to the request: the
  /// amount by which the datapath outran its matched-delay line. Corrupts
  /// enqueued data once it exceeds fifo::async_put_data_margin().
  Time data_lag = 0;
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // --- site registration (substring match; "" matches everything) ---
  void inject_meta(std::string site_substr, MetaFault f) {
    meta_.emplace_back(std::move(site_substr), f);
  }
  void inject_clock(std::string name_substr, ClockFault f) {
    clocks_.emplace_back(std::move(name_substr), f);
  }
  void inject_bundling(std::string site_substr, BundlingFault f) {
    bundling_.emplace_back(std::move(site_substr), f);
  }

  // --- site lookup (components call these at hazard points) ---
  const MetaFault* meta(const std::string& site) const {
    return find(meta_, site);
  }
  const ClockFault* clock(const std::string& name) const {
    return find(clocks_, name);
  }
  const BundlingFault* bundling(const std::string& site) const {
    return find(bundling_, site);
  }

  /// Fault-dedicated random stream (independent of Simulation::rng()).
  std::mt19937_64& rng() noexcept { return rng_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Injection accounting, keyed by kind: "meta.sample" (front-stage
  /// in-window samples), "meta.escape" (final-stage resolutions past the
  /// escape threshold), "clock.perturb", "bundling.lag".
  void note(const std::string& kind) { ++counts_[kind]; }
  std::uint64_t count(const std::string& kind) const {
    const auto it = counts_.find(kind);
    return it == counts_.end() ? 0 : it->second;
  }

  /// One-line reproduction record for test failure messages: the seed and
  /// every registered fault with its parameters.
  std::string describe() const;

 private:
  template <typename F>
  static const F* find(const std::vector<std::pair<std::string, F>>& sites,
                       const std::string& name) {
    for (const auto& [substr, fault] : sites) {
      if (substr.empty() || name.find(substr) != std::string::npos) {
        return &fault;
      }
    }
    return nullptr;
  }

  std::uint64_t seed_;
  std::mt19937_64 rng_;
  std::vector<std::pair<std::string, MetaFault>> meta_;
  std::vector<std::pair<std::string, ClockFault>> clocks_;
  std::vector<std::pair<std::string, BundlingFault>> bundling_;
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace mts::sim
