// Generated topologies at campaign scale: the 2D-mesh LI NoC and the
// multi-drop shared bus, swept as sim::Campaign config axes with protocol
// monitors armed and metastability faults injected at the declared
// synchronizer depth. Self-checking tagged traffic (per-flow sequence
// order, XY routing, round-robin arbitration) must survive all of it with
// zero violations.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "builder/builder.hpp"
#include "fifo/interface_sides.hpp"
#include "sim/campaign.hpp"
#include "sim/fault.hpp"
#include "sync/synchronizer.hpp"
#include "verify/hub.hpp"

namespace mts {
namespace {

using builder::BusParams;
using builder::Design;
using builder::MeshParams;
using builder::Primitive;
using sim::Time;

/// The same derivation topologies.cpp uses for its default base period.
Time topo_period(unsigned capacity, unsigned width, unsigned sync_depth) {
  fifo::FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = width;
  cfg.sync.depth = sync_depth;
  return 2 * std::max(fifo::SyncPutSide::min_period(cfg),
                      fifo::SyncGetSide::min_period(cfg));
}

std::size_t count_primitive(const Design& d, Primitive want) {
  std::size_t n = 0;
  for (const builder::Edge& e : d.edges()) {
    const builder::PortDecl& pp = d.node(e.from).ports[e.from_port];
    const builder::PortDecl& pc = d.node(e.to).ports[e.to_port];
    if (builder::resolve_primitive(pp.style, pp.domain, pc.style, pc.domain,
                                   e.opt.controller,
                                   e.opt.latency_left + e.opt.latency_right) ==
        want) {
      ++n;
    }
  }
  return n;
}

TEST(BuilderTopologies, MeshDesignShapeAndValidation) {
  MeshParams p;  // 2x2, per-column domains
  Design d = builder::make_mesh_noc(p);
  EXPECT_NO_THROW(d.check());
  EXPECT_EQ(d.domains().size(), 2u);             // one per column
  EXPECT_EQ(d.nodes().size(), 4u + 4u + 4u);     // routers + sources + sinks
  // Every east-west link is a clock-domain crossing; north-south links are
  // same-domain relay chains.
  EXPECT_EQ(count_primitive(d, Primitive::kMixedClockFifo), 4u);
  EXPECT_EQ(count_primitive(d, Primitive::kSrsChain), 4u);

  MeshParams flat = p;
  flat.per_column_domains = false;
  Design d1 = builder::make_mesh_noc(flat);
  EXPECT_NO_THROW(d1.check());
  EXPECT_EQ(d1.domains().size(), 1u);
  EXPECT_EQ(count_primitive(d1, Primitive::kMixedClockFifo), 0u);
}

TEST(BuilderTopologies, BusDesignShapeAndValidation) {
  BusParams p;  // 3 producers, 2 consumers, one domain per endpoint
  Design d = builder::make_shared_bus(p);
  EXPECT_NO_THROW(d.check());
  EXPECT_EQ(d.domains().size(), 1u + 3u + 2u);  // bus + producers + consumers
  EXPECT_EQ(d.nodes().size(), 1u + 3u + 2u);
  // Every attachment crosses into or out of the bus domain.
  EXPECT_EQ(count_primitive(d, Primitive::kMixedClockFifo), 5u);
}

TEST(BuilderTopologies, SweepAxesDecodeEveryCell) {
  ASSERT_GT(builder::mesh_sweep_size(), 0u);
  for (std::size_t c = 0; c < builder::mesh_sweep_size(); ++c) {
    const MeshParams p = builder::mesh_sweep_cell(c);
    EXPECT_GE(p.cols * p.rows, 4u);
    EXPECT_GE(p.sync_depth, 2u);
    EXPECT_FALSE(builder::mesh_sweep_label(c).empty());
    EXPECT_NO_THROW(builder::make_mesh_noc(p).check()) << c;
  }
  ASSERT_GT(builder::bus_sweep_size(), 0u);
  for (std::size_t c = 0; c < builder::bus_sweep_size(); ++c) {
    const BusParams p = builder::bus_sweep_cell(c);
    EXPECT_GE(p.producers, 2u);
    EXPECT_FALSE(builder::bus_sweep_label(c).empty());
    EXPECT_NO_THROW(builder::make_shared_bus(p).check()) << c;
  }
}

/// One mesh run: monitors armed, MetaFaults on every synchronizer front
/// flop, tagged traffic routed XY across the CDCs.
void run_mesh_cell(sim::CampaignContext& ctx) {
  const MeshParams p = builder::mesh_sweep_cell(ctx.spec().config);

  sim::Simulation& sim = ctx.sim();
  sim::FaultPlan plan(ctx.spec().seed);
  plan.inject_meta("Sync.ff0", sim::MetaFault{4.0, 12.0, 0.5, 50});
  sim.arm_faults(&plan);
  verify::Hub hub;
  hub.arm(sim);

  Design d = builder::make_mesh_noc(p);
  // Metastability faults are only sampled in stochastic synchronizer mode.
  d.link_defaults().sync.mode = sync::MetaMode::kStochastic;
  auto elab = builder::elaborate(sim, d);

  // Slowest column clock is detuned by (16 + 3*(cols-1))/16.
  const Time base = topo_period(p.link_capacity, p.width, p.sync_depth);
  const Time slowest = base * (16 + 3 * (p.cols - 1)) / 16;
  sim.run_until(4 * slowest + 600 * slowest);

  ctx.set("sent", static_cast<double>(elab->total_sent()));
  ctx.set("received", static_cast<double>(elab->total_received()));
  ctx.set("violations", static_cast<double>(elab->total_order_violations()));
  ctx.set("monitor_flags", static_cast<double>(hub.total()));
  ctx.set("meta_samples", static_cast<double>(plan.count("meta.sample")));
  ctx.result().artifact = elab->to_json();
  sim.arm_faults(nullptr);
}

TEST(BuilderTopologies, MeshSweepRunsCleanUnderCampaign) {
  sim::CampaignOptions opt;
  opt.workers = 2;
  opt.seed = 0x4E0C;
  sim::Campaign campaign(builder::mesh_sweep_size(), /*reps=*/1, opt);
  campaign.run(run_mesh_cell);

  ASSERT_EQ(campaign.failed(), 0u);
  for (const sim::RunResult& r : campaign.results()) {
    const std::string label = builder::mesh_sweep_label(r.index);
    EXPECT_EQ(r.scalars.at("violations"), 0.0) << label;
    EXPECT_EQ(r.scalars.at("monitor_flags"), 0.0) << label;
    EXPECT_GT(r.scalars.at("received"), 100.0) << label;
    // The CDC synchronizers were actually exercised by the fault plan.
    EXPECT_GT(r.scalars.at("meta_samples"), 0.0) << label;
    // The topology fingerprint is attached for repro bundles.
    EXPECT_NE(r.artifact.find("\"inserted\""), std::string::npos) << label;
    EXPECT_NE(r.artifact.find("mixed_clock_fifo"), std::string::npos) << label;
  }
}

void run_bus_cell(sim::CampaignContext& ctx) {
  const BusParams p = builder::bus_sweep_cell(ctx.spec().config);

  sim::Simulation& sim = ctx.sim();
  sim::FaultPlan plan(ctx.spec().seed);
  plan.inject_meta("Sync.ff0", sim::MetaFault{4.0, 12.0, 0.5, 50});
  sim.arm_faults(&plan);
  verify::Hub hub;
  hub.arm(sim);

  Design d = builder::make_shared_bus(p);
  d.link_defaults().sync.mode = sync::MetaMode::kStochastic;
  auto elab = builder::elaborate(sim, d);

  const Time base = topo_period(p.link_capacity, p.width, p.sync_depth);
  const std::size_t domains = 1 + p.producers + p.consumers;
  const Time slowest = base * (16 + 3 * (domains - 1)) / 16;
  sim.run_until(4 * slowest + 600 * slowest);

  ctx.set("received", static_cast<double>(elab->total_received()));
  ctx.set("violations", static_cast<double>(elab->total_order_violations()));
  ctx.set("monitor_flags", static_cast<double>(hub.total()));
  ctx.result().artifact = elab->to_json();
  sim.arm_faults(nullptr);
}

TEST(BuilderTopologies, BusSweepRunsCleanUnderCampaign) {
  sim::CampaignOptions opt;
  opt.workers = 2;
  opt.seed = 0xB5;
  sim::Campaign campaign(builder::bus_sweep_size(), /*reps=*/1, opt);
  campaign.run(run_bus_cell);

  ASSERT_EQ(campaign.failed(), 0u);
  for (const sim::RunResult& r : campaign.results()) {
    const std::string label = builder::bus_sweep_label(r.index);
    EXPECT_EQ(r.scalars.at("violations"), 0.0) << label;
    EXPECT_EQ(r.scalars.at("monitor_flags"), 0.0) << label;
    EXPECT_GT(r.scalars.at("received"), 100.0) << label;
  }
}

}  // namespace
}  // namespace mts
