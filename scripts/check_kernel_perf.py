#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh BENCH_kernel.json against the recorded
baseline at the repository root.

Usage: check_kernel_perf.py <recorded.json> <fresh.json> [tolerance]

Fails (exit 1) when the fresh dormant-path event-chain throughput
(current.scheduler_chain_events_per_sec -- the disabled-observability hot
path) falls more than `tolerance` (default 15%) below the recorded value.
A faster fresh run always passes.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 0.15
    with open(sys.argv[1]) as f:
        recorded = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    key = "scheduler_chain_events_per_sec"
    ref = recorded["current"][key]
    got = fresh["current"][key]
    floor = ref * (1.0 - tolerance)
    verdict = "OK" if got >= floor else "REGRESSION"
    print(
        f"{key}: recorded {ref:.3e}, fresh {got:.3e} "
        f"({got / ref * 100.0:.1f}% of recorded, floor {floor:.3e}) "
        f"-> {verdict}"
    )

    # Informational: the opt-in profiled path's overhead, if both sides
    # recorded it. Never gates -- profiling is opt-in by design.
    obs_rec = recorded.get("observability", {})
    obs_new = fresh.get("observability", {})
    if "profiler_overhead_pct" in obs_new:
        print(
            "profiler overhead: recorded "
            f"{obs_rec.get('profiler_overhead_pct', float('nan')):.1f}%, "
            f"fresh {obs_new['profiler_overhead_pct']:.1f}% (informational)"
        )

    return 0 if got >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
