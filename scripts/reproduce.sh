#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite, and regenerates every
# table/figure in EXPERIMENTS.md. All outputs (logs, VCD traces,
# BENCH_kernel.json, latency-histogram JSON, Perfetto traces) land in out/,
# which is gitignored.
set -euo pipefail
cd "$(dirname "$0")/.."
repo="$PWD"

cmake -B build -G Ninja
cmake --build build

mkdir -p out
ctest --test-dir build 2>&1 | tee out/test_output.txt

# Benchmarks run from out/ so that generated artifacts (fig3_*.vcd from
# bench_fig3_protocols, BENCH_kernel.json from bench_kernel_perf) are
# written there instead of the repository root.
(
  cd out
  for b in "$repo"/build/bench/bench_*; do
    echo "===================================================================="
    echo "== $(basename "$b")"
    echo "===================================================================="
    "$b"
    echo
  done
) 2>&1 | tee out/bench_output.txt

# Forward-latency distributions (metrics registry): one histogram per
# Table-1 configuration under saturated traffic, with a one-screen p50/p99
# summary on stdout and the full per-instance JSON in out/.
(
  cd out
  echo "===================================================================="
  echo "== latency histograms (saturated, per Table-1 configuration)"
  echo "===================================================================="
  "$repo"/build/bench/bench_table1_latency --hist-json latency_histograms.json
) 2>&1 | tee out/latency_histograms.txt

# End-to-end observability artifacts: the mixed-timing SoC example's
# Perfetto trace (open soc_trace.json at https://ui.perfetto.dev) and its
# full report (metrics + hottest-callbacks kernel profile).
(
  cd out
  "$repo"/build/examples/example_latency_insensitive_soc
) 2>&1 | tee out/soc_example.txt

# Kernel perf gate: dormant-path throughput vs the recorded baseline.
python3 scripts/check_kernel_perf.py BENCH_kernel.json out/BENCH_kernel.json

echo "done: see out/test_output.txt, out/bench_output.txt, out/*.vcd,"
echo "      out/latency_histograms.json, out/soc_trace.json, out/soc_report.json"
