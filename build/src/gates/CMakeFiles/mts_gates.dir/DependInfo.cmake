
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gates/celement.cpp" "src/gates/CMakeFiles/mts_gates.dir/celement.cpp.o" "gcc" "src/gates/CMakeFiles/mts_gates.dir/celement.cpp.o.d"
  "/root/repo/src/gates/combinational.cpp" "src/gates/CMakeFiles/mts_gates.dir/combinational.cpp.o" "gcc" "src/gates/CMakeFiles/mts_gates.dir/combinational.cpp.o.d"
  "/root/repo/src/gates/delay_model.cpp" "src/gates/CMakeFiles/mts_gates.dir/delay_model.cpp.o" "gcc" "src/gates/CMakeFiles/mts_gates.dir/delay_model.cpp.o.d"
  "/root/repo/src/gates/flops.cpp" "src/gates/CMakeFiles/mts_gates.dir/flops.cpp.o" "gcc" "src/gates/CMakeFiles/mts_gates.dir/flops.cpp.o.d"
  "/root/repo/src/gates/latch.cpp" "src/gates/CMakeFiles/mts_gates.dir/latch.cpp.o" "gcc" "src/gates/CMakeFiles/mts_gates.dir/latch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mts_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
