// Level-sensitive storage: SR latch, transparent D latch, word latch.
//
// The mixed-clock FIFO cell's data-validity controller is an SR latch whose
// set input is the enqueue condition (ptok & en_put) and whose reset input
// is the dequeue condition (gtok & en_get); it drives the cell state bits
// f_i / e_i asynchronously ("asynchronously sets f_i = 1", Section 3.1).
#pragma once

#include <string>

#include "gates/delay_model.hpp"
#include "gates/netlist.hpp"
#include "sim/signal.hpp"

namespace mts::gates {

/// Set/reset latch with complementary outputs q and qn.
/// Simultaneous s=r=1 is flagged in the report as "sr-conflict" and set wins
/// (deterministic, so races surface in tests rather than as nondeterminism).
class SrLatch {
 public:
  SrLatch(sim::Simulation& sim, std::string name, sim::Wire& s, sim::Wire& r,
          sim::Wire& q, sim::Wire& qn, Time delay, bool initial = false);

  SrLatch(const SrLatch&) = delete;
  SrLatch& operator=(const SrLatch&) = delete;

 private:
  void evaluate();

  sim::Simulation& sim_;
  std::string name_;
  sim::Wire& s_;
  sim::Wire& r_;
  sim::Wire& q_;
  sim::Wire& qn_;
  Time delay_;
  bool state_;
};

/// Transparent D latch for one bit: q follows d while en is high and holds
/// the last value when en falls.
class DLatch {
 public:
  DLatch(sim::Simulation& sim, std::string name, sim::Wire& d, sim::Wire& en,
         sim::Wire& q, const DelayModel& dm, bool initial = false);

  DLatch(const DLatch&) = delete;
  DLatch& operator=(const DLatch&) = delete;

 private:
  void update(bool from_enable);

  sim::Wire& d_;
  sim::Wire& en_;
  sim::Wire& q_;
  Time d_to_q_;
  Time en_to_q_;
};

/// Transparent latch for a word bus (the async put part's write port: REG is
/// written level-sensitively while `we` is high, per [4]).
class WordLatch {
 public:
  WordLatch(sim::Simulation& sim, std::string name, sim::Word& d, sim::Wire& en,
            sim::Word& q, const DelayModel& dm);

  WordLatch(const WordLatch&) = delete;
  WordLatch& operator=(const WordLatch&) = delete;

 private:
  void update(bool from_enable);

  sim::Word& d_;
  sim::Wire& en_;
  sim::Word& q_;
  Time d_to_q_;
  Time en_to_q_;
};

}  // namespace mts::gates
