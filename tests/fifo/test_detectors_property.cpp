// Exhaustive property tests: every detector output is checked against its
// defining predicate over ALL 2^N occupancy patterns for several ring
// sizes -- the strongest statement we can make about the Fig. 6 logic.
#include <gtest/gtest.h>

#include <sstream>

#include "fifo/detectors.hpp"
#include "sim/simulation.hpp"

namespace mts::fifo {
namespace {

bool ref_no_two_consecutive(unsigned pattern, unsigned n) {
  for (unsigned i = 0; i < n; ++i) {
    const unsigned j = (i + 1) % n;
    if ((pattern >> i & 1u) && (pattern >> j & 1u)) return false;
  }
  return true;
}

bool ref_none_set(unsigned pattern, unsigned n) {
  return (pattern & ((1u << n) - 1u)) == 0;
}

class DetectorExhaustive : public ::testing::TestWithParam<unsigned> {};

TEST_P(DetectorExhaustive, AllPatternsMatchReferencePredicates) {
  const unsigned n = GetParam();
  sim::Simulation sim;
  gates::Netlist nl(sim, "t");
  const gates::DelayModel dm = gates::DelayModel::hp06();

  std::vector<sim::Wire*> e;
  std::vector<sim::Wire*> f;
  for (unsigned i = 0; i < n; ++i) {
    e.push_back(&nl.wire("e" + std::to_string(i)));
    f.push_back(&nl.wire("f" + std::to_string(i)));
  }
  sim::Wire& full = build_anticipating_full(nl, e, dm);
  sim::Wire& exact_full = build_exact_full(nl, e, dm);
  sim::Wire& ne = build_anticipating_empty(nl, f, dm);
  sim::Wire& oe = build_true_empty(nl, f, dm);

  for (unsigned pattern = 0; pattern < (1u << n); ++pattern) {
    for (unsigned i = 0; i < n; ++i) {
      e[i]->set((pattern >> i & 1u) != 0);
      f[i]->set((pattern >> i & 1u) != 0);
    }
    sim.run_until(sim.now() + 20'000);

    std::ostringstream ctx;
    ctx << "n=" << n << " pattern=0x" << std::hex << pattern;
    // full: no two consecutive EMPTY cells (e bits).
    EXPECT_EQ(full.read(), ref_no_two_consecutive(pattern, n)) << ctx.str();
    // exact full: no empty cells at all.
    EXPECT_EQ(exact_full.read(), ref_none_set(pattern, n)) << ctx.str();
    // ne: no two consecutive FULL cells (f bits).
    EXPECT_EQ(ne.read(), ref_no_two_consecutive(pattern, n)) << ctx.str();
    // oe: no full cells.
    EXPECT_EQ(oe.read(), ref_none_set(pattern, n)) << ctx.str();
  }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, DetectorExhaustive,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 8u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mts::fifo
