// A growable power-of-two ring buffer (FIFO) for move-only elements.
//
// Backing storage for the scheduler's "delta ring" of current-timestamp
// events: push_back/pop_front are O(1) with no allocation once the buffer
// has grown to the workload's high-water mark, so the steady-state event
// loop recycles the same slots forever (the buffer is the event pool).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace mts::sim {

template <typename T>
class RingBuffer {
 public:
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return buf_.size(); }

  void push_back(T v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = std::move(v);
    ++size_;
  }

  /// Precondition: !empty(). Moves the front element out; its slot is
  /// immediately reusable.
  T pop_front() {
    T v = std::move(buf_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    return v;
  }

  /// Releases every element (each occupied slot is overwritten with a
  /// default-constructed T, destroying held resources) but keeps the grown
  /// backing storage -- the buffer stays an allocation-free pool.
  void clear() {
    for (std::size_t i = 0; i < size_; ++i) {
      buf_[(head_ + i) & mask_] = T{};
    }
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? kInitialCapacity : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  static constexpr std::size_t kInitialCapacity = 16;

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mts::sim
