// Run-wide diagnostics: timing violations, protocol errors, warnings.
//
// Checkers (setup/hold monitors, bus-conflict detection, scoreboards) never
// decide policy; they record findings here. Harness code inspects the counts
// to decide pass/fail -- e.g. the max-frequency search treats any "setup" or
// "hold" violation in the measured clock domain as a failed trial.
//
// to_json() serializes the whole report -- entries (up to the cap),
// per-category totals, kernel health counters including the profiler's
// hottest-callback table, and, when a metrics::Registry is bound (see
// metrics/registry.hpp), a "metrics" section with every per-instance
// counter/gauge/latency-histogram summary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/kernel_stats.hpp"
#include "sim/time.hpp"

namespace mts::sim {

enum class Severity { kInfo, kWarning, kViolation, kError };

/// "info" / "warning" / "violation" / "error".
const char* severity_name(Severity s) noexcept;

/// Escapes `s` for embedding in a JSON string literal (quotes, backslashes,
/// control characters).
std::string json_escape(const std::string& s);

struct ReportEntry {
  Time time = 0;
  Severity severity = Severity::kInfo;
  std::string category;  ///< e.g. "setup", "hold", "bus-conflict", "scoreboard"
  std::string message;
};

class Report {
 public:
  void add(Time t, Severity sev, std::string category, std::string message);

  /// Number of entries at kViolation or kError severity, any category.
  std::size_t failure_count() const noexcept { return failures_; }

  /// Number of entries recorded under `category` (any severity).
  std::size_t count(const std::string& category) const;

  /// Entries ever add()ed, including those dropped past the cap.
  std::uint64_t total_added() const noexcept { return total_added_; }

  const std::vector<ReportEntry>& entries() const noexcept { return entries_; }

  /// Per-category entry totals (counts keep counting past the entry cap).
  const std::map<std::string, std::size_t>& categories() const noexcept {
    return per_category_;
  }

  /// Checkpoint/wire seam (src/campaignd): replaces this report's recorded
  /// state with an exact snapshot previously captured through entries() /
  /// categories() / failure_count() / total_added() / kernel(). The
  /// snapshot is lossless -- unlike replaying add(), category totals and
  /// entry counts beyond the cap survive -- so a restored report merges
  /// byte-identically to the original. The metrics provider binding and
  /// the entry cap are left untouched.
  void restore(std::vector<ReportEntry> entries,
               std::map<std::string, std::size_t> per_category,
               std::size_t failures, std::uint64_t total_added,
               KernelStats kernel);

  /// Drops all recorded entries and counters.
  void clear();

  /// Campaign reduction: folds `other` into this report. Per-category
  /// totals, failure and entry counts add; `other`'s recorded entries are
  /// appended up to this report's cap; kernel counters combine (events and
  /// pool high-water add across shards, peak queue depth takes the max --
  /// shards are independent schedulers, so sums describe the campaign's
  /// aggregate work and the max its worst single-run pressure). The
  /// metrics provider binding is left untouched.
  void merge(const Report& other);

  /// Caps stored entries to bound memory in long runs; counters keep
  /// counting past the cap.
  void set_max_entries(std::size_t n) { max_entries_ = n; }
  std::size_t max_entries() const noexcept { return max_entries_; }

  /// Kernel health counters, refreshed by Simulation after run()/run_until()
  /// so harnesses can report them alongside the timing findings.
  void set_kernel(const KernelStats& s) { kernel_ = s; }
  const KernelStats& kernel() const noexcept { return kernel_; }

  /// Attaches a provider whose returned JSON object is embedded verbatim as
  /// the "metrics" member of to_json() (the registry binds itself here --
  /// metrics::Registry::bind). Pass an empty function to detach.
  void set_metrics_json_provider(std::function<std::string()> provider) {
    metrics_provider_ = std::move(provider);
  }

  /// The bound provider's JSON right now, or "" with no provider -- the
  /// snapshot hook matching set_metrics_json_provider (a wire/checkpoint
  /// snapshot captures the provider's output, not the closure).
  std::string metrics_json() const {
    return metrics_provider_ ? metrics_provider_() : std::string();
  }

  /// Whole-report JSON object; see the header comment for the shape.
  std::string to_json() const;

 private:
  std::vector<ReportEntry> entries_;
  std::map<std::string, std::size_t> per_category_;
  std::size_t failures_ = 0;
  std::uint64_t total_added_ = 0;
  std::size_t max_entries_ = 10'000;
  KernelStats kernel_;
  std::function<std::string()> metrics_provider_;
};

}  // namespace mts::sim
