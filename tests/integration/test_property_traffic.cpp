// Property-based traffic sweeps: for every FIFO design, across capacities,
// widths, clock ratios, traffic rates and seeds, random traffic must
// preserve FIFO order exactly, with zero over/underflow and zero timing
// violations -- the designs' core invariant.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <tuple>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "sync/clock.hpp"

namespace mts {
namespace {

using sim::Time;

struct TrafficParam {
  unsigned capacity;
  unsigned width;
  double clock_ratio;  // get period / put period scaling
  double put_rate;
  double get_rate;
  std::uint64_t seed;
};

std::string param_name(const TrafficParam& p) {
  std::ostringstream os;
  os << "c" << p.capacity << "_w" << p.width << "_r"
     << static_cast<int>(p.clock_ratio * 100) << "_p"
     << static_cast<int>(p.put_rate * 100) << "_g"
     << static_cast<int>(p.get_rate * 100) << "_s" << p.seed;
  return os.str();
}

std::uint64_t mask_of(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

class MixedClockTraffic : public ::testing::TestWithParam<TrafficParam> {};

TEST_P(MixedClockTraffic, OrderPreservedNoFailures) {
  const TrafficParam p = GetParam();
  fifo::FifoConfig cfg;
  cfg.capacity = p.capacity;
  cfg.width = p.width;

  sim::Simulation sim(p.seed);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = static_cast<Time>(
      2 * p.clock_ratio * static_cast<double>(fifo::SyncGetSide::min_period(cfg)));
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor put_mon(sim, cp.out(), dut.en_put(), dut.req_put(),
                          dut.data_put(), sb);
  bfm::GetMonitor get_mon(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {p.put_rate, 1}, mask_of(p.width));
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                         {p.get_rate, 1});

  sim.run_until(4 * pp + 500 * pp);
  // Drain: stop offering puts, keep getting until the FIFO rests empty, so
  // the conservation check below sees no in-flight items.
  put.set_enabled(false);
  sim.run_until(4 * pp + 500 * pp + 150 * gp);

  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_EQ(dut.overflow_count(), 0u);
  EXPECT_EQ(dut.underflow_count(), 0u);
  EXPECT_EQ(dut.put_domain().violations(), 0u);
  EXPECT_EQ(dut.get_domain().violations(), 0u);
  if (p.put_rate > 0.2 && p.get_rate > 0.2) {
    EXPECT_GT(get_mon.dequeued(), 20u);
  }
  // Conservation: after the drain, everything pushed was popped.
  EXPECT_EQ(dut.occupancy(), 0u);
  EXPECT_EQ(sb.pushed(), sb.popped());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MixedClockTraffic,
    ::testing::Values(
        TrafficParam{4, 8, 1.0, 1.0, 1.0, 1},
        TrafficParam{4, 8, 1.0, 1.0, 1.0, 2},
        TrafficParam{8, 8, 1.0, 1.0, 1.0, 3},
        TrafficParam{16, 16, 1.0, 1.0, 1.0, 4},
        TrafficParam{4, 8, 2.7, 0.3, 1.0, 5},   // much slower consumer clock
        TrafficParam{8, 16, 0.6, 0.5, 1.0, 6},  // fast consumer
        TrafficParam{4, 8, 1.3, 0.3, 0.3, 7},   // sparse both
        TrafficParam{8, 8, 3.1, 1.0, 0.5, 8},
        TrafficParam{16, 8, 0.7, 0.4, 1.0, 9},
        TrafficParam{4, 1, 1.0, 1.0, 1.0, 10},   // 1-bit datapath
        TrafficParam{5, 8, 1.618, 0.7, 0.6, 11},  // odd capacity
        TrafficParam{8, 64, 1.0, 1.0, 1.0, 12},   // max width
        TrafficParam{2, 8, 1.0, 0.6, 0.8, 13},    // minimum capacity
        TrafficParam{3, 8, 1.2, 1.0, 1.0, 14}),   // smallest odd ring
    [](const ::testing::TestParamInfo<TrafficParam>& info) {
      return param_name(info.param);
    });

class AsyncSyncTraffic : public ::testing::TestWithParam<TrafficParam> {};

TEST_P(AsyncSyncTraffic, OrderPreservedNoFailures) {
  const TrafficParam p = GetParam();
  fifo::FifoConfig cfg;
  cfg.capacity = p.capacity;
  cfg.width = p.width;

  sim::Simulation sim(p.seed);
  const Time gp = static_cast<Time>(
      2 * p.clock_ratio * static_cast<double>(fifo::SyncGetSide::min_period(cfg)));
  sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
  fifo::AsyncSyncFifo dut(sim, "dut", cfg, cg.out());
  bfm::Scoreboard sb(sim, "sb");
  // put_rate scales the sender's idle gap (0 gap when rate is 1).
  const Time gap = p.put_rate >= 1.0
                       ? 0
                       : static_cast<Time>(static_cast<double>(gp) *
                                           (1.0 - p.put_rate) * 2.0);
  bfm::AsyncPutDriver put(sim, "put", dut.put_req(), dut.put_ack(),
                          dut.put_data(), cfg.dm, gap, mask_of(p.width), &sb);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                         {p.get_rate, 1});
  bfm::GetMonitor get_mon(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);

  sim.run_until(4 * gp + 500 * gp);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_EQ(dut.overflow_count(), 0u);
  EXPECT_EQ(dut.underflow_count(), 0u);
  EXPECT_EQ(dut.get_domain().violations(), 0u);
  if (p.get_rate > 0.2) EXPECT_GT(get_mon.dequeued(), 20u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AsyncSyncTraffic,
    ::testing::Values(TrafficParam{4, 8, 1.0, 1.0, 1.0, 1},
                      TrafficParam{8, 8, 1.0, 1.0, 1.0, 2},
                      TrafficParam{16, 16, 1.0, 1.0, 1.0, 3},
                      TrafficParam{4, 8, 1.0, 0.3, 1.0, 4},
                      TrafficParam{4, 8, 1.0, 1.0, 0.3, 5},
                      TrafficParam{8, 16, 1.5, 0.6, 0.7, 6},
                      TrafficParam{5, 8, 1.0, 0.8, 0.4, 7},
                      TrafficParam{8, 64, 1.0, 1.0, 1.0, 8}),
    [](const ::testing::TestParamInfo<TrafficParam>& info) {
      return param_name(info.param);
    });

/// Jittery clocks: the designs must stay robust when periods wander.
class JitterTraffic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JitterTraffic, MixedClockSurvivesClockJitter) {
  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 8;
  sim::Simulation sim(GetParam());
  // 25% margin over the critical path, +/-8% cycle-to-cycle jitter.
  const Time pp = fifo::SyncPutSide::min_period(cfg) * 5 / 4;
  const Time gp = fifo::SyncGetSide::min_period(cfg) * 5 / 4;
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, pp / 12});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, gp / 12});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor put_mon(sim, cp.out(), dut.en_put(), dut.req_put(),
                          dut.data_put(), sb);
  bfm::GetMonitor get_mon(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm, {1.0, 1});
  sim.run_until(4 * pp + 400 * pp);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_EQ(dut.overflow_count(), 0u);
  EXPECT_EQ(dut.underflow_count(), 0u);
  EXPECT_GT(get_mon.dequeued(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitterTraffic,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace mts
