#include "sim/campaign.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <typeinfo>

#include "sim/error.hpp"
#include "sim/observe.hpp"
#include "sim/telemetry.hpp"
#include "sim/watchdog.hpp"
#include "verify/hub.hpp"

#if defined(__GNUG__)
#include <cxxabi.h>

#include <cstdlib>
#endif

namespace mts::sim {

namespace {

/// Human-readable exception type for failure entries and repro bundles.
std::string demangled(const char* name) {
#if defined(__GNUG__)
  int status = 0;
  char* p = abi::__cxa_demangle(name, nullptr, nullptr, &status);
  if (p != nullptr) {
    std::string s(p);
    std::free(p);
    return s;
  }
#endif
  return name;
}

}  // namespace

std::uint64_t campaign_run_seed(std::uint64_t campaign_seed,
                                std::uint64_t run_index) noexcept {
  // splitmix64 finalizer over the (seed, index) pair: one step of the
  // Weyl sequence keyed by the campaign seed, then the usual avalanche.
  std::uint64_t z = campaign_seed + 0x9e3779b97f4a7c15ULL * (run_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z == 0 ? 0x9e3779b97f4a7c15ULL : z;
}

RunShard::RunShard(const CampaignOptions& opt)
    : hub(std::make_unique<verify::Hub>()),
      obs(std::make_unique<Observability>()) {
  if (opt.telemetry_interval > 0) {
    TelemetryConfig tc;
    tc.interval = opt.telemetry_interval;
    tc.max_points = opt.telemetry_max_points;
    tc.histogram_window = opt.telemetry_window;
    // pool_high_water reflects worker arena warmth -- a placement detail
    // -- so campaign timelines never include host series.
    tc.include_host_series = false;
    tel = std::make_unique<Telemetry>(tc);
  }
}

RunShard::RunShard() : RunShard(CampaignOptions{}) {}

RunShard::~RunShard() = default;

void execute_run(RunShard& shard, const CampaignOptions& opt,
                 const RunSpec& spec, unsigned worker_index,
                 const Campaign::Body& body, RunResult& r,
                 Report* report_out, metrics::TimeSeriesStore* timeline_out) {
  r.index = spec.index;
  r.seed = spec.seed;

  const unsigned max_attempts = opt.max_attempts == 0 ? 1 : opt.max_attempts;
  // Engine observability: telemetry or an SLO gate switches the run onto
  // the isolated per-run registry (see RunShard).
  const bool engine_obs = opt.telemetry_interval > 0 || opt.slo.budget > 0.0;
  bool ok = false;
  bool identical = true;  // every failure same type + message so far
  std::string first_error;
  std::string first_type;
  unsigned executed = 0;

  for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
    executed = attempt;
    // Retries re-run the SAME seed from scratch: clear what the previous
    // attempt's body recorded so the slot holds one attempt's output.
    r.scalars.clear();
    r.artifact.clear();
    r.error.clear();
    r.error_type.clear();

    shard.sim.reset(spec.seed);
    verify::Hub* hub = nullptr;
    if (opt.collect_violations) {
      shard.hub->clear();
      shard.hub->arm(shard.sim);
      hub = shard.hub.get();
    }
    Telemetry* tel = nullptr;
    if (engine_obs) {
      // Fresh per-run registry + (telemetry_interval > 0) a reset
      // sampler, armed as an Observability bundle BEFORE the body builds
      // components -- they probe it at construction and wire their
      // metrics and telemetry sources without body changes. reset()
      // also drops the previous run's source closures, so no stale
      // component pointer survives into this attempt.
      shard.run_registry.clear();
      *shard.obs = Observability{};
      shard.obs->metrics = &shard.run_registry;
      if (shard.tel != nullptr) {
        shard.tel->reset();
        shard.obs->telemetry = shard.tel.get();
        tel = shard.tel.get();
      }
      shard.obs->arm(shard.sim);
    }
    // Per-attempt deadline: a hung attempt dies with DeadlineError on a
    // scheduler tick instead of hanging its pool thread forever.
    Watchdog wd(WatchdogConfig{opt.run_deadline_sec, 0, 4096});
    if (opt.run_deadline_sec > 0.0) wd.arm(shard.sim);

    CampaignContext ctx(shard.sim, shard.registry, spec, worker_index, r,
                        attempt, hub, tel);
    std::string err;
    std::string type;
    bool attempt_ok = false;
    try {
      body(ctx);
      attempt_ok = true;
    } catch (const std::exception& e) {
      err = e.what();
      type = demangled(typeid(e).name());
    } catch (...) {
      err = "unknown exception";
      type = "unknown";
    }
    // The local watchdog dies with this scope: never leave the scheduler
    // holding a pointer to it.
    if (opt.run_deadline_sec > 0.0) Watchdog::disarm(shard.sim);

    if (attempt_ok) {
      ok = true;
      break;
    }
    if (attempt == 1) {
      first_error = err;
      first_type = type;
    } else if (err != first_error || type != first_type) {
      identical = false;
    }
    r.error = err;  // last failure is the one reported
    r.error_type = type;
  }

  // Post-run telemetry / SLO handling, on the FINAL attempt's isolated
  // registry. Sampling stopped at queue drain, so no source closure runs
  // after the body's components were destroyed; only the sampled store
  // and the registry (both engine-owned) are read here.
  if (engine_obs && executed > 0) {
    const SloGate& slo = opt.slo;
    if (!slo.metric.empty()) {
      shard.run_registry.visit(
          [](const std::string&, const std::string&,
             const metrics::Counter&) {},
          [](const std::string&, const std::string&,
             const metrics::Gauge&) {},
          [&](const std::string& inst, const std::string& name,
              const metrics::Histogram& h) {
            if (name != slo.metric || h.count() == 0) return;
            const double v =
                h.window_capacity() > 0 && h.window_count() > 0
                    ? h.window_percentile(slo.percentile)
                    : h.percentile(slo.percentile);
            if (v > r.slo_worst) {
              r.slo_worst = v;
              r.slo_worst_instance = inst;
            }
            if (slo.budget > 0.0 && v > slo.budget) ++r.slo_breaches;
          });
      if (r.slo_breaches > 0 && slo.fail_run && ok) {
        ok = false;
        std::ostringstream msg;
        msg << "SLO breach: " << r.slo_worst_instance << "." << slo.metric
            << " p" << slo.percentile * 100.0 << " = " << r.slo_worst
            << " > budget " << slo.budget;
        r.error = msg.str();
        r.error_type = "SloBreach";
      }
    }
    // The isolated registry is deliberately NOT folded into the worker
    // accumulator: runs of different configs legitimately create
    // layout-divergent histograms under the same instance name (e.g.
    // capacity-sized occupancy buckets), which Registry::merge rejects --
    // and any "first layout wins" fallback would depend on run placement.
    // Per-run metrics are the per-run artifacts: timelines, SLO verdicts
    // and RunResult fields. Body-written metrics (ctx.metrics()) reduce
    // exactly as before.
    if (shard.tel != nullptr) {
      r.telemetry_samples = shard.tel->samples();
      if (r.telemetry_samples > 0) {
        if (!opt.timeline_dir.empty()) {
          std::error_code ec;
          std::filesystem::create_directories(opt.timeline_dir, ec);
          const std::string path = opt.timeline_dir + "/run-" +
                                   std::to_string(spec.index) + ".jsonl";
          if (shard.tel->write_jsonl(path)) r.timeline_path = path;
        }
        if (opt.capture_timelines) r.timeline_jsonl = shard.tel->to_jsonl();
        if (timeline_out != nullptr) *timeline_out = shard.tel->store();
      }
    }
  }

  r.ok = ok;
  r.attempts = executed;
  if (ok) {
    if (executed > 1) r.classification = "flaky";  // self-healed
  } else if (max_attempts > 1) {
    r.classification = identical ? "deterministic" : "flaky";
  }

  if (opt.collect_violations) {
    r.violations = shard.hub->total();
    if (r.violations > 0) r.violations_json = shard.hub->to_json();
  }

  // Snapshot the run's report with the pool high-water zeroed: arena
  // capacity is a property of the worker (it grows monotonically over
  // the runs the worker happened to execute), so leaving it in would
  // make the per-run snapshots -- and everything reduced from them --
  // depend on run placement.
  KernelStats ks = shard.sim.sched().stats();
  ks.pool_high_water = 0;
  shard.sim.report().set_kernel(ks);
  if (opt.capture_run_reports) {
    r.report_json = shard.sim.report().to_json();
  }
  if (report_out != nullptr) *report_out = shard.sim.report();
}

Campaign::Campaign(std::size_t configs, std::size_t reps, CampaignOptions opt)
    : configs_(configs), reps_(reps), opt_(opt) {
  unsigned w = opt_.workers;
  if (w == 0) w = std::thread::hardware_concurrency();
  if (w == 0) w = 1;
  const std::size_t n = runs();
  if (n > 0 && n < static_cast<std::size_t>(w)) {
    w = static_cast<unsigned>(n);
  }
  workers_ = w == 0 ? 1 : w;
}

struct Campaign::Cursor {
  std::atomic<std::size_t> next{0};
  /// Per-config finally-failed counts (quarantine_after > 0 only).
  std::unique_ptr<std::atomic<std::uint32_t>[]> config_failures;
};

/// Shared streaming-health tallies (progress sink). Guarded by one mutex:
/// updates happen once per completed run, far off any hot path.
struct Campaign::Live {
  std::mutex mu;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t quarantined = 0;
  std::uint64_t slo_breaches = 0;
  double worst = 0.0;
  std::size_t worst_run = 0;
  std::string worst_instance;
  std::chrono::steady_clock::time_point t0;
};

void Campaign::worker_loop(RunShard& w, unsigned worker_index,
                           const Body& body) {
  for (;;) {
    const std::size_t i =
        cursor_->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= runs()) return;

    RunSpec spec;
    spec.index = i;
    spec.config = i / reps_;
    spec.rep = i % reps_;
    spec.seed = campaign_run_seed(opt_.seed, i);

    RunResult& r = results_[i];
    r.index = i;
    r.seed = spec.seed;

    // Quarantine gate: a config that already burned its failure budget is
    // skipped, not executed (attempts == 0 marks the skip).
    if (opt_.quarantine_after > 0 &&
        cursor_->config_failures[spec.config].load(
            std::memory_order_relaxed) >= opt_.quarantine_after) {
      r.ok = false;
      r.attempts = 0;
      r.classification = "quarantined";
      r.error = "config " + std::to_string(spec.config) +
                " quarantined after " +
                std::to_string(opt_.quarantine_after) + " failed runs";
      continue;
    }

    execute_run(w, opt_, spec, worker_index, body, r, &run_reports_[i],
                &run_timelines_[i]);

    if (!r.ok) {
      if (opt_.quarantine_after > 0) {
        cursor_->config_failures[spec.config].fetch_add(
            1, std::memory_order_relaxed);
      }
      if (!opt_.repro_dir.empty()) {
        write_repro_bundle(opt_.repro_dir, opt_.seed, configs_, reps_, spec,
                           r);
      }
    }

    if (live_ != nullptr) note_run_done(r);
  }
}

void Campaign::note_run_done(const RunResult& r) {
  Live& lv = *live_;
  std::lock_guard<std::mutex> lock(lv.mu);
  ++lv.done;
  if (!r.ok) {
    ++lv.failed;
    if (r.classification == "quarantined") ++lv.quarantined;
  }
  lv.slo_breaches += r.slo_breaches;
  if (r.slo_worst > lv.worst) {
    lv.worst = r.slo_worst;
    lv.worst_run = r.index;
    lv.worst_instance = r.slo_worst_instance;
  }
  if (!opt_.progress) return;
  const bool last = lv.done == runs();
  if (!last && (opt_.health_every == 0 || lv.done % opt_.health_every != 0)) {
    return;
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - lv.t0)
                          .count();
  std::ostringstream line;
  line << "[campaign] " << lv.done << "/" << runs() << " runs, " << lv.failed
       << " failed, " << lv.quarantined << " quarantined";
  if (secs > 0.0) {
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.2f",
                  static_cast<double>(lv.done) / secs);
    line << ", " << rate << " runs/s";
  }
  if (opt_.slo.budget > 0.0) line << ", " << lv.slo_breaches << " SLO breaches";
  if (!lv.worst_instance.empty()) {
    line << ", worst " << opt_.slo.metric << " p" << opt_.slo.percentile * 100.0
         << " = " << lv.worst << " (" << lv.worst_instance << ", run "
         << lv.worst_run << ")";
  }
  opt_.progress(line.str());
}

bool write_repro_bundle(const std::string& dir, std::uint64_t campaign_seed,
                        std::size_t configs, std::size_t reps,
                        const RunSpec& spec, RunResult& r) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/run-" + std::to_string(spec.index) + ".json";
  std::ofstream out(path);
  if (!out) return false;  // unwritable repro_dir must not fail the campaign
  out << "{\n"
      << "  \"run\": {\"index\": " << spec.index
      << ", \"config\": " << spec.config << ", \"rep\": " << spec.rep
      << ", \"seed\": " << spec.seed
      << ", \"campaign_seed\": " << campaign_seed
      << ", \"configs\": " << configs << ", \"reps\": " << reps << "},\n"
      << "  \"failure\": {\"type\": \"" << json_escape(r.error_type)
      << "\", \"what\": \"" << json_escape(r.error)
      << "\", \"classification\": \"" << json_escape(r.classification)
      << "\", \"attempts\": " << r.attempts << "}";
  if (!r.scalars.empty()) {
    out << ",\n  \"scalars\": {";
    bool first = true;
    for (const auto& [name, v] : r.scalars) {
      if (!first) out << ", ";
      first = false;
      out << "\"" << json_escape(name) << "\": " << v;
    }
    out << "}";
  }
  if (!r.artifact.empty()) out << ",\n  \"artifact\": " << r.artifact;
  if (!r.violations_json.empty()) {
    out << ",\n  \"violations\": " << r.violations_json;
  }
  out << "\n}\n";
  if (!out) return false;
  r.repro_path = path;
  return true;
}

void Campaign::run(const Body& body) {
  if (ran_) throw ConfigError("Campaign::run may only be called once");
  ran_ = true;

  const std::size_t n = runs();
  results_.assign(n, RunResult{});
  run_reports_.assign(n, Report{});
  run_timelines_.assign(n, metrics::TimeSeriesStore{});
  if (n == 0) return;

  Cursor cursor;
  if (opt_.quarantine_after > 0 && configs_ > 0) {
    cursor.config_failures =
        std::make_unique<std::atomic<std::uint32_t>[]>(configs_);
    for (std::size_t c = 0; c < configs_; ++c) {
      cursor.config_failures[c].store(0, std::memory_order_relaxed);
    }
  }
  cursor_ = &cursor;

  // Workers live in a deque: Simulation is non-movable and each shard's
  // address must stay stable for the threads holding references into it.
  std::deque<RunShard> shards;
  for (unsigned wi = 0; wi < workers_; ++wi) shards.emplace_back(opt_);

  const auto t0 = std::chrono::steady_clock::now();
  Live live;
  live.t0 = t0;
  live_ = opt_.progress ? &live : nullptr;
  if (workers_ == 1) {
    worker_loop(shards[0], 0, body);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers_);
    for (unsigned wi = 0; wi < workers_; ++wi) {
      threads.emplace_back(
          [this, &shards, wi, &body] { worker_loop(shards[wi], wi, body); });
    }
    for (std::thread& t : threads) t.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  wall_seconds_ = std::chrono::duration<double>(t1 - t0).count();
  if (cursor.config_failures != nullptr) {
    for (std::size_t c = 0; c < configs_; ++c) {
      if (cursor.config_failures[c].load(std::memory_order_relaxed) >=
          opt_.quarantine_after) {
        quarantined_.push_back(c);
      }
    }
  }
  cursor_ = nullptr;
  live_ = nullptr;

  // Reduce the shards. Registries fold in worker-index order: every
  // registry merge is commutative and associative, so the result is
  // independent of both this order and the run->worker placement. Reports
  // fold from the per-run snapshots in RUN-index order instead -- entry
  // append order and the entry cap would otherwise depend on which worker
  // happened to claim which runs.
  for (const RunShard& w : shards) merged_.merge(w.registry);
  for (Report& rr : run_reports_) merged_report_.merge(rr);
  run_reports_.clear();  // per-run JSON (when captured) is in results_
  // Timelines fold in RUN-index order (run 0's points first): append order
  // is caller-visible in the exports, so -- like the Report fold -- the
  // merged store must not depend on which worker executed which run.
  for (metrics::TimeSeriesStore& ts : run_timelines_) {
    merged_timeline_.merge(ts);
  }
  run_timelines_.clear();

  // Failure + SLO manifests, folded in run-index order so the merged
  // artifact stays worker-count independent.
  append_campaign_manifests(results_, reps_, opt_.slo, merged_report_);
}

void append_campaign_manifests(const std::vector<RunResult>& results,
                               std::size_t reps, const SloGate& slo,
                               Report& report) {
  // Failure manifest: one merged-report entry per failed run, folded in
  // run-index order so the merged artifact stays worker-count independent.
  for (const RunResult& r : results) {
    if (r.ok) continue;
    std::string msg = "run " + std::to_string(r.index) + " (config " +
                      std::to_string(reps == 0 ? 0 : r.index / reps) +
                      ", rep " +
                      std::to_string(reps == 0 ? 0 : r.index % reps) +
                      ", seed " + std::to_string(r.seed) + ")";
    if (!r.classification.empty()) msg += " [" + r.classification + "]";
    if (!r.error_type.empty()) msg += " " + r.error_type;
    msg += ": " + r.error;
    report.add(0, Severity::kError, "campaign-failure", msg);
  }

  // SLO manifest: one merged-report entry per breaching run, folded in
  // run-index order (same worker-count-independence contract as above).
  if (slo.budget > 0.0) {
    for (const RunResult& r : results) {
      if (r.slo_breaches == 0) continue;
      std::ostringstream msg;
      msg << "run " << r.index << " (config "
          << (reps == 0 ? 0 : r.index / reps) << ", rep "
          << (reps == 0 ? 0 : r.index % reps) << "): "
          << r.slo_worst_instance << "." << slo.metric << " p"
          << slo.percentile * 100.0 << " = " << r.slo_worst
          << " > budget " << slo.budget << " (" << r.slo_breaches
          << " instance(s) over)";
      report.add(0, slo.fail_run ? Severity::kError : Severity::kWarning,
                 "campaign-slo", msg.str());
    }
  }
}

std::size_t Campaign::failed() const noexcept {
  std::size_t n = 0;
  for (const RunResult& r : results_) {
    if (!r.ok) ++n;
  }
  return n;
}

std::string campaign_health_json(const CampaignArtifacts& a,
                                 bool include_host_stats) {
  static const std::vector<RunResult> kNoResults;
  const std::vector<RunResult>& results =
      a.results != nullptr ? *a.results : kNoResults;
  const std::size_t total_runs = a.configs * a.reps;

  std::size_t ok = 0, failed_runs = 0, quarantined_runs = 0;
  std::uint64_t breaches = 0, samples = 0;
  double worst = 0.0;
  std::size_t worst_run = 0;
  std::string worst_instance;
  for (const RunResult& r : results) {
    if (r.ok) {
      ++ok;
    } else {
      ++failed_runs;
      if (r.classification == "quarantined") ++quarantined_runs;
    }
    breaches += r.slo_breaches;
    samples += r.telemetry_samples;
    if (r.slo_worst > worst) {
      worst = r.slo_worst;
      worst_run = r.index;
      worst_instance = r.slo_worst_instance;
    }
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"campaign\": {\"configs\": " << a.configs
     << ", \"reps\": " << a.reps << ", \"runs\": " << total_runs
     << ", \"seed\": " << a.seed << "},\n";
  if (include_host_stats) {
    const double rps = a.wall_seconds > 0.0
                           ? static_cast<double>(total_runs) / a.wall_seconds
                           : 0.0;
    os << "  \"host\": {\"workers\": " << a.workers
       << ", \"wall_seconds\": " << a.wall_seconds
       << ", \"runs_per_sec\": " << rps << "},\n";
  }
  os << "  \"health\": {\"ok\": " << ok << ", \"failed\": " << failed_runs
     << ", \"quarantined_runs\": " << quarantined_runs
     << ", \"slo_breaches\": " << breaches
     << ", \"telemetry_samples\": " << samples;
  if (!worst_instance.empty()) {
    os << ", \"worst\": {\"run\": " << worst_run << ", \"instance\": \""
       << json_escape(worst_instance) << "\", \"metric\": \""
       << json_escape(a.slo.metric)
       << "\", \"percentile\": " << a.slo.percentile
       << ", \"value\": " << worst << "}";
  }
  os << "}";
  if (a.slo.budget > 0.0) {
    os << ",\n  \"slo\": {\"metric\": \"" << json_escape(a.slo.metric)
       << "\", \"percentile\": " << a.slo.percentile
       << ", \"budget\": " << a.slo.budget << ", \"fail_run\": "
       << (a.slo.fail_run ? "true" : "false") << "}";
  }
  if (a.quarantined_configs != nullptr && !a.quarantined_configs->empty()) {
    os << ",\n  \"quarantined_configs\": [";
    bool first = true;
    for (std::size_t q : *a.quarantined_configs) {
      os << (first ? "" : ", ") << q;
      first = false;
    }
    os << "]";
  }
  os << "\n}\n";
  return os.str();
}

std::string Campaign::health_json(bool include_host_stats) const {
  CampaignArtifacts a;
  a.configs = configs_;
  a.reps = reps_;
  a.seed = opt_.seed;
  a.results = &results_;
  a.report = &merged_report_;
  a.metrics = &merged_;
  a.quarantined_configs = &quarantined_;
  a.slo = opt_.slo;
  a.workers = workers_;
  a.wall_seconds = wall_seconds_;
  return campaign_health_json(a, include_host_stats);
}

bool Campaign::write_health_json(const std::string& path,
                                 bool include_host_stats) const {
  std::ofstream out(path);
  if (!out) return false;
  out << health_json(include_host_stats);
  return static_cast<bool>(out);
}

std::string campaign_json(const CampaignArtifacts& a,
                          bool include_host_stats) {
  static const std::vector<RunResult> kNoResults;
  const std::vector<RunResult>& results =
      a.results != nullptr ? *a.results : kNoResults;
  const std::size_t total_runs = a.configs * a.reps;

  std::ostringstream os;
  os << "{\n";
  os << "  \"campaign\": {\"configs\": " << a.configs
     << ", \"reps\": " << a.reps << ", \"runs\": " << total_runs
     << ", \"seed\": " << a.seed << "},\n";
  if (include_host_stats) {
    const double rps = a.wall_seconds > 0.0
                           ? static_cast<double>(total_runs) / a.wall_seconds
                           : 0.0;
    os << "  \"host\": {\"workers\": " << a.workers
       << ", \"wall_seconds\": " << a.wall_seconds
       << ", \"runs_per_sec\": " << rps << "},\n";
  }
  os << "  \"runs\": [";
  bool first = true;
  std::size_t failed_runs = 0;
  for (const RunResult& r : results) {
    if (!r.ok) ++failed_runs;
    if (!first) os << ",";
    first = false;
    os << "\n    {\"index\": " << r.index << ", \"config\": "
       << (a.reps == 0 ? 0 : r.index / a.reps) << ", \"rep\": "
       << (a.reps == 0 ? 0 : r.index % a.reps) << ", \"seed\": " << r.seed
       << ", \"ok\": " << (r.ok ? "true" : "false");
    if (!r.error.empty()) {
      os << ", \"error\": \"" << json_escape(r.error) << "\"";
    }
    if (!r.error_type.empty()) {
      os << ", \"error_type\": \"" << json_escape(r.error_type) << "\"";
    }
    if (r.attempts != 1) os << ", \"attempts\": " << r.attempts;
    if (!r.classification.empty()) {
      os << ", \"classification\": \"" << json_escape(r.classification)
         << "\"";
    }
    if (!r.repro_path.empty()) {
      os << ", \"repro\": \"" << json_escape(r.repro_path) << "\"";
    }
    if (r.violations > 0) os << ", \"violations\": " << r.violations;
    if (r.telemetry_samples > 0) {
      os << ", \"telemetry_samples\": " << r.telemetry_samples;
    }
    if (!r.timeline_path.empty()) {
      os << ", \"timeline\": \"" << json_escape(r.timeline_path) << "\"";
    }
    if (r.slo_worst > 0.0) {
      os << ", \"slo_worst\": " << r.slo_worst << ", \"slo_worst_instance\": \""
         << json_escape(r.slo_worst_instance) << "\"";
    }
    if (r.slo_breaches > 0) os << ", \"slo_breaches\": " << r.slo_breaches;
    if (!r.scalars.empty()) {
      os << ", \"scalars\": {";
      bool sfirst = true;
      for (const auto& [name, v] : r.scalars) {
        if (!sfirst) os << ", ";
        sfirst = false;
        os << "\"" << json_escape(name) << "\": " << v;
      }
      os << "}";
    }
    if (!r.artifact.empty()) os << ", \"artifact\": " << r.artifact;
    if (!r.report_json.empty()) os << ", \"report\": " << r.report_json;
    os << "}";
  }
  os << (first ? "]" : "\n  ]") << ",\n";
  os << "  \"merged\": {\"failed_runs\": " << failed_runs;
  if (a.quarantined_configs != nullptr && !a.quarantined_configs->empty()) {
    os << ", \"quarantined_configs\": [";
    bool qfirst = true;
    for (std::size_t q : *a.quarantined_configs) {
      os << (qfirst ? "" : ", ") << q;
      qfirst = false;
    }
    os << "]";
  }
  os << ", \"report\": "
     << (a.report != nullptr ? a.report->to_json() : std::string("{}"))
     << ", \"metrics\": "
     << (a.metrics != nullptr ? a.metrics->to_json() : std::string("{}"))
     << "}\n";
  os << "}\n";
  return os.str();
}

std::string Campaign::to_json(bool include_host_stats) const {
  CampaignArtifacts a;
  a.configs = configs_;
  a.reps = reps_;
  a.seed = opt_.seed;
  a.results = &results_;
  a.report = &merged_report_;
  a.metrics = &merged_;
  a.quarantined_configs = &quarantined_;
  a.slo = opt_.slo;
  a.workers = workers_;
  a.wall_seconds = wall_seconds_;
  return campaign_json(a, include_host_stats);
}

bool Campaign::write_json(const std::string& path,
                          bool include_host_stats) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json(include_host_stats);
  return static_cast<bool>(out);
}

}  // namespace mts::sim
