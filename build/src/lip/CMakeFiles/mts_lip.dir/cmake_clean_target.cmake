file(REMOVE_RECURSE
  "libmts_lip.a"
)
