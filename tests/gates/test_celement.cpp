#include "gates/celement.hpp"

#include <gtest/gtest.h>

#include "gates/netlist.hpp"
#include "sim/simulation.hpp"

namespace mts::gates {
namespace {

struct Fixture {
  sim::Simulation sim;
  Netlist nl{sim, "t"};
  DelayModel dm = DelayModel::hp06();
  void settle(sim::Time t = 0) { sim.run_until(sim.now() + (t ? t : 2000)); }
};

TEST(CElement, RisesOnlyWhenAllInputsHigh) {
  Fixture f;
  sim::Wire& a = f.nl.wire("a");
  sim::Wire& b = f.nl.wire("b");
  sim::Wire& out = make_celement(f.nl, "c", {&a, &b}, f.dm);
  f.settle();
  a.set(true);
  f.settle();
  EXPECT_FALSE(out.read());
  b.set(true);
  f.settle();
  EXPECT_TRUE(out.read());
}

TEST(CElement, HoldsUntilAllInputsLow) {
  Fixture f;
  sim::Wire& a = f.nl.wire("a", true);
  sim::Wire& b = f.nl.wire("b", true);
  sim::Wire& out = make_celement(f.nl, "c", {&a, &b}, f.dm);
  f.settle();
  EXPECT_TRUE(out.read());
  a.set(false);
  f.settle();
  EXPECT_TRUE(out.read());  // hold
  b.set(false);
  f.settle();
  EXPECT_FALSE(out.read());
}

TEST(ACElement, PlusInputsOnlyGateTheRise) {
  Fixture f;
  sim::Wire& req = f.nl.wire("req");
  sim::Wire& ptok = f.nl.wire("ptok");
  sim::Wire& e = f.nl.wire("e", true);
  sim::Wire& we = make_acelement(f.nl, "we", {&req}, {&ptok, &e}, f.dm);
  f.settle();

  // req alone does not fire: plus inputs must also be high.
  req.set(true);
  f.settle();
  EXPECT_FALSE(we.read());
  req.set(false);
  f.settle();

  // All three high: we+ (the paper's put condition).
  ptok.set(true);
  req.set(true);
  f.settle();
  EXPECT_TRUE(we.read());

  // Plus inputs dropping does NOT reset the output...
  ptok.set(false);
  e.set(false);
  f.settle();
  EXPECT_TRUE(we.read());

  // ...only req- does (footnote 1).
  req.set(false);
  f.settle();
  EXPECT_FALSE(we.read());
}

TEST(CElement, NoCommonInputsRejected) {
  Fixture f;
  sim::Wire& out = f.nl.wire("o");
  EXPECT_THROW(f.nl.add<CElement>(f.sim, "bad", std::vector<sim::Wire*>{},
                                  std::vector<sim::Wire*>{}, out, 10, false),
               AssertionError);
}

TEST(CElement, InitialStateRespected) {
  Fixture f;
  sim::Wire& a = f.nl.wire("a");
  sim::Wire& out = f.nl.wire("o", true);
  f.nl.add<CElement>(f.sim, "c", std::vector<sim::Wire*>{&a},
                     std::vector<sim::Wire*>{}, out, f.dm.celement(1), true);
  // a=0 resets a single-input C-element at initial evaluation.
  f.settle();
  EXPECT_FALSE(out.read());
}

}  // namespace
}  // namespace mts::gates
