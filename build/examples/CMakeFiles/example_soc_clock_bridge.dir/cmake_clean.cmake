file(REMOVE_RECURSE
  "CMakeFiles/example_soc_clock_bridge.dir/soc_clock_bridge.cpp.o"
  "CMakeFiles/example_soc_clock_bridge.dir/soc_clock_bridge.cpp.o.d"
  "example_soc_clock_bridge"
  "example_soc_clock_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_soc_clock_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
