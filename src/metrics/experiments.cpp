#include "metrics/experiments.hpp"

#include <algorithm>
#include <memory>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "sim/simulation.hpp"
#include "sync/clock.hpp"

namespace mts::metrics {

namespace {

std::uint64_t width_mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

ValidationResult collect(const sim::Simulation& sim, std::uint64_t domain_viol,
                         std::uint64_t overflows, std::uint64_t underflows,
                         const bfm::Scoreboard& sb) {
  ValidationResult r;
  r.timing_violations = domain_viol;
  r.overflows = overflows;
  r.underflows = underflows;
  r.scoreboard_errors = sb.errors();
  r.enqueued = sb.pushed();
  r.dequeued = sb.popped();
  (void)sim;
  return r;
}

}  // namespace

ValidationResult validate_mixed_clock(const fifo::FifoConfig& cfg,
                                      sim::Time put_period, sim::Time get_period,
                                      unsigned cycles, std::uint64_t seed) {
  sim::Simulation sim(seed);
  const sim::Time settle = 4 * std::max(put_period, get_period);
  sync::Clock clk_put(sim, "clk_put", {put_period, settle, 0.5, 0});
  sync::Clock clk_get(sim, "clk_get",
                      {get_period, settle + get_period / 3, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, clk_put.out(), clk_get.out());
  bfm::Scoreboard sb(sim, "sb");

  const std::uint64_t mask = width_mask(cfg.width);
  std::unique_ptr<bfm::SyncPutDriver> put_drv;
  std::unique_ptr<bfm::SyncGetDriver> get_drv;
  std::unique_ptr<bfm::RsSource> src;
  std::unique_ptr<bfm::RsSink> sink;
  std::unique_ptr<bfm::GetMonitor> get_mon;
  std::unique_ptr<bfm::PutMonitor> put_mon;

  if (cfg.controller == fifo::ControllerKind::kFifo) {
    put_mon = std::make_unique<bfm::PutMonitor>(sim, clk_put.out(), dut.en_put(),
                                                dut.req_put(), dut.data_put(),
                                                sb);
    put_drv = std::make_unique<bfm::SyncPutDriver>(
        sim, "put", clk_put.out(), dut.req_put(), dut.data_put(), dut.full(),
        cfg.dm, bfm::RateConfig{1.0, 1}, mask);
    get_drv = std::make_unique<bfm::SyncGetDriver>(sim, "get", clk_get.out(),
                                                   dut.req_get(), cfg.dm,
                                                   bfm::RateConfig{1.0, 1});
    get_mon = std::make_unique<bfm::GetMonitor>(sim, clk_get.out(),
                                                dut.valid_get(), dut.data_get(),
                                                sb);
  } else {
    src = std::make_unique<bfm::RsSource>(sim, "src", clk_put.out(),
                                          dut.data_put(), dut.req_put(),
                                          dut.stop_out(), cfg.dm, 1.0, mask, sb);
    sink = std::make_unique<bfm::RsSink>(sim, "sink", clk_get.out(),
                                         dut.data_get(), dut.valid_get(),
                                         dut.stop_in(), cfg.dm, 0.0, sb);
  }

  // Settle phase: initial gate evaluations propagate; no checks yet.
  dut.put_domain().set_enabled(false);
  dut.get_domain().set_enabled(false);
  sim.run_until(settle - 1);
  dut.put_domain().set_enabled(true);
  dut.get_domain().set_enabled(true);

  sim.run_until(settle + static_cast<sim::Time>(cycles) * put_period);

  return collect(sim,
                 dut.put_domain().violations() + dut.get_domain().violations(),
                 dut.overflow_count(), dut.underflow_count(), sb);
}

ValidationResult validate_async_sync(const fifo::FifoConfig& cfg,
                                     sim::Time get_period, sim::Time put_gap,
                                     unsigned cycles, std::uint64_t seed) {
  sim::Simulation sim(seed);
  const sim::Time settle = 4 * get_period;
  sync::Clock clk_get(sim, "clk_get", {get_period, settle, 0.5, 0});
  fifo::AsyncSyncFifo dut(sim, "dut", cfg, clk_get.out());
  bfm::Scoreboard sb(sim, "sb");

  bfm::AsyncPutDriver put_drv(sim, "put", dut.put_req(), dut.put_ack(),
                              dut.put_data(), cfg.dm, put_gap,
                              width_mask(cfg.width), &sb);
  std::unique_ptr<bfm::SyncGetDriver> get_drv;
  if (cfg.controller == fifo::ControllerKind::kFifo) {
    get_drv = std::make_unique<bfm::SyncGetDriver>(sim, "get", clk_get.out(),
                                                   dut.req_get(), cfg.dm,
                                                   bfm::RateConfig{1.0, 1});
  }
  bfm::GetMonitor get_mon(sim, clk_get.out(), dut.valid_get(), dut.data_get(),
                          sb);

  dut.get_domain().set_enabled(false);
  sim.run_until(settle - 1);
  dut.get_domain().set_enabled(true);

  sim.run_until(settle + static_cast<sim::Time>(cycles) * get_period);
  return collect(sim, dut.get_domain().violations(), dut.overflow_count(),
                 dut.underflow_count(), sb);
}

ThroughputRow throughput_mixed_clock(const fifo::FifoConfig& cfg,
                                     unsigned cycles) {
  ThroughputRow row;
  const sim::Time put_p = fifo::SyncPutSide::min_period(cfg);
  const sim::Time get_p = fifo::SyncGetSide::min_period(cfg);
  row.put = sim::period_to_mhz(put_p);
  row.get = sim::period_to_mhz(get_p);
  const ValidationResult v = validate_mixed_clock(cfg, put_p, get_p, cycles);
  row.validated = v.clean() && v.enqueued > cycles / 4 && v.dequeued > cycles / 4;
  return row;
}

ThroughputRow throughput_async_sync(const fifo::FifoConfig& cfg,
                                    unsigned cycles) {
  ThroughputRow row;
  row.put_async = true;
  const sim::Time get_p = fifo::SyncGetSide::min_period(cfg);
  row.get = sim::period_to_mhz(get_p);

  // Saturated put-side measurement.
  sim::Simulation sim(1);
  const sim::Time settle = 4 * get_p;
  sync::Clock clk_get(sim, "clk_get", {get_p, settle, 0.5, 0});
  fifo::AsyncSyncFifo dut(sim, "dut", cfg, clk_get.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncPutDriver put_drv(sim, "put", dut.put_req(), dut.put_ack(),
                              dut.put_data(), cfg.dm, 0,
                              width_mask(cfg.width), &sb);
  std::unique_ptr<bfm::SyncGetDriver> get_drv;
  if (cfg.controller == fifo::ControllerKind::kFifo) {
    get_drv = std::make_unique<bfm::SyncGetDriver>(sim, "get", clk_get.out(),
                                                   dut.req_get(), cfg.dm,
                                                   bfm::RateConfig{1.0, 1});
  }
  bfm::GetMonitor get_mon(sim, clk_get.out(), dut.valid_get(), dut.data_get(),
                          sb);

  dut.get_domain().set_enabled(false);
  const sim::Time warmup = settle + 60 * get_p;
  sim.run_until(warmup);
  dut.get_domain().set_enabled(true);
  const std::uint64_t ops0 = put_drv.completed();
  const sim::Time window = static_cast<sim::Time>(cycles) * get_p;
  sim.run_until(warmup + window);
  const std::uint64_t ops = put_drv.completed() - ops0;
  row.put = static_cast<double>(ops) * 1e6 / static_cast<double>(window);
  row.validated = dut.get_domain().violations() == 0 &&
                  dut.overflow_count() == 0 && dut.underflow_count() == 0 &&
                  sb.errors() == 0 && ops > cycles / 8;
  return row;
}

ThroughputRow throughput_sync_async(const fifo::FifoConfig& cfg,
                                    unsigned cycles) {
  ThroughputRow row;
  const sim::Time put_p = fifo::SyncPutSide::min_period(cfg);
  row.put = sim::period_to_mhz(put_p);

  sim::Simulation sim(1);
  const sim::Time settle = 4 * put_p;
  sync::Clock clk_put(sim, "clk_put", {put_p, settle, 0.5, 0});
  fifo::SyncAsyncFifo dut(sim, "dut", cfg, clk_put.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor put_mon(sim, clk_put.out(), dut.en_put(), dut.req_put(),
                          dut.data_put(), sb);
  bfm::SyncPutDriver put_drv(sim, "put", clk_put.out(), dut.req_put(),
                             dut.data_put(), dut.full(), cfg.dm,
                             bfm::RateConfig{1.0, 1}, width_mask(cfg.width));
  bfm::AsyncGetDriver get_drv(sim, "get", dut.get_req(), dut.get_ack(),
                              dut.get_data(), cfg.dm, 0, &sb);

  dut.put_domain().set_enabled(false);
  const sim::Time warmup = settle + 60 * put_p;
  sim.run_until(warmup);
  dut.put_domain().set_enabled(true);
  const std::uint64_t ops0 = get_drv.completed();
  const sim::Time window = static_cast<sim::Time>(cycles) * put_p;
  sim.run_until(warmup + window);
  const std::uint64_t ops = get_drv.completed() - ops0;
  row.get = static_cast<double>(ops) * 1e6 / static_cast<double>(window);
  row.validated = dut.put_domain().violations() == 0 &&
                  dut.overflow_count() == 0 && dut.underflow_count() == 0 &&
                  sb.errors() == 0 && ops > cycles / 8;
  return row;
}

AsyncAsyncRow throughput_async_async(const fifo::FifoConfig& cfg,
                                     unsigned handshakes) {
  AsyncAsyncRow row;
  row.validated = true;
  // Two runs: each side saturated, measured over a post-warmup window.
  for (int side = 0; side < 2; ++side) {
    sim::Simulation sim(1);
    fifo::AsyncAsyncFifo dut(sim, "dut", cfg);
    bfm::Scoreboard sb(sim, "sb");
    bfm::AsyncPutDriver put_drv(sim, "put", dut.put_req(), dut.put_ack(),
                                dut.put_data(), cfg.dm, 0,
                                width_mask(cfg.width), &sb);
    bfm::AsyncGetDriver get_drv(sim, "get", dut.get_req(), dut.get_ack(),
                                dut.get_data(), cfg.dm, 0, &sb);
    // Warm up, then measure over a fixed simulated-time window sized for
    // the requested number of handshakes (a handshake is a few ns).
    sim.run_until(100'000);
    const std::uint64_t ops0 =
        side == 0 ? put_drv.completed() : get_drv.completed();
    const sim::Time t0 = sim.now();
    sim.run_until(t0 + static_cast<sim::Time>(handshakes) * 5'000);
    const std::uint64_t ops =
        (side == 0 ? put_drv.completed() : get_drv.completed()) - ops0;
    const double mops = static_cast<double>(ops) * 1e6 /
                        static_cast<double>(sim.now() - t0);
    (side == 0 ? row.put_mops : row.get_mops) = mops;
    row.validated = row.validated && sb.errors() == 0 &&
                    dut.overflow_count() == 0 && dut.underflow_count() == 0;
  }
  return row;
}

LatencyRow latency_sync_async(const fifo::FifoConfig& cfg) {
  const sim::Time put_p = fifo::SyncPutSide::min_period(cfg);
  sim::Simulation sim(1);
  const sim::Time base = 4 * put_p;
  sync::Clock clk_put(sim, "clk_put", {put_p, base, 0.5, 0});
  fifo::SyncAsyncFifo dut(sim, "dut", cfg, clk_put.out());
  bfm::Scoreboard sb(sim, "sb");
  // The receiver's request is already pending when the item arrives.
  bfm::AsyncGetDriver get_drv(sim, "get", dut.get_req(), dut.get_ack(),
                              dut.get_data(), cfg.dm, 0, &sb);

  const sim::Time react = cfg.dm.flop.clk_to_q + 1;
  const sim::Time edge = base + 12 * put_p;
  const sim::Time t_start = edge + react;
  sim.sched().at(t_start, [&] {
    const std::uint64_t value = 0x2A & width_mask(cfg.width);
    dut.data_put().set(value);
    dut.req_put().set(true);
    sb.push(value);
  });
  sim.sched().at(edge + put_p + react, [&] { dut.req_put().set(false); });

  sim.run_until(edge + 60 * put_p);
  LatencyRow row{0, 0};
  if (get_drv.completed() >= 1) {
    const double lat =
        static_cast<double>(get_drv.last_ack_time() - t_start) / 1e3;
    row.min_ns = lat;
    row.max_ns = lat;
  }
  return row;
}

LatencyRow latency_async_async(const fifo::FifoConfig& cfg) {
  sim::Simulation sim(1);
  fifo::AsyncAsyncFifo dut(sim, "dut", cfg);
  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncGetDriver get_drv(sim, "get", dut.get_req(), dut.get_ack(),
                              dut.get_data(), cfg.dm, 0, &sb);
  bfm::AsyncPutDriver put_drv(sim, "put", dut.put_req(), dut.put_ack(),
                              dut.put_data(), cfg.dm,
                              bfm::AsyncPutDriver::kManual,
                              width_mask(cfg.width), &sb);

  const sim::Time t_start = 50'000;
  sim.sched().at(t_start, [&] { put_drv.issue_one(); });
  sim.run_until(t_start + 500'000);
  LatencyRow row{0, 0};
  if (get_drv.completed() >= 1) {
    const double lat =
        static_cast<double>(get_drv.last_ack_time() - t_start) / 1e3;
    row.min_ns = lat;
    row.max_ns = lat;
  }
  return row;
}

LatencyRow latency_mixed_clock(const fifo::FifoConfig& cfg, unsigned phases) {
  const sim::Time put_p = fifo::SyncPutSide::min_period(cfg);
  const sim::Time get_p = fifo::SyncGetSide::min_period(cfg);
  const sim::Time react = cfg.dm.flop.clk_to_q + 1;

  LatencyRow row{1e18, 0};
  for (unsigned i = 0; i < phases; ++i) {
    sim::Simulation sim(1);
    const sim::Time base = 4 * std::max(put_p, get_p);
    sync::Clock clk_put(sim, "clk_put", {put_p, base, 0.5, 0});
    sync::Clock clk_get(
        sim, "clk_get",
        {get_p, base + get_p * i / std::max(1u, phases), 0.5, 0});
    fifo::MixedClockFifo dut(sim, "dut", cfg, clk_put.out(), clk_get.out());
    bfm::Scoreboard sb(sim, "sb");
    bfm::GetMonitor mon(sim, clk_get.out(), dut.valid_get(), dut.data_get(), sb);
    std::unique_ptr<bfm::SyncGetDriver> get_drv;
    if (cfg.controller == fifo::ControllerKind::kFifo) {
      get_drv = std::make_unique<bfm::SyncGetDriver>(sim, "get", clk_get.out(),
                                                     dut.req_get(), cfg.dm,
                                                     bfm::RateConfig{1.0, 1});
    }

    // Single put aligned to a CLK_put edge, well after the detectors and
    // synchronizers have settled into the empty state.
    const sim::Time edge = base + 12 * put_p;
    const sim::Time t_start = edge + react;
    sim.sched().at(t_start, [&] {
      const std::uint64_t value = 0x2A & width_mask(cfg.width);
      dut.data_put().set(value);
      dut.req_put().set(true);
      sb.push(value);
    });
    sim.sched().at(edge + put_p + react, [&] { dut.req_put().set(false); });

    sim.run_until(edge + 60 * std::max(put_p, get_p));
    if (mon.dequeued() >= 1) {
      const sim::Time lat = mon.last_dequeue_time() - t_start;
      row.min_ns = std::min(row.min_ns, static_cast<double>(lat));
      row.max_ns = std::max(row.max_ns, static_cast<double>(lat));
    }
  }
  row.min_ns /= 1e3;
  row.max_ns /= 1e3;
  return row;
}

LatencyRow latency_async_sync(const fifo::FifoConfig& cfg, unsigned phases) {
  const sim::Time get_p = fifo::SyncGetSide::min_period(cfg);

  LatencyRow row{1e18, 0};
  for (unsigned i = 0; i < phases; ++i) {
    sim::Simulation sim(1);
    const sim::Time base = 4 * get_p;
    sync::Clock clk_get(
        sim, "clk_get",
        {get_p, base + get_p * i / std::max(1u, phases), 0.5, 0});
    fifo::AsyncSyncFifo dut(sim, "dut", cfg, clk_get.out());
    bfm::Scoreboard sb(sim, "sb");
    bfm::GetMonitor mon(sim, clk_get.out(), dut.valid_get(), dut.data_get(), sb);
    bfm::AsyncPutDriver put_drv(sim, "put", dut.put_req(), dut.put_ack(),
                                dut.put_data(), cfg.dm,
                                bfm::AsyncPutDriver::kManual,
                                width_mask(cfg.width), &sb);
    std::unique_ptr<bfm::SyncGetDriver> get_drv;
    if (cfg.controller == fifo::ControllerKind::kFifo) {
      get_drv = std::make_unique<bfm::SyncGetDriver>(sim, "get", clk_get.out(),
                                                     dut.req_get(), cfg.dm,
                                                     bfm::RateConfig{1.0, 1});
    }

    const sim::Time t_start = base + 12 * get_p;
    sim.sched().at(t_start, [&] { put_drv.issue_one(); });

    sim.run_until(t_start + 60 * get_p);
    if (mon.dequeued() >= 1) {
      const sim::Time lat = mon.last_dequeue_time() - t_start;
      row.min_ns = std::min(row.min_ns, static_cast<double>(lat));
      row.max_ns = std::max(row.max_ns, static_cast<double>(lat));
    }
  }
  row.min_ns /= 1e3;
  row.max_ns /= 1e3;
  return row;
}

}  // namespace mts::metrics
