// Observability configuration and the per-component observer shim.
//
// An Observability bundle names the four optional sinks -- transaction
// tracing (sim/trace_session.hpp), the metrics registry
// (metrics/registry.hpp), the kernel profiler (sim/profiler.hpp) and the
// time-series telemetry sampler (sim/telemetry.hpp) -- and
// arms them on a Simulation *before components are constructed*. Components
// check Simulation::observability() once, in their constructors: with
// nothing armed they register no extra listeners and keep no observer
// state, so the dormant path is the seed hot path plus one null-pointer
// branch inside listeners that already existed (the overflow/underflow
// monitors). tests/sim/test_observability_soak.cpp holds this to within
// noise of the PR-2 kernel.
//
// TransitObserver is the shared per-instance hook body: FIFOs and relay
// stations construct one when armed and call put_committed / get_observed /
// sync_crossed / stalled_by_stop_in at their commit points. It drives both
// sinks -- trace spans keyed by transaction id, and per-instance metrics
// (puts/gets/stalls counters, a forward-latency histogram in picoseconds
// and an occupancy histogram) -- and tolerates either sink being absent.
//
// Header-only (like metrics/registry.hpp) so every layer can use it with no
// new link edges: fifo/lip/sync already link mts_sim, and the registry is
// header-only by design.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "metrics/registry.hpp"
#include "sim/profiler.hpp"
#include "sim/simulation.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace_session.hpp"

namespace mts::sim {

struct Observability {
  TraceSession* trace = nullptr;
  metrics::Registry* metrics = nullptr;
  KernelProfiler* profiler = nullptr;
  Telemetry* telemetry = nullptr;  ///< in-run sampler (sim/telemetry.hpp)

  /// Arms this bundle on `sim` (and the profiler on its scheduler). Must
  /// run before the components to observe are constructed; the bundle and
  /// its sinks must outlive the simulation or be disarmed first. With a
  /// telemetry sampler present this also arms the registry's histogram
  /// sliding windows, merges counter tracks into the trace export, and
  /// schedules the periodic probe.
  void arm(Simulation& sim) {
    sim.set_observability(this);
    sim.sched().set_profiler(profiler);
    if (telemetry != nullptr) {
      if (metrics != nullptr) {
        metrics->set_default_window(telemetry->config().histogram_window);
        telemetry->set_registry(metrics);
      }
      if (trace != nullptr) telemetry->attach_trace(trace);
      telemetry->start(sim);
    }
  }

  /// Returns `sim` to the dormant fast path.
  static void disarm(Simulation& sim) {
    sim.set_observability(nullptr);
    sim.sched().set_profiler(nullptr);
  }
};

/// Histogram bucket layouts shared by every traced instance, so reports are
/// comparable across components.
inline std::vector<double> latency_bounds() {
  // 1-2-5 per decade, 100 ps .. 10 us: covers one gate delay up to a
  // thousand-cycle stall.
  return metrics::Histogram::exponential_bounds(100.0, 1e7);
}

class TransitObserver {
 public:
  TransitObserver(Observability& obs, Simulation& sim,
                  const std::string& instance, const std::string& put_track,
                  const std::string& get_track, unsigned capacity)
      : sim_(sim), trace_(obs.trace) {
    if (trace_ != nullptr) {
      stream_ = trace_->stream(instance, trace_->track(put_track),
                               trace_->track(get_track));
    }
    if (obs.metrics != nullptr) {
      puts_ = &obs.metrics->counter(instance, "puts");
      gets_ = &obs.metrics->counter(instance, "gets");
      stalls_ = &obs.metrics->counter(instance, "stalls");
      sync_crossings_ = &obs.metrics->counter(instance, "sync_crossings");
      latency_ps_ =
          &obs.metrics->histogram(instance, "latency_ps", latency_bounds());
      occupancy_ = &obs.metrics->histogram(
          instance, "occupancy", metrics::Histogram::linear_bounds(capacity));
    }
    if (obs.telemetry != nullptr) {
      // Instantaneous per-instance telemetry sources (sim/telemetry.hpp),
      // sampled by the periodic probe. The put-side timing domain names the
      // rollup domain. stall_duty is the fraction of active cycles (stalls
      // + gets) spent stalled over the last sampling interval, in [0, 1].
      sample_state_ = true;
      Telemetry& tel = *obs.telemetry;
      tel.add_source(instance, put_track, "occupancy",
                     [this] { return static_cast<double>(cur_occupancy_); });
      tel.add_source(instance, put_track, "in_flight", [this] {
        return static_cast<double>(src_puts_ - src_gets_);
      });
      tel.add_source(
          instance, put_track, "stall_duty",
          [this, prev_stalls = std::uint64_t{0},
           prev_gets = std::uint64_t{0}]() mutable {
            const std::uint64_t ds = src_stalls_ - prev_stalls;
            const std::uint64_t dg = src_gets_ - prev_gets;
            prev_stalls = src_stalls_;
            prev_gets = src_gets_;
            return static_cast<double>(ds) /
                   static_cast<double>(std::max<std::uint64_t>(1, ds + dg));
          });
    }
  }

  /// An item was latched (`occupancy`: items resident just after commit).
  /// Returns the TraceSession transaction id (0 with no trace session) so
  /// callers can tie other sinks -- e.g. a verify::StreamMonitor -- to the
  /// same transaction.
  std::uint64_t put_committed(std::uint64_t data, unsigned occupancy) {
    const Time t = sim_.now();
    std::uint64_t txn = 0;
    if (trace_ != nullptr) {
      txn = trace_->put_committed(stream_, t, data);
    } else if (latency_ps_ != nullptr) {
      // No trace session to keep the in-flight queue: keep our own put
      // timestamps so the latency histogram still fills.
      put_times_.push_back(t);
    }
    if (puts_ != nullptr) {
      puts_->inc();
      occupancy_->observe(static_cast<double>(occupancy));
    }
    if (sample_state_) {
      ++src_puts_;
      cur_occupancy_ = occupancy;
    }
    return txn;
  }

  /// The oldest item left on the get side. Returns the departing
  /// transaction's id (0 with no trace session).
  std::uint64_t get_observed(std::uint64_t data, unsigned occupancy) {
    const Time t = sim_.now();
    Time put_time = 0;
    bool have_put = false;
    std::uint64_t txn = 0;
    if (trace_ != nullptr) {
      const TraceSession::Departure dep = trace_->get_observed(stream_, t, data);
      put_time = dep.put_time;
      have_put = dep.id != 0;
      txn = dep.id;
    } else if (!put_times_.empty()) {
      put_time = put_times_.front();
      put_times_.pop_front();
      have_put = true;
    }
    if (gets_ != nullptr) {
      gets_->inc();
      occupancy_->observe(static_cast<double>(occupancy));
      if (have_put) latency_ps_->observe(static_cast<double>(t - put_time));
    }
    if (sample_state_) {
      ++src_gets_;
      cur_occupancy_ = occupancy;
    }
    return txn;
  }

  /// The oldest item became visible across the timing boundary.
  void sync_crossed() {
    if (trace_ != nullptr) trace_->sync_crossed(stream_, sim_.now());
    if (sync_crossings_ != nullptr) sync_crossings_->inc();
  }

  /// Back-pressure held the oldest item in place this cycle.
  void stalled_by_stop_in() {
    if (trace_ != nullptr) trace_->stalled_by_stop_in(stream_, sim_.now());
    if (stalls_ != nullptr) stalls_->inc();
    if (sample_state_) ++src_stalls_;
  }

 private:
  Simulation& sim_;
  TraceSession* trace_ = nullptr;
  TraceSession::StreamId stream_ = 0;
  metrics::Counter* puts_ = nullptr;
  metrics::Counter* gets_ = nullptr;
  metrics::Counter* stalls_ = nullptr;
  metrics::Counter* sync_crossings_ = nullptr;
  metrics::Histogram* latency_ps_ = nullptr;
  metrics::Histogram* occupancy_ = nullptr;
  std::deque<Time> put_times_;  ///< metrics-only mode (no trace session)
  // Telemetry source state (maintained only with a sampler armed; the
  // registered closures read these between events).
  bool sample_state_ = false;
  unsigned cur_occupancy_ = 0;
  std::uint64_t src_puts_ = 0;
  std::uint64_t src_gets_ = 0;
  std::uint64_t src_stalls_ = 0;
};

}  // namespace mts::sim
