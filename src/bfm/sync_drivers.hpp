// Bus-functional models for the synchronous FIFO interfaces (Fig. 3
// protocols), plus whitebox monitors that record provable enqueues and
// dequeues for the scoreboard.
//
// A synchronous sender is itself a synchronous circuit: it reads `full`
// combinationally and gates its own request, so driver decisions happen a
// clk-to-q-plus-logic delay after each edge, exactly as the paper's
// experimental setup drives the FIFO.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string>

#include "bfm/scoreboard.hpp"
#include "gates/delay_model.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::bfm {

/// Per-cycle offered traffic: 1.0 saturates the interface.
struct RateConfig {
  double rate = 1.0;
  std::uint64_t first_value = 1;  ///< payloads count up from here
};

/// Drives req_put/data_put against a mixed-clock-style put interface.
class SyncPutDriver {
 public:
  SyncPutDriver(sim::Simulation& sim, std::string name, sim::Wire& clk,
                sim::Wire& req_put, sim::Word& data_put, sim::Wire& full,
                const gates::DelayModel& dm, const RateConfig& rate,
                std::uint64_t value_mask);

  SyncPutDriver(const SyncPutDriver&) = delete;
  SyncPutDriver& operator=(const SyncPutDriver&) = delete;

  void set_enabled(bool on) noexcept { enabled_ = on; }
  std::uint64_t offered() const noexcept { return offered_; }
  std::uint64_t next_value() const noexcept { return next_value_; }

 private:
  sim::Simulation& sim_;
  sim::Wire& req_put_;
  sim::Word& data_put_;
  sim::Wire& full_;
  sim::Time react_delay_;
  RateConfig rate_;
  std::uint64_t value_mask_;
  std::uint64_t next_value_;
  std::uint64_t offered_ = 0;
  bool enabled_ = true;
};

/// Drives req_get; consumption is recorded by GetMonitor.
class SyncGetDriver {
 public:
  SyncGetDriver(sim::Simulation& sim, std::string name, sim::Wire& clk,
                sim::Wire& req_get, const gates::DelayModel& dm,
                const RateConfig& rate);

  SyncGetDriver(const SyncGetDriver&) = delete;
  SyncGetDriver& operator=(const SyncGetDriver&) = delete;

  void set_enabled(bool on) noexcept { enabled_ = on; }

 private:
  sim::Simulation& sim_;
  sim::Wire& req_get_;
  sim::Time react_delay_;
  RateConfig rate_;
  bool enabled_ = true;
};

/// Whitebox monitor: at every CLK_put edge where the broadcast en_put is
/// high and the data is valid, the word on data_put provably enters the
/// FIFO -- record it.
class PutMonitor {
 public:
  PutMonitor(sim::Simulation& sim, sim::Wire& clk, sim::Wire& en_put,
             sim::Wire& req_put, sim::Word& data_put, Scoreboard& sb);

  PutMonitor(const PutMonitor&) = delete;
  PutMonitor& operator=(const PutMonitor&) = delete;

  std::uint64_t enqueued() const noexcept { return count_; }

 private:
  std::uint64_t count_ = 0;
};

/// Whitebox monitor + functional consumer: at every CLK_get edge where
/// valid_get is high, the word on data_get provably leaves the FIFO --
/// check it. (valid_get is gated with en_get in FIFO mode and with
/// !(empty | stopIn) in relay-station mode, so one rule covers both.)
class GetMonitor {
 public:
  GetMonitor(sim::Simulation& sim, sim::Wire& clk, sim::Wire& valid_get,
             sim::Word& data_get, Scoreboard& sb);

  GetMonitor(const GetMonitor&) = delete;
  GetMonitor& operator=(const GetMonitor&) = delete;

  std::uint64_t dequeued() const noexcept { return count_; }
  sim::Time last_dequeue_time() const noexcept { return last_time_; }

 private:
  std::uint64_t count_ = 0;
  sim::Time last_time_ = 0;
};

}  // namespace mts::bfm
