file(REMOVE_RECURSE
  "CMakeFiles/mts_bfm.dir/async_drivers.cpp.o"
  "CMakeFiles/mts_bfm.dir/async_drivers.cpp.o.d"
  "CMakeFiles/mts_bfm.dir/rs_drivers.cpp.o"
  "CMakeFiles/mts_bfm.dir/rs_drivers.cpp.o.d"
  "CMakeFiles/mts_bfm.dir/sync_drivers.cpp.o"
  "CMakeFiles/mts_bfm.dir/sync_drivers.cpp.o.d"
  "libmts_bfm.a"
  "libmts_bfm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_bfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
