// builder::Design as pure data: the primitive-selection table, link-width
// and FifoConfig derivation, graph inspection and the exported netlist
// formats. Nothing here constructs a Simulation -- elaboration is covered
// by test_elaborate.cpp.
#include <gtest/gtest.h>

#include <string>

#include "builder/design.hpp"

namespace mts {
namespace {

using builder::Design;
using builder::DomainId;
using builder::LinkOptions;
using builder::NodeId;
using builder::Primitive;
using builder::TimingStyle;
using builder::kNoDomain;
using builder::resolve_primitive;
using fifo::ControllerKind;

constexpr TimingStyle kSync = TimingStyle::kSync;
constexpr TimingStyle kAsync = TimingStyle::kAsync;
constexpr ControllerKind kRs = ControllerKind::kRelayStation;
constexpr ControllerKind kFifo = ControllerKind::kFifo;

TEST(BuilderDesign, PrimitiveSelectionTable) {
  // Same domain, synchronous: relay stations when latency demands them,
  // plain buffered wires otherwise.
  EXPECT_EQ(resolve_primitive(kSync, 0, kSync, 0, kRs, 0), Primitive::kWire);
  EXPECT_EQ(resolve_primitive(kSync, 0, kSync, 0, kRs, 3),
            Primitive::kSrsChain);

  // Distinct synchronous domains: the mixed-clock FIFO (MCRS with the
  // relay-station controller) regardless of latency.
  EXPECT_EQ(resolve_primitive(kSync, 0, kSync, 1, kRs, 0),
            Primitive::kMixedClockFifo);
  EXPECT_EQ(resolve_primitive(kSync, 0, kSync, 1, kRs, 4),
            Primitive::kMixedClockFifo);
  EXPECT_EQ(resolve_primitive(kSync, 0, kSync, 1, kFifo, 0),
            Primitive::kMixedClockFifo);

  // Async producer into a clocked consumer: the Section 4 async-sync FIFO
  // (ASRS flavour under the relay-station controller).
  EXPECT_EQ(resolve_primitive(kAsync, kNoDomain, kSync, 1, kRs, 3),
            Primitive::kAsyncSyncFifo);
  EXPECT_EQ(resolve_primitive(kAsync, kNoDomain, kSync, 1, kFifo, 0),
            Primitive::kAsyncSyncFifo);

  // Clocked producer into an async consumer.
  EXPECT_EQ(resolve_primitive(kSync, 0, kAsync, kNoDomain, kRs, 1),
            Primitive::kSyncAsyncFifo);
  EXPECT_EQ(resolve_primitive(kSync, 0, kAsync, kNoDomain, kFifo, 0),
            Primitive::kSyncAsyncFifo);

  // Fully asynchronous: a micropipeline when the wire needs stages, the
  // pure FIFO under the on-demand controller, a bare channel otherwise.
  EXPECT_EQ(resolve_primitive(kAsync, kNoDomain, kAsync, kNoDomain, kRs, 2),
            Primitive::kMicropipeline);
  EXPECT_EQ(resolve_primitive(kAsync, kNoDomain, kAsync, kNoDomain, kRs, 0),
            Primitive::kWire);
  EXPECT_EQ(resolve_primitive(kAsync, kNoDomain, kAsync, kNoDomain, kFifo, 0),
            Primitive::kAsyncAsyncFifo);
}

Design two_domain_design(LinkOptions opt, unsigned from_w = 16,
                         unsigned to_w = 16) {
  Design d("t");
  const DomainId a = d.domain("a_clk", {1000, 0, 0.5, 0});
  const DomainId b = d.domain("b_clk", {1300, 0, 0.5, 0});
  const NodeId src =
      d.source("src", Design::sync_out("out", a, from_w), {1.0, 0, 0xFF});
  const NodeId snk = d.sink("snk", Design::sync_in("in", b, to_w));
  d.connect(src, "out", snk, "in", opt, "link");
  return d;
}

TEST(BuilderDesign, LinkWidthDefaultsToNarrowerEndpoint) {
  Design d = two_domain_design({}, /*from_w=*/32, /*to_w=*/16);
  EXPECT_EQ(d.link_width_of(d.edge(0)), 16u);

  LinkOptions narrow;
  narrow.link_width = 8;
  Design d2 = two_domain_design(narrow, 32, 16);
  EXPECT_EQ(d2.link_width_of(d2.edge(0)), 8u);
}

TEST(BuilderDesign, EdgeFifoConfigCarriesLinkAnnotations) {
  LinkOptions opt;
  opt.capacity = 6;
  opt.controller = ControllerKind::kFifo;
  Design d = two_domain_design(opt);
  d.link_defaults().sync.depth = 3;

  const fifo::FifoConfig cfg = d.edge_fifo_config(d.edge(0));
  EXPECT_EQ(cfg.capacity, 6u);
  EXPECT_EQ(cfg.width, 16u);  // the link width, not a default
  EXPECT_EQ(cfg.controller, ControllerKind::kFifo);
  EXPECT_EQ(cfg.sync.depth, 3u);  // inherited from link_defaults()

  // A per-edge base template overrides the design-wide defaults.
  LinkOptions based = opt;
  based.base.sync.depth = 4;
  based.base_set = true;
  Design d2 = two_domain_design(based);
  d2.link_defaults().sync.depth = 3;
  EXPECT_EQ(d2.edge_fifo_config(d2.edge(0)).sync.depth, 4u);
}

TEST(BuilderDesign, GraphInspection) {
  Design d = two_domain_design({});
  EXPECT_EQ(d.domains().size(), 2u);
  EXPECT_EQ(d.nodes().size(), 2u);
  EXPECT_EQ(d.edges().size(), 1u);
  EXPECT_EQ(d.edge_at(0, 0), 0u);          // src.out drives edge 0
  EXPECT_EQ(d.port_index(1, "in"), 0u);
  EXPECT_EQ(d.port(0, "out").width, 16u);
  EXPECT_NO_THROW(d.check());

  // Unknown ports are named errors, not UB.
  EXPECT_THROW((void)d.port_index(0, "nope"), ConfigError);
}

TEST(BuilderDesign, ToJsonNamesEverything) {
  LinkOptions opt;
  opt.latency_left = 2;
  Design d = two_domain_design(opt);
  const std::string js = d.to_json();
  for (const char* needle :
       {"\"t\"", "a_clk", "b_clk", "\"src\"", "\"snk\"", "\"link\"",
        "\"latency\": [2, 0]", "\"capacity\"", "\"controller\"",
        "\"primitive\": \"mixed_clock_fifo\""}) {
    EXPECT_NE(js.find(needle), std::string::npos) << needle << " missing in\n"
                                                  << js;
  }
}

TEST(BuilderDesign, ToDotNamesEverything) {
  Design d = two_domain_design({});
  const std::string dot = d.to_dot();
  for (const char* needle : {"digraph", "src", "snk", "a_clk", "b_clk"}) {
    EXPECT_NE(dot.find(needle), std::string::npos) << needle << " missing in\n"
                                                   << dot;
  }
}

TEST(BuilderDesign, EnumToStringRoundTrips) {
  EXPECT_STREQ(builder::to_string(Primitive::kMixedClockFifo),
               "mixed_clock_fifo");
  EXPECT_STREQ(builder::to_string(TimingStyle::kAsync), "async");
  EXPECT_STREQ(builder::to_string(builder::NodeKind::kRouter), "router");
  EXPECT_STREQ(fifo::to_string(ControllerKind::kRelayStation),
               "relay_station");
  EXPECT_STREQ(fifo::to_string(ControllerKind::kFifo), "fifo");
}

}  // namespace
}  // namespace mts
