#include "lip/stations.hpp"

#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "sync/clock.hpp"

namespace mts::lip {
namespace {

using sim::Time;

fifo::FifoConfig base_cfg(unsigned capacity = 4) {
  fifo::FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = 8;
  return cfg;
}

fifo::FifoConfig rs_cfg(unsigned capacity = 4) {
  fifo::FifoConfig cfg = base_cfg(capacity);
  cfg.controller = fifo::ControllerKind::kRelayStation;
  return cfg;
}

TEST(McRelayStationTest, ForcesRelayControllers) {
  sim::Simulation sim;
  sync::Clock cp(sim, "cp", {3000, 0, 0.5, 0});
  sync::Clock cg(sim, "cg", {3500, 0, 0.5, 0});
  // Even when handed a FIFO-mode config, the wrapper installs relay
  // controllers (the paper's derivation: only the controllers change).
  McRelayStation rs(sim, "rs", base_cfg(), cp.out(), cg.out());
  EXPECT_EQ(rs.fifo().config().controller,
            fifo::ControllerKind::kRelayStation);
}

TEST(McRelayStationTest, StreamsAcrossClockDomains) {
  sim::Simulation sim(1);
  const fifo::FifoConfig cfg = rs_cfg(8);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg) * 5 / 4;  // slower
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + 777, 0.5, 0});
  McRelayStation rs(sim, "rs", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::RsSource src(sim, "src", cp.out(), rs.packet_in_data(),
                    rs.packet_in_valid(), rs.stop_out(), cfg.dm, 1.0, 0xFF, sb);
  bfm::RsSink sink(sim, "sink", cg.out(), rs.packet_out_data(),
                   rs.packet_out_valid(), rs.stop_in(), cfg.dm, 0.0, sb);
  sim.run_until(4 * pp + 500 * pp);
  EXPECT_GT(sink.received_valid(), 200u);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_EQ(rs.fifo().overflow_count(), 0u);
  EXPECT_EQ(rs.fifo().underflow_count(), 0u);
}

TEST(McRelayStationTest, BackPressurePropagatesAsStopOut) {
  sim::Simulation sim(1);
  const fifo::FifoConfig cfg = rs_cfg(4);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + 777, 0.5, 0});
  McRelayStation rs(sim, "rs", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::RsSource src(sim, "src", cp.out(), rs.packet_in_data(),
                    rs.packet_in_valid(), rs.stop_out(), cfg.dm, 1.0, 0xFF, sb);
  // Consumer permanently stopped: the station fills with valid packets and
  // stalls the left link.
  rs.stop_in().set(true);
  sim.run_until(4 * pp + 40 * pp);
  EXPECT_TRUE(rs.stop_out().read());
  EXPECT_EQ(rs.fifo().occupancy(), cfg.capacity);
  EXPECT_EQ(rs.fifo().overflow_count(), 0u);

  // Release: everything drains in order.
  bfm::RsSink sink(sim, "sink", cg.out(), rs.packet_out_data(),
                   rs.packet_out_valid(), rs.stop_in(), cfg.dm, 0.0, sb);
  rs.stop_in().set(false);
  sim.run_until(4 * pp + 400 * pp);
  EXPECT_GT(sink.received_valid(), 100u);
  EXPECT_EQ(sb.errors(), 0u);
}

TEST(McRelayStationTest, MixedValidAndVoidPacketsKeepOrder) {
  // Relay stations transport void packets like any other (Section 5.1);
  // only the valid ones carry data and only those are order-checked.
  sim::Simulation sim(9);
  const fifo::FifoConfig cfg = rs_cfg(8);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + 777, 0.5, 0});
  McRelayStation rs(sim, "rs", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::RsSource src(sim, "src", cp.out(), rs.packet_in_data(),
                    rs.packet_in_valid(), rs.stop_out(), cfg.dm, 0.4, 0xFF, sb);
  bfm::RsSink sink(sim, "sink", cg.out(), rs.packet_out_data(),
                   rs.packet_out_valid(), rs.stop_in(), cfg.dm, 0.2, sb);
  sim.run_until(4 * pp + 800 * pp);
  EXPECT_GT(sink.received_valid(), 100u);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_EQ(rs.fifo().overflow_count(), 0u);
  EXPECT_EQ(rs.fifo().underflow_count(), 0u);
}

TEST(AsRelayStationTest, AsyncDomainToSyncDomain) {
  sim::Simulation sim(1);
  const fifo::FifoConfig cfg = rs_cfg(4);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
  AsRelayStation rs(sim, "rs", cfg, cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncPutDriver put(sim, "put", rs.put_req(), rs.put_ack(), rs.put_data(),
                          cfg.dm, 0, 0xFF, &sb);
  bfm::RsSink sink(sim, "sink", cg.out(), rs.packet_out_data(),
                   rs.packet_out_valid(), rs.stop_in(), cfg.dm, 0.0, sb);
  sim.run_until(4 * gp + 500 * gp);
  EXPECT_GT(sink.received_valid(), 100u);
  EXPECT_EQ(sb.errors(), 0u);
}

TEST(AsRelayStationTest, EmitsInvalidPacketsWhenEmpty) {
  sim::Simulation sim(1);
  const fifo::FifoConfig cfg = rs_cfg(4);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
  AsRelayStation rs(sim, "rs", cfg, cg.out());
  // No sender: valid_get must stay low on every cycle (Fig. 16).
  unsigned valid_edges = 0;
  sim::on_rise(cg.out(), [&] {
    if (rs.packet_out_valid().read()) ++valid_edges;
  });
  sim.run_until(4 * gp + 100 * gp);
  EXPECT_EQ(valid_edges, 0u);
}

TEST(AsRelayStationTest, StopInGatesValidity) {
  sim::Simulation sim(1);
  const fifo::FifoConfig cfg = rs_cfg(4);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
  AsRelayStation rs(sim, "rs", cfg, cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncPutDriver put(sim, "put", rs.put_req(), rs.put_ack(), rs.put_data(),
                          cfg.dm, 0, 0xFF, &sb);
  rs.stop_in().set(true);
  sim.run_until(4 * gp + 60 * gp);
  // Stopped: nothing valid leaves even though data is queued inside.
  EXPECT_FALSE(rs.packet_out_valid().read());
  EXPECT_GT(rs.fifo().occupancy(), 0u);
}

}  // namespace
}  // namespace mts::lip
