// Randomized configuration campaign: many FIFO configurations drawn from a
// seeded generator (capacity, width, clock ratio, traffic rates, sync
// depth), each run briefly and held to the core invariants. Complements
// the hand-picked parameter sweeps with breadth.
#include <gtest/gtest.h>

#include <random>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "sync/clock.hpp"

namespace mts {
namespace {

using sim::Time;

struct FuzzCase {
  unsigned capacity;
  unsigned width;
  double ratio;
  double put_rate;
  double get_rate;
  unsigned depth;
  std::uint64_t seed;
};

FuzzCase draw(std::mt19937_64& rng) {
  const unsigned caps[] = {2, 3, 4, 5, 6, 8, 12, 16, 24};
  const unsigned widths[] = {1, 4, 8, 13, 16, 32, 64};
  std::uniform_real_distribution<double> ratio_dist(0.9, 2.6);
  std::uniform_real_distribution<double> rate_dist(0.2, 1.0);
  FuzzCase c;
  c.capacity = caps[rng() % std::size(caps)];
  c.width = widths[rng() % std::size(widths)];
  c.ratio = ratio_dist(rng);
  c.put_rate = rate_dist(rng);
  c.get_rate = rate_dist(rng);
  // Deeper synchronizers need wider anticipation windows, which need
  // capacity headroom (FifoConfig::validate enforces this).
  c.depth = 2 + static_cast<unsigned>(rng() % 2);  // 2 or 3
  if (c.capacity <= c.depth) c.depth = 2;
  c.seed = rng();
  return c;
}

std::uint64_t mask_of(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

TEST(FuzzCampaign, FortyRandomMixedClockConfigsHoldInvariants) {
  std::mt19937_64 rng(20260707);
  for (int trial = 0; trial < 40; ++trial) {
    const FuzzCase c = draw(rng);
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": cap=" << c.capacity
                 << " w=" << c.width << " ratio=" << c.ratio
                 << " p=" << c.put_rate << " g=" << c.get_rate
                 << " depth=" << c.depth << " seed=" << c.seed);

    fifo::FifoConfig cfg;
    cfg.capacity = c.capacity;
    cfg.width = c.width;
    cfg.sync.depth = c.depth;

    sim::Simulation sim(c.seed);
    const Time pp = fifo::SyncPutSide::min_period(cfg) * 5 / 4;
    const Time gp = static_cast<Time>(
        c.ratio * static_cast<double>(fifo::SyncGetSide::min_period(cfg)) *
        1.25);
    sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
    sync::Clock cg(sim, "cg", {gp, 4 * pp + (c.seed % gp), 0.5, 0});
    fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
    bfm::Scoreboard sb(sim, "sb");
    bfm::PutMonitor pm(sim, cp.out(), dut.en_put(), dut.req_put(),
                       dut.data_put(), sb);
    bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
    bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                           dut.full(), cfg.dm, {c.put_rate, 1},
                           mask_of(c.width));
    bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                           {c.get_rate, 1});

    sim.run_until(4 * pp + 250 * pp);
    EXPECT_EQ(sb.errors(), 0u);
    EXPECT_EQ(dut.overflow_count(), 0u);
    EXPECT_EQ(dut.underflow_count(), 0u);
    EXPECT_EQ(dut.put_domain().violations(), 0u);
    EXPECT_EQ(dut.get_domain().violations(), 0u);
    // Conservation with at most one get in flight at the snapshot instant
    // (its cell already reads empty but the pop lands at the next edge).
    EXPECT_GE(sb.pushed(), sb.popped() + dut.occupancy());
    EXPECT_LE(sb.pushed(), sb.popped() + dut.occupancy() + 1);
  }
}

TEST(FuzzCampaign, TwentyRandomAsyncSyncConfigsHoldInvariants) {
  std::mt19937_64 rng(19700101);
  for (int trial = 0; trial < 20; ++trial) {
    const FuzzCase c = draw(rng);
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": cap=" << c.capacity
                 << " w=" << c.width << " g=" << c.get_rate
                 << " seed=" << c.seed);

    fifo::FifoConfig cfg;
    cfg.capacity = c.capacity;
    cfg.width = c.width;
    cfg.sync.depth = c.depth;

    sim::Simulation sim(c.seed);
    const Time gp = fifo::SyncGetSide::min_period(cfg) * 5 / 4;
    sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
    fifo::AsyncSyncFifo dut(sim, "dut", cfg, cg.out());
    bfm::Scoreboard sb(sim, "sb");
    const Time gap =
        static_cast<Time>((1.0 - c.put_rate) * 2.0 * static_cast<double>(gp));
    bfm::AsyncPutDriver put(sim, "put", dut.put_req(), dut.put_ack(),
                            dut.put_data(), cfg.dm, gap, mask_of(c.width),
                            &sb);
    bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                           {c.get_rate, 1});
    bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);

    sim.run_until(4 * gp + 250 * gp);
    EXPECT_EQ(sb.errors(), 0u);
    EXPECT_EQ(dut.overflow_count(), 0u);
    EXPECT_EQ(dut.underflow_count(), 0u);
    EXPECT_EQ(dut.get_domain().violations(), 0u);
  }
}

}  // namespace
}  // namespace mts
