# Empty compiler generated dependencies file for example_design_report.
# This may be replaced when dependencies are built.
