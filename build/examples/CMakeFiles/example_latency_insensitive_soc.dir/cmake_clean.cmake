file(REMOVE_RECURSE
  "CMakeFiles/example_latency_insensitive_soc.dir/latency_insensitive_soc.cpp.o"
  "CMakeFiles/example_latency_insensitive_soc.dir/latency_insensitive_soc.cpp.o.d"
  "example_latency_insensitive_soc"
  "example_latency_insensitive_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_latency_insensitive_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
