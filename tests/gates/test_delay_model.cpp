#include "gates/delay_model.hpp"

#include <gtest/gtest.h>

#include "sim/error.hpp"

namespace mts::gates {
namespace {

TEST(DelayModel, GateDelayGrowsWithFaninAndFanout) {
  const DelayModel dm = DelayModel::hp06();
  EXPECT_LT(dm.gate(1), dm.gate(2));
  EXPECT_LT(dm.gate(2), dm.gate(4));
  EXPECT_LT(dm.gate(2, 1), dm.gate(2, 4));
}

TEST(DelayModel, BufferTreeDepthIsLogarithmic) {
  const DelayModel dm = DelayModel::hp06();
  EXPECT_EQ(dm.buffer_tree(1), 0u);
  EXPECT_EQ(dm.buffer_tree(4), dm.buf_stage);
  EXPECT_EQ(dm.buffer_tree(5), 2 * dm.buf_stage);
  EXPECT_EQ(dm.buffer_tree(16), 2 * dm.buf_stage);
  EXPECT_EQ(dm.buffer_tree(17), 3 * dm.buf_stage);
}

TEST(DelayModel, BroadcastGrowsWithCellsAndBits) {
  const DelayModel dm = DelayModel::hp06();
  EXPECT_LT(dm.broadcast(4, 8), dm.broadcast(16, 8));
  EXPECT_LT(dm.broadcast(4, 8), dm.broadcast(4, 16));
}

TEST(DelayModel, TristateGrowsWithLoad) {
  const DelayModel dm = DelayModel::hp06();
  EXPECT_LT(dm.tristate_bus(4, 8), dm.tristate_bus(16, 8));
  EXPECT_LT(dm.tristate_bus(4, 8), dm.tristate_bus(4, 16));
}

TEST(DelayModel, CElementDelayGrowsWithFanin) {
  const DelayModel dm = DelayModel::hp06();
  EXPECT_LT(dm.celement(2), dm.celement(3));
}

TEST(DelayModel, ScaledShrinksEveryDelay) {
  const DelayModel dm = DelayModel::hp06();
  const DelayModel fast = dm.scaled(0.6);
  EXPECT_LT(fast.gate(3), dm.gate(3));
  EXPECT_LT(fast.flop.clk_to_q, dm.flop.clk_to_q);
  EXPECT_LT(fast.broadcast(8, 10), dm.broadcast(8, 10));
  EXPECT_LT(fast.celement(3), dm.celement(3));
  // No delay collapses to zero.
  EXPECT_GT(fast.load_per_fanout, 0u);
  EXPECT_GT(fast.bus_per_cell, 0u);
}

TEST(DelayModel, ScaledRejectsNonPositiveFactor) {
  EXPECT_THROW(DelayModel::hp06().scaled(0.0), ConfigError);
  EXPECT_THROW(DelayModel::hp06().scaled(-1.0), ConfigError);
}

TEST(DelayModel, InvalidFaninRejected) {
  const DelayModel dm = DelayModel::hp06();
  EXPECT_THROW(dm.gate(0), AssertionError);
  EXPECT_THROW(dm.celement(0), AssertionError);
}

}  // namespace
}  // namespace mts::gates
