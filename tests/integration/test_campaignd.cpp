// campaignd chaos harness: crash-isolated workers are killed, wedged, muted
// and disconnected mid-campaign, and the merged artifacts must stay
// byte-identical to the sequential in-process oracle (run_local). Also
// covers graceful shutdown + resume, quarantine, degradation, repro-bundle
// replay through a worker process, and the submit/status/fetch service.
//
// Worker processes are fork/exec'd from the mts_campaignd CLI binary; its
// path is baked in at configure time (MTS_CAMPAIGND_BIN_DEFAULT) and can be
// overridden with the MTS_CAMPAIGND_BIN environment variable. Tests skip
// when the binary is missing (e.g. a library-only build).
#include <gtest/gtest.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaignd/coordinator.hpp"
#include "campaignd/json.hpp"
#include "campaignd/net.hpp"
#include "campaignd/service.hpp"
#include "campaignd/wire.hpp"
#include "sim/campaign.hpp"

namespace campaignd = mts::campaignd;
namespace json = mts::campaignd::json;
namespace sim = mts::sim;
using campaignd::Coordinator;
using campaignd::CoordinatorOptions;
using campaignd::Event;
using campaignd::JobSpec;

namespace {

std::string worker_bin() {
  if (const char* env = std::getenv("MTS_CAMPAIGND_BIN")) return env;
#ifdef MTS_CAMPAIGND_BIN_DEFAULT
  return MTS_CAMPAIGND_BIN_DEFAULT;
#else
  return std::string();
#endif
}

#define REQUIRE_WORKER_BIN()                                          \
  do {                                                                \
    if (worker_bin().empty() ||                                       \
        ::access(worker_bin().c_str(), X_OK) != 0) {                  \
      GTEST_SKIP() << "mts_campaignd binary unavailable";             \
    }                                                                 \
  } while (false)

/// Thread-safe event sink shared with the coordinator.
struct EventLog {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Event> events;

  void add(const Event& e) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(e);
    cv.notify_all();
  }
  std::size_t count(const std::string& kind) {
    std::lock_guard<std::mutex> lock(mu);
    std::size_t n = 0;
    for (const Event& e : events) {
      if (e.kind == kind) ++n;
    }
    return n;
  }
  bool any_detail_contains(const std::string& kind, const std::string& sub) {
    std::lock_guard<std::mutex> lock(mu);
    for (const Event& e : events) {
      if (e.kind == kind && e.detail.find(sub) != std::string::npos) {
        return true;
      }
    }
    return false;
  }
  /// Blocks until `kind` has been seen `n` times (the shutdown tests wait
  /// for mid-campaign states). No timeout: a hang here is a real bug and
  /// the ctest timeout reports it.
  void wait_for(const std::string& kind, std::size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] {
      std::size_t c = 0;
      for (const Event& e : events) {
        if (e.kind == kind) ++c;
      }
      return c >= n;
    });
  }
};

JobSpec small_job(std::size_t configs = 2, std::size_t reps = 3,
                  unsigned cycles = 6) {
  JobSpec job;
  job.workload = "fifo_soak";
  job.params = json::Value::object();
  job.params.set("cycles", json::Value::number_u64(cycles));
  job.configs = configs;
  job.reps = reps;
  job.opt.seed = 20010618;  // DAC 2001
  return job;
}

CoordinatorOptions fast_opts(unsigned workers = 2) {
  CoordinatorOptions opt;
  opt.workers = workers;
  opt.worker_cmd = {worker_bin(), "worker", "--port", "{port}"};
  opt.heartbeat_interval_ms = 25;
  opt.heartbeat_timeout_ms = 500;
  opt.progress_timeout_ms = 30000;
  opt.backoff_initial_ms = 10;
  opt.backoff_max_ms = 50;
  return opt;
}

json::Value one_chaos(const std::string& mode, std::size_t at_run,
                      const std::string& marker) {
  json::Value d = json::Value::object();
  d.set("mode", json::Value(mode));
  d.set("at_run", json::Value::number_size(at_run));
  d.set("marker", json::Value(marker));
  json::Value arr = json::Value::array();
  arr.push(std::move(d));
  return arr;
}

std::string temp_name(const std::string& stem) {
  return testing::TempDir() + "mts_campaignd_" + stem + "_" +
         std::to_string(::getpid());
}

/// Asserts the distributed outcome renders byte-identically to the
/// sequential oracle (campaign artifact, health document, coverage).
void expect_identical_to_local(const JobSpec& job,
                               const Coordinator::Outcome& dist) {
  Coordinator::Outcome local;
  campaignd::run_local(job, local);
  EXPECT_EQ(dist.to_json(false), local.to_json(false));
  EXPECT_EQ(dist.health_json(false), local.health_json(false));
  EXPECT_EQ(dist.coverage.bins(), local.coverage.bins());
  ASSERT_EQ(dist.results.size(), local.results.size());
}

}  // namespace

// -- Baseline: worker-count independence ------------------------------------

TEST(CampaigndChaos, DistributedMatchesLocalOracle) {
  REQUIRE_WORKER_BIN();
  const JobSpec job = small_job();
  for (unsigned workers : {1u, 3u}) {
    Coordinator::Outcome out;
    Coordinator coord(job, fast_opts(workers));
    coord.run(out);
    EXPECT_FALSE(out.interrupted);
    expect_identical_to_local(job, out);
  }
}

// -- Chaos: kill -9 a worker mid-unit ---------------------------------------

TEST(CampaigndChaos, WorkerKilledMidUnitIsRedispatched) {
  REQUIRE_WORKER_BIN();
  const std::string marker = temp_name("kill_marker");
  std::remove(marker.c_str());
  const JobSpec job = small_job();

  auto log = std::make_shared<EventLog>();
  CoordinatorOptions opt = fast_opts(2);
  opt.chaos = one_chaos("kill", 2, marker);
  opt.on_event = [log](const Event& e) { log->add(e); };

  Coordinator::Outcome out;
  Coordinator coord(job, opt);
  coord.run(out);

  // The worker died by SIGKILL exactly once, the unit was re-dispatched,
  // and the final artifacts show no trace of the crash.
  EXPECT_TRUE(log->any_detail_contains("worker_lost", "signal:9"));
  EXPECT_GE(log->count("unit_requeued"), 1u);
  EXPECT_EQ(log->count("unit_quarantined"), 0u);
  expect_identical_to_local(job, out);
  std::remove(marker.c_str());
}

// -- Chaos: connection dropped mid-message ----------------------------------

TEST(CampaigndChaos, ConnectionDroppedMidMessageIsRedispatched) {
  REQUIRE_WORKER_BIN();
  const std::string marker = temp_name("drop_marker");
  std::remove(marker.c_str());
  const JobSpec job = small_job();

  auto log = std::make_shared<EventLog>();
  CoordinatorOptions opt = fast_opts(2);
  opt.chaos = one_chaos("drop_connection", 2, marker);
  opt.on_event = [log](const Event& e) { log->add(e); };

  Coordinator::Outcome out;
  Coordinator coord(job, opt);
  coord.run(out);

  // The worker wrote a truncated run_done frame and exited; the partial
  // message must be discarded (never folded) and the run re-executed.
  EXPECT_GE(log->count("worker_lost"), 1u);
  expect_identical_to_local(job, out);
  std::remove(marker.c_str());
}

// -- Chaos: heartbeat stalls ------------------------------------------------

TEST(CampaigndChaos, MutedHeartbeatDetectedByDeadline) {
  REQUIRE_WORKER_BIN();
  const std::string marker = temp_name("mute_marker");
  std::remove(marker.c_str());
  const JobSpec job = small_job();

  auto log = std::make_shared<EventLog>();
  CoordinatorOptions opt = fast_opts(2);
  opt.chaos = one_chaos("mute_heartbeat", 3, marker);
  opt.on_event = [log](const Event& e) { log->add(e); };

  Coordinator::Outcome out;
  Coordinator coord(job, opt);
  coord.run(out);

  EXPECT_TRUE(log->any_detail_contains("worker_lost", "heartbeat-timeout"));
  expect_identical_to_local(job, out);
  std::remove(marker.c_str());
}

TEST(CampaigndChaos, WedgedRunDetectedByProgressDeadline) {
  REQUIRE_WORKER_BIN();
  const std::string marker = temp_name("hang_marker");
  std::remove(marker.c_str());
  const JobSpec job = small_job();

  auto log = std::make_shared<EventLog>();
  CoordinatorOptions opt = fast_opts(2);
  opt.chaos = one_chaos("hang", 3, marker);
  opt.progress_timeout_ms = 700;  // beats keep flowing; the counter freezes
  opt.on_event = [log](const Event& e) { log->add(e); };

  Coordinator::Outcome out;
  Coordinator coord(job, opt);
  coord.run(out);

  EXPECT_TRUE(log->any_detail_contains("worker_lost", "progress-timeout"));
  expect_identical_to_local(job, out);
  std::remove(marker.c_str());
}

// -- Graceful shutdown + resume ---------------------------------------------

TEST(CampaigndChaos, GracefulShutdownCheckpointsAndResumeIsByteIdentical) {
  REQUIRE_WORKER_BIN();
  const std::string marker = temp_name("shutdown_marker");
  const std::string ckpt = temp_name("shutdown_ckpt") + ".json";
  std::remove(marker.c_str());
  std::remove(ckpt.c_str());
  const JobSpec job = small_job();

  auto log = std::make_shared<EventLog>();
  CoordinatorOptions opt = fast_opts(2);
  // Run 4 hangs (first attempt only -- the marker gates it), so the
  // campaign is deterministically still in flight when we shut down.
  opt.chaos = one_chaos("hang", 4, marker);
  opt.checkpoint_path = ckpt;
  opt.checkpoint_every = 1;
  opt.on_event = [log](const Event& e) { log->add(e); };

  Coordinator::Outcome first;
  Coordinator coord(job, opt);
  std::thread runner([&] { coord.run(first); });
  log->wait_for("run_done", 2);
  coord.request_shutdown();
  runner.join();

  EXPECT_TRUE(first.interrupted);
  EXPECT_GE(log->count("checkpoint_written"), 1u);
  std::ifstream in(ckpt);
  ASSERT_TRUE(in.good()) << "final checkpoint missing";

  // Resume: replays nothing (every checkpointed run arrives as a record,
  // not a re-execution) and the merged artifacts are byte-identical.
  auto log2 = std::make_shared<EventLog>();
  CoordinatorOptions ropt = opt;
  ropt.resume = true;
  ropt.on_event = [log2](const Event& e) { log2->add(e); };
  Coordinator::Outcome resumed;
  Coordinator rcoord(job, ropt);
  rcoord.run(resumed);

  EXPECT_FALSE(resumed.interrupted);
  const std::size_t total = job.configs * job.reps;
  EXPECT_EQ(log2->count("run_done"), total - first.results.size());
  expect_identical_to_local(job, resumed);

  std::remove(marker.c_str());
  std::remove(ckpt.c_str());
}

// -- Quarantine: a unit failing identically twice ---------------------------

TEST(CampaigndChaos, UnitFailingIdenticallyTwiceIsQuarantined) {
  REQUIRE_WORKER_BIN();
  const JobSpec job = small_job();

  auto log = std::make_shared<EventLog>();
  CoordinatorOptions opt = fast_opts(2);
  opt.unit_size = 1;
  // No marker: the kill fires on EVERY dispatch of run 2's unit, which is
  // exactly the deterministic-crash signature the quarantine exists for.
  opt.chaos = one_chaos("kill", 2, "");
  opt.unit_retries = 10;  // budget is NOT the trigger here
  opt.on_event = [log](const Event& e) { log->add(e); };

  Coordinator::Outcome out;
  Coordinator coord(job, opt);
  coord.run(out);

  EXPECT_EQ(log->count("unit_quarantined"), 1u);
  ASSERT_EQ(out.results.size(), job.configs * job.reps);
  const sim::RunResult& q = out.results[2];
  EXPECT_FALSE(q.ok);
  EXPECT_EQ(q.classification, "quarantined");
  EXPECT_EQ(q.attempts, 0u);
  EXPECT_NE(q.error.find("signal:9"), std::string::npos) << q.error;
  ASSERT_EQ(out.quarantined_units.size(), 1u);
  // Every other run completed normally.
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    if (i == 2) continue;
    EXPECT_TRUE(out.results[i].ok) << "run " << i;
  }
}

// -- Graceful degradation ---------------------------------------------------

TEST(CampaigndChaos, RetiredSlotDegradesToFewerWorkers) {
  REQUIRE_WORKER_BIN();
  const std::string marker = temp_name("degrade_marker");
  std::remove(marker.c_str());
  const JobSpec job = small_job();

  auto log = std::make_shared<EventLog>();
  CoordinatorOptions opt = fast_opts(2);
  opt.respawn_limit = 0;  // first crash retires the slot
  opt.chaos = one_chaos("kill", 2, marker);
  opt.on_event = [log](const Event& e) { log->add(e); };

  Coordinator::Outcome out;
  Coordinator coord(job, opt);
  coord.run(out);

  EXPECT_GE(log->count("degraded"), 1u);
  expect_identical_to_local(job, out);
  std::remove(marker.c_str());
}

TEST(CampaigndChaos, AllSlotsRetiredFailsAfterCheckpoint) {
  REQUIRE_WORKER_BIN();
  const std::string ckpt = temp_name("retired_ckpt") + ".json";
  std::remove(ckpt.c_str());
  const JobSpec job = small_job();

  CoordinatorOptions opt = fast_opts(1);
  opt.respawn_limit = 0;
  opt.chaos = one_chaos("kill", 0, "");  // every dispatch dies immediately
  opt.checkpoint_path = ckpt;

  Coordinator::Outcome out;
  Coordinator coord(job, opt);
  EXPECT_THROW(coord.run(out), campaignd::CoordinatorError);
  // The failure path still persisted a checkpoint: nothing is lost.
  std::ifstream in(ckpt);
  EXPECT_TRUE(in.good());
  std::remove(ckpt.c_str());
}

// -- Repro bundle round-trip through a worker process -----------------------

TEST(CampaigndChaos, ReproBundleReplaysThroughWorker) {
  REQUIRE_WORKER_BIN();
  const std::string repro_dir = temp_name("repro");
  JobSpec job = small_job();
  job.workload = "chaos_soak";
  job.params.set("fail_indices", json::parse("[3]"));
  job.opt.repro_dir = repro_dir;

  Coordinator::Outcome local;
  campaignd::run_local(job, local);
  ASSERT_EQ(local.results.size(), 6u);
  ASSERT_FALSE(local.results[3].ok);
  const std::string bundle = local.results[3].repro_path;
  ASSERT_FALSE(bundle.empty());

  const std::string params = "'{\"cycles\":6,\"fail_indices\":[3]}'";
  const std::string base = worker_bin() + " replay " + bundle +
                           " --workload chaos_soak --params " + params;
  // Reproduces: same workload + params re-raise the identical failure.
  EXPECT_EQ(WEXITSTATUS(std::system((base + " > /dev/null").c_str())), 0);
  // Does not reproduce: without the injection the run passes (exit 1).
  const std::string clean = worker_bin() + " replay " + bundle +
                            " --workload chaos_soak --params '{\"cycles\":6}'"
                            " > /dev/null";
  EXPECT_EQ(WEXITSTATUS(std::system(clean.c_str())), 1);

  // Malformed bundle: structured error, exit 2.
  const std::string bad = temp_name("bad_bundle") + ".json";
  std::ofstream(bad) << "{\"run\":{\"index\":0}}";
  EXPECT_EQ(WEXITSTATUS(std::system(
                (worker_bin() + " replay " + bad + " 2> /dev/null").c_str())),
            2);
  const std::string garbage = temp_name("garbage_bundle") + ".json";
  std::ofstream(garbage) << "not json";
  EXPECT_EQ(
      WEXITSTATUS(std::system(
          (worker_bin() + " replay " + garbage + " 2> /dev/null").c_str())),
      2);
  std::remove(bad.c_str());
  std::remove(garbage.c_str());
}

// -- Service: submit / status / fetch ---------------------------------------

namespace {

std::string service_request(std::uint16_t port, const std::string& payload) {
  campaignd::Fd fd = campaignd::connect_local(port);
  campaignd::send_all(fd, campaignd::encode_frame(payload));
  campaignd::FrameDecoder dec;
  char buf[65536];
  while (true) {
    const std::size_t n = campaignd::recv_some(fd, buf, sizeof buf);
    if (n == 0) return std::string();
    std::vector<std::string> msgs;
    dec.feed(buf, n, msgs);
    if (!msgs.empty()) return msgs.front();
  }
}

}  // namespace

TEST(CampaigndService, SubmitStatusFetchLifecycle) {
  REQUIRE_WORKER_BIN();
  const JobSpec job = small_job();

  campaignd::Service svc(campaignd::ServiceOptions{});
  std::thread server([&] { svc.serve(); });

  json::Value submit = json::Value::object();
  submit.set("type", json::Value(std::string("submit")));
  submit.set("job", campaignd::job_to_json(job));
  submit.set("coordinator",
             campaignd::coordinator_options_to_json(fast_opts(2)));
  const json::Value sresp = json::parse(service_request(svc.port(),
                                                        submit.dump()));
  ASSERT_TRUE(sresp.at("ok").as_bool()) << sresp.dump();
  const std::int64_t id = sresp.at("job_id").as_i64();

  // Poll status until the runner thread finishes the job.
  std::string state = "queued";
  for (int i = 0; i < 600 && state != "done"; ++i) {
    const json::Value st =
        json::parse(service_request(svc.port(), "{\"type\":\"status\"}"));
    ASSERT_TRUE(st.at("ok").as_bool());
    for (const json::Value& j : st.at("jobs").as_array()) {
      if (j.at("id").as_i64() == id) state = j.at("state").as_string();
    }
    if (state == "failed") FAIL() << "service job failed";
    if (state != "done") std::this_thread::sleep_for(
        std::chrono::milliseconds(50));
  }
  ASSERT_EQ(state, "done");

  json::Value fetch = json::Value::object();
  fetch.set("type", json::Value(std::string("fetch")));
  fetch.set("id", json::Value::number_i64(id));
  const json::Value fresp = json::parse(service_request(svc.port(),
                                                        fetch.dump()));
  ASSERT_TRUE(fresp.at("ok").as_bool()) << fresp.dump();
  EXPECT_EQ(fresp.at("state").as_string(), "done");

  // The fetched artifact matches the sequential oracle (both normalized
  // through the same parse -> dump cycle).
  Coordinator::Outcome local;
  campaignd::run_local(job, local);
  EXPECT_EQ(fresp.at("campaign").dump(),
            json::parse(local.to_json(false)).dump());
  EXPECT_EQ(fresp.at("health").dump(),
            json::parse(local.health_json(false)).dump());

  svc.stop();
  server.join();
}

TEST(CampaigndService, MalformedRequestsGetStructuredErrors) {
  campaignd::Service svc(campaignd::ServiceOptions{});
  std::thread server([&] { svc.serve(); });

  // Valid frame, invalid JSON.
  const json::Value r1 =
      json::parse(service_request(svc.port(), "this is not json"));
  EXPECT_FALSE(r1.at("ok").as_bool());
  // Valid JSON, unknown type.
  const json::Value r2 =
      json::parse(service_request(svc.port(), "{\"type\":\"explode\"}"));
  EXPECT_FALSE(r2.at("ok").as_bool());
  // Fetch of a job that does not exist.
  const json::Value r3 = json::parse(
      service_request(svc.port(), "{\"type\":\"fetch\",\"id\":999}"));
  EXPECT_FALSE(r3.at("ok").as_bool());
  // Raw garbage (bad length prefix): the service closes the connection
  // without dying...
  {
    campaignd::Fd fd = campaignd::connect_local(svc.port());
    campaignd::send_all(fd, std::string("\xff\xff\xff\xffgarbage", 11));
    char buf[256];
    while (campaignd::recv_some(fd, buf, sizeof buf) != 0) {
    }
  }
  // ...and keeps serving afterwards.
  const json::Value r4 =
      json::parse(service_request(svc.port(), "{\"type\":\"status\"}"));
  EXPECT_TRUE(r4.at("ok").as_bool());

  svc.stop();
  server.join();
}
