// Graphviz export for controller specifications: renders a burst-mode
// machine or a Petri net as a `dot` digraph, so the specs driving the
// async control (OPT, DV_as, DV_linear) can be inspected visually --
// the role Minimalist/Petrify's front-ends played for the paper's authors.
#pragma once

#include <string>

#include "ctrl/burst_mode.hpp"
#include "ctrl/petri.hpp"

namespace mts::ctrl {

/// Burst-mode machine as a state graph: one node per state, one edge per
/// transition labelled "in-burst / out-burst" (e.g. "we1- / ptok+").
std::string to_dot(const BmSpec& spec);

/// Petri net in the usual bipartite style: circles for places (doubled
/// ring for initially marked ones), boxes for transitions (input
/// transitions shaded).
std::string to_dot(const PetriNet& net);

}  // namespace mts::ctrl
