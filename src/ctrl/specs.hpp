// Controller specifications from the paper.
//
// - opt_spec(): the ObtainPutToken burst-mode machine of Fig. 10a. Inputs
//   {we1, we}, output {ptok}:
//       S0 --we1+ / .------> S1     (token pulse arriving from the right)
//       S1 --we1- / ptok+--> S2     (token is now in this cell)
//       S2 --we+  / ptok---> S3     (put started: release token, reset OPT)
//       S3 --we-  / .------> S0     (token pass to the left completed)
//   The same machine obtains the *get* token in asynchronous get parts
//   (inputs re1/re, output gtok) -- the paper's design-reuse theme.
//   A cell holding the initial token starts in S2 with ptok already high.
//
// - dv_as_net(): the DV_as data-validity controller of Fig. 10b (async put,
//   sync get). Inputs {we, re}, outputs {e_i, f_i}. Protocol (Section 4):
//   we+ => e_i- then f_i+; re+ => f_i- (asynchronously, mid CLK_get cycle);
//   re- (get completes on the next posedge) => e_i+. The we-/we+ handshake
//   interleaves concurrently with the read path.
//
// - dv_linear_net(): the fully serialized variant used when the *get* side
//   is asynchronous (sync-async and async-async cells): f_i+ must wait for
//   we- (data provably latched) because an asynchronous reader reacts to
//   f_i immediately rather than a synchronizer-delayed cycle later.
#pragma once

#include "ctrl/burst_mode.hpp"
#include "ctrl/petri.hpp"

namespace mts::ctrl {

/// Burst-mode spec for OPT/OGT. State S2 is "holding the token".
const BmSpec& opt_spec();

/// OPT initial state for a cell that starts holding the token (S2) or not
/// (S0).
inline constexpr unsigned kOptStateHolding = 2;
inline constexpr unsigned kOptStateIdle = 0;

/// DV_as Petri net (paper Fig. 10b): async put part, synchronous get part.
const PetriNet& dv_as_net();

/// Serialized DV net for asynchronous get parts.
const PetriNet& dv_linear_net();

}  // namespace mts::ctrl
