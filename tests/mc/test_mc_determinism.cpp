// Determinism: two runs of the checker over the same configuration must
// produce byte-identical JSON (state counts, proved list, counterexample
// trace) -- the property that makes counterexample bundles diffable in CI.
#include <gtest/gtest.h>

#include <string>

#include "mc/checker.hpp"
#include "mc/mutations.hpp"
#include "mc/ring_model.hpp"

namespace mts::mc {
namespace {

TEST(Determinism, CleanRunsAreByteIdentical) {
  const RingConfig cfg = default_ring(4);
  const CheckResult a = check_ring(cfg, {});
  const CheckResult b = check_ring(cfg, {});
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.macro_states, b.macro_states);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.peak_frontier, b.peak_frontier);
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(Determinism, CounterexampleJsonIsByteIdentical) {
  // Run every mutant twice: same violation, same trace, same JSON bytes.
  for (const Mutant& m : make_mutants()) {
    SCOPED_TRACE(m.name);
    const CheckResult a = check_ring(m.config, {});
    const CheckResult b = check_ring(m.config, {});
    ASSERT_FALSE(a.ok);
    ASSERT_FALSE(b.ok);
    ASSERT_TRUE(a.cex.has_value());
    ASSERT_TRUE(b.cex.has_value());
    EXPECT_EQ(a.cex->to_json(), b.cex->to_json());
    EXPECT_EQ(a.to_json(), b.to_json());
    EXPECT_EQ(a.macro_states, b.macro_states);
  }
}

TEST(Determinism, DfsFallbackIsAlsoDeterministic) {
  ExploreOptions opts;
  opts.dfs_depth = 30;
  const CheckResult a = check_ring(default_ring(4), opts);
  const CheckResult b = check_ring(default_ring(4), opts);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.to_json(), b.to_json());
}

}  // namespace
}  // namespace mts::mc
