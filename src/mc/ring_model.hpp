// Product model of the paper's asynchronous token-ring FIFO, for
// explicit-state checking.
//
// The model composes, per cell, the REAL engine cores rather than a
// re-specification of them:
//
//   - the put-side asymmetric C-element rule of gates::CElement
//     (we+ needs put_req & ptok_i & e_i; we- needs only put_req-),
//   - the OPT/OGT burst-mode machines, stepped through ctrl::bm_step over
//     ctrl::BmCore -- the exact function BurstModeMachine executes,
//   - the DV data-validity Petri net, stepped through ctrl::pn_input_step /
//     ctrl::pn_run_outputs over ctrl::PnMarking -- the exact functions
//     PetriEngine executes,
//   - the full/ne detectors, evaluated through fifo::detector_asserted --
//     the defining predicate of the gate structures in fifo/detectors.cpp.
//
// and closes the composition with an abstract nondeterministic 4-phase
// environment: put_req / get_req may rise when their side is idle and fall
// when acknowledged, in any interleaving with internal activity (stalling
// is the branch where the environment does nothing).
//
// Timing abstraction: in the concrete netlist every controller output is an
// inertial delayed write. The model mirrors this with a FIFO queue of
// pending wire flips -- internal commits happen in scheduling order, which
// is exactly the concrete event order when all controller output delays are
// equal (the replay harness, mc/replay.cpp, builds the netlist that way).
// An inertial re-write of a wire cancels the pending flip, as in
// sim::Signal: schedule_level() removes the stale entry and appends the new
// target (dropping it when it matches the committed level, where the
// concrete commit would be a silent no-op).
//
// Listener dispatch order matters at the ring wrap (cell 0's OPT hears
// we_{N-1} before cell N-1's own OPT does, because cell 0 is constructed
// first); the model builds its per-wire listener table in the same
// construction order the replay harness uses, so interleavings -- and
// therefore counterexamples -- transfer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ctrl/burst_mode.hpp"
#include "ctrl/petri.hpp"
#include "mc/property.hpp"

namespace mts::mc {

/// One product configuration: the ring capacity plus the controller specs
/// and detector windows that parameterize each cell. Mutation testing
/// works by perturbing a copy of default_ring() (see mc/mutations.cpp).
struct RingConfig {
  std::string name = "opt-ring";
  unsigned capacity = 4;
  ctrl::BmSpec opt;   ///< put-token machine (Fig. 10a)
  ctrl::BmSpec ogt;   ///< get-token machine (same spec, reused)
  ctrl::PetriNet dv;  ///< per-cell data-validity controller
  unsigned full_window = 2;  ///< window the full detector is built with
  unsigned ne_window = 2;    ///< window the ne detector is built with
  unsigned sync_depth = 2;   ///< derives the invariant's reference window
  bool drop_put_guard = false;  ///< mutant: we C-element without the e_i input
  bool drop_get_guard = false;  ///< mutant: re C-element without the f_i input
};

/// The shipped OPT x DV_linear x anticipating-detector product at
/// `capacity` places.
RingConfig default_ring(unsigned capacity);

/// Unpacked product state.
struct RingState {
  std::vector<bool> wires;             ///< levels, indexed per RingModel
  std::vector<ctrl::BmCore> opt;       ///< one per cell (put ring)
  std::vector<ctrl::BmCore> ogt;       ///< one per cell (get ring)
  std::vector<ctrl::PnMarking> dv;     ///< one per cell
  std::vector<std::uint8_t> queue;     ///< pending wire flips, FIFO order
};

/// One transition of the product.
enum class ActionKind : std::uint8_t {
  kCommit = 0,      ///< commit the pending flip at the queue head
  kPutReqUp = 1,    ///< environment raises put_req (side idle)
  kPutReqDown = 2,  ///< environment lowers put_req (side acknowledged)
  kGetReqUp = 3,
  kGetReqDown = 4,
};

const char* action_name(ActionKind a) noexcept;

/// A violation found while applying one action.
struct McViolation {
  Property property = Property::kTokenRing;
  std::string site;    ///< "mc.c2.opt", "mc.put-ring", ...
  std::string detail;  ///< observed-vs-expected, human-oriented
};

/// Everything one apply() step reports.
struct StepResult {
  std::vector<McViolation> violations;  ///< empty on a clean step
  bool progress_put = false;  ///< derived put ack fell: a put completed
  bool progress_get = false;  ///< derived get ack fell: a get completed
  std::string label;          ///< "put_req+", "c2.we-", ...
};

class RingModel {
 public:
  explicit RingModel(RingConfig cfg);

  const RingConfig& config() const noexcept { return cfg_; }
  unsigned capacity() const noexcept { return cfg_.capacity; }

  // -- wire indexing (shared with the replay harness) ----------------------
  static constexpr unsigned kReqPut = 0;
  static constexpr unsigned kReqGet = 1;
  unsigned ptok_index(unsigned cell) const { return 2 + 6 * cell + 0; }
  unsigned we_index(unsigned cell) const { return 2 + 6 * cell + 1; }
  unsigned e_index(unsigned cell) const { return 2 + 6 * cell + 2; }
  unsigned f_index(unsigned cell) const { return 2 + 6 * cell + 3; }
  unsigned gtok_index(unsigned cell) const { return 2 + 6 * cell + 4; }
  unsigned re_index(unsigned cell) const { return 2 + 6 * cell + 5; }
  unsigned num_wires() const { return 2 + 6 * cfg_.capacity; }
  std::string wire_name(unsigned wire) const;

  /// Quiescent reset state: token in cell 0 on both rings, all cells empty.
  RingState initial() const;

  /// Actions enabled in `s`. With `macro_only`, the environment acts only
  /// at quiescence: a non-empty queue admits exactly kCommit, making each
  /// environment step a deterministic drain (the replayable search mode).
  std::vector<ActionKind> enabled_actions(const RingState& s,
                                          bool macro_only) const;

  /// Applies `a` to `s`, producing `next` and the step's findings. Checks
  /// the edge-triggered invariants (overflow, underflow, handshake order,
  /// illegal controller inputs, 1-safety) during the step and the
  /// state-level invariants (token counts, detector re-derivation) on the
  /// resulting state.
  StepResult apply(const RingState& s, ActionKind a, RingState* next) const;

  /// Derived acknowledge levels (OR over we / re), the environment's view.
  bool put_ack(const RingState& s) const;
  bool get_ack(const RingState& s) const;

  // -- packing -------------------------------------------------------------
  std::size_t record_size() const noexcept { return record_size_; }
  void pack(const RingState& s, std::uint8_t* out) const;
  RingState unpack(const std::uint8_t* rec) const;

  /// Pending flips the model tolerates before declaring kQueueBound.
  static constexpr std::size_t kMaxQueue = 24;

 private:
  struct ListenerRef {
    enum class Kind : std::uint8_t { kPutC, kOpt, kGetC, kOgt, kDv };
    Kind kind;
    unsigned cell;
    unsigned input;  ///< input index within the component (kOpt/kOgt/kDv)
  };

  void commit_level(RingState& s, unsigned wire, bool level,
                    StepResult& r) const;
  void schedule_level(RingState& s, unsigned wire, bool target,
                      StepResult& r) const;
  void eval_celement(RingState& s, unsigned cell, bool put_side,
                     StepResult& r) const;
  void step_machine(RingState& s, unsigned cell, bool put_side, unsigned input,
                    bool rising, StepResult& r) const;
  void step_dv(RingState& s, unsigned cell, unsigned input, bool rising,
               StepResult& r) const;
  void check_state_invariants(const RingState& s, StepResult& r) const;
  bool effective_level(const RingState& s, unsigned wire) const;

  RingConfig cfg_;
  std::vector<std::vector<ListenerRef>> listeners_;  ///< per wire
  bool opt_needs_progress_ = false;
  bool ogt_needs_progress_ = false;
  unsigned ref_window_ = 2;  ///< anticipation_window(sync_depth)
  std::size_t record_size_ = 0;
};

}  // namespace mts::mc
