// End-to-end observability over the paper's full mixed-timing topology
// (Fig. 14 into Fig. 11a): an asynchronous producer streams through an
// AsyncSyncLink, a glue stage, a MixedClockLink, into a stalling sink in a
// second (unrelated-frequency) clock domain.
//
// Asserts the PR's headline property: a transaction id minted at the
// asynchronous put survives every hop and its async slice *ends* on a
// different trace track (the display domain) than the one it *began* on --
// plus non-empty per-instance latency histograms and a report that carries
// both sections.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "gates/combinational.hpp"
#include "lip/lip.hpp"
#include "metrics/registry.hpp"
#include "sim/observe.hpp"
#include "sync/clock.hpp"

namespace mts {
namespace {

struct Slice {
  std::uint64_t id = 0;
  int tid = 0;
};

/// Extracts the async-slice open ('b') or close ('e') events from the
/// Chrome trace JSON: their transaction id and track (tid).
std::vector<Slice> slices(const std::string& json, char phase) {
  std::vector<Slice> out;
  const std::string needle = std::string("\"ph\": \"") + phase + "\", \"id\": ";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    Slice s;
    s.id = std::strtoull(json.c_str() + pos, nullptr, 10);
    const std::size_t tp = json.find("\"tid\": ", pos);
    if (tp == std::string::npos) break;
    s.tid = std::atoi(json.c_str() + tp + 7);
    out.push_back(s);
  }
  return out;
}

TEST(ObservabilityE2E, TransactionIdsSurviveAsyncToDisplayDomain) {
  sim::Simulation sim(13);

  sim::TraceSession trace;
  metrics::Registry registry;
  sim::KernelProfiler profiler;
  sim::Observability obs;
  obs.trace = &trace;
  obs.metrics = &registry;
  obs.profiler = &profiler;
  obs.arm(sim);
  registry.bind(sim.report());

  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 16;
  cfg.controller = fifo::ControllerKind::kRelayStation;

  const sim::Time base = std::max(fifo::SyncGetSide::min_period(cfg),
                                  fifo::SyncPutSide::min_period(cfg));
  const sim::Time bus_period = base * 5 / 4;
  const sim::Time disp_period = base * 7 / 4;
  sync::Clock clk_bus(sim, "clk_bus", {bus_period, 4 * bus_period, 0.5, 0});
  sync::Clock clk_disp(sim, "clk_display",
                       {disp_period, 4 * disp_period, 0.5, 0});

  lip::AsyncSyncLink fuse(sim, "fuse", cfg, clk_bus.out(), /*ars=*/2,
                          /*srs=*/2);
  lip::MixedClockLink cross(sim, "cross", cfg, clk_bus.out(), clk_disp.out(),
                            /*left=*/1, /*right=*/1);

  gates::Netlist glue(sim, "glue");
  glue.add<gates::WordBuf>(sim, glue.qualified("d"), fuse.data_out(),
                           cross.data_in(), cfg.dm.gate(1));
  gates::gate_into(glue, "v", gates::GateOp::kBuf, {&fuse.valid_out()},
                   cross.valid_in(), cfg.dm.gate(1));
  gates::gate_into(glue, "s", gates::GateOp::kBuf, {&cross.stop_out()},
                   fuse.stop_in(), cfg.dm.gate(1));
  trace.link(fuse.last_traced_instance(), cross.first_traced_instance());

  bfm::Scoreboard sb(sim, "sb");
  bfm::AsyncPutDriver producer(sim, "sensor", fuse.put_req(), fuse.put_ack(),
                               fuse.put_data(), cfg.dm, 0, 0xFFFF, &sb);
  bfm::RsSink display(sim, "display", clk_disp.out(), cross.data_out(),
                      cross.valid_out(), cross.stop_in(), cfg.dm, 0.1, sb);

  sim.run_until(4 * bus_period + 600 * bus_period);

  // Traffic flowed, in order, with no loss.
  EXPECT_EQ(sb.errors(), 0u);
  ASSERT_GT(display.received_valid(), 100u);

  // Ids are minted exactly once, at the ASRS: a re-mint downstream would
  // inflate the count far beyond what the producer sent.
  EXPECT_GT(trace.transactions(), 100u);
  EXPECT_LE(trace.transactions(), producer.completed() + cfg.capacity);

  // The slice for at least one transaction must begin on one track and end
  // on a different one (put domain -> display domain): that is the
  // across-the-boundary continuity the tracing exists to show.
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"clk_display\""), std::string::npos);
  const std::vector<Slice> begins = slices(json, 'b');
  const std::vector<Slice> ends = slices(json, 'e');
  ASSERT_FALSE(begins.empty());
  ASSERT_FALSE(ends.empty());
  std::uint64_t crossed = 0;
  for (const Slice& e : ends) {
    const auto b = std::find_if(begins.begin(), begins.end(),
                                [&](const Slice& s) { return s.id == e.id; });
    if (b != begins.end() && b->tid != e.tid) ++crossed;
  }
  EXPECT_GT(crossed, 100u) << "slices that began and ended on the same track";

  // Metrics: every boundary instance saw traffic and measured latency.
  for (const std::string inst :
       {fuse.first_traced_instance(), std::string("cross.mcrs")}) {
    const metrics::Histogram* h = registry.find_histogram(inst, "latency_ps");
    ASSERT_NE(h, nullptr) << inst;
    EXPECT_GT(h->count(), 100u) << inst;
    EXPECT_GT(h->percentile(0.99), 0.0) << inst;
  }

  // The bound report carries metrics and an attributed kernel profile.
  const std::string report = sim.report().to_json();
  EXPECT_NE(report.find("\"metrics\""), std::string::npos);
  EXPECT_NE(report.find("latency_ps"), std::string::npos);
  EXPECT_FALSE(sim.report().kernel().hot_sites.empty());
  EXPECT_NE(sim::format_hot_sites(sim.report().kernel()).find("clock clk_bus"),
            std::string::npos);
}

}  // namespace
}  // namespace mts
