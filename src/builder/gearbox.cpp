#include "builder/gearbox.hpp"

namespace mts::builder {

namespace {
std::uint64_t width_mask(unsigned bits) {
  return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}
}  // namespace

Serializer::Serializer(sim::Simulation& sim, std::string name, sim::Wire& clk,
                       unsigned factor, unsigned link_width, sim::Word& in_data,
                       sim::Wire& in_valid, sim::Wire& stop_out,
                       sim::Word& out_data, sim::Wire& out_valid,
                       sim::Wire& stop_in, const gates::DelayModel& dm)
    : in_data_(in_data),
      in_valid_(in_valid),
      stop_out_(stop_out),
      out_data_(out_data),
      out_valid_(out_valid),
      stop_in_(stop_in),
      clk_to_q_(dm.flop.clk_to_q),
      factor_(factor),
      link_width_(link_width),
      chunk_mask_(width_mask(link_width)) {
  (void)sim;
  (void)name;
  clk.on_rise([this] { on_edge(); });
}

void Serializer::on_edge() {
  // Downstream consumed the chunk we showed iff stop_in was low during the
  // cycle ending at this edge.
  if (left_ > 0 && !stop_in_.read()) {
    word_ >>= link_width_;
    --left_;
    ++chunks_out_;
  }
  // Upstream delivered a word at this edge iff our registered stop_out was
  // low; stop stays up while a word drains, so left_ is 0 here.
  if (!prev_stop_ && in_valid_.read()) {
    word_ = in_data_.read();
    left_ = factor_;
    ++words_in_;
  }
  const bool busy = left_ > 0;
  prev_stop_ = busy;
  stop_out_.write(busy, clk_to_q_, sim::DelayKind::kInertial);
  out_valid_.write(busy, clk_to_q_, sim::DelayKind::kInertial);
  out_data_.write(word_ & chunk_mask_, clk_to_q_, sim::DelayKind::kInertial);
}

Deserializer::Deserializer(sim::Simulation& sim, std::string name,
                           sim::Wire& clk, unsigned factor,
                           unsigned link_width, sim::Word& in_data,
                           sim::Wire& in_valid, sim::Wire& stop_out,
                           sim::Word& out_data, sim::Wire& out_valid,
                           sim::Wire& stop_in, const gates::DelayModel& dm)
    : in_data_(in_data),
      in_valid_(in_valid),
      stop_out_(stop_out),
      out_data_(out_data),
      out_valid_(out_valid),
      stop_in_(stop_in),
      clk_to_q_(dm.flop.clk_to_q),
      factor_(factor),
      link_width_(link_width) {
  (void)sim;
  (void)name;
  clk.on_rise([this] { on_edge(); });
}

void Deserializer::on_edge() {
  // The staged word we showed was consumed iff stop_in was low.
  if (staged_full_ && !stop_in_.read()) {
    staged_full_ = false;
    ++words_out_;
  }
  // A chunk arrived at this edge iff our registered stop_out was low. While
  // the staging register is occupied stop is up, so a completing word never
  // finds it full.
  if (!prev_stop_ && in_valid_.read()) {
    acc_ |= in_data_.read() << (got_ * link_width_);
    ++chunks_in_;
    if (++got_ == factor_) {
      staged_ = acc_;
      staged_full_ = true;
      acc_ = 0;
      got_ = 0;
    }
  }
  prev_stop_ = staged_full_;
  stop_out_.write(staged_full_, clk_to_q_, sim::DelayKind::kInertial);
  out_valid_.write(staged_full_, clk_to_q_, sim::DelayKind::kInertial);
  out_data_.write(staged_, clk_to_q_, sim::DelayKind::kInertial);
}

}  // namespace mts::builder
