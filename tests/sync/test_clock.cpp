#include "sync/clock.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/error.hpp"

namespace mts::sync {
namespace {

using sim::Time;

TEST(Clock, RisesAtPhaseAndEveryPeriod) {
  sim::Simulation sim;
  Clock clk(sim, "clk", {1000, 500, 0.5, 0});
  std::vector<Time> rises;
  sim::on_rise(clk.out(), [&] { rises.push_back(sim.now()); });
  sim.run_until(4600);
  ASSERT_EQ(rises.size(), 5u);
  EXPECT_EQ(rises[0], 500u);
  EXPECT_EQ(rises[1], 1500u);
  EXPECT_EQ(rises[4], 4500u);
  EXPECT_EQ(clk.edges(), 5u);
}

TEST(Clock, DutyCycleControlsHighTime) {
  sim::Simulation sim;
  Clock clk(sim, "clk", {1000, 0, 0.25, 0});
  std::vector<Time> falls;
  sim::on_fall(clk.out(), [&] { falls.push_back(sim.now()); });
  sim.run_until(2100);
  ASSERT_GE(falls.size(), 2u);
  EXPECT_EQ(falls[0], 250u);
  EXPECT_EQ(falls[1], 1250u);
}

TEST(Clock, StopHaltsToggling) {
  sim::Simulation sim;
  Clock clk(sim, "clk", {1000, 0, 0.5, 0});
  sim.run_until(2100);
  clk.stop();
  const auto edges = clk.edges();
  sim.run_until(10000);
  EXPECT_EQ(clk.edges(), edges);
}

TEST(Clock, JitterPerturbsPeriodsWithinBound) {
  sim::Simulation sim(7);
  Clock clk(sim, "clk", {1000, 0, 0.5, 100});
  std::vector<Time> rises;
  sim::on_rise(clk.out(), [&] { rises.push_back(sim.now()); });
  sim.run_until(50000);
  ASSERT_GE(rises.size(), 20u);
  bool any_jitter = false;
  for (std::size_t i = 1; i < rises.size(); ++i) {
    const Time delta = rises[i] - rises[i - 1];
    EXPECT_GE(delta, 900u);
    EXPECT_LE(delta, 1100u);
    any_jitter = any_jitter || delta != 1000u;
  }
  EXPECT_TRUE(any_jitter);
}

TEST(Clock, InvalidConfigRejected) {
  sim::Simulation sim;
  EXPECT_THROW(Clock(sim, "c", {0, 0, 0.5, 0}), ConfigError);
  EXPECT_THROW(Clock(sim, "c", {1000, 0, 0.0, 0}), ConfigError);
  EXPECT_THROW(Clock(sim, "c", {1000, 0, 1.0, 0}), ConfigError);
  EXPECT_THROW(Clock(sim, "c", {1000, 0, 0.5, 600}), ConfigError);
}

}  // namespace
}  // namespace mts::sync
