#include "fifo/async_sync_fifo.hpp"

#include "ctrl/specs.hpp"
#include "fifo/async_timing.hpp"
#include "fifo/detectors.hpp"
#include "fifo/interface_sides.hpp"
#include "gates/combinational.hpp"
#include "gates/tristate.hpp"
#include "sim/error.hpp"

namespace mts::fifo {

AsyncSyncFifo::AsyncSyncFifo(sim::Simulation& sim, const std::string& name,
                             const FifoConfig& cfg, sim::Wire& clk_get)
    : sim_(sim), cfg_(cfg), nl_(sim, name), get_dom_(sim, name + ".get") {
  cfg_.validate();
  const unsigned n = cfg_.capacity;
  const gates::DelayModel& dm = cfg_.dm;

  if (sim::Observability* o = sim.observability()) {
    // The put side is clockless: its trace track is the async handshake.
    obs_ = std::make_unique<sim::TransitObserver>(*o, sim, name, "async",
                                                  clk_get.name(), n);
  }

  // --- external interface wires ---
  put_req_ = &nl_.wire("put_req");
  put_data_ = &nl_.word("put_data");
  req_get_ = &nl_.wire("req_get");
  stop_in_ = &nl_.wire("stop_in");
  data_get_ = &nl_.word("data_get");
  valid_bus_ = &nl_.wire("valid_bus");
  valid_ext_ = &nl_.wire("valid_get");
  empty_w_ = &nl_.wire("empty", true);
  en_get_b_ = &nl_.wire("en_get_b");

  // put_req is broadcast to every cell's C-element.
  sim::Wire& req_b =
      gates::make_delay(nl_, "put_req_b", *put_req_, dm.broadcast(n, 1));

  // Validity on the asynchronous interface is implicit in the handshake;
  // enqueued items are always valid.
  sim::Wire& vcc = nl_.wire("vcc", true);

  // --- token rings ---
  std::vector<sim::Wire*> we(n);
  std::vector<sim::Wire*> gtok(n);
  for (unsigned i = 0; i < n; ++i) {
    we[i] = &nl_.wire("c" + std::to_string(i) + ".we");
    gtok[i] = &nl_.wire("c" + std::to_string(i) + ".gtok", i == 0);
  }

  auto& data_bus = nl_.add<gates::TristateBus<std::uint64_t>>(
      sim, nl_.qualified("get_data_bus"), *data_get_,
      dm.tristate_bus(n, cfg_.width));
  auto& valid_tbus = nl_.add<gates::TristateBus<bool>>(
      sim, nl_.qualified("valid_bus_ts"), *valid_bus_, dm.tristate_bus(n, 1));

  // --- cells: async put part + sync get part + DV_as (Fig. 9) ---
  e_.resize(n);
  f_.resize(n);
  std::vector<sim::Wire*> ack_terms;
  ack_terms.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    const std::string ci = "c" + std::to_string(i);
    e_[i] = &nl_.wire(ci + ".e", true);
    f_[i] = &nl_.wire(ci + ".f", false);

    auto& put_part = nl_.add<AsyncPutPart>(nl_, i, req_b, *put_data_,
                                           *we[(i + n - 1) % n], *e_[i], *we[i],
                                           cfg_, i == 0);
    auto& get_part = nl_.add<SyncGetPart>(nl_, i, clk_get, *en_get_b_,
                                          *gtok[(i + n - 1) % n], *gtok[i], cfg_,
                                          &get_dom_, i == 0);

    // DV_as (Fig. 10b): the Petri-net data-validity controller. Output
    // latency matched to the mixed-clock SR latch so both designs present
    // identical f_i timing to the shared empty detector (Table 1 shows
    // identical get columns for both).
    nl_.add<ctrl::PetriEngine>(nl_.sim(), nl_.qualified(ci + ".dv"),
                               ctrl::dv_as_net(),
                               std::vector<sim::Wire*>{we[i], &get_part.re()},
                               std::vector<sim::Wire*>{e_[i], f_[i]},
                               dm.sr_latch);

    data_bus.attach_driver(get_part.re(), put_part.reg_q());
    valid_tbus.attach_driver(get_part.re(), vcc);
    ack_terms.push_back(we[i]);

    sim::Wire* fw = f_[i];
    we[i]->on_rise([this, fw] {
      if (fw->read()) {
        ++overflows_;
        sim_.report().add(sim_.now(), sim::Severity::kError, "overflow",
                          nl_.prefix() + ": put into a full cell");
        if (mon_ != nullptr) {
          verify::Violation v;
          v.time = sim_.now();
          v.invariant = verify::Invariant::kOverflow;
          v.site = nl_.prefix();
          v.observed = "put into a full cell";
          v.expected = "puts only while a cell is empty";
          mon_->hub->report(std::move(v));
        }
      }
      // At we-rise the bundled data is stable (bundling constraint) and the
      // transparent latch is capturing it; every async put is a valid item.
      std::uint64_t txn = 0;
      if (obs_ != nullptr) {
        txn = obs_->put_committed(put_data_->read(), occupancy() + 1);
      }
      if (mon_ != nullptr) mon_->stream->put(put_data_->read(), txn);
    });
    sim::Word* rq = &put_part.reg_q();
    get_part.re().on_rise([this, fw, rq] {
      if (!fw->read()) {
        ++underflows_;
        sim_.report().add(sim_.now(), sim::Severity::kError, "underflow",
                          nl_.prefix() + ": get from an empty cell");
        if (mon_ != nullptr) {
          verify::Violation v;
          v.time = sim_.now();
          v.invariant = verify::Invariant::kUnderflow;
          v.site = nl_.prefix();
          v.observed = "get from an empty cell";
          v.expected = "gets only while an item is resident";
          mon_->hub->report(std::move(v));
        }
      }
      std::uint64_t txn = 0;
      if (obs_ != nullptr) {
        const unsigned occ = occupancy();
        txn = obs_->get_observed(rq->read(), occ > 0 ? occ - 1 : 0);
      }
      if (mon_ != nullptr) mon_->stream->get(rq->read(), txn);
    });
  }

  // put_ack: a tree of OR gates merges the per-cell acknowledgments
  // (Section 6 experimental setup), driving the global ack wire back to
  // the sender.
  sim::Wire& ack_tree = gates::make_or_tree(nl_, "ackTree", ack_terms, dm);
  put_ack_ = &gates::make_delay(nl_, "put_ack", ack_tree, dm.gate(2, 4));

  // --- get side: identical block to the mixed-clock design ---
  auto& get_side = nl_.add<SyncGetSide>(nl_, clk_get, cfg_, get_dom_, f_,
                                        *req_get_, *stop_in_, *valid_bus_,
                                        *valid_ext_, *empty_w_, *en_get_b_);
  ne_raw_ = &get_side.ne_raw();
  oe_raw_ = &get_side.oe_raw();

  if (obs_ != nullptr) {
    // empty falling = the oldest async put is now visible to CLK_get.
    empty_w_->on_fall([this] { obs_->sync_crossed(); });
    if (cfg_.controller == ControllerKind::kRelayStation) {
      clk_get.on_rise([this] {
        if (stop_in_->read() && !empty_w_->read()) obs_->stalled_by_stop_in();
      });
    }
  }

  // --- protocol-invariant monitors (armed runs only) ---
  if (verify::Hub* hub = sim.monitors()) {
    mon_ = std::make_unique<verify::MonitorSet>();
    mon_->hub = hub;
    const unsigned ne_win = anticipation_window(cfg_.sync.depth);
    const sim::Time settle =
        dm.sr_latch + detector_delay(n, ne_win, dm) + dm.gate(2);
    // Bundled-data slack measured from req+ as seen at the FIFO boundary:
    // the environment's nominal launch leads req+ by one gate (the matched
    // delay in bfm::AsyncPutDriver), so the capture margin from req+ is the
    // full transparency window minus that lead.
    const sim::Time margin = async_put_data_margin(cfg_);
    const sim::Time lead = dm.gate(1);
    mon_->handshake = std::make_unique<verify::HandshakeMonitor>(
        *hub, sim, nl_.prefix() + ".put", *put_req_, *put_ack_, *put_data_,
        margin > lead ? margin - lead : 0);
    mon_->rings.push_back(std::make_unique<verify::TokenRingMonitor>(
        *hub, sim, nl_.prefix() + ".gtok", gtok, clk_get));
    mon_->detectors.push_back(std::make_unique<verify::DetectorMonitor>(
        *hub, sim, nl_.prefix() + ".ne", verify::Invariant::kEmptyDetector,
        f_, *ne_raw_, ne_win, clk_get, settle));
    mon_->detectors.push_back(std::make_unique<verify::DetectorMonitor>(
        *hub, sim, nl_.prefix() + ".oe", verify::Invariant::kEmptyDetector,
        f_, *oe_raw_, 1, clk_get, settle));
    mon_->stream = std::make_unique<verify::StreamMonitor>(*hub, sim,
                                                           nl_.prefix());
  }
}

unsigned AsyncSyncFifo::occupancy() const {
  unsigned count = 0;
  for (const sim::Wire* f : f_) count += f->read() ? 1u : 0u;
  return count;
}

sim::Time AsyncSyncFifo::get_min_period() const {
  return SyncGetSide::min_period(cfg_);
}

}  // namespace mts::fifo
