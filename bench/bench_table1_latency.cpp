// Reproduces Table 1 (latency section): Min/Max latency through an empty
// FIFO, 8-bit data items, {4, 8, 16}-place, all four designs.
//
// Experimental setup per Section 6: in an empty FIFO the get interface
// requests a data item; after the FIFO is stable the put interface places
// one; latency runs from put-data-valid to the CLK_get edge where the
// receiver retrieves the item. The put instant is swept across one CLK_get
// period, giving the Min and Max columns.
//
// `--hist-json FILE` additionally runs each configuration under saturated
// traffic with the metrics registry armed (sim/observe.hpp) and writes the
// per-instance forward-latency histograms (p50/p95/p99/max + sparse bucket
// counts) as one JSON document, printing a one-screen p50/p99 summary.
//
// The saturated-histogram sweep fans its 12 configurations (4 designs x
// {4,8,16} places) across a sim::Campaign worker pool; --jobs N sets the
// worker count (default: one per hardware thread).
//
// Usage: bench_table1_latency [--csv] [--phases N] [--hist-json FILE]
//                             [--jobs N]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "metrics/experiments.hpp"
#include "metrics/registry.hpp"
#include "metrics/table.hpp"
#include "sim/campaign.hpp"
#include "sim/observe.hpp"
#include "sync/clock.hpp"

namespace {

using mts::fifo::ControllerKind;
using mts::fifo::FifoConfig;

struct DesignRow {
  const char* name;
  bool async_put;
  ControllerKind controller;
};

constexpr DesignRow kDesigns[] = {
    {"Mixed-Clock", false, ControllerKind::kFifo},
    {"Async-Sync", true, ControllerKind::kFifo},
    {"Mixed-Clock RS", false, ControllerKind::kRelayStation},
    {"Async-Sync RS", true, ControllerKind::kRelayStation},
};

// Paper Table 1 latency (ns), 8-bit items: {4,8,16}-place Min/Max.
constexpr double kPaperMin[4][3] = {{5.43, 5.79, 6.14},
                                    {5.53, 6.13, 6.47},
                                    {5.48, 6.05, 6.23},
                                    {5.61, 6.18, 6.57}};
constexpr double kPaperMax[4][3] = {{6.34, 6.64, 7.17},
                                    {6.45, 7.17, 7.51},
                                    {6.41, 7.02, 7.28},
                                    {6.35, 7.13, 7.62}};

/// Saturated run of one Table-1 configuration with the metrics registry
/// armed; returns the registry's JSON (per-instance counters + histograms).
/// The forward-latency histogram of instance "dut" is the headline number.
std::string saturated_histograms(mts::sim::Simulation& s,
                                 const DesignRow& design, unsigned capacity,
                                 double* p50, double* p99) {
  namespace fifo = mts::fifo;
  namespace sim = mts::sim;
  namespace sync = mts::sync;
  namespace bfm = mts::bfm;

  FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = 8;
  cfg.controller = design.controller;

  // Every configuration reseeds identically (the historical standalone
  // seed); the campaign contributes arena reuse and placement only.
  s.reset(7);
  mts::metrics::Registry registry;
  sim::Observability obs;
  obs.metrics = &registry;
  obs.arm(s);

  const sim::Time gp = fifo::SyncGetSide::min_period(cfg) * 5 / 4;
  sync::Clock cg(s, "cg", {gp, 4 * gp, 0.5, 0});
  const unsigned cycles = 2000;
  if (design.async_put) {
    fifo::AsyncSyncFifo dut(s, "dut", cfg, cg.out());
    bfm::AsyncPutDriver put(s, "put", dut.put_req(), dut.put_ack(),
                            dut.put_data(), cfg.dm, 0, 0xFF, nullptr);
    bfm::SyncGetDriver get(s, "get", cg.out(), dut.req_get(), cfg.dm,
                           {1.0, 1});
    s.run_until(4 * gp + cycles * gp);
  } else {
    const sim::Time pp = fifo::SyncPutSide::min_period(cfg) * 5 / 4;
    sync::Clock cp(s, "cp", {pp, 4 * pp, 0.5, 0});
    fifo::MixedClockFifo dut(s, "dut", cfg, cp.out(), cg.out());
    bfm::SyncPutDriver put(s, "put", cp.out(), dut.req_put(), dut.data_put(),
                           dut.full(), cfg.dm, {1.0, 1}, 0xFF);
    bfm::SyncGetDriver get(s, "get", cg.out(), dut.req_get(), cfg.dm,
                           {1.0, 1});
    s.run_until(4 * gp + cycles * gp);
  }

  *p50 = 0.0;
  *p99 = 0.0;
  if (const mts::metrics::Histogram* h =
          registry.find_histogram("dut", "latency_ps");
      h != nullptr && h->count() > 0) {
    *p50 = h->percentile(0.50);
    *p99 = h->percentile(0.99);
  }
  // The registry and observability bundle leave scope with this frame;
  // detach them so the (worker-lifetime) Simulation holds no dangling
  // pointers between campaign runs.
  s.set_observability(nullptr);
  s.sched().set_profiler(nullptr);
  return registry.to_json();
}

void write_hist_json(const std::string& path, unsigned jobs) {
  const unsigned caps[] = {4, 8, 16};
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_table1_latency: cannot write %s\n",
                 path.c_str());
    return;
  }

  // Fan the 12 saturated runs across the pool: config index maps row-major
  // onto (design, capacity). Output order is run-index order, so the JSON
  // document and the printed table are identical for any worker count.
  struct CellOut {
    double p50 = 0.0;
    double p99 = 0.0;
    std::string metrics_json;
  };
  std::vector<CellOut> cells(std::size(kDesigns) * std::size(caps));
  mts::sim::CampaignOptions opt;
  opt.workers = jobs;
  opt.seed = 7;
  mts::sim::Campaign campaign(cells.size(), 1, opt);
  campaign.run([&cells, &caps](mts::sim::CampaignContext& ctx) {
    const std::size_t i = ctx.spec().index;
    const DesignRow& design = kDesigns[i / std::size(caps)];
    const unsigned cap = caps[i % std::size(caps)];
    CellOut& cell = cells[i];
    cell.metrics_json =
        saturated_histograms(ctx.sim(), design, cap, &cell.p50, &cell.p99);
  });

  std::printf("\nsaturated forward latency (metrics registry, ns):\n");
  std::printf("  %-16s %6s %10s %10s\n", "Version", "places", "p50", "p99");
  out << "{\n  \"note\": \"per-instance metrics under saturated traffic, "
         "one entry per Table-1 configuration; latency_ps of instance 'dut' "
         "is the forward latency\",\n  \"configs\": [\n";
  bool first = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const DesignRow& design = kDesigns[i / std::size(caps)];
    const unsigned cap = caps[i % std::size(caps)];
    std::printf("  %-16s %6u %10.2f %10.2f\n", design.name, cap,
                cells[i].p50 / 1e3, cells[i].p99 / 1e3);
    if (!first) out << ",\n";
    first = false;
    out << "    {\"design\": \"" << design.name << "\", \"places\": " << cap
        << ", \"metrics\": " << cells[i].metrics_json << "}";
  }
  out << "\n  ]\n}\n";
  std::printf("wrote %s (campaign: %u workers, %.1f runs/sec)\n", path.c_str(),
              campaign.workers(), campaign.runs_per_sec());
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  unsigned phases = 24;
  unsigned jobs = 0;  // 0: one worker per hardware thread
  std::string hist_json;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--phases") == 0 && i + 1 < argc) {
      phases = static_cast<unsigned>(std::atoi(argv[++i]));
    }
    if (std::strcmp(argv[i], "--hist-json") == 0 && i + 1 < argc) {
      hist_json = argv[++i];
    }
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    }
  }

  std::printf("Table 1 (latency, ns): empty FIFO, single put, 8-bit items;\n");
  std::printf("put instant swept across %u CLK_get phases\n\n", phases);

  const unsigned caps[] = {4, 8, 16};
  mts::metrics::Table table({"Version", "places", "Min", "Max", "paper-Min",
                             "paper-Max"});
  for (unsigned d = 0; d < 4; ++d) {
    const DesignRow& design = kDesigns[d];
    for (unsigned c = 0; c < 3; ++c) {
      FifoConfig cfg;
      cfg.capacity = caps[c];
      cfg.width = 8;
      cfg.controller = design.controller;
      const mts::metrics::LatencyRow row =
          design.async_put ? mts::metrics::latency_async_sync(cfg, phases)
                           : mts::metrics::latency_mixed_clock(cfg, phases);
      table.add_row({design.name, std::to_string(caps[c]),
                     mts::metrics::fmt(row.min_ns, 2),
                     mts::metrics::fmt(row.max_ns, 2),
                     mts::metrics::fmt(kPaperMin[d][c], 2),
                     mts::metrics::fmt(kPaperMax[d][c], 2)});
    }
  }
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
  if (!hist_json.empty()) write_hist_json(hist_json, jobs);
  return 0;
}
