#include "sim/error.hpp"

namespace mts::detail {

void assertion_failed(const char* expr, const char* file, int line,
                      const std::string& msg) {
  throw AssertionError(std::string("assertion failed: ") + expr + " at " + file +
                       ":" + std::to_string(line) + (msg.empty() ? "" : " -- " + msg));
}

}  // namespace mts::detail
