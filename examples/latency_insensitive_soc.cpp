// Latency-insensitive SoC link (the paper's Fig. 14 followed by Fig. 11a,
// end to end): an asynchronous sensor-fusion block on one corner of the die
// streams packets through a synchronous bus domain and across a second
// clock-domain crossing into the display pipeline. Every wire is far too
// long for one clock cycle, so it is segmented:
//
//   async producer --[3 ARS]--> ASRS --[3 SRS @ clk_bus]-->
//     --[1 SRS @ clk_bus]--> MCRS --[2 SRS @ clk_display]--> sink
//
// The whole topology is ~15 lines of builder::Design declarations: an
// async source, a repeater in the bus domain, a stalling sink, and two
// annotated edges. elaborate() selects the Fig. 14 async-sync link and the
// Fig. 11a mixed-clock link from the port annotations, wires the glue and
// joins the trace streams automatically.
//
// Demonstrates:
//   - the paper's headline combination: mixed async/sync interfaces AND
//     multi-cycle interconnect AND a mixed-clock crossing, solved together,
//   - tolerance to downstream stalls (the sink drops its readiness 20% of
//     cycles; stop back-pressure ripples through the whole chain with no
//     packet loss),
//   - the observability stack (sim/observe.hpp): one transaction id rides
//     each packet from the asynchronous put all the way to valid_get in the
//     display domain; spans land in soc_trace.json (load it in
//     https://ui.perfetto.dev), per-instance latency/occupancy metrics and
//     the kernel's hottest-callbacks table land in soc_report.json, and the
//     elaborated topology itself in soc_design.json / soc_design.dot.
//
//   $ ./example_latency_insensitive_soc
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>

#include "builder/builder.hpp"
#include "fifo/interface_sides.hpp"
#include "metrics/registry.hpp"

int main() {
  using namespace mts;
  using sim::Time;

  sim::Simulation sim(11);

  // --- observability: armed BEFORE any component is constructed ---
  sim::TraceSession trace;
  metrics::Registry registry;
  sim::KernelProfiler profiler;
  sim::TelemetryConfig tcfg;
  tcfg.interval = 2 * sim::kNanosecond;  // a few samples per bus cycle batch
  sim::Telemetry telemetry(tcfg);
  sim::Observability obs;
  obs.trace = &trace;
  obs.metrics = &registry;
  obs.profiler = &profiler;
  obs.telemetry = &telemetry;
  obs.arm(sim);
  registry.bind(sim.report());

  fifo::FifoConfig probe;
  probe.capacity = 8;
  probe.width = 16;

  const Time base = std::max(fifo::SyncGetSide::min_period(probe),
                             fifo::SyncPutSide::min_period(probe));
  const Time bus_period = base * 5 / 4;
  const Time disp_period = base * 7 / 4;  // unrelated frequency: true CDC

  // --- the whole SoC, declaratively ---
  builder::Design d("soc");
  const builder::DomainId bus_dom =
      d.domain("clk_bus", {bus_period, 4 * bus_period, 0.5, 0});
  const builder::DomainId disp_dom =
      d.domain("clk_display", {disp_period, 4 * disp_period, 0.5, 0});
  const builder::NodeId sensor =
      d.source("sensor", builder::Design::async_out("out", 16),
               {/*rate=*/1.0, /*gap=*/0, /*mask=*/0xFFFF});
  const builder::NodeId glue = d.repeater("glue", bus_dom, 16);
  const builder::NodeId display =
      d.sink("display", builder::Design::sync_in("in", disp_dom, 16),
             {/*stall_rate=*/0.2});
  builder::LinkOptions fuse_opt;   // Fig. 14: 3 ARS + ASRS + 3 SRS
  fuse_opt.capacity = 8;
  fuse_opt.latency_left = 3;
  fuse_opt.latency_right = 3;
  d.connect(sensor, "out", glue, "in", fuse_opt, "fuse");
  builder::LinkOptions cross_opt;  // Fig. 11a: 1 SRS + MCRS + 2 SRS
  cross_opt.capacity = 8;
  cross_opt.latency_left = 1;
  cross_opt.latency_right = 2;
  d.connect(glue, "out", display, "in", cross_opt, "cross");

  auto elab = builder::elaborate(sim, d);

  // Bursty asynchronous producer: streams back to back, then idles.
  bfm::AsyncPutDriver& producer = *elab->node(sensor).async_put;
  auto bursts = std::make_shared<std::uint64_t>(0);
  auto toggle = std::make_shared<std::function<void()>>();
  *toggle = [&sim, &producer, bursts, toggle, bus_period] {
    const bool on = ((*bursts)++ % 2) == 1;
    producer.set_enabled(on);
    if (on) producer.issue_one();
    sim.sched().after(150 * bus_period, [toggle] { (*toggle)(); });
  };
  sim.sched().after(300 * bus_period, [toggle] { (*toggle)(); });

  const unsigned horizon_cycles = 3000;
  sim.run_until(4 * bus_period + horizon_cycles * bus_period);

  const bfm::Scoreboard& sb = elab->scoreboard(display);
  std::printf("latency-insensitive link: async sensor -> 3 ARS -> ASRS -> "
              "4 SRS @ %.0f MHz -> MCRS -> 2 SRS @ %.0f MHz -> display\n",
              sim::period_to_mhz(bus_period), sim::period_to_mhz(disp_period));
  std::printf("  packets sent       : %llu\n",
              static_cast<unsigned long long>(producer.completed()));
  std::printf("  packets displayed  : %llu\n",
              static_cast<unsigned long long>(elab->sink_received(display)));
  std::printf("  in flight at end   : %llu\n",
              static_cast<unsigned long long>(sb.in_flight()));
  std::printf("  order violations   : %llu\n",
              static_cast<unsigned long long>(sb.errors()));
  std::printf("  transaction ids    : %llu (minted once at the ASRS; spans "
              "ride to the display domain)\n",
              static_cast<unsigned long long>(trace.transactions()));

  // Per-stage forward latency from the metrics registry.
  for (const char* inst : {"fuse.asrs", "cross.mcrs", "cross.right.rs1"}) {
    const metrics::Histogram* h = registry.find_histogram(inst, "latency_ps");
    if (h != nullptr && h->count() > 0) {
      std::printf("  %-16s : p50 %.0f ps   p99 %.0f ps   (n=%llu)\n", inst,
                  h->percentile(0.50), h->percentile(0.99),
                  static_cast<unsigned long long>(h->count()));
    }
  }
  const std::string hot = sim::format_hot_sites(sim.report().kernel());
  if (!hot.empty()) std::printf("%s", hot.c_str());

  trace.write_json("soc_trace.json");
  std::ofstream("soc_report.json") << sim.report().to_json();
  std::ofstream("soc_design.json") << elab->to_json();
  std::ofstream("soc_design.dot") << elab->to_dot();
  telemetry.write_jsonl("soc_timeline.jsonl");
  std::printf("  wrote soc_trace.json (%llu events + %llu counter points), "
              "soc_report.json, soc_design.json, soc_design.dot and "
              "soc_timeline.jsonl (%llu samples, %llu series)\n",
              static_cast<unsigned long long>(trace.events_recorded()),
              static_cast<unsigned long long>(telemetry.store().total_points()),
              static_cast<unsigned long long>(telemetry.samples()),
              static_cast<unsigned long long>(
                  telemetry.store().series_count()));

  // One id per packet end to end: ids are minted only at the ASRS, so a
  // re-mint anywhere downstream would inflate the count well past `sent`.
  const bool traced_ok =
      trace.transactions() > 500 &&
      trace.transactions() <= producer.completed() + fuse_opt.capacity;

  // Counter tracks for all four telemetry source kinds must have landed in
  // the same trace.json as the transaction spans: FIFO/relay occupancy,
  // relay stall duty, scheduler event rate, synchronizer escapes.
  std::size_t kinds = 0;
  for (const char* needle :
       {".occupancy", ".stall_duty", "kernel.events_per_us", ".escape_rate"}) {
    bool found = false;
    for (const std::string& name : telemetry.store().names()) {
      if (name.find(needle) != std::string::npos) {
        found = true;
        break;
      }
    }
    if (found) ++kinds;
  }
  const std::string trace_json = trace.to_json();
  const bool telemetry_ok = kinds >= 4 && telemetry.samples() > 100 &&
                            trace_json.find("\"ph\": \"C\"") !=
                                std::string::npos;
  std::printf("  telemetry          : %llu samples, %zu/4 source kinds, "
              "counter tracks %s\n",
              static_cast<unsigned long long>(telemetry.samples()), kinds,
              telemetry_ok ? "merged" : "MISSING");

  const bool ok = sb.errors() == 0 && elab->sink_received(display) > 500 &&
                  sb.in_flight() < 32 && traced_ok && telemetry_ok;
  std::printf("  %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
