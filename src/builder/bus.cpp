#include "builder/bus.hpp"

#include "builder/traffic.hpp"
#include "sim/report.hpp"

namespace mts::builder {

BusFabric::BusFabric(sim::Simulation& sim, std::string name, sim::Wire& clk,
                     std::vector<InPort> inputs, std::vector<OutPort> outputs,
                     const gates::DelayModel& dm)
    : sim_(sim),
      name_(std::move(name)),
      clk_to_q_(dm.flop.clk_to_q),
      in_(std::move(inputs)),
      out_(std::move(outputs)),
      capture_(in_.size(), 0),
      capture_full_(in_.size(), false),
      prev_stop_(in_.size(), false),
      held_(out_.size(), 0),
      held_full_(out_.size(), false) {
  clk.on_rise([this] { on_edge(); });
}

unsigned BusFabric::occupancy() const {
  unsigned n = 0;
  for (const bool c : capture_full_) n += c ? 1 : 0;
  for (const bool h : held_full_) n += h ? 1 : 0;
  return n;
}

void BusFabric::on_edge() {
  // 1. Retire consumer registers whose downstream stop was low.
  for (std::size_t o = 0; o < out_.size(); ++o) {
    if (held_full_[o] && !out_[o].stop->read()) held_full_[o] = false;
  }

  // 2. Capture producer arrivals (transfer iff registered stop was low).
  for (std::size_t i = 0; i < in_.size(); ++i) {
    if (!prev_stop_[i] && in_[i].valid->read()) {
      capture_[i] = in_[i].data->read();
      capture_full_[i] = true;
    }
  }

  // 3. Arbitration: one grant per cycle, round-robin over occupied capture
  //    registers whose destination output register is free.
  const std::size_t n = in_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (rr_ + k) % n;
    if (!capture_full_[i]) continue;
    const unsigned dest = PacketFormat::dest(capture_[i]);
    if (dest >= out_.size()) {
      capture_full_[i] = false;
      ++misroutes_;
      sim_.report().add(sim_.now(), sim::Severity::kWarning, "bus_fabric",
                        name_ + ": dest " + std::to_string(dest) +
                            " past the last output; packet dropped");
      continue;  // the grant goes to the next contender this cycle
    }
    if (held_full_[dest]) continue;
    held_[dest] = capture_[i];
    held_full_[dest] = true;
    capture_full_[i] = false;
    ++granted_;
    rr_ = (i + 1) % n;
    break;
  }

  // 4. Drive registered outputs and back-pressure.
  for (std::size_t o = 0; o < out_.size(); ++o) {
    out_[o].valid->write(held_full_[o], clk_to_q_, sim::DelayKind::kInertial);
    out_[o].data->write(held_[o], clk_to_q_, sim::DelayKind::kInertial);
  }
  for (std::size_t i = 0; i < in_.size(); ++i) {
    prev_stop_[i] = capture_full_[i];
    in_[i].stop->write(capture_full_[i], clk_to_q_, sim::DelayKind::kInertial);
  }
}

}  // namespace mts::builder
