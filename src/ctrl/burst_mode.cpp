#include "ctrl/burst_mode.hpp"

#include <utility>

#include "sim/error.hpp"

namespace mts::ctrl {

void BmSpec::validate() const {
  if (num_states == 0) throw ConfigError("BmSpec '" + name + "': no states");
  for (const BmTransition& t : transitions) {
    if (t.from >= num_states || t.to >= num_states) {
      throw ConfigError("BmSpec '" + name + "': transition state out of range");
    }
    if (t.in_burst.empty()) {
      throw ConfigError("BmSpec '" + name + "': empty input burst");
    }
    if (t.in_burst.size() > 32) {
      throw ConfigError("BmSpec '" + name + "': input burst too large");
    }
    for (const BmEdge& e : t.in_burst) {
      if (e.signal >= input_names.size()) {
        throw ConfigError("BmSpec '" + name + "': input index out of range");
      }
    }
    for (const BmEdge& e : t.out_burst) {
      if (e.signal >= output_names.size()) {
        throw ConfigError("BmSpec '" + name + "': output index out of range");
      }
    }
  }
  // Distinguishability: two transitions from one state must not both be
  // completable by one edge sequence; a sufficient static check is that no
  // transition's burst is a subset of a sibling's.
  for (const BmTransition& a : transitions) {
    for (const BmTransition& b : transitions) {
      if (&a == &b || a.from != b.from) continue;
      bool subset = true;
      for (const BmEdge& ea : a.in_burst) {
        bool found = false;
        for (const BmEdge& eb : b.in_burst) {
          found = found || (ea.signal == eb.signal && ea.rising == eb.rising);
        }
        subset = subset && found;
      }
      if (subset) {
        throw ConfigError("BmSpec '" + name +
                          "': ambiguous bursts leaving state " +
                          std::to_string(a.from));
      }
    }
  }
}

BmStep bm_step(const BmSpec& spec, BmCore& core, unsigned signal, bool rising) {
  BmStep step;
  for (std::size_t ti = 0; ti < spec.transitions.size(); ++ti) {
    const BmTransition& t = spec.transitions[ti];
    if (t.from != core.state) continue;
    for (std::size_t ei = 0; ei < t.in_burst.size(); ++ei) {
      const BmEdge& e = t.in_burst[ei];
      if (e.signal == signal && e.rising == rising) {
        core.progress[ti] |= 1u << ei;
        step.matched = true;
      }
    }
    const std::uint32_t complete = (t.in_burst.size() == 32)
                                       ? 0xFFFF'FFFFu
                                       : (1u << t.in_burst.size()) - 1u;
    if (core.progress[ti] == complete) {
      core.state = t.to;
      for (auto& p : core.progress) p = 0;
      step.fired = true;
      step.transition = ti;
      return step;
    }
  }
  return step;
}

BurstModeMachine::BurstModeMachine(sim::Simulation& sim, std::string instance,
                                   const BmSpec& spec,
                                   std::vector<sim::Wire*> inputs,
                                   std::vector<sim::Wire*> outputs,
                                   sim::Time output_delay, unsigned initial_state)
    : sim_(sim),
      instance_(std::move(instance)),
      spec_(spec),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)),
      output_delay_(output_delay) {
  spec_.validate();
  if (inputs_.size() != spec_.input_names.size() ||
      outputs_.size() != spec_.output_names.size()) {
    throw ConfigError("BurstModeMachine '" + instance_ +
                      "': wire count does not match spec");
  }
  if (initial_state >= spec_.num_states) {
    throw ConfigError("BurstModeMachine '" + instance_ + "': bad initial state");
  }
  core_ = BmCore(spec_, initial_state);
  for (unsigned i = 0; i < inputs_.size(); ++i) {
    MTS_ASSERT(inputs_[i] != nullptr, "null input wire");
    inputs_[i]->on_change([this, i](bool, bool now) { on_input_edge(i, now); });
  }
}

void BurstModeMachine::on_input_edge(unsigned signal, bool rising) {
  const BmStep step = bm_step(spec_, core_, signal, rising);
  if (step.fired) {
    // Fire: emit the output burst the core selected.
    ++firings_;
    for (const BmEdge& out : spec_.transitions[step.transition].out_burst) {
      outputs_[out.signal]->write(out.rising, output_delay_,
                                  sim::DelayKind::kInertial);
    }
    return;
  }
  if (!step.matched) {
    sim_.report().add(sim_.now(), sim::Severity::kError, "bm-illegal-input",
                      instance_ + ": unexpected edge on " +
                          spec_.input_names[signal] + (rising ? "+" : "-") +
                          " in state " + std::to_string(core_.state));
  }
}

}  // namespace mts::ctrl
