#include "metrics/registry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/report.hpp"

namespace mts::metrics {
namespace {

TEST(Registry, CountersAndGaugesResolveOrCreate) {
  Registry r;
  Counter& c = r.counter("dut", "puts");
  c.inc();
  c.inc(4);
  EXPECT_EQ(r.counter("dut", "puts").value(), 5u);  // same node
  r.gauge("dut", "occupancy").set(3.5);
  EXPECT_DOUBLE_EQ(r.gauge("dut", "occupancy").value(), 3.5);
  EXPECT_EQ(r.instance_count(), 1u);
}

TEST(Registry, FindReturnsNullForAbsentMetrics) {
  Registry r;
  r.counter("dut", "puts");
  EXPECT_NE(r.find_counter("dut", "puts"), nullptr);
  EXPECT_EQ(r.find_counter("dut", "gets"), nullptr);
  EXPECT_EQ(r.find_counter("other", "puts"), nullptr);
  EXPECT_EQ(r.find_gauge("dut", "puts"), nullptr);
  EXPECT_EQ(r.find_histogram("dut", "puts"), nullptr);
}

TEST(Histogram, EmptyHistogramIsAllZero) {
  Histogram h(Histogram::linear_bounds(4));
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(Histogram, TracksSumMinMaxAndBuckets) {
  Histogram h({10.0, 100.0, 1000.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);
  h.observe(5000.0);  // +inf tail bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5555.0 / 4.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  for (const auto n : h.bucket_counts()) EXPECT_EQ(n, 1u);
}

TEST(Histogram, PercentilesAreOrderedAndClampedToObservedRange) {
  Histogram h(Histogram::exponential_bounds(100.0, 1e7));
  for (int i = 0; i < 100; ++i) h.observe(1000.0 + i * 10.0);  // 1000..1990
  const double p50 = h.percentile(0.50);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_GT(p99, 0.0);
}

TEST(Histogram, SingleBucketDistributionStaysBelowMax) {
  // All samples inside one bucket: interpolation must clamp to the
  // observed max, not the bucket's upper bound.
  Histogram h({1000.0, 1'000'000.0});
  for (int i = 0; i < 10; ++i) h.observe(2000.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 2000.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 2000.0);
}

TEST(Histogram, ExponentialBoundsAre125PerDecadeWithinRange) {
  const auto b = Histogram::exponential_bounds(100.0, 1e7);
  ASSERT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.front(), 100.0);
  EXPECT_DOUBLE_EQ(b.back(), 1e7);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(Histogram, LinearBoundsCoverEveryOccupancyLevel) {
  const auto b = Histogram::linear_bounds(8);
  ASSERT_EQ(b.size(), 9u);
  EXPECT_DOUBLE_EQ(b.front(), 0.0);
  EXPECT_DOUBLE_EQ(b.back(), 8.0);
}

TEST(Registry, ToJsonCarriesAllThreeMetricKinds) {
  Registry r;
  r.counter("dut", "puts").inc(7);
  r.gauge("dut", "fill").set(0.5);
  Histogram& h = r.histogram("dut", "latency_ps", {100.0, 1000.0});
  h.observe(250.0);

  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"dut\""), std::string::npos);
  EXPECT_NE(json.find("\"puts\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"fill\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"latency_ps\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(Registry, HistogramBucketsAreSparseInJson) {
  Registry r;
  Histogram& h = r.histogram("dut", "lat", {1.0, 2.0, 3.0, 4.0});
  h.observe(2.5);  // only the (2,3] bucket is populated
  const std::string json = r.to_json();
  EXPECT_NE(json.find("[3, 1]"), std::string::npos);
  EXPECT_EQ(json.find("[1, 0]"), std::string::npos);  // empty buckets elided
}

TEST(Registry, ToCsvEmitsOneRowPerMetric) {
  Registry r;
  r.counter("a", "puts").inc(2);
  r.histogram("b", "lat", {10.0}).observe(5.0);
  const std::string csv = r.to_csv();
  EXPECT_NE(csv.find("instance,metric,kind,count,mean,p50,p95,p99,max"),
            std::string::npos);
  EXPECT_NE(csv.find("a,puts,counter,2"), std::string::npos);
  EXPECT_NE(csv.find("b,lat,histogram,1"), std::string::npos);
}

TEST(Registry, BindAttachesMetricsSectionToReportJson) {
  Registry r;
  r.counter("dut", "puts").inc(3);
  sim::Report report;
  r.bind(report);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"puts\": 3"), std::string::npos);
}

TEST(Registry, ReportIntoEmitsOneLinePerHistogram) {
  Registry r;
  r.histogram("dut", "latency_ps", {100.0}).observe(42.0);
  sim::Report report;
  r.report_into(report, 1234);
  EXPECT_EQ(report.count("metrics"), 1u);
  EXPECT_EQ(report.failure_count(), 0u);  // kInfo lines are not failures
}

// --- percentile edge contract (documented on Histogram) -------------------

TEST(Histogram, PercentileEdgesEmptySingleAndClampedP) {
  Histogram h({10.0, 100.0});
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 0.0);   // empty: documented 0.0
  EXPECT_DOUBLE_EQ(h.percentile(0.999), 0.0);
  h.observe(42.0);
  // Single sample: every percentile is that sample.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.999), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.0);
  h.observe(7.0);
  // p<=0 pins to the observed min, p>=1 to the observed max.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(-1.0), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(2.0), 42.0);
}

TEST(Histogram, WindowPercentileEdges) {
  Histogram h({10.0, 100.0});
  h.set_window(16);
  EXPECT_EQ(h.window_capacity(), 16u);
  EXPECT_EQ(h.window_count(), 0u);
  EXPECT_DOUBLE_EQ(h.window_percentile(0.99), 0.0);  // empty window
  h.observe(42.0);
  EXPECT_EQ(h.window_count(), 1u);
  EXPECT_DOUBLE_EQ(h.window_percentile(0.50), 42.0);  // single sample
  EXPECT_DOUBLE_EQ(h.window_percentile(0.999), 42.0);
  h.observe(7.0);
  EXPECT_DOUBLE_EQ(h.window_percentile(0.0), 7.0);    // p<=0 -> window min
  EXPECT_DOUBLE_EQ(h.window_percentile(1.0), 42.0);   // p>=1 -> window max
}

TEST(Histogram, WindowP999WithFewerThanThousandSamplesIsWindowMax) {
  // Nearest-rank: with n < 1000, ceil(0.999 * n) == n, so p99.9 of a small
  // window is exactly its max -- the documented regression case.
  Histogram h({1e6});
  h.set_window(1024);
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.window_percentile(0.999), 100.0);
  EXPECT_DOUBLE_EQ(h.window_percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.window_percentile(0.50), 50.0);
}

TEST(Histogram, WindowEvictsOldestAndIsExactOverRecentSamples) {
  Histogram h({1e6});
  h.set_window(8);
  for (int i = 0; i < 100; ++i) h.observe(1000.0);  // old regime
  for (int i = 1; i <= 8; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.window_count(), 8u);
  // Only the 8 most recent samples remain: 1..8.
  EXPECT_DOUBLE_EQ(h.window_percentile(0.50), 4.0);
  EXPECT_DOUBLE_EQ(h.window_percentile(1.0), 8.0);
  // The cumulative view still spans all 108 observations.
  EXPECT_EQ(h.count(), 108u);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(Registry, DefaultWindowAppliesToHistogramsCreatedAfterward) {
  Registry r;
  Histogram& before = r.histogram("a", "lat", {10.0});
  r.set_default_window(32);
  Histogram& after = r.histogram("b", "lat", {10.0});
  EXPECT_EQ(before.window_capacity(), 0u);
  EXPECT_EQ(after.window_capacity(), 32u);
  EXPECT_EQ(r.default_window(), 32u);
}

TEST(RegistryMerge, CountersAddGaugesMaxAcrossShards) {
  Registry a;
  a.counter("dut", "puts").inc(3);
  a.gauge("dut", "occ").set(2.0);
  Registry b;
  b.counter("dut", "puts").inc(4);
  b.counter("dut", "gets").inc(1);       // only in b
  b.gauge("dut", "occ").set(5.0);
  b.gauge("other", "depth").set(1.0);    // new instance
  a.merge(b);
  EXPECT_EQ(a.counter("dut", "puts").value(), 7u);
  EXPECT_EQ(a.counter("dut", "gets").value(), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("dut", "occ").value(), 5.0);  // max, not last
  EXPECT_DOUBLE_EQ(a.gauge("other", "depth").value(), 1.0);
}

TEST(RegistryMerge, HistogramBucketsCountsAndExtremaCombine) {
  const std::vector<double> bounds{10.0, 100.0};
  Registry a;
  a.histogram("dut", "lat", bounds).observe(5.0);
  a.histogram("dut", "lat", bounds).observe(50.0);
  Registry b;
  b.histogram("dut", "lat", bounds).observe(500.0);
  a.merge(b);
  const Histogram* h = a.find_histogram("dut", "lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->min(), 5.0);
  EXPECT_DOUBLE_EQ(h->max(), 500.0);
  // Percentiles see the union of the shards' buckets.
  EXPECT_GT(h->percentile(0.99), 100.0);
}

TEST(RegistryMerge, HistogramBoundsMismatchThrows) {
  Registry a;
  a.histogram("dut", "lat", {10.0}).observe(1.0);
  Registry b;
  b.histogram("dut", "lat", {20.0}).observe(1.0);
  EXPECT_THROW(a.merge(b), ConfigError);
}

TEST(RegistryMerge, CommutativeAndIndependentOfShardOrder) {
  // The campaign reduction folds worker registries in worker order; the
  // result must not depend on that order.
  auto build = [](std::uint64_t n, double g) {
    auto r = std::make_unique<Registry>();  // Registry is non-copyable
    r->counter("dut", "puts").inc(n);
    r->gauge("dut", "occ").set(g);
    r->histogram("dut", "lat", {10.0}).observe(g);
    return r;
  };
  auto ab = build(1, 2.0);
  ab->merge(*build(5, 9.0));
  auto ba = build(5, 9.0);
  ba->merge(*build(1, 2.0));
  EXPECT_EQ(ab->to_json(), ba->to_json());
}

TEST(RegistryMerge, EmptyIntoEmptyAndEmptyIntoPopulated) {
  Registry a;
  Registry b;
  a.merge(b);  // empty <- empty: no-op
  EXPECT_EQ(a.instance_count(), 0u);
  a.counter("dut", "puts").inc(3);
  a.merge(b);  // populated <- empty: unchanged
  EXPECT_EQ(a.counter("dut", "puts").value(), 3u);
  EXPECT_EQ(a.instance_count(), 1u);
  b.merge(a);  // empty <- populated: becomes a copy
  EXPECT_EQ(b.counter("dut", "puts").value(), 3u);
}

TEST(RegistryMerge, DisjointInstanceSetsUnion) {
  Registry a;
  a.counter("left", "puts").inc(1);
  Registry b;
  b.counter("right", "gets").inc(2);
  b.histogram("right", "lat", {10.0}).observe(5.0);
  a.merge(b);
  EXPECT_EQ(a.instance_count(), 2u);
  EXPECT_EQ(a.counter("left", "puts").value(), 1u);
  EXPECT_EQ(a.counter("right", "gets").value(), 2u);
  ASSERT_NE(a.find_histogram("right", "lat"), nullptr);
  EXPECT_EQ(a.find_histogram("right", "lat")->count(), 1u);
}

TEST(RegistryMerge, WindowsDoNotMergeAcrossShards) {
  // Sliding windows are per-shard recency state; merge() combines only the
  // cumulative buckets. The destination keeps its own window contents.
  Registry a;
  a.set_default_window(8);
  a.histogram("dut", "lat", {1e6}).observe(10.0);
  Registry b;
  b.set_default_window(8);
  b.histogram("dut", "lat", {1e6}).observe(999.0);
  a.merge(b);
  const Histogram* h = a.find_histogram("dut", "lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);                          // cumulative merged
  EXPECT_EQ(h->window_count(), 1u);                   // window untouched
  EXPECT_DOUBLE_EQ(h->window_percentile(1.0), 10.0);  // a's sample only
}

TEST(Registry, ClearDropsEveryInstance) {
  Registry r;
  r.counter("dut", "puts").inc(3);
  r.histogram("dut", "lat", {10.0}).observe(1.0);
  r.clear();
  EXPECT_EQ(r.instance_count(), 0u);
  EXPECT_EQ(r.find_counter("dut", "puts"), nullptr);
}

}  // namespace
}  // namespace mts::metrics
