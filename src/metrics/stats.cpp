#include "metrics/stats.hpp"

#include <utility>

#include "sim/error.hpp"

namespace mts::metrics {

OccupancySampler::OccupancySampler(sim::Simulation& sim, sim::Wire& clk,
                                   unsigned capacity,
                                   std::function<unsigned()> occupancy)
    : occupancy_(std::move(occupancy)), bins_(capacity + 1, 0) {
  MTS_ASSERT(static_cast<bool>(occupancy_), "OccupancySampler: null getter");
  (void)sim;
  clk.on_rise([this] {
    const unsigned level = occupancy_();
    if (level < bins_.size()) {
      ++bins_[level];
    } else {
      ++bins_.back();  // clamp out-of-range (should not happen)
    }
    ++samples_;
    weighted_sum_ += level;
    if (level > max_seen_) max_seen_ = level;
  });
}

double OccupancySampler::mean() const noexcept {
  return samples_ == 0 ? 0.0
                       : static_cast<double>(weighted_sum_) /
                             static_cast<double>(samples_);
}

double OccupancySampler::fraction_at(unsigned level) const {
  if (samples_ == 0 || level >= bins_.size()) return 0.0;
  return static_cast<double>(bins_[level]) / static_cast<double>(samples_);
}

}  // namespace mts::metrics
