#include "sync/mtbf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "sim/error.hpp"

namespace mts::sync {
namespace {

MtbfParams base() {
  MtbfParams p;
  p.depth = 2;
  p.clock_period = 2000;
  p.data_rate_hz = 100e6;
  p.dm = gates::DelayModel::hp06();
  return p;
}

TEST(Mtbf, EachStageMultipliesMtbfExponentially) {
  MtbfParams p = base();
  const double m1 = mtbf_seconds([&] { p.depth = 1; return p; }());
  const double m2 = mtbf_seconds([&] { p.depth = 2; return p; }());
  const double m3 = mtbf_seconds([&] { p.depth = 3; return p; }());
  const double slack = static_cast<double>(stage_slack(p));
  const double factor = std::exp(slack / static_cast<double>(p.dm.meta_tau));
  EXPECT_NEAR(m2 / m1, factor, factor * 1e-9);
  EXPECT_NEAR(m3 / m2, factor, factor * 1e-9);
}

TEST(Mtbf, SlowerClockImprovesMtbf) {
  MtbfParams fast = base();
  MtbfParams slow = base();
  slow.clock_period = 4000;
  EXPECT_GT(mtbf_seconds(slow), mtbf_seconds(fast));
}

TEST(Mtbf, HigherDataRateDegradesMtbf) {
  MtbfParams quiet = base();
  MtbfParams busy = base();
  busy.data_rate_hz = 10 * quiet.data_rate_hz;
  EXPECT_LT(mtbf_seconds(busy), mtbf_seconds(quiet));
}

TEST(Mtbf, ZeroDataRateIsInfinite) {
  MtbfParams p = base();
  p.data_rate_hz = 0;
  EXPECT_TRUE(std::isinf(mtbf_seconds(p)));
}

TEST(Mtbf, TooFastClockHasZeroSlack) {
  MtbfParams p = base();
  p.clock_period = p.dm.flop.setup;  // faster than the flop itself
  EXPECT_EQ(stage_slack(p), 0u);
}

TEST(Mtbf, InvalidParamsRejected) {
  MtbfParams p = base();
  p.depth = 0;
  EXPECT_THROW(mtbf_seconds(p), ConfigError);
  MtbfParams q = base();
  q.clock_period = 0;
  EXPECT_THROW(stage_slack(q), ConfigError);
}

// -- Randomized property checks ---------------------------------------------
// The three structural facts the fault-injection suite leans on, checked
// across many random parameter draws rather than one hand-picked point.

MtbfParams random_params(std::mt19937_64& rng) {
  MtbfParams p = base();
  const auto floor_ps =
      static_cast<sim::Time>(p.dm.flop.setup + p.dm.flop.clk_to_q);
  // Positive slack always (zero slack makes the depth law non-strict:
  // exp(0) = 1), clock periods up to ~8 ns, data rates 1 MHz .. 1 GHz.
  p.clock_period = floor_ps + 50 + static_cast<sim::Time>(rng() % 8000);
  p.data_rate_hz = 1e6 * std::pow(10.0, static_cast<double>(rng() % 4)) *
                   (1.0 + static_cast<double>(rng() % 9));
  p.depth = 1 + static_cast<unsigned>(rng() % 4);
  return p;
}

TEST(MtbfProperty, StrictlyMonotoneInDepth) {
  std::mt19937_64 rng(0xD5);
  for (int i = 0; i < 100; ++i) {
    MtbfParams p = random_params(rng);
    MtbfParams deeper = p;
    deeper.depth = p.depth + 1;
    EXPECT_LT(mtbf_seconds(p), mtbf_seconds(deeper))
        << "depth " << p.depth << " period " << p.clock_period << " rate "
        << p.data_rate_hz;
  }
}

TEST(MtbfProperty, StrictlyMonotoneInSlack) {
  // Any increase in the clock period increases per-stage slack and must
  // strictly increase MTBF (the exp(depth * t_r / tau) factor dominates the
  // 1/(T_w f_clk f_data) prefactor, which also grows with the period).
  std::mt19937_64 rng(0x51AC);
  for (int i = 0; i < 100; ++i) {
    MtbfParams p = random_params(rng);
    MtbfParams slower = p;
    slower.clock_period = p.clock_period + 1 + (rng() % 1000);
    EXPECT_GT(stage_slack(slower), stage_slack(p));
    EXPECT_LT(mtbf_seconds(p), mtbf_seconds(slower))
        << "depth " << p.depth << " period " << p.clock_period << " rate "
        << p.data_rate_hz;
  }
}

TEST(MtbfProperty, EachStageMultipliesByExpSlackOverTau) {
  std::mt19937_64 rng(0xE4B);
  for (int i = 0; i < 100; ++i) {
    const MtbfParams p = random_params(rng);
    MtbfParams deeper = p;
    deeper.depth = p.depth + 1;
    const double factor =
        std::exp(static_cast<double>(stage_slack(p)) /
                 static_cast<double>(p.dm.meta_tau));
    const double ratio = mtbf_seconds(deeper) / mtbf_seconds(p);
    EXPECT_NEAR(ratio, factor, factor * 1e-9)
        << "depth " << p.depth << " period " << p.clock_period;
  }
}

TEST(MtbfProperty, ZeroDataRateIsInfiniteForAnyDepthAndPeriod) {
  std::mt19937_64 rng(0x1F);
  for (int i = 0; i < 20; ++i) {
    MtbfParams p = random_params(rng);
    p.data_rate_hz = 0;
    EXPECT_TRUE(std::isinf(mtbf_seconds(p)));
    EXPECT_GT(mtbf_seconds(p), 0);  // +inf, not -inf or NaN
  }
}

TEST(Mtbf, PaperDepthTwoIsConservativeDefault) {
  // Sanity: at the paper's scale (hundreds of MHz, 100 MHz data), two
  // stages give astronomically large MTBF while zero-slack gives none.
  MtbfParams p = base();
  EXPECT_GT(mtbf_seconds(p), 3.15e7 /* one year in seconds */);
}

}  // namespace
}  // namespace mts::sync
