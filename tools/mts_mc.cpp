// mts_mc -- explicit-state model checker driver (ARCHITECTURE.md sec. 11).
//
// Modes (default: --all):
//
//   --all              clean proofs at capacities 4 and 8, differential
//                      check of the shipped DV nets against ctrl::analyze(),
//                      and the full mutant self-test with replay cross-check
//   --capacity N       clean proof of the default ring at capacity N
//   --mutant NAME      one seeded mutant: expect its property + replay
//   --list-mutants     print the mutant set and exit
//
// Options:
//
//   --max-states N     full-pass visited-state budget (default 4000000)
//   --dfs-depth N      bounded-depth DFS fallback instead of BFS
//   --no-liveness      skip the reverse-reachability livelock check
//   --json PATH        write every CheckResult as a JSON array to PATH
//   --bundle-dir DIR   write <name>.cex.json per failure into DIR
//
// Exit status: 0 iff every requested check came out as expected (clean
// configs prove, mutants counterexample AND replay to the right invariant).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "ctrl/reachability.hpp"
#include "ctrl/specs.hpp"
#include "mc/mc.hpp"

namespace {

using namespace mts;

struct Args {
  bool all = true;
  bool list_mutants = false;
  unsigned capacity = 0;  ///< 0 = not set
  std::string mutant;
  std::string json_path;
  std::string bundle_dir;
  mc::ExploreOptions opts;
};

[[noreturn]] void usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: mts_mc [--all] [--capacity N] [--mutant NAME] [--list-mutants]\n"
      "              [--max-states N] [--dfs-depth N] [--no-liveness]\n"
      "              [--json PATH] [--bundle-dir DIR]\n");
  std::exit(code);
}

const char* need_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage(2);
  return argv[++i];
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--all") == 0) {
      a.all = true;
    } else if (std::strcmp(arg, "--capacity") == 0) {
      a.capacity = static_cast<unsigned>(std::atoi(need_value(argc, argv, i)));
      a.all = false;
    } else if (std::strcmp(arg, "--mutant") == 0) {
      a.mutant = need_value(argc, argv, i);
      a.all = false;
    } else if (std::strcmp(arg, "--list-mutants") == 0) {
      a.list_mutants = true;
      a.all = false;
    } else if (std::strcmp(arg, "--max-states") == 0) {
      a.opts.max_states =
          static_cast<std::size_t>(std::atoll(need_value(argc, argv, i)));
    } else if (std::strcmp(arg, "--dfs-depth") == 0) {
      a.opts.dfs_depth =
          static_cast<unsigned>(std::atoi(need_value(argc, argv, i)));
    } else if (std::strcmp(arg, "--no-liveness") == 0) {
      a.opts.check_liveness = false;
    } else if (std::strcmp(arg, "--json") == 0) {
      a.json_path = need_value(argc, argv, i);
    } else if (std::strcmp(arg, "--bundle-dir") == 0) {
      a.bundle_dir = need_value(argc, argv, i);
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(0);
    } else {
      std::fprintf(stderr, "mts_mc: unknown argument '%s'\n", arg);
      usage(2);
    }
  }
  return a;
}

struct Session {
  const Args& args;
  std::vector<std::string> results_json;
  int failures = 0;

  explicit Session(const Args& a) : args(a) {}

  void bundle(const std::string& name, const std::string& json) {
    if (args.bundle_dir.empty()) return;
    const std::string path = args.bundle_dir + "/" + name + ".cex.json";
    std::ofstream os(path);
    if (os) os << json << "\n";
  }

  void fail(const std::string& name, const std::string& why,
            const std::string& json) {
    std::printf("FAIL  %-28s %s\n", name.c_str(), why.c_str());
    bundle(name, json);
    ++failures;
  }

  /// A clean configuration must prove every property exhaustively.
  void run_clean(unsigned capacity) {
    const mc::RingConfig cfg = mc::default_ring(capacity);
    const mc::CheckResult res = mc::check_ring(cfg, args.opts);
    results_json.push_back(res.to_json());
    if (res.ok && res.exhaustive) {
      std::printf(
          "ok    %-28s exhaustive: %zu macro / %zu full states, %zu edges, "
          "peak frontier %zu, %zu properties proved\n",
          cfg.name.c_str(), res.macro_states, res.states, res.edges,
          res.peak_frontier, res.proved.size());
    } else if (res.ok) {
      fail(cfg.name, "no violation, but search was not exhaustive (raise "
                     "--max-states)", res.to_json());
    } else {
      fail(cfg.name,
           std::string("unexpected counterexample: ") +
               mc::property_name(res.cex->property) + " @ " + res.cex->site,
           res.to_json());
    }
  }

  /// The independent marking-graph oracle must agree with ctrl::analyze().
  void run_differential(const ctrl::PetriNet& net) {
    const ctrl::ReachabilityResult ref = ctrl::analyze(net);
    const mc::NetCheckResult got = mc::check_net(net);
    const bool agree = got.one_safe == ref.one_safe &&
                       got.deadlock_free == ref.deadlock_free &&
                       got.reachable_markings == ref.reachable_markings;
    if (agree) {
      std::printf("ok    %-28s mc/analyze agree: %zu markings, %s, %s\n",
                  net.name.c_str(), got.reachable_markings,
                  got.one_safe ? "one-safe" : "NOT one-safe",
                  got.deadlock_free ? "deadlock-free" : "NOT deadlock-free");
    } else {
      fail(net.name,
           "differential mismatch: mc says (" +
               std::to_string(got.reachable_markings) + " markings, safe=" +
               (got.one_safe ? "1" : "0") + ", df=" +
               (got.deadlock_free ? "1" : "0") + "), analyze says (" +
               std::to_string(ref.reachable_markings) + ", safe=" +
               (ref.one_safe ? "1" : "0") + ", df=" +
               (ref.deadlock_free ? "1" : "0") + ")",
           "{}");
    }
  }

  /// A mutant must yield its expected property AND replay to the matching
  /// runtime invariant at the same environment step.
  void run_mutant(const mc::Mutant& m) {
    const mc::CheckResult res = mc::check_ring(m.config, args.opts);
    results_json.push_back(res.to_json());
    if (res.ok) {
      fail(m.name, "checker found no violation (expected " +
                       std::string(mc::property_name(m.expected)) + ")",
           res.to_json());
      return;
    }
    if (res.cex->property != m.expected) {
      fail(m.name, std::string("found ") + mc::property_name(res.cex->property) +
                       ", expected " + mc::property_name(m.expected),
           res.to_json());
      return;
    }
    const mc::CrossCheckResult cc = mc::cross_check(m.config, *res.cex);
    if (!cc.ok) {
      fail(m.name, "replay cross-check failed: " + cc.message, res.to_json());
      return;
    }
    std::printf(
        "ok    %-28s found %s @ env step %zu (%zu macro states); replay "
        "confirmed %s\n",
        m.name.c_str(), mc::property_name(res.cex->property),
        res.cex->env_step, res.macro_states,
        verify::invariant_name(*cc.outcome.invariant));
  }

  int finish() {
    if (!args.json_path.empty()) {
      std::ofstream os(args.json_path);
      if (os) {
        os << "[";
        for (std::size_t i = 0; i < results_json.size(); ++i) {
          os << (i == 0 ? "" : ", ") << results_json[i];
        }
        os << "]\n";
      } else {
        std::fprintf(stderr, "mts_mc: cannot write %s\n",
                     args.json_path.c_str());
        ++failures;
      }
    }
    if (failures != 0) {
      std::printf("%d check(s) failed\n", failures);
      return 1;
    }
    return 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  if (args.list_mutants) {
    for (const mc::Mutant& m : mc::make_mutants()) {
      std::printf("%-28s %s (expected: %s)\n", m.name.c_str(),
                  m.description.c_str(), mc::property_name(m.expected));
    }
    return 0;
  }

  Session s(args);
  if (args.capacity != 0) {
    s.run_clean(args.capacity);
  } else if (!args.mutant.empty()) {
    bool found = false;
    for (const mc::Mutant& m : mc::make_mutants()) {
      if (m.name != args.mutant) continue;
      found = true;
      s.run_mutant(m);
    }
    if (!found) {
      std::fprintf(stderr, "mts_mc: unknown mutant '%s'\n",
                   args.mutant.c_str());
      return 2;
    }
  } else {
    s.run_clean(4);
    s.run_clean(8);
    s.run_differential(ctrl::dv_linear_net());
    s.run_differential(ctrl::dv_as_net());
    for (const mc::Mutant& m : mc::make_mutants()) s.run_mutant(m);
  }
  return s.finish();
}
