// Reachability analysis for 1-safe Petri nets.
//
// Petrify verified these properties before synthesizing the paper's DV
// controllers; this analyzer restores that check: it explores the full
// reachable marking graph (markings are bitsets, so nets up to 64 places)
// and reports
//
//   - 1-safety: no reachable firing puts a second token in a place,
//   - deadlock-freedom: every reachable marking enables some transition,
//   - liveness (strong): from every reachable marking, every transition
//     can eventually fire again,
//   - reversibility: the initial marking is reachable from everywhere.
//
// Output-transition eagerness is ignored here -- the analysis is over the
// untimed net, which over-approximates the engine's behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ctrl/petri.hpp"

namespace mts::ctrl {

struct ReachabilityResult {
  bool one_safe = false;
  bool deadlock_free = false;
  bool live = false;
  bool reversible = false;
  std::size_t reachable_markings = 0;
  /// Human-readable explanation of the first violation found (empty when
  /// all properties hold).
  std::string violation;

  bool all_good() const {
    return one_safe && deadlock_free && live && reversible;
  }
};

/// Explores the marking graph; throws ConfigError for nets with more than
/// 64 places or more than `max_markings` reachable markings.
ReachabilityResult analyze(const PetriNet& net,
                           std::size_t max_markings = 1 << 20);

}  // namespace mts::ctrl
