#include "metrics/coverage.hpp"

#include <sstream>

#include "fifo/async_sync_fifo.hpp"
#include "fifo/mixed_clock_fifo.hpp"

namespace mts::metrics {

std::uint64_t Coverage::hits(const std::string& bin) const {
  const auto it = bins_.find(bin);
  return it == bins_.end() ? 0 : it->second;
}

std::vector<std::string> Coverage::missing() const {
  std::vector<std::string> out;
  for (const auto& [bin, n] : bins_) {
    if (n == 0) out.push_back(bin);
  }
  return out;
}

void Coverage::merge(const Coverage& other) {
  for (const auto& [bin, n] : other.bins_) bins_[bin] += n;
}

bool Coverage::all_hit() const {
  for (const auto& [bin, n] : bins_) {
    if (n == 0) return false;
  }
  return !bins_.empty();
}

std::string Coverage::summary() const {
  std::ostringstream os;
  std::size_t covered = 0;
  for (const auto& [bin, n] : bins_) {
    if (n > 0) ++covered;
  }
  os << name_ << ": " << covered << "/" << bins_.size() << " bins hit";
  const auto miss = missing();
  if (!miss.empty()) {
    os << "; missing:";
    for (const auto& m : miss) os << " " << m;
  }
  return os.str();
}

void Coverage::report_into(sim::Report& r, sim::Time t) const {
  r.add(t, sim::Severity::kInfo, "coverage", summary());
  for (const auto& [bin, n] : bins_) {
    if (n > 0) {
      r.add(t, sim::Severity::kInfo, "coverage",
            "bin " + bin + " hits=" + std::to_string(n));
    } else {
      r.add(t, sim::Severity::kWarning, "coverage-miss",
            "bin " + bin + " never hit");
    }
  }
}

void Coverage::bin_rise(const std::string& bin, sim::Wire& w) {
  w.on_rise([c = slot(bin)] { ++*c; });
}

void Coverage::bin_fall(const std::string& bin, sim::Wire& w) {
  w.on_fall([c = slot(bin)] { ++*c; });
}

void Coverage::bin_nth_rise(const std::string& bin, sim::Wire& w, unsigned n) {
  w.on_rise([c = slot(bin), seen = 0u, n]() mutable {
    if (++seen >= n) ++*c;
  });
}

void Coverage::bin_nth_fall(const std::string& bin, sim::Wire& w, unsigned n) {
  w.on_fall([c = slot(bin), seen = 0u, n]() mutable {
    if (++seen >= n) ++*c;
  });
}

namespace {

/// Shared occupancy-bucket listener body: recomputes occupancy on any cell
/// flag change and bumps the matching coarse bucket. `nearfull` means the
/// put side is one item (or less) from stalling, which for capacity 2
/// coincides with any non-empty state -- the campaign treats the buckets
/// as reachability classes, not a histogram.
///
/// Only meaningful for the FIFO controller: a relay-station put side
/// enqueues every cycle (void items carry v=0), so the cell-flag count
/// includes bubbles and never returns to zero once traffic starts. Relay
/// configurations cover the empty/full states through the oe/full detector
/// bins instead.
template <typename Fifo>
void attach_occ_buckets(Coverage& cov, const std::string& prefix, Fifo& f) {
  if (f.config().controller != fifo::ControllerKind::kFifo) return;
  cov.define(prefix + ".occ.empty");
  cov.define(prefix + ".occ.some");
  cov.define(prefix + ".occ.nearfull");
  struct Probe {
    Fifo* f;
    std::uint64_t* empty;
    std::uint64_t* some;
    std::uint64_t* nearfull;
    unsigned cap;
    void operator()() const {
      const unsigned occ = f->occupancy();
      if (occ == 0) ++*empty;
      if (occ >= 1) ++*some;
      if (occ + 1 >= cap) ++*nearfull;
    }
  };
  static_assert(sizeof(Probe) <= 40, "keep the probe within a listener cell");
  const Probe p{&f, cov.counter(prefix + ".occ.empty"),
                cov.counter(prefix + ".occ.some"),
                cov.counter(prefix + ".occ.nearfull"), f.config().capacity};
  for (unsigned i = 0; i < f.config().capacity; ++i) {
    f.cell_f(i).on_change([p](bool, bool) { p(); });
  }
}

}  // namespace

void cover_mixed_clock_fifo(Coverage& cov, const std::string& prefix,
                            fifo::MixedClockFifo& f) {
  cov.bin_rise(prefix + ".full.rise", f.full_raw());
  cov.bin_fall(prefix + ".full.fall", f.full_raw());
  cov.bin_rise(prefix + ".ne.rise", f.ne_raw());
  cov.bin_fall(prefix + ".ne.fall", f.ne_raw());
  cov.bin_rise(prefix + ".oe.rise", f.oe_raw());
  cov.bin_fall(prefix + ".oe.fall", f.oe_raw());
  // Ring wraps: the put (get) token is back at cell 0 when its full flag
  // sets (clears) for the second time -- the first set/clear is startup.
  cov.bin_nth_rise(prefix + ".ptok.wrap", f.cell_f(0), 2);
  cov.bin_nth_fall(prefix + ".gtok.wrap", f.cell_f(0), 2);
  attach_occ_buckets(cov, prefix, f);
}

void cover_async_sync_fifo(Coverage& cov, const std::string& prefix,
                           fifo::AsyncSyncFifo& f) {
  cov.bin_rise(prefix + ".ne.rise", f.ne_raw());
  cov.bin_fall(prefix + ".ne.fall", f.ne_raw());
  cov.bin_rise(prefix + ".oe.rise", f.oe_raw());
  cov.bin_fall(prefix + ".oe.fall", f.oe_raw());
  cov.bin_nth_rise(prefix + ".ptok.wrap", f.cell_f(0), 2);
  cov.bin_nth_fall(prefix + ".gtok.wrap", f.cell_f(0), 2);
  attach_occ_buckets(cov, prefix, f);
}

void cover_stall_valid(Coverage& cov, const std::string& prefix,
                       sim::Wire& clk, sim::Wire& valid, sim::Wire& stop) {
  for (const char* bin :
       {".sv.idle", ".sv.flow", ".sv.backpressure", ".sv.stall"}) {
    cov.define(prefix + bin);
  }
  struct Probe {
    const sim::Wire* valid;
    const sim::Wire* stop;
    std::uint64_t* cells[4];  // [valid][stop]
    void operator()() const {
      const unsigned idx =
          (valid->read() ? 2u : 0u) + (stop->read() ? 1u : 0u);
      ++*cells[idx];
    }
  };
  Probe p{&valid, &stop,
          {cov.counter(prefix + ".sv.idle"),
           cov.counter(prefix + ".sv.backpressure"),
           cov.counter(prefix + ".sv.flow"),
           cov.counter(prefix + ".sv.stall")}};
  clk.on_rise([p] { p(); });
}

void cover_occupancy_histogram(Coverage& cov, const std::string& prefix,
                               fifo::MixedClockFifo& f) {
  if (f.config().controller != fifo::ControllerKind::kFifo) return;
  const unsigned cap = f.config().capacity;
  std::vector<std::uint64_t*> cells;
  cells.reserve(cap + 1);
  for (unsigned k = 0; k <= cap; ++k) {
    cells.push_back(cov.counter(prefix + ".occ." + std::to_string(k)));
  }
  struct Probe {
    fifo::MixedClockFifo* f;
    std::vector<std::uint64_t*> cells;
    void operator()() const { ++*cells.at(f->occupancy()); }
  };
  for (unsigned i = 0; i < cap; ++i) {
    f.cell_f(i).on_change([p = Probe{&f, cells}](bool, bool) { p(); });
  }
}

}  // namespace mts::metrics
