// Value-change-dump (VCD) tracing.
//
// Usage: construct, watch() every signal of interest, start(), run the
// simulation, then let the writer go out of scope (or call finish()).
// watch() after start() is a ConfigError. Output loads in GTKWave.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "sim/error.hpp"
#include "sim/signal.hpp"
#include "sim/time.hpp"

namespace mts::sim {

class VcdWriter {
 public:
  /// Opens `path` for writing; throws ConfigError on failure.
  explicit VcdWriter(const std::string& path);
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Registers a 1-bit signal under `display_name` (defaults to the
  /// signal's own name).
  void watch(Wire& w, std::string display_name = {});

  /// Registers a word signal with the given displayed bit width.
  void watch(Word& w, unsigned width, std::string display_name = {});

  /// Writes the VCD header and the initial values; changes recorded from
  /// this point on.
  void start();

  /// Flushes and closes; further changes are ignored. Idempotent: calling
  /// it again (or destructing afterwards) is a safe no-op.
  void finish();

 private:
  struct Var {
    std::string id;
    std::string name;
    unsigned width = 1;
    std::uint64_t initial = 0;
  };

  std::string next_id();
  void record(const Var& var, std::uint64_t value, Time t);
  void advance_time(Time t);

  std::ofstream out_;
  std::vector<Var> vars_;
  std::uint64_t next_code_ = 0;
  Time last_time_ = 0;
  bool time_emitted_ = false;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace mts::sim
