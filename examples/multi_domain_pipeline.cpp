// Multi-domain SoC pipeline -- the library's components composed end to
// end across THREE timing domains:
//
//   CPU domain (fast clock)
//     -> MixedClockLink (SRS chain + MCRS + SRS chain)      [Fig. 11a]
//   memory domain (medium clock)
//     -> sync-async FIFO -> self-timed accelerator           [matrix ext.]
//     -> async-sync FIFO                                     [Section 4]
//   back into the memory domain, where results are checked.
//
// The topology is declared as a builder::Design: a generated CPU source, a
// repeater junction in the memory domain, an external node for the
// clockless accelerator, and a generated checking sink. elaborate()
// chooses every crossing from the port annotations -- the CPU edge becomes
// the Fig. 11a mixed-clock link, the accelerator edges become the
// sync-async and async-sync FIFOs -- and only the accelerator behaviour is
// hand-written, against the handshake ports the elaborator exposes.
//
//   $ ./example_multi_domain_pipeline
#include <cstdio>

#include "builder/builder.hpp"
#include "fifo/fifo.hpp"

namespace {

using namespace mts;
using sim::Time;

constexpr std::uint64_t transform(std::uint64_t x) {
  return (3 * x + 1) & 0xFFFF;
}

/// Clockless accelerator: 4-phase pull on one side, 4-phase push on the
/// other, with a data-dependent compute delay in between.
class Accelerator {
 public:
  Accelerator(sim::Simulation& sim, builder::HandshakePort in,
              builder::HandshakePort out)
      : sim_(sim), in_(in), out_(out) {
    in_.ack->on_change([this](bool, bool now) {
      if (now) {
        operand_ = in_.data->read();
        in_.req->write(false, 150, sim::DelayKind::kTransport);
      } else {
        // Compute: longer for larger operands (data-dependent timing --
        // the reason this block is self-timed).
        const Time compute = 800 + 40 * (operand_ % 32);
        sim_.sched().after(compute, [this] { push_result(); });
      }
    });
    out_.ack->on_change([this](bool, bool now) {
      if (now) {
        out_.req->write(false, 150, sim::DelayKind::kTransport);
      } else {
        ++completed_;
        pull_next();
      }
    });
    sim_.sched().after(1000, [this] { pull_next(); });
  }

  std::uint64_t completed() const { return completed_; }

 private:
  void pull_next() { in_.req->write(true, 150, sim::DelayKind::kTransport); }
  void push_result() {
    out_.data->set(transform(operand_));
    out_.req->write(true, 150, sim::DelayKind::kTransport);
  }

  sim::Simulation& sim_;
  builder::HandshakePort in_;
  builder::HandshakePort out_;
  std::uint64_t operand_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace

int main() {
  sim::Simulation sim(21);

  fifo::FifoConfig probe;
  probe.capacity = 8;
  probe.width = 16;

  // Clocks: CPU fast, memory domain ~1.6x slower.
  const Time mem_p = std::max(fifo::SyncPutSide::min_period(probe) * 5 / 4,
                              fifo::SyncGetSide::min_period(probe) * 5 / 4);
  const Time cpu_p = std::max(fifo::SyncPutSide::min_period(probe) * 9 / 8,
                              mem_p * 5 / 8);

  builder::Design d("multi_domain_pipeline");
  const builder::DomainId cpu_dom =
      d.domain("clk_cpu", {cpu_p, 4 * mem_p, 0.5, 0});
  const builder::DomainId mem_dom =
      d.domain("clk_mem", {mem_p, 4 * mem_p + 431, 0.5, 0});

  const builder::NodeId cpu =
      d.source("cpu", builder::Design::sync_out("out", cpu_dom, 16),
               {/*rate=*/0.7, /*gap=*/0, /*mask=*/0xFFFF});
  const builder::NodeId mem_j = d.repeater("mem_j", mem_dom, 16);
  const builder::NodeId acc =
      d.external("acc", {builder::Design::async_in("operand", 16),
                         builder::Design::async_out("result", 16)});
  const builder::NodeId sink =
      d.sink("sink", builder::Design::sync_in("in", mem_dom, 16));

  // Stage 1: CPU -> memory domain over a latency-insensitive link
  // (elaborates to the Fig. 11a SRS + MCRS + SRS chain).
  builder::LinkOptions li;
  li.capacity = 8;
  li.latency_left = 2;
  li.latency_right = 2;
  d.connect(cpu, "out", mem_j, "in", li, "link");

  // Stage 2: memory domain -> accelerator (sync-async FIFO + LI glue).
  builder::LinkOptions push;
  push.capacity = 8;
  d.connect(mem_j, "out", acc, "operand", push, "to_acc");

  // Stage 3: accelerator -> memory domain (async-sync FIFO, on demand).
  builder::LinkOptions pull;
  pull.capacity = 8;
  pull.controller = fifo::ControllerKind::kFifo;
  d.connect(acc, "result", sink, "in", pull, "from_acc");

  auto elab = builder::elaborate(sim, d);
  Accelerator core(sim, elab->handshake_port(acc, "operand"),
                   elab->handshake_port(acc, "result"));

  // End-to-end checking: expectations carry the accelerator's transform,
  // mirrored in lockstep with the CPU's confirmed sends.
  bfm::Scoreboard& end_sb = elab->scoreboard(sink);
  std::uint64_t mirrored = 0;
  sim::on_rise(elab->clock(cpu_dom).out(), [&] {
    while (mirrored < elab->source_sent(cpu)) {
      ++mirrored;
      end_sb.push(transform(mirrored & 0xFFFF));
    }
  });

  const Time horizon = 4 * mem_p + 4000 * mem_p;
  sim.run_until(horizon);

  std::printf("multi-domain pipeline: CPU @%.0f MHz -> LI link -> mem "
              "@%.0f MHz -> async accelerator -> mem domain\n",
              sim::period_to_mhz(cpu_p), sim::period_to_mhz(mem_p));
  std::printf("  operands sent       : %llu\n",
              static_cast<unsigned long long>(elab->source_sent(cpu)));
  std::printf("  results computed    : %llu\n",
              static_cast<unsigned long long>(core.completed()));
  std::printf("  results delivered   : %llu\n",
              static_cast<unsigned long long>(elab->sink_received(sink)));
  std::printf("  end-to-end mismatches: %llu\n",
              static_cast<unsigned long long>(end_sb.errors()));
  const bool ok = end_sb.errors() == 0 && elab->sink_received(sink) > 500;
  std::printf("  %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
