#include "lip/relay_station.hpp"

#include <utility>

namespace mts::lip {

RelayStation::RelayStation(sim::Simulation& sim, std::string name,
                           sim::Wire& clk, sim::Word& in_data,
                           sim::Wire& in_valid, sim::Wire& stop_out,
                           sim::Word& out_data, sim::Wire& out_valid,
                           sim::Wire& stop_in, const gates::DelayModel& dm)
    : name_(std::move(name)),
      in_data_(in_data),
      in_valid_(in_valid),
      stop_out_(stop_out),
      out_data_(out_data),
      out_valid_(out_valid),
      stop_in_(stop_in),
      clk_to_q_(dm.flop.clk_to_q) {
  if (sim::Observability* o = sim.observability()) {
    // One clock, one track; MR + AUX give a capacity of 2.
    obs_ = std::make_unique<sim::TransitObserver>(*o, sim, name_, clk.name(),
                                                  clk.name(), 2);
  }
  if (verify::Hub* hub = sim.monitors()) {
    mon_ = std::make_unique<verify::MonitorSet>();
    mon_->hub = hub;
    mon_->stream = std::make_unique<verify::StreamMonitor>(*hub, sim, name_);
  }
  clk.on_rise([this] { on_edge(); });
}

void RelayStation::on_edge() {
  // Pre-edge samples: registered neighbours changed just after the previous
  // edge, so these reads are the values stable during the ending cycle.
  const bool stop_right = stop_in_.read();
  const bool in_transfer = !aux_occupied_;  // stopOut == aux_occupied_

  bool emitted = false;
  std::uint64_t emitted_data = 0;
  bool accepted = false;
  std::uint64_t accepted_data = 0;

  if (!stop_right) {
    // Output advances: emit MR, refill from AUX (draining a stall) or from
    // the input link.
    out_data_.write(mr_data_, clk_to_q_, sim::DelayKind::kInertial);
    out_valid_.write(mr_valid_, clk_to_q_, sim::DelayKind::kInertial);
    emitted = mr_valid_;
    emitted_data = mr_data_;
    if (aux_occupied_) {
      mr_data_ = aux_data_;
      mr_valid_ = aux_valid_;
      aux_occupied_ = false;
    } else {
      mr_data_ = in_data_.read();
      mr_valid_ = in_valid_.read();
      accepted = mr_valid_;
      accepted_data = mr_data_;
    }
  } else if (in_transfer) {
    // Output blocked but a packet is arriving this edge: park it in AUX and
    // raise stopOut (paper: "on the next clock edge, the relay station
    // raises stopOut and latches the next packet to the auxiliary
    // register").
    aux_data_ = in_data_.read();
    aux_valid_ = in_valid_.read();
    aux_occupied_ = true;
    accepted = aux_valid_;
    accepted_data = aux_data_;
  }
  // else: fully stalled; hold everything.

  stop_out_.write(aux_occupied_, clk_to_q_, sim::DelayKind::kInertial);

  // Departure first, arrival second: same edge, but the departing packet
  // is the older transaction in the in-flight queue.
  std::uint64_t txn_out = 0;
  std::uint64_t txn_in = 0;
  if (obs_ != nullptr) {
    if (emitted) txn_out = obs_->get_observed(emitted_data, buffered_valid());
    if (accepted) txn_in = obs_->put_committed(accepted_data, buffered_valid());
    if (stop_right && (mr_valid_ || (aux_occupied_ && aux_valid_))) {
      obs_->stalled_by_stop_in();
    }
  }
  if (mon_ != nullptr) {
    if (emitted) mon_->stream->get(emitted_data, txn_out);
    if (accepted) mon_->stream->put(accepted_data, txn_in);
  }
}

}  // namespace mts::lip
