#include "ctrl/reachability.hpp"

#include <gtest/gtest.h>

#include "ctrl/specs.hpp"

namespace mts::ctrl {
namespace {

TEST(Reachability, DvAsNetIsSafeLiveAndReversible) {
  const ReachabilityResult r = analyze(dv_as_net());
  EXPECT_TRUE(r.one_safe) << r.violation;
  EXPECT_TRUE(r.deadlock_free) << r.violation;
  EXPECT_TRUE(r.live) << r.violation;
  EXPECT_TRUE(r.reversible) << r.violation;
  // The DV_as ring with the concurrent we-branch: a handful of markings.
  EXPECT_GE(r.reachable_markings, 6u);
  EXPECT_LE(r.reachable_markings, 20u);
}

TEST(Reachability, DvLinearNetIsSafeLiveAndReversible) {
  const ReachabilityResult r = analyze(dv_linear_net());
  EXPECT_TRUE(r.all_good()) << r.violation;
  // A pure 8-place ring has exactly 8 markings.
  EXPECT_EQ(r.reachable_markings, 8u);
}

TEST(Reachability, DetectsDeadlock) {
  PetriNet n;
  n.name = "dead";
  n.num_places = 2;
  n.initial_marking = {0};
  n.transitions = {
      {"t0", false, 0, true, {0}, {1}},  // p1 is a sink: deadlock
  };
  const ReachabilityResult r = analyze(n);
  EXPECT_TRUE(r.one_safe);
  EXPECT_FALSE(r.deadlock_free);
  EXPECT_FALSE(r.live);
  EXPECT_FALSE(r.reversible);
  EXPECT_FALSE(r.violation.empty());
}

TEST(Reachability, DetectsOneSafetyViolation) {
  PetriNet n;
  n.name = "unsafe";
  n.num_places = 3;
  n.initial_marking = {0, 2};
  n.transitions = {
      {"t0", false, 0, true, {0}, {1}},
      {"t1", false, 0, true, {1}, {2}},  // p2 already marked -> violation
      {"t2", false, 0, false, {2}, {0}},
  };
  const ReachabilityResult r = analyze(n);
  EXPECT_FALSE(r.one_safe);
  EXPECT_NE(r.violation.find("1-safety"), std::string::npos);
}

TEST(Reachability, DetectsNonLiveTransition) {
  PetriNet n;
  n.name = "partial";
  n.num_places = 2;
  n.initial_marking = {0};
  n.transitions = {
      {"loop", false, 0, true, {0}, {0}},   // self-loop: always enabled
      {"never", false, 0, true, {1}, {1}},  // p1 never marked
  };
  const ReachabilityResult r = analyze(n);
  EXPECT_TRUE(r.deadlock_free);
  EXPECT_FALSE(r.live);
  EXPECT_NE(r.violation.find("never"), std::string::npos);
}

TEST(Reachability, RejectsOversizedNets) {
  PetriNet n;
  n.name = "big";
  n.num_places = 65;
  EXPECT_THROW(analyze(n), ConfigError);
}

TEST(Reachability, AcceptsSixtyFourPlaceNets) {
  // 64 places is exactly the bitset-marking capacity: must be accepted.
  PetriNet n;
  n.name = "ring64";
  n.num_places = 64;
  n.initial_marking = {0};
  for (unsigned p = 0; p < 64; ++p) {
    n.transitions.push_back({"t" + std::to_string(p), false, 0, true,
                             {p}, {(p + 1) % 64}});
  }
  const ReachabilityResult r = analyze(n);
  EXPECT_TRUE(r.all_good()) << r.violation;
  EXPECT_EQ(r.reachable_markings, 64u);
}

TEST(Reachability, MarkingExplosionErrorNamesTheBound) {
  // The 8-marking linear ring blows a max_markings budget of 4; the
  // ConfigError must name the configured bound so users know which knob
  // to raise.
  try {
    analyze(dv_linear_net(), 4);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("max_markings = 4"), std::string::npos) << what;
    EXPECT_NE(what.find("marking explosion"), std::string::npos) << what;
  }
}

TEST(Reachability, SelfLoopOnMarkedPlaceIsSafe) {
  // pre and post share a place: consume-then-produce must not be flagged.
  PetriNet n;
  n.name = "selfloop";
  n.num_places = 1;
  n.initial_marking = {0};
  n.transitions = {{"t", false, 0, true, {0}, {0}}};
  const ReachabilityResult r = analyze(n);
  EXPECT_TRUE(r.all_good()) << r.violation;
  EXPECT_EQ(r.reachable_markings, 1u);
}

}  // namespace
}  // namespace mts::ctrl
