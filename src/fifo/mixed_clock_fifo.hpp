// Mixed-clock (sync-sync) FIFO -- the paper's Section 3 design -- and its
// relay-station variant (Section 5.2), selected by FifoConfig::controller.
//
// Architecture (Fig. 2a): a circular array of identical cells with immobile
// data, a put-token ring clocked by CLK_put and a get-token ring clocked by
// CLK_get, tri-state output buses, anticipating full/empty detectors, a
// bi-modal empty detector, and two-flop synchronizers on the global state
// signals.
//
// Protocol (Fig. 3): the sender asserts req_put with data after a CLK_put
// edge; the item is enqueued at the next edge unless `full`. The receiver
// asserts req_get after a CLK_get edge; by the end of the cycle data_get
// and valid_get are driven unless `empty`.
//
// Relay-station mode (Fig. 13): req_put becomes the packet validity bit and
// every cycle enqueues (en_put = !full, an inverter); full doubles as
// stopOut. The get side dequeues every cycle unless empty or stop_in, and
// valid_get = cell validity & !empty & !stop_in.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fifo/cell_parts.hpp"
#include "fifo/config.hpp"
#include "gates/netlist.hpp"
#include "gates/timing.hpp"
#include "gates/tristate.hpp"
#include "sim/observe.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"
#include "sync/synchronizer.hpp"
#include "verify/checkers.hpp"

namespace mts::fifo {

class MixedClockFifo {
 public:
  MixedClockFifo(sim::Simulation& sim, const std::string& name,
                 const FifoConfig& cfg, sim::Wire& clk_put, sim::Wire& clk_get);

  MixedClockFifo(const MixedClockFifo&) = delete;
  MixedClockFifo& operator=(const MixedClockFifo&) = delete;

  // --- put interface (synchronous, CLK_put) ---
  sim::Wire& req_put() noexcept { return *req_put_; }
  sim::Word& data_put() noexcept { return *data_put_; }
  /// Synchronized full flag (relay-station mode: stopOut).
  sim::Wire& full() noexcept { return *full_ext_; }
  sim::Wire& stop_out() noexcept { return *full_ext_; }

  // --- get interface (synchronous, CLK_get) ---
  sim::Wire& req_get() noexcept { return *req_get_; }
  sim::Word& data_get() noexcept { return *data_get_; }
  sim::Wire& valid_get() noexcept { return *valid_ext_; }
  sim::Wire& empty() noexcept { return *empty_w_; }
  /// Relay-station back-pressure input from the right neighbour.
  sim::Wire& stop_in() noexcept { return *stop_in_; }

  // --- diagnostics / verification hooks ---
  gates::TimingDomain& put_domain() noexcept { return put_dom_; }
  gates::TimingDomain& get_domain() noexcept { return get_dom_; }
  std::uint64_t overflow_count() const noexcept { return overflows_; }
  std::uint64_t underflow_count() const noexcept { return underflows_; }
  /// Register-write events (cell enqueues): with immobile data this is
  /// exactly one per item -- the paper's low-power argument (Section 2).
  std::uint64_t data_moves() const noexcept { return data_moves_; }
  /// Number of cells currently holding a data item (f_i set).
  unsigned occupancy() const;
  sim::Wire& cell_f(unsigned i) { return *f_.at(i); }
  sim::Wire& cell_e(unsigned i) { return *e_.at(i); }
  /// Token-ring state, for verification harnesses (fault injection into a
  /// ring is how the token-ring monitor's positive path is exercised).
  sim::Wire& put_token(unsigned i) { return *ptok_.at(i); }
  sim::Wire& get_token(unsigned i) { return *gtok_.at(i); }
  sim::Wire& full_raw() noexcept { return *full_raw_; }
  sim::Wire& ne_raw() noexcept { return *ne_raw_; }
  sim::Wire& oe_raw() noexcept { return *oe_raw_; }
  sim::Wire& en_put() noexcept { return *en_put_b_; }
  sim::Wire& en_get() noexcept { return *en_get_b_; }

  // --- static timing (DESIGN.md section 7; validated by simulation) ---
  /// Minimum CLK_put period: the cycle-limiting path
  /// full-sync Q -> put controller -> en_put broadcast -> we_i -> DV set ->
  /// full detector -> full-sync D setup.
  sim::Time put_min_period() const;
  /// Minimum CLK_get period: max of the empty-detector loop (through the
  /// bi-modal ne/oe trees and the oe OR gate) and the tri-state read path
  /// to the receiver's sampling flop.
  sim::Time get_min_period() const;

  const FifoConfig& config() const noexcept { return cfg_; }

 private:
  sim::Simulation& sim_;
  FifoConfig cfg_;
  gates::Netlist nl_;
  gates::TimingDomain put_dom_;
  gates::TimingDomain get_dom_;

  sim::Wire* req_put_ = nullptr;
  sim::Word* data_put_ = nullptr;
  sim::Wire* req_get_ = nullptr;
  sim::Wire* stop_in_ = nullptr;
  sim::Word* data_get_ = nullptr;
  sim::Wire* valid_bus_ = nullptr;
  sim::Wire* valid_ext_ = nullptr;
  sim::Wire* empty_w_ = nullptr;
  sim::Wire* full_ext_ = nullptr;
  sim::Wire* full_raw_ = nullptr;
  sim::Wire* ne_raw_ = nullptr;
  sim::Wire* oe_raw_ = nullptr;
  sim::Wire* en_put_b_ = nullptr;
  sim::Wire* en_get_b_ = nullptr;

  std::vector<sim::Wire*> e_;
  std::vector<sim::Wire*> f_;
  std::vector<sim::Wire*> ptok_;
  std::vector<sim::Wire*> gtok_;

  std::uint64_t overflows_ = 0;
  std::uint64_t underflows_ = 0;
  std::uint64_t data_moves_ = 0;
  /// Non-null only when the owning Simulation had observability armed at
  /// construction time (sim/observe.hpp); the seed path keeps a nullptr.
  std::unique_ptr<sim::TransitObserver> obs_;
  /// Non-null only when a verify::Hub was armed at construction time:
  /// token-ring + detector-consistency + scoreboard checkers.
  std::unique_ptr<verify::MonitorSet> mon_;
};

}  // namespace mts::fifo
