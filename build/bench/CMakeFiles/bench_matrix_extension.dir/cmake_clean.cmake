file(REMOVE_RECURSE
  "CMakeFiles/bench_matrix_extension.dir/bench_matrix_extension.cpp.o"
  "CMakeFiles/bench_matrix_extension.dir/bench_matrix_extension.cpp.o.d"
  "bench_matrix_extension"
  "bench_matrix_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matrix_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
