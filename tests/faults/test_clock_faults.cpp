// Clock fault injection: PVT drift and extra cycle-to-cycle jitter, and the
// mixed-clock FIFO's tolerance of both (the design makes NO assumption
// about the relationship between the two clocks, so perturbing them must
// never corrupt data -- only shift throughput).
#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "fifo/mixed_clock_fifo.hpp"
#include "sim/fault.hpp"
#include "sync/clock.hpp"

#include "fault_test_util.hpp"

namespace mts::sync {
namespace {

using sim::Time;

std::uint64_t edges_over(double drift, Time extra_jitter, std::uint64_t seed) {
  sim::Simulation sim(seed);
  sim::FaultPlan plan(seed);
  if (drift != 1.0 || extra_jitter != 0) {
    plan.inject_clock("clk", sim::ClockFault{extra_jitter, drift});
    sim.arm_faults(&plan);
  }
  Clock clk(sim, "clk", {1000, 0, 0.5, 0});
  sim.run_until(1'000'000);
  return clk.edges();
}

TEST(ClockFaults, UnarmedClockTicksAtTheNominalRate) {
  // Edges at t = 0, 1000, ..., 1'000'000 inclusive.
  EXPECT_EQ(edges_over(1.0, 0, 7), 1001u);
}

TEST(ClockFaults, DriftStretchesThePeriod) {
  const std::uint64_t slow = edges_over(1.25, 0, 7);
  // 1000 cycles at 1250ps each -> 800 edges.
  EXPECT_GE(slow, 798u);
  EXPECT_LE(slow, 802u);
  const std::uint64_t fast = edges_over(0.8, 0, 7);
  EXPECT_GE(fast, 1248u);
  EXPECT_LE(fast, 1252u);
}

TEST(ClockFaults, ExtraJitterPreservesTheMeanRate) {
  const std::uint64_t seed = faulttest::fault_seed(0xC10C);
  const std::uint64_t n = edges_over(1.0, 200, seed);
  // Uniform +/-200ps on a 1000ps period: the mean period is unchanged, so
  // the count stays within a few percent over 1000 cycles.
  EXPECT_GT(n, 960u);
  EXPECT_LT(n, 1040u);
}

TEST(ClockFaults, PeriodFloorKeepsExtremeDriftAlive) {
  // drift 0.01 would ask for a 10ps period; the floor clamps at period/4+1
  // so the clock neither deadlocks nor floods the queue unboundedly.
  const std::uint64_t n = edges_over(0.01, 0, 7);
  EXPECT_GE(n, 3900u);  // 1e6 / 251
  EXPECT_LE(n, 4000u);
}

TEST(ClockFaults, PerturbationsAreCountedAndDescribed) {
  sim::Simulation sim(5);
  sim::FaultPlan plan(5);
  plan.inject_clock("clk_get", sim::ClockFault{150, 1.1});
  sim.arm_faults(&plan);
  Clock cp(sim, "clk_put", {1000, 0, 0.5, 0});
  Clock cg(sim, "clk_get", {1000, 0, 0.5, 0});
  sim.run_until(100'000);
  EXPECT_EQ(plan.count("clock.perturb"), cg.edges());
  EXPECT_EQ(cp.edges(), 101u);  // untargeted clock unaffected (t=0..1e5)
  EXPECT_NE(plan.describe().find("clock[clk_get]"), std::string::npos);
}

TEST(ClockFaults, MixedClockFifoSurvivesDriftAndJitterOnBothClocks) {
  // The robustness half of the claim: drifting, jittering clocks change
  // *rates*, never *data*. Invariants hold through a long soak.
  const std::uint64_t seed = faulttest::fault_seed(0xC10D);
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  sim::Simulation sim(seed);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sim::FaultPlan plan(seed);
  // Put clock drifts 8% slow; get clock jitters by 5% of its period. Both
  // stay well above the design minimum, mimicking PVT corners rather than
  // a broken clock tree.
  plan.inject_clock("clk_put", sim::ClockFault{0, 1.08});
  plan.inject_clock("clk_get", sim::ClockFault{gp / 20, 1.0});
  sim.arm_faults(&plan);
  sync::Clock cp(sim, "clk_put", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "clk_get", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor pm(sim, cp.out(), dut.en_put(), dut.req_put(), dut.data_put(),
                     sb);
  bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                         {0.9, 1});
  sim.run_until(4 * pp + 1500 * pp);
  const std::string diag =
      plan.describe() + "\n" +
      faulttest::repro_hint(
          "ClockFaults.MixedClockFifoSurvivesDriftAndJitterOnBothClocks",
          seed);
  EXPECT_GT(gm.dequeued(), 500u) << diag;
  EXPECT_EQ(sb.errors(), 0u) << diag;
  EXPECT_EQ(dut.overflow_count(), 0u) << diag;
  EXPECT_EQ(dut.underflow_count(), 0u) << diag;
  EXPECT_GT(plan.count("clock.perturb"), 1000u);
}

}  // namespace
}  // namespace mts::sync
