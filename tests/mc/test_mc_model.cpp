// RingModel product semantics: reset state, token movement, blocking, and
// handshake-count cross-validation against the concrete replay harness.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "mc/replay.hpp"
#include "mc/ring_model.hpp"

namespace mts::mc {
namespace {

/// Applies one env action and drains to quiescence, asserting every step is
/// violation-free. Returns (puts, gets) completed during the drain.
std::pair<unsigned, unsigned> macro_step(const RingModel& model, RingState& s,
                                         ActionKind a) {
  unsigned puts = 0;
  unsigned gets = 0;
  RingState next;
  StepResult r = model.apply(s, a, &next);
  EXPECT_TRUE(r.violations.empty()) << r.violations.front().detail;
  s = std::move(next);
  puts += r.progress_put ? 1u : 0u;
  gets += r.progress_get ? 1u : 0u;
  while (!s.queue.empty()) {
    StepResult rc = model.apply(s, ActionKind::kCommit, &next);
    EXPECT_TRUE(rc.violations.empty()) << rc.violations.front().detail;
    s = std::move(next);
    puts += rc.progress_put ? 1u : 0u;
    gets += rc.progress_get ? 1u : 0u;
  }
  return {puts, gets};
}

TEST(RingModel, ResetStateIsTheQuiescentPaperReset) {
  const RingModel model(default_ring(4));
  const RingState s = model.initial();
  EXPECT_TRUE(s.queue.empty());
  EXPECT_TRUE(s.wires[model.ptok_index(0)]);
  EXPECT_TRUE(s.wires[model.gtok_index(0)]);
  for (unsigned k = 0; k < 4; ++k) {
    EXPECT_TRUE(s.wires[model.e_index(k)]) << k;
    EXPECT_FALSE(s.wires[model.f_index(k)]) << k;
    EXPECT_FALSE(s.wires[model.we_index(k)]) << k;
    EXPECT_FALSE(s.wires[model.re_index(k)]) << k;
    if (k != 0) {
      EXPECT_FALSE(s.wires[model.ptok_index(k)]) << k;
      EXPECT_FALSE(s.wires[model.gtok_index(k)]) << k;
    }
  }
  const auto actions = model.enabled_actions(s, true);
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions[0], ActionKind::kPutReqUp);
  EXPECT_EQ(actions[1], ActionKind::kGetReqUp);
}

TEST(RingModel, PutHandshakeFillsCellAndMovesToken) {
  const RingModel model(default_ring(4));
  RingState s = model.initial();
  macro_step(model, s, ActionKind::kPutReqUp);
  EXPECT_TRUE(model.put_ack(s));
  EXPECT_TRUE(s.wires[model.we_index(0)]);
  auto [puts, gets] = macro_step(model, s, ActionKind::kPutReqDown);
  EXPECT_EQ(puts, 1u);
  EXPECT_EQ(gets, 0u);
  EXPECT_FALSE(model.put_ack(s));
  // Cell 0 now holds the item; the put token granted cell 1.
  EXPECT_FALSE(s.wires[model.e_index(0)]);
  EXPECT_TRUE(s.wires[model.f_index(0)]);
  EXPECT_FALSE(s.wires[model.ptok_index(0)]);
  EXPECT_TRUE(s.wires[model.ptok_index(1)]);
}

TEST(RingModel, GetHandshakeEmptiesCellAgain) {
  const RingModel model(default_ring(4));
  RingState s = model.initial();
  macro_step(model, s, ActionKind::kPutReqUp);
  macro_step(model, s, ActionKind::kPutReqDown);
  macro_step(model, s, ActionKind::kGetReqUp);
  EXPECT_TRUE(model.get_ack(s));
  auto [puts, gets] = macro_step(model, s, ActionKind::kGetReqDown);
  EXPECT_EQ(puts, 0u);
  EXPECT_EQ(gets, 1u);
  EXPECT_TRUE(s.wires[model.e_index(0)]);
  EXPECT_FALSE(s.wires[model.f_index(0)]);
  EXPECT_TRUE(s.wires[model.gtok_index(1)]);
}

TEST(RingModel, FullRingBlocksPutsUntilAGet) {
  const unsigned n = 4;
  const RingModel model(default_ring(n));
  RingState s = model.initial();
  for (unsigned i = 0; i < n; ++i) {
    macro_step(model, s, ActionKind::kPutReqUp);
    EXPECT_TRUE(model.put_ack(s)) << i;
    macro_step(model, s, ActionKind::kPutReqDown);
  }
  // Fifth put: the token's cell is still full, so we+ cannot fire -- the
  // request parks with no acknowledge and only get actions stay enabled.
  macro_step(model, s, ActionKind::kPutReqUp);
  EXPECT_FALSE(model.put_ack(s));
  const auto actions = model.enabled_actions(s, true);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0], ActionKind::kGetReqUp);
  // One get drains a cell; the parked put then completes on its own.
  macro_step(model, s, ActionKind::kGetReqUp);
  macro_step(model, s, ActionKind::kGetReqDown);
  EXPECT_TRUE(model.put_ack(s));
}

TEST(RingModel, HandshakeCountsMatchConcreteReplay) {
  // The cross-validation at the heart of the replay contract: an env script
  // driven through the abstract model (macro drains) and through the real
  // netlist (replay_ring) completes the same transactions, cleanly.
  const std::vector<ActionKind> script = {
      ActionKind::kPutReqUp, ActionKind::kPutReqDown,  // put #1
      ActionKind::kPutReqUp, ActionKind::kPutReqDown,  // put #2
      ActionKind::kGetReqUp, ActionKind::kGetReqDown,  // get #1
      ActionKind::kPutReqUp, ActionKind::kPutReqDown,  // put #3
      ActionKind::kGetReqUp, ActionKind::kGetReqDown,  // get #2
      ActionKind::kGetReqUp, ActionKind::kGetReqDown,  // get #3
  };
  const RingConfig cfg = default_ring(4);
  const RingModel model(cfg);
  RingState s = model.initial();
  unsigned model_puts = 0;
  unsigned model_gets = 0;
  for (ActionKind a : script) {
    auto [p, g] = macro_step(model, s, a);
    model_puts += p;
    model_gets += g;
  }
  EXPECT_EQ(model_puts, 3u);
  EXPECT_EQ(model_gets, 3u);

  const ReplayOutcome out = replay_ring(cfg, script);
  EXPECT_FALSE(out.violated) << out.detail;
  EXPECT_EQ(out.put_handshakes, model_puts);
  EXPECT_EQ(out.get_handshakes, model_gets);
}

TEST(RingModel, WireNamesAreStable) {
  const RingModel model(default_ring(4));
  EXPECT_EQ(model.wire_name(RingModel::kReqPut), "put_req");
  EXPECT_EQ(model.wire_name(RingModel::kReqGet), "get_req");
  EXPECT_EQ(model.wire_name(model.ptok_index(0)), "c0.ptok");
  EXPECT_EQ(model.wire_name(model.re_index(3)), "c3.re");
}

}  // namespace
}  // namespace mts::mc
