#include "campaignd/snapshots.hpp"

#include <cstdint>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

namespace mts::campaignd {

using json::Value;

namespace {

sim::Severity severity_from_name(const std::string& s) {
  if (s == "info") return sim::Severity::kInfo;
  if (s == "warning") return sim::Severity::kWarning;
  if (s == "violation") return sim::Severity::kViolation;
  if (s == "error") return sim::Severity::kError;
  throw json::ProtocolError("unknown severity '" + s + "'");
}

}  // namespace

// -- Report -----------------------------------------------------------------

Value report_to_json(const sim::Report& r) {
  Value v = Value::object();
  Value entries = Value::array();
  for (const sim::ReportEntry& e : r.entries()) {
    Value je = Value::object();
    je.set("t", Value::number_u64(e.time));
    je.set("sev", Value(sim::severity_name(e.severity)));
    je.set("cat", Value(e.category));
    je.set("msg", Value(e.message));
    entries.push(std::move(je));
  }
  v.set("entries", std::move(entries));
  Value cats = Value::object();
  for (const auto& [cat, n] : r.categories()) {
    cats.set(cat, Value::number_size(n));
  }
  v.set("categories", std::move(cats));
  v.set("failures", Value::number_size(r.failure_count()));
  v.set("total_added", Value::number_u64(r.total_added()));

  const sim::KernelStats& k = r.kernel();
  Value kv = Value::object();
  kv.set("events_executed", Value::number_u64(k.events_executed));
  kv.set("peak_queue_depth", Value::number_size(k.peak_queue_depth));
  kv.set("pool_high_water", Value::number_size(k.pool_high_water));
  if (!k.hot_sites.empty()) {
    Value sites = Value::array();
    for (const sim::KernelSiteStat& s : k.hot_sites) {
      Value js = Value::object();
      js.set("label", Value(s.label));
      js.set("events", Value::number_u64(s.events));
      js.set("wall_ns", Value::number_u64(s.wall_ns));
      sites.push(std::move(js));
    }
    kv.set("hot_sites", std::move(sites));
  }
  v.set("kernel", std::move(kv));
  return v;
}

void report_from_json(const Value& v, sim::Report& out) {
  std::vector<sim::ReportEntry> entries;
  for (const Value& je : v.at("entries").as_array()) {
    sim::ReportEntry e;
    e.time = je.at("t").as_u64();
    e.severity = severity_from_name(je.at("sev").as_string());
    e.category = je.at("cat").as_string();
    e.message = je.at("msg").as_string();
    entries.push_back(std::move(e));
  }
  std::map<std::string, std::size_t> cats;
  for (const auto& [cat, n] : v.at("categories").as_object()) {
    cats[cat] = n.as_size();
  }
  const Value& kv = v.at("kernel");
  sim::KernelStats k;
  k.events_executed = kv.at("events_executed").as_u64();
  k.peak_queue_depth = kv.at("peak_queue_depth").as_size();
  k.pool_high_water = kv.at("pool_high_water").as_size();
  if (const Value* sites = kv.find("hot_sites")) {
    for (const Value& js : sites->as_array()) {
      sim::KernelSiteStat s;
      s.label = js.at("label").as_string();
      s.events = js.at("events").as_u64();
      s.wall_ns = js.at("wall_ns").as_u64();
      k.hot_sites.push_back(std::move(s));
    }
  }
  out.restore(std::move(entries), std::move(cats),
              v.at("failures").as_size(), v.at("total_added").as_u64(),
              std::move(k));
}

// -- Registry ---------------------------------------------------------------

Value registry_to_json(const metrics::Registry& r) {
  // visit() walks (instance, metric) in map order; group back per instance.
  Value v = Value::object();
  auto instance_slot = [&v](const std::string& iname) -> Value& {
    if (!v.has(iname)) v.set(iname, Value::object());
    // set() keeps member addresses unstable; re-find after potential insert.
    return const_cast<Value&>(v.at(iname));
  };
  auto block_slot = [](Value& inst, const char* block) -> Value& {
    if (!inst.has(block)) inst.set(block, Value::object());
    return const_cast<Value&>(inst.at(block));
  };
  r.visit(
      [&](const std::string& iname, const std::string& name,
          const metrics::Counter& c) {
        block_slot(instance_slot(iname), "counters")
            .set(name, Value::number_u64(c.value()));
      },
      [&](const std::string& iname, const std::string& name,
          const metrics::Gauge& g) {
        block_slot(instance_slot(iname), "gauges")
            .set(name, Value::number_double(g.value()));
      },
      [&](const std::string& iname, const std::string& name,
          const metrics::Histogram& h) {
        Value jh = Value::object();
        Value bounds = Value::array();
        for (const double b : h.bounds()) {
          bounds.push(Value::number_double(b));
        }
        jh.set("bounds", std::move(bounds));
        Value counts = Value::array();
        for (const std::uint64_t c : h.bucket_counts()) {
          counts.push(Value::number_u64(c));
        }
        jh.set("counts", std::move(counts));
        jh.set("count", Value::number_u64(h.count()));
        jh.set("sum", Value::number_double(h.sum()));
        // min()/max() read 0 when empty; restore() re-derives the empty
        // sentinel from count == 0, so the 0s are never re-applied.
        jh.set("min", Value::number_double(h.min()));
        jh.set("max", Value::number_double(h.max()));
        block_slot(instance_slot(iname), "histograms")
            .set(name, std::move(jh));
      });
  return v;
}

void registry_from_json(const Value& v, metrics::Registry& out) {
  for (const auto& [iname, inst] : v.as_object()) {
    if (const Value* counters = inst.find("counters")) {
      for (const auto& [name, c] : counters->as_object()) {
        out.counter(iname, name).inc(c.as_u64());
      }
    }
    if (const Value* gauges = inst.find("gauges")) {
      for (const auto& [name, g] : gauges->as_object()) {
        out.gauge(iname, name).set(g.as_double());
      }
    }
    if (const Value* hists = inst.find("histograms")) {
      for (const auto& [name, jh] : hists->as_object()) {
        std::vector<double> bounds;
        for (const Value& b : jh.at("bounds").as_array()) {
          bounds.push_back(b.as_double());
        }
        std::vector<std::uint64_t> counts;
        for (const Value& c : jh.at("counts").as_array()) {
          counts.push_back(c.as_u64());
        }
        metrics::Histogram& h = out.histogram(iname, name, std::move(bounds));
        try {
          h.restore(counts, jh.at("count").as_u64(),
                    jh.at("sum").as_double(), jh.at("min").as_double(),
                    jh.at("max").as_double());
        } catch (const mts::ConfigError& e) {
          // Layout mismatch against a pre-existing histogram in `out`.
          throw json::ProtocolError(std::string("histogram '") + iname + "." +
                                    name + "': " + e.what());
        }
      }
    }
  }
}

// -- Coverage ---------------------------------------------------------------

Value coverage_to_json(const metrics::Coverage& c) {
  Value v = Value::object();
  for (const auto& [bin, hits] : c.bins()) {
    v.set(bin, Value::number_u64(hits));
  }
  return v;
}

void coverage_from_json(const Value& v, metrics::Coverage& out) {
  for (const auto& [bin, hits] : v.as_object()) {
    const std::uint64_t n = hits.as_u64();
    if (n == 0) {
      out.define(bin);
    } else {
      out.hit(bin, n);
    }
  }
}

// -- TimeSeriesStore --------------------------------------------------------

Value timeline_to_json(const metrics::TimeSeriesStore& ts) {
  Value v = Value::object();
  for (const std::string& name : ts.names()) {
    const metrics::TimeSeries* s = ts.find(name);
    Value js = Value::object();
    js.set("appended", Value::number_size(s->appended()));
    Value pts = Value::array();
    for (const metrics::TimePoint& p : s->points()) {
      Value jp = Value::array();
      jp.push(Value::number_u64(p.t));
      jp.push(Value::number_double(p.v));
      pts.push(std::move(jp));
    }
    js.set("points", std::move(pts));
    v.set(name, std::move(js));
  }
  return v;
}

void timeline_from_json(const Value& v, metrics::TimeSeriesStore& out) {
  for (const auto& [name, js] : v.as_object()) {
    std::vector<metrics::TimePoint> pts;
    for (const Value& jp : js.at("points").as_array()) {
      const json::Array& pair = jp.as_array();
      if (pair.size() != 2) throw json::ProtocolError("bad timeline point");
      metrics::TimePoint p;
      p.t = pair[0].as_u64();
      p.v = pair[1].as_double();
      pts.push_back(p);
    }
    out.series(name).restore(std::move(pts), js.at("appended").as_size());
  }
}

// -- RunResult --------------------------------------------------------------

Value run_result_to_json(const sim::RunResult& r) {
  Value v = Value::object();
  v.set("index", Value::number_size(r.index));
  v.set("seed", Value::number_u64(r.seed));
  v.set("ok", Value(r.ok));
  v.set("attempts", Value::number_u64(r.attempts));
  if (!r.error.empty()) v.set("error", Value(r.error));
  if (!r.error_type.empty()) v.set("error_type", Value(r.error_type));
  if (!r.classification.empty()) {
    v.set("classification", Value(r.classification));
  }
  if (!r.scalars.empty()) {
    Value sc = Value::object();
    for (const auto& [name, x] : r.scalars) {
      sc.set(name, Value::number_double(x));
    }
    v.set("scalars", std::move(sc));
  }
  if (!r.report_json.empty()) v.set("report_json", Value(r.report_json));
  if (!r.artifact.empty()) v.set("artifact", Value(r.artifact));
  if (!r.repro_path.empty()) v.set("repro_path", Value(r.repro_path));
  if (r.violations > 0) v.set("violations", Value::number_u64(r.violations));
  if (!r.violations_json.empty()) {
    v.set("violations_json", Value(r.violations_json));
  }
  if (!r.timeline_path.empty()) {
    v.set("timeline_path", Value(r.timeline_path));
  }
  if (!r.timeline_jsonl.empty()) {
    v.set("timeline_jsonl", Value(r.timeline_jsonl));
  }
  if (r.telemetry_samples > 0) {
    v.set("telemetry_samples", Value::number_u64(r.telemetry_samples));
  }
  if (r.slo_worst > 0.0) {
    v.set("slo_worst", Value::number_double(r.slo_worst));
    v.set("slo_worst_instance", Value(r.slo_worst_instance));
  }
  if (r.slo_breaches > 0) {
    v.set("slo_breaches", Value::number_u64(r.slo_breaches));
  }
  return v;
}

sim::RunResult run_result_from_json(const Value& v) {
  sim::RunResult r;
  r.index = v.at("index").as_size();
  r.seed = v.at("seed").as_u64();
  r.ok = v.at("ok").as_bool();
  r.attempts = v.at("attempts").as_unsigned();
  r.error = v.get_string("error", "");
  r.error_type = v.get_string("error_type", "");
  r.classification = v.get_string("classification", "");
  if (const Value* sc = v.find("scalars")) {
    for (const auto& [name, x] : sc->as_object()) {
      r.scalars[name] = x.as_double();
    }
  }
  r.report_json = v.get_string("report_json", "");
  r.artifact = v.get_string("artifact", "");
  r.repro_path = v.get_string("repro_path", "");
  r.violations = v.get_u64("violations", 0);
  r.violations_json = v.get_string("violations_json", "");
  r.timeline_path = v.get_string("timeline_path", "");
  r.timeline_jsonl = v.get_string("timeline_jsonl", "");
  r.telemetry_samples = v.get_u64("telemetry_samples", 0);
  r.slo_worst = v.get_double("slo_worst", 0.0);
  r.slo_worst_instance = v.get_string("slo_worst_instance", "");
  r.slo_breaches = v.get_u64("slo_breaches", 0);
  return r;
}

// -- CampaignOptions --------------------------------------------------------

Value options_to_json(const sim::CampaignOptions& opt) {
  Value v = Value::object();
  v.set("seed", Value::number_u64(opt.seed));
  v.set("capture_run_reports", Value(opt.capture_run_reports));
  v.set("max_attempts", Value::number_u64(opt.max_attempts));
  v.set("quarantine_after", Value::number_u64(opt.quarantine_after));
  v.set("repro_dir", Value(opt.repro_dir));
  v.set("run_deadline_sec", Value::number_double(opt.run_deadline_sec));
  v.set("collect_violations", Value(opt.collect_violations));
  v.set("telemetry_interval", Value::number_u64(opt.telemetry_interval));
  v.set("telemetry_max_points",
        Value::number_size(opt.telemetry_max_points));
  v.set("telemetry_window", Value::number_size(opt.telemetry_window));
  v.set("timeline_dir", Value(opt.timeline_dir));
  v.set("capture_timelines", Value(opt.capture_timelines));
  Value slo = Value::object();
  slo.set("metric", Value(opt.slo.metric));
  slo.set("percentile", Value::number_double(opt.slo.percentile));
  slo.set("budget", Value::number_double(opt.slo.budget));
  slo.set("fail_run", Value(opt.slo.fail_run));
  v.set("slo", std::move(slo));
  return v;
}

sim::CampaignOptions options_from_json(const Value& v) {
  sim::CampaignOptions opt;
  opt.seed = v.at("seed").as_u64();
  opt.capture_run_reports = v.at("capture_run_reports").as_bool();
  opt.max_attempts = v.at("max_attempts").as_unsigned();
  opt.quarantine_after = v.at("quarantine_after").as_unsigned();
  opt.repro_dir = v.at("repro_dir").as_string();
  opt.run_deadline_sec = v.at("run_deadline_sec").as_double();
  opt.collect_violations = v.at("collect_violations").as_bool();
  opt.telemetry_interval = v.at("telemetry_interval").as_u64();
  opt.telemetry_max_points = v.at("telemetry_max_points").as_size();
  opt.telemetry_window = v.at("telemetry_window").as_size();
  opt.timeline_dir = v.at("timeline_dir").as_string();
  opt.capture_timelines = v.at("capture_timelines").as_bool();
  const Value& slo = v.at("slo");
  opt.slo.metric = slo.at("metric").as_string();
  opt.slo.percentile = slo.at("percentile").as_double();
  opt.slo.budget = slo.at("budget").as_double();
  opt.slo.fail_run = slo.at("fail_run").as_bool();
  return opt;
}

json::Value make_run_record(const sim::RunResult& result,
                            const sim::Report& report,
                            const metrics::Registry& registry,
                            const metrics::Coverage* coverage,
                            const metrics::TimeSeriesStore& timeline) {
  Value rec = Value::object();
  rec.set("result", run_result_to_json(result));
  rec.set("report", report_to_json(report));
  rec.set("registry", registry_to_json(registry));
  if (coverage != nullptr) rec.set("coverage", coverage_to_json(*coverage));
  if (!timeline.empty()) rec.set("timeline", timeline_to_json(timeline));
  return rec;
}

std::string job_digest(std::size_t configs, std::size_t reps,
                       const sim::CampaignOptions& opt,
                       const std::string& workload,
                       const std::string& params_json) {
  Value v = Value::object();
  v.set("configs", Value::number_size(configs));
  v.set("reps", Value::number_size(reps));
  v.set("options", options_to_json(opt));
  v.set("workload", Value(workload));
  v.set("params", Value(params_json));
  const std::string canon = v.dump();
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a/64
  for (const char c : canon) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

}  // namespace mts::campaignd
