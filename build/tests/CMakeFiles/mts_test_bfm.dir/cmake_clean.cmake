file(REMOVE_RECURSE
  "CMakeFiles/mts_test_bfm.dir/bfm/test_drivers.cpp.o"
  "CMakeFiles/mts_test_bfm.dir/bfm/test_drivers.cpp.o.d"
  "CMakeFiles/mts_test_bfm.dir/bfm/test_scoreboard.cpp.o"
  "CMakeFiles/mts_test_bfm.dir/bfm/test_scoreboard.cpp.o.d"
  "mts_test_bfm"
  "mts_test_bfm.pdb"
  "mts_test_bfm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_test_bfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
