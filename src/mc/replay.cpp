#include "mc/replay.hpp"

#include <memory>
#include <utility>

#include "ctrl/burst_mode.hpp"
#include "ctrl/petri.hpp"
#include "ctrl/specs.hpp"
#include "fifo/detectors.hpp"
#include "gates/celement.hpp"
#include "gates/combinational.hpp"
#include "gates/delay_model.hpp"
#include "gates/netlist.hpp"
#include "sim/simulation.hpp"
#include "sim/watchdog.hpp"
#include "verify/checkers.hpp"
#include "verify/hub.hpp"

namespace mts::mc {

namespace {

/// Uniform controller output delay: C-elements, OPT/OGT and DV all commit
/// this long after their triggering edge, which makes the concrete
/// scheduler's commit order identical to the model's pending-event queue.
constexpr sim::Time kDelay = 100;

/// The concrete ring plus its armed monitors.
struct Harness {
  const RingConfig& cfg;
  sim::Simulation sim{1};
  verify::Hub hub;
  sim::Watchdog wd;
  gates::Netlist nl{sim, "mc"};
  gates::DelayModel dm = gates::DelayModel::hp06();

  sim::Wire& put_req = nl.wire("put_req");
  sim::Wire& get_req = nl.wire("get_req");
  std::vector<sim::Wire*> ptok, we, e, f, gtok, re;
  sim::Wire* put_ack = nullptr;
  sim::Wire* get_ack = nullptr;
  sim::Wire* full_raw = nullptr;
  sim::Wire* ne_raw = nullptr;
  sim::Wire& put_chk = nl.wire("put_chk");
  sim::Wire& get_chk = nl.wire("get_chk");
  sim::Wire& det_chk = nl.wire("det_chk");
  sim::Word& put_data = nl.word("put_data");
  sim::Word& get_data = nl.word("get_data");

  std::unique_ptr<verify::TokenRingMonitor> put_ring, get_ring;
  std::unique_ptr<verify::DetectorMonitor> full_mon, ne_mon;
  std::unique_ptr<verify::HandshakeMonitor> put_hs, get_hs;
  sim::Time settle = 0;

  explicit Harness(const RingConfig& cfg_in) : cfg(cfg_in) {
    hub.set_policy(verify::Policy::kRecord);
    hub.arm(sim);
    const unsigned n = cfg.capacity;
    for (unsigned k = 0; k < n; ++k) {
      const std::string c = "c" + std::to_string(k);
      ptok.push_back(&nl.wire(c + ".ptok", k == 0));
      we.push_back(&nl.wire(c + ".we"));
      e.push_back(&nl.wire(c + ".e", true));
      f.push_back(&nl.wire(c + ".f"));
      gtok.push_back(&nl.wire(c + ".gtok", k == 0));
      re.push_back(&nl.wire(c + ".re"));
    }
    // Construction order per cell mirrors RingModel's listener table: put
    // C-element, OPT, get C-element, OGT, DV. Cell 0's OPT therefore
    // subscribes to we_{N-1} before cell N-1's own components -- the
    // ring-wrap dispatch asymmetry the model reproduces.
    for (unsigned k = 0; k < n; ++k) {
      const unsigned prev = (k + n - 1) % n;
      const std::string c = nl.qualified("c" + std::to_string(k));
      std::vector<sim::Wire*> pplus{ptok[k]};
      if (!cfg.drop_put_guard) pplus.push_back(e[k]);
      nl.add<gates::CElement>(sim, c + ".putc",
                              std::vector<sim::Wire*>{&put_req},
                              std::move(pplus), *we[k], kDelay, false);
      nl.add<ctrl::BurstModeMachine>(
          sim, c + ".opt", cfg.opt, std::vector<sim::Wire*>{we[prev], we[k]},
          std::vector<sim::Wire*>{ptok[k]}, kDelay,
          k == 0 ? ctrl::kOptStateHolding : ctrl::kOptStateIdle);
      std::vector<sim::Wire*> gplus{gtok[k]};
      if (!cfg.drop_get_guard) gplus.push_back(f[k]);
      nl.add<gates::CElement>(sim, c + ".getc",
                              std::vector<sim::Wire*>{&get_req},
                              std::move(gplus), *re[k], kDelay, false);
      nl.add<ctrl::BurstModeMachine>(
          sim, c + ".ogt", cfg.ogt, std::vector<sim::Wire*>{re[prev], re[k]},
          std::vector<sim::Wire*>{gtok[k]}, kDelay,
          k == 0 ? ctrl::kOptStateHolding : ctrl::kOptStateIdle);
      nl.add<ctrl::PetriEngine>(sim, c + ".dv", cfg.dv,
                                std::vector<sim::Wire*>{we[k], re[k]},
                                std::vector<sim::Wire*>{e[k], f[k]}, kDelay);
    }
    put_ack = &gates::make_or_tree(nl, "put_ack", we, dm);
    get_ack = &gates::make_or_tree(nl, "get_ack", re, dm);
    full_raw = &fifo::build_anticipating_full(nl, e, dm, cfg.full_window);
    ne_raw = &fifo::build_anticipating_empty(nl, f, dm, cfg.ne_window);

    const unsigned ref_window = fifo::anticipation_window(cfg.sync_depth);
    settle = fifo::detector_delay(
                 n, std::max(cfg.full_window, cfg.ne_window), dm) +
             50;
    put_ring = std::make_unique<verify::TokenRingMonitor>(
        hub, sim, "mc.put-ring", ptok, put_chk);
    get_ring = std::make_unique<verify::TokenRingMonitor>(
        hub, sim, "mc.get-ring", gtok, get_chk);
    full_mon = std::make_unique<verify::DetectorMonitor>(
        hub, sim, "mc.full-det", verify::Invariant::kFullDetector, e,
        *full_raw, ref_window, det_chk, settle);
    ne_mon = std::make_unique<verify::DetectorMonitor>(
        hub, sim, "mc.ne-det", verify::Invariant::kEmptyDetector, f, *ne_raw,
        ref_window, det_chk, settle);
    put_hs = std::make_unique<verify::HandshakeMonitor>(
        hub, sim, "mc.put-hs", put_req, *put_ack, put_data,
        sim::Time{1'000'000});
    get_hs = std::make_unique<verify::HandshakeMonitor>(
        hub, sim, "mc.get-hs", get_req, *get_ack, get_data,
        sim::Time{1'000'000});

    // Transient multi-token and boundary edge checks: the model flags >= 2
    // tokens and we+/re+ into a busy cell at the offending commit; these
    // listeners report the same invariants at the same instant.
    for (unsigned k = 0; k < n; ++k) {
      ptok[k]->on_rise([this] { count_tokens(true); });
      gtok[k]->on_rise([this] { count_tokens(false); });
      we[k]->on_rise([this, k] {
        if (e[k]->read()) return;
        report(verify::Invariant::kOverflow,
               "mc.c" + std::to_string(k) + ".we", "we+ with e_i low",
               "puts only into empty cells");
      });
      re[k]->on_rise([this, k] {
        if (f[k]->read()) return;
        report(verify::Invariant::kUnderflow,
               "mc.c" + std::to_string(k) + ".re", "re+ with f_i low",
               "gets only from full cells");
      });
    }

    // Deadlock probe: 1 only when BOTH interfaces are blocked mid-handshake
    // -- the state no internal event can ever unblock. One blocked side
    // alone is legal back-pressure (a full ring stalls puts until a get).
    wd.watch("mc.env", [this] {
      const bool put_blocked = put_req.read() != put_ack->read();
      const bool get_blocked = get_req.read() != get_ack->read();
      return (put_blocked && get_blocked) ? std::uint64_t{1} : 0;
    });
    wd.arm(sim);
    sim.run();  // settle initial gate evaluations
  }

  void count_tokens(bool put_side) {
    const std::vector<sim::Wire*>& ring = put_side ? ptok : gtok;
    unsigned count = 0;
    for (const sim::Wire* w : ring) count += w->read() ? 1u : 0u;
    if (count <= 1) return;
    report(verify::Invariant::kTokenRing,
           put_side ? "mc.put-ring" : "mc.get-ring",
           std::to_string(count) + " tokens", "at most 1 circulating token");
  }

  void report(verify::Invariant inv, std::string site, std::string observed,
              std::string expected) {
    verify::Violation v;
    v.time = sim.now();
    v.invariant = inv;
    v.site = std::move(site);
    v.observed = std::move(observed);
    v.expected = std::move(expected);
    hub.report(std::move(v));
  }

  /// Converts engine "bm-illegal-input" / "pn-illegal-input" report entries
  /// into the hub violation the model's kHandshakeOrder finding maps to.
  void lift_illegal_inputs(std::size_t from_entry) {
    const auto& entries = sim.report().entries();
    for (std::size_t i = from_entry; i < entries.size(); ++i) {
      const sim::ReportEntry& entry = entries[i];
      if (entry.category != "bm-illegal-input" &&
          entry.category != "pn-illegal-input") {
        continue;
      }
      const std::size_t colon = entry.message.find(':');
      report(verify::Invariant::kHandshakeOrder,
             colon == std::string::npos ? "mc"
                                        : entry.message.substr(0, colon),
             entry.category, "only specified edges reach the controllers");
    }
  }
};

}  // namespace

ReplayOutcome replay_ring(const RingConfig& cfg,
                          const std::vector<ActionKind>& env_actions) {
  Harness h(cfg);
  ReplayOutcome out;

  std::size_t env_step = 0;
  for (ActionKind a : env_actions) {
    if (a == ActionKind::kCommit) continue;
    ++env_step;
    const std::size_t seen_violations = h.hub.violations().size();
    const std::size_t seen_entries = h.sim.report().entries().size();
    bool deadlocked = false;
    std::string deadlock_what;
    try {
      switch (a) {
        case ActionKind::kPutReqUp: h.put_req.set(true); break;
        case ActionKind::kPutReqDown: h.put_req.set(false); break;
        case ActionKind::kGetReqUp: h.get_req.set(true); break;
        case ActionKind::kGetReqDown: h.get_req.set(false); break;
        case ActionKind::kCommit: break;
      }
      h.sim.run();
    } catch (const sim::DeadlockError& err) {
      deadlocked = true;
      deadlock_what = err.what();
    }
    h.lift_illegal_inputs(seen_entries);
    if (!deadlocked && h.hub.violations().size() == seen_violations) {
      // Quiescent and clean so far: pulse the settled-state monitors. Token
      // one-hot is only demanded of an idle side (mid-handshake the token
      // is legitimately in flight); the detector monitors defer their own
      // settle re-check.
      if (!h.put_req.read() && !h.put_ack->read()) {
        h.put_chk.set(true);
        h.put_chk.set(false);
      }
      if (!h.get_req.read() && !h.get_ack->read()) {
        h.get_chk.set(true);
        h.get_chk.set(false);
      }
      h.det_chk.set(true);
      h.det_chk.set(false);
      h.sim.run_until(h.sim.now() + h.settle + 10);
    }
    if (h.hub.violations().size() > seen_violations) {
      const verify::Violation& v = h.hub.violations()[seen_violations];
      out.violated = true;
      out.invariant = v.invariant;
      out.site = v.site;
      out.detail = v.to_string();
      out.env_step = env_step;
      break;
    }
    if (deadlocked) {
      out.violated = true;
      out.invariant = verify::Invariant::kDeadlock;
      out.site = "mc.env";
      out.detail = deadlock_what;
      out.env_step = env_step;
      break;
    }
  }

  out.put_handshakes = h.put_hs->handshakes();
  out.get_handshakes = h.get_hs->handshakes();
  return out;
}

CrossCheckResult cross_check(const RingConfig& cfg, const Counterexample& cex) {
  CrossCheckResult r;
  if (!cex.replayable) {
    r.message = "counterexample is not replayable (full-pass interleaving)";
    return r;
  }
  const std::optional<verify::Invariant> want = to_invariant(cex.property);
  if (!want) {
    r.message = std::string("property '") + property_name(cex.property) +
                "' has no runtime-monitor analog";
    return r;
  }
  r.outcome = replay_ring(cfg, cex.env_actions);
  if (!r.outcome.violated) {
    r.message = std::string("replay stayed clean; model reported ") +
                property_name(cex.property) + " at env step " +
                std::to_string(cex.env_step);
    return r;
  }
  if (*r.outcome.invariant != *want) {
    r.message = std::string("replay reported ") +
                verify::invariant_name(*r.outcome.invariant) + " @ " +
                r.outcome.site + ", model reported " +
                property_name(cex.property);
    return r;
  }
  if (r.outcome.env_step != cex.env_step) {
    r.message = "replay reported " + std::string(verify::invariant_name(*want)) +
                " at env step " + std::to_string(r.outcome.env_step) +
                ", model at step " + std::to_string(cex.env_step);
    return r;
  }
  r.ok = true;
  return r;
}

}  // namespace mts::mc
