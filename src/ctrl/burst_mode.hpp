// Burst-mode asynchronous machine interpreter.
//
// The paper's ObtainPutToken (OPT) controller is "implemented as a
// Burst-Mode asynchronous machine" synthesized with Minimalist (Fig. 10a).
// We replace the synthesized gate implementation with an interpreter that
// executes a burst-mode specification directly:
//
//   - a machine sits in a state until EVERY edge of one outgoing
//     transition's input burst has occurred (in any order),
//   - it then emits the transition's output burst and moves on.
//
// Fundamental-mode operation is assumed (the environment waits for outputs
// before producing new inputs); an input edge that belongs to no outgoing
// transition of the current state is reported as "bm-illegal-input", which
// turns specification violations into test failures instead of silent
// misbehaviour.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::ctrl {

/// One signal edge inside a burst: signal index (into the machine's input
/// or output list) and direction.
struct BmEdge {
  unsigned signal = 0;
  bool rising = true;
};

struct BmTransition {
  unsigned from = 0;
  std::vector<BmEdge> in_burst;   ///< all must occur to trigger
  std::vector<BmEdge> out_burst;  ///< emitted on firing
  unsigned to = 0;
};

/// A validated burst-mode specification (shared by all machine instances).
struct BmSpec {
  std::string name;
  unsigned num_states = 0;
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<BmTransition> transitions;

  /// Throws ConfigError on malformed specs (bad indices, empty bursts,
  /// non-deterministic bursts from one state sharing a common edge).
  void validate() const;
};

class BurstModeMachine {
 public:
  /// `inputs`/`outputs` map 1:1 to the spec's signal lists and must outlive
  /// the machine. `output_delay` is the input-edge-to-output latency of the
  /// (conceptually) synthesized controller.
  BurstModeMachine(sim::Simulation& sim, std::string instance, const BmSpec& spec,
                   std::vector<sim::Wire*> inputs, std::vector<sim::Wire*> outputs,
                   sim::Time output_delay, unsigned initial_state);

  BurstModeMachine(const BurstModeMachine&) = delete;
  BurstModeMachine& operator=(const BurstModeMachine&) = delete;

  unsigned state() const noexcept { return state_; }
  std::uint64_t firings() const noexcept { return firings_; }

 private:
  void on_input_edge(unsigned signal, bool rising);
  void reset_progress();

  sim::Simulation& sim_;
  std::string instance_;
  const BmSpec& spec_;
  std::vector<sim::Wire*> inputs_;
  std::vector<sim::Wire*> outputs_;
  sim::Time output_delay_;
  unsigned state_;
  /// progress_[t] = bitmask of satisfied edges of transitions leaving state_.
  std::vector<std::uint32_t> progress_;
  std::uint64_t firings_ = 0;
};

}  // namespace mts::ctrl
