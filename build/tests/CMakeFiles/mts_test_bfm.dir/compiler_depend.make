# Empty compiler generated dependencies file for mts_test_bfm.
# This may be replaced when dependencies are built.
