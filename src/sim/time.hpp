// Simulation time: 64-bit unsigned picoseconds.
//
// Picosecond resolution comfortably covers the paper's technology (0.6u HP
// CMOS, gate delays of hundreds of ps) and 64 bits give ~213 days of
// simulated time, far beyond any run in this library.
#pragma once

#include <cstdint>
#include <string>

namespace mts::sim {

/// Absolute simulation time or a duration, in picoseconds.
using Time = std::uint64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1'000;
inline constexpr Time kMicrosecond = 1'000'000;
inline constexpr Time kMillisecond = 1'000'000'000;

namespace time_literals {
constexpr Time operator""_ps(unsigned long long v) { return static_cast<Time>(v); }
constexpr Time operator""_ns(unsigned long long v) { return static_cast<Time>(v) * kNanosecond; }
constexpr Time operator""_us(unsigned long long v) { return static_cast<Time>(v) * kMicrosecond; }
}  // namespace time_literals

/// Converts a duration to fractional nanoseconds (for reporting only).
constexpr double to_ns(Time t) { return static_cast<double>(t) / 1e3; }

/// Converts a clock period to a frequency in MHz (for reporting only).
constexpr double period_to_mhz(Time period_ps) {
  return period_ps == 0 ? 0.0 : 1e6 / static_cast<double>(period_ps);
}

/// Converts a frequency in MHz to a period in ps (rounded down).
constexpr Time mhz_to_period(double mhz) {
  return mhz <= 0.0 ? 0 : static_cast<Time>(1e6 / mhz);
}

/// Renders a time as "123.456 ns" for human-readable logs.
std::string format_time(Time t);

}  // namespace mts::sim
