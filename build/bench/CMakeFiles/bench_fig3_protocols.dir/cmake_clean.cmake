file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_protocols.dir/bench_fig3_protocols.cpp.o"
  "CMakeFiles/bench_fig3_protocols.dir/bench_fig3_protocols.cpp.o.d"
  "bench_fig3_protocols"
  "bench_fig3_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
