// Experiment harness reproducing the paper's evaluation (Section 6).
//
// Throughput of synchronous interfaces: the paper reports "the maximum
// clock frequency with which that interface can be clocked". We compute it
// from the design's critical-path analysis (put_min_period/get_min_period,
// which mirror the constructed netlists) and then *validate* it by
// simulation: a long saturated run at exactly those periods must finish
// with zero setup/hold violations, zero over/underflow and a clean
// scoreboard. validate_at() exposes the same run at arbitrary periods so
// tests can show that faster clocks do fail.
//
// Throughput of asynchronous interfaces: measured directly, as in the
// paper, by saturating the 4-phase handshake and counting operations per
// second (MegaOps/s).
//
// Latency: the paper's setup -- empty FIFO, get side requesting, a single
// put -- swept across the CLK_get phase to produce the Min and Max columns.
#pragma once

#include <cstdint>

#include "fifo/config.hpp"
#include "sim/time.hpp"

namespace mts::metrics {

/// Outcome of a saturated validation run at fixed clock periods.
struct ValidationResult {
  std::uint64_t timing_violations = 0;  ///< setup+hold in checked domains
  std::uint64_t overflows = 0;
  std::uint64_t underflows = 0;
  std::uint64_t scoreboard_errors = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;

  bool clean() const noexcept {
    return timing_violations == 0 && overflows == 0 && underflows == 0 &&
           scoreboard_errors == 0;
  }
};

/// Saturated mixed-clock run (FIFO or MCRS per cfg.controller) at the given
/// periods for `cycles` put-clock cycles.
ValidationResult validate_mixed_clock(const fifo::FifoConfig& cfg,
                                      sim::Time put_period, sim::Time get_period,
                                      unsigned cycles, std::uint64_t seed = 1);

/// Saturated async-sync run (FIFO or ASRS per cfg.controller); the async
/// put side free-runs with `put_gap` idle time between handshakes.
ValidationResult validate_async_sync(const fifo::FifoConfig& cfg,
                                     sim::Time get_period, sim::Time put_gap,
                                     unsigned cycles, std::uint64_t seed = 1);

struct ThroughputRow {
  double put = 0;        ///< MHz (sync) or MegaOps/s (async)
  double get = 0;        ///< MHz
  bool put_async = false;
  bool validated = false;  ///< the saturated run at these rates was clean
};

/// Table 1 throughput entry for the mixed-clock FIFO / MCRS.
ThroughputRow throughput_mixed_clock(const fifo::FifoConfig& cfg,
                                     unsigned cycles = 1500);

/// Table 1 throughput entry for the async-sync FIFO / ASRS: get from the
/// critical path, put measured from a saturated handshake run.
ThroughputRow throughput_async_sync(const fifo::FifoConfig& cfg,
                                    unsigned cycles = 1500);

struct LatencyRow {
  double min_ns = 0;
  double max_ns = 0;
};

/// Table 1 latency entry (empty FIFO, single put, CLK_get phase sweep).
LatencyRow latency_mixed_clock(const fifo::FifoConfig& cfg, unsigned phases = 24);
LatencyRow latency_async_sync(const fifo::FifoConfig& cfg, unsigned phases = 24);

// --- Extension: the remaining two designs of the 2x2 interface matrix ---
// (the paper designed sync-async, deferring it to a technical report, and
// published async-async separately in [4]; these complete the matrix with
// the same methodology).

/// Sync-async: put from the critical path (validated by a saturated run
/// against an eager asynchronous reader); get measured as MegaOps/s.
ThroughputRow throughput_sync_async(const fifo::FifoConfig& cfg,
                                    unsigned cycles = 1500);

/// Async-async: both interfaces measured as MegaOps/s, each saturated
/// against an eager opposite side.
struct AsyncAsyncRow {
  double put_mops = 0;
  double get_mops = 0;
  bool validated = false;
};
AsyncAsyncRow throughput_async_async(const fifo::FifoConfig& cfg,
                                     unsigned handshakes = 400);

/// Latency through an empty FIFO with an asynchronous receiver: the value
/// is deterministic (no receiver clock to sweep), so min == max.
LatencyRow latency_sync_async(const fifo::FifoConfig& cfg);
LatencyRow latency_async_async(const fifo::FifoConfig& cfg);

}  // namespace mts::metrics
