# Empty compiler generated dependencies file for bench_matrix_extension.
# This may be replaced when dependencies are built.
