// Armed-monitor soak: protocol monitors riding fault-injection campaigns
// in record-and-continue mode. Pins the three properties the nightly
// monitor-soak CI job relies on: violations are attributed only to the
// faulted configs, an armed run behaves identically to an unarmed one, and
// same-seed armed runs are deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "bfm/bfm.hpp"
#include "fifo/async_sync_fifo.hpp"
#include "fifo/async_timing.hpp"
#include "fifo/interface_sides.hpp"
#include "sim/campaign.hpp"
#include "sim/fault.hpp"
#include "sync/clock.hpp"
#include "verify/hub.hpp"

#include "../faults/fault_test_util.hpp"

namespace mts::verify {
namespace {

using sim::Time;

/// Async-sync FIFO + drivers built against a caller-owned Simulation (the
/// campaign worker's shard), so monitors attach iff the engine armed a hub.
struct SoakRig {
  fifo::FifoConfig cfg;
  Time gp;
  sync::Clock cg;
  fifo::AsyncSyncFifo dut;
  bfm::Scoreboard sb;
  bfm::AsyncPutDriver put;
  bfm::SyncGetDriver get;
  bfm::GetMonitor gm;

  static fifo::FifoConfig make_cfg() {
    fifo::FifoConfig cfg;
    cfg.capacity = 4;
    cfg.width = 8;
    return cfg;
  }

  explicit SoakRig(sim::Simulation& sim)
      : cfg(make_cfg()),
        gp(2 * fifo::SyncGetSide::min_period(cfg)),
        cg(sim, "cg", {gp, 4 * gp, 0.5, 0}),
        dut(sim, "dut", cfg, cg.out()),
        sb(sim, "sb"),
        put(sim, "put", dut.put_req(), dut.put_ack(), dut.put_data(), cfg.dm,
            gp / 2, 0xFF, &sb),
        get(sim, "get", cg.out(), dut.req_get(), cfg.dm, {1.0, 1}),
        gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb) {}
};

TEST(MonitorSoak, CampaignAttributesViolationsToFaultedConfigsOnly) {
  // Config 0: clean traffic. Config 1: bundling lag past the margin. The
  // engine arms a per-worker record-and-continue hub around every run;
  // violations must land only in config-1 results, and no run may fail
  // (kRecord never throws).
  sim::CampaignOptions opt;
  opt.workers = faulttest::campaign_jobs();
  opt.seed = 0x50AC;
  opt.collect_violations = true;
  sim::Campaign campaign(2, 3, opt);
  campaign.run([](sim::CampaignContext& ctx) {
    // gtest assertions stay on the caller's thread; record and check later.
    ctx.set("hub_armed", ctx.monitors() != nullptr &&
                                 ctx.sim().monitors() == ctx.monitors()
                             ? 1.0
                             : 0.0);
    SoakRig rig(ctx.sim());
    sim::FaultPlan plan(ctx.spec().seed);
    if (ctx.spec().config == 1) {
      plan.inject_bundling(
          "put", sim::BundlingFault{fifo::async_put_data_margin(rig.cfg) +
                                    2 * rig.cfg.dm.gate(1)});
    }
    ctx.sim().arm_faults(&plan);
    ctx.sim().run_until(4 * rig.gp + 150 * rig.gp);
    ctx.sim().arm_faults(nullptr);
    ctx.set("dequeued", static_cast<double>(rig.gm.dequeued()));
  });

  ASSERT_EQ(campaign.failed(), 0u);
  for (const sim::RunResult& r : campaign.results()) {
    const std::size_t config = r.index / 3;
    EXPECT_EQ(r.scalars.at("hub_armed"), 1.0) << "run " << r.index;
    EXPECT_GT(r.scalars.at("dequeued"), 30.0) << "run " << r.index;
    if (config == 0) {
      EXPECT_EQ(r.violations, 0u) << "run " << r.index << ": "
                                  << r.violations_json;
      EXPECT_TRUE(r.violations_json.empty());
    } else {
      EXPECT_GT(r.violations, 0u) << "run " << r.index;
      EXPECT_NE(r.violations_json.find("bundled-data"), std::string::npos)
          << r.violations_json;
    }
  }
}

TEST(MonitorSoak, ArmedRunMatchesUnarmedProtocolOutcome) {
  // Monitors only read wires: the same seed must dequeue the same item
  // count with and without the hub (the golden-waveform suite pins the
  // stronger bit-identical-VCD form of this claim).
  std::uint64_t unarmed = 0, armed = 0;
  {
    sim::Simulation sim(7);
    SoakRig rig(sim);
    sim.run_until(4 * rig.gp + 200 * rig.gp);
    unarmed = rig.gm.dequeued();
    EXPECT_EQ(rig.sb.errors(), 0u);
  }
  {
    sim::Simulation sim(7);
    Hub hub;
    hub.arm(sim);
    SoakRig rig(sim);
    sim.run_until(4 * rig.gp + 200 * rig.gp);
    armed = rig.gm.dequeued();
    EXPECT_EQ(rig.sb.errors(), 0u);
    EXPECT_EQ(hub.total(), 0u) << hub.to_json();
    Hub::disarm(sim);
  }
  EXPECT_GT(unarmed, 50u);
  EXPECT_EQ(armed, unarmed);
}

TEST(MonitorSoak, SameSeedArmedFaultSoaksAreDeterministic) {
  const std::uint64_t seed = faulttest::fault_seed(0x50AD);
  auto run_once = [seed](Hub& hub) {
    sim::Simulation sim(seed);
    hub.arm(sim);
    SoakRig rig(sim);
    sim::FaultPlan plan(seed);
    plan.inject_bundling(
        "put", sim::BundlingFault{fifo::async_put_data_margin(rig.cfg) +
                                  2 * rig.cfg.dm.gate(1)});
    sim.arm_faults(&plan);
    sim.run_until(4 * rig.gp + 200 * rig.gp);
    sim.arm_faults(nullptr);
    Hub::disarm(sim);
  };
  Hub a, b;
  a.set_policy(Policy::kCount);  // soak mode: bounded memory...
  run_once(a);
  run_once(b);  // ...and the default record mode sees the same stream
  EXPECT_GT(a.total(), 0u);
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.count(Invariant::kBundledData), b.count(Invariant::kBundledData));
  EXPECT_TRUE(a.violations().empty());            // kCount keeps no log
  EXPECT_EQ(b.violations().size(),
            std::min<std::size_t>(b.total(), 10'000));  // kRecord logs all
}

}  // namespace
}  // namespace mts::verify
