// Umbrella header for the discrete-event simulation kernel.
#pragma once

#include "sim/callback.hpp"      // IWYU pragma: export
#include "sim/error.hpp"         // IWYU pragma: export
#include "sim/fault.hpp"         // IWYU pragma: export
#include "sim/kernel_stats.hpp"  // IWYU pragma: export
#include "sim/observe.hpp"       // IWYU pragma: export
#include "sim/profiler.hpp"      // IWYU pragma: export
#include "sim/report.hpp"        // IWYU pragma: export
#include "sim/scheduler.hpp"   // IWYU pragma: export
#include "sim/signal.hpp"      // IWYU pragma: export
#include "sim/simulation.hpp"  // IWYU pragma: export
#include "sim/time.hpp"        // IWYU pragma: export
#include "sim/trace.hpp"         // IWYU pragma: export
#include "sim/trace_session.hpp"  // IWYU pragma: export
