#include "sim/campaign.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <fstream>
#include <sstream>
#include <thread>

#include "sim/error.hpp"

namespace mts::sim {

std::uint64_t campaign_run_seed(std::uint64_t campaign_seed,
                                std::uint64_t run_index) noexcept {
  // splitmix64 finalizer over the (seed, index) pair: one step of the
  // Weyl sequence keyed by the campaign seed, then the usual avalanche.
  std::uint64_t z = campaign_seed + 0x9e3779b97f4a7c15ULL * (run_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z == 0 ? 0x9e3779b97f4a7c15ULL : z;
}

/// Worker-lifetime shard: the Simulation whose arenas stay warm across
/// every run this worker executes, plus its metric/report accumulators.
struct Campaign::Worker {
  Simulation sim;
  metrics::Registry registry;
};

struct Campaign::Cursor {
  std::atomic<std::size_t> next{0};
};

Campaign::Campaign(std::size_t configs, std::size_t reps, CampaignOptions opt)
    : configs_(configs), reps_(reps), opt_(opt) {
  unsigned w = opt_.workers;
  if (w == 0) w = std::thread::hardware_concurrency();
  if (w == 0) w = 1;
  const std::size_t n = runs();
  if (n > 0 && n < static_cast<std::size_t>(w)) {
    w = static_cast<unsigned>(n);
  }
  workers_ = w == 0 ? 1 : w;
}

void Campaign::worker_loop(Worker& w, unsigned worker_index,
                           const Body& body) {
  for (;;) {
    const std::size_t i =
        cursor_->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= runs()) return;

    RunSpec spec;
    spec.index = i;
    spec.config = i / reps_;
    spec.rep = i % reps_;
    spec.seed = campaign_run_seed(opt_.seed, i);

    RunResult& r = results_[i];
    r.index = i;
    r.seed = spec.seed;

    w.sim.reset(spec.seed);
    CampaignContext ctx(w.sim, w.registry, spec, worker_index, r);
    try {
      body(ctx);
      r.ok = true;
    } catch (const std::exception& e) {
      r.ok = false;
      r.error = e.what();
    } catch (...) {
      r.ok = false;
      r.error = "unknown exception";
    }

    // Snapshot the run's report with the pool high-water zeroed: arena
    // capacity is a property of the worker (it grows monotonically over
    // the runs the worker happened to execute), so leaving it in would
    // make the per-run snapshots -- and everything reduced from them --
    // depend on run placement.
    KernelStats ks = w.sim.sched().stats();
    ks.pool_high_water = 0;
    w.sim.report().set_kernel(ks);
    if (opt_.capture_run_reports) {
      r.report_json = w.sim.report().to_json();
    }
    run_reports_[i] = w.sim.report();
  }
}

void Campaign::run(const Body& body) {
  if (ran_) throw ConfigError("Campaign::run may only be called once");
  ran_ = true;

  const std::size_t n = runs();
  results_.assign(n, RunResult{});
  run_reports_.assign(n, Report{});
  if (n == 0) return;

  Cursor cursor;
  cursor_ = &cursor;

  // Workers live in a deque: Simulation is non-movable and each shard's
  // address must stay stable for the threads holding references into it.
  std::deque<Worker> shards(workers_);

  const auto t0 = std::chrono::steady_clock::now();
  if (workers_ == 1) {
    worker_loop(shards[0], 0, body);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers_);
    for (unsigned wi = 0; wi < workers_; ++wi) {
      threads.emplace_back(
          [this, &shards, wi, &body] { worker_loop(shards[wi], wi, body); });
    }
    for (std::thread& t : threads) t.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  wall_seconds_ = std::chrono::duration<double>(t1 - t0).count();
  cursor_ = nullptr;

  // Reduce the shards. Registries fold in worker-index order: every
  // registry merge is commutative and associative, so the result is
  // independent of both this order and the run->worker placement. Reports
  // fold from the per-run snapshots in RUN-index order instead -- entry
  // append order and the entry cap would otherwise depend on which worker
  // happened to claim which runs.
  for (const Worker& w : shards) merged_.merge(w.registry);
  for (Report& rr : run_reports_) merged_report_.merge(rr);
  run_reports_.clear();  // per-run JSON (when captured) is in results_
}

std::size_t Campaign::failed() const noexcept {
  std::size_t n = 0;
  for (const RunResult& r : results_) {
    if (!r.ok) ++n;
  }
  return n;
}

std::string Campaign::to_json(bool include_host_stats) const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"campaign\": {\"configs\": " << configs_ << ", \"reps\": " << reps_
     << ", \"runs\": " << runs() << ", \"seed\": " << opt_.seed << "},\n";
  if (include_host_stats) {
    os << "  \"host\": {\"workers\": " << workers_
       << ", \"wall_seconds\": " << wall_seconds_
       << ", \"runs_per_sec\": " << runs_per_sec() << "},\n";
  }
  os << "  \"runs\": [";
  bool first = true;
  for (const RunResult& r : results_) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"index\": " << r.index << ", \"config\": "
       << (reps_ == 0 ? 0 : r.index / reps_) << ", \"rep\": "
       << (reps_ == 0 ? 0 : r.index % reps_) << ", \"seed\": " << r.seed
       << ", \"ok\": " << (r.ok ? "true" : "false");
    if (!r.error.empty()) {
      os << ", \"error\": \"" << json_escape(r.error) << "\"";
    }
    if (!r.scalars.empty()) {
      os << ", \"scalars\": {";
      bool sfirst = true;
      for (const auto& [name, v] : r.scalars) {
        if (!sfirst) os << ", ";
        sfirst = false;
        os << "\"" << json_escape(name) << "\": " << v;
      }
      os << "}";
    }
    if (!r.artifact.empty()) os << ", \"artifact\": " << r.artifact;
    if (!r.report_json.empty()) os << ", \"report\": " << r.report_json;
    os << "}";
  }
  os << (first ? "]" : "\n  ]") << ",\n";
  os << "  \"merged\": {\"failed_runs\": " << failed()
     << ", \"report\": " << merged_report_.to_json()
     << ", \"metrics\": " << merged_.to_json() << "}\n";
  os << "}\n";
  return os.str();
}

bool Campaign::write_json(const std::string& path,
                          bool include_host_stats) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json(include_host_stats);
  return static_cast<bool>(out);
}

}  // namespace mts::sim
