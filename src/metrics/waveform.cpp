#include "metrics/waveform.hpp"

#include "sim/error.hpp"

namespace mts::metrics {

AsciiWave::AsciiWave(sim::Simulation& sim, sim::Time t0, sim::Time step,
                     unsigned samples)
    : sim_(sim), t0_(t0), step_(step), samples_(samples) {
  if (step == 0 || samples == 0) {
    throw ConfigError("AsciiWave: step and samples must be > 0");
  }
}

void AsciiWave::watch(const std::string& label, sim::Wire& w) {
  if (armed_) throw ConfigError("AsciiWave: watch() after arm()");
  wires_.emplace_back(label, &w);
}

void AsciiWave::arm() {
  if (armed_) return;
  armed_ = true;
  for (unsigned i = 0; i < samples_; ++i) {
    sim_.sched().at(t0_ + i * step_, [this] {
      for (auto& [label, wire] : wires_) {
        history_[label].push_back(wire->read());
      }
    });
  }
}

std::string AsciiWave::render() const {
  std::string out;
  for (const auto& [label, wire] : wires_) {
    (void)wire;
    out += label;
    out.append(label.size() < 12 ? 12 - label.size() : 1, ' ');
    auto it = history_.find(label);
    if (it != history_.end()) {
      for (bool b : it->second) out += b ? '#' : '_';
    }
    out += '\n';
  }
  return out;
}

const std::vector<bool>& AsciiWave::history(const std::string& label) const {
  auto it = history_.find(label);
  return it == history_.end() ? empty_ : it->second;
}

}  // namespace mts::metrics
