// Concrete replay of model-checker counterexamples.
//
// replay_ring() builds the REAL netlist the model abstracts -- asymmetric
// gates::CElement write gates, ctrl::BurstModeMachine OPT/OGT controllers,
// ctrl::PetriEngine DV controllers, the fifo:: anticipating detector trees,
// OR-tree acknowledge reduction -- with a uniform controller output delay
// (the timing assumption under which the model's pending-event queue IS the
// scheduler's commit order), arms a verify::Hub with the runtime monitors
// (TokenRingMonitor, DetectorMonitor, HandshakeMonitor, overflow/underflow
// edge checks, a deadlock Watchdog), and drives the counterexample's
// environment actions into it, letting the simulation quiesce after each.
//
// This is the replay contract of ARCHITECTURE.md section 11: a macro-pass
// counterexample for property P must make the concrete run report
// to_invariant(P) at the same environment step -- checked by cross_check(),
// which the mutation test suite runs over every seeded-bug configuration.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mc/checker.hpp"
#include "mc/ring_model.hpp"
#include "verify/violation.hpp"

namespace mts::mc {

/// What a concrete replay observed.
struct ReplayOutcome {
  bool violated = false;
  /// First runtime invariant reported (nullopt while !violated).
  std::optional<verify::Invariant> invariant;
  std::string site;
  std::string detail;
  std::size_t env_step = 0;  ///< 1-based env action on which it surfaced
  std::uint64_t put_handshakes = 0;
  std::uint64_t get_handshakes = 0;
};

/// Builds the concrete ring for `cfg` and replays `env_actions`
/// (kCommit entries are ignored: commits are the simulator's own events).
ReplayOutcome replay_ring(const RingConfig& cfg,
                          const std::vector<ActionKind>& env_actions);

struct CrossCheckResult {
  bool ok = false;
  std::string message;  ///< why not, when !ok
  ReplayOutcome outcome;
};

/// Replays `cex` against `cfg` and verifies the runtime hub reports
/// to_invariant(cex.property) at environment step cex.env_step.
CrossCheckResult cross_check(const RingConfig& cfg, const Counterexample& cex);

}  // namespace mts::mc
