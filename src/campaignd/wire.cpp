#include "campaignd/wire.hpp"

#include <algorithm>

namespace mts::campaignd {

std::string encode_frame(const std::string& payload) {
  if (payload.empty()) throw FramingError("refusing to encode empty frame");
  if (payload.size() > kMaxFramePayload) {
    throw FramingError("payload " + std::to_string(payload.size()) +
                       " bytes exceeds frame cap " +
                       std::to_string(kMaxFramePayload));
  }
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out += static_cast<char>((n >> 24) & 0xFF);
  out += static_cast<char>((n >> 16) & 0xFF);
  out += static_cast<char>((n >> 8) & 0xFF);
  out += static_cast<char>(n & 0xFF);
  out += payload;
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t len,
                        std::vector<std::string>& out) {
  if (failed_) throw FramingError("stream already failed");
  std::size_t pos = 0;
  while (pos < len) {
    if (!in_payload_) {
      while (header_fill_ < 4 && pos < len) {
        header_[header_fill_++] = static_cast<unsigned char>(data[pos++]);
      }
      if (header_fill_ < 4) return;  // header still incomplete
      expect_ = (static_cast<std::uint32_t>(header_[0]) << 24) |
                (static_cast<std::uint32_t>(header_[1]) << 16) |
                (static_cast<std::uint32_t>(header_[2]) << 8) |
                static_cast<std::uint32_t>(header_[3]);
      if (expect_ == 0) {
        failed_ = true;
        throw FramingError("zero-length frame");
      }
      if (expect_ > max_payload_) {
        failed_ = true;
        throw FramingError("frame of " + std::to_string(expect_) +
                           " bytes exceeds cap " +
                           std::to_string(max_payload_));
      }
      in_payload_ = true;
      partial_.clear();
      partial_.reserve(expect_);
    }
    const std::size_t want = expect_ - partial_.size();
    const std::size_t take = std::min(want, len - pos);
    partial_.append(data + pos, take);
    pos += take;
    if (partial_.size() == expect_) {
      out.push_back(std::move(partial_));
      partial_.clear();
      in_payload_ = false;
      expect_ = 0;
      header_fill_ = 0;  // keep pending_bytes() counting the whole frame
    }
  }
}

}  // namespace mts::campaignd
