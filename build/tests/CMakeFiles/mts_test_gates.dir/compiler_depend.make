# Empty compiler generated dependencies file for mts_test_gates.
# This may be replaced when dependencies are built.
