// Edge-triggered storage: ETDFF (the paper's enabled D flip-flop) and a
// word-wide register, both with built-in setup/hold monitors.
//
// Every flop reports setup/hold violations to its TimingDomain; the
// max-frequency search uses those counts as the pass/fail criterion.
// Synchronizer front stages install an AsyncSamplingPolicy instead: a
// violating sample is *resolved* (old or new value, plus a metastability
// settling delay) rather than reported, modelling a synchronizer doing its
// job.
#pragma once

#include <functional>
#include <string>

#include "gates/delay_model.hpp"
#include "gates/netlist.hpp"
#include "gates/timing.hpp"
#include "sim/signal.hpp"

namespace mts::gates {

/// Outcome of sampling an asynchronous input inside the setup/hold window.
struct AsyncSample {
  bool value = false;     ///< resolved logic value
  Time extra_delay = 0;   ///< metastability settling time added to clk->q
};

using AsyncSamplingPolicy =
    std::function<AsyncSample(bool old_value, bool new_value, Time edge_time)>;

/// Enabled, positive-edge-triggered D flip-flop (paper: "ETDFF").
class Etdff {
 public:
  /// `en` may be null (always enabled). `domain` may be null (unchecked).
  Etdff(sim::Simulation& sim, std::string name, sim::Wire& clk, sim::Wire& d,
        sim::Wire* en, sim::Wire& q, const FlopTiming& timing,
        TimingDomain* domain, bool initial = false);

  Etdff(const Etdff&) = delete;
  Etdff& operator=(const Etdff&) = delete;

  /// Marks this flop as sampling an asynchronous input; in-window samples
  /// go through `policy` instead of being reported as violations.
  void set_async_sampling(AsyncSamplingPolicy policy) { policy_ = std::move(policy); }

  const std::string& name() const noexcept { return name_; }

 private:
  void on_clock_edge();
  void on_data_change(bool old_value);

  sim::Simulation& sim_;
  std::string name_;
  sim::Wire& d_;
  sim::Wire* en_;
  sim::Wire& q_;
  FlopTiming timing_;
  TimingDomain* domain_;
  AsyncSamplingPolicy policy_;

  Time d_last_change_ = 0;
  bool d_changed_ = false;
  bool d_old_ = false;
  Time last_edge_ = 0;
  bool edge_seen_ = false;
  bool last_edge_enabled_ = false;
};

/// Word-wide register with write enable: the FIFO cell's REG write port for
/// synchronous put interfaces (data + validity latched on the clock edge).
class WordRegister {
 public:
  WordRegister(sim::Simulation& sim, std::string name, sim::Wire& clk,
               sim::Word& d, sim::Wire* en, sim::Word& q,
               const FlopTiming& timing, TimingDomain* domain,
               std::uint64_t initial = 0);

  WordRegister(const WordRegister&) = delete;
  WordRegister& operator=(const WordRegister&) = delete;

 private:
  void on_clock_edge();

  sim::Simulation& sim_;
  std::string name_;
  sim::Word& d_;
  sim::Wire* en_;
  sim::Word& q_;
  FlopTiming timing_;
  TimingDomain* domain_;

  Time d_last_change_ = 0;
  bool d_changed_ = false;
  Time last_edge_ = 0;
  bool edge_seen_ = false;
  bool last_edge_enabled_ = false;
};

}  // namespace mts::gates
