// Differential oracle for ctrl::analyze().
//
// check_net() explores the reachable marking graph of a 1-safe Petri net
// with the mc machinery (packed markings interned in a StateStore, deque
// frontier) -- a from-scratch implementation sharing no traversal code with
// ctrl/reachability.cpp, which uses std::set over std::uint64_t bitsets.
// Its firing rule intentionally matches analyze(): an enabled transition
// whose firing would double-mark a place records a 1-safety violation and
// contributes no successor, and enabledness (not successor existence)
// decides deadlock-freedom. The differential test suite (tests/mc) runs
// both over random small nets and the shipped DV controllers and requires
// identical one-safety / deadlock verdicts and marking counts.
#pragma once

#include <cstddef>
#include <string>

#include "ctrl/petri.hpp"

namespace mts::mc {

struct NetCheckResult {
  bool one_safe = true;
  bool deadlock_free = true;
  std::size_t reachable_markings = 0;
  std::string violation;  ///< first finding, "" when clean
};

/// Explores `net`'s marking graph up to `max_markings` interned markings;
/// throws mts::ConfigError beyond that, mirroring ctrl::analyze().
NetCheckResult check_net(const ctrl::PetriNet& net,
                         std::size_t max_markings = 1 << 20);

}  // namespace mts::mc
