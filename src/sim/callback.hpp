// Small-buffer-optimized, move-only callables for the kernel hot path.
//
// InplaceFunction<R(Args...), N> stores callables up to N bytes inline; the
// steady-state event loop therefore schedules and runs callbacks without any
// heap traffic. Oversized or potentially-throwing-on-move callables fall back
// to a single heap cell, so the type accepts anything std::function does
// (including std::function itself, for legacy call sites).
//
// Differences from std::function, chosen deliberately for the kernel:
//   - move-only (events are moved through the queue, never copied);
//   - invoking an empty InplaceFunction is undefined (the scheduler never
//     stores empty callbacks; check with operator bool if unsure);
//   - no target()/target_type() RTTI surface.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace mts::sim {

/// 40 inline bytes + the vtable pointer keeps sizeof(InplaceFunction) at 48,
/// so a scheduler Event (time + seq + callback) is exactly one cache line.
/// Still roomy enough for a whole std::function (32 bytes on libstdc++).
inline constexpr std::size_t kCallbackInlineSize = 40;

/// Tag for the argument-dropping constructor: stores a nullary callable in a
/// slot whose call signature takes arguments, invoking it with none. Lets an
/// edge listener (`void()`) live directly in a `(old, new)` listener slot
/// without nesting a second type-erased wrapper.
struct ignore_args_t {
  explicit ignore_args_t() = default;
};
inline constexpr ignore_args_t ignore_args{};

template <typename Signature, std::size_t InlineSize = kCallbackInlineSize>
class InplaceFunction;

template <typename R, typename... Args, std::size_t InlineSize>
class InplaceFunction<R(Args...), InlineSize> {
 public:
  InplaceFunction() noexcept = default;
  InplaceFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(runtime/explicit)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &InlineOps<D, false>::vt;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &HeapOps<D, false>::vt;
    }
  }

  /// Stores nullary `f`; invocations drop the Args values.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<std::is_invocable_r_v<R, D&>>>
  InplaceFunction(ignore_args_t, F&& f) {
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &InlineOps<D, true>::vt;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &HeapOps<D, true>::vt;
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept { move_from(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  void reset() noexcept {
    if (vt_ != nullptr) {
      if (!vt_->trivial) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// Precondition: *this holds a callable.
  R operator()(Args... args) {
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    /// Move-constructs the payload into `dst` from `src` and ends `src`'s
    /// payload lifetime (for heap payloads this just transfers the pointer).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    /// Trivially copyable inline payload: relocation is a fixed-size memcpy
    /// and destruction is a no-op, skipping both indirect calls. This is the
    /// hot case -- model callbacks capture `this` plus a slot index.
    bool trivial;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= InlineSize && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D, bool IgnoreArgs>
  struct InlineOps {
    static D* get(void* b) noexcept {
      return std::launder(reinterpret_cast<D*>(b));
    }
    static R invoke(void* b, Args&&... args) {
      if constexpr (IgnoreArgs) {
        (..., static_cast<void>(args));
        return (*get(b))();
      } else {
        return (*get(b))(std::forward<Args>(args)...);
      }
    }
    static void relocate(void* dst, void* src) noexcept {
      D* s = get(src);
      ::new (dst) D(std::move(*s));
      s->~D();
    }
    static void destroy(void* b) noexcept { get(b)->~D(); }
    static constexpr VTable vt{&invoke, &relocate, &destroy,
                               std::is_trivially_copyable_v<D> &&
                                   std::is_trivially_destructible_v<D>};
  };

  template <typename D, bool IgnoreArgs>
  struct HeapOps {
    static D* get(void* b) noexcept {
      return *std::launder(reinterpret_cast<D**>(b));
    }
    static R invoke(void* b, Args&&... args) {
      if constexpr (IgnoreArgs) {
        (..., static_cast<void>(args));
        return (*get(b))();
      } else {
        return (*get(b))(std::forward<Args>(args)...);
      }
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(get(src));
    }
    static void destroy(void* b) noexcept { delete get(b); }
    static constexpr VTable vt{&invoke, &relocate, &destroy, false};
  };

  void move_from(InplaceFunction& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      if (vt_->trivial) {
        std::memcpy(buf_, other.buf_, InlineSize);
      } else {
        vt_->relocate(buf_, other.buf_);
      }
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[InlineSize];
  const VTable* vt_ = nullptr;
};

}  // namespace mts::sim
