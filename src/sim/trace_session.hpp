// End-to-end transaction tracing.
//
// A TraceSession assigns a monotonically increasing transaction id to every
// item entering a traced component (FIFO cell array, relay station) and
// records timestamped spans as the item moves through the system:
//
//   put_committed     the item was latched into a cell / main register
//   sync_crossed      the item's presence became visible across a timing
//                     boundary (empty detector deasserted after the
//                     synchronizer chain settled)
//   get_observed      the item was driven onto the get-side bus (valid_get)
//   stalled_by_stopIn back-pressure parked the item (relay-station AUX)
//
// Components are *streams* (keyed by instance name) and timing domains are
// *tracks*. Because every FIFO and relay station in this library preserves
// order, a stream's in-flight transactions form a queue: put_committed
// pushes, get_observed pops. link(upstream, downstream) joins two streams so
// an id survives a hop -- the upstream's get_observed hands the id to the
// downstream's next put_committed -- which is how a packet keeps one id from
// an async producer through an ASRS and a whole SRS chain to the sink.
//
// Export is the Chrome trace-event JSON format (write_json / to_json),
// loadable in Perfetto (https://ui.perfetto.dev) and chrome://tracing:
// domains map to named threads ("tracks"), span kinds to instant events on
// their domain's track, and each transaction to one async slice spanning
// first put_committed -> final get_observed. Timestamps are emitted in
// microseconds with 1 ps resolution (the simulator's native unit).
//
// Memory: events are buffered in flat vectors (~32 B each) until export;
// set_max_events caps the buffer for long soaks (drops are counted, id
// accounting continues so latency metrics stay exact).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace mts::sim {

class TraceSession {
 public:
  using TxnId = std::uint64_t;
  using TrackId = std::uint32_t;
  using StreamId = std::uint32_t;

  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  TraceSession() = default;
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Resolves (or creates) the track named `name` -- one per timing domain,
  /// e.g. "clk_put", "clk_display", "async".
  TrackId track(const std::string& name);

  /// Resolves (or creates) the stream for component `instance`. Tracks tell
  /// the exporter where the stream's put- and get-side events belong.
  StreamId stream(const std::string& instance, TrackId put_track,
                  TrackId get_track);

  /// Joins two streams: ids popped by `upstream`'s get_observed are adopted
  /// by `downstream`'s subsequent put_committed calls (FIFO order).
  void link(StreamId upstream, StreamId downstream);

  /// Name-based convenience for chain builders: links the streams of two
  /// already-constructed instances. Throws ConfigError when either instance
  /// never registered a stream (i.e. was built with observability disarmed).
  void link(const std::string& upstream_instance,
            const std::string& downstream_instance);

  /// The item now latched in `s`. Takes the oldest handed-off id when a
  /// linked upstream has produced one, otherwise mints a fresh id. Returns
  /// the id so callers can correlate.
  TxnId put_committed(StreamId s, Time t, std::uint64_t data);

  /// The oldest in-flight item of `s` became visible across the stream's
  /// timing boundary (synchronizer settled, empty deasserted).
  void sync_crossed(StreamId s, Time t);

  /// The oldest in-flight item of `s` left on the get side (valid_get /
  /// out_valid). Returns the id and its put timestamp (forward latency =
  /// t - put_time), or {0, 0} if no item was in flight (protocol error --
  /// also reported by the FIFO's own underflow monitors).
  struct Departure {
    TxnId id = 0;
    Time put_time = 0;
  };
  Departure get_observed(StreamId s, Time t, std::uint64_t data);

  /// Back-pressure stalled the oldest in-flight item of `s`.
  void stalled_by_stop_in(StreamId s, Time t);

  /// Number of transaction ids minted so far.
  TxnId transactions() const noexcept { return next_txn_ - 1; }
  std::uint64_t events_recorded() const noexcept { return events_.size(); }
  std::uint64_t events_dropped() const noexcept { return dropped_; }

  /// Caps the event buffer (default 4M events ~ 128 MB); id accounting
  /// continues past the cap so latency numbers stay exact.
  void set_max_events(std::size_t n) noexcept { max_events_ = n; }

  /// Extra raw trace-event objects appended inside the traceEvents array by
  /// to_json() -- how sim::Telemetry merges its counter tracks into the
  /// same trace file as the transaction spans. The provider returns a
  /// (possibly empty) sequence of ",\n  {...}" fragments; it must stay
  /// valid until the last export or be cleared with nullptr.
  void set_extra_events_provider(std::function<std::string()> fn) {
    extra_events_ = std::move(fn);
  }

  /// Chrome trace-event JSON ({"displayTimeUnit":"ns","traceEvents":[...]}),
  /// loadable in Perfetto / chrome://tracing.
  std::string to_json() const;

  /// Writes to_json() to `path`; throws ConfigError when the file cannot be
  /// opened.
  void write_json(const std::string& path) const;

 private:
  enum class Kind : std::uint8_t {
    kPutCommitted,
    kSyncCrossed,
    kGetObserved,
    kStalled,
    kBegin,  ///< async-slice open (first put_committed of a fresh id)
    kEnd,    ///< async-slice close (get_observed on an unlinked stream tail)
  };

  struct EventRec {
    Time t = 0;
    TxnId txn = 0;
    std::uint64_t data = 0;
    StreamId stream = 0;
    Kind kind = Kind::kPutCommitted;
  };

  struct Stream {
    std::string instance;
    TrackId put_track = 0;
    TrackId get_track = 0;
    StreamId downstream = kNone;         ///< link target, if any
    std::deque<EventRec> in_flight;      ///< t = put time, txn = id
    std::deque<Departure> handoff;       ///< ids awaiting adoption downstream
    bool has_upstream = false;
  };

  void record(Kind kind, StreamId s, Time t, TxnId txn, std::uint64_t data) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(EventRec{t, txn, data, s, kind});
  }

  std::vector<std::string> tracks_;
  std::unordered_map<std::string, TrackId> track_index_;
  std::vector<Stream> streams_;
  std::unordered_map<std::string, StreamId> stream_index_;
  std::vector<EventRec> events_;
  std::function<std::string()> extra_events_;  ///< counter-track provider
  TxnId next_txn_ = 1;
  std::uint64_t dropped_ = 0;
  std::size_t max_events_ = 4'000'000;
};

}  // namespace mts::sim
