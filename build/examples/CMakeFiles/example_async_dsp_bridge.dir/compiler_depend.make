# Empty compiler generated dependencies file for example_async_dsp_bridge.
# This may be replaced when dependencies are built.
