// Reproduces Table 1 (latency section): Min/Max latency through an empty
// FIFO, 8-bit data items, {4, 8, 16}-place, all four designs.
//
// Experimental setup per Section 6: in an empty FIFO the get interface
// requests a data item; after the FIFO is stable the put interface places
// one; latency runs from put-data-valid to the CLK_get edge where the
// receiver retrieves the item. The put instant is swept across one CLK_get
// period, giving the Min and Max columns.
//
// Usage: bench_table1_latency [--csv] [--phases N]
#include <cstdio>
#include <cstring>
#include <string>

#include "fifo/config.hpp"
#include "metrics/experiments.hpp"
#include "metrics/table.hpp"

namespace {

using mts::fifo::ControllerKind;
using mts::fifo::FifoConfig;

struct DesignRow {
  const char* name;
  bool async_put;
  ControllerKind controller;
};

constexpr DesignRow kDesigns[] = {
    {"Mixed-Clock", false, ControllerKind::kFifo},
    {"Async-Sync", true, ControllerKind::kFifo},
    {"Mixed-Clock RS", false, ControllerKind::kRelayStation},
    {"Async-Sync RS", true, ControllerKind::kRelayStation},
};

// Paper Table 1 latency (ns), 8-bit items: {4,8,16}-place Min/Max.
constexpr double kPaperMin[4][3] = {{5.43, 5.79, 6.14},
                                    {5.53, 6.13, 6.47},
                                    {5.48, 6.05, 6.23},
                                    {5.61, 6.18, 6.57}};
constexpr double kPaperMax[4][3] = {{6.34, 6.64, 7.17},
                                    {6.45, 7.17, 7.51},
                                    {6.41, 7.02, 7.28},
                                    {6.35, 7.13, 7.62}};

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  unsigned phases = 24;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--phases") == 0 && i + 1 < argc) {
      phases = static_cast<unsigned>(std::atoi(argv[++i]));
    }
  }

  std::printf("Table 1 (latency, ns): empty FIFO, single put, 8-bit items;\n");
  std::printf("put instant swept across %u CLK_get phases\n\n", phases);

  const unsigned caps[] = {4, 8, 16};
  mts::metrics::Table table({"Version", "places", "Min", "Max", "paper-Min",
                             "paper-Max"});
  for (unsigned d = 0; d < 4; ++d) {
    const DesignRow& design = kDesigns[d];
    for (unsigned c = 0; c < 3; ++c) {
      FifoConfig cfg;
      cfg.capacity = caps[c];
      cfg.width = 8;
      cfg.controller = design.controller;
      const mts::metrics::LatencyRow row =
          design.async_put ? mts::metrics::latency_async_sync(cfg, phases)
                           : mts::metrics::latency_mixed_clock(cfg, phases);
      table.add_row({design.name, std::to_string(caps[c]),
                     mts::metrics::fmt(row.min_ns, 2),
                     mts::metrics::fmt(row.max_ns, 2),
                     mts::metrics::fmt(kPaperMin[d][c], 2),
                     mts::metrics::fmt(kPaperMax[d][c], 2)});
    }
  }
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
  return 0;
}
