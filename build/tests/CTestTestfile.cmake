# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mts_test_sim[1]_include.cmake")
include("/root/repo/build/tests/mts_test_gates[1]_include.cmake")
include("/root/repo/build/tests/mts_test_sync[1]_include.cmake")
include("/root/repo/build/tests/mts_test_ctrl[1]_include.cmake")
include("/root/repo/build/tests/mts_test_fifo[1]_include.cmake")
include("/root/repo/build/tests/mts_test_lip[1]_include.cmake")
include("/root/repo/build/tests/mts_test_bfm[1]_include.cmake")
include("/root/repo/build/tests/mts_test_metrics[1]_include.cmake")
include("/root/repo/build/tests/mts_test_integration[1]_include.cmake")
