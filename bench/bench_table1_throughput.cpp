// Reproduces Table 1 (throughput section): maximum put/get rates for the
// four designs x {4, 8, 16}-place x {8, 16}-bit.
//
// Synchronous interfaces report the maximum clock frequency (MHz) from the
// critical-path analysis, cross-checked by a saturated simulation at
// exactly that frequency (any timing violation, over/underflow or data
// corruption flags the row). Asynchronous put interfaces report measured
// MegaOps/s from a saturated 4-phase handshake, as in the paper.
//
// Usage: bench_table1_throughput [--csv] [--cycles N]
#include <cstdio>
#include <cstring>
#include <string>

#include "fifo/config.hpp"
#include "metrics/experiments.hpp"
#include "metrics/table.hpp"

namespace {

using mts::fifo::ControllerKind;
using mts::fifo::FifoConfig;

struct DesignRow {
  const char* name;
  bool async_put;
  ControllerKind controller;
};

constexpr DesignRow kDesigns[] = {
    {"Mixed-Clock", false, ControllerKind::kFifo},
    {"Async-Sync", true, ControllerKind::kFifo},
    {"Mixed-Clock RS", false, ControllerKind::kRelayStation},
    {"Async-Sync RS", true, ControllerKind::kRelayStation},
};

// Paper values (Table 1) for side-by-side comparison.
struct PaperThroughput {
  double put[6];  // {4,8,16} x {8,16}-bit, put column
  double get[6];
};
constexpr PaperThroughput kPaper[] = {
    {{565, 544, 505, 505, 488, 460}, {549, 523, 484, 492, 471, 439}},
    {{421, 379, 357, 386, 351, 332}, {549, 523, 484, 492, 471, 439}},
    {{580, 550, 509, 521, 498, 467}, {539, 517, 475, 478, 459, 430}},
    {{421, 379, 357, 386, 351, 332}, {539, 517, 475, 478, 459, 430}},
};

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  unsigned cycles = 1000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
      cycles = static_cast<unsigned>(std::atoi(argv[++i]));
    }
  }

  std::printf("Table 1 (throughput): measured vs paper (HSpice, 0.6u HP CMOS)\n");
  std::printf("sync interfaces: max clock MHz (critical path, validated by "
              "saturated simulation)\n");
  std::printf("async put interfaces: measured MegaOps/s (saturated 4-phase "
              "handshake)\n\n");

  const unsigned caps[] = {4, 8, 16};
  const unsigned widths[] = {8, 16};

  mts::metrics::Table table({"Version", "bits", "places", "put", "get",
                             "paper-put", "paper-get", "ok"});
  for (unsigned d = 0; d < 4; ++d) {
    const DesignRow& design = kDesigns[d];
    unsigned col = 0;
    for (unsigned width : widths) {
      for (unsigned cap : caps) {
        FifoConfig cfg;
        cfg.capacity = cap;
        cfg.width = width;
        cfg.controller = design.controller;
        const mts::metrics::ThroughputRow row =
            design.async_put ? mts::metrics::throughput_async_sync(cfg, cycles)
                             : mts::metrics::throughput_mixed_clock(cfg, cycles);
        table.add_row({design.name, std::to_string(width), std::to_string(cap),
                       mts::metrics::fmt(row.put, 0),
                       mts::metrics::fmt(row.get, 0),
                       mts::metrics::fmt(kPaper[d].put[col], 0),
                       mts::metrics::fmt(kPaper[d].get[col], 0),
                       row.validated ? "yes" : "NO"});
        ++col;
      }
    }
  }

  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
  return 0;
}
