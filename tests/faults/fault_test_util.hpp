// Shared helpers for the fault-injection suite: the MTS_FAULT_SEED
// environment override (the nightly CI job derives a fresh seed from the
// date) and the standard reproduction hint printed on failures.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace mts::faulttest {

/// Seed for this run: MTS_FAULT_SEED if set (decimal), else `fallback`.
/// Every fault test draws its randomness from a FaultPlan or Simulation
/// seeded with this value, so one number reproduces a failing run exactly.
inline std::uint64_t fault_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("MTS_FAULT_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<std::uint64_t>(v);
  }
  return fallback;
}

/// One-line reproduction command for GTest failure messages.
inline std::string repro_hint(const std::string& gtest_filter,
                              std::uint64_t seed) {
  return "repro: MTS_FAULT_SEED=" + std::to_string(seed) +
         " ./tests/mts_test_faults --gtest_filter=" + gtest_filter;
}

/// Worker count for sim::Campaign-based suites: MTS_CAMPAIGN_JOBS if set
/// (the determinism suite pins it to compare worker counts), otherwise 4.
inline unsigned campaign_jobs() {
  if (const char* env = std::getenv("MTS_CAMPAIGN_JOBS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v < 256) {
      return static_cast<unsigned>(v);
    }
  }
  return 4;
}

}  // namespace mts::faulttest
