// Tests of the Seizovic-style baseline FIFO and of the comparative claims
// the paper's Related Work makes against it.
#include "fifo/baseline_shift_fifo.hpp"

#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "sync/clock.hpp"

namespace mts::fifo {
namespace {

using sim::Time;

FifoConfig cfg_of(unsigned capacity) {
  FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = 8;
  return cfg;
}

struct Harness {
  sim::Simulation sim{1};
  FifoConfig cfg;
  Time pp;
  Time gp;
  sync::Clock cp;
  sync::Clock cg;
  BaselineShiftFifo dut;
  bfm::Scoreboard sb{sim, "sb"};
  bfm::GetMonitor get_mon;

  explicit Harness(const FifoConfig& c)
      : cfg(c),
        pp(2 * SyncPutSide::min_period(c)),
        gp(2 * SyncGetSide::min_period(c)),
        cp(sim, "cp", {pp, 4 * pp, 0.5, 0}),
        cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0}),
        dut(sim, "dut", c, cp.out(), cg.out()),
        get_mon(sim, cg.out(), dut.valid_get(), dut.data_get(), sb) {}
};

TEST(BaselineShiftFifo, DeliversInAscendingOrder) {
  Harness h(cfg_of(4));
  bfm::SyncPutDriver put(h.sim, "put", h.cp.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm,
                         {1.0, 1}, 0xFFFFFF);
  bfm::SyncGetDriver get(h.sim, "get", h.cg.out(), h.dut.req_get(), h.cfg.dm,
                         {1.0, 1});
  // The baseline has no en_put wire for exact enqueue accounting; since the
  // producer counts up, FIFO order == strictly ascending delivered values.
  std::uint64_t last = 0;
  unsigned received = 0;
  unsigned order_errors = 0;
  sim::on_rise(h.cg.out(), [&] {
    if (!h.dut.valid_get().read()) return;
    const std::uint64_t v = h.dut.data_get().read();
    if (v <= last) ++order_errors;
    last = v;
    ++received;
  });
  h.sim.run_until(4 * h.pp + 400 * h.pp);
  EXPECT_GT(received, 50u);
  EXPECT_EQ(order_errors, 0u);
}

TEST(BaselineShiftFifo, LatencyGrowsLinearlyWithStages) {
  auto latency_of = [](unsigned capacity) {
    FifoConfig cfg = cfg_of(capacity);
    sim::Simulation sim(1);
    const Time pp = 2 * SyncPutSide::min_period(cfg);
    const Time gp = 2 * SyncGetSide::min_period(cfg);
    sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
    sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
    BaselineShiftFifo dut(sim, "dut", cfg, cp.out(), cg.out());
    bfm::Scoreboard sb(sim, "sb");
    bfm::GetMonitor mon(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
    dut.req_get().set(true);

    const Time react = cfg.dm.flop.clk_to_q + 1;
    const Time edge = 4 * pp + 8 * pp;
    const Time t_start = edge + react;
    sim.sched().at(t_start, [&] {
      dut.data_put().set(0x55);
      dut.req_put().set(true);
      sb.push(0x55);
    });
    sim.sched().at(edge + pp + react, [&] { dut.req_put().set(false); });
    sim.run_until(edge + 200 * gp);
    EXPECT_EQ(mon.dequeued(), 1u) << "capacity " << capacity;
    return mon.last_dequeue_time() - t_start;
  };

  const Time l4 = latency_of(4);
  const Time l8 = latency_of(8);
  const Time l16 = latency_of(16);
  // The Related-Work claim: latency proportional to the number of stages.
  EXPECT_GT(l8, l4 + l4 / 2);
  EXPECT_GT(l16, l8 + l8 / 2);
}

TEST(BaselineShiftFifo, FullBlocksWriter) {
  Harness h(cfg_of(4));
  bfm::SyncPutDriver put(h.sim, "put", h.cp.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm,
                         {1.0, 1}, 0xFF);
  // No reader: the pipeline fills and full throttles the writer.
  h.sim.run_until(4 * h.pp + 100 * h.pp);
  EXPECT_EQ(h.dut.occupancy(), 4u);
  EXPECT_TRUE(h.dut.full().read());
}

TEST(BaselineShiftFifo, EmptiesCompletely) {
  Harness h(cfg_of(4));
  bfm::SyncPutDriver put(h.sim, "put", h.cp.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm,
                         {1.0, 1}, 0xFF);
  h.sim.run_until(4 * h.pp + 60 * h.pp);
  put.set_enabled(false);
  bfm::SyncGetDriver get(h.sim, "get", h.cg.out(), h.dut.req_get(), h.cfg.dm,
                         {1.0, 1});
  h.sim.run_until(4 * h.pp + 300 * h.pp);
  EXPECT_EQ(h.dut.occupancy(), 0u);
  EXPECT_TRUE(h.dut.empty().read());
}

}  // namespace
}  // namespace mts::fifo
