#include "fifo/mixed_clock_fifo.hpp"

#include <gtest/gtest.h>

#include "fifo/interface_sides.hpp"

#include "bfm/bfm.hpp"
#include "metrics/experiments.hpp"
#include "sync/clock.hpp"

namespace mts::fifo {
namespace {

using sim::Time;

FifoConfig small_cfg(unsigned capacity = 4, unsigned width = 8) {
  FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = width;
  return cfg;
}

/// Harness with comfortably slow clocks (2x the critical path) so tests
/// exercise protocol logic, not timing margins.
struct Harness {
  sim::Simulation sim{1};
  FifoConfig cfg;
  Time put_p;
  Time get_p;
  sync::Clock clk_put;
  sync::Clock clk_get;
  MixedClockFifo dut;
  bfm::Scoreboard sb{sim, "sb"};
  bfm::PutMonitor put_mon;
  bfm::GetMonitor get_mon;

  explicit Harness(const FifoConfig& c, double get_ratio = 1.0)
      : cfg(c),
        put_p(2 * SyncPutSide::min_period(c)),
        get_p(static_cast<Time>(2 * get_ratio *
                                static_cast<double>(SyncGetSide::min_period(c)))),
        clk_put(sim, "clk_put", {put_p, 4 * put_p, 0.5, 0}),
        clk_get(sim, "clk_get", {get_p, 4 * put_p + get_p / 3, 0.5, 0}),
        dut(sim, "dut", c, clk_put.out(), clk_get.out()),
        put_mon(sim, clk_put.out(), dut.en_put(), dut.req_put(), dut.data_put(),
                sb),
        get_mon(sim, clk_get.out(), dut.valid_get(), dut.data_get(), sb) {}

  /// Runs until time t (absolute).
  void run_to(Time t) { sim.run_until(t); }
  Time start() const { return 4 * put_p; }
};

TEST(MixedClockFifo, ConfigValidation) {
  sim::Simulation sim;
  sync::Clock cp(sim, "cp", {1000, 0, 0.5, 0});
  sync::Clock cg(sim, "cg", {1000, 0, 0.5, 0});
  FifoConfig bad = small_cfg();
  bad.capacity = 1;
  EXPECT_THROW(MixedClockFifo(sim, "f", bad, cp.out(), cg.out()), ConfigError);
  bad = small_cfg();
  bad.width = 0;
  EXPECT_THROW(MixedClockFifo(sim, "f", bad, cp.out(), cg.out()), ConfigError);
  bad.width = 65;
  EXPECT_THROW(MixedClockFifo(sim, "f", bad, cp.out(), cg.out()), ConfigError);
}

TEST(MixedClockFifo, StartsEmpty) {
  Harness h(small_cfg());
  h.run_to(h.start() + 4 * h.put_p);
  EXPECT_EQ(h.dut.occupancy(), 0u);
  EXPECT_TRUE(h.dut.empty().read());
  EXPECT_FALSE(h.dut.full().read());
}

TEST(MixedClockFifo, SinglePutRaisesOccupancy) {
  Harness h(small_cfg());
  const Time react = h.cfg.dm.flop.clk_to_q + 1;
  const Time edge = h.start() + 8 * h.put_p;
  h.sim.sched().at(edge + react, [&] {
    h.dut.data_put().set(0x42);
    h.dut.req_put().set(true);
    h.sb.push(0x42);
  });
  h.sim.sched().at(edge + h.put_p + react, [&] { h.dut.req_put().set(false); });
  h.run_to(edge + 6 * h.put_p);
  EXPECT_EQ(h.dut.occupancy(), 1u);
  EXPECT_TRUE(h.dut.cell_f(0).read());
  EXPECT_EQ(h.put_mon.enqueued(), 1u);
}

TEST(MixedClockFifo, PutThenGetDeliversData) {
  Harness h(small_cfg());
  bfm::SyncGetDriver get_drv(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                             h.cfg.dm, bfm::RateConfig{1.0, 1});
  const Time react = h.cfg.dm.flop.clk_to_q + 1;
  const Time edge = h.start() + 8 * h.put_p;
  h.sim.sched().at(edge + react, [&] {
    h.dut.data_put().set(0x42);
    h.dut.req_put().set(true);
    h.sb.push(0x42);
  });
  h.sim.sched().at(edge + h.put_p + react, [&] { h.dut.req_put().set(false); });

  h.run_to(edge + 20 * h.get_p);
  EXPECT_EQ(h.get_mon.dequeued(), 1u);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.dut.occupancy(), 0u);
  EXPECT_TRUE(h.dut.empty().read());
}

TEST(MixedClockFifo, FillsToApparentCapacityAndAssertsFull) {
  Harness h(small_cfg(4));
  bfm::SyncPutDriver put_drv(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                             h.dut.data_put(), h.dut.full(), h.cfg.dm,
                             bfm::RateConfig{1.0, 1}, 0xFF);
  // No gets: the FIFO fills. The anticipating detector declares full with
  // one empty cell left (Section 3.2); the synchronizer latency lets
  // exactly one more in-flight put land in that reserved cell, so the FIFO
  // tops out at n items with no overwrite.
  h.run_to(h.start() + 30 * h.put_p);
  EXPECT_TRUE(h.dut.full().read());
  EXPECT_EQ(h.dut.occupancy(), 4u);
  EXPECT_EQ(h.put_mon.enqueued(), 4u);
  EXPECT_EQ(h.dut.overflow_count(), 0u);
}

TEST(MixedClockFifo, DrainsAfterFillAndReturnsToEmpty) {
  Harness h(small_cfg(4));
  bfm::SyncPutDriver put_drv(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                             h.dut.data_put(), h.dut.full(), h.cfg.dm,
                             bfm::RateConfig{1.0, 1}, 0xFF);
  h.run_to(h.start() + 30 * h.put_p);
  put_drv.set_enabled(false);
  bfm::SyncGetDriver get_drv(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                             h.cfg.dm, bfm::RateConfig{1.0, 1});
  h.run_to(h.start() + 80 * h.put_p);
  EXPECT_EQ(h.dut.occupancy(), 0u);
  EXPECT_TRUE(h.dut.empty().read());
  EXPECT_EQ(h.get_mon.dequeued(), 4u);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.dut.underflow_count(), 0u);
}

TEST(MixedClockFifo, SaturatedTrafficPreservesOrderAndData) {
  Harness h(small_cfg(8));
  bfm::SyncPutDriver put_drv(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                             h.dut.data_put(), h.dut.full(), h.cfg.dm,
                             bfm::RateConfig{1.0, 1}, 0xFF);
  bfm::SyncGetDriver get_drv(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                             h.cfg.dm, bfm::RateConfig{1.0, 1});
  h.run_to(h.start() + 400 * h.put_p);
  EXPECT_GT(h.get_mon.dequeued(), 100u);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.dut.overflow_count(), 0u);
  EXPECT_EQ(h.dut.underflow_count(), 0u);
}

TEST(MixedClockFifo, FastProducerSlowConsumer) {
  Harness h(small_cfg(4), 3.0);  // get clock 3x slower
  bfm::SyncPutDriver put_drv(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                             h.dut.data_put(), h.dut.full(), h.cfg.dm,
                             bfm::RateConfig{1.0, 1}, 0xFF);
  bfm::SyncGetDriver get_drv(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                             h.cfg.dm, bfm::RateConfig{1.0, 1});
  h.run_to(h.start() + 600 * h.put_p);
  EXPECT_GT(h.get_mon.dequeued(), 50u);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.dut.overflow_count(), 0u);
  EXPECT_EQ(h.dut.underflow_count(), 0u);
}

TEST(MixedClockFifo, SlowProducerFastConsumer) {
  // get clock at 1.2x its minimum period: still much faster than the put
  // clock (which runs at 2x its own minimum).
  Harness h(small_cfg(4), 0.6);
  bfm::SyncPutDriver put_drv(h.sim, "put", h.clk_put.out(), h.dut.req_put(),
                             h.dut.data_put(), h.dut.full(), h.cfg.dm,
                             bfm::RateConfig{0.5, 1}, 0xFF);
  bfm::SyncGetDriver get_drv(h.sim, "get", h.clk_get.out(), h.dut.req_get(),
                             h.cfg.dm, bfm::RateConfig{1.0, 1});
  h.run_to(h.start() + 600 * h.put_p);
  EXPECT_GT(h.get_mon.dequeued(), 50u);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.dut.underflow_count(), 0u);
}

TEST(MixedClockFifo, NoDeadlockWithSingleResidentItem) {
  // The bi-modal detector's reason for existing (Section 3.2): put ONE item
  // with no get request pending, then request -- the oe path must unblock
  // the receiver.
  Harness h(small_cfg(4));
  const Time react = h.cfg.dm.flop.clk_to_q + 1;
  const Time edge = h.start() + 8 * h.put_p;
  h.sim.sched().at(edge + react, [&] {
    h.dut.data_put().set(0x17);
    h.dut.req_put().set(true);
    h.sb.push(0x17);
  });
  h.sim.sched().at(edge + h.put_p + react, [&] { h.dut.req_put().set(false); });

  // Only now does the receiver start requesting.
  h.sim.sched().at(edge + 10 * h.get_p, [&] { h.dut.req_get().set(true); });

  h.run_to(edge + 40 * h.get_p);
  EXPECT_EQ(h.get_mon.dequeued(), 1u) << "bi-modal detector failed to release "
                                         "the last item (deadlock)";
  EXPECT_EQ(h.sb.errors(), 0u);
}

TEST(MixedClockFifo, StaticTimingOrdering) {
  // Structural facts Table 1 reflects: get slower than put; capacity and
  // width both slow the interfaces down.
  const FifoConfig c48 = small_cfg(4, 8);
  EXPECT_LT(SyncPutSide::min_period(c48), SyncGetSide::min_period(c48));
  EXPECT_LT(SyncPutSide::min_period(small_cfg(4, 8)),
            SyncPutSide::min_period(small_cfg(16, 8)));
  EXPECT_LT(SyncPutSide::min_period(small_cfg(4, 8)),
            SyncPutSide::min_period(small_cfg(4, 16)));
  EXPECT_LT(SyncGetSide::min_period(small_cfg(4, 8)),
            SyncGetSide::min_period(small_cfg(16, 8)));
}

}  // namespace
}  // namespace mts::fifo
