// Quickstart: build a mixed-clock FIFO between two clock domains, push a
// few words from the fast side, pop them on the slow side, and print what
// happened.
//
//   $ ./example_quickstart
//
// Walks through the core concepts: Simulation, Clocks, the FIFO itself,
// and the scoreboard/monitor helpers used to observe traffic.
#include <cstdio>

#include "bfm/bfm.hpp"
#include "fifo/fifo.hpp"
#include "sync/clock.hpp"

int main() {
  using namespace mts;
  using sim::Time;

  // One Simulation owns the event queue, diagnostics and random source.
  sim::Simulation sim(/*seed=*/42);

  // Configure an 8-place, 8-bit mixed-clock FIFO with the calibrated 0.6u
  // delay model and the paper's two-flop synchronizers.
  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 8;

  // Each interface gets its own clock. Run both at a comfortable 25% margin
  // over the design's critical path; the periods need not be related.
  const Time put_period = fifo::SyncPutSide::min_period(cfg) * 5 / 4;
  const Time get_period = fifo::SyncGetSide::min_period(cfg) * 7 / 4;
  sync::Clock clk_put(sim, "clk_put", {put_period, 4 * put_period, 0.5, 0});
  sync::Clock clk_get(sim, "clk_get",
                      {get_period, 4 * put_period + 333, 0.5, 0});

  fifo::MixedClockFifo fifo(sim, "fifo", cfg, clk_put.out(), clk_get.out());

  // A producer that offers a word on 60% of put cycles, a consumer that
  // requests every get cycle, and a scoreboard checking FIFO order.
  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor put_mon(sim, clk_put.out(), fifo.en_put(), fifo.req_put(),
                          fifo.data_put(), sb);
  bfm::GetMonitor get_mon(sim, clk_get.out(), fifo.valid_get(),
                          fifo.data_get(), sb);
  bfm::SyncPutDriver producer(sim, "producer", clk_put.out(), fifo.req_put(),
                              fifo.data_put(), fifo.full(), cfg.dm,
                              {0.6, 100}, 0xFF);
  bfm::SyncGetDriver consumer(sim, "consumer", clk_get.out(), fifo.req_get(),
                              cfg.dm, {1.0, 0});

  // Simulate 200 producer cycles.
  sim.run_until(4 * put_period + 200 * put_period);

  std::printf("mixed-clock FIFO quickstart\n");
  std::printf("  put clock period : %llu ps (%.0f MHz)\n",
              static_cast<unsigned long long>(put_period),
              sim::period_to_mhz(put_period));
  std::printf("  get clock period : %llu ps (%.0f MHz)\n",
              static_cast<unsigned long long>(get_period),
              sim::period_to_mhz(get_period));
  std::printf("  words enqueued   : %llu\n",
              static_cast<unsigned long long>(put_mon.enqueued()));
  std::printf("  words dequeued   : %llu\n",
              static_cast<unsigned long long>(get_mon.dequeued()));
  std::printf("  still resident   : %u\n", fifo.occupancy());
  std::printf("  order violations : %llu\n",
              static_cast<unsigned long long>(sb.errors()));
  std::printf("  overflow/underflow: %llu/%llu\n",
              static_cast<unsigned long long>(fifo.overflow_count()),
              static_cast<unsigned long long>(fifo.underflow_count()));
  return sb.errors() == 0 ? 0 : 1;
}
