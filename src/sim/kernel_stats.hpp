// Kernel health counters, cheap enough to maintain unconditionally.
//
// Scheduler::stats() returns a snapshot; Simulation refreshes the copy held
// by sim::Report after every run()/run_until() so harnesses and reports can
// surface kernel behaviour without external profilers.
//
// When a KernelProfiler is armed (see sim/profiler.hpp) the snapshot also
// carries `hot_sites`: per-listener-site wall-time and event-count
// attribution, sorted hottest first -- the "where does simulation time go"
// table every perf PR cites. With no profiler armed the vector is empty and
// the kernel pays a single branch per event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mts::sim {

/// One row of the profiler's hottest-callbacks table.
struct KernelSiteStat {
  std::string label;            ///< registration label or file:line
  std::uint64_t events = 0;     ///< events attributed to this site
  std::uint64_t wall_ns = 0;    ///< host wall time spent in those events
};

struct KernelStats {
  /// Total events executed since construction.
  std::uint64_t events_executed = 0;
  /// Maximum number of simultaneously pending events (delta ring + heap).
  std::size_t peak_queue_depth = 0;
  /// Event slots ever allocated (ring capacity + heap capacity): the pool
  /// high-water mark. Constant once the workload reaches steady state.
  std::size_t pool_high_water = 0;
  /// Hottest callback sites (profiler armed only), sorted by wall time
  /// descending; at most KernelProfiler::kTopN rows.
  std::vector<KernelSiteStat> hot_sites;
};

/// Fixed-width text rendering of `hot_sites` ("top-N hottest callbacks");
/// empty string when no profile data is present.
std::string format_hot_sites(const KernelStats& stats);

}  // namespace mts::sim
