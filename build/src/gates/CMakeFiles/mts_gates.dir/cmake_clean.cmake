file(REMOVE_RECURSE
  "CMakeFiles/mts_gates.dir/celement.cpp.o"
  "CMakeFiles/mts_gates.dir/celement.cpp.o.d"
  "CMakeFiles/mts_gates.dir/combinational.cpp.o"
  "CMakeFiles/mts_gates.dir/combinational.cpp.o.d"
  "CMakeFiles/mts_gates.dir/delay_model.cpp.o"
  "CMakeFiles/mts_gates.dir/delay_model.cpp.o.d"
  "CMakeFiles/mts_gates.dir/flops.cpp.o"
  "CMakeFiles/mts_gates.dir/flops.cpp.o.d"
  "CMakeFiles/mts_gates.dir/latch.cpp.o"
  "CMakeFiles/mts_gates.dir/latch.cpp.o.d"
  "libmts_gates.a"
  "libmts_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
