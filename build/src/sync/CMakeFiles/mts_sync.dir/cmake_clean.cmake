file(REMOVE_RECURSE
  "CMakeFiles/mts_sync.dir/clock.cpp.o"
  "CMakeFiles/mts_sync.dir/clock.cpp.o.d"
  "CMakeFiles/mts_sync.dir/mtbf.cpp.o"
  "CMakeFiles/mts_sync.dir/mtbf.cpp.o.d"
  "CMakeFiles/mts_sync.dir/synchronizer.cpp.o"
  "CMakeFiles/mts_sync.dir/synchronizer.cpp.o.d"
  "libmts_sync.a"
  "libmts_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
