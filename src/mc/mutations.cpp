#include "mc/mutations.hpp"

#include <algorithm>
#include <utility>

#include "sim/error.hpp"

namespace mts::mc {

namespace {

Mutant base(unsigned capacity, std::string name, std::string description,
            Property expected) {
  Mutant m;
  m.config = default_ring(capacity);
  m.config.name = name;
  m.name = std::move(name);
  m.description = std::move(description);
  m.expected = expected;
  return m;
}

std::size_t dv_transition(const ctrl::PetriNet& net, const std::string& label) {
  for (std::size_t i = 0; i < net.transitions.size(); ++i) {
    if (net.transitions[i].label == label) return i;
  }
  MTS_ASSERT(false, "mutant: DV transition label not found");
  return 0;
}

}  // namespace

std::vector<Mutant> make_mutants(unsigned capacity) {
  std::vector<Mutant> out;

  // OPT transitions (Fig. 10a): [0] we1+ (enter), [1] we1- / ptok+ (grant),
  // [2] we+ / ptok- (release), [3] we- (reset).
  {
    Mutant m = base(capacity, "opt-dropped-arc",
                    "OPT grant transition loses its ptok+ output burst: the "
                    "token is released but never re-granted, so the put ring "
                    "drains to zero tokens",
                    Property::kTokenRing);
    m.config.opt.transitions[1].out_burst.clear();
    out.push_back(std::move(m));
  }
  {
    Mutant m = base(capacity, "opt-swapped-burst",
                    "OPT grant and release output bursts are swapped: the "
                    "token never moves, and the machine sees its own we+ in "
                    "the idle state on the next put to the cell",
                    Property::kHandshakeOrder);
    std::swap(m.config.opt.transitions[1].out_burst,
              m.config.opt.transitions[2].out_burst);
    out.push_back(std::move(m));
  }
  {
    Mutant m = base(capacity, "opt-moved-burst",
                    "OPT releases its token on we- instead of we+: at the "
                    "ring wrap the successor's grant commits before the "
                    "release, putting two tokens in flight",
                    Property::kTokenRing);
    m.config.opt.transitions[3].out_burst =
        std::move(m.config.opt.transitions[2].out_burst);
    m.config.opt.transitions[2].out_burst.clear();
    out.push_back(std::move(m));
  }
  {
    Mutant m = base(capacity, "dv-dropped-arc",
                    "DV net loses its f_i+ transition: cells fill but never "
                    "announce data, so gets starve, puts exhaust the ring, "
                    "and both interfaces block",
                    Property::kDeadlock);
    ctrl::PetriNet& dv = m.config.dv;
    dv.transitions.erase(
        dv.transitions.begin() +
        static_cast<std::ptrdiff_t>(dv_transition(dv, "f_i+")));
    out.push_back(std::move(m));
  }
  {
    Mutant m = base(capacity, "full-window-off-by-one",
                    "full detector built with window 3 instead of 2: it "
                    "stays asserted with two adjacent empty cells, where the "
                    "anticipating invariant requires deassertion",
                    Property::kFullDetector);
    m.config.full_window = 3;
    out.push_back(std::move(m));
  }
  {
    Mutant m = base(capacity, "ne-window-off-by-one",
                    "ne detector built with window 3 instead of 2: it stays "
                    "asserted with two adjacent full cells, where the "
                    "anticipating invariant requires deassertion",
                    Property::kEmptyDetector);
    m.config.ne_window = 3;
    out.push_back(std::move(m));
  }
  {
    Mutant m = base(capacity, "celem-dropped-put-guard",
                    "put C-element loses its e_i plus input: we+ fires into "
                    "a still-full cell once the ring wraps",
                    Property::kOverflow);
    m.config.drop_put_guard = true;
    out.push_back(std::move(m));
  }
  {
    Mutant m = base(capacity, "celem-dropped-get-guard",
                    "get C-element loses its f_i plus input: re+ fires on "
                    "the first get from an empty FIFO",
                    Property::kUnderflow);
    m.config.drop_get_guard = true;
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace mts::mc
