#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mts::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, SameTimestampRunsInSchedulingOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    s.at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, EventsScheduledDuringExecutionRun) {
  Scheduler s;
  int hits = 0;
  s.at(10, [&] {
    ++hits;
    s.after(5, [&] { ++hits; });
  });
  s.run();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(s.now(), 15u);
}

TEST(Scheduler, ZeroDelayEventRunsAtSameTimeAfterCurrent) {
  Scheduler s;
  std::vector<int> order;
  s.at(10, [&] {
    s.after(0, [&] { order.push_back(2); });
    order.push_back(1);
  });
  s.at(10, [&] { order.push_back(3); });
  s.run();
  // The zero-delay event was scheduled after both time-10 events existed,
  // so it runs last within t=10.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Scheduler, RejectsPastEvents) {
  Scheduler s;
  s.at(10, [] {});
  s.run();
  EXPECT_THROW(s.at(5, [] {}), AssertionError);
}

TEST(Scheduler, RunUntilAdvancesTimeEvenWhenIdle) {
  Scheduler s;
  s.run_until(1000);
  EXPECT_EQ(s.now(), 1000u);
}

TEST(Scheduler, RunUntilDoesNotExecuteLaterEvents) {
  Scheduler s;
  int hits = 0;
  s.at(50, [&] { ++hits; });
  s.at(150, [&] { ++hits; });
  s.run_until(100);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(s.now(), 100u);
  s.run_until(200);
  EXPECT_EQ(hits, 2);
}

TEST(Scheduler, RunUntilInclusiveOfBoundary) {
  Scheduler s;
  int hits = 0;
  s.at(100, [&] { ++hits; });
  s.run_until(100);
  EXPECT_EQ(hits, 1);
}

TEST(Scheduler, OscillationGuardThrows) {
  Scheduler s;
  s.set_timestamp_budget(100);
  std::function<void()> loop = [&] { s.after(0, loop); };
  s.at(10, loop);
  EXPECT_THROW(s.run(), SimulationError);
}

TEST(Scheduler, RunBudgetStopsExecution) {
  Scheduler s;
  int hits = 0;
  std::function<void()> loop = [&] {
    ++hits;
    s.after(1, loop);
  };
  s.at(0, loop);
  EXPECT_EQ(s.run(100), 100u);
  EXPECT_EQ(hits, 100);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.at(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, PendingCountsQueuedEvents) {
  Scheduler s;
  s.at(1, [] {});
  s.at(2, [] {});
  EXPECT_EQ(s.pending(), 2u);
}

}  // namespace
}  // namespace mts::sim
