file(REMOVE_RECURSE
  "CMakeFiles/bench_sync_depth.dir/bench_sync_depth.cpp.o"
  "CMakeFiles/bench_sync_depth.dir/bench_sync_depth.cpp.o.d"
  "bench_sync_depth"
  "bench_sync_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sync_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
