// Umbrella header for clocking and synchronization.
#pragma once

#include "sync/clock.hpp"         // IWYU pragma: export
#include "sync/mtbf.hpp"          // IWYU pragma: export
#include "sync/synchronizer.hpp"  // IWYU pragma: export
