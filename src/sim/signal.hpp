// Signals: named, typed state carriers with delayed assignment.
//
// A Signal<T> holds a current value and notifies listeners when it changes.
// Writes are scheduled through the simulation's event queue:
//
//   - DelayKind::kTransport models an ideal delay line: every scheduled
//     write eventually commits, in order. Testbench stimulus uses this.
//   - DelayKind::kInertial models a gate output: scheduling a new write
//     cancels all still-pending writes, so pulses shorter than the gate
//     delay are filtered out, as in VHDL's preemptive inertial model.
//     All gate primitives use this.
//
// Listener callbacks run at commit time in registration order and receive
// (old, new). Listeners registered during a notification do not observe the
// change that was being delivered. Listeners live as long as the signal.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/error.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace mts::sim {

enum class DelayKind { kTransport, kInertial };

template <typename T>
class Signal {
 public:
  using Listener = std::function<void(const T& old_value, const T& new_value)>;

  Signal(Simulation& sim, std::string name, T initial = T{})
      : sim_(sim), name_(std::move(name)), value_(std::move(initial)) {}

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  const std::string& name() const noexcept { return name_; }
  Simulation& simulation() const noexcept { return sim_; }

  const T& read() const noexcept { return value_; }

  /// Immediate assignment (no event): used for initialization and by
  /// testbenches acting "right now". Notifies listeners on change.
  void set(const T& v) {
    if (v == value_) return;
    T old = std::exchange(value_, v);
    notify(old);
  }

  /// Schedules `v` to commit at now() + delay.
  void write(const T& v, Time delay, DelayKind kind = DelayKind::kTransport) {
    if (kind == DelayKind::kInertial) {
      for (auto& txn : pending_) txn->cancelled = true;
      pending_.clear();
      // Gate-output shortcut: if the surviving pending set is empty and the
      // scheduled value equals the current one, the commit would be a no-op
      // but must still run -- a later inertial write may land in between.
    }
    auto txn = std::make_shared<Txn>(Txn{v, false});
    pending_.push_back(txn);
    sim_.sched().after(delay, [this, txn] { commit(txn); });
  }

  /// Registers a change listener; it lives as long as the signal.
  void on_change(Listener fn) { listeners_.push_back(std::move(fn)); }

  std::size_t pending_writes() const noexcept { return pending_.size(); }

 private:
  struct Txn {
    T value;
    bool cancelled = false;
  };

  void commit(const std::shared_ptr<Txn>& txn) {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i] == txn) {
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    if (txn->cancelled) return;
    set(txn->value);
  }

  void notify(const T& old) {
    const std::size_t n = listeners_.size();
    for (std::size_t i = 0; i < n; ++i) {
      listeners_[i](old, value_);
    }
  }

  Simulation& sim_;
  std::string name_;
  T value_;
  std::vector<Listener> listeners_;
  std::vector<std::shared_ptr<Txn>> pending_;
};

/// A single-bit control or data wire.
using Wire = Signal<bool>;
/// A word-level data bus (the datapath is modelled at word granularity).
using Word = Signal<std::uint64_t>;

/// Invokes `fn` on every rising edge of `w`.
inline void on_rise(Wire& w, std::function<void()> fn) {
  w.on_change([fn = std::move(fn)](bool old, bool now) {
    if (!old && now) fn();
  });
}

/// Invokes `fn` on every falling edge of `w`.
inline void on_fall(Wire& w, std::function<void()> fn) {
  w.on_change([fn = std::move(fn)](bool old, bool now) {
    if (old && !now) fn();
  });
}

}  // namespace mts::sim
