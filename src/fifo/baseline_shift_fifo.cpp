#include "fifo/baseline_shift_fifo.hpp"

namespace mts::fifo {

BaselineShiftFifo::BaselineShiftFifo(sim::Simulation& sim,
                                     const std::string& name,
                                     const FifoConfig& cfg, sim::Wire& clk_put,
                                     sim::Wire& clk_get)
    : sim_(sim), cfg_(cfg), nl_(sim, name) {
  cfg_.validate();
  stages_.resize(cfg_.capacity);

  req_put_ = &nl_.wire("req_put");
  data_put_ = &nl_.word("data_put");
  full_ = &nl_.wire("full");
  req_get_ = &nl_.wire("req_get");
  data_get_ = &nl_.word("data_get");
  valid_get_ = &nl_.wire("valid_get");
  empty_ = &nl_.wire("empty", true);

  clk_put.on_rise([this] { on_put_edge(); });
  clk_get.on_rise([this] { on_get_edge(); });
}

void BaselineShiftFifo::on_put_edge() {
  const sim::Time q = cfg_.dm.flop.clk_to_q;

  // The writer sees the entry stage's occupancy through a two-flop
  // synchronizer: shift the delayed view.
  const bool entry_busy_now = stages_.front().valid;
  const bool full_seen = (full_sync_pipe_ & 0b10u) != 0;
  full_sync_pipe_ = static_cast<unsigned>(((full_sync_pipe_ << 1) |
                                           (entry_busy_now ? 1u : 0u)) & 0b11u);
  full_->write(full_seen, q, sim::DelayKind::kInertial);

  if (req_put_->read() && !full_seen && !stages_.front().valid) {
    stages_.front().valid = true;
    stages_.front().data = data_put_->read();
    stages_.front().age = 0;
    ++data_moves_;
  }
}

void BaselineShiftFifo::on_get_edge() {
  const sim::Time q = cfg_.dm.flop.clk_to_q;
  const std::size_t n = stages_.size();

  // Delivery from the last stage: only an item that has settled through
  // this stage's synchronizer may be read.
  Stage& last = stages_[n - 1];
  const bool deliver = req_get_->read() && last.valid && last.age >= kSyncCycles;
  if (deliver) {
    data_get_->write(last.data, q, sim::DelayKind::kInertial);
    last.valid = false;
  }
  valid_get_->write(deliver, q, sim::DelayKind::kInertial);

  // Pipelined shift toward the output, back to front; each hop requires a
  // fully settled item and an empty successor.
  for (std::size_t i = n - 1; i-- > 0;) {
    if (stages_[i].valid && stages_[i].age >= kSyncCycles &&
        !stages_[i + 1].valid) {
      stages_[i + 1] = Stage{true, stages_[i].data, 0};
      stages_[i].valid = false;
      ++data_moves_;
    }
  }
  for (Stage& s : stages_) {
    if (s.valid && s.age < kSyncCycles) ++s.age;
  }

  bool any = false;
  for (const Stage& s : stages_) any = any || s.valid;
  empty_->write(!any, q, sim::DelayKind::kInertial);
}

unsigned BaselineShiftFifo::occupancy() const {
  unsigned count = 0;
  for (const Stage& s : stages_) count += s.valid ? 1u : 0u;
  return count;
}

}  // namespace mts::fifo
