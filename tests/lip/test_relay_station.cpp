#include "lip/relay_station.hpp"

#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "gates/netlist.hpp"
#include "sync/clock.hpp"

namespace mts::lip {
namespace {

using sim::Time;

struct Fixture {
  sim::Simulation sim{1};
  gates::DelayModel dm = gates::DelayModel::hp06();
  Time period = 2000;
  sync::Clock clk{sim, "clk", {period, period, 0.5, 0}};
  gates::Netlist nl{sim, "t"};
  sim::Word& in_data = nl.word("in_data");
  sim::Wire& in_valid = nl.wire("in_valid");
  sim::Wire& stop_out = nl.wire("stop_out");
  sim::Word& out_data = nl.word("out_data");
  sim::Wire& out_valid = nl.wire("out_valid");
  sim::Wire& stop_in = nl.wire("stop_in");
  RelayStation rs{sim,     "rs",      clk.out(), in_data, in_valid,
                  stop_out, out_data, out_valid, stop_in, dm};
  bfm::Scoreboard sb{sim, "sb"};
};

TEST(RelayStationTest, ForwardsWithOneCycleLatency) {
  Fixture f;
  bfm::RsSource src(f.sim, "src", f.clk.out(), f.in_data, f.in_valid,
                    f.stop_out, f.dm, 1.0, 0xFF, f.sb);
  bfm::RsSink sink(f.sim, "sink", f.clk.out(), f.out_data, f.out_valid,
                   f.stop_in, f.dm, 0.0, f.sb);
  f.sim.run_until(40 * f.period);
  EXPECT_GT(sink.received_valid(), 30u);
  EXPECT_EQ(f.sb.errors(), 0u);
  // Steady state: one packet per cycle (no throughput loss through an RS).
  const auto before = sink.received_valid();
  f.sim.run_until(60 * f.period);
  EXPECT_EQ(sink.received_valid() - before, 20u);
}

TEST(RelayStationTest, VoidPacketsFlowThrough) {
  Fixture f;
  bfm::RsSource src(f.sim, "src", f.clk.out(), f.in_data, f.in_valid,
                    f.stop_out, f.dm, 0.4, 0xFF, f.sb);
  bfm::RsSink sink(f.sim, "sink", f.clk.out(), f.out_data, f.out_valid,
                   f.stop_in, f.dm, 0.0, f.sb);
  f.sim.run_until(200 * f.period);
  EXPECT_GT(sink.received_valid(), 40u);
  EXPECT_EQ(f.sb.errors(), 0u);
}

TEST(RelayStationTest, StallParksPacketInAuxAndRaisesStopOut) {
  Fixture f;
  bfm::RsSource src(f.sim, "src", f.clk.out(), f.in_data, f.in_valid,
                    f.stop_out, f.dm, 1.0, 0xFF, f.sb);
  // Manual sink: consume nothing, stall from cycle 10 to 20.
  f.sim.sched().at(10 * f.period + 100, [&] { f.stop_in.set(true); });
  f.sim.run_until(15 * f.period);
  EXPECT_TRUE(f.rs.stalled());
  EXPECT_TRUE(f.stop_out.read());
  f.sim.sched().at(20 * f.period + 100, [&] { f.stop_in.set(false); });
  f.sim.run_until(25 * f.period);
  EXPECT_FALSE(f.rs.stalled());
  EXPECT_FALSE(f.stop_out.read());
}

TEST(RelayStationTest, NoLossOrDuplicationUnderRandomStalls) {
  Fixture f;
  bfm::RsSource src(f.sim, "src", f.clk.out(), f.in_data, f.in_valid,
                    f.stop_out, f.dm, 0.8, 0xFF, f.sb);
  bfm::RsSink sink(f.sim, "sink", f.clk.out(), f.out_data, f.out_valid,
                   f.stop_in, f.dm, 0.4, f.sb);
  f.sim.run_until(1000 * f.period);
  EXPECT_GT(sink.received_valid(), 300u);
  EXPECT_EQ(f.sb.errors(), 0u) << "relay station lost or duplicated packets";
  // Everything sent either arrived or is still buffered in flight (<= 3:
  // source pending + MR + AUX).
  EXPECT_LE(f.sb.in_flight(), 3u);
}

TEST(RelayStationTest, BufferedValidCountsPackets) {
  Fixture f;
  bfm::RsSource src(f.sim, "src", f.clk.out(), f.in_data, f.in_valid,
                    f.stop_out, f.dm, 1.0, 0xFF, f.sb);
  // Let valid traffic flow for a few cycles, then stall the sink: MR holds
  // the undelivered packet and AUX parks the in-flight one.
  f.sim.sched().at(10 * f.period + 100, [&] { f.stop_in.set(true); });
  f.sim.run_until(20 * f.period);
  EXPECT_TRUE(f.rs.stalled());
  EXPECT_EQ(f.rs.buffered_valid(), 2u);  // MR + AUX both hold valid packets
}

}  // namespace
}  // namespace mts::lip
