#include "sync/synchronizer.hpp"

#include <gtest/gtest.h>

#include "sync/clock.hpp"

namespace mts::sync {
namespace {

struct Fixture {
  sim::Simulation sim{3};
  gates::DelayModel dm = gates::DelayModel::hp06();
  gates::TimingDomain dom{sim, "dom"};
};

TEST(Synchronizer, DepthTwoDelaysByTwoEdges) {
  Fixture f;
  Clock clk(f.sim, "clk", {2000, 1000, 0.5, 0});
  sim::Wire in(f.sim, "in");
  Synchronizer s(f.sim, "sync", clk.out(), in, f.dm,
                 {2, MetaMode::kDeterministic}, &f.dom);

  // Change the input mid-cycle, far from any edge.
  f.sim.sched().at(1600, [&] { in.set(true); });
  // Edge at 3000 samples stage 0; edge at 5000 samples stage 1.
  f.sim.run_until(4900);
  EXPECT_FALSE(s.out().read());
  f.sim.run_until(5000 + f.dm.flop.clk_to_q);
  EXPECT_TRUE(s.out().read());
  EXPECT_EQ(f.dom.violations(), 0u);
}

TEST(Synchronizer, DepthZeroIsPassthrough) {
  Fixture f;
  Clock clk(f.sim, "clk", {2000, 1000, 0.5, 0});
  sim::Wire in(f.sim, "in");
  Synchronizer s(f.sim, "sync", clk.out(), in, f.dm,
                 {0, MetaMode::kDeterministic}, &f.dom);
  f.sim.sched().at(1600, [&] { in.set(true); });
  f.sim.run_until(1600 + f.dm.gate(1));
  EXPECT_TRUE(s.out().read());
}

TEST(Synchronizer, InWindowChangeResolvesToOldValueDeterministically) {
  Fixture f;
  Clock clk(f.sim, "clk", {2000, 1000, 0.5, 0});
  sim::Wire in(f.sim, "in");
  Synchronizer s(f.sim, "sync", clk.out(), in, f.dm,
                 {2, MetaMode::kDeterministic}, &f.dom);

  // Change 10ps before the edge at 3000: the front stage is metastable and
  // resolves to the OLD value; the change is only seen at the NEXT edge.
  f.sim.sched().at(2990, [&] { in.set(true); });
  f.sim.run_until(7000 - 100);
  EXPECT_FALSE(s.out().read());  // edge 5000 propagated old=0 to stage 1
  f.sim.run_until(7000 + f.dm.flop.clk_to_q);
  EXPECT_TRUE(s.out().read());
  EXPECT_EQ(s.front_events(), 1u);
  EXPECT_EQ(s.failures(), 0u);
  EXPECT_EQ(f.dom.violations(), 0u);  // absorbed by the policy, not reported
}

TEST(Synchronizer, InitialValuePresetsChain) {
  Fixture f;
  Clock clk(f.sim, "clk", {2000, 1000, 0.5, 0});
  sim::Wire in(f.sim, "in", true);
  Synchronizer s(f.sim, "sync", clk.out(), in, f.dm,
                 {2, MetaMode::kDeterministic}, &f.dom, true);
  EXPECT_TRUE(s.out().read());
  f.sim.run_until(10000);
  EXPECT_TRUE(s.out().read());  // stays high: input is high
}

TEST(Synchronizer, StochasticModeEventuallyPassesValues) {
  Fixture f;
  Clock clk(f.sim, "clk", {2000, 1000, 0.5, 0});
  sim::Wire in(f.sim, "in");
  Synchronizer s(f.sim, "sync", clk.out(), in, f.dm, {2, MetaMode::kStochastic},
                 &f.dom);
  f.sim.sched().at(2990, [&] { in.set(true); });  // in-window
  f.sim.run_until(20000);
  EXPECT_TRUE(s.out().read());
  EXPECT_EQ(s.front_events(), 1u);
}

TEST(Synchronizer, DepthCountsStages) {
  Fixture f;
  Clock clk(f.sim, "clk", {2000, 1000, 0.5, 0});
  sim::Wire in(f.sim, "in");
  Synchronizer s3(f.sim, "s3", clk.out(), in, f.dm,
                  {3, MetaMode::kDeterministic}, &f.dom);
  EXPECT_EQ(s3.depth(), 3u);

  // A depth-3 chain needs three edges to pass a clean change.
  f.sim.sched().at(1600, [&] { in.set(true); });
  f.sim.run_until(6900);
  EXPECT_FALSE(s3.out().read());
  f.sim.run_until(7000 + f.dm.flop.clk_to_q);
  EXPECT_TRUE(s3.out().read());
}

}  // namespace
}  // namespace mts::sync
