// Occupancy statistics: samples a FIFO's fill level on every clock edge
// and accumulates a histogram. Useful for sizing buffers ("assuming
// appropriate buffer capacity is used", Section 1) and for the examples'
// reporting.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::metrics {

class OccupancySampler {
 public:
  /// Samples `occupancy()` at every rising edge of `clk`; the histogram
  /// has `capacity + 1` bins.
  OccupancySampler(sim::Simulation& sim, sim::Wire& clk, unsigned capacity,
                   std::function<unsigned()> occupancy);

  OccupancySampler(const OccupancySampler&) = delete;
  OccupancySampler& operator=(const OccupancySampler&) = delete;

  std::uint64_t samples() const noexcept { return samples_; }
  unsigned max_seen() const noexcept { return max_seen_; }
  double mean() const noexcept;
  /// Fraction of samples at exactly `level` (0 when no samples yet).
  double fraction_at(unsigned level) const;
  const std::vector<std::uint64_t>& histogram() const noexcept { return bins_; }

 private:
  std::function<unsigned()> occupancy_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t samples_ = 0;
  std::uint64_t weighted_sum_ = 0;
  unsigned max_seen_ = 0;
};

}  // namespace mts::metrics
