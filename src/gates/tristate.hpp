// Shared tri-state buses.
//
// The FIFO's get_data and valid outputs are tri-state buses: every cell has
// a driver, and exactly the cell holding the get token enables its driver
// during a get operation (Section 3.1). Multiple simultaneously enabled
// drivers are a structural bug and are reported as "bus-conflict". With no
// driver enabled the bus keeps its last value (bus-keeper behaviour), which
// matches the paper's pre-layout simulation setup.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sim/report.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::gates {

template <typename T>
class TristateBus {
 public:
  /// `delay` models driver-enable-to-bus-valid including wire load
  /// (DelayModel::tristate_bus). `out` must outlive the bus.
  TristateBus(sim::Simulation& sim, std::string name, sim::Signal<T>& out,
              sim::Time delay)
      : sim_(sim), name_(std::move(name)), out_(out), delay_(delay) {}

  TristateBus(const TristateBus&) = delete;
  TristateBus& operator=(const TristateBus&) = delete;

  /// Adds one driver; both wires must outlive the bus.
  void attach_driver(sim::Wire& en, sim::Signal<T>& value) {
    drivers_.push_back(Driver{&en, &value});
    en.on_change([this](bool, bool) { update(); });
    value.on_change([this, index = drivers_.size() - 1](const T&, const T&) {
      if (drivers_[index].en->read()) update();
    });
  }

  std::size_t driver_count() const noexcept { return drivers_.size(); }

 private:
  struct Driver {
    sim::Wire* en;
    sim::Signal<T>* value;
  };

  void update() {
    const Driver* active = nullptr;
    unsigned active_count = 0;
    for (const Driver& d : drivers_) {
      if (d.en->read()) {
        ++active_count;
        active = &d;
      }
    }
    if (active_count > 1 && !conflict_pending_) {
      // Handover between consecutive drivers can overlap for less than a
      // gate delay (break-before-make skew); only a conflict that persists
      // past that window is a structural error.
      conflict_pending_ = true;
      sim_.sched().after(kConflictWindow, [this] {
        conflict_pending_ = false;
        unsigned still_active = 0;
        for (const Driver& d : drivers_) still_active += d.en->read() ? 1u : 0u;
        if (still_active > 1) {
          sim_.report().add(sim_.now(), sim::Severity::kError, "bus-conflict",
                            name_ + ": " + std::to_string(still_active) +
                                " drivers enabled");
        }
      });
    }
    if (active != nullptr) {
      out_.write(active->value->read(), delay_, sim::DelayKind::kInertial);
    }
    // No active driver: bus keeper holds the last committed value.
  }

  static constexpr sim::Time kConflictWindow = 60;

  sim::Simulation& sim_;
  std::string name_;
  sim::Signal<T>& out_;
  sim::Time delay_;
  std::vector<Driver> drivers_;
  bool conflict_pending_ = false;
};

}  // namespace mts::gates
