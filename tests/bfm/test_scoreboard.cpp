#include "bfm/scoreboard.hpp"

#include <gtest/gtest.h>

namespace mts::bfm {
namespace {

TEST(Scoreboard, InOrderTrafficIsClean) {
  sim::Simulation sim;
  Scoreboard sb(sim, "sb");
  for (std::uint64_t i = 0; i < 100; ++i) sb.push(i);
  for (std::uint64_t i = 0; i < 100; ++i) sb.pop_check(i);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_EQ(sb.pushed(), 100u);
  EXPECT_EQ(sb.popped(), 100u);
  EXPECT_EQ(sb.in_flight(), 0u);
}

TEST(Scoreboard, ValueMismatchCounted) {
  sim::Simulation sim;
  Scoreboard sb(sim, "sb");
  sb.push(1);
  sb.pop_check(2);
  EXPECT_EQ(sb.errors(), 1u);
  EXPECT_GE(sim.report().count("scoreboard"), 1u);
}

TEST(Scoreboard, ReorderCounted) {
  sim::Simulation sim;
  Scoreboard sb(sim, "sb");
  sb.push(1);
  sb.push(2);
  sb.pop_check(2);
  sb.pop_check(1);
  EXPECT_EQ(sb.errors(), 2u);
}

TEST(Scoreboard, UnderflowPopCounted) {
  sim::Simulation sim;
  Scoreboard sb(sim, "sb");
  sb.pop_check(5);
  EXPECT_EQ(sb.errors(), 1u);
}

TEST(Scoreboard, InFlightTracksBacklog) {
  sim::Simulation sim;
  Scoreboard sb(sim, "sb");
  sb.push(1);
  sb.push(2);
  sb.push(3);
  sb.pop_check(1);
  EXPECT_EQ(sb.in_flight(), 2u);
}

}  // namespace
}  // namespace mts::bfm
