file(REMOVE_RECURSE
  "CMakeFiles/bench_relay_chain.dir/bench_relay_chain.cpp.o"
  "CMakeFiles/bench_relay_chain.dir/bench_relay_chain.cpp.o.d"
  "bench_relay_chain"
  "bench_relay_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relay_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
