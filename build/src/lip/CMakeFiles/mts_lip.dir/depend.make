# Empty dependencies file for mts_lip.
# This may be replaced when dependencies are built.
