// Append-only, bounded-memory time series for in-run telemetry sampling.
//
// A TimeSeriesStore holds named series of (sim-time, value) points, filled
// by the sim::Telemetry sampler (sim/telemetry.hpp) once per sampling tick.
// Memory is bounded per series: when a series exceeds its point cap it is
// *decimated* -- every other retained point is dropped and the series'
// stride doubles, so from then on only every stride-th appended point is
// kept. The retained set is a pure function of the append sequence (no
// clocks, no RNG), which keeps campaign timelines bit-identical across
// worker counts.
//
// Exports:
//   to_jsonl()    one JSON object per line, `{"t": <ps>, "s": "<series>",
//                 "v": <value>}`, ordered by (time, series name) -- the
//                 format tools/mts_timeline consumes.
//   to_csv()      long format `t_ps,series,value`, same order.
//   perfetto_events()  Chrome trace-event counter samples (`"ph": "C"`,
//                 one counter track per series under a dedicated
//                 "telemetry" process) for merging into a TraceSession
//                 trace.json (sim/trace_session.hpp).
//
// merge() appends another store's points series-by-series. Append order is
// caller-visible in the exports, so reductions that must be
// placement-independent (the campaign engine) fold per-run stores in RUN
// INDEX order -- the same contract as Report::merge.
//
// The header is cheap to include (used by the header-only registry's
// sampling visitor); the export bodies live in timeseries.cpp, compiled
// into mts_sim so sim::Telemetry can link them without an mts_metrics
// edge (mts_metrics already links mts_sim; the reverse edge would cycle).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace mts::metrics {

/// One sampled point of one series.
struct TimePoint {
  sim::Time t = 0;  ///< simulation time, picoseconds
  double v = 0.0;
};

/// A single bounded series. Appends must be monotone in time (the sampler
/// guarantees this); violations are tolerated but export order is by the
/// stored sequence, not re-sorted.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t max_points) : max_points_(max_points) {}

  /// Records (t, v) subject to the current stride: after d decimations only
  /// every 2^d-th appended point is retained.
  void append(sim::Time t, double v) {
    if (phase_++ % stride_ != 0) return;
    pts_.push_back(TimePoint{t, v});
    if (max_points_ >= 2 && pts_.size() > max_points_) decimate();
  }

  /// Retained points, oldest first.
  const std::vector<TimePoint>& points() const noexcept { return pts_; }
  std::size_t size() const noexcept { return pts_.size(); }
  /// Points ever appended (including those dropped by the stride).
  std::size_t appended() const noexcept { return phase_; }
  /// Current keep-every-Nth stride (1 until the first decimation).
  std::size_t stride() const noexcept { return stride_; }

  double last() const noexcept { return pts_.empty() ? 0.0 : pts_.back().v; }

  /// Campaign reduction: appends `other`'s retained points verbatim (no
  /// re-striding). Fold stores in run-index order for placement-independent
  /// artifacts.
  void merge(const TimeSeries& other) {
    pts_.insert(pts_.end(), other.pts_.begin(), other.pts_.end());
    phase_ += other.phase_;
  }

  /// Checkpoint/wire seam (src/campaignd): replaces the retained points and
  /// appended count with an exact snapshot previously captured through
  /// points()/appended(). merge() reads only those two, so a restored
  /// series folds byte-identically to the original; the stride resets to 1
  /// (snapshots are fold inputs, not live sampling targets).
  void restore(std::vector<TimePoint> pts, std::size_t appended) {
    pts_ = std::move(pts);
    phase_ = appended;
    stride_ = 1;
  }

 private:
  /// Drops every other retained point (keeps indices 0, 2, 4, ...) and
  /// doubles the stride. phase_ keeps its parity so future appends stay
  /// aligned with the retained grid.
  void decimate() {
    std::size_t w = 0;
    for (std::size_t r = 0; r < pts_.size(); r += 2) pts_[w++] = pts_[r];
    pts_.resize(w);
    stride_ *= 2;
  }

  std::vector<TimePoint> pts_;
  std::size_t max_points_;
  std::size_t stride_ = 1;
  std::size_t phase_ = 0;
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(std::size_t max_points_per_series = 4096)
      : max_points_(max_points_per_series) {}

  /// Resolves (or creates) the series named `name`. References are stable
  /// for the store's lifetime (std::map nodes never move).
  TimeSeries& series(const std::string& name) {
    auto it = series_.find(name);
    if (it == series_.end()) {
      it = series_.emplace(name, TimeSeries(max_points_)).first;
    }
    return it->second;
  }

  /// Shorthand: series(name).append(t, v).
  void append(const std::string& name, sim::Time t, double v) {
    series(name).append(t, v);
  }

  const TimeSeries* find(const std::string& name) const {
    const auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
  }

  std::size_t series_count() const noexcept { return series_.size(); }
  std::size_t total_points() const noexcept {
    std::size_t n = 0;
    for (const auto& [k, s] : series_) n += s.size();
    return n;
  }
  bool empty() const noexcept { return series_.empty(); }

  /// Series names, sorted (map order).
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto& [k, s] : series_) out.push_back(k);
    return out;
  }

  /// Drops every series (campaign per-run reuse hook).
  void clear() { series_.clear(); }

  /// Campaign reduction: series-wise TimeSeries::merge, creating absent
  /// series. Fold in run-index order (see header comment).
  void merge(const TimeSeriesStore& other) {
    for (const auto& [name, s] : other.series_) series(name).merge(s);
  }

  // -- exports (timeseries.cpp) ---------------------------------------------

  /// `{"t": <ps>, "s": "<name>", "v": <value>}` per line, ordered by
  /// (t, name).
  std::string to_jsonl() const;

  /// `t_ps,series,value` long-format CSV, same order as to_jsonl().
  std::string to_csv() const;

  /// Chrome trace-event counter samples (`"ph": "C"`) for every point, one
  /// counter track per series, grouped under a dedicated process (`pid`).
  /// The returned fragment is a sequence of ",\n  {...}" event objects
  /// (including a leading process_name metadata event) ready to append
  /// inside an existing traceEvents array.
  std::string perfetto_events(int pid = 2) const;

  /// Writes to_jsonl() to `path`; returns false (no throw) on I/O failure.
  bool write_jsonl(const std::string& path) const;

 private:
  std::map<std::string, TimeSeries> series_;
  std::size_t max_points_;
};

}  // namespace mts::metrics
