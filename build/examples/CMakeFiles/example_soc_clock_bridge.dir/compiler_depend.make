# Empty compiler generated dependencies file for example_soc_clock_bridge.
# This may be replaced when dependencies are built.
