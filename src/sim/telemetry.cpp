#include "sim/telemetry.hpp"

#include <map>
#include <utility>

#include "metrics/registry.hpp"
#include "sim/simulation.hpp"
#include "sim/trace_session.hpp"
#include "verify/hub.hpp"

namespace mts::sim {

void Telemetry::attach_trace(TraceSession* t) {
  if (t == nullptr) return;
  t->set_extra_events_provider([this] { return store_.perfetto_events(); });
}

void Telemetry::start(Simulation& sim) {
  sim_ = &sim;
  active_ = true;
  last_t_ = sim.now();
  last_events_ = sim.sched().events_executed();
  last_violations_ =
      sim.monitors() == nullptr ? 0 : sim.monitors()->total();
  sim.sched().after(cfg_.interval, [this] { probe_fired(); });
}

void Telemetry::sample_now() {
  if (sim_ != nullptr) take_sample(sim_->now());
}

void Telemetry::probe_fired() {
  const Time t = sim_->now();
  take_sample(t);
  // Self-reschedule ONLY while other events are pending: the probe never
  // keeps an otherwise-finished simulation alive, so run() still drains and
  // watchdog drain detection still fires (at most one interval late).
  if (!sim_->sched().empty()) {
    sim_->sched().after(cfg_.interval, [this] { probe_fired(); });
  } else {
    active_ = false;
  }
}

void Telemetry::take_sample(Time t) {
  ++samples_;
  const Time dt = t > last_t_ ? t - last_t_ : 0;

  // Per-instance sources, then per-(domain, kind) rollups. std::map keys
  // the rollups so their series append in sorted order -- deterministic
  // regardless of source registration order.
  std::map<std::pair<std::string, std::string>, double> rollup;
  for (Source& s : sources_) {
    const double v = s.fn();
    store_.append(s.instance + "." + s.kind, t, v);
    rollup[{s.domain, s.kind}] += v;
  }
  for (const auto& [key, sum] : rollup) {
    store_.append("domain." + key.first + "." + key.second, t, sum);
  }

  // Kernel builtins. events_per_us is the interval-local event rate in
  // events per microsecond of SIM time -- a pure function of the event
  // sequence, not of host speed.
  const std::uint64_t events = sim_->sched().events_executed();
  if (dt > 0) {
    const double us = static_cast<double>(dt) / 1e6;
    store_.append("kernel.events_per_us", t,
                  static_cast<double>(events - last_events_) / us);
  }
  store_.append("kernel.queue_depth", t,
                static_cast<double>(sim_->sched().pending()));
  if (cfg_.include_host_series) {
    store_.append("kernel.pool_high_water", t,
                  static_cast<double>(sim_->sched().stats().pool_high_water));
  }
  last_events_ = events;

  // Violation totals when a hub is armed: cumulative plus interval rate
  // (violations per microsecond of sim time).
  if (const verify::Hub* hub = sim_->monitors(); hub != nullptr) {
    const std::uint64_t total = hub->total();
    store_.append("verify.violations", t, static_cast<double>(total));
    if (dt > 0) {
      const double us = static_cast<double>(dt) / 1e6;
      store_.append("verify.violation_rate", t,
                    static_cast<double>(total - last_violations_) / us);
    }
    last_violations_ = total;
  }

  // Full registry snapshot: counters and gauges by value, histograms as
  // sliding-window percentiles (cumulative-bucket fallback when no window
  // is armed). Registry visit order is (instance, metric) map order.
  if (cfg_.sample_registry && registry_ != nullptr) {
    registry_->visit(
        [&](const std::string& inst, const std::string& name,
            const metrics::Counter& c) {
          store_.append(inst + "." + name, t, static_cast<double>(c.value()));
        },
        [&](const std::string& inst, const std::string& name,
            const metrics::Gauge& g) {
          store_.append(inst + "." + name, t, g.value());
        },
        [&](const std::string& inst, const std::string& name,
            const metrics::Histogram& h) {
          const bool windowed = h.window_capacity() > 0;
          const auto pct = [&](double p) {
            return windowed ? h.window_percentile(p) : h.percentile(p);
          };
          const std::string base = inst + "." + name;
          store_.append(base + ".p50", t, pct(0.50));
          store_.append(base + ".p95", t, pct(0.95));
          store_.append(base + ".p99", t, pct(0.99));
          store_.append(base + ".p999", t, pct(0.999));
        });
  }

  last_t_ = t;
}

}  // namespace mts::sim
