#include "ctrl/petri.hpp"

#include <utility>

#include "sim/error.hpp"

namespace mts::ctrl {

void PetriNet::validate(std::size_t num_inputs, std::size_t num_outputs) const {
  if (num_places == 0) throw ConfigError("PetriNet '" + name + "': no places");
  for (unsigned p : initial_marking) {
    if (p >= num_places) {
      throw ConfigError("PetriNet '" + name + "': initial marking out of range");
    }
  }
  for (const PnTransition& t : transitions) {
    const std::size_t limit = t.is_input ? num_inputs : num_outputs;
    if (t.signal >= limit) {
      throw ConfigError("PetriNet '" + name + "': transition '" + t.label +
                        "' signal index out of range");
    }
    for (unsigned p : t.pre) {
      if (p >= num_places) {
        throw ConfigError("PetriNet '" + name + "': pre-place out of range");
      }
    }
    for (unsigned p : t.post) {
      if (p >= num_places) {
        throw ConfigError("PetriNet '" + name + "': post-place out of range");
      }
    }
  }
}

PetriEngine::PetriEngine(sim::Simulation& sim, std::string instance,
                         const PetriNet& net, std::vector<sim::Wire*> inputs,
                         std::vector<sim::Wire*> outputs, sim::Time output_delay)
    : sim_(sim),
      instance_(std::move(instance)),
      net_(net),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)),
      output_delay_(output_delay) {
  net_.validate(inputs_.size(), outputs_.size());
  marking_.assign(net_.num_places, false);
  for (unsigned p : net_.initial_marking) marking_[p] = true;
  for (unsigned i = 0; i < inputs_.size(); ++i) {
    MTS_ASSERT(inputs_[i] != nullptr, "null input wire");
    inputs_[i]->on_change([this, i](bool, bool now) { on_input_edge(i, now); });
  }
  sim_.sched().after(0, [this] { run_output_transitions(); });
}

bool PetriEngine::enabled(const PnTransition& t) const {
  for (unsigned p : t.pre) {
    if (!marking_[p]) return false;
  }
  return true;
}

void PetriEngine::fire(const PnTransition& t) {
  for (unsigned p : t.pre) marking_[p] = false;
  for (unsigned p : t.post) {
    if (marking_[p]) {
      throw SimulationError("PetriEngine '" + instance_ + "': firing '" +
                            t.label + "' violates 1-safety at place " +
                            std::to_string(p));
    }
    marking_[p] = true;
  }
  ++firings_;
  if (!t.is_input) {
    outputs_[t.signal]->write(t.rising, output_delay_, sim::DelayKind::kInertial);
  }
}

void PetriEngine::run_output_transitions() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const PnTransition& t : net_.transitions) {
      if (!t.is_input && enabled(t)) {
        fire(t);
        progressed = true;
      }
    }
  }
}

void PetriEngine::on_input_edge(unsigned signal, bool rising) {
  for (const PnTransition& t : net_.transitions) {
    if (t.is_input && t.signal == signal && t.rising == rising && enabled(t)) {
      fire(t);
      run_output_transitions();
      return;
    }
  }
  sim_.report().add(sim_.now(), sim::Severity::kError, "pn-illegal-input",
                    instance_ + ": unexpected edge on input " +
                        std::to_string(signal) + (rising ? "+" : "-"));
}

}  // namespace mts::ctrl
