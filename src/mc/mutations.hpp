// Seeded known-bad configurations for checker self-tests.
//
// Each mutant perturbs one copy of default_ring() with a realistic design
// slip -- a dropped burst-mode arc, a swapped output burst, an off-by-one
// detector window, a C-element missing its guard input -- together with the
// property the checker MUST report for it. The mutation test suite runs
// check_ring() over every mutant, asserts the expected property is found
// within the state bound, and cross_check()s the counterexample against a
// concrete replay: the runtime monitors must flag the matching
// verify::Invariant at the same environment step.
#pragma once

#include <string>
#include <vector>

#include "mc/property.hpp"
#include "mc/ring_model.hpp"

namespace mts::mc {

struct Mutant {
  std::string name;
  std::string description;
  RingConfig config;
  Property expected;
};

/// The shipped mutant set at ring capacity `capacity`.
std::vector<Mutant> make_mutants(unsigned capacity = 4);

}  // namespace mts::mc
