#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite, and regenerates every
# table/figure in EXPERIMENTS.md. All outputs (logs, VCD traces,
# BENCH_kernel.json) land in out/, which is gitignored.
set -euo pipefail
cd "$(dirname "$0")/.."
repo="$PWD"

cmake -B build -G Ninja
cmake --build build

mkdir -p out
ctest --test-dir build 2>&1 | tee out/test_output.txt

# Benchmarks run from out/ so that generated artifacts (fig3_*.vcd from
# bench_fig3_protocols, BENCH_kernel.json from bench_kernel_perf) are
# written there instead of the repository root.
(
  cd out
  for b in "$repo"/build/bench/bench_*; do
    echo "===================================================================="
    echo "== $(basename "$b")"
    echo "===================================================================="
    "$b"
    echo
  done
) 2>&1 | tee out/bench_output.txt

echo "done: see out/test_output.txt, out/bench_output.txt, out/*.vcd"
