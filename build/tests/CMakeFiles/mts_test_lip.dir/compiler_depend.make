# Empty compiler generated dependencies file for mts_test_lip.
# This may be replaced when dependencies are built.
