file(REMOVE_RECURSE
  "CMakeFiles/mts_test_gates.dir/gates/test_celement.cpp.o"
  "CMakeFiles/mts_test_gates.dir/gates/test_celement.cpp.o.d"
  "CMakeFiles/mts_test_gates.dir/gates/test_combinational.cpp.o"
  "CMakeFiles/mts_test_gates.dir/gates/test_combinational.cpp.o.d"
  "CMakeFiles/mts_test_gates.dir/gates/test_delay_model.cpp.o"
  "CMakeFiles/mts_test_gates.dir/gates/test_delay_model.cpp.o.d"
  "CMakeFiles/mts_test_gates.dir/gates/test_flops.cpp.o"
  "CMakeFiles/mts_test_gates.dir/gates/test_flops.cpp.o.d"
  "CMakeFiles/mts_test_gates.dir/gates/test_gates_property.cpp.o"
  "CMakeFiles/mts_test_gates.dir/gates/test_gates_property.cpp.o.d"
  "CMakeFiles/mts_test_gates.dir/gates/test_latch.cpp.o"
  "CMakeFiles/mts_test_gates.dir/gates/test_latch.cpp.o.d"
  "CMakeFiles/mts_test_gates.dir/gates/test_tristate.cpp.o"
  "CMakeFiles/mts_test_gates.dir/gates/test_tristate.cpp.o.d"
  "mts_test_gates"
  "mts_test_gates.pdb"
  "mts_test_gates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_test_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
