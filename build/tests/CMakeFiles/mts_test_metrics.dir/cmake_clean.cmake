file(REMOVE_RECURSE
  "CMakeFiles/mts_test_metrics.dir/metrics/test_activity.cpp.o"
  "CMakeFiles/mts_test_metrics.dir/metrics/test_activity.cpp.o.d"
  "CMakeFiles/mts_test_metrics.dir/metrics/test_experiments.cpp.o"
  "CMakeFiles/mts_test_metrics.dir/metrics/test_experiments.cpp.o.d"
  "CMakeFiles/mts_test_metrics.dir/metrics/test_matrix.cpp.o"
  "CMakeFiles/mts_test_metrics.dir/metrics/test_matrix.cpp.o.d"
  "CMakeFiles/mts_test_metrics.dir/metrics/test_stats.cpp.o"
  "CMakeFiles/mts_test_metrics.dir/metrics/test_stats.cpp.o.d"
  "CMakeFiles/mts_test_metrics.dir/metrics/test_table.cpp.o"
  "CMakeFiles/mts_test_metrics.dir/metrics/test_table.cpp.o.d"
  "CMakeFiles/mts_test_metrics.dir/metrics/test_waveform.cpp.o"
  "CMakeFiles/mts_test_metrics.dir/metrics/test_waveform.cpp.o.d"
  "mts_test_metrics"
  "mts_test_metrics.pdb"
  "mts_test_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mts_test_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
