#include "sync/mtbf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/error.hpp"

namespace mts::sync {
namespace {

MtbfParams base() {
  MtbfParams p;
  p.depth = 2;
  p.clock_period = 2000;
  p.data_rate_hz = 100e6;
  p.dm = gates::DelayModel::hp06();
  return p;
}

TEST(Mtbf, EachStageMultipliesMtbfExponentially) {
  MtbfParams p = base();
  const double m1 = mtbf_seconds([&] { p.depth = 1; return p; }());
  const double m2 = mtbf_seconds([&] { p.depth = 2; return p; }());
  const double m3 = mtbf_seconds([&] { p.depth = 3; return p; }());
  const double slack = static_cast<double>(stage_slack(p));
  const double factor = std::exp(slack / static_cast<double>(p.dm.meta_tau));
  EXPECT_NEAR(m2 / m1, factor, factor * 1e-9);
  EXPECT_NEAR(m3 / m2, factor, factor * 1e-9);
}

TEST(Mtbf, SlowerClockImprovesMtbf) {
  MtbfParams fast = base();
  MtbfParams slow = base();
  slow.clock_period = 4000;
  EXPECT_GT(mtbf_seconds(slow), mtbf_seconds(fast));
}

TEST(Mtbf, HigherDataRateDegradesMtbf) {
  MtbfParams quiet = base();
  MtbfParams busy = base();
  busy.data_rate_hz = 10 * quiet.data_rate_hz;
  EXPECT_LT(mtbf_seconds(busy), mtbf_seconds(quiet));
}

TEST(Mtbf, ZeroDataRateIsInfinite) {
  MtbfParams p = base();
  p.data_rate_hz = 0;
  EXPECT_TRUE(std::isinf(mtbf_seconds(p)));
}

TEST(Mtbf, TooFastClockHasZeroSlack) {
  MtbfParams p = base();
  p.clock_period = p.dm.flop.setup;  // faster than the flop itself
  EXPECT_EQ(stage_slack(p), 0u);
}

TEST(Mtbf, InvalidParamsRejected) {
  MtbfParams p = base();
  p.depth = 0;
  EXPECT_THROW(mtbf_seconds(p), ConfigError);
  MtbfParams q = base();
  q.clock_period = 0;
  EXPECT_THROW(stage_slack(q), ConfigError);
}

TEST(Mtbf, PaperDepthTwoIsConservativeDefault) {
  // Sanity: at the paper's scale (hundreds of MHz, 100 MHz data), two
  // stages give astronomically large MTBF while zero-slack gives none.
  MtbfParams p = base();
  EXPECT_GT(mtbf_seconds(p), 3.15e7 /* one year in seconds */);
}

}  // namespace
}  // namespace mts::sync
