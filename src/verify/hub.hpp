// verify::Hub -- the violation sink and severity-policy switchboard.
//
// Arming follows the sim::Observability pattern exactly: a Hub is armed on a
// Simulation *before components are constructed*; each component checks
// Simulation::monitors() once, in its constructor, and attaches its runtime
// checkers only when armed. With no hub armed the monitor framework costs
// the seed path one null-pointer branch at construction time and NOTHING
// per event -- tests/faults/test_golden_waveform.cpp holds the unarmed (and
// the armed-but-clean) Fig. 3 VCDs bit-identical to the recorded hashes.
//
// Every checker routes its findings through Hub::report(), which applies
// the severity policy for that invariant:
//
//   kRecord  (default)  keep the full Violation in a capped log, mirror it
//                       into the Simulation's Report, continue running
//   kCount              per-invariant totals and metrics counters only --
//                       bounded memory for armed soak campaigns
//   kThrow              record, then throw ProtocolViolationError: the run
//                       dies at the first broken invariant (campaign
//                       supervision catches, classifies and bundles it)
//
// Monitors only ever *read* wires and schedule read-only settle checks, so
// even an ARMED hub perturbs no waveform: same-seed armed runs stay
// VCD-bit-identical to unarmed runs.
//
// Header-only (like sim/observe.hpp and metrics/registry.hpp) so fifo /
// sync / lip / sim can all use it with no new link edges.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/registry.hpp"
#include "sim/report.hpp"
#include "sim/simulation.hpp"
#include "verify/violation.hpp"

namespace mts::verify {

class Hub {
 public:
  Hub() = default;
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  /// Arms this hub on `sim` and mirrors recorded violations into its
  /// Report. Must run before the components to monitor are constructed;
  /// the hub must outlive the simulation or be disarmed first.
  void arm(sim::Simulation& sim) {
    sim.arm_monitors(this);
    report_ = &sim.report();
  }

  /// Returns `sim` to the dormant fast path.
  static void disarm(sim::Simulation& sim) { sim.arm_monitors(nullptr); }

  // -- policy -------------------------------------------------------------

  /// Default policy for every invariant without an override.
  void set_policy(Policy p) noexcept { default_policy_ = p; }
  /// Per-invariant override (e.g. throw on token-ring corruption but only
  /// count bundled-data warnings during a soak).
  void set_policy(Invariant inv, Policy p) {
    overrides_[index(inv)] = p;
  }
  Policy policy_for(Invariant inv) const noexcept {
    const std::optional<Policy>& o = overrides_[index(inv)];
    return o.has_value() ? *o : default_policy_;
  }

  /// Optional metrics sink: per-site "violation.<invariant>" counters.
  void set_metrics(metrics::Registry* m) noexcept { metrics_ = m; }
  /// Report sink override (arm() wires the simulation's own Report).
  void set_report(sim::Report* r) noexcept { report_ = r; }

  /// Cap on violations kept in the log (counting continues past it).
  void set_max_log(std::size_t n) noexcept { max_log_ = n; }

  /// Clock-period tolerance as a fraction of the nominal period; a clock
  /// monitor flags cycles whose generated period deviates by more than
  /// max(configured jitter, this fraction x nominal). See sync/clock.cpp.
  void set_clock_tolerance(double frac) noexcept { clock_tol_frac_ = frac; }
  double clock_tolerance() const noexcept { return clock_tol_frac_; }

  // -- reporting (called by checkers) -------------------------------------

  /// Applies the severity policy to `v`. Under kThrow the violation is
  /// recorded first, so post-mortem logs include the fatal finding.
  void report(Violation v) {
    const Policy p = policy_for(v.invariant);
    ++total_;
    ++counts_[index(v.invariant)];
    if (metrics_ != nullptr) {
      metrics_
          ->counter(v.site,
                    std::string("violation.") + invariant_name(v.invariant))
          .inc();
    }
    if (p != Policy::kCount) {
      if (report_ != nullptr) {
        report_->add(v.time, sim::Severity::kViolation,
                     std::string("verify-") + invariant_name(v.invariant),
                     v.to_string());
      }
      if (log_.size() < max_log_) log_.push_back(v);
    }
    if (p == Policy::kThrow) throw ProtocolViolationError(std::move(v));
  }

  // -- inspection ----------------------------------------------------------

  /// Recorded violations (kRecord/kThrow policies), oldest first, capped.
  const std::vector<Violation>& violations() const noexcept { return log_; }
  /// Violations reported under `inv`, including those counted or dropped
  /// past the log cap.
  std::uint64_t count(Invariant inv) const noexcept {
    return counts_[index(inv)];
  }
  /// All violations ever reported, any invariant or policy.
  std::uint64_t total() const noexcept { return total_; }

  /// Drops the log and zeroes every counter (policies are kept). The
  /// campaign engine calls this between supervised runs.
  void clear() {
    log_.clear();
    counts_.fill(0);
    total_ = 0;
  }

  /// JSON object: total, per-invariant counts, and the recorded log.
  std::string to_json() const {
    std::ostringstream os;
    os << "{\"total\": " << total_ << ", \"counts\": {";
    bool first = true;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << "\"" << invariant_name(static_cast<Invariant>(i))
         << "\": " << counts_[i];
    }
    os << "}, \"violations\": [";
    first = true;
    for (const Violation& v : log_) {
      os << (first ? "" : ", ") << v.to_json();
      first = false;
    }
    os << "]}";
    return os.str();
  }

  /// Writes to_json() to `path`; returns false (no throw) on I/O failure.
  bool write_json(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << to_json() << "\n";
    return static_cast<bool>(out);
  }

 private:
  static constexpr std::size_t kInvariants =
      static_cast<std::size_t>(Invariant::kLivelock) + 1;

  static std::size_t index(Invariant inv) noexcept {
    return static_cast<std::size_t>(inv);
  }

  Policy default_policy_ = Policy::kRecord;
  std::array<std::optional<Policy>, kInvariants> overrides_{};
  sim::Report* report_ = nullptr;
  metrics::Registry* metrics_ = nullptr;
  std::size_t max_log_ = 10'000;
  double clock_tol_frac_ = 0.01;

  std::vector<Violation> log_;
  std::array<std::uint64_t, kInvariants> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace mts::verify
