// Baseline comparator: a pipeline-synchronization FIFO in the style of
// Seizovic [13], the design the paper's Related Work contrasts against:
// "the latency of his design is proportional with the number of FIFO
// stages, whose implementation includes expensive synchronizers."
//
// Model: a chain of stages between the writer and the reader. A data item
// entering a stage must spend one synchronizer settling interval (two
// receiver clock cycles, matching the paper's two-latch synchronizers)
// before it may advance -- every stage resynchronizes the item. Items
// pipeline, so several can be in flight, but each hop costs the full
// synchronization delay:
//
//     latency  ~ 2 * stages * T_get      (linear in capacity)
//     throughput ~ one word per 2 T_get  (synchronizer-limited)
//
// The Chelcea-Nowick designs beat this on both axes because data is
// immobile (enqueued items are immediately visible at the output) and only
// the two *global* state bits cross the clock boundary.
//
// This is a behavioural substrate model (the baseline is compared, not
// reproduced gate-by-gate); its external interface matches the mixed-clock
// FIFO's so the comparison bench can drive both identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fifo/config.hpp"
#include "gates/netlist.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::fifo {

class BaselineShiftFifo {
 public:
  BaselineShiftFifo(sim::Simulation& sim, const std::string& name,
                    const FifoConfig& cfg, sim::Wire& clk_put,
                    sim::Wire& clk_get);

  BaselineShiftFifo(const BaselineShiftFifo&) = delete;
  BaselineShiftFifo& operator=(const BaselineShiftFifo&) = delete;

  // Put interface (synchronous to clk_put).
  sim::Wire& req_put() noexcept { return *req_put_; }
  sim::Word& data_put() noexcept { return *data_put_; }
  sim::Wire& full() noexcept { return *full_; }

  // Get interface (synchronous to clk_get).
  sim::Wire& req_get() noexcept { return *req_get_; }
  sim::Word& data_get() noexcept { return *data_get_; }
  sim::Wire& valid_get() noexcept { return *valid_get_; }
  sim::Wire& empty() noexcept { return *empty_; }

  unsigned occupancy() const;
  /// Register-write events: one per insertion plus one per stage hop --
  /// linear in capacity, the energy cost of moving data through the
  /// pipeline (contrast MixedClockFifo::data_moves()).
  std::uint64_t data_moves() const noexcept { return data_moves_; }
  const FifoConfig& config() const noexcept { return cfg_; }

 private:
  void on_put_edge();
  void on_get_edge();

  struct Stage {
    bool valid = false;
    std::uint64_t data = 0;
    unsigned age = 0;  ///< receiver edges spent in this stage
  };

  sim::Simulation& sim_;
  FifoConfig cfg_;
  gates::Netlist nl_;

  sim::Wire* req_put_ = nullptr;
  sim::Word* data_put_ = nullptr;
  sim::Wire* full_ = nullptr;
  sim::Wire* req_get_ = nullptr;
  sim::Word* data_get_ = nullptr;
  sim::Wire* valid_get_ = nullptr;
  sim::Wire* empty_ = nullptr;

  std::vector<Stage> stages_;
  std::uint64_t data_moves_ = 0;
  /// Entry-stage occupancy as seen by the writer: updated with a
  /// two-put-cycle synchronizer delay, like every cross-domain flag here.
  unsigned full_sync_pipe_ = 0;

  static constexpr unsigned kSyncCycles = 2;  ///< per-stage settling, edges
};

}  // namespace mts::fifo
