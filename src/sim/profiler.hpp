// Opt-in kernel profiling: per-listener-site wall-time and event-count
// attribution.
//
// A *site* is a labeled origin of scheduled work -- a clock's tick loop, an
// asynchronous driver's handshake engine, a testbench stimulus process --
// registered once via KernelProfiler::site() (or the MTS_PROFILE_SITE macro,
// which appends the registration file:line). Attribution is inherited:
// every event records the site that was current when it was scheduled, and
// while an event executes its site becomes current, so a clock tick's whole
// cascade (edge commits, flop updates, detector gates, synchronizers) is
// attributed to that clock unless a nested ProfileScope claims a more
// specific site. Events scheduled outside any site (testbench main, before
// arming) land in site 0, "(unattributed)".
//
// Cost model: with no profiler armed the scheduler pays one branch per
// scheduled event and one per executed event, and a 4-byte site id rides in
// each queued event -- the soak test in tests/sim/test_observability_soak.cpp
// holds this dormant path to within noise of the PR-2 kernel. With a
// profiler armed, each executed event adds two steady_clock reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/kernel_stats.hpp"

namespace mts::sim {

class KernelProfiler {
 public:
  using SiteId = std::uint32_t;

  /// Rows surfaced through KernelStats::hot_sites by Scheduler::stats().
  static constexpr std::size_t kTopN = 10;

  KernelProfiler() { sites_.push_back(Site{"(unattributed)", 0, 0}); }

  KernelProfiler(const KernelProfiler&) = delete;
  KernelProfiler& operator=(const KernelProfiler&) = delete;

  /// Registers (or looks up) the site named `label`; ids are stable for the
  /// profiler's lifetime.
  SiteId site(const std::string& label) {
    const auto it = index_.find(label);
    if (it != index_.end()) return it->second;
    const auto id = static_cast<SiteId>(sites_.size());
    sites_.push_back(Site{label, 0, 0});
    index_.emplace(label, id);
    return id;
  }

  SiteId current() const noexcept { return current_; }
  void set_current(SiteId id) noexcept { current_ = id; }

  /// Scheduler dispatch hook: one executed event at `id` took `wall_ns`.
  void record(SiteId id, std::uint64_t wall_ns) noexcept {
    Site& s = sites_[id];
    ++s.events;
    s.wall_ns += wall_ns;
  }

  struct Site {
    std::string label;
    std::uint64_t events = 0;
    std::uint64_t wall_ns = 0;
  };
  const std::vector<Site>& sites() const noexcept { return sites_; }

  /// The n hottest sites by wall time, descending; sites with no events are
  /// omitted.
  std::vector<KernelSiteStat> top(std::size_t n = kTopN) const;

  /// Zeroes every site's counters (labels and ids are kept).
  void reset();

 private:
  SiteId current_ = 0;
  std::vector<Site> sites_;
  std::unordered_map<std::string, SiteId> index_;
};

/// RAII re-attribution: events scheduled while the scope is alive are
/// charged to `id` instead of the inherited site. Null profiler = no-op.
class ProfileScope {
 public:
  ProfileScope(KernelProfiler* p, KernelProfiler::SiteId id) noexcept : p_(p) {
    if (p_ != nullptr) {
      prev_ = p_->current();
      p_->set_current(id);
    }
  }
  ~ProfileScope() {
    if (p_ != nullptr) p_->set_current(prev_);
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  KernelProfiler* p_;
  KernelProfiler::SiteId prev_ = 0;
};

#define MTS_PROFILE_STRINGIZE_IMPL(x) #x
#define MTS_PROFILE_STRINGIZE(x) MTS_PROFILE_STRINGIZE_IMPL(x)

/// Registers `label` suffixed with the registration site's file:line;
/// evaluates to site id 0 when `profiler` is null.
#define MTS_PROFILE_SITE(profiler, label)                                   \
  ((profiler) != nullptr                                                    \
       ? (profiler)->site(std::string(label) + " @" __FILE__                \
                          ":" MTS_PROFILE_STRINGIZE(__LINE__))              \
       : ::mts::sim::KernelProfiler::SiteId{0})

}  // namespace mts::sim
