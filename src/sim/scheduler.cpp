#include "sim/scheduler.hpp"

#include <string>
#include <utility>

namespace mts::sim {

void Scheduler::at(Time t, Callback cb) {
  MTS_ASSERT(t >= now_, "event scheduled in the past at t=" + std::to_string(t) +
                            " now=" + std::to_string(now_));
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void Scheduler::execute(Event& e) {
  if (e.t != now_) {
    now_ = e.t;
    events_at_now_ = 0;
  }
  if (++events_at_now_ > timestamp_budget_) {
    throw SimulationError("combinational oscillation: more than " +
                          std::to_string(timestamp_budget_) +
                          " events at t=" + format_time(now_));
  }
  e.cb();
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the callback is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  Event e = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  execute(e);
  return true;
}

void Scheduler::run_until(Time t) {
  while (!queue_.empty() && queue_.top().t <= t) {
    step();
  }
  if (now_ < t) {
    now_ = t;
    events_at_now_ = 0;
  }
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) {
    ++executed;
  }
  return executed;
}

}  // namespace mts::sim
