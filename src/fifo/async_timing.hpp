// Static cycle-time analysis for the asynchronous put interface.
//
// The 4-phase handshake loop (Fig. 3b) visits, twice per operation (set
// phase and reset phase):
//
//   put_req edge -> request broadcast to all cells -> asymmetric C-element
//   -> we buffering (W-bit latch enable load) -> acknowledge OR tree ->
//   global ack wire -> environment reaction
//
// The estimate mirrors the constructed netlist the same way the
// synchronous min_period formulas do; tests check it against the measured
// saturated handshake rate.
#pragma once

#include "fifo/config.hpp"
#include "sim/time.hpp"

namespace mts::fifo {

/// Estimated steady-state cycle time of one asynchronous put handshake.
sim::Time async_put_cycle_estimate(const FifoConfig& cfg);

/// The same quantity as a rate in MegaOps/s.
double async_put_mops_estimate(const FifoConfig& cfg);

/// Bundled-data margin of the asynchronous put interface: how much later
/// than its nominal launch instant the data may arrive at the cell's REG
/// latch and still be captured. The 4-phase protocol holds the latch
/// transparent from we+ (request broadcast -> C-element -> latch-enable
/// load) until we- (acknowledge out, request withdrawn, C-element
/// released), so the margin spans the request's full forward path plus the
/// handshake's return path. A sim::BundlingFault with data_lag beyond this
/// margin must corrupt every enqueue; below it, none (the fault suite pins
/// both sides of the threshold).
sim::Time async_put_data_margin(const FifoConfig& cfg);

}  // namespace mts::fifo
