// Width gearboxes for latency-insensitive links.
//
// A wide producer bus crossing a narrow physical link is serialized down to
// the link width in the producer's clock domain and reassembled in the
// consumer's domain. Both ends speak the library-wide LI transfer
// convention: a transfer occurs on a link at a clock edge iff the link's
// stop wire was low during the cycle ending at that edge.
//
// Chunks travel LSB-first; a word of width W over a link of width L takes
// ceil(W / L) link beats (the factor is integral by Design::check()).
#pragma once

#include <cstdint>
#include <string>

#include "gates/delay_model.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::builder {

/// Wide-to-narrow: accepts a W-bit word, emits `factor` L-bit chunks.
/// Raises stop_out while draining (one word in flight at a time), so
/// sustained throughput is one word per factor + 2 cycles.
class Serializer {
 public:
  Serializer(sim::Simulation& sim, std::string name, sim::Wire& clk,
             unsigned factor, unsigned link_width, sim::Word& in_data,
             sim::Wire& in_valid, sim::Wire& stop_out, sim::Word& out_data,
             sim::Wire& out_valid, sim::Wire& stop_in,
             const gates::DelayModel& dm);

  Serializer(const Serializer&) = delete;
  Serializer& operator=(const Serializer&) = delete;

  std::uint64_t words_in() const noexcept { return words_in_; }
  std::uint64_t chunks_out() const noexcept { return chunks_out_; }

 private:
  void on_edge();

  sim::Word& in_data_;
  sim::Wire& in_valid_;
  sim::Wire& stop_out_;
  sim::Word& out_data_;
  sim::Wire& out_valid_;
  sim::Wire& stop_in_;
  sim::Time clk_to_q_;
  unsigned factor_;
  unsigned link_width_;
  std::uint64_t chunk_mask_;

  std::uint64_t word_ = 0;
  unsigned left_ = 0;          ///< chunks still to emit
  bool prev_stop_ = false;     ///< registered stop_out we drove last edge
  std::uint64_t words_in_ = 0;
  std::uint64_t chunks_out_ = 0;
};

/// Narrow-to-wide: accumulates `factor` L-bit chunks (LSB-first) into one
/// W-bit word held in a 1-deep staging register; stop_out rises while a
/// completed word waits for the consumer.
class Deserializer {
 public:
  Deserializer(sim::Simulation& sim, std::string name, sim::Wire& clk,
               unsigned factor, unsigned link_width, sim::Word& in_data,
               sim::Wire& in_valid, sim::Wire& stop_out, sim::Word& out_data,
               sim::Wire& out_valid, sim::Wire& stop_in,
               const gates::DelayModel& dm);

  Deserializer(const Deserializer&) = delete;
  Deserializer& operator=(const Deserializer&) = delete;

  std::uint64_t chunks_in() const noexcept { return chunks_in_; }
  std::uint64_t words_out() const noexcept { return words_out_; }

 private:
  void on_edge();

  sim::Word& in_data_;
  sim::Wire& in_valid_;
  sim::Wire& stop_out_;
  sim::Word& out_data_;
  sim::Wire& out_valid_;
  sim::Wire& stop_in_;
  sim::Time clk_to_q_;
  unsigned factor_;
  unsigned link_width_;

  std::uint64_t acc_ = 0;
  unsigned got_ = 0;           ///< chunks accumulated so far
  std::uint64_t staged_ = 0;
  bool staged_full_ = false;
  bool prev_stop_ = false;
  std::uint64_t chunks_in_ = 0;
  std::uint64_t words_out_ = 0;
};

}  // namespace mts::builder
