#include "sim/trace_session.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/error.hpp"
#include "sim/report.hpp"

namespace mts::sim {

TraceSession::TrackId TraceSession::track(const std::string& name) {
  const auto it = track_index_.find(name);
  if (it != track_index_.end()) return it->second;
  const auto id = static_cast<TrackId>(tracks_.size());
  tracks_.push_back(name);
  track_index_.emplace(name, id);
  return id;
}

TraceSession::StreamId TraceSession::stream(const std::string& instance,
                                            TrackId put_track,
                                            TrackId get_track) {
  const auto it = stream_index_.find(instance);
  if (it != stream_index_.end()) return it->second;
  const auto id = static_cast<StreamId>(streams_.size());
  Stream s;
  s.instance = instance;
  s.put_track = put_track;
  s.get_track = get_track;
  streams_.push_back(std::move(s));
  stream_index_.emplace(instance, id);
  return id;
}

void TraceSession::link(StreamId upstream, StreamId downstream) {
  streams_[upstream].downstream = downstream;
  streams_[downstream].has_upstream = true;
}

void TraceSession::link(const std::string& upstream_instance,
                        const std::string& downstream_instance) {
  const auto up = stream_index_.find(upstream_instance);
  const auto down = stream_index_.find(downstream_instance);
  if (up == stream_index_.end() || down == stream_index_.end()) {
    throw ConfigError(
        "TraceSession::link: unknown instance '" +
        (up == stream_index_.end() ? upstream_instance : downstream_instance) +
        "' (was the component built before observability was armed?)");
  }
  link(up->second, down->second);
}

TraceSession::TxnId TraceSession::put_committed(StreamId s, Time t,
                                                std::uint64_t data) {
  Stream& st = streams_[s];
  TxnId id;
  if (st.has_upstream && !st.handoff.empty()) {
    id = st.handoff.front().id;
    st.handoff.pop_front();
  } else {
    id = next_txn_++;
    record(Kind::kBegin, s, t, id, data);
  }
  st.in_flight.push_back(EventRec{t, id, data, s, Kind::kPutCommitted});
  record(Kind::kPutCommitted, s, t, id, data);
  return id;
}

void TraceSession::sync_crossed(StreamId s, Time t) {
  const Stream& st = streams_[s];
  const TxnId id = st.in_flight.empty() ? 0 : st.in_flight.front().txn;
  record(Kind::kSyncCrossed, s, t, id, 0);
}

TraceSession::Departure TraceSession::get_observed(StreamId s, Time t,
                                                   std::uint64_t data) {
  Stream& st = streams_[s];
  if (st.in_flight.empty()) return Departure{};  // underflow: FIFO reports it
  const EventRec put = st.in_flight.front();
  st.in_flight.pop_front();
  record(Kind::kGetObserved, s, t, put.txn, data);
  if (st.downstream != kNone) {
    streams_[st.downstream].handoff.push_back(Departure{put.txn, put.t});
  } else {
    record(Kind::kEnd, s, t, put.txn, data);
  }
  return Departure{put.txn, put.t};
}

void TraceSession::stalled_by_stop_in(StreamId s, Time t) {
  const Stream& st = streams_[s];
  const TxnId id = st.in_flight.empty() ? 0 : st.in_flight.front().txn;
  record(Kind::kStalled, s, t, id, 0);
}

namespace {

const char* kind_name(int k) {
  switch (k) {
    case 0: return "put_committed";
    case 1: return "sync_crossed";
    case 2: return "get_observed";
    case 3: return "stalled_by_stopIn";
  }
  return "?";
}

/// Picoseconds -> the trace format's microseconds, with 1 ps resolution.
std::string ts_us(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%06llu",
                static_cast<unsigned long long>(t / 1'000'000),
                static_cast<unsigned long long>(t % 1'000'000));
  return buf;
}

}  // namespace

std::string TraceSession::to_json() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
  os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"args\": {\"name\": \"mts simulation\"}}";
  // One named thread per timing-domain track (tid 0 is reserved).
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    os << ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
       << "\"tid\": " << i + 1 << ", \"args\": {\"name\": \""
       << json_escape(tracks_[i]) << "\"}}";
  }
  for (const EventRec& e : events_) {
    const Stream& st = streams_[e.stream];
    os << ",\n  ";
    switch (e.kind) {
      case Kind::kBegin:
      case Kind::kEnd:
        // One async slice per transaction: opened at the first
        // put_committed of a fresh id, closed at the last get_observed.
        // Perfetto matches b/e pairs on (cat, id, name).
        os << "{\"name\": \"txn\", \"cat\": \"txn\", \"ph\": \""
           << (e.kind == Kind::kBegin ? 'b' : 'e') << "\", \"id\": " << e.txn
           << ", \"pid\": 1, \"tid\": "
           << (e.kind == Kind::kBegin ? st.put_track : st.get_track) + 1
           << ", \"ts\": " << ts_us(e.t) << ", \"args\": {\"instance\": \""
           << json_escape(st.instance) << "\"}}";
        break;
      default:
        os << "{\"name\": \"" << kind_name(static_cast<int>(e.kind))
           << "\", \"cat\": \"span\", \"ph\": \"i\", \"s\": \"t\", "
           << "\"pid\": 1, \"tid\": "
           << (e.kind == Kind::kPutCommitted ? st.put_track : st.get_track) + 1
           << ", \"ts\": " << ts_us(e.t) << ", \"args\": {\"txn\": " << e.txn
           << ", \"instance\": \"" << json_escape(st.instance)
           << "\", \"data\": " << e.data << "}}";
        break;
    }
  }
  if (extra_events_) os << extra_events_();
  os << "\n]}\n";
  return os.str();
}

void TraceSession::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw ConfigError("TraceSession: cannot open '" + path + "' for writing");
  }
  out << to_json();
}

}  // namespace mts::sim
