// Regenerates the Fig. 3 protocol waveforms: a synchronous put, a
// synchronous get (with its three outcome cases), and an asynchronous
// 4-phase put handshake -- rendered as ASCII waveforms and dumped as VCD
// files (fig3_sync.vcd / fig3_async.vcd) for GTKWave.
#include <cstdio>
#include <string>

#include "bfm/bfm.hpp"
#include "fifo/async_sync_fifo.hpp"
#include "fifo/interface_sides.hpp"
#include "fifo/mixed_clock_fifo.hpp"
#include "metrics/waveform.hpp"
#include "sim/trace.hpp"
#include "sync/clock.hpp"

namespace {

using namespace mts;
using metrics::AsciiWave;
using sim::Time;

void sync_protocols() {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;

  sim::Simulation sim(1);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "clk_put", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "clk_get", {gp, 4 * pp + gp / 2, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "fifo", cfg, cp.out(), cg.out());

  sim::VcdWriter vcd("fig3_sync.vcd");
  vcd.watch(cp.out(), "clk_put");
  vcd.watch(dut.req_put(), "req_put");
  vcd.watch(dut.data_put(), 8, "data_put");
  vcd.watch(dut.full(), "full");
  vcd.watch(cg.out(), "clk_get");
  vcd.watch(dut.req_get(), "req_get");
  vcd.watch(dut.data_get(), 8, "data_get");
  vcd.watch(dut.valid_get(), "valid_get");
  vcd.watch(dut.empty(), "empty");
  vcd.start();

  const Time react = cfg.dm.flop.clk_to_q + 1;
  const Time t0 = 4 * pp + 4 * pp;
  // Two puts back to back (Fig. 3a), then the receiver requests three
  // times: outcome (a) item + more available is impossible with 2 items
  // and the anticipating detector, so we see (b) item + empty and (c) no
  // item (Fig. 3c cases).
  for (int k = 0; k < 2; ++k) {
    sim.sched().at(t0 + static_cast<Time>(k) * pp + react, [&dut, k] {
      dut.data_put().set(0x41 + static_cast<std::uint64_t>(k));
      dut.req_put().set(true);
    });
  }
  sim.sched().at(t0 + 2 * pp + react, [&dut] { dut.req_put().set(false); });
  sim.sched().at(t0 + 4 * pp, [&dut] { dut.req_get().set(true); });

  AsciiWave wave(sim, t0 - pp, pp / 8, 120);
  wave.watch("clk_put", cp.out());
  wave.watch("req_put", dut.req_put());
  wave.watch("full", dut.full());
  wave.watch("clk_get", cg.out());
  wave.watch("req_get", dut.req_get());
  wave.watch("valid_get", dut.valid_get());
  wave.watch("empty", dut.empty());
  wave.arm();

  sim.run_until(t0 + 16 * pp);
  std::printf("Fig. 3a/3c -- synchronous put and get protocols "
              "(mixed-clock FIFO, %llu ps/char; VCD: fig3_sync.vcd)\n",
              static_cast<unsigned long long>(pp / 8));
  std::fputs(wave.render().c_str(), stdout);
  std::printf("\n");
}

void async_protocol() {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;

  sim::Simulation sim(1);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cg(sim, "clk_get", {gp, 4 * gp, 0.5, 0});
  fifo::AsyncSyncFifo dut(sim, "fifo", cfg, cg.out());
  bfm::AsyncPutDriver put(sim, "put", dut.put_req(), dut.put_ack(),
                          dut.put_data(), cfg.dm, 2 * gp, 0xFF, nullptr);

  sim::VcdWriter vcd("fig3_async.vcd");
  vcd.watch(dut.put_req(), "put_req");
  vcd.watch(dut.put_ack(), "put_ack");
  vcd.watch(dut.put_data(), 8, "put_data");
  vcd.start();

  AsciiWave wave(sim, 1, gp / 16, 120);
  wave.watch("put_req", dut.put_req());
  wave.watch("put_ack", dut.put_ack());
  wave.arm();

  sim.run_until(10 * gp);
  std::printf("Fig. 3b -- asynchronous 4-phase bundled-data put protocol "
              "(req+/ack+ ... req-/ack-; VCD: fig3_async.vcd)\n");
  std::fputs(wave.render().c_str(), stdout);
}

}  // namespace

int main() {
  sync_protocols();
  async_protocol();
  return 0;
}
