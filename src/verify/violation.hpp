// Structured protocol-violation records (the monitor framework's currency).
//
// A runtime checker that catches a broken paper invariant -- a corrupted
// token ring, an inconsistent detector, a bundled-data hazard -- does not
// decide policy. It fills in a Violation (sim time, site, invariant,
// transaction id, observed vs expected) and hands it to the verify::Hub,
// which records, counts or throws according to the armed severity policy
// (see verify/hub.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "sim/error.hpp"
#include "sim/report.hpp"
#include "sim/time.hpp"

namespace mts::verify {

/// The paper invariants the monitors assert (Sections 3-5), plus the run
/// liveness classes diagnosed by sim::Watchdog.
enum class Invariant {
  kTokenRing,            ///< != 1 circulating put/get token (Section 3.1)
  kFullDetector,         ///< full/oe raw output vs true cell state (Fig. 6a)
  kEmptyDetector,        ///< ne/oe raw output vs true cell state (Fig. 6b/c)
  kOverflow,             ///< put reached the data array of a full cell
  kUnderflow,            ///< get reached the data array of an empty cell
  kHandshakeOrder,       ///< 4-phase req/ack edge out of sequence (Fig. 3b)
  kBundledData,          ///< data moved inside the bundled window (Section 4)
  kPacketOrder,          ///< item left out of FIFO order (loss/dup/reorder)
  kPacketSpurious,       ///< item left with nothing in flight
  kMetastabilityEscape,  ///< unresolved metastability past the final stage
  kClockPeriod,          ///< generated period beyond the configured envelope
  kDeadlock,             ///< queue drained with transactions in flight
  kLivelock,             ///< events executing, zero token movement
};

/// Stable short name ("token-ring", "bundled-data", ...): used as metric /
/// report keys, so renaming one is a breaking change for dashboards.
inline const char* invariant_name(Invariant inv) noexcept {
  switch (inv) {
    case Invariant::kTokenRing: return "token-ring";
    case Invariant::kFullDetector: return "full-detector";
    case Invariant::kEmptyDetector: return "empty-detector";
    case Invariant::kOverflow: return "overflow";
    case Invariant::kUnderflow: return "underflow";
    case Invariant::kHandshakeOrder: return "handshake-order";
    case Invariant::kBundledData: return "bundled-data";
    case Invariant::kPacketOrder: return "packet-order";
    case Invariant::kPacketSpurious: return "packet-spurious";
    case Invariant::kMetastabilityEscape: return "meta-escape";
    case Invariant::kClockPeriod: return "clock-period";
    case Invariant::kDeadlock: return "deadlock";
    case Invariant::kLivelock: return "livelock";
  }
  return "unknown";
}

/// One caught violation: everything a repro needs, no policy attached.
struct Violation {
  sim::Time time = 0;          ///< sim time of detection
  Invariant invariant = Invariant::kTokenRing;
  std::string site;            ///< instance prefix or wire ("fig3.ptok")
  std::uint64_t txn = 0;       ///< TraceSession txn id when known, else 0
  std::string observed;        ///< what the monitor read
  std::string expected;        ///< what the invariant requires

  /// One-line human form: "t=12.3ns token-ring @ fig3.ptok: observed 2
  /// tokens, expected exactly 1 circulating token [txn 7]".
  std::string to_string() const {
    std::string s = "t=" + sim::format_time(time) + " " +
                    invariant_name(invariant) + " @ " + site + ": observed " +
                    observed + ", expected " + expected;
    if (txn != 0) s += " [txn " + std::to_string(txn) + "]";
    return s;
  }

  /// JSON object form (embedded in hub logs and campaign repro bundles).
  std::string to_json() const {
    std::string s = "{\"t\": " + std::to_string(time) + ", \"invariant\": \"" +
                    invariant_name(invariant) + "\", \"site\": \"" +
                    sim::json_escape(site) + "\"";
    if (txn != 0) s += ", \"txn\": " + std::to_string(txn);
    s += ", \"observed\": \"" + sim::json_escape(observed) +
         "\", \"expected\": \"" + sim::json_escape(expected) + "\"}";
    return s;
  }
};

/// What the hub does with a reported violation.
enum class Policy {
  kRecord,  ///< keep the full Violation in the log + Report, continue
  kCount,   ///< count (metrics/per-invariant totals) only, continue
  kThrow,   ///< record, then throw ProtocolViolationError
};

/// Thrown by the hub under Policy::kThrow. Carries the violation that
/// triggered it so campaign supervision can classify and bundle it.
class ProtocolViolationError : public SimulationError {
 public:
  explicit ProtocolViolationError(Violation v)
      : SimulationError("protocol violation: " + v.to_string()),
        violation_(std::move(v)) {}

  const Violation& violation() const noexcept { return violation_; }

 private:
  Violation violation_;
};

}  // namespace mts::verify
