// Reusable synchronous interface sides.
//
// The paper's components outside the cell array -- detectors, synchronizers
// and external controllers -- are shared verbatim between designs: the
// async-sync FIFO "reuses components from the mixed-clock design. In
// particular, the external get controller and empty detector are
// unchanged". These classes are those shared blocks.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "fifo/config.hpp"
#include "gates/netlist.hpp"
#include "gates/timing.hpp"
#include "sim/signal.hpp"

namespace mts::fifo {

/// One element of a critical-path breakdown: a named delay contribution.
/// The sum of a breakdown's delays equals the corresponding min_period.
struct PathElement {
  std::string name;
  sim::Time delay = 0;
};
using PathBreakdown = std::vector<PathElement>;

/// Total delay of a breakdown.
sim::Time path_total(const PathBreakdown& path);

/// Full detector + synchronizer + put controller + en_put broadcast
/// (Figs. 6a, 7a, 13a).
class SyncPutSide {
 public:
  /// `e` holds every cell's e_i wire in ring order. Drives the pre-created
  /// `en_put_b` broadcast wire; `req_put` is the external request (FIFO
  /// mode) / validity (relay-station mode) input.
  SyncPutSide(gates::Netlist& nl, sim::Wire& clk_put, const FifoConfig& cfg,
              gates::TimingDomain& domain, const std::vector<sim::Wire*>& e,
              sim::Wire& req_put, sim::Wire& en_put_b);

  /// Synchronized full flag (external `full` / relay-station stopOut).
  sim::Wire& full_ext() const noexcept { return *full_ext_; }
  sim::Wire& full_raw() const noexcept { return *full_raw_; }

  /// Static minimum CLK_put period for this side's critical loop.
  static sim::Time min_period(const FifoConfig& cfg);

  /// Element-by-element breakdown of the same loop (datasheet view);
  /// path_total(describe_min_period(cfg)) == min_period(cfg).
  static PathBreakdown describe_min_period(const FifoConfig& cfg);

 private:
  sim::Wire* full_raw_ = nullptr;
  sim::Wire* full_ext_ = nullptr;
};

/// Bi-modal empty detector + synchronizers + get controller + en_get
/// broadcast + external validity gating (Figs. 6b-c, 7b, 13b, 16).
class SyncGetSide {
 public:
  /// `f` holds every cell's f_i wire in ring order. Drives the pre-created
  /// `empty_w`, `valid_ext` and `en_get_b` wires.
  SyncGetSide(gates::Netlist& nl, sim::Wire& clk_get, const FifoConfig& cfg,
              gates::TimingDomain& domain, const std::vector<sim::Wire*>& f,
              sim::Wire& req_get, sim::Wire& stop_in, sim::Wire& valid_bus,
              sim::Wire& valid_ext, sim::Wire& empty_w, sim::Wire& en_get_b);

  sim::Wire& ne_raw() const noexcept { return *ne_raw_; }
  sim::Wire& oe_raw() const noexcept { return *oe_raw_; }

  /// Static minimum CLK_get period: max of the empty-detector loop and the
  /// tri-state read path to the receiver's sampling flop.
  static sim::Time min_period(const FifoConfig& cfg);

  /// Breakdown of whichever get path dominates;
  /// path_total(describe_min_period(cfg)) == min_period(cfg).
  static PathBreakdown describe_min_period(const FifoConfig& cfg);

 private:
  sim::Wire* ne_raw_ = nullptr;
  sim::Wire* oe_raw_ = nullptr;
};

}  // namespace mts::fifo
