#include "campaignd/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#include <fcntl.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace mts::campaignd {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

/// Coordinator sockets must not leak into fork/exec'd workers: a worker
/// holding a copy of another worker's connection would keep it half-open
/// past that worker's death and mask the EOF the coordinator relies on.
void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc == -1 && errno == EINTR);
    fd_ = -1;
  }
}

Listener listen_local(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket");
  set_cloexec(fd.get());
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) == -1) {
    fail_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) == -1) fail_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) ==
      -1) {
    fail_errno("getsockname");
  }
  Listener out;
  out.fd = std::move(fd);
  out.port = ntohs(bound.sin_port);
  return out;
}

Fd accept_conn(const Fd& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) {
      set_cloexec(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Fd(fd);
    }
    if (errno == EINTR) continue;
    fail_errno("accept");
  }
}

Fd connect_local(std::uint16_t port, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) fail_errno("socket");
    set_cloexec(fd.get());
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    int rc;
    do {
      rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr);
    } while (rc == -1 && errno == EINTR);
    if (rc == 0) {
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      fail_errno("connect 127.0.0.1:" + std::to_string(port));
    }
    // The listener may not be up yet (spawn race); back off briefly.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void send_all(const Fd& fd, const std::string& buf) {
  std::size_t sent = 0;
  while (sent < buf.size()) {
    const ssize_t n = ::send(fd.get(), buf.data() + sent, buf.size() - sent,
                             MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    fail_errno("send");
  }
}

std::size_t recv_some(const Fd& fd, char* buf, std::size_t cap) {
  for (;;) {
    const ssize_t n = ::recv(fd.get(), buf, cap, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    fail_errno("recv");
  }
}

}  // namespace mts::campaignd
