#include "sim/report.hpp"

#include <gtest/gtest.h>

#include "sim/signal.hpp"

namespace mts::sim {
namespace {

TEST(Report, CountsBySeverityAndCategory) {
  Report r;
  r.add(10, Severity::kInfo, "note", "hello");
  r.add(20, Severity::kViolation, "setup", "flop x");
  r.add(30, Severity::kError, "scoreboard", "mismatch");
  r.add(40, Severity::kWarning, "setup", "marginal");
  EXPECT_EQ(r.failure_count(), 2u);
  EXPECT_EQ(r.count("setup"), 2u);
  EXPECT_EQ(r.count("scoreboard"), 1u);
  EXPECT_EQ(r.count("absent"), 0u);
  EXPECT_EQ(r.entries().size(), 4u);
}

TEST(Report, ClearResetsEverything) {
  Report r;
  r.add(1, Severity::kError, "x", "y");
  r.clear();
  EXPECT_EQ(r.failure_count(), 0u);
  EXPECT_EQ(r.count("x"), 0u);
  EXPECT_TRUE(r.entries().empty());
}

TEST(Report, EntryCapBoundsStorageButNotCounters) {
  Report r;
  r.set_max_entries(3);
  for (int i = 0; i < 10; ++i) r.add(1, Severity::kError, "cat", "m");
  EXPECT_EQ(r.entries().size(), 3u);
  EXPECT_EQ(r.count("cat"), 10u);
  EXPECT_EQ(r.failure_count(), 10u);
}

TEST(Report, EntriesPreserveFields) {
  Report r;
  r.add(123, Severity::kViolation, "hold", "flop q");
  const ReportEntry& e = r.entries().front();
  EXPECT_EQ(e.time, 123u);
  EXPECT_EQ(e.severity, Severity::kViolation);
  EXPECT_EQ(e.category, "hold");
  EXPECT_EQ(e.message, "flop q");
}

TEST(Report, SurfacesKernelStatsAfterRun) {
  Simulation sim;
  Wire w(sim, "w");
  for (int i = 0; i < 5; ++i) {
    w.write((i % 2) == 0, static_cast<Time>(i + 1), DelayKind::kTransport);
  }
  sim.run();
  const KernelStats& ks = sim.report().kernel();
  EXPECT_EQ(ks.events_executed, 5u);
  EXPECT_GE(ks.peak_queue_depth, 5u);
  EXPECT_GT(ks.pool_high_water, 0u);
}

TEST(Report, ClearResetsKernelStats) {
  Report r;
  KernelStats ks;
  ks.events_executed = 7;
  r.set_kernel(ks);
  EXPECT_EQ(r.kernel().events_executed, 7u);
  r.clear();
  EXPECT_EQ(r.kernel().events_executed, 0u);
}

}  // namespace
}  // namespace mts::sim
