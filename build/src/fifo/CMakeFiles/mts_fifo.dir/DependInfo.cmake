
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fifo/area.cpp" "src/fifo/CMakeFiles/mts_fifo.dir/area.cpp.o" "gcc" "src/fifo/CMakeFiles/mts_fifo.dir/area.cpp.o.d"
  "/root/repo/src/fifo/async_async_fifo.cpp" "src/fifo/CMakeFiles/mts_fifo.dir/async_async_fifo.cpp.o" "gcc" "src/fifo/CMakeFiles/mts_fifo.dir/async_async_fifo.cpp.o.d"
  "/root/repo/src/fifo/async_sync_fifo.cpp" "src/fifo/CMakeFiles/mts_fifo.dir/async_sync_fifo.cpp.o" "gcc" "src/fifo/CMakeFiles/mts_fifo.dir/async_sync_fifo.cpp.o.d"
  "/root/repo/src/fifo/async_timing.cpp" "src/fifo/CMakeFiles/mts_fifo.dir/async_timing.cpp.o" "gcc" "src/fifo/CMakeFiles/mts_fifo.dir/async_timing.cpp.o.d"
  "/root/repo/src/fifo/baseline_shift_fifo.cpp" "src/fifo/CMakeFiles/mts_fifo.dir/baseline_shift_fifo.cpp.o" "gcc" "src/fifo/CMakeFiles/mts_fifo.dir/baseline_shift_fifo.cpp.o.d"
  "/root/repo/src/fifo/cell_parts.cpp" "src/fifo/CMakeFiles/mts_fifo.dir/cell_parts.cpp.o" "gcc" "src/fifo/CMakeFiles/mts_fifo.dir/cell_parts.cpp.o.d"
  "/root/repo/src/fifo/config.cpp" "src/fifo/CMakeFiles/mts_fifo.dir/config.cpp.o" "gcc" "src/fifo/CMakeFiles/mts_fifo.dir/config.cpp.o.d"
  "/root/repo/src/fifo/detectors.cpp" "src/fifo/CMakeFiles/mts_fifo.dir/detectors.cpp.o" "gcc" "src/fifo/CMakeFiles/mts_fifo.dir/detectors.cpp.o.d"
  "/root/repo/src/fifo/interface_sides.cpp" "src/fifo/CMakeFiles/mts_fifo.dir/interface_sides.cpp.o" "gcc" "src/fifo/CMakeFiles/mts_fifo.dir/interface_sides.cpp.o.d"
  "/root/repo/src/fifo/mixed_clock_fifo.cpp" "src/fifo/CMakeFiles/mts_fifo.dir/mixed_clock_fifo.cpp.o" "gcc" "src/fifo/CMakeFiles/mts_fifo.dir/mixed_clock_fifo.cpp.o.d"
  "/root/repo/src/fifo/sync_async_fifo.cpp" "src/fifo/CMakeFiles/mts_fifo.dir/sync_async_fifo.cpp.o" "gcc" "src/fifo/CMakeFiles/mts_fifo.dir/sync_async_fifo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/mts_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/mts_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/mts_ctrl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
