// Asynchronous relay stations: a micropipeline FIFO (Sutherland [15]).
//
// Section 5.3: "A chain of asynchronous relay stations can be directly
// implemented by using a standard asynchronous FIFO called a micropipeline.
// Unlike the synchronous data packets, the asynchronous ones do not need a
// validity bit: the presence of valid data packets is signaled on the
// control wires and an ARS can wait indefinitely between receiving data
// packets."
//
// Each stage is a 4-phase bundled-data full buffer: it captures a packet
// when empty, acknowledges its sender, and forwards the packet downstream
// as soon as the downstream handshake is idle; input and output handshakes
// overlap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gates/delay_model.hpp"
#include "gates/netlist.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"

namespace mts::lip {

/// One micropipeline stage. All six interface wires are caller-owned.
class MicropipelineStage {
 public:
  MicropipelineStage(sim::Simulation& sim, std::string name, sim::Wire& req_in,
                     sim::Wire& ack_in, sim::Word& data_in, sim::Wire& req_out,
                     sim::Wire& ack_out, sim::Word& data_out,
                     const gates::DelayModel& dm);

  MicropipelineStage(const MicropipelineStage&) = delete;
  MicropipelineStage& operator=(const MicropipelineStage&) = delete;

  bool full() const noexcept { return full_; }

 private:
  enum class OutPhase { kIdle, kReqHigh, kResetting };

  void try_capture();
  void try_send();

  std::string name_;
  sim::Wire& req_in_;
  sim::Wire& ack_in_;
  sim::Word& data_in_;
  sim::Wire& req_out_;
  sim::Wire& ack_out_;
  sim::Word& data_out_;

  sim::Time d_latch_;
  sim::Time d_ctl_;
  sim::Time d_data_;
  sim::Time d_bundle_;

  bool full_ = false;
  bool input_waiting_ = false;
  OutPhase out_phase_ = OutPhase::kIdle;
  std::uint64_t latched_ = 0;
};

/// A chain of micropipeline stages acting as the asynchronous relay-station
/// segment of Fig. 14. Boundary wires are caller-owned; intermediate link
/// wires live in the chain's netlist.
class Micropipeline {
 public:
  Micropipeline(sim::Simulation& sim, const std::string& name, unsigned stages,
                sim::Wire& in_req, sim::Wire& in_ack, sim::Word& in_data,
                sim::Wire& out_req, sim::Wire& out_ack, sim::Word& out_data,
                const gates::DelayModel& dm);

  Micropipeline(const Micropipeline&) = delete;
  Micropipeline& operator=(const Micropipeline&) = delete;

  unsigned stages() const noexcept { return n_; }
  /// Number of stages currently holding a packet, for tests.
  unsigned occupancy() const;

 private:
  gates::Netlist nl_;
  unsigned n_;
  std::vector<MicropipelineStage*> stages_;
};

}  // namespace mts::lip
