// StateStore interning and RingState packing round-trips.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "mc/ring_model.hpp"
#include "mc/state_store.hpp"

namespace mts::mc {
namespace {

TEST(StateStore, InternsAndDeduplicates) {
  StateStore store(4);
  const std::uint8_t a[4] = {1, 2, 3, 4};
  const std::uint8_t b[4] = {1, 2, 3, 5};
  auto [ida, newa] = store.intern(a);
  EXPECT_TRUE(newa);
  EXPECT_EQ(ida, 0u);
  auto [idb, newb] = store.intern(b);
  EXPECT_TRUE(newb);
  EXPECT_EQ(idb, 1u);
  auto [ida2, newa2] = store.intern(a);
  EXPECT_FALSE(newa2);
  EXPECT_EQ(ida2, 0u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(0, std::memcmp(store.bytes(0), a, 4));
  EXPECT_EQ(0, std::memcmp(store.bytes(1), b, 4));
}

TEST(StateStore, SurvivesTableGrowth) {
  // Push past the initial 1<<16 table's 3/4 load factor so grow() rehashes,
  // then verify every id still resolves to its own record.
  StateStore store(8);
  std::uint8_t rec[8] = {0};
  const std::uint32_t n = 80'000;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::memcpy(rec, &i, sizeof i);
    auto [id, inserted] = store.intern(rec);
    ASSERT_TRUE(inserted);
    ASSERT_EQ(id, i);
  }
  EXPECT_EQ(store.size(), n);
  for (std::uint32_t i = 0; i < n; i += 977) {
    std::memcpy(rec, &i, sizeof i);
    auto [id, inserted] = store.intern(rec);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(id, i);
  }
}

TEST(StateStore, FnvIsStable) {
  // Pin the FNV-1a constants: ids (and therefore counterexample JSON)
  // depend on this function never changing.
  const std::uint8_t data[3] = {'m', 't', 's'};
  EXPECT_EQ(fnv64(data, 0), 0xCBF2'9CE4'8422'2325ull);
  EXPECT_NE(fnv64(data, 3), fnv64(data, 2));
}

TEST(RingStatePacking, RoundTripsInitialState) {
  const RingModel model(default_ring(4));
  const RingState s = model.initial();
  std::vector<std::uint8_t> rec(model.record_size());
  model.pack(s, rec.data());
  const RingState back = model.unpack(rec.data());
  EXPECT_EQ(back.wires, s.wires);
  EXPECT_EQ(back.queue, s.queue);
  for (unsigned k = 0; k < 4; ++k) {
    EXPECT_TRUE(back.opt[k] == s.opt[k]);
    EXPECT_TRUE(back.ogt[k] == s.ogt[k]);
    EXPECT_EQ(back.dv[k], s.dv[k]);
  }
}

TEST(RingStatePacking, RoundTripsExploredStates) {
  // Walk a few macro steps and round-trip every intermediate micro state.
  const RingModel model(default_ring(4));
  RingState s = model.initial();
  std::vector<std::uint8_t> rec(model.record_size());
  const ActionKind script[] = {ActionKind::kPutReqUp, ActionKind::kPutReqDown,
                               ActionKind::kGetReqUp, ActionKind::kGetReqDown,
                               ActionKind::kPutReqUp};
  for (ActionKind a : script) {
    RingState next;
    ASSERT_TRUE(model.apply(s, a, &next).violations.empty());
    s = std::move(next);
    while (!s.queue.empty()) {
      model.pack(s, rec.data());
      const RingState back = model.unpack(rec.data());
      ASSERT_EQ(back.wires, s.wires);
      ASSERT_EQ(back.queue, s.queue);
      RingState drained;
      ASSERT_TRUE(
          model.apply(s, ActionKind::kCommit, &drained).violations.empty());
      s = std::move(drained);
    }
  }
}

}  // namespace
}  // namespace mts::mc
