// Parameterized topology generators over the declarative builder: a 2D-mesh
// latency-insensitive NoC (XY routing, per-column clock domains) and a
// multi-drop shared bus (round-robin arbitration, one domain per endpoint).
//
// Both return a plain builder::Design -- elaborate it onto any Simulation.
// Every east-west mesh link and every bus attachment crosses clock domains,
// so the generated systems exercise the paper's MCRS crossing at scale with
// self-checking tagged traffic (traffic.hpp). The *_sweep_cell helpers
// decode a sim::Campaign config index into a parameter set, making topology
// shape a campaign axis.
#pragma once

#include <cstddef>
#include <string>

#include "builder/design.hpp"
#include "sim/time.hpp"

namespace mts::builder {

struct MeshParams {
  unsigned cols = 2;
  unsigned rows = 2;
  unsigned width = 32;          ///< port width (>= 24: tagged packets)
  unsigned link_capacity = 4;   ///< CDC FIFO capacity on east-west links
  unsigned router_queue = 4;    ///< per-input router queue depth
  unsigned ns_latency = 1;      ///< relay stations on north-south links
  double inject_rate = 0.3;     ///< per-cycle packet probability per source
  double stall_rate = 0.1;      ///< per-cycle sink stall probability
  unsigned sync_depth = 2;      ///< synchronizer depth of inserted CDCs
  bool per_column_domains = true;  ///< false: one clock for the whole mesh
  sim::Time base_period = 0;    ///< 0: derived from the FIFO min periods
};

/// Mesh address of router (x, y), as carried in tagged packets.
inline unsigned mesh_address(unsigned x, unsigned y) {
  return (x << 4) | (y & 0xF);
}

/// cols x rows mesh: routers "r<x>_<y>", one tagged source "src<x>_<y>" and
/// sink "snk<x>_<y>" per local port, every source addressing every router.
Design make_mesh_noc(const MeshParams& p);

struct BusParams {
  unsigned producers = 3;
  unsigned consumers = 2;
  unsigned width = 32;
  unsigned link_capacity = 4;
  double inject_rate = 0.4;
  double stall_rate = 0.1;
  unsigned sync_depth = 2;
  sim::Time base_period = 0;
};

/// Shared bus "bus" in its own domain; producers "p<i>" and consumers
/// "c<j>" each in a detuned domain of their own, attached through
/// mixed-clock links. Tagged packet dest = consumer index.
Design make_shared_bus(const BusParams& p);

// --- campaign sweep axes -------------------------------------------------

/// Mesh shape x synchronizer depth matrix for sim::Campaign(configs, ...).
std::size_t mesh_sweep_size();
MeshParams mesh_sweep_cell(std::size_t config);
std::string mesh_sweep_label(std::size_t config);

/// Producer count x synchronizer depth matrix.
std::size_t bus_sweep_size();
BusParams bus_sweep_cell(std::size_t config);
std::string bus_sweep_label(std::size_t config);

}  // namespace mts::builder
