// Elaboration end to end: small declarative designs lowered onto a live
// Simulation and RUN, checking that the inserted mixed-timing machinery
// actually moves tokens, that the generated checkers share scoreboards
// correctly, and that the handle/counter/watchdog surface behaves.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "builder/builder.hpp"
#include "fifo/interface_sides.hpp"
#include "metrics/registry.hpp"
#include "sim/error.hpp"
#include "sim/observe.hpp"
#include "sim/watchdog.hpp"

namespace mts {
namespace {

using builder::Design;
using builder::DomainId;
using builder::EdgeId;
using builder::LinkOptions;
using builder::NodeId;
using builder::Primitive;
using sim::Time;

/// A safe clock period for links built from `capacity` x `width` FIFOs.
Time safe_period(unsigned capacity, unsigned width) {
  fifo::FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = width;
  return 2 * std::max(fifo::SyncPutSide::min_period(cfg),
                      fifo::SyncGetSide::min_period(cfg));
}

TEST(BuilderElaborate, SameDomainRelayChainRunsClean) {
  sim::Simulation sim(7);
  const Time p = safe_period(8, 8);

  Design d("chain");
  const DomainId c = d.domain("clk", {p, 4 * p, 0.5, 0});
  const NodeId src = d.source("src", Design::sync_out("out", c, 8));
  const NodeId snk = d.sink("snk", Design::sync_in("in", c, 8));
  LinkOptions opt;
  opt.latency_left = 2;
  const EdgeId e = d.connect(src, "out", snk, "in", opt, "wire");
  auto elab = builder::elaborate(sim, d);

  ASSERT_NE(elab->edge(e).chain, nullptr);
  ASSERT_EQ(elab->edge(e).primitive, Primitive::kSrsChain);
  ASSERT_EQ(elab->inserted().size(), 1u);
  EXPECT_EQ(elab->inserted()[0].kind, Primitive::kSrsChain);
  EXPECT_EQ(elab->inserted()[0].instance, "wire");

  sim.run_until(4 * p + 400 * p);
  EXPECT_GT(elab->source_sent(src), 300u);
  EXPECT_EQ(elab->sink_received(snk), elab->total_received());
  EXPECT_GT(elab->sink_received(snk), 300u);
  // The sink checks the SOURCE's scoreboard: one shared expectation queue.
  EXPECT_EQ(&elab->scoreboard(src), &elab->scoreboard(snk));
  EXPECT_EQ(elab->total_order_violations(), 0u);
}

TEST(BuilderElaborate, CrossDomainEdgeInsertsMixedClockLink) {
  sim::Simulation sim(9);
  const Time p = safe_period(4, 8);

  Design d("cdc");
  const DomainId a = d.domain("fast", {p, 4 * p, 0.5, 0});
  const DomainId b = d.domain("slow", {p * 13 / 8, 4 * p + 137, 0.5, 0});
  const NodeId src = d.source("src", Design::sync_out("out", a, 8));
  const NodeId snk =
      d.sink("snk", Design::sync_in("in", b, 8), {/*stall_rate=*/0.1});
  LinkOptions opt;
  opt.capacity = 4;
  opt.latency_left = 1;
  opt.latency_right = 1;
  const EdgeId e = d.connect(src, "out", snk, "in", opt, "cdc0");
  auto elab = builder::elaborate(sim, d);

  ASSERT_NE(elab->edge(e).mc_link, nullptr);
  EXPECT_EQ(elab->edge(e).primitive, Primitive::kMixedClockFifo);

  sim.run_until(4 * p + 600 * p);
  EXPECT_GT(elab->sink_received(snk), 200u);
  EXPECT_EQ(elab->total_order_violations(), 0u);
  // Back-pressure, not loss: everything sent is delivered or in flight.
  EXPECT_LE(elab->sink_received(snk), elab->source_sent(src));
  EXPECT_LT(elab->source_sent(src) - elab->sink_received(snk), 16u);
}

TEST(BuilderElaborate, GearboxRoundTripPreservesWideValues) {
  sim::Simulation sim(5);
  const Time p = safe_period(8, 8);

  // 32-bit producer and consumer over an 8-bit link: the elaborator must
  // insert a 4:1 serializer and a 1:4 deserializer, and the scoreboard
  // proves every 32-bit value survives the trip bit-exactly.
  Design d("gear");
  const DomainId c = d.domain("clk", {p, 4 * p, 0.5, 0});
  const NodeId src = d.source(
      "src", Design::sync_out("out", c, 32),
      {/*rate=*/0.2, /*gap=*/0, /*mask=*/0xFFFFFFFFull});
  const NodeId snk = d.sink("snk", Design::sync_in("in", c, 32));
  LinkOptions opt;
  opt.link_width = 8;
  const EdgeId e = d.connect(src, "out", snk, "in", opt, "narrow");
  auto elab = builder::elaborate(sim, d);

  ASSERT_NE(elab->edge(e).ser, nullptr);
  ASSERT_NE(elab->edge(e).deser, nullptr);
  ASSERT_EQ(elab->inserted().size(), 3u);  // core + ser + deser
  EXPECT_EQ(elab->inserted()[1].instance, "narrow.ser");
  EXPECT_EQ(elab->inserted()[2].instance, "narrow.deser");

  sim.run_until(4 * p + 1200 * p);
  EXPECT_GT(elab->sink_received(snk), 100u);
  EXPECT_EQ(elab->total_order_violations(), 0u);
}

TEST(BuilderElaborate, AsyncEdgeBecomesMicropipeline) {
  sim::Simulation sim(3);

  Design d("pipe");
  const NodeId src = d.source("src", Design::async_out("out", 8),
                              {1.0, /*gap=*/2000, 0xFF});
  const NodeId snk =
      d.sink("snk", Design::async_in("in", 8), {0.0, /*gap=*/500});
  LinkOptions opt;
  opt.latency_left = 3;
  const EdgeId e = d.connect(src, "out", snk, "in", opt, "ars");
  auto elab = builder::elaborate(sim, d);

  ASSERT_NE(elab->edge(e).pipe, nullptr);
  EXPECT_EQ(elab->edge(e).primitive, Primitive::kMicropipeline);
  ASSERT_NE(elab->node(src).async_put, nullptr);
  // A micropipeline output is push-style: the sink answers the pipeline's
  // req rather than pulling like a FIFO get-port consumer.
  ASSERT_NE(elab->node(snk).async_ack, nullptr);
  EXPECT_EQ(elab->node(snk).async_get, nullptr);

  sim.run_until(800'000);
  EXPECT_GT(elab->sink_received(snk), 100u);
  EXPECT_EQ(elab->total_order_violations(), 0u);
}

TEST(BuilderElaborate, SyncToAsyncEdgeGluesThroughSyncAsyncFifo) {
  sim::Simulation sim(13);
  const Time p = safe_period(4, 8);

  Design d("s2a");
  const DomainId c = d.domain("clk", {p, 4 * p, 0.5, 0});
  const NodeId src =
      d.source("src", Design::sync_out("out", c, 8), {0.5, 0, 0xFF});
  const NodeId snk =
      d.sink("snk", Design::async_in("in", 8), {0.0, /*gap=*/p});
  LinkOptions opt;
  opt.capacity = 4;
  opt.latency_left = 1;  // an SRS segment feeding the FIFO's LI glue
  const EdgeId e = d.connect(src, "out", snk, "in", opt, "bridge");
  auto elab = builder::elaborate(sim, d);

  ASSERT_NE(elab->edge(e).sa_fifo, nullptr);
  ASSERT_NE(elab->edge(e).chain, nullptr);  // the latency_left segment
  EXPECT_EQ(elab->edge(e).primitive, Primitive::kSyncAsyncFifo);

  sim.run_until(4 * p + 900 * p);
  EXPECT_GT(elab->sink_received(snk), 150u);
  EXPECT_EQ(elab->total_order_violations(), 0u);
}

TEST(BuilderElaborate, ExternalHandlesMatchEndpointStyles) {
  sim::Simulation sim(1);
  const Time p = safe_period(4, 8);

  Design d("handles");
  const DomainId a = d.domain("put_clk", {p, 4 * p, 0.5, 0});
  const DomainId b = d.domain("get_clk", {p * 11 / 8, 4 * p, 0.5, 0});
  const NodeId prod = d.external("prod", {Design::sync_out("out", a, 8)});
  const NodeId cons = d.external("cons", {Design::sync_in("in", b, 8)});
  LinkOptions opt;
  opt.capacity = 4;
  opt.controller = fifo::ControllerKind::kFifo;
  const EdgeId e = d.connect(prod, "out", cons, "in", opt, "fifo");
  auto elab = builder::elaborate(sim, d);

  ASSERT_NE(elab->edge(e).mc_fifo, nullptr);
  const builder::SyncFifoPut put = elab->fifo_put(prod, "out");
  const builder::SyncFifoGet get = elab->fifo_get(cons, "in");
  EXPECT_EQ(put.req_put, &elab->edge(e).mc_fifo->req_put());
  EXPECT_EQ(get.valid_get, &elab->edge(e).mc_fifo->valid_get());

  // Style mismatches are named ConfigErrors, not null pointers.
  EXPECT_THROW((void)elab->li_port(prod, "out"), ConfigError);
  EXPECT_THROW((void)elab->handshake_port(cons, "in"), ConfigError);
  // Tagged-free generated traffic owns scoreboards; externals do not.
  EXPECT_THROW((void)elab->scoreboard(prod), ConfigError);
}

TEST(BuilderElaborate, ObservabilityGaugesAndWatchdogProbe) {
  sim::Simulation sim(17);
  metrics::Registry registry;
  sim::Observability obs;
  obs.metrics = &registry;
  obs.arm(sim);

  const Time p = safe_period(4, 8);
  Design d("watched");
  const DomainId a = d.domain("fast", {p, 4 * p, 0.5, 0});
  const DomainId b = d.domain("slow", {p * 13 / 8, 4 * p + 97, 0.5, 0});
  const NodeId src = d.source("src", Design::sync_out("out", a, 8));
  const NodeId snk = d.sink("snk", Design::sync_in("in", b, 8));
  LinkOptions opt;
  opt.capacity = 4;
  d.connect(src, "out", snk, "in", opt);
  auto elab = builder::elaborate(sim, d);

  const metrics::Gauge* nodes = registry.find_gauge("builder.watched", "nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_EQ(nodes->value(), 2.0);
  const metrics::Gauge* ins = registry.find_gauge("builder.watched", "inserted");
  ASSERT_NE(ins, nullptr);
  EXPECT_EQ(ins->value(), 1.0);

  // A healthy elaborated design never trips the end-to-end probe.
  sim::WatchdogConfig wcfg;
  wcfg.progress_window = 200 * p;
  wcfg.poll_interval_events = 512;
  sim::Watchdog wd(wcfg);
  elab->arm_watchdog(wd);
  wd.arm(sim);
  EXPECT_NO_THROW(sim.run_until(4 * p + 500 * p));
  EXPECT_GT(wd.polls(), 0u);
  sim::Watchdog::disarm(sim);

  EXPECT_EQ(elab->total_order_violations(), 0u);
  EXPECT_GT(elab->total_received(), 100u);

  // The elaborated fingerprint embeds the design netlist AND the inserted
  // primitive instances.
  const std::string js = elab->to_json();
  EXPECT_NE(js.find("\"inserted\""), std::string::npos);
  EXPECT_NE(js.find("mixed_clock_fifo"), std::string::npos);
  EXPECT_NE(js.find("\"watched\""), std::string::npos);
}

TEST(BuilderElaborate, RepeaterSharesScoreboardAcrossTwoEdges) {
  sim::Simulation sim(23);
  const Time p = safe_period(4, 8);

  Design d("two_hop");
  const DomainId a = d.domain("a_clk", {p, 4 * p, 0.5, 0});
  const DomainId b = d.domain("b_clk", {p * 13 / 8, 4 * p + 61, 0.5, 0});
  const NodeId src = d.source("src", Design::sync_out("out", a, 8));
  const NodeId mid = d.repeater("mid", b, 8);
  const NodeId snk = d.sink("snk", Design::sync_in("in", b, 8));
  LinkOptions cdc;
  cdc.capacity = 4;
  d.connect(src, "out", mid, "in", cdc, "hop1");
  LinkOptions tailopt;
  tailopt.latency_left = 1;
  d.connect(mid, "out", snk, "in", tailopt, "hop2");
  auto elab = builder::elaborate(sim, d);

  // upstream_source() walks THROUGH the repeater: the sink checks the
  // source's scoreboard even though two edges separate them.
  EXPECT_EQ(&elab->scoreboard(snk), &elab->scoreboard(src));

  sim.run_until(4 * p + 600 * p);
  EXPECT_GT(elab->sink_received(snk), 200u);
  EXPECT_EQ(elab->total_order_violations(), 0u);
}

}  // namespace
}  // namespace mts
