#include "gates/latch.hpp"

#include <gtest/gtest.h>

#include "gates/netlist.hpp"
#include "sim/simulation.hpp"

namespace mts::gates {
namespace {

struct Fixture {
  sim::Simulation sim;
  Netlist nl{sim, "t"};
  DelayModel dm = DelayModel::hp06();
  void settle() { sim.run_until(sim.now() + 2000); }
};

TEST(SrLatchTest, SetAndReset) {
  Fixture f;
  sim::Wire& s = f.nl.wire("s");
  sim::Wire& r = f.nl.wire("r");
  sim::Wire& q = f.nl.wire("q");
  sim::Wire& qn = f.nl.wire("qn", true);
  f.nl.add<SrLatch>(f.sim, "sr", s, r, q, qn, f.dm.sr_latch, false);
  f.settle();
  EXPECT_FALSE(q.read());
  EXPECT_TRUE(qn.read());

  s.set(true);
  f.settle();
  EXPECT_TRUE(q.read());
  EXPECT_FALSE(qn.read());

  s.set(false);
  f.settle();
  EXPECT_TRUE(q.read());  // hold

  r.set(true);
  f.settle();
  EXPECT_FALSE(q.read());
  EXPECT_TRUE(qn.read());
}

TEST(SrLatchTest, SimultaneousSetResetReportsConflictAndSetWins) {
  Fixture f;
  sim::Wire& s = f.nl.wire("s");
  sim::Wire& r = f.nl.wire("r");
  sim::Wire& q = f.nl.wire("q");
  sim::Wire& qn = f.nl.wire("qn", true);
  f.nl.add<SrLatch>(f.sim, "sr", s, r, q, qn, f.dm.sr_latch, false);
  f.settle();
  s.set(true);
  r.set(true);
  f.settle();
  EXPECT_TRUE(q.read());
  EXPECT_GE(f.sim.report().count("sr-conflict"), 1u);
}

TEST(DLatchTest, TransparentWhileEnabled) {
  Fixture f;
  sim::Wire& d = f.nl.wire("d");
  sim::Wire& en = f.nl.wire("en", true);
  sim::Wire& q = f.nl.wire("q");
  f.nl.add<DLatch>(f.sim, "lat", d, en, q, f.dm, false);
  f.settle();
  d.set(true);
  f.settle();
  EXPECT_TRUE(q.read());
  d.set(false);
  f.settle();
  EXPECT_FALSE(q.read());
}

TEST(DLatchTest, OpaqueWhenDisabled) {
  Fixture f;
  sim::Wire& d = f.nl.wire("d", true);
  sim::Wire& en = f.nl.wire("en", true);
  sim::Wire& q = f.nl.wire("q");
  f.nl.add<DLatch>(f.sim, "lat", d, en, q, f.dm, false);
  f.settle();
  EXPECT_TRUE(q.read());
  en.set(false);
  f.settle();
  d.set(false);
  f.settle();
  EXPECT_TRUE(q.read());  // held
  en.set(true);
  f.settle();
  EXPECT_FALSE(q.read());  // follows again
}

TEST(WordLatchTest, CapturesWhileEnabled) {
  Fixture f;
  sim::Word& d = f.nl.word("d", 1);
  sim::Wire& en = f.nl.wire("en");
  sim::Word& q = f.nl.word("q");
  f.nl.add<WordLatch>(f.sim, "lat", d, en, q, f.dm);
  f.settle();
  EXPECT_EQ(q.read(), 0u);

  d.set(0xAB);
  en.set(true);
  f.settle();
  EXPECT_EQ(q.read(), 0xABu);

  en.set(false);
  f.settle();
  d.set(0xCD);
  f.settle();
  EXPECT_EQ(q.read(), 0xABu);  // bundled data held after en-
}

}  // namespace
}  // namespace mts::gates
