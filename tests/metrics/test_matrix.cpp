// Tests of the extension experiments completing the 2x2 interface matrix.
#include <gtest/gtest.h>

#include "metrics/experiments.hpp"

namespace mts::metrics {
namespace {

fifo::FifoConfig cfg_of(unsigned capacity, unsigned width) {
  fifo::FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = width;
  return cfg;
}

TEST(MatrixExtension, SyncAsyncThroughputValidates) {
  const ThroughputRow row = throughput_sync_async(cfg_of(4, 8), 600);
  EXPECT_TRUE(row.validated);
  // The synchronous put side matches the mixed-clock put (same half).
  const ThroughputRow mc = throughput_mixed_clock(cfg_of(4, 8), 300);
  EXPECT_DOUBLE_EQ(row.put, mc.put);
  // The asynchronous get side is slower than the sync put.
  EXPECT_LT(row.get, row.put);
  EXPECT_GT(row.get, 0.0);
}

TEST(MatrixExtension, AsyncAsyncThroughputValidates) {
  const AsyncAsyncRow row = throughput_async_async(cfg_of(4, 8), 300);
  EXPECT_TRUE(row.validated);
  EXPECT_GT(row.put_mops, 100.0);
  EXPECT_GT(row.get_mops, 100.0);
  // In a self-timed loop the two interfaces rate-match.
  EXPECT_NEAR(row.put_mops, row.get_mops, 0.1 * row.put_mops);
}

TEST(MatrixExtension, SyncAsyncLatencyDeterministic) {
  const LatencyRow row = latency_sync_async(cfg_of(4, 8));
  EXPECT_GT(row.min_ns, 0.0);
  EXPECT_DOUBLE_EQ(row.min_ns, row.max_ns);
  // No synchronizer crossing on the read side: lower latency than the
  // fully synchronous design's minimum.
  const LatencyRow mc = latency_mixed_clock(cfg_of(4, 8), 6);
  EXPECT_LT(row.min_ns, mc.min_ns);
}

TEST(MatrixExtension, AsyncAsyncLatencyLowest) {
  const LatencyRow aa = latency_async_async(cfg_of(4, 8));
  const LatencyRow sa = latency_sync_async(cfg_of(4, 8));
  EXPECT_GT(aa.min_ns, 0.0);
  // No clock anywhere: the async-async FIFO has the lowest latency of the
  // matrix (the [4] design's headline property).
  EXPECT_LT(aa.min_ns, sa.min_ns);
}

TEST(MatrixExtension, LatencyGrowsWithCapacityAcrossTheMatrix) {
  EXPECT_LT(latency_sync_async(cfg_of(4, 8)).min_ns,
            latency_sync_async(cfg_of(16, 8)).min_ns);
  EXPECT_LT(latency_async_async(cfg_of(4, 8)).min_ns,
            latency_async_async(cfg_of(16, 8)).min_ns);
}

}  // namespace
}  // namespace mts::metrics
