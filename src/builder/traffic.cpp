#include "builder/traffic.hpp"

#include <random>

#include "sim/report.hpp"

namespace mts::builder {

TaggedSource::TaggedSource(sim::Simulation& sim, std::string name,
                           sim::Wire& clk, sim::Word& out_data,
                           sim::Wire& out_valid, sim::Wire& stop,
                           const gates::DelayModel& dm, double rate,
                           unsigned flow, std::vector<unsigned> dests,
                           unsigned width)
    : sim_(sim),
      out_data_(out_data),
      out_valid_(out_valid),
      stop_(stop),
      clk_to_q_(dm.flop.clk_to_q),
      rate_(rate),
      flow_(flow),
      dests_(std::move(dests)),
      width_(width) {
  (void)name;
  clk.on_rise([this] { on_edge(); });
}

void TaggedSource::on_edge() {
  if (stop_.read()) return;  // link frozen: hold the pending packet

  if (pending_valid_) ++sent_;

  std::uniform_real_distribution<double> dist(0.0, 1.0);
  pending_valid_ = enabled_ && (rate_ >= 1.0 || dist(sim_.rng()) < rate_);
  if (pending_valid_) {
    const unsigned dest =
        dests_.size() == 1
            ? dests_[0]
            : dests_[sim_.rng()() % dests_.size()];
    pending_data_ = PacketFormat::pack(dest, flow_, next_seq_, width_);
    ++next_seq_;
  }
  out_data_.write(pending_data_, clk_to_q_, sim::DelayKind::kInertial);
  out_valid_.write(pending_valid_, clk_to_q_, sim::DelayKind::kInertial);
}

TaggedSink::TaggedSink(sim::Simulation& sim, std::string name, sim::Wire& clk,
                       sim::Word& in_data, sim::Wire& in_valid,
                       sim::Wire& stop, const gates::DelayModel& dm,
                       double stall_rate)
    : sim_(sim),
      name_(std::move(name)),
      in_data_(in_data),
      in_valid_(in_valid),
      stop_(stop),
      clk_to_q_(dm.flop.clk_to_q),
      stall_rate_(stall_rate) {
  clk.on_rise([this] { on_edge(); });
}

std::uint64_t TaggedSink::received_from(unsigned flow) const {
  const auto it = per_flow_.find(flow);
  return it == per_flow_.end() ? 0 : it->second;
}

void TaggedSink::on_edge() {
  if (!prev_stop_ && in_valid_.read()) {
    const std::uint64_t pkt = in_data_.read();
    const unsigned flow = PacketFormat::flow(pkt);
    const std::uint64_t seq = PacketFormat::seq(pkt);
    ++received_;
    ++per_flow_[flow];
    auto [it, fresh] = last_seq_.try_emplace(flow, 0);
    if (!fresh && seq <= it->second) {
      ++violations_;
      sim_.report().add(sim_.now(), sim::Severity::kError, "tagged_sink",
                        name_ + ": flow " + std::to_string(flow) + " seq " +
                            std::to_string(seq) + " after " +
                            std::to_string(it->second) +
                            " (per-flow order violated)");
    }
    it->second = seq;
  }
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  const bool stall = stall_rate_ > 0.0 && dist(sim_.rng()) < stall_rate_;
  prev_stop_ = stall;
  stop_.write(stall, clk_to_q_, sim::DelayKind::kInertial);
}

}  // namespace mts::builder
