// Runtime protocol checkers: unit tests against raw wires, then closure
// tests proving each armed monitor catches the fault that breaks its
// invariant -- and stays silent on the same traffic without the fault.
#include <gtest/gtest.h>

#include <cstdint>

#include "bfm/bfm.hpp"
#include "fifo/async_sync_fifo.hpp"
#include "fifo/async_timing.hpp"
#include "fifo/interface_sides.hpp"
#include "fifo/mixed_clock_fifo.hpp"
#include "sim/fault.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"
#include "sync/clock.hpp"
#include "sync/mtbf.hpp"
#include "verify/checkers.hpp"

namespace mts::verify {
namespace {

using sim::Time;

// ---------------------------------------------------------------- units --

TEST(TokenRingMonitor, ExactlyOneTokenIsSilent) {
  sim::Simulation sim(1);
  Hub hub;
  sim::Wire t0(sim, "t0", true), t1(sim, "t1", false), t2(sim, "t2", false);
  sim::Wire clk(sim, "clk", false);
  TokenRingMonitor mon(hub, sim, "ring", {&t0, &t1, &t2}, clk);
  clk.set(true);
  clk.set(false);
  clk.set(true);
  EXPECT_EQ(hub.total(), 0u);
}

TEST(TokenRingMonitor, DuplicatedAndLostTokensAreCaught) {
  sim::Simulation sim(1);
  Hub hub;
  sim::Wire t0(sim, "t0", true), t1(sim, "t1", true);
  sim::Wire clk(sim, "clk", false);
  TokenRingMonitor mon(hub, sim, "ring", {&t0, &t1}, clk);
  clk.set(true);  // two tokens
  ASSERT_EQ(hub.count(Invariant::kTokenRing), 1u);
  EXPECT_NE(hub.violations()[0].observed.find("2 tokens"), std::string::npos);
  clk.set(false);
  t0.set(false);
  t1.set(false);
  clk.set(true);  // zero tokens
  EXPECT_EQ(hub.count(Invariant::kTokenRing), 2u);
}

TEST(DetectorMonitor, ConsistentDetectorIsSilent) {
  sim::Simulation sim(1);
  Hub hub;
  sim::Wire s0(sim, "s0", false), s1(sim, "s1", false);
  sim::Wire raw(sim, "raw", true);  // window 1: asserted iff no cell set
  sim::Wire clk(sim, "clk", false);
  DetectorMonitor mon(hub, sim, "det", Invariant::kEmptyDetector, {&s0, &s1},
                      raw, 1, clk, 100);
  sim.sched().at(10, [&clk] { clk.set(true); });
  sim.run_until(500);
  EXPECT_EQ(hub.total(), 0u);
}

TEST(DetectorMonitor, PersistentMismatchIsReportedAfterSettle) {
  sim::Simulation sim(1);
  Hub hub;
  sim::Wire s0(sim, "s0", false), s1(sim, "s1", false);
  sim::Wire raw(sim, "raw", false);  // wrong: nothing is set, raw must assert
  sim::Wire clk(sim, "clk", false);
  DetectorMonitor mon(hub, sim, "det", Invariant::kFullDetector, {&s0, &s1},
                      raw, 1, clk, 100);
  sim.sched().at(200, [&clk] { clk.set(true); });
  sim.run_until(1000);
  ASSERT_EQ(hub.count(Invariant::kFullDetector), 1u);
  EXPECT_NE(hub.violations()[0].expected.find("asserted"), std::string::npos);
}

TEST(DetectorMonitor, TransientMismatchThatSettlesIsForgiven) {
  sim::Simulation sim(1);
  Hub hub;
  sim::Wire s0(sim, "s0", false), s1(sim, "s1", false);
  sim::Wire raw(sim, "raw", false);
  sim::Wire clk(sim, "clk", false);
  DetectorMonitor mon(hub, sim, "det", Invariant::kEmptyDetector, {&s0, &s1},
                      raw, 1, clk, 100);
  sim.sched().at(200, [&clk] { clk.set(true); });   // mismatch seen here
  sim.sched().at(250, [&raw] { raw.set(true); });   // tree catches up
  sim.run_until(1000);                              // re-check at 300 passes
  EXPECT_EQ(hub.total(), 0u);
}

TEST(DetectorMonitor, RecheckAbstainsWhileStateIsStillMoving) {
  sim::Simulation sim(1);
  Hub hub;
  sim::Wire s0(sim, "s0", false), s1(sim, "s1", false);
  sim::Wire raw(sim, "raw", false);
  sim::Wire clk(sim, "clk", false);
  DetectorMonitor mon(hub, sim, "det", Invariant::kEmptyDetector, {&s0, &s1},
                      raw, 1, clk, 100);
  sim.sched().at(200, [&clk] { clk.set(true); });  // re-check lands at 300
  sim.sched().at(295, [&s0] { s0.set(true); });    // state churns inside it
  sim.run_until(1000);
  // With the state quiet for less than a settle window the monitor cannot
  // convict the detector -- the raw output may legitimately still be
  // catching up -- so it stays silent.
  EXPECT_EQ(hub.total(), 0u);
}

TEST(DetectorMonitor, WindowTwoPredicateWrapsAroundTheRing) {
  sim::Simulation sim(1);
  Hub hub;
  // Cells 3 and 0 asserted: a wrapping run of two.
  sim::Wire s0(sim, "s0", true), s1(sim, "s1", false);
  sim::Wire s2(sim, "s2", false), s3(sim, "s3", true);
  sim::Wire raw(sim, "raw", true);
  sim::Wire clk(sim, "clk", false);
  DetectorMonitor mon(hub, sim, "det", Invariant::kFullDetector,
                      {&s0, &s1, &s2, &s3}, raw, 2, clk, 10);
  EXPECT_FALSE(mon.expected());  // the wrapping run must deassert the raw
  sim::Wire raw2(sim, "raw2", true);
  sim::Wire clk2(sim, "clk2", false);
  sim::Wire s1b(sim, "s1b", false);
  DetectorMonitor mon2(hub, sim, "det2", Invariant::kFullDetector,
                       {&s0, &s1b}, raw2, 2, clk2, 10);
  EXPECT_TRUE(mon2.expected());  // one cleared cell breaks every run of 2
  sim::Wire raw3(sim, "raw3", true);
  sim::Wire clk3(sim, "clk3", false);
  DetectorMonitor mon3(hub, sim, "det3", Invariant::kFullDetector,
                       {&s0, &s3}, raw3, 3, clk3, 10);
  // An all-asserted ring wraps into an unbounded run: even a window wider
  // than the ring itself is met.
  EXPECT_FALSE(mon3.expected());
}

TEST(HandshakeMonitor, CleanFourPhaseCycleIsSilent) {
  sim::Simulation sim(1);
  Hub hub;
  sim::Wire req(sim, "req", false), ack(sim, "ack", false);
  sim::Word data(sim, "data", 0);
  HandshakeMonitor mon(hub, sim, "put", req, ack, data, 50);
  sim.sched().at(10, [&data] { data.set(0xAB); });  // launch before req+
  sim.sched().at(20, [&req] { req.set(true); });
  sim.sched().at(40, [&ack] { ack.set(true); });
  sim.sched().at(60, [&req] { req.set(false); });
  sim.sched().at(80, [&ack] { ack.set(false); });
  sim.run_until(100);
  EXPECT_EQ(hub.total(), 0u);
  EXPECT_EQ(mon.handshakes(), 1u);
}

TEST(HandshakeMonitor, OutOfOrderEdgesAreCaught) {
  sim::Simulation sim(1);
  Hub hub;
  sim::Wire req(sim, "req", false), ack(sim, "ack", false);
  sim::Word data(sim, "data", 0);
  HandshakeMonitor mon(hub, sim, "put", req, ack, data, 50);
  sim.sched().at(10, [&ack] { ack.set(true); });  // ack+ while idle
  sim.run_until(20);
  ASSERT_EQ(hub.count(Invariant::kHandshakeOrder), 1u);
  EXPECT_NE(hub.violations()[0].observed.find("ack+"), std::string::npos);
}

TEST(HandshakeMonitor, EarlyReqReleaseIsCaught) {
  sim::Simulation sim(1);
  Hub hub;
  sim::Wire req(sim, "req", false), ack(sim, "ack", false);
  sim::Word data(sim, "data", 0);
  HandshakeMonitor mon(hub, sim, "put", req, ack, data, 50);
  sim.sched().at(10, [&req] { req.set(true); });
  sim.sched().at(20, [&req] { req.set(false); });  // before any ack+
  sim.run_until(30);
  EXPECT_EQ(hub.count(Invariant::kHandshakeOrder), 1u);
}

TEST(HandshakeMonitor, DataMovementIsJudgedAgainstTheSlack) {
  sim::Simulation sim(1);
  Hub hub;
  sim::Wire req(sim, "req", false), ack(sim, "ack", false);
  sim::Word data(sim, "data", 0);
  HandshakeMonitor mon(hub, sim, "put", req, ack, data, 50);
  sim.sched().at(100, [&req] { req.set(true); });
  sim.sched().at(140, [&data] { data.set(1); });  // lag 40 <= 50: absorbed
  sim.run_until(200);
  EXPECT_EQ(hub.total(), 0u);
  sim.sched().at(260, [&data] { data.set(2); });  // lag 160 > 50: violation
  sim.run_until(300);
  ASSERT_EQ(hub.count(Invariant::kBundledData), 1u);
  EXPECT_NE(hub.violations()[0].observed.find("0x2"), std::string::npos);
}

TEST(StreamMonitor, FifoOrderIsSilentMisorderLossAndSpuriousAreCaught) {
  sim::Simulation sim(1);
  Hub hub;
  StreamMonitor mon(hub, sim, "dut");
  mon.put(0x10, 1);
  mon.put(0x20, 2);
  EXPECT_EQ(mon.in_flight(), 2u);
  mon.get(0x10, 1);
  EXPECT_EQ(hub.total(), 0u);
  mon.get(0x99, 2);  // should have been 0x20
  ASSERT_EQ(hub.count(Invariant::kPacketOrder), 1u);
  EXPECT_NE(hub.violations()[0].expected.find("0x20"), std::string::npos);
  mon.get(0x30);  // nothing in flight
  EXPECT_EQ(hub.count(Invariant::kPacketSpurious), 1u);
  EXPECT_EQ(mon.in_flight(), 0u);
}

// -------------------------------------------------------------- closure --
//
// Each armed-component test injects the fault a monitor exists for and
// checks the violation is attributed to the right invariant -- plus the
// matching clean run staying at zero (no false positives).

fifo::FifoConfig small_cfg() {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  return cfg;
}

/// Mixed-clock harness with the hub armed BEFORE the dut is constructed
/// (the arming contract), clean saturated put / throttled get traffic.
struct ArmedMixed {
  fifo::FifoConfig cfg;
  sim::Simulation sim;
  Hub hub;
  Time pp;  // initializer arms the hub first: members init in decl order
  Time gp;
  sync::Clock cp;
  sync::Clock cg;
  fifo::MixedClockFifo dut;
  bfm::Scoreboard sb;
  bfm::PutMonitor pm;
  bfm::GetMonitor gm;

  explicit ArmedMixed(const fifo::FifoConfig& c, std::uint64_t seed = 1)
      : cfg(c),
        sim(seed),
        pp((hub.arm(sim), 2 * fifo::SyncPutSide::min_period(cfg))),
        gp(2 * fifo::SyncGetSide::min_period(cfg)),
        cp(sim, "clk_put", {pp, 4 * pp, 0.5, 0}),
        cg(sim, "clk_get", {gp, 4 * pp + gp / 3, 0.5, 0}),
        dut(sim, "dut", cfg, cp.out(), cg.out()),
        sb(sim, "sb"),
        pm(sim, cp.out(), dut.en_put(), dut.req_put(), dut.data_put(), sb),
        gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb) {}
};

TEST(MonitorClosure, ArmedCleanMixedTrafficReportsNothing) {
  ArmedMixed h(small_cfg());
  bfm::SyncPutDriver put(h.sim, "put", h.cp.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm, {1.0, 1},
                         0xFF);
  bfm::SyncGetDriver get(h.sim, "get", h.cg.out(), h.dut.req_get(), h.cfg.dm,
                         {0.85, 1});
  h.sim.run_until(4 * h.pp + 400 * h.pp);
  EXPECT_GT(h.gm.dequeued(), 100u);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.hub.total(), 0u) << h.hub.to_json();
}

TEST(MonitorClosure, InjectedSecondPutTokenTripsTheRingMonitor) {
  ArmedMixed h(small_cfg());
  // Quiet FIFO; cell 0 holds the put token. Force a duplicate into cell 1
  // through the verification hook and let the next CLK_put edge count it.
  h.sim.sched().at(20 * h.pp, [&h] { h.dut.put_token(1).set(true); });
  h.sim.run_until(30 * h.pp);
  EXPECT_GT(h.hub.count(Invariant::kTokenRing), 0u) << h.hub.to_json();
  EXPECT_EQ(h.hub.count(Invariant::kFullDetector), 0u);
}

TEST(MonitorClosure, CorruptedFullDetectorOutputIsConvicted) {
  ArmedMixed h(small_cfg());
  // Empty, quiet FIFO: every cell is empty, so the anticipating full
  // detector's raw output must be LOW. Forcing it high is a persistent
  // inconsistency (its driving gates only re-evaluate on input change, and
  // the cell state is quiet), which the deferred re-check convicts.
  h.sim.sched().at(20 * h.pp, [&h] { h.dut.full_raw().set(true); });
  h.sim.run_until(40 * h.pp);
  EXPECT_GT(h.hub.count(Invariant::kFullDetector), 0u) << h.hub.to_json();
}

TEST(MonitorClosure, ExactFullAblationOverflowsAreAttributed) {
  fifo::FifoConfig cfg = small_cfg();
  cfg.full_kind = fifo::FullDetectorKind::kExact;
  ArmedMixed h(cfg);
  bfm::SyncPutDriver put(h.sim, "put", h.cp.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm, {1.0, 1},
                         0xFF);
  bfm::SyncGetDriver get(h.sim, "get", h.cg.out(), h.dut.req_get(), h.cfg.dm,
                         {0.3, 1});
  h.sim.run_until(4 * h.pp + 600 * h.pp);
  ASSERT_GT(h.dut.overflow_count(), 0u);
  // One violation per counted overflow: the monitor is the counter's
  // structured twin.
  EXPECT_EQ(h.hub.count(Invariant::kOverflow), h.dut.overflow_count());
}

TEST(MonitorClosure, OeOnlyAblationUnderflowsAreAttributed) {
  fifo::FifoConfig cfg = small_cfg();
  cfg.empty_kind = fifo::EmptyDetectorKind::kOeOnly;
  ArmedMixed h(cfg);
  bfm::SyncPutDriver put(h.sim, "put", h.cp.out(), h.dut.req_put(),
                         h.dut.data_put(), h.dut.full(), h.cfg.dm, {0.35, 1},
                         0xFF);
  bfm::SyncGetDriver get(h.sim, "get", h.cg.out(), h.dut.req_get(), h.cfg.dm,
                         {1.0, 1});
  h.sim.run_until(4 * h.pp + 600 * h.pp);
  ASSERT_GT(h.dut.underflow_count(), 0u);
  EXPECT_EQ(h.hub.count(Invariant::kUnderflow), h.dut.underflow_count());
}

/// Async-sync harness (hub armed first), driver-paced clean traffic.
struct ArmedAsync {
  fifo::FifoConfig cfg;
  sim::Simulation sim;
  Hub hub;
  Time gp;
  sync::Clock cg;
  fifo::AsyncSyncFifo dut;
  bfm::Scoreboard sb;
  bfm::AsyncPutDriver put;
  bfm::SyncGetDriver get;
  bfm::GetMonitor gm;

  explicit ArmedAsync(std::uint64_t seed = 1)
      : cfg(small_cfg()),
        sim(seed),
        gp((hub.arm(sim), 2 * fifo::SyncGetSide::min_period(cfg))),
        cg(sim, "cg", {gp, 4 * gp, 0.5, 0}),
        dut(sim, "dut", cfg, cg.out()),
        sb(sim, "sb"),
        put(sim, "put", dut.put_req(), dut.put_ack(), dut.put_data(), cfg.dm,
            gp / 2, 0xFF, &sb),
        get(sim, "get", cg.out(), dut.req_get(), cfg.dm, {1.0, 1}),
        gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb) {}
};

TEST(MonitorClosure, ArmedCleanAsyncTrafficReportsNothing) {
  ArmedAsync h;
  h.sim.run_until(4 * h.gp + 200 * h.gp);
  EXPECT_GT(h.gm.dequeued(), 50u);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.hub.total(), 0u) << h.hub.to_json();
}

TEST(MonitorClosure, BundlingLagPastMarginTripsTheHandshakeMonitor) {
  ArmedAsync h(0xB0D3);
  const Time margin = fifo::async_put_data_margin(h.cfg);
  sim::FaultPlan plan(0xB0D3);
  plan.inject_bundling("put", sim::BundlingFault{margin + 2 * h.cfg.dm.gate(1)});
  h.sim.arm_faults(&plan);
  h.sim.run_until(4 * h.gp + 200 * h.gp);
  ASSERT_GT(h.gm.dequeued(), 50u);
  EXPECT_GT(h.hub.count(Invariant::kBundledData), 0u) << h.hub.to_json();
  h.sim.arm_faults(nullptr);
}

TEST(MonitorClosure, BundlingLagWithinMarginStaysSilent) {
  ArmedAsync h(0xB0D1);
  const Time margin = fifo::async_put_data_margin(h.cfg);
  sim::FaultPlan plan(0xB0D1);
  plan.inject_bundling("put", sim::BundlingFault{margin / 2});
  h.sim.arm_faults(&plan);
  h.sim.run_until(4 * h.gp + 200 * h.gp);
  EXPECT_GT(h.gm.dequeued(), 50u);
  EXPECT_EQ(h.sb.errors(), 0u);
  EXPECT_EQ(h.hub.count(Invariant::kBundledData), 0u) << h.hub.to_json();
  h.sim.arm_faults(nullptr);
}

TEST(MonitorClosure, EarlyRequestReleaseOnTheFifoIsCaught) {
  // A buggy sender drops put_req before the FIFO acknowledges: the
  // FIFO-side handshake monitor flags the premature req- edge.
  fifo::FifoConfig cfg = small_cfg();
  sim::Simulation sim(1);
  Hub hub;
  hub.arm(sim);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cg(sim, "cg", {gp, 4 * gp, 0.5, 0});
  fifo::AsyncSyncFifo dut(sim, "dut", cfg, cg.out());
  sim.sched().at(8 * gp, [&dut] {
    dut.put_data().set(0x5A);
    dut.put_req().set(true);
  });
  sim.sched().at(8 * gp + 1, [&dut] { dut.put_req().set(false); });
  sim.run_until(12 * gp);
  EXPECT_GT(hub.count(Invariant::kHandshakeOrder), 0u) << hub.to_json();
  Hub::disarm(sim);
}

// Accelerated metastability (the fault suite's soak, shortened). The
// synchronizer reports kMetastabilityEscape on two distinct events: an
// injected resolution that blows the final stage's slack threshold (only
// possible when the faulted front stage IS the final stage, i.e. depth 1),
// and a late-settling front stage landing inside the rear stage's sampling
// window (the "escaped final stage" diagnostic; possible at any depth but
// far rarer than the depth-1 flood). The tests below pin both: depth 1's
// monitor count equals the plan's injected-escape count, depth 2 filters
// every injected escape and only the rare rear-stage window hits remain.
struct MetaSoak {
  std::uint64_t monitor_escapes = 0;   ///< hub count(kMetastabilityEscape)
  std::uint64_t injected_escapes = 0;  ///< plan count("meta.escape")
};

MetaSoak run_meta_soak(unsigned depth) {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  cfg.sync.depth = depth;
  cfg.sync.mode = sync::MetaMode::kStochastic;
  sim::Simulation sim(0x1EAF);
  Hub hub;
  hub.set_policy(Policy::kCount);  // soak: bounded memory
  hub.arm(sim);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = pp * 107 / 97 + 3;
  sync::Clock cp(sim, "clk_put", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "clk_get", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  sim::FaultPlan plan(0x1EAF);
  const sim::MetaFault front{4.0, 15.0, 0.5,
                             sync::stage_slack({1, pp, 0, cfg.dm})};
  sim::MetaFault front_get = front;
  front_get.escape_threshold = sync::stage_slack({1, gp, 0, cfg.dm});
  plan.inject_meta("fullSync.ff0", front);
  plan.inject_meta("Sync.ff0", front_get);
  sim.arm_faults(&plan);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                         {0.85, 1});
  sim.run_until(4 * pp + 6000 * pp);
  sim.arm_faults(nullptr);
  MetaSoak r;
  r.monitor_escapes = hub.count(Invariant::kMetastabilityEscape);
  r.injected_escapes = plan.count("meta.escape");
  Hub::disarm(sim);
  return r;
}

const MetaSoak& meta_soak(unsigned depth) {
  static const MetaSoak d1 = run_meta_soak(1);
  static const MetaSoak d2 = run_meta_soak(2);
  return depth == 1 ? d1 : d2;
}

TEST(MonitorClosure, DepthOneMetaEscapesBecomeViolations) {
  const MetaSoak& r = meta_soak(1);
  // Every injected threshold escape surfaces as a monitor violation, and at
  // depth 1 (front stage == final stage) there is no other escape source.
  EXPECT_GT(r.injected_escapes, 0u);
  EXPECT_EQ(r.monitor_escapes, r.injected_escapes);
}

TEST(MonitorClosure, DepthTwoFiltersTheInjectedEscapes) {
  const MetaSoak& r = meta_soak(2);
  // The rear stage runs at nominal tau and carries no fault: not one
  // injected threshold escape survives the extra stage.
  EXPECT_EQ(r.injected_escapes, 0u);
  // What the monitor still sees are the rare stretched-tau resolutions that
  // land inside the rear stage's own sampling window -- an order of
  // magnitude fewer findings than the depth-1 flood.
  EXPECT_LT(2 * r.monitor_escapes, meta_soak(1).monitor_escapes);
}

TEST(MonitorClosure, InjectedClockDriftTripsThePeriodMonitor) {
  sim::Simulation sim(1);
  Hub hub;
  hub.arm(sim);
  sim::FaultPlan plan(1);
  plan.inject_clock("clk", sim::ClockFault{0, 1.5});  // +50% drift
  sim.arm_faults(&plan);
  sync::Clock clk(sim, "clk", {1000, 0, 0.5, 0});
  sim.run_until(20'000);
  EXPECT_GT(hub.count(Invariant::kClockPeriod), 0u) << hub.to_json();
  sim.arm_faults(nullptr);
  Hub::disarm(sim);
}

TEST(MonitorClosure, ConfiguredJitterStaysInsideTheEnvelope) {
  sim::Simulation sim(1);
  Hub hub;
  hub.arm(sim);
  // Nominal jitter never leaves the configured band: the tolerance is
  // max(jitter, 1% of nominal), so an unfaulted jittery clock is silent.
  sync::Clock clk(sim, "clk", {1000, 0, 0.5, 100});
  sim.run_until(50'000);
  EXPECT_EQ(hub.count(Invariant::kClockPeriod), 0u) << hub.to_json();
  Hub::disarm(sim);
}

}  // namespace
}  // namespace mts::verify
