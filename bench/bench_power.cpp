// Low-power claim (Section 2): "the FIFOs offer the potential for low
// power: data items are immobile while in the FIFO."
//
// Quantified two ways under identical saturated workloads:
//   1. register-write events per delivered item (data movement): exactly 1
//      for the token-ring design, ~capacity for the shift baseline;
//   2. switching activity on the datapath-visible buses (ActivityMeter).
//
// Usage: bench_power [--csv]
#include <cstdio>
#include <cstring>
#include <string>

#include "bfm/bfm.hpp"
#include "fifo/baseline_shift_fifo.hpp"
#include "fifo/interface_sides.hpp"
#include "fifo/mixed_clock_fifo.hpp"
#include "metrics/activity.hpp"
#include "metrics/table.hpp"
#include "sync/clock.hpp"

namespace {

using namespace mts;
using sim::Time;

struct PowerRow {
  double moves_per_item;
  double bus_toggles_per_item;
  std::uint64_t delivered;
};

template <typename Fifo>
PowerRow run(unsigned capacity) {
  fifo::FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = 8;
  sim::Simulation sim(1);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  Fifo dut(sim, "dut", cfg, cp.out(), cg.out());
  bfm::Scoreboard sb(sim, "sb");
  bfm::GetMonitor mon(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm, {1.0, 1});
  metrics::ActivityMeter meter;
  meter.watch(dut.data_get());  // the output bus both designs drive

  sim.run_until(4 * pp + 1200 * pp);
  PowerRow r{};
  r.delivered = mon.dequeued();
  if (r.delivered > 0) {
    r.moves_per_item = static_cast<double>(dut.data_moves()) /
                       static_cast<double>(r.delivered);
    r.bus_toggles_per_item = static_cast<double>(meter.transitions()) /
                             static_cast<double>(r.delivered);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
  }

  std::printf("Data-movement energy proxy under saturated traffic (8-bit "
              "items): register writes per delivered item\n\n");
  metrics::Table t({"places", "token-ring moves/item", "baseline moves/item",
                    "token-ring delivered", "baseline delivered"});
  for (unsigned cap : {4u, 8u, 16u}) {
    const PowerRow ours = run<fifo::MixedClockFifo>(cap);
    const PowerRow base = run<fifo::BaselineShiftFifo>(cap);
    t.add_row({std::to_string(cap), metrics::fmt(ours.moves_per_item, 2),
               metrics::fmt(base.moves_per_item, 2),
               std::to_string(ours.delivered), std::to_string(base.delivered)});
  }
  std::fputs(csv ? t.to_csv().c_str() : t.to_string().c_str(), stdout);
  std::printf("\nImmobile data costs exactly one register write per item at "
              "any capacity; a shift organization pays one write per stage "
              "traversed, so its data-movement energy grows linearly with "
              "capacity.\n");
  return 0;
}
