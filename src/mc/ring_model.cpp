#include "mc/ring_model.hpp"

#include <algorithm>
#include <utility>

#include "ctrl/specs.hpp"
#include "fifo/detectors.hpp"
#include "sim/error.hpp"

namespace mts::mc {

namespace {

std::string cell_site(unsigned cell, const char* leaf) {
  return "mc.c" + std::to_string(cell) + "." + leaf;
}

bool needs_progress(const ctrl::BmSpec& spec) {
  for (const ctrl::BmTransition& t : spec.transitions) {
    if (t.in_burst.size() > 1) return true;
  }
  return false;
}

}  // namespace

const char* action_name(ActionKind a) noexcept {
  switch (a) {
    case ActionKind::kCommit: return "commit";
    case ActionKind::kPutReqUp: return "put_req+";
    case ActionKind::kPutReqDown: return "put_req-";
    case ActionKind::kGetReqUp: return "get_req+";
    case ActionKind::kGetReqDown: return "get_req-";
  }
  return "?";
}

RingConfig default_ring(unsigned capacity) {
  RingConfig cfg;
  cfg.name = "opt-ring-" + std::to_string(capacity);
  cfg.capacity = capacity;
  cfg.opt = ctrl::opt_spec();
  cfg.ogt = ctrl::opt_spec();
  cfg.dv = ctrl::dv_linear_net();
  return cfg;
}

RingModel::RingModel(RingConfig cfg) : cfg_(std::move(cfg)) {
  MTS_ASSERT(cfg_.capacity >= 2, "RingModel: capacity must be >= 2");
  cfg_.opt.validate();
  cfg_.ogt.validate();
  cfg_.dv.validate(2, 2);
  opt_needs_progress_ = needs_progress(cfg_.opt);
  ogt_needs_progress_ = needs_progress(cfg_.ogt);
  if (opt_needs_progress_ || ogt_needs_progress_) {
    for (const ctrl::BmTransition& t : cfg_.opt.transitions) {
      MTS_ASSERT(t.in_burst.size() <= 8, "RingModel: burst too wide to pack");
    }
    for (const ctrl::BmTransition& t : cfg_.ogt.transitions) {
      MTS_ASSERT(t.in_burst.size() <= 8, "RingModel: burst too wide to pack");
    }
  }
  ref_window_ = fifo::anticipation_window(cfg_.sync_depth);

  // Per-wire listener table, in the exact construction/registration order of
  // the replay harness (mc/replay.cpp): per cell -- put C-element (common
  // then plus inputs), OPT (we1 then we), get C-element, OGT, DV (we then
  // re). The ring-wrap asymmetry falls out naturally: cell 0's OPT
  // subscribes to we_{N-1} before cell N-1's own components do.
  const unsigned n = cfg_.capacity;
  listeners_.assign(num_wires(), {});
  using K = ListenerRef::Kind;
  for (unsigned k = 0; k < n; ++k) {
    const unsigned prev = (k + n - 1) % n;
    listeners_[kReqPut].push_back({K::kPutC, k, 0});
    listeners_[ptok_index(k)].push_back({K::kPutC, k, 1});
    if (!cfg_.drop_put_guard) listeners_[e_index(k)].push_back({K::kPutC, k, 2});
    listeners_[we_index(prev)].push_back({K::kOpt, k, 0});
    listeners_[we_index(k)].push_back({K::kOpt, k, 1});
    listeners_[kReqGet].push_back({K::kGetC, k, 0});
    listeners_[gtok_index(k)].push_back({K::kGetC, k, 1});
    if (!cfg_.drop_get_guard) listeners_[f_index(k)].push_back({K::kGetC, k, 2});
    listeners_[re_index(prev)].push_back({K::kOgt, k, 0});
    listeners_[re_index(k)].push_back({K::kOgt, k, 1});
    listeners_[we_index(k)].push_back({K::kDv, k, 0});
    listeners_[re_index(k)].push_back({K::kDv, k, 1});
  }

  const std::size_t wire_bytes = (num_wires() + 7) / 8;
  const std::size_t bm_bytes = n;  // put nibble | get nibble per cell
  std::size_t progress_bytes = 0;
  if (opt_needs_progress_) progress_bytes += n * cfg_.opt.transitions.size();
  if (ogt_needs_progress_) progress_bytes += n * cfg_.ogt.transitions.size();
  const std::size_t dv_bytes = n * ((cfg_.dv.num_places + 7) / 8);
  record_size_ = wire_bytes + bm_bytes + progress_bytes + dv_bytes + 1 + kMaxQueue;
}

std::string RingModel::wire_name(unsigned wire) const {
  if (wire == kReqPut) return "put_req";
  if (wire == kReqGet) return "get_req";
  const unsigned cell = (wire - 2) / 6;
  static const char* kLeaf[6] = {"ptok", "we", "e", "f", "gtok", "re"};
  return "c" + std::to_string(cell) + "." + kLeaf[(wire - 2) % 6];
}

RingState RingModel::initial() const {
  const unsigned n = cfg_.capacity;
  RingState s;
  s.wires.assign(num_wires(), false);
  for (unsigned k = 0; k < n; ++k) {
    s.wires[e_index(k)] = true;  // every cell starts empty
    s.opt.emplace_back(cfg_.opt,
                       k == 0 ? ctrl::kOptStateHolding : ctrl::kOptStateIdle);
    s.ogt.emplace_back(cfg_.ogt,
                       k == 0 ? ctrl::kOptStateHolding : ctrl::kOptStateIdle);
    s.dv.push_back(ctrl::pn_initial_marking(cfg_.dv));
  }
  s.wires[ptok_index(0)] = true;
  s.wires[gtok_index(0)] = true;
  return s;
}

bool RingModel::put_ack(const RingState& s) const {
  for (unsigned k = 0; k < cfg_.capacity; ++k) {
    if (s.wires[we_index(k)]) return true;
  }
  return false;
}

bool RingModel::get_ack(const RingState& s) const {
  for (unsigned k = 0; k < cfg_.capacity; ++k) {
    if (s.wires[re_index(k)]) return true;
  }
  return false;
}

std::vector<ActionKind> RingModel::enabled_actions(const RingState& s,
                                                   bool macro_only) const {
  std::vector<ActionKind> out;
  if (!s.queue.empty()) {
    out.push_back(ActionKind::kCommit);
    if (macro_only) return out;  // deterministic drain between env steps
  }
  const bool pa = put_ack(s);
  const bool ga = get_ack(s);
  if (!s.wires[kReqPut] && !pa) out.push_back(ActionKind::kPutReqUp);
  if (s.wires[kReqPut] && pa) out.push_back(ActionKind::kPutReqDown);
  if (!s.wires[kReqGet] && !ga) out.push_back(ActionKind::kGetReqUp);
  if (s.wires[kReqGet] && ga) out.push_back(ActionKind::kGetReqDown);
  return out;
}

bool RingModel::effective_level(const RingState& s, unsigned wire) const {
  // At most one pending flip per wire (inertial single-driver discipline),
  // and a pending flip always targets the complement of the committed level.
  for (std::uint8_t w : s.queue) {
    if (w == wire) return !s.wires[wire];
  }
  return s.wires[wire];
}

void RingModel::schedule_level(RingState& s, unsigned wire, bool target,
                               StepResult& r) const {
  // Mirror of sim::Signal inertial writes: a new write cancels the pending
  // one; a commit that would not change the level is a silent no-op, so it
  // never enters the queue.
  auto it = std::find(s.queue.begin(), s.queue.end(),
                      static_cast<std::uint8_t>(wire));
  if (it != s.queue.end()) s.queue.erase(it);
  if (target == s.wires[wire]) return;
  if (s.queue.size() >= kMaxQueue) {
    r.violations.push_back({Property::kQueueBound, "mc.queue",
                            "pending-event queue exceeded " +
                                std::to_string(kMaxQueue) + " flips"});
    return;
  }
  s.queue.push_back(static_cast<std::uint8_t>(wire));
}

void RingModel::eval_celement(RingState& s, unsigned cell, bool put_side,
                              StepResult& r) const {
  // gates::CElement::evaluate over committed wire levels. The element's
  // internal state_ needs no extra state bits: every evaluate() re-writes
  // the output, so state_ always equals the output's effective (pending or
  // committed) level.
  const unsigned req = put_side ? kReqPut : kReqGet;
  const unsigned tok = put_side ? ptok_index(cell) : gtok_index(cell);
  const unsigned guard = put_side ? e_index(cell) : f_index(cell);
  const bool drop_guard = put_side ? cfg_.drop_put_guard : cfg_.drop_get_guard;
  const unsigned out = put_side ? we_index(cell) : re_index(cell);

  const bool all_one =
      s.wires[req] && s.wires[tok] && (drop_guard || s.wires[guard]);
  const bool common_all_zero = !s.wires[req];
  bool state = effective_level(s, out);
  if (all_one) {
    state = true;
  } else if (common_all_zero) {
    state = false;
  }
  schedule_level(s, out, state, r);
}

void RingModel::step_machine(RingState& s, unsigned cell, bool put_side,
                             unsigned input, bool rising, StepResult& r) const {
  const ctrl::BmSpec& spec = put_side ? cfg_.opt : cfg_.ogt;
  ctrl::BmCore& core = put_side ? s.opt[cell] : s.ogt[cell];
  const unsigned prior_state = core.state;
  const ctrl::BmStep step = ctrl::bm_step(spec, core, input, rising);
  if (step.fired) {
    for (const ctrl::BmEdge& out : spec.transitions[step.transition].out_burst) {
      // The machines drive a single output: the token grant wire.
      MTS_ASSERT(out.signal == 0, "RingModel: unexpected machine output");
      schedule_level(s, put_side ? ptok_index(cell) : gtok_index(cell),
                     out.rising, r);
    }
    return;
  }
  if (!step.matched) {
    r.violations.push_back(
        {Property::kHandshakeOrder, cell_site(cell, put_side ? "opt" : "ogt"),
         "bm-illegal-input: unexpected edge on " + spec.input_names[input] +
             (rising ? "+" : "-") + " in state " + std::to_string(prior_state)});
  }
}

void RingModel::step_dv(RingState& s, unsigned cell, unsigned input,
                        bool rising, StepResult& r) const {
  const ctrl::PnStep step =
      ctrl::pn_input_step(cfg_.dv, s.dv[cell], input, rising);
  if (!step.fired) {
    r.violations.push_back(
        {Property::kHandshakeOrder, cell_site(cell, "dv"),
         "pn-illegal-input: unexpected edge on input " + std::to_string(input) +
             (rising ? "+" : "-")});
    return;
  }
  if (!step.safe) {
    r.violations.push_back(
        {Property::kOneSafety, cell_site(cell, "dv"),
         "firing '" + cfg_.dv.transitions[step.transition].label +
             "' violates 1-safety at place " + std::to_string(step.bad_place)});
    return;
  }
  const ctrl::PnSweep sweep = ctrl::pn_run_outputs(cfg_.dv, s.dv[cell]);
  for (std::size_t ti : sweep.fired) {
    const ctrl::PnTransition& t = cfg_.dv.transitions[ti];
    schedule_level(s, t.signal == 0 ? e_index(cell) : f_index(cell), t.rising,
                   r);
  }
  if (!sweep.safe) {
    r.violations.push_back(
        {Property::kOneSafety, cell_site(cell, "dv"),
         "firing '" + cfg_.dv.transitions[sweep.bad_transition].label +
             "' violates 1-safety at place " +
             std::to_string(sweep.bad_place)});
  }
}

void RingModel::commit_level(RingState& s, unsigned wire, bool level,
                             StepResult& r) const {
  s.wires[wire] = level;
  for (const ListenerRef& ref : listeners_[wire]) {
    switch (ref.kind) {
      case ListenerRef::Kind::kPutC: eval_celement(s, ref.cell, true, r); break;
      case ListenerRef::Kind::kGetC: eval_celement(s, ref.cell, false, r); break;
      case ListenerRef::Kind::kOpt:
        step_machine(s, ref.cell, true, ref.input, level, r);
        break;
      case ListenerRef::Kind::kOgt:
        step_machine(s, ref.cell, false, ref.input, level, r);
        break;
      case ListenerRef::Kind::kDv:
        step_dv(s, ref.cell, ref.input, level, r);
        break;
    }
  }
}

void RingModel::check_state_invariants(const RingState& s, StepResult& r) const {
  const unsigned n = cfg_.capacity;
  unsigned ptoks = 0;
  unsigned gtoks = 0;
  for (unsigned k = 0; k < n; ++k) {
    ptoks += s.wires[ptok_index(k)] ? 1u : 0u;
    gtoks += s.wires[gtok_index(k)] ? 1u : 0u;
  }
  if (ptoks > 1) {
    r.violations.push_back({Property::kTokenRing, "mc.put-ring",
                            std::to_string(ptoks) +
                                " tokens high simultaneously"});
  }
  if (gtoks > 1) {
    r.violations.push_back({Property::kTokenRing, "mc.get-ring",
                            std::to_string(gtoks) +
                                " tokens high simultaneously"});
  }
  if (!s.queue.empty()) return;  // the settled checks below need quiescence

  // One-hot is only demanded of a ring whose side is idle: mid-handshake the
  // token is legitimately in flight between an OPT release and the next
  // cell's grant (both zero-token and, at the wrap with equal delays,
  // never two-token -- the always-on checks above still catch that).
  if (!s.wires[kReqPut] && !put_ack(s) && ptoks != 1) {
    r.violations.push_back({Property::kTokenRing, "mc.put-ring",
                            std::to_string(ptoks) +
                                " tokens at put-idle quiescence, expected 1"});
  }
  if (!s.wires[kReqGet] && !get_ack(s) && gtoks != 1) {
    r.violations.push_back({Property::kTokenRing, "mc.get-ring",
                            std::to_string(gtoks) +
                                " tokens at get-idle quiescence, expected 1"});
  }

  // Detector re-derivation (Fig. 6), evaluated as the runtime
  // DetectorMonitor does once the tree has settled: the detector built with
  // the configured window must agree with the invariant's reference window
  // over the true cell state.
  std::vector<bool> e_bits(n);
  std::vector<bool> f_bits(n);
  for (unsigned k = 0; k < n; ++k) {
    e_bits[k] = s.wires[e_index(k)];
    f_bits[k] = s.wires[f_index(k)];
  }
  const bool built_full = fifo::detector_asserted(e_bits, cfg_.full_window);
  const bool want_full = fifo::detector_asserted(e_bits, ref_window_);
  if (built_full != want_full) {
    r.violations.push_back(
        {Property::kFullDetector, "mc.full-det",
         std::string("window-") + std::to_string(cfg_.full_window) +
             " detector " + (built_full ? "asserted" : "deasserted") +
             ", window-" + std::to_string(ref_window_) + " invariant says " +
             (want_full ? "asserted" : "deasserted")});
  }
  const bool built_ne = fifo::detector_asserted(f_bits, cfg_.ne_window);
  const bool want_ne = fifo::detector_asserted(f_bits, ref_window_);
  if (built_ne != want_ne) {
    r.violations.push_back(
        {Property::kEmptyDetector, "mc.ne-det",
         std::string("window-") + std::to_string(cfg_.ne_window) +
             " detector " + (built_ne ? "asserted" : "deasserted") +
             ", window-" + std::to_string(ref_window_) + " invariant says " +
             (want_ne ? "asserted" : "deasserted")});
  }
}

StepResult RingModel::apply(const RingState& s, ActionKind a,
                            RingState* next) const {
  *next = s;
  RingState& st = *next;
  StepResult r;
  const bool pa_before = put_ack(s);
  const bool ga_before = get_ack(s);

  switch (a) {
    case ActionKind::kCommit: {
      MTS_ASSERT(!st.queue.empty(), "RingModel: commit on empty queue");
      const unsigned wire = st.queue.front();
      st.queue.erase(st.queue.begin());
      const bool level = !st.wires[wire];
      r.label = wire_name(wire) + (level ? "+" : "-");
      // Edge-triggered boundary invariants, checked against the cell state
      // the edge finds (the DV listener below only schedules its updates).
      for (unsigned k = 0; k < cfg_.capacity; ++k) {
        if (wire == we_index(k) && level && !st.wires[e_index(k)]) {
          r.violations.push_back(
              {Property::kOverflow, cell_site(k, "we"),
               "we+ with e_i low: put into a full cell"});
        }
        if (wire == re_index(k) && level && !st.wires[f_index(k)]) {
          r.violations.push_back(
              {Property::kUnderflow, cell_site(k, "re"),
               "re+ with f_i low: get from an empty cell"});
        }
      }
      commit_level(st, wire, level, r);
      break;
    }
    case ActionKind::kPutReqUp:
    case ActionKind::kPutReqDown: {
      const bool level = a == ActionKind::kPutReqUp;
      r.label = action_name(a);
      commit_level(st, kReqPut, level, r);
      break;
    }
    case ActionKind::kGetReqUp:
    case ActionKind::kGetReqDown: {
      const bool level = a == ActionKind::kGetReqUp;
      r.label = action_name(a);
      commit_level(st, kReqGet, level, r);
      break;
    }
  }

  // Derived acknowledge edges: the 4-phase order seen by the environment.
  const bool pa_after = put_ack(st);
  const bool ga_after = get_ack(st);
  if (pa_after && !pa_before && !st.wires[kReqPut]) {
    r.violations.push_back({Property::kHandshakeOrder, "mc.put-hs",
                            "ack+ while put_req is low"});
  }
  if (!pa_after && pa_before) {
    if (st.wires[kReqPut]) {
      r.violations.push_back({Property::kHandshakeOrder, "mc.put-hs",
                              "ack- while put_req is still high"});
    }
    r.progress_put = true;
  }
  if (ga_after && !ga_before && !st.wires[kReqGet]) {
    r.violations.push_back({Property::kHandshakeOrder, "mc.get-hs",
                            "ack+ while get_req is low"});
  }
  if (!ga_after && ga_before) {
    if (st.wires[kReqGet]) {
      r.violations.push_back({Property::kHandshakeOrder, "mc.get-hs",
                              "ack- while get_req is still high"});
    }
    r.progress_get = true;
  }

  check_state_invariants(st, r);
  return r;
}

void RingModel::pack(const RingState& s, std::uint8_t* out) const {
  const unsigned n = cfg_.capacity;
  std::size_t at = 0;
  const std::size_t wire_bytes = (num_wires() + 7) / 8;
  for (std::size_t b = 0; b < wire_bytes; ++b) out[at + b] = 0;
  for (unsigned w = 0; w < num_wires(); ++w) {
    if (s.wires[w]) out[at + w / 8] |= static_cast<std::uint8_t>(1u << (w % 8));
  }
  at += wire_bytes;
  for (unsigned k = 0; k < n; ++k) {
    out[at++] = static_cast<std::uint8_t>((s.opt[k].state & 0xFu) |
                                          ((s.ogt[k].state & 0xFu) << 4));
  }
  if (opt_needs_progress_) {
    for (unsigned k = 0; k < n; ++k) {
      for (std::uint32_t p : s.opt[k].progress) {
        out[at++] = static_cast<std::uint8_t>(p & 0xFFu);
      }
    }
  }
  if (ogt_needs_progress_) {
    for (unsigned k = 0; k < n; ++k) {
      for (std::uint32_t p : s.ogt[k].progress) {
        out[at++] = static_cast<std::uint8_t>(p & 0xFFu);
      }
    }
  }
  const std::size_t place_bytes = (cfg_.dv.num_places + 7) / 8;
  for (unsigned k = 0; k < n; ++k) {
    for (std::size_t b = 0; b < place_bytes; ++b) out[at + b] = 0;
    for (unsigned p = 0; p < cfg_.dv.num_places; ++p) {
      if (s.dv[k][p]) {
        out[at + p / 8] |= static_cast<std::uint8_t>(1u << (p % 8));
      }
    }
    at += place_bytes;
  }
  out[at++] = static_cast<std::uint8_t>(s.queue.size());
  for (std::size_t i = 0; i < kMaxQueue; ++i) {
    out[at++] = i < s.queue.size() ? s.queue[i] : 0;
  }
  MTS_ASSERT(at == record_size_, "RingModel: pack size mismatch");
}

RingState RingModel::unpack(const std::uint8_t* rec) const {
  const unsigned n = cfg_.capacity;
  RingState s;
  std::size_t at = 0;
  const std::size_t wire_bytes = (num_wires() + 7) / 8;
  s.wires.assign(num_wires(), false);
  for (unsigned w = 0; w < num_wires(); ++w) {
    s.wires[w] = (rec[at + w / 8] >> (w % 8)) & 1u;
  }
  at += wire_bytes;
  for (unsigned k = 0; k < n; ++k) {
    ctrl::BmCore opt(cfg_.opt, rec[at] & 0xFu);
    ctrl::BmCore ogt(cfg_.ogt, (rec[at] >> 4) & 0xFu);
    ++at;
    s.opt.push_back(std::move(opt));
    s.ogt.push_back(std::move(ogt));
  }
  if (opt_needs_progress_) {
    for (unsigned k = 0; k < n; ++k) {
      for (std::uint32_t& p : s.opt[k].progress) p = rec[at++];
    }
  }
  if (ogt_needs_progress_) {
    for (unsigned k = 0; k < n; ++k) {
      for (std::uint32_t& p : s.ogt[k].progress) p = rec[at++];
    }
  }
  const std::size_t place_bytes = (cfg_.dv.num_places + 7) / 8;
  for (unsigned k = 0; k < n; ++k) {
    ctrl::PnMarking m(cfg_.dv.num_places, false);
    for (unsigned p = 0; p < cfg_.dv.num_places; ++p) {
      m[p] = (rec[at + p / 8] >> (p % 8)) & 1u;
    }
    at += place_bytes;
    s.dv.push_back(std::move(m));
  }
  const std::size_t qlen = rec[at++];
  for (std::size_t i = 0; i < qlen; ++i) s.queue.push_back(rec[at + i]);
  return s;
}

}  // namespace mts::mc
