// Signals: named, typed state carriers with delayed assignment.
//
// A Signal<T> holds a current value and notifies listeners when it changes.
// Writes are scheduled through the simulation's event queue:
//
//   - DelayKind::kTransport models an ideal delay line: every scheduled
//     write eventually commits, in order. Testbench stimulus uses this.
//   - DelayKind::kInertial models a gate output: scheduling a new write
//     cancels all still-pending writes, so pulses shorter than the gate
//     delay are filtered out, as in VHDL's preemptive inertial model.
//     All gate primitives use this.
//
// Pending writes live in a per-signal free-list pool of transaction slots.
// Each write stamps its slot with a monotonically increasing generation;
// inertial cancellation just raises the signal's cancellation watermark, so
// scheduling, cancelling and committing are all O(1) with zero steady-state
// heap allocations (the commit callback is a 16-byte inline capture).
//
// Listener callbacks run at commit time in registration order and receive
// (old, new). Edge-typed listeners (on_rise/on_fall, Wire only) are stored
// as plain void() callables and dispatched directly -- no per-edge wrapper
// lambda -- while still interleaving with on_change listeners in
// registration order. Listeners registered during a notification do not
// observe the change that was being delivered. Listeners live as long as
// the signal.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/error.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace mts::sim {

enum class DelayKind { kTransport, kInertial };

template <typename T>
class Signal {
 public:
  /// Listener slots inline 24 bytes (covers `this` plus two pointers, the
  /// norm for model listeners); rarer fat closures take a one-time heap
  /// cell at registration. Keeps a ListenerEntry at 48 bytes so fan-out
  /// dispatch stays cache-dense.
  static constexpr std::size_t kListenerInlineSize = 24;
  using Listener =
      InplaceFunction<void(const T& old_value, const T& new_value),
                      kListenerInlineSize>;
  using EdgeListener = InplaceFunction<void(), kListenerInlineSize>;

  Signal(Simulation& sim, std::string name, T initial = T{})
      : sim_(sim), name_(std::move(name)), value_(std::move(initial)) {}

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  const std::string& name() const noexcept { return name_; }
  Simulation& simulation() const noexcept { return sim_; }

  const T& read() const noexcept { return value_; }

  /// Immediate assignment (no event): used for initialization and by
  /// testbenches acting "right now". Notifies listeners on change.
  void set(const T& v) {
    if (v == value_) return;
    T old = std::exchange(value_, v);
    notify(old);
  }

  /// Schedules `v` to commit at now() + delay.
  void write(const T& v, Time delay, DelayKind kind = DelayKind::kTransport) {
    if (kind == DelayKind::kInertial) {
      // Cancel every still-pending write in O(1): their generations are all
      // below the new watermark. Their commit events still run (to recycle
      // the slots) but become no-ops.
      cancel_below_ = next_gen_;
      live_pending_ = 0;
    }
    const std::uint32_t idx = alloc_slot();
    Slot& s = slots_[idx];
    s.value = v;
    s.gen = next_gen_++;
    ++live_pending_;
    sim_.sched().after(delay, [this, idx] { commit(idx); });
  }

  /// Registers a change listener; it lives as long as the signal.
  void on_change(Listener fn) {
    add_listener(ListenerEntry{Edge::kChange, std::move(fn)});
  }

  /// Registers a rising-edge listener (Wire only). The nullary callable is
  /// stored directly in the listener slot (ignore_args thunk) -- no
  /// (old, new) wrapper closure, one type erasure, and non-matching edges
  /// are filtered before any indirect call.
  template <typename F, typename U = T,
            typename = std::enable_if_t<std::is_same_v<U, bool> &&
                                        std::is_invocable_v<std::decay_t<F>&>>>
  void on_rise(F&& fn) {
    add_listener(ListenerEntry{
        Edge::kRise, Listener(ignore_args, std::forward<F>(fn))});
  }

  /// Registers a falling-edge listener (Wire only).
  template <typename F, typename U = T,
            typename = std::enable_if_t<std::is_same_v<U, bool> &&
                                        std::is_invocable_v<std::decay_t<F>&>>>
  void on_fall(F&& fn) {
    add_listener(ListenerEntry{
        Edge::kFall, Listener(ignore_args, std::forward<F>(fn))});
  }

  /// Writes scheduled and not yet committed or cancelled.
  std::size_t pending_writes() const noexcept { return live_pending_; }

  /// Transaction slots ever allocated: the pool's high-water mark. Stays at
  /// the workload's peak outstanding-write count (slots are recycled).
  std::size_t pool_slots() const noexcept { return slots_.size(); }

 private:
  enum class Edge : std::uint8_t { kChange, kRise, kFall };

  struct ListenerEntry {
    Edge edge;
    Listener fn;
  };

  void add_listener(ListenerEntry e) {
    // During a notification the main vector must not grow (the entry being
    // dispatched lives inside it); park new registrations and merge them
    // once the outermost notification unwinds.
    if (notify_depth_ > 0) {
      arriving_.push_back(std::move(e));
    } else {
      listeners_.push_back(std::move(e));
    }
  }

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Slot {
    T value{};
    std::uint64_t gen = 0;
    std::uint32_t next_free = kNoSlot;
  };

  std::uint32_t alloc_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t idx = free_head_;
      free_head_ = slots_[idx].next_free;
      return idx;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void commit(std::uint32_t idx) {
    Slot& s = slots_[idx];
    const bool live = s.gen >= cancel_below_;
    T v = std::move(s.value);
    s.next_free = free_head_;
    free_head_ = idx;
    if (!live) return;  // preempted by a later inertial write
    --live_pending_;
    set(v);
  }

  void notify(const T& old) {
    // New registrations are parked in arriving_ while any notification is
    // running (see add_listener), so this loop walks stable contiguous
    // storage and later registrations never observe the in-flight change.
    struct DepthGuard {  // merge parked registrations even if a listener throws
      Signal& s;
      ~DepthGuard() {
        if (--s.notify_depth_ == 0 && !s.arriving_.empty()) {
          for (auto& e : s.arriving_) s.listeners_.push_back(std::move(e));
          s.arriving_.clear();
        }
      }
    };
    ++notify_depth_;
    DepthGuard guard{*this};
    const std::size_t n = listeners_.size();
    for (std::size_t i = 0; i < n; ++i) {
      ListenerEntry& e = listeners_[i];
      if constexpr (std::is_same_v<T, bool>) {
        // notify() only runs on a change, so a bool transition is exactly
        // one of rising / falling; skip the non-matching edge kind without
        // an indirect call.
        const Edge skip = (!old && value_) ? Edge::kFall : Edge::kRise;
        if (e.edge == skip) continue;
      }
      e.fn(old, value_);
    }
  }

  Simulation& sim_;
  std::string name_;
  T value_;
  std::vector<ListenerEntry> listeners_;
  std::vector<ListenerEntry> arriving_;  ///< registered mid-notification
  int notify_depth_ = 0;

  std::vector<Slot> slots_;           ///< transaction pool
  std::uint32_t free_head_ = kNoSlot; ///< free-list head into slots_
  std::uint64_t next_gen_ = 1;        ///< generation stamped on the next write
  std::uint64_t cancel_below_ = 0;    ///< writes with gen < this are cancelled
  std::size_t live_pending_ = 0;
};

/// A single-bit control or data wire.
using Wire = Signal<bool>;
/// A word-level data bus (the datapath is modelled at word granularity).
using Word = Signal<std::uint64_t>;

/// Invokes `fn` on every rising edge of `w`.
/// Compatibility shim for pre-member-API call sites; new code should call
/// `w.on_rise(fn)` directly.
template <typename F>
inline void on_rise(Wire& w, F&& fn) {
  w.on_rise(std::forward<F>(fn));
}

/// Invokes `fn` on every falling edge of `w`.
template <typename F>
inline void on_fall(Wire& w, F&& fn) {
  w.on_fall(std::forward<F>(fn));
}

}  // namespace mts::sim
