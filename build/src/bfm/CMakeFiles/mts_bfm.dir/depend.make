# Empty dependencies file for mts_bfm.
# This may be replaced when dependencies are built.
