// Topology-sweep smoke: elaborates every cell of the builder's mesh-NoC and
// shared-bus sweep axes, runs each briefly with self-checking traffic, and
// writes the design fingerprint (netlist + inserted primitives) next to the
// working directory as topology_<label>.json. CI runs this in the
// builder-smoke job and uploads the JSON artifacts when anything fails, so a
// reviewer can inspect the exact generated topology without rebuilding.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "builder/builder.hpp"
#include "fifo/interface_sides.hpp"
#include "sim/simulation.hpp"

namespace {

using mts::builder::BusParams;
using mts::builder::Design;
using mts::builder::MeshParams;
using mts::sim::Time;

Time topo_period(unsigned capacity, unsigned width, unsigned sync_depth) {
  mts::fifo::FifoConfig cfg;
  cfg.capacity = capacity;
  cfg.width = width;
  cfg.sync.depth = sync_depth;
  return 2 * std::max(mts::fifo::SyncPutSide::min_period(cfg),
                      mts::fifo::SyncGetSide::min_period(cfg));
}

void write_artifact(const std::string& label, const std::string& json) {
  std::ofstream out("topology_" + label + ".json");
  out << json << "\n";
}

/// Runs one elaborated design for `cycles` of its slowest clock and checks
/// the traffic got through in order. Returns true on a clean run.
bool smoke(const std::string& label, const Design& d, Time slowest,
           Time cycles) {
  mts::sim::Simulation sim(1);
  auto elab = mts::builder::elaborate(sim, d);
  sim.run_until(4 * slowest + cycles * slowest);

  const auto received = elab->total_received();
  const auto violations = elab->total_order_violations();
  write_artifact(label, elab->to_json());
  std::printf("  %-28s received=%llu violations=%llu %s\n", label.c_str(),
              static_cast<unsigned long long>(received),
              static_cast<unsigned long long>(violations),
              (received > 0 && violations == 0) ? "PASS" : "FAIL");
  return received > 0 && violations == 0;
}

}  // namespace

int main() {
  bool ok = true;

  std::printf("mesh-NoC sweep (%zu cells)\n", mts::builder::mesh_sweep_size());
  for (std::size_t c = 0; c < mts::builder::mesh_sweep_size(); ++c) {
    const MeshParams p = mts::builder::mesh_sweep_cell(c);
    const Time base = topo_period(p.link_capacity, p.width, p.sync_depth);
    const Time slowest = base * (16 + 3 * (p.cols - 1)) / 16;
    ok &= smoke(mts::builder::mesh_sweep_label(c),
                mts::builder::make_mesh_noc(p), slowest, 300);
  }

  std::printf("shared-bus sweep (%zu cells)\n",
              mts::builder::bus_sweep_size());
  for (std::size_t c = 0; c < mts::builder::bus_sweep_size(); ++c) {
    const BusParams p = mts::builder::bus_sweep_cell(c);
    const Time base = topo_period(p.link_capacity, p.width, p.sync_depth);
    const std::size_t domains = 1 + p.producers + p.consumers;
    const Time slowest = base * (16 + 3 * (domains - 1)) / 16;
    ok &= smoke(mts::builder::bus_sweep_label(c),
                mts::builder::make_shared_bus(p), slowest, 300);
  }

  std::printf("topology sweep: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
