file(REMOVE_RECURSE
  "libmts_ctrl.a"
)
