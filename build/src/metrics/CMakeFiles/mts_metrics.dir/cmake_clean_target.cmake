file(REMOVE_RECURSE
  "libmts_metrics.a"
)
