#include "bfm/sync_drivers.hpp"

namespace mts::bfm {

SyncPutDriver::SyncPutDriver(sim::Simulation& sim, std::string name,
                             sim::Wire& clk, sim::Wire& req_put,
                             sim::Word& data_put, sim::Wire& full,
                             const gates::DelayModel& dm, const RateConfig& rate,
                             std::uint64_t value_mask)
    : sim_(sim),
      req_put_(req_put),
      data_put_(data_put),
      full_(full),
      react_delay_(dm.flop.clk_to_q + 1),
      rate_(rate),
      value_mask_(value_mask),
      next_value_(rate.first_value) {
  (void)name;
  clk.on_rise([this] {
    sim_.sched().after(react_delay_, [this] {
      // The sender gates its own request with the same synchronized full
      // flag the put controller uses, so an offered put always lands.
      if (!enabled_ || full_.read()) {
        req_put_.set(false);
        return;
      }
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      if (rate_.rate >= 1.0 || dist(sim_.rng()) < rate_.rate) {
        data_put_.set(next_value_ & value_mask_);
        req_put_.set(true);
        ++next_value_;
        ++offered_;
      } else {
        req_put_.set(false);
      }
    });
  });
}

SyncGetDriver::SyncGetDriver(sim::Simulation& sim, std::string name,
                             sim::Wire& clk, sim::Wire& req_get,
                             const gates::DelayModel& dm, const RateConfig& rate)
    : sim_(sim),
      req_get_(req_get),
      react_delay_(dm.flop.clk_to_q + 1),
      rate_(rate) {
  (void)name;
  clk.on_rise([this] {
    sim_.sched().after(react_delay_, [this] {
      if (!enabled_) {
        req_get_.set(false);
        return;
      }
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      req_get_.set(rate_.rate >= 1.0 || dist(sim_.rng()) < rate_.rate);
    });
  });
}

PutMonitor::PutMonitor(sim::Simulation& sim, sim::Wire& clk, sim::Wire& en_put,
                       sim::Wire& req_put, sim::Word& data_put, Scoreboard& sb) {
  (void)sim;
  clk.on_rise([this, &en_put, &req_put, &data_put, &sb] {
    // Pre-edge values: en_put/req_put/data_put were stable during the
    // ending cycle; this edge commits the enqueue.
    if (en_put.read() && req_put.read()) {
      sb.push(data_put.read());
      ++count_;
    }
  });
}

GetMonitor::GetMonitor(sim::Simulation& sim, sim::Wire& clk,
                       sim::Wire& valid_get, sim::Word& data_get,
                       Scoreboard& sb) {
  clk.on_rise([this, &sim, &valid_get, &data_get, &sb] {
    // valid_get is high at the sampling edge exactly when a valid word
    // leaves: FIFO mode gates it with en_get, relay-station mode with
    // !(empty | stopIn).
    if (valid_get.read()) {
      sb.pop_check(data_get.read());
      ++count_;
      last_time_ = sim.now();
    }
  });
}

}  // namespace mts::bfm
