// The properties the model checker proves, and their mapping onto the
// runtime verify:: invariants.
//
// The checker and the runtime monitors assert the SAME protocol contract
// (ISSUE: "proves the verify:: invariants exhaustively"); Property is the
// checker-side enumeration. Most entries map 1:1 onto a verify::Invariant
// -- that mapping is the replay contract: a counterexample for property P
// must, when replayed as a concrete Simulation, make the armed verify::Hub
// report to_invariant(P) at the same environment step. kOneSafety and
// kQueueBound have no runtime-monitor analog (the engine THROWS on a
// 1-safety violation; the queue bound is a model-internal resource limit),
// so to_invariant returns nullopt for them and their counterexamples are
// not replay-checked.
#pragma once

#include <optional>

#include "verify/violation.hpp"

namespace mts::mc {

enum class Property {
  kTokenRing,       ///< put/get token ring not one-hot (Section 3.1)
  kOverflow,        ///< we+ reached a cell whose e_i is low
  kUnderflow,       ///< re+ reached a cell whose f_i is low
  kHandshakeOrder,  ///< 4-phase edge out of sequence / illegal controller input
  kFullDetector,    ///< built full detector vs window re-derivation (Fig. 6a)
  kEmptyDetector,   ///< built ne detector vs window re-derivation (Fig. 6b)
  kOneSafety,       ///< a DV net firing marked a marked place
  kDeadlock,        ///< reachable state with no successor
  kLivelock,        ///< reachable state from which no completion is reachable
  kQueueBound,      ///< model resource bound: pending-event queue overflow
};

inline const char* property_name(Property p) noexcept {
  switch (p) {
    case Property::kTokenRing: return "token-ring";
    case Property::kOverflow: return "overflow";
    case Property::kUnderflow: return "underflow";
    case Property::kHandshakeOrder: return "handshake-order";
    case Property::kFullDetector: return "full-detector";
    case Property::kEmptyDetector: return "empty-detector";
    case Property::kOneSafety: return "one-safety";
    case Property::kDeadlock: return "deadlock";
    case Property::kLivelock: return "livelock";
    case Property::kQueueBound: return "queue-bound";
  }
  return "unknown";
}

/// The runtime invariant a replayed counterexample for `p` must trip.
inline std::optional<verify::Invariant> to_invariant(Property p) noexcept {
  switch (p) {
    case Property::kTokenRing: return verify::Invariant::kTokenRing;
    case Property::kOverflow: return verify::Invariant::kOverflow;
    case Property::kUnderflow: return verify::Invariant::kUnderflow;
    case Property::kHandshakeOrder: return verify::Invariant::kHandshakeOrder;
    case Property::kFullDetector: return verify::Invariant::kFullDetector;
    case Property::kEmptyDetector: return verify::Invariant::kEmptyDetector;
    case Property::kDeadlock: return verify::Invariant::kDeadlock;
    case Property::kLivelock: return verify::Invariant::kLivelock;
    case Property::kOneSafety:
    case Property::kQueueBound: return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace mts::mc
