// Equivalence: the gate-level relay station and the behavioural model must
// produce identical packet streams cycle for cycle under identical inputs
// (same source, same stall pattern), and the structural netlist must pass
// the usual no-loss/no-reorder soak with timing checks armed.
#include "lip/relay_station_structural.hpp"

#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "gates/netlist.hpp"
#include "lip/chain.hpp"
#include "lip/relay_station.hpp"
#include "sync/clock.hpp"

namespace mts::lip {
namespace {

using sim::Time;

TEST(StructuralRelayStation, LockstepEquivalentToBehaviouralModel) {
  sim::Simulation sim(3);
  const gates::DelayModel dm = gates::DelayModel::hp06();
  const Time period = 2000;
  sync::Clock clk(sim, "clk", {period, period, 0.5, 0});
  gates::Netlist nl(sim, "t");

  // Shared input link driven by one source; per-instance output links and a
  // shared stall wire driven by one pattern generator.
  sim::Word& in_d = nl.word("in_d");
  sim::Wire& in_v = nl.wire("in_v");
  sim::Wire& stop_beh = nl.wire("stop_beh");  // each RS drives its own stopOut
  sim::Wire& stop_str = nl.wire("stop_str");
  sim::Wire& stall = nl.wire("stall");

  sim::Word& out_d_beh = nl.word("out_d_beh");
  sim::Wire& out_v_beh = nl.wire("out_v_beh");
  sim::Word& out_d_str = nl.word("out_d_str");
  sim::Wire& out_v_str = nl.wire("out_v_str");

  RelayStation beh(sim, "beh", clk.out(), in_d, in_v, stop_beh, out_d_beh,
                   out_v_beh, stall, dm);
  StructuralRelayStation str(sim, "str", clk.out(), in_d, in_v, stop_str,
                             out_d_str, out_v_str, stall, dm);

  // Source: free-running packet generator (no back-pressure dependence, so
  // both instances see identical inputs -- their stopOut wires are only
  // compared, not consumed).
  std::uint64_t next = 1;
  sim::on_rise(clk.out(), [&] {
    const bool valid = (next % 3) != 0;  // mix of valid and void packets
    in_d.write(next & 0xFF, dm.flop.clk_to_q, sim::DelayKind::kInertial);
    in_v.write(valid, dm.flop.clk_to_q, sim::DelayKind::kInertial);
    ++next;
  });
  // Stall pattern: deterministic bursts.
  std::uint64_t cycle = 0;
  sim::on_rise(clk.out(), [&] {
    const bool s = (cycle % 11) >= 7 || (cycle % 23) == 3;
    ++cycle;
    stall.write(s, dm.flop.clk_to_q, sim::DelayKind::kInertial);
  });

  // Lockstep comparison at every edge after a warmup.
  unsigned mismatches = 0;
  unsigned compared = 0;
  sim::on_rise(clk.out(), [&] {
    if (sim.now() < 6 * period) return;
    ++compared;
    if (out_v_beh.read() != out_v_str.read()) ++mismatches;
    if (out_v_beh.read() && out_d_beh.read() != out_d_str.read()) ++mismatches;
    if (stop_beh.read() != stop_str.read()) ++mismatches;
  });

  sim.run_until(600 * period);
  EXPECT_GT(compared, 500u);
  EXPECT_EQ(mismatches, 0u);
}

TEST(StructuralRelayStation, SoakWithTimingChecksArmed) {
  sim::Simulation sim(5);
  const gates::DelayModel dm = gates::DelayModel::hp06();
  const Time period = 2000;
  sync::Clock clk(sim, "clk", {period, period, 0.5, 0});
  gates::Netlist nl(sim, "t");
  gates::TimingDomain dom(sim, "rs");

  sim::Word& in_d = nl.word("in_d");
  sim::Wire& in_v = nl.wire("in_v");
  sim::Wire& s_out = nl.wire("s_out");
  sim::Word& out_d = nl.word("out_d");
  sim::Wire& out_v = nl.wire("out_v");
  sim::Wire& s_in = nl.wire("s_in");
  StructuralRelayStation rs(sim, "rs", clk.out(), in_d, in_v, s_out, out_d,
                            out_v, s_in, dm, &dom);
  bfm::Scoreboard sb(sim, "sb");
  bfm::RsSource src(sim, "src", clk.out(), in_d, in_v, s_out, dm, 0.8, 0xFF,
                    sb);
  bfm::RsSink sink(sim, "sink", clk.out(), out_d, out_v, s_in, dm, 0.35, sb);

  dom.set_enabled(false);
  sim.run_until(4 * period);
  dom.set_enabled(true);
  sim.run_until(1500 * period);

  EXPECT_GT(sink.received_valid(), 400u);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_EQ(dom.violations(), 0u);
}

TEST(StructuralRelayStation, StallParksAndDrains) {
  sim::Simulation sim(1);
  const gates::DelayModel dm = gates::DelayModel::hp06();
  const Time period = 2000;
  sync::Clock clk(sim, "clk", {period, period, 0.5, 0});
  gates::Netlist nl(sim, "t");
  sim::Word& in_d = nl.word("in_d");
  sim::Wire& in_v = nl.wire("in_v");
  sim::Wire& s_out = nl.wire("s_out");
  sim::Word& out_d = nl.word("out_d");
  sim::Wire& out_v = nl.wire("out_v");
  sim::Wire& s_in = nl.wire("s_in", true);  // consumer starts stalled
  StructuralRelayStation rs(sim, "rs", clk.out(), in_d, in_v, s_out, out_d,
                            out_v, s_in, dm);
  bfm::Scoreboard sb(sim, "sb");
  bfm::RsSource src(sim, "src", clk.out(), in_d, in_v, s_out, dm, 1.0, 0xFF,
                    sb);

  // Manual consumer honouring the transfer convention: consumes at an edge
  // iff its own registered stop was low during the ending cycle.
  bool stall_now = true;
  bool prev_stop = true;
  std::uint64_t received = 0;
  sim::on_rise(clk.out(), [&] {
    if (!prev_stop && out_v.read()) {
      sb.pop_check(out_d.read());
      ++received;
    }
    prev_stop = stall_now;
    s_in.write(stall_now, dm.flop.clk_to_q, sim::DelayKind::kInertial);
  });

  sim.run_until(16 * period);
  EXPECT_TRUE(rs.stalled());
  EXPECT_TRUE(s_out.read());

  sim.sched().at(20 * period + 300, [&] { stall_now = false; });
  sim.run_until(200 * period);
  EXPECT_FALSE(rs.stalled());
  EXPECT_GT(received, 100u);
  EXPECT_EQ(sb.errors(), 0u);
}

TEST(StructuralRelayStation, ChainOfStructuralStationsKeepsOrder) {
  sim::Simulation sim(4);
  const gates::DelayModel dm = gates::DelayModel::hp06();
  const Time period = 2000;
  sync::Clock clk(sim, "clk", {period, period, 0.5, 0});
  gates::Netlist nl(sim, "t");
  sim::Word& in_d = nl.word("ind");
  sim::Wire& in_v = nl.wire("inv");
  sim::Wire& s_out = nl.wire("sout");
  sim::Word& out_d = nl.word("outd");
  sim::Wire& out_v = nl.wire("outv");
  sim::Wire& s_in = nl.wire("sin");
  SyncRelayChain chain(sim, "chain", clk.out(), 4, dm, in_d, in_v, s_out,
                       out_d, out_v, s_in, RsImpl::kStructural);
  bfm::Scoreboard sb(sim, "sb");
  bfm::RsSource src(sim, "src", clk.out(), in_d, in_v, s_out, dm, 0.85, 0xFF,
                    sb);
  bfm::RsSink sink(sim, "sink", clk.out(), out_d, out_v, s_in, dm, 0.3, sb);
  sim.run_until(1200 * period);
  EXPECT_GT(sink.received_valid(), 400u);
  EXPECT_EQ(sb.errors(), 0u);
}

}  // namespace
}  // namespace mts::lip
