// Async-sync FIFO (Section 4) and the async-sync relay station (Section
// 5.3), selected by FifoConfig::controller.
//
// The put interface is asynchronous: 4-phase, single-rail bundled data. The
// sender places put_data, raises put_req; the FIFO latches the item in the
// token-holding cell and acknowledges on put_ack; the wires then reset
// (req- then ack-). When the FIFO is full, the acknowledgment is simply
// withheld until space frees -- no full detector or put synchronizer exists.
//
// The get interface, detectors, synchronizers and get controller are
// exactly the mixed-clock design's (the paper's reuse claim: "the external
// get controller and empty detector are unchanged; the only components that
// change are portions of the FIFO cells").
//
// Relay-station (ASRS) differences (Fig. 16): the async side is unchanged;
// the get controller becomes en_get = !stopIn & !empty with
// valid_get = !(stopIn | empty) -- a data item leaves on every CLK_get
// cycle, valid unless the station is empty or stopped.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fifo/cell_parts.hpp"
#include "fifo/config.hpp"
#include "gates/netlist.hpp"
#include "gates/timing.hpp"
#include "sim/observe.hpp"
#include "sim/signal.hpp"
#include "sim/simulation.hpp"
#include "verify/checkers.hpp"

namespace mts::fifo {

class AsyncSyncFifo {
 public:
  AsyncSyncFifo(sim::Simulation& sim, const std::string& name,
                const FifoConfig& cfg, sim::Wire& clk_get);

  AsyncSyncFifo(const AsyncSyncFifo&) = delete;
  AsyncSyncFifo& operator=(const AsyncSyncFifo&) = delete;

  // --- put interface (asynchronous, 4-phase bundled data) ---
  sim::Wire& put_req() noexcept { return *put_req_; }
  sim::Word& put_data() noexcept { return *put_data_; }
  sim::Wire& put_ack() noexcept { return *put_ack_; }

  // --- get interface (synchronous, CLK_get) ---
  sim::Wire& req_get() noexcept { return *req_get_; }
  sim::Word& data_get() noexcept { return *data_get_; }
  sim::Wire& valid_get() noexcept { return *valid_ext_; }
  sim::Wire& empty() noexcept { return *empty_w_; }
  sim::Wire& stop_in() noexcept { return *stop_in_; }

  // --- diagnostics / verification hooks ---
  gates::TimingDomain& get_domain() noexcept { return get_dom_; }
  std::uint64_t overflow_count() const noexcept { return overflows_; }
  std::uint64_t underflow_count() const noexcept { return underflows_; }
  unsigned occupancy() const;
  sim::Wire& cell_f(unsigned i) { return *f_.at(i); }
  sim::Wire& cell_e(unsigned i) { return *e_.at(i); }
  sim::Wire& ne_raw() noexcept { return *ne_raw_; }
  sim::Wire& oe_raw() noexcept { return *oe_raw_; }
  sim::Wire& en_get() noexcept { return *en_get_b_; }

  /// Minimum CLK_get period (same structure as the mixed-clock design).
  sim::Time get_min_period() const;

  const FifoConfig& config() const noexcept { return cfg_; }

 private:
  sim::Simulation& sim_;
  FifoConfig cfg_;
  gates::Netlist nl_;
  gates::TimingDomain get_dom_;

  sim::Wire* put_req_ = nullptr;
  sim::Word* put_data_ = nullptr;
  sim::Wire* put_ack_ = nullptr;
  sim::Wire* req_get_ = nullptr;
  sim::Wire* stop_in_ = nullptr;
  sim::Word* data_get_ = nullptr;
  sim::Wire* valid_bus_ = nullptr;
  sim::Wire* valid_ext_ = nullptr;
  sim::Wire* empty_w_ = nullptr;
  sim::Wire* ne_raw_ = nullptr;
  sim::Wire* oe_raw_ = nullptr;
  sim::Wire* en_get_b_ = nullptr;

  std::vector<sim::Wire*> e_;
  std::vector<sim::Wire*> f_;

  std::uint64_t overflows_ = 0;
  std::uint64_t underflows_ = 0;
  /// Non-null only when observability was armed at construction time.
  std::unique_ptr<sim::TransitObserver> obs_;
  /// Non-null only when a verify::Hub was armed at construction time:
  /// 4-phase handshake + bundled-data + detector + scoreboard checkers.
  std::unique_ptr<verify::MonitorSet> mon_;
};

}  // namespace mts::fifo
