
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/soc_clock_bridge.cpp" "examples/CMakeFiles/example_soc_clock_bridge.dir/soc_clock_bridge.cpp.o" "gcc" "examples/CMakeFiles/example_soc_clock_bridge.dir/soc_clock_bridge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lip/CMakeFiles/mts_lip.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mts_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/fifo/CMakeFiles/mts_fifo.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/mts_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/mts_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/bfm/CMakeFiles/mts_bfm.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/mts_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mts_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
