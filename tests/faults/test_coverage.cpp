// Protocol-state coverage: bin bookkeeping, edge subscriptions, the
// standard FIFO/relay bin sets, and surfacing through sim::Report.
#include "metrics/coverage.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "bfm/bfm.hpp"
#include "fifo/interface_sides.hpp"
#include "fifo/mixed_clock_fifo.hpp"
#include "lip/chain.hpp"
#include "sync/clock.hpp"

namespace mts::metrics {
namespace {

using sim::Time;

TEST(Coverage, DefineHitMissingAllHit) {
  Coverage cov("unit");
  EXPECT_FALSE(cov.all_hit());  // vacuously false: no bins yet
  cov.define("a");
  cov.define("b");
  EXPECT_EQ(cov.size(), 2u);
  EXPECT_FALSE(cov.all_hit());
  cov.hit("a");
  EXPECT_EQ(cov.hits("a"), 1u);
  EXPECT_EQ(cov.missing(), std::vector<std::string>{"b"});
  cov.hit("b", 3);
  EXPECT_TRUE(cov.all_hit());
  EXPECT_EQ(cov.hits("b"), 3u);
  EXPECT_EQ(cov.hits("nonexistent"), 0u);
}

TEST(Coverage, SummaryNamesTheMissingBins) {
  Coverage cov("proto");
  cov.define("x.rise");
  cov.hit("y.fall");
  const std::string s = cov.summary();
  EXPECT_NE(s.find("proto: 1/2 bins hit"), std::string::npos) << s;
  EXPECT_NE(s.find("x.rise"), std::string::npos) << s;
}

TEST(Coverage, EdgeSubscriptionsCountEdges) {
  sim::Simulation sim(1);
  sim::Wire w(sim, "w", false);
  Coverage cov;
  cov.bin_rise("w.rise", w);
  cov.bin_fall("w.fall", w);
  cov.bin_nth_rise("w.wrap", w, 2);
  for (int i = 0; i < 3; ++i) {
    sim.sched().after(10, [&w] { w.set(true); });
    sim.sched().after(20, [&w] { w.set(false); });
    sim.run_until(sim.now() + 30);
  }
  EXPECT_EQ(cov.hits("w.rise"), 3u);
  EXPECT_EQ(cov.hits("w.fall"), 3u);
  EXPECT_EQ(cov.hits("w.wrap"), 2u);  // rises 2 and 3
}

TEST(Coverage, ReportSurfacesHitsAndMisses) {
  Coverage cov("c");
  cov.define("never");
  cov.hit("often", 4);
  sim::Report r;
  cov.report_into(r, 1234);
  EXPECT_EQ(r.count("coverage"), 2u);       // summary + hit bin
  EXPECT_EQ(r.count("coverage-miss"), 1u);  // the missed bin
  EXPECT_EQ(r.failure_count(), 0u);         // misses are warnings, not errors
  const auto& entries = r.entries();
  const bool found = std::any_of(
      entries.begin(), entries.end(), [](const sim::ReportEntry& e) {
        return e.category == "coverage-miss" &&
               e.message.find("never") != std::string::npos;
      });
  EXPECT_TRUE(found);
}

TEST(Coverage, MixedClockFifoBinsAllHitUnderSaturatedTraffic) {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  sim::Simulation sim(1);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  Coverage cov("mcfifo");
  cover_mixed_clock_fifo(cov, "mc", dut);
  EXPECT_FALSE(cov.all_hit());  // nothing has run yet

  bfm::Scoreboard sb(sim, "sb");
  bfm::PutMonitor pm(sim, cp.out(), dut.en_put(), dut.req_put(), dut.data_put(),
                     sb);
  bfm::GetMonitor gm(sim, cg.out(), dut.valid_get(), dut.data_get(), sb);
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  // A consumer that pauses lets the FIFO fill (full/nearfull bins) and
  // drain (empty bins): alternate bursts via the driver's rate.
  bfm::SyncGetDriver get(sim, "get", cg.out(), dut.req_get(), cfg.dm,
                         {0.7, 1});
  sim.run_until(4 * pp + 400 * pp);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_TRUE(cov.all_hit()) << cov.summary();
  // Wrap bins mean the token rings really cycled: the fifo reused cell 0.
  EXPECT_GT(cov.hits("mc.ptok.wrap"), 10u);
  EXPECT_GT(cov.hits("mc.gtok.wrap"), 10u);
}

TEST(Coverage, StallValidBinsOnARelayLink) {
  fifo::FifoConfig cfg;
  cfg.capacity = 8;
  cfg.width = 8;
  cfg.controller = fifo::ControllerKind::kRelayStation;
  sim::Simulation sim(3);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + 1234, 0.5, 0});
  lip::MixedClockLink link(sim, "link", cfg, cp.out(), cg.out(), 2, 2);
  bfm::Scoreboard sb(sim, "sb");
  // valid_rate and stall_rate both strictly inside (0,1) so all four
  // stall x valid combinations occur, and near-balanced fill/drain rates so
  // the occupancy random-walks across the whole range (empty..full bins).
  bfm::RsSource src(sim, "src", cp.out(), link.data_in(), link.valid_in(),
                    link.stop_out(), cfg.dm, 0.55, 0xFF, sb);
  bfm::RsSink sink(sim, "sink", cg.out(), link.data_out(), link.valid_out(),
                   link.stop_in(), cfg.dm, 0.45, sb);
  Coverage cov("link");
  cover_stall_valid(cov, "out", cg.out(), link.valid_out(), link.stop_in());
  cover_mixed_clock_fifo(cov, "mcrs", link.mcrs().fifo());
  // The relay chains throttle the drain, so under steady traffic the MCRS
  // hugs the full end. A source pause mid-run lets the link drain (oe and
  // sv.idle bins; occ buckets are FIFO-controller-only -- relay cells
  // enqueue v=0 bubbles, see attach_occ_buckets) before traffic resumes.
  sim.sched().at(4 * pp + 600 * pp, [&src] { src.set_enabled(false); });
  sim.sched().at(4 * pp + 900 * pp, [&src] { src.set_enabled(true); });
  sim.run_until(4 * pp + 1200 * pp);
  EXPECT_EQ(sb.errors(), 0u);
  EXPECT_TRUE(cov.all_hit()) << cov.summary();
}

TEST(Coverage, OccupancyHistogramCoversReachedLevels) {
  fifo::FifoConfig cfg;
  cfg.capacity = 4;
  cfg.width = 8;
  sim::Simulation sim(1);
  const Time pp = 2 * fifo::SyncPutSide::min_period(cfg);
  const Time gp = 2 * fifo::SyncGetSide::min_period(cfg);
  sync::Clock cp(sim, "cp", {pp, 4 * pp, 0.5, 0});
  sync::Clock cg(sim, "cg", {gp, 4 * pp + gp / 3, 0.5, 0});
  fifo::MixedClockFifo dut(sim, "dut", cfg, cp.out(), cg.out());
  Coverage cov;
  cover_occupancy_histogram(cov, "dut", dut);
  EXPECT_EQ(cov.size(), 5u);  // occ.0 .. occ.4
  bfm::SyncPutDriver put(sim, "put", cp.out(), dut.req_put(), dut.data_put(),
                         dut.full(), cfg.dm, {1.0, 1}, 0xFF);
  sim.run_until(4 * pp + 40 * pp);  // fill, no drain
  EXPECT_GT(cov.hits("dut.occ.4"), 0u);
  EXPECT_GT(cov.hits("dut.occ.1"), 0u);
}

TEST(Coverage, MergeAddsHitsAndImportsForeignBins) {
  Coverage a("shard0");
  a.define("x.miss");
  a.hit("x.rise", 3);
  Coverage b("shard1");
  b.hit("x.rise", 2);
  b.hit("x.miss");      // hit only on the other shard
  b.define("y.other");  // defined (unhit) only on the other shard
  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.hits("x.rise"), 5u);
  EXPECT_EQ(a.hits("x.miss"), 1u);
  EXPECT_EQ(a.hits("y.other"), 0u);
  EXPECT_EQ(a.missing(), std::vector<std::string>{"y.other"});
}

TEST(Coverage, MergeIsIndependentOfShardOrder) {
  // Campaign workers merge in worker order; the folded bins must not
  // depend on which worker executed which runs.
  auto shard = [](std::uint64_t n) {
    auto c = std::make_unique<Coverage>();  // Coverage is non-copyable
    c->hit("a", n);
    c->define("b");
    return c;
  };
  auto ab = shard(1);
  ab->merge(*shard(4));
  auto ba = shard(4);
  ba->merge(*shard(1));
  EXPECT_EQ(ab->bins(), ba->bins());
  EXPECT_EQ(ab->hits("a"), 5u);
}

}  // namespace
}  // namespace mts::metrics
