// campaignd JSON model: lossless numbers, deterministic emission, and total
// rejection of malformed input (the parser half of the framing fuzz story;
// run under ASan/UBSan in CI).
#include "campaignd/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace json = mts::campaignd::json;
using json::ProtocolError;
using json::Value;

TEST(CampaigndJson, U64RoundTripsLosslessly) {
  // Full-range seeds must never transit double: 2^64-1 is not representable.
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
  const Value v = Value::number_u64(big);
  EXPECT_EQ(v.dump(), "18446744073709551615");
  const Value back = json::parse(v.dump());
  EXPECT_EQ(back.as_u64(), big);

  const Value parsed = json::parse("{\"seed\": 18446744073709551615}");
  EXPECT_EQ(parsed.at("seed").as_u64(), big);
  // And the textual form survives re-emission exactly.
  EXPECT_EQ(parsed.dump(), "{\"seed\":18446744073709551615}");
}

TEST(CampaigndJson, DoublesRoundTripExactly) {
  for (const double x : {0.1, 1.0 / 3.0, 1e-300, 12345.678901234567,
                         -0.0078125, 2.2250738585072014e-308}) {
    const Value v = Value::number_double(x);
    EXPECT_EQ(json::parse(v.dump()).as_double(), x) << v.dump();
  }
}

TEST(CampaigndJson, NonFiniteDoublesBecomeZero) {
  EXPECT_EQ(Value::number_double(std::numeric_limits<double>::infinity())
                .as_double(),
            0.0);
  EXPECT_EQ(Value::number_double(std::numeric_limits<double>::quiet_NaN())
                .as_double(),
            0.0);
}

TEST(CampaigndJson, NegativeIntegers) {
  const Value v = Value::number_i64(-42);
  EXPECT_EQ(v.dump(), "-42");
  EXPECT_EQ(json::parse("-42").as_i64(), -42);
  EXPECT_THROW(json::parse("-42").as_u64(), ProtocolError);
}

TEST(CampaigndJson, ObjectKeepsInsertionOrder) {
  Value v = Value::object();
  v.set("zebra", Value::number_i64(1));
  v.set("alpha", Value::number_i64(2));
  v.set("mid", Value::number_i64(3));
  EXPECT_EQ(v.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  // set() on an existing key replaces in place, preserving position.
  v.set("alpha", Value::number_i64(9));
  EXPECT_EQ(v.dump(), "{\"zebra\":1,\"alpha\":9,\"mid\":3}");
}

TEST(CampaigndJson, StringEscapesRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  Value v = Value::object();
  v.set("s", Value(nasty));
  EXPECT_EQ(json::parse(v.dump()).at("s").as_string(), nasty);
}

TEST(CampaigndJson, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(json::parse("\"\\u2603\"").as_string(), "\xe2\x98\x83");
  // Lone surrogates are rejected, not emitted as garbage.
  EXPECT_THROW(json::parse("\"\\ud800\""), ProtocolError);
}

TEST(CampaigndJson, NestedStructuresParse) {
  const Value v = json::parse(
      "{\"a\": [1, 2.5, \"x\", true, false, null], \"b\": {\"c\": []}}");
  EXPECT_EQ(v.at("a").as_array().size(), 6u);
  EXPECT_TRUE(v.at("a").as_array()[3].as_bool());
  EXPECT_TRUE(v.at("a").as_array()[5].is_null());
  EXPECT_EQ(v.at("b").at("c").size(), 0u);
}

TEST(CampaigndJson, AccessorsRejectWrongKinds) {
  const Value v = json::parse("{\"n\": 3, \"s\": \"x\"}");
  EXPECT_THROW(v.at("s").as_u64(), ProtocolError);
  EXPECT_THROW(v.at("n").as_string(), ProtocolError);
  EXPECT_THROW(v.at("missing"), ProtocolError);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("n").as_array(), ProtocolError);
  EXPECT_THROW(json::parse("[1]").at("k"), ProtocolError);
}

TEST(CampaigndJson, FractionalRejectedAsInteger) {
  EXPECT_THROW(json::parse("1.5").as_u64(), ProtocolError);
  EXPECT_EQ(json::parse("1.5").as_double(), 1.5);
}

TEST(CampaigndJson, OverflowRejected) {
  // One past 2^64-1.
  EXPECT_THROW(json::parse("18446744073709551616").as_u64(), ProtocolError);
}

TEST(CampaigndJson, DepthBounded) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_THROW(json::parse(deep), ProtocolError);
}

TEST(CampaigndJson, MalformedDocumentsAllThrow) {
  const std::vector<std::string> bad = {
      "",           " ",          "{",           "}",
      "[",          "]",          "{\"a\":}",    "{\"a\" 1}",
      "{a: 1}",     "[1,]",       "[1 2]",       "tru",
      "truee",      "nul",        "\"unterminated",
      "\"bad\\q\"", "\"\\u12\"",  "01",          "+1",
      "1e",         "--1",        ".5",          "1.",
      "{} trailing", "[1]]",      "\x80\x81",    "{\"a\":1,}",
  };
  for (const std::string& s : bad) {
    EXPECT_THROW(json::parse(s), ProtocolError) << "input: " << s;
  }
}

TEST(CampaigndJson, GarbageBytesNeverCrash) {
  // Deterministic pseudo-garbage: every parse either succeeds or throws
  // ProtocolError -- no UB (the CI sanitizer job gives this test teeth).
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int round = 0; round < 200; ++round) {
    std::string s;
    const std::size_t len = (x >> 8) % 64;
    for (std::size_t i = 0; i < len; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      s.push_back(static_cast<char>(x & 0xFF));
    }
    try {
      (void)json::parse(s);
    } catch (const ProtocolError&) {
    }
  }
  SUCCEED();
}

TEST(CampaigndJson, GetWithDefaults) {
  const Value v = json::parse("{\"a\": 3, \"b\": true, \"c\": \"x\"}");
  EXPECT_EQ(v.get_u64("a", 9), 3u);
  EXPECT_EQ(v.get_u64("zz", 9), 9u);
  EXPECT_TRUE(v.get_bool("b", false));
  EXPECT_FALSE(v.get_bool("zz", false));
  EXPECT_EQ(v.get_string("c", "d"), "x");
  EXPECT_EQ(v.get_string("zz", "d"), "d");
  EXPECT_EQ(v.get_double("a", 0.0), 3.0);
}
